// Package obs is HEAP's zero-dependency observability layer: span-style
// stage timing, monotonic counters, and gauges for the scheme-switching
// bootstrap pipeline. The paper's whole evaluation (Tables II–VIII) is a
// per-stage cost story — ModSwitch → Extract → BlindRotate → Repack → Add,
// overlapped across eight FPGAs (Fig. 4) — and this package is the software
// side of that ledger: the bootstrapper, merge collector, cluster scheduler,
// and the TFHE blind-rotate loop report where wall-clock time, bytes, and
// NTT counts actually go.
//
// Design constraints, in order:
//
//  1. The disabled path must be free. Every instrumented component holds a
//     Recorder; the default is Nop, whose methods are empty and inlinable.
//     The PR 2/3 AllocsPerRun locks (0 allocs/op for BlindRotate,
//     ExternalProduct, and the merge kernel) run with Nop installed, so the
//     hot path pays at most a handful of static-dispatch-eligible interface
//     calls per kernel — never an allocation.
//  2. Enabled recorders must be safe for the pipeline's real concurrency:
//     spans begin and end on whatever goroutine ran the stage (secondaries'
//     read loops, local rotate workers, merge-tree climbers). Metrics is
//     lock-free (atomics over fixed arrays); Tracer takes one short mutex
//     per event.
//  3. Tokens, not closures. Begin returns an opaque Token the caller hands
//     back to End, so no per-span closure or span object is ever allocated.
//
// Stages on the pipeline lane (LanePipeline) are non-overlapping phases of
// one bootstrap and tile its wall time; the same stage enums on shard lanes
// (lane ≥ 0) time the per-shard work that runs inside those phases. hwsim's
// Fig. 4 overlap schedule is directly comparable to a Tracer timeline of a
// cluster run: one lane per node, blind rotations overlapping the network
// send/recv spans.
package obs

// Stage identifies one pipeline phase of the scheme-switching bootstrap
// (Algorithm 2) or one unit of per-shard work inside a phase.
type Stage uint8

const (
	// StageModSwitch is Algorithm 2 steps 1–2: the exact floor-division
	// 2N·x = q0·α + r over both ciphertext components.
	StageModSwitch Stage = iota
	// StageExtract is the per-coefficient Extract → LWE-KeySwitch →
	// ModulusSwitch loop producing the independent LWE ciphertexts.
	StageExtract
	// StageBlindRotate is step 3. On the pipeline lane it is the wall time
	// of the whole fan-out (local workers and/or cluster nodes); on a shard
	// lane it is one blind rotation.
	StageBlindRotate
	// StageRepack times the merge tree (on the pipeline lane: the portion
	// not already overlapped into the blind-rotate tail).
	StageRepack
	// StageFinish is the bootstrap tail: the ct′ addition, the shared
	// trace, and the p/2N rescale.
	StageFinish
	// StageNetSend times framing + writing one batch to a secondary
	// (shard lanes only).
	StageNetSend
	// StageNetRecv times one batch's accumulator stream read — the
	// network + remote-compute wait of Fig. 4 (shard lanes only).
	StageNetRecv

	NumStages = int(StageNetRecv) + 1
)

var stageNames = [NumStages]string{
	"ModSwitch", "Extract", "BlindRotate", "Repack", "Finish", "NetSend", "NetRecv",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "Stage(?)"
}

// pipelineStage reports whether s is one of the five non-overlapping
// bootstrap phases (the lanes that tile the end-to-end wall time when
// recorded on LanePipeline).
func pipelineStage(s Stage) bool { return s <= StageFinish }

// Counter identifies a monotonic event count.
type Counter uint8

const (
	// CounterNTT counts single-limb forward/inverse NTT transforms issued
	// by the instrumented kernels (key-switch digit raise, external
	// product, CMux INTTs, merge/finish domain conversions) — the unit the
	// paper's Table V cycle accounting is built from.
	CounterNTT Counter = iota
	// CounterExternalProduct counts RGSW ⊡ RLWE external products (two per
	// BlindRotate iteration for ternary keys, one for binary).
	CounterExternalProduct
	// CounterKeySwitch counts gadget key switches outside external
	// products (automorphisms, relinearizations, LWE dimension switches).
	CounterKeySwitch
	// CounterBlindRotate counts completed blind rotations.
	CounterBlindRotate
	// CounterMerge counts repacking merge-tree node merges.
	CounterMerge
	// CounterBytesFramed counts wire-protocol bytes framed (sent or
	// received) by the instrumented endpoint, headers and CRCs included.
	CounterBytesFramed
	// CounterBytesRetried counts framed bytes re-sent because a batch had
	// to be retried or reassigned after a node failure.
	CounterBytesRetried
	// CounterBRKBytesStreamed counts blind-rotate key bytes pulled through
	// the datapath: the per-ciphertext path streams every used RGSW key pair
	// once per rotation, the key-major batch engine once per tile. The ratio
	// of the two is the software measurement of the paper's §V URAM
	// key-reuse factor.
	CounterBRKBytesStreamed
	// CounterBlindRotateTile counts key-major accumulator tiles completed by
	// the batched blind-rotate engine (the unit shard-lane BlindRotate spans
	// are recorded at).
	CounterBlindRotateTile
	// CounterProbes counts health probes answered by the peer in time.
	CounterProbes
	// CounterProbeMisses counts health probes that timed out or failed; K
	// consecutive misses drain the node from the membership.
	CounterProbeMisses
	// CounterHedges counts speculative re-dispatches issued because a shard's
	// latency exceeded the per-node p99 estimate.
	CounterHedges
	// CounterHedgeWasted counts accumulators that lost the hedge race: work
	// completed by a node whose result arrived after another copy had already
	// been claimed.
	CounterHedgeWasted
	// CounterKeyChunks counts unique blind-rotate key chunks accepted and
	// stored by a receiving node. A resumed upload re-counts nothing: the
	// counter equals ceil(blob/chunk) after any number of kill/resume cycles.
	CounterKeyChunks
	// CounterKeyChunkBytes counts the unique key payload bytes behind
	// CounterKeyChunks — the receiver-side measure the hwsim key-traffic
	// cross-check compares against BRK blob size.
	CounterKeyChunkBytes
	// CounterKeyChunkResent counts sender-side key chunk payload bytes
	// re-sent across resume cycles (overlap between what the sender pushed
	// and what the receiver had already acked).
	CounterKeyChunkResent
	// CounterJobsAdmitted counts service jobs accepted by admission control
	// and handed to the coalescer.
	CounterJobsAdmitted
	// CounterJobsRejected counts service jobs turned away non-fatally
	// (rate limit, queue full, deadline budget too small, missing key).
	CounterJobsRejected
	// CounterJobsCoalesced counts jobs that executed in a key-major batch
	// shared with at least one other job of the same tenant — the jobs whose
	// BRK pass through cache was amortized across requests.
	CounterJobsCoalesced
	// CounterServeBatches counts key-major service batches executed (one
	// Acquire + one BlindRotateBatch per batch, regardless of job count).
	CounterServeBatches
	// CounterKeysEvicted counts unpinned tenant keys evicted from the
	// registry to make room under the LRU byte bound.
	CounterKeysEvicted
	// CounterJobsExpired counts admitted jobs whose deadline budget expired
	// while they waited in the coalescing queue; they are rejected at
	// dispatch without touching the key. Together with CounterJobsServed and
	// CounterJobsFailed they partition the admitted jobs, so at quiesce
	// admitted = served + expired + failed — the ledger-consistency
	// invariant the shutdown tests assert.
	CounterJobsExpired
	// CounterJobsServed counts admitted jobs whose full accumulator stream
	// (all FrameAccs plus the FrameBatchEnd) was written back successfully.
	CounterJobsServed
	// CounterJobsFailed counts admitted jobs that terminally failed after
	// admission: their connection died mid-reply or the batch rotation
	// errored.
	CounterJobsFailed

	NumCounters = int(CounterJobsFailed) + 1
)

var counterNames = [NumCounters]string{
	"ntt_limb_transforms", "external_products", "key_switches",
	"blind_rotates", "merges", "bytes_framed", "bytes_retried",
	"brk_bytes_streamed", "blind_rotate_tiles",
	"health_probes", "probe_misses", "hedged_dispatches", "hedge_wasted",
	"key_chunks", "key_chunk_bytes", "key_chunk_resent_bytes",
	"jobs_admitted", "jobs_rejected", "jobs_coalesced",
	"serve_batches", "keys_evicted",
	"jobs_expired", "jobs_served", "jobs_failed",
}

func (c Counter) String() string {
	if int(c) < NumCounters {
		return counterNames[c]
	}
	return "Counter(?)"
}

// Gauge identifies an instantaneous level tracked by signed deltas.
type Gauge uint8

const (
	// GaugeInFlightShards is the number of LWE indices dispatched to
	// secondaries whose accumulators have not come back yet.
	GaugeInFlightShards Gauge = iota
	// GaugeQueueDepth is the number of LWE indices sitting in the cluster
	// work queue awaiting a worker.
	GaugeQueueDepth
	// GaugeClusterMembers is the number of nodes currently active in the
	// elastic membership (joined and not yet drained/left/dead).
	GaugeClusterMembers
	// GaugeResidentTenants is the number of tenant blind-rotate keys
	// currently resident in the serving registry.
	GaugeResidentTenants

	NumGauges = int(GaugeResidentTenants) + 1
)

var gaugeNames = [NumGauges]string{
	"in_flight_shards", "queue_depth", "cluster_members", "resident_tenants",
}

func (g Gauge) String() string {
	if int(g) < NumGauges {
		return gaugeNames[g]
	}
	return "Gauge(?)"
}

// LanePipeline is the lane for the five non-overlapping bootstrap phases;
// lanes ≥ 0 label per-shard work (a cluster node index or a local worker).
const LanePipeline = -1

// Token is an opaque span handle returned by Begin and consumed by End.
// For the built-in recorders it encodes the span's start offset; callers
// must treat it as opaque.
type Token int64

// Recorder receives stage spans, counter increments, and gauge deltas.
// Implementations must be safe for concurrent use: the bootstrap pipeline
// calls them from node read loops, local rotate workers, and merge-tree
// climbers simultaneously. All arguments are scalars so that a no-op
// implementation costs only the interface dispatch — no boxing, no
// closures, no allocation.
type Recorder interface {
	// Begin opens a span for stage s on the given lane (LanePipeline or a
	// shard index ≥ 0) and returns the token to pass to the matching End.
	Begin(s Stage, lane int) Token
	// End closes the span opened by the matching Begin.
	End(s Stage, lane int, t Token)
	// Add increments counter c by n.
	Add(c Counter, n uint64)
	// Gauge applies a signed delta to gauge g.
	Gauge(g Gauge, delta int64)
}

// Nop is the default recorder: every method is an empty leaf call the
// compiler can see through. Instrumented components install it when no
// recorder is configured, so the hot path never branches on nil.
type Nop struct{}

func (Nop) Begin(Stage, int) Token { return 0 }
func (Nop) End(Stage, int, Token)  {}
func (Nop) Add(Counter, uint64)    {}
func (Nop) Gauge(Gauge, int64)     {}

// OrNop returns r, or Nop when r is nil — the normalization every
// instrumented component applies at construction/installation time.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop{}
	}
	return r
}

// multi fans every event out to a fixed set of recorders (e.g. a Metrics
// aggregate plus a Tracer timeline on the same bootstrap). All built-in
// recorders issue tokens as nanosecond offsets from the shared package
// epoch, so the first recorder's Begin token is valid for every End.
type multi struct {
	rs []Recorder
}

func (m multi) Begin(s Stage, lane int) Token {
	var t Token
	for i, r := range m.rs {
		tok := r.Begin(s, lane)
		if i == 0 {
			t = tok
		}
	}
	return t
}

func (m multi) End(s Stage, lane int, t Token) {
	for _, r := range m.rs {
		r.End(s, lane, t)
	}
}

func (m multi) Add(c Counter, n uint64) {
	for _, r := range m.rs {
		r.Add(c, n)
	}
}

func (m multi) Gauge(g Gauge, delta int64) {
	for _, r := range m.rs {
		r.Gauge(g, delta)
	}
}
