package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistBucketBoundsConsistent: histLower(histIndex(d)) ≤ d for every
// representable duration, and the relative error of the bucket lower bound
// is within the 1/histSubBuckets design bound (plus the 1µs floor).
func TestHistBucketBoundsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		var d time.Duration
		switch i % 3 {
		case 0:
			d = time.Duration(r.Int63n(int64(time.Millisecond)))
		case 1:
			d = time.Duration(r.Int63n(int64(time.Hour)))
		default:
			d = time.Duration(r.Int63n(int64(100 * time.Hour)))
		}
		idx := histIndex(d)
		lo := histLower(idx)
		if lo > int64(d) {
			t.Fatalf("histLower(%d) = %d > observation %d", idx, lo, int64(d))
		}
		if idx+1 < histBuckets {
			hi := histLower(idx + 1)
			if hi <= lo {
				t.Fatalf("bucket %d not monotonic: [%d, %d)", idx, lo, hi)
			}
			if int64(d) >= hi {
				t.Fatalf("observation %d landed in bucket %d = [%d, %d)", int64(d), idx, lo, hi)
			}
			// Bucket width bound: above the linear decade, width/lower ≤ 1/32.
			if lo >= histSubBuckets*histMinNs && float64(hi-lo)/float64(lo) > 1.0/histSubBuckets+1e-9 {
				t.Fatalf("bucket %d too wide: [%d, %d)", idx, lo, hi)
			}
		}
	}
}

// TestHistQuantilesMatchSortedReference: against an exact sorted-slice
// percentile, the histogram's nearest-rank quantile is within one bucket
// width (≤ ~3.2% relative, plus the 1µs resolution floor).
func TestHistQuantilesMatchSortedReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := NewHist()
	lats := make([]time.Duration, 50000)
	for i := range lats {
		// Log-uniform over [10µs, 10s]: exercises many decades.
		e := r.Float64() * 6
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(10, e))
		lats[i] = d
		h.Observe(d)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	n := len(lats)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q*float64(n)+0.999999) - 1
		if rank < 0 {
			rank = 0
		}
		want := lats[rank]
		got := h.Quantile(q)
		if got > want {
			t.Fatalf("q%.3f: hist %v > exact %v (lower bound must not overstate)", q, got, want)
		}
		if rel := float64(want-got) / float64(want); rel > 0.04 {
			t.Fatalf("q%.3f: hist %v vs exact %v (rel err %.3f > bucket bound)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 = %v, want exact max %v", h.Quantile(1), h.Max())
	}
	if h.Count() != uint64(n) {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
}

// TestHistEmptyAndEdge: zero observations, zero/negative durations, and the
// clamp decade all behave.
func TestHistEmptyAndEdge(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(0)
	h.Observe(-time.Second) // defensive: clamps to bucket 0
	h.Observe(200 * time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 200*time.Hour {
		t.Fatalf("max = %v", h.Max())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median of {≤0, ≤0, clamp} = %v, want 0", got)
	}
	if h.Quantile(1) != 200*time.Hour {
		t.Fatalf("q1 must report the exact max, got %v", h.Quantile(1))
	}
}

// TestHistConcurrentObserve: hammer from many goroutines under -race; the
// total count and sum must be exact.
func TestHistConcurrentObserve(t *testing.T) {
	h := NewHist()
	const workers = 8
	const per = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(r.Int63n(int64(time.Second))))
				if i%1024 == 0 {
					_ = h.Quantile(0.99) // concurrent reads are legal
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Summary()
	if s.Count != workers*per || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
		t.Fatalf("summary not monotonic: %+v", s)
	}
}
