package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestNopZeroAllocs is the contract the hot-path instrumentation relies on:
// recording against the default no-op recorder — including through the
// Recorder interface and through Combine's collapse — performs zero heap
// allocations, so the PR 2/3 AllocsPerRun kernel locks survive with the
// instrumentation compiled in.
func TestNopZeroAllocs(t *testing.T) {
	var r Recorder = Nop{}
	if avg := testing.AllocsPerRun(100, func() {
		tok := r.Begin(StageBlindRotate, 3)
		r.Add(CounterNTT, 14)
		r.Add(CounterExternalProduct, 1)
		r.Gauge(GaugeQueueDepth, -1)
		r.End(StageBlindRotate, 3, tok)
	}); avg != 0 {
		t.Fatalf("Nop recorder allocates %.1f objects/op, want 0", avg)
	}
	if c := Combine(nil, Nop{}, nil); c != (Nop{}) {
		t.Fatalf("Combine(nil, Nop, nil) = %T, want Nop", c)
	}
	if c := OrNop(nil); c != (Nop{}) {
		t.Fatalf("OrNop(nil) = %T, want Nop", c)
	}
}

// TestMetricsZeroAllocs locks the enabled aggregate path too: Metrics is
// fixed-size atomics, so even with metrics on, a span or counter update
// never allocates.
func TestMetricsZeroAllocs(t *testing.T) {
	var r Recorder = NewMetrics()
	if avg := testing.AllocsPerRun(100, func() {
		tok := r.Begin(StageBlindRotate, 0)
		r.Add(CounterNTT, 14)
		r.Gauge(GaugeInFlightShards, 1)
		r.Gauge(GaugeInFlightShards, -1)
		r.End(StageBlindRotate, 0, tok)
	}); avg != 0 {
		t.Fatalf("Metrics recorder allocates %.1f objects/op, want 0", avg)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	tok := m.Begin(StageModSwitch, LanePipeline)
	time.Sleep(2 * time.Millisecond)
	m.End(StageModSwitch, LanePipeline, tok)

	tok = m.Begin(StageBlindRotate, 4)
	time.Sleep(time.Millisecond)
	m.End(StageBlindRotate, 4, tok)

	m.Add(CounterBlindRotate, 1)
	m.Add(CounterNTT, 10)
	m.Add(CounterNTT, 4)
	m.Gauge(GaugeQueueDepth, 8)
	m.Gauge(GaugeQueueDepth, -3)

	s := m.Snapshot()
	ms, ok := s.Pipeline["ModSwitch"]
	if !ok || ms.Count != 1 || ms.TotalMs <= 0 || ms.MaxMs <= 0 {
		t.Fatalf("pipeline ModSwitch snapshot wrong: %+v (ok=%v)", ms, ok)
	}
	if _, ok := s.Pipeline["BlindRotate"]; ok {
		t.Fatalf("shard-lane span leaked into the pipeline aggregate: %+v", s.Pipeline)
	}
	br, ok := s.Shards["BlindRotate"]
	if !ok || br.Count != 1 || br.TotalMs <= 0 {
		t.Fatalf("shard BlindRotate snapshot wrong: %+v (ok=%v)", br, ok)
	}
	if got := s.Counters["ntt_limb_transforms"]; got != 14 {
		t.Fatalf("ntt counter = %d, want 14", got)
	}
	if got := s.Gauges["queue_depth"]; got != 5 {
		t.Fatalf("queue_depth gauge = %d, want 5", got)
	}
	if got := m.PipelineTotalMs(); got < 1.5 {
		t.Fatalf("PipelineTotalMs = %v, want ≥ the 2ms ModSwitch span", got)
	}

	var round Snapshot
	if err := json.Unmarshal(m.JSON(), &round); err != nil {
		t.Fatalf("Metrics.JSON is not valid JSON: %v", err)
	}
	if round.Counters["blind_rotates"] != 1 {
		t.Fatalf("JSON round-trip lost counters: %+v", round.Counters)
	}
}

// TestMetricsConcurrent exercises the lock-free paths under the race
// detector.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tok := m.Begin(StageBlindRotate, w)
				m.Add(CounterBlindRotate, 1)
				m.Gauge(GaugeInFlightShards, 1)
				m.Gauge(GaugeInFlightShards, -1)
				m.End(StageBlindRotate, w, tok)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter(CounterBlindRotate); got != workers*iters {
		t.Fatalf("lost counter updates: %d, want %d", got, workers*iters)
	}
	if got := m.Snapshot().Shards["BlindRotate"].Count; got != workers*iters {
		t.Fatalf("lost span records: %d, want %d", got, workers*iters)
	}
	if got := m.GaugeValue(GaugeInFlightShards); got != 0 {
		t.Fatalf("gauge should balance to 0, got %d", got)
	}
}

func TestTracerEmitsValidChromeTrace(t *testing.T) {
	tr := NewTracer()
	tok := tr.Begin(StageModSwitch, LanePipeline)
	time.Sleep(time.Millisecond)
	tr.End(StageModSwitch, LanePipeline, tok)
	tok = tr.Begin(StageBlindRotate, 2)
	time.Sleep(time.Millisecond)
	tr.End(StageBlindRotate, 2, tok)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sawPipeline, sawShard, sawMeta bool
	for _, ev := range trace.TraceEvents {
		switch {
		case ev.Phase == "M":
			sawMeta = true
		case ev.Phase == "X" && ev.Cat == "pipeline" && ev.Name == "ModSwitch" && ev.Tid == 0:
			sawPipeline = true
			if ev.DurUs <= 0 || math.IsNaN(ev.DurUs) {
				t.Fatalf("pipeline span has bad duration: %+v", ev)
			}
		case ev.Phase == "X" && ev.Cat == "shard" && ev.Name == "BlindRotate" && ev.Tid == 3:
			sawShard = true
		}
	}
	if !sawPipeline || !sawShard || !sawMeta {
		t.Fatalf("trace missing events: pipeline=%v shard=%v meta=%v\n%s",
			sawPipeline, sawShard, sawMeta, buf.String())
	}
	if got := trace.PipelineTotalMs(); got < 0.5 {
		t.Fatalf("PipelineTotalMs = %v, want ≥ the 1ms span", got)
	}
}

// TestCombineFansOut checks that one token drives every combined recorder.
func TestCombineFansOut(t *testing.T) {
	m := NewMetrics()
	tr := NewTracer()
	r := Combine(m, tr)
	tok := r.Begin(StageFinish, LanePipeline)
	time.Sleep(time.Millisecond)
	r.End(StageFinish, LanePipeline, tok)
	r.Add(CounterMerge, 3)

	if got := m.Snapshot().Pipeline["Finish"].Count; got != 1 {
		t.Fatalf("metrics missed the combined span: count=%d", got)
	}
	if got := m.Counter(CounterMerge); got != 3 {
		t.Fatalf("metrics missed the combined counter: %d", got)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.PipelineTotalMs(); got < 0.5 {
		t.Fatalf("tracer missed the combined span: total=%vms", got)
	}
}

func TestStageNames(t *testing.T) {
	for i := 0; i < NumStages; i++ {
		if Stage(i).String() == "Stage(?)" {
			t.Fatalf("stage %d has no name", i)
		}
	}
	for i := 0; i < NumCounters; i++ {
		if Counter(i).String() == "Counter(?)" {
			t.Fatalf("counter %d has no name", i)
		}
	}
	for i := 0; i < NumGauges; i++ {
		if Gauge(i).String() == "Gauge(?)" {
			t.Fatalf("gauge %d has no name", i)
		}
	}
	if !pipelineStage(StageFinish) || pipelineStage(StageNetSend) {
		t.Fatal("pipelineStage classification wrong")
	}
}
