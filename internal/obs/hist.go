package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed-footprint concurrent latency histogram: lock-free
// log-linear buckets over [1µs, ~1h], the shape HdrHistogram popularized and
// the serving layer's per-job latency distributions need — a load run
// records hundreds of thousands of observations from many goroutines, so the
// sorted-slice percentile the first service benchmark used (every latency
// retained, one big sort at the end) does not scale to a sweep matrix.
//
// Buckets: histSubBuckets linear sub-buckets per power-of-two decade.
// Observations below 1µs land in bucket 0; observations beyond the top
// decade clamp into the last bucket (and are tracked exactly by maxNs, so a
// clamped p100 still reports the true maximum).
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

const (
	histMinNs      = int64(time.Microsecond) // resolution floor: 1µs
	histDecades    = 32                      // 1µs << 32 ≈ 1.2h ceiling
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits // 32 sub-buckets: ≤ ~3.1% quantile error
	histBuckets    = histDecades * histSubBuckets
)

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// histIndex maps a duration to its bucket: the first decade is exactly
// linear in µs; above it, the decade is the position of the value's top bit
// and the sub-bucket the histSubBits bits below it.
func histIndex(d time.Duration) int {
	v := int64(d) / histMinNs
	if v < histSubBuckets {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	decade := msb - histSubBits + 1
	sub := (v >> uint(decade-1)) & (histSubBuckets - 1)
	idx := decade*histSubBuckets + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histLower returns the inclusive lower bound (in ns) of bucket idx — the
// value Quantile reports for observations that landed in it.
func histLower(idx int) int64 {
	decade := idx / histSubBuckets
	sub := int64(idx % histSubBuckets)
	if decade == 0 {
		return sub * histMinNs
	}
	return ((int64(histSubBuckets) + sub) << uint(decade-1)) * histMinNs
}

// Observe records one latency. Safe for concurrent use; never allocates.
func (h *Hist) Observe(d time.Duration) {
	h.counts[histIndex(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Mean returns the mean observed latency (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// Max returns the exact maximum observed latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the latency at quantile q in [0,1] using the
// nearest-rank definition over the bucketed counts (bucket lower bound, so
// the estimate never overstates; error is bounded by the ~3.1% bucket
// width). q ≥ 1 returns the exact maximum. Returns 0 when empty.
//
// Concurrent Observes during a Quantile read are safe; the answer is
// consistent with some interleaving of them.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	// Nearest rank: the smallest k with cumulative ≥ ceil(q·n), matching the
	// (n*99+99)/100-1 indexing the service benchmark established.
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(histLower(i))
		}
	}
	return h.Max()
}

// HistSnapshot is the JSON-marshalable summary of a histogram.
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary snapshots the standard percentile set.
func (h *Hist) Summary() HistSnapshot {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	return HistSnapshot{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
	}
}
