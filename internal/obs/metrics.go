package obs

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// epoch is the common clock every built-in recorder measures against.
// Tokens are nanosecond offsets from it, which makes them interchangeable
// between recorders: Combine can hand one Begin token to both a Metrics and
// a Tracer End and each computes the same duration.
var epoch = time.Now()

// nowNanos returns the monotonic nanoseconds elapsed since the package
// epoch.
func nowNanos() int64 { return int64(time.Since(epoch)) }

// stageAgg is one stage's lock-free aggregate.
type stageAgg struct {
	count atomic.Uint64
	ns    atomic.Int64
	maxNs atomic.Int64
}

func (a *stageAgg) record(durNs int64) {
	a.count.Add(1)
	a.ns.Add(durNs)
	for {
		cur := a.maxNs.Load()
		if durNs <= cur || a.maxNs.CompareAndSwap(cur, durNs) {
			return
		}
	}
}

// Metrics is the expvar-style aggregate recorder: per-stage span statistics
// (split into the pipeline lane and the union of shard lanes), monotonic
// counters, and gauges — all fixed-size atomics, so recording is lock-free
// and allocation-free from any number of goroutines.
type Metrics struct {
	pipeline [NumStages]stageAgg // spans recorded on LanePipeline
	shards   [NumStages]stageAgg // spans recorded on lanes ≥ 0
	counters [NumCounters]atomic.Uint64
	gauges   [NumGauges]atomic.Int64
}

// NewMetrics returns an empty aggregate recorder.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) Begin(s Stage, lane int) Token { return Token(nowNanos()) }

func (m *Metrics) End(s Stage, lane int, t Token) {
	if int(s) >= NumStages {
		return
	}
	dur := nowNanos() - int64(t)
	if dur < 0 {
		dur = 0
	}
	if lane == LanePipeline {
		m.pipeline[s].record(dur)
	} else {
		m.shards[s].record(dur)
	}
}

func (m *Metrics) Add(c Counter, n uint64) {
	if int(c) < NumCounters {
		m.counters[c].Add(n)
	}
}

func (m *Metrics) Gauge(g Gauge, delta int64) {
	if int(g) < NumGauges {
		m.gauges[g].Add(delta)
	}
}

// StageSnapshot is one stage's aggregated timing.
type StageSnapshot struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// Snapshot is a point-in-time JSON-marshalable copy of a Metrics recorder.
// Pipeline holds the five non-overlapping bootstrap phases — their TotalMs
// values sum to (within bookkeeping epsilon) the end-to-end bootstrap wall
// time. Shards holds the per-shard work recorded on lanes ≥ 0 (individual
// rotations, batch sends/receives), which overlaps freely and therefore
// sums to more than wall time on a parallel run.
type Snapshot struct {
	Pipeline map[string]StageSnapshot `json:"pipeline"`
	Shards   map[string]StageSnapshot `json:"shards"`
	Counters map[string]uint64        `json:"counters"`
	Gauges   map[string]int64         `json:"gauges"`
	// ISA is the active instruction-set level of the modular kernels
	// ("avx2", "none"), as reported by the binary at startup via SetISA —
	// process-wide, so every snapshot carries it and a metrics consumer can
	// attribute timing shifts to the dispatch decision.
	ISA string `json:"isa,omitempty"`
}

// isaLevel is the process-wide kernel ISA label (see SetISA).
var isaLevel atomic.Value

// SetISA records the active instruction-set level of the compute kernels
// (e.g. ring.SIMDLevel()) for inclusion in every subsequent Snapshot. The
// obs package deliberately does not import the kernel packages — binaries
// report the level at startup or after flipping a -nosimd style switch.
func SetISA(level string) { isaLevel.Store(level) }

// ISALevel returns the recorded level, or "" if none was reported.
func ISALevel() string {
	if v := isaLevel.Load(); v != nil {
		return v.(string)
	}
	return ""
}

func snapStages(aggs *[NumStages]stageAgg) map[string]StageSnapshot {
	out := make(map[string]StageSnapshot, NumStages)
	for i := range aggs {
		a := &aggs[i]
		c := a.count.Load()
		if c == 0 {
			continue
		}
		out[Stage(i).String()] = StageSnapshot{
			Count:   c,
			TotalMs: float64(a.ns.Load()) / 1e6,
			MaxMs:   float64(a.maxNs.Load()) / 1e6,
		}
	}
	return out
}

// Snapshot copies the current aggregates. Safe to call while recording
// continues; the copy is internally consistent per field, not across
// fields.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Pipeline: snapStages(&m.pipeline),
		Shards:   snapStages(&m.shards),
		Counters: make(map[string]uint64, NumCounters),
		Gauges:   make(map[string]int64, NumGauges),
		ISA:      ISALevel(),
	}
	for i := range m.counters {
		if v := m.counters[i].Load(); v != 0 {
			s.Counters[Counter(i).String()] = v
		}
	}
	for i := range m.gauges {
		s.Gauges[Gauge(i).String()] = m.gauges[i].Load()
	}
	return s
}

// JSON renders the snapshot as indented, key-sorted JSON — the expvar-style
// exposure heapbench and the examples print after a run.
func (m *Metrics) JSON() []byte {
	b, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		// Snapshot contains only maps of scalars; marshal cannot fail.
		panic(err)
	}
	return append(b, '\n')
}

// PipelineTotalMs sums the pipeline-lane stage totals — the instrumented
// account of one (or more) bootstraps' end-to-end time.
func (m *Metrics) PipelineTotalMs() float64 {
	var ns int64
	for i := range m.pipeline {
		ns += m.pipeline[i].ns.Load()
	}
	return float64(ns) / 1e6
}

// Counter returns the current value of c.
func (m *Metrics) Counter(c Counter) uint64 {
	if int(c) >= NumCounters {
		return 0
	}
	return m.counters[c].Load()
}

// GaugeValue returns the current level of g.
func (m *Metrics) GaugeValue(g Gauge) int64 {
	if int(g) >= NumGauges {
		return 0
	}
	return m.gauges[g].Load()
}

// Combine fans events out to several recorders — typically a Metrics
// aggregate plus a Tracer timeline over the same bootstrap. Nil entries are
// dropped; zero live recorders collapse to Nop. Tokens are epoch-based
// nanosecond offsets shared by all built-in recorders, so one Begin token
// serves every End.
func Combine(rs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			if _, isNop := r.(Nop); isNop {
				continue
			}
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return multi{rs: live}
}
