package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// traceEvent is one Chrome trace_event "complete" (ph:"X") record. The
// format is the trace-event JSON the about:tracing / Perfetto UIs consume:
// timestamps and durations in microseconds, pid/tid grouping events into
// lanes. We map the bootstrap pipeline onto tid 0 and each shard lane
// (cluster node or local worker) onto tid lane+1, so a cluster run renders
// exactly like the paper's Fig. 4 overlap schedule: one row per node,
// blind rotations overlapping the network send/receive spans.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer records a Chrome trace_event timeline of the bootstrap pipeline.
// Unlike Metrics it allocates (one event per span), so it is a debugging /
// profiling recorder, not an always-on one; installing it costs one short
// mutex section per completed span.
type Tracer struct {
	mu       sync.Mutex
	baseNs   int64 // epoch offset of the tracer's t=0
	events   []traceEvent
	maxLanes int
}

// NewTracer returns a tracer whose timeline starts at the moment of the
// call.
func NewTracer() *Tracer {
	return &Tracer{baseNs: nowNanos()}
}

func (tr *Tracer) Begin(s Stage, lane int) Token { return Token(nowNanos()) }

func (tr *Tracer) End(s Stage, lane int, t Token) {
	end := nowNanos()
	start := int64(t)
	if start < tr.baseNs {
		start = tr.baseNs
	}
	if end < start {
		end = start
	}
	tid := 0
	if lane != LanePipeline {
		tid = lane + 1
	}
	cat := "shard"
	if lane == LanePipeline {
		cat = "pipeline"
	}
	ev := traceEvent{
		Name:  s.String(),
		Cat:   cat,
		Phase: "X",
		TsUs:  float64(start-tr.baseNs) / 1e3,
		DurUs: float64(end-start) / 1e3,
		Pid:   1,
		Tid:   tid,
	}
	tr.mu.Lock()
	tr.events = append(tr.events, ev)
	if tid >= tr.maxLanes {
		tr.maxLanes = tid
	}
	tr.mu.Unlock()
}

// Counters and gauges are Metrics' job; the tracer records spans only.
func (tr *Tracer) Add(Counter, uint64) {}
func (tr *Tracer) Gauge(Gauge, int64)  {}

// Trace is the decoded shape of the emitted JSON, shared with the tests
// that validate heapbench -trace output.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEvent mirrors traceEvent with exported JSON tags for decoding.
type TraceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	TsUs  float64 `json:"ts"`
	DurUs float64 `json:"dur"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
}

// PipelineTotalMs sums the durations of the pipeline-lane phase spans — the
// quantity that must agree (within scheduling epsilon) with the measured
// end-to-end bootstrap time.
func (t *Trace) PipelineTotalMs() float64 {
	var us float64
	for _, ev := range t.TraceEvents {
		if ev.Phase == "X" && ev.Cat == "pipeline" {
			us += ev.DurUs
		}
	}
	return us / 1e3
}

// WriteTo emits the timeline as Chrome trace_event JSON (the
// {"traceEvents": [...]} object form). Events are sorted by start time and
// prefixed with thread_name metadata so the lanes are labeled in the
// viewer. The tracer stays usable afterwards; WriteTo snapshots the events
// recorded so far.
func (tr *Tracer) WriteTo(w io.Writer) (int64, error) {
	tr.mu.Lock()
	events := make([]traceEvent, len(tr.events))
	copy(events, tr.events)
	lanes := tr.maxLanes
	tr.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TsUs < events[j].TsUs })

	meta := make([]traceEvent, 0, lanes+1)
	addMeta := func(tid int, name string) {
		meta = append(meta, traceEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	addMeta(0, "pipeline")
	for lane := 1; lane <= lanes; lane++ {
		addMeta(lane, fmt.Sprintf("shard-%d", lane-1))
	}

	blob, err := json.MarshalIndent(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{append(meta, events...), "ms"}, "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(append(blob, '\n'))
	return int64(n), err
}

// ParseTrace decodes trace JSON produced by WriteTo — used by the
// conformance tests and by anyone post-processing heapbench -trace output.
func ParseTrace(blob []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(blob, &t); err != nil {
		return nil, fmt.Errorf("obs: invalid trace JSON: %w", err)
	}
	return &t, nil
}
