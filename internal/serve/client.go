package serve

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"
	"time"

	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/rlwe"
)

// RejectedError is a non-fatal admission rejection: the connection is still
// usable; the job was refused with the given reason.
type RejectedError struct {
	Reason string
}

func (e *RejectedError) Error() string { return "serve: job rejected: " + e.Reason }

// IsRateLimited reports whether the rejection was the per-tenant token
// bucket.
func (e *RejectedError) IsRateLimited() bool {
	return strings.Contains(e.Reason, ErrRateLimited.Error())
}

// Client is one tenant connection to a bootstrap server. The tenant keeps
// its full bootstrapper: Prepare and Finish run locally; only the
// blind-rotate middle — which touches nothing but public material — is
// shipped to the service. Rotate is synchronous; run one Client per
// connection and multiple Clients for concurrency.
type Client struct {
	conn   io.ReadWriter
	boot   *core.Bootstrapper
	tenant string
	rec    obs.Recorder

	mu     sync.Mutex // serializes Rotate/UploadKey on this connection
	nextID uint32
	maxAcc int
}

// NewClient joins the server over conn under the given tenant name. The
// handshake checks protocol version and parameter digest both ways.
func NewClient(conn io.ReadWriter, boot *core.Bootstrapper, tenant string, rec obs.Recorder) (*Client, error) {
	rec = obs.OrNop(rec)
	local := cluster.HelloFor(boot)
	join := cluster.EncodeJoin(local, tenant)
	if err := cluster.WriteFrame(conn, &cluster.Frame{Kind: cluster.FrameJoin, Payload: join}); err != nil {
		return nil, fmt.Errorf("serve: join send: %w", err)
	}
	rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(join)))
	f, err := cluster.ReadFrame(conn, cluster.MaxErrorPayload)
	if err != nil {
		return nil, fmt.Errorf("serve: join reply: %w", err)
	}
	rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(f.Payload)))
	switch f.Kind {
	case cluster.FrameJoinAck:
	case cluster.FrameError:
		return nil, fmt.Errorf("serve: server rejected join: %s", f.Payload)
	default:
		return nil, fmt.Errorf("serve: expected join ack, got frame kind %#x", f.Kind)
	}
	peer, err := cluster.DecodeHello(f.Payload)
	if err != nil {
		return nil, err
	}
	if err := cluster.CheckHello(local, peer); err != nil {
		return nil, err
	}
	return &Client{
		conn:   conn,
		boot:   boot,
		tenant: tenant,
		rec:    rec,
		maxAcc: cluster.AccPayloadBound(boot.Params.Parameters),
	}, nil
}

// UploadKey streams the tenant's blind-rotate key into the server registry
// over the resumable chunked key-stream protocol. chunkBytes ≤ 0 takes the
// cluster default.
func (c *Client) UploadKey(chunkBytes int, timeout time.Duration) error {
	brk := c.boot.BlindRotateKey()
	if brk == nil {
		return errors.New("serve: client bootstrapper holds no blind-rotate key")
	}
	var buf bytes.Buffer
	if _, err := brk.WriteTo(&buf); err != nil {
		return err
	}
	blob := buf.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	return cluster.StreamKey(c.conn, blob, crc32.ChecksumIEEE(blob), chunkBytes, timeout, c.rec)
}

// Rotate submits one job of prepared LWE ciphertexts and blocks until every
// accumulator is back (or the job is rejected/failed). budget > 0 is the
// job's deadline, carried to the server in milliseconds; accs[i] corresponds
// to lwes[i].
func (c *Client) Rotate(lwes []*rlwe.LWECiphertext, budget time.Duration) ([]*rlwe.Ciphertext, error) {
	if len(lwes) == 0 {
		return nil, errors.New("serve: empty job")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	idxs := make([]int, len(lwes))
	for i := range idxs {
		idxs[i] = i
	}
	payload, err := cluster.EncodeBatch(idxs, lwes)
	if err != nil {
		return nil, err
	}
	var budgetMs uint32
	if budget > 0 {
		ms := (budget + time.Millisecond - 1) / time.Millisecond
		budgetMs = uint32(ms)
		if budgetMs == 0 {
			budgetMs = 1
		}
	}
	if err := cluster.WriteFrame(c.conn, &cluster.Frame{Kind: cluster.FrameBatch, Shard: id, Seq: budgetMs, Payload: payload}); err != nil {
		return nil, fmt.Errorf("serve: job send: %w", err)
	}
	c.rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(payload)))

	accs := make([]*rlwe.Ciphertext, len(lwes))
	got := 0
	for {
		f, err := cluster.ReadFrame(c.conn, c.maxAcc)
		if err != nil {
			return nil, fmt.Errorf("serve: job %d reply: %w", id, err)
		}
		c.rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(f.Payload)))
		if f.Shard != id {
			return nil, fmt.Errorf("serve: reply for job %d while waiting on %d", f.Shard, id)
		}
		switch f.Kind {
		case cluster.FrameAcc:
			idx, acc, err := cluster.DecodeAcc(f.Payload, c.boot.Params.Parameters, len(lwes))
			if err != nil {
				return nil, err
			}
			if accs[idx] != nil {
				return nil, fmt.Errorf("serve: duplicate accumulator %d for job %d", idx, id)
			}
			accs[idx] = acc
			got++
		case cluster.FrameBatchEnd:
			if got != len(lwes) {
				return nil, fmt.Errorf("serve: job %d ended with %d/%d accumulators", id, got, len(lwes))
			}
			return accs, nil
		case cluster.FrameRejected:
			reason, err := cluster.DecodeReason(f.Payload)
			if err != nil {
				reason = string(f.Payload)
			}
			return nil, &RejectedError{Reason: reason}
		case cluster.FrameError:
			return nil, fmt.Errorf("serve: job %d failed: %s", id, f.Payload)
		default:
			return nil, fmt.Errorf("serve: unexpected frame kind %#x for job %d", f.Kind, id)
		}
	}
}

// Bootstrap refreshes ct through the service: Prepare locally, ship the
// blind rotations, Finish locally. Bit-identical to boot.Bootstrap(ct) —
// the server computes the same deterministic rotations under the same key.
func (c *Client) Bootstrap(ct *rlwe.Ciphertext, budget time.Duration) (*rlwe.Ciphertext, error) {
	prep := c.boot.Prepare(ct)
	accs, err := c.Rotate(prep.LWEs, budget)
	if err != nil {
		return nil, err
	}
	return c.boot.Finish(prep, accs)
}

// Close sends a clean shutdown and closes the connection when it can.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = cluster.WriteFrame(c.conn, &cluster.Frame{Kind: cluster.FrameShutdown})
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
