package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Rejection reasons. They travel to the client as the bounded reason string
// of a FrameRejected frame; clients match them back via RejectedError.
var (
	// ErrRateLimited reports an empty per-tenant token bucket.
	ErrRateLimited = errors.New("rate limit exceeded for tenant")
	// ErrQueueFull reports the server-wide job queue at capacity
	// (reject-on-full: admission sheds load instead of buffering it).
	ErrQueueFull = errors.New("job queue full")
	// ErrDeadline reports a job whose deadline budget is smaller than the
	// projected queue wait (coalescing window + estimated batch service
	// time) — it would expire before its accumulators could be produced, so
	// it is refused at the door rather than queued to die.
	ErrDeadline = errors.New("deadline budget below projected queue wait")
)

// AdmissionConfig tunes the front door.
type AdmissionConfig struct {
	// QueueLimit caps jobs admitted but not yet dispatched (0 = unbounded).
	QueueLimit int
	// RatePerSec is each tenant's token refill rate (0 = unlimited).
	RatePerSec float64
	// Burst is each tenant's bucket capacity; defaults to max(1, RatePerSec).
	Burst float64
}

// admission is the deadline-aware front door: a server-wide reject-on-full
// queue cap plus one token bucket per tenant, so a tenant blasting jobs
// exhausts its own bucket while everyone else's tokens — and the shared
// queue space its rejected jobs never occupy — keep flowing.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
	queued  int
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(cfg AdmissionConfig, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.RatePerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &admission{cfg: cfg, now: now, buckets: make(map[string]*bucket)}
}

// admit decides one job. budget ≤ 0 means no deadline; projectedWait is the
// server's current estimate of queue wait (coalescing window + batch EWMA).
// On success the job occupies one queue slot until release.
func (a *admission) admit(tenant string, budget, projectedWait time.Duration) error {
	if budget > 0 && budget < projectedWait {
		return fmt.Errorf("serve: %w (budget %v, projected %v)", ErrDeadline, budget, projectedWait)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.QueueLimit > 0 && a.queued >= a.cfg.QueueLimit {
		return fmt.Errorf("serve: %w (%d queued)", ErrQueueFull, a.queued)
	}
	if a.cfg.RatePerSec > 0 {
		b := a.buckets[tenant]
		now := a.now()
		if b == nil {
			b = &bucket{tokens: a.cfg.Burst, last: now}
			a.buckets[tenant] = b
		} else {
			b.tokens += now.Sub(b.last).Seconds() * a.cfg.RatePerSec
			if b.tokens > a.cfg.Burst {
				b.tokens = a.cfg.Burst
			}
			b.last = now
		}
		if b.tokens < 1 {
			return fmt.Errorf("serve: %w %q", ErrRateLimited, tenant)
		}
		b.tokens--
	}
	a.queued++
	return nil
}

// release frees one queue slot (the job was dispatched to a batch or
// dropped).
func (a *admission) release() {
	a.mu.Lock()
	if a.queued > 0 {
		a.queued--
	}
	a.mu.Unlock()
}

// depth reports the jobs currently occupying queue slots.
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}
