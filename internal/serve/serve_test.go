package serve

import (
	"errors"
	"math/cmplx"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// buildBoot constructs one party at the small ring the cluster tests use.
// Every party derives the identical public parameter set; only the key
// material differs by seed, so a cold server and full tenants interoperate.
func buildBoot(t *testing.T, seed uint64, cold bool) (*ckks.Parameters, *ckks.Client, *core.Bootstrapper) {
	t.Helper()
	logN := 6
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, seed+1)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 1
	cfg.ColdStart = cold
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return params, cl, bt
}

// startServer runs srv over an in-memory listener and returns a dialer plus
// a full teardown (drain server, close listener).
func startServer(t *testing.T, srv *Server) (*cluster.PipeListener, func()) {
	t.Helper()
	l := cluster.NewPipeListener()
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(l)
	}()
	return l, func() {
		_ = l.Close()
		<-served
		srv.Close()
	}
}

func dialClient(t *testing.T, l *cluster.PipeListener, bt *core.Bootstrapper, tenant string) *Client {
	t.Helper()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(conn, bt, tenant, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func sameCiphertext(a, b *rlwe.Ciphertext) bool {
	for i := range a.C0.Limbs {
		for j := range a.C0.Limbs[i] {
			if a.C0.Limbs[i][j] != b.C0.Limbs[i][j] || a.C1.Limbs[i][j] != b.C1.Limbs[i][j] {
				return false
			}
		}
	}
	return true
}

// TestServiceCoalescesAcrossConnections is the acceptance test: two tenants,
// each with two concurrent connections submitting same-key jobs inside one
// coalescing window. The server must execute each tenant's pair as ONE
// key-major batch (counted by jobs_coalesced and serve_batches), stream
// strictly less BRK traffic than the same four jobs run sequentially, and
// return per-job accumulators bit-identical to both the sequential service
// run and the tenant's own local rotations.
func TestServiceCoalescesAcrossConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trips are slow")
	}
	before := runtime.NumGoroutine()
	_, _, serverBt := buildBoot(t, 50, true)
	// Tile 8 with 4-rotation jobs: a coalesced pair fills ONE tile (one BRK
	// pass), while the same two jobs run separately take a tile pass each —
	// the traffic assertion below measures exactly that.
	srv := NewServer(serverBt, Config{Window: 300 * time.Millisecond, Executors: 1, Tile: 8, Workers: 1})
	l, stop := startServer(t, srv)

	const (
		tenants    = 2
		connsPer   = 2
		rotsPerJob = 4
	)
	type tenantFix struct {
		name    string
		bt      *core.Bootstrapper
		clients []*Client
		lwes    [][]*rlwe.LWECiphertext // one job per client
	}
	fixes := make([]*tenantFix, tenants)
	for ti := range fixes {
		_, cl, bt := buildBoot(t, uint64(60+10*ti), false)
		fx := &tenantFix{name: string(rune('A' + ti)), bt: bt}
		for c := 0; c < connsPer; c++ {
			fx.clients = append(fx.clients, dialClient(t, l, bt, fx.name))
			v := make([]complex128, bt.Params.Slots)
			for i := range v {
				v[i] = complex(0.1*float64(ti+1), 0.05*float64(c+i%3))
			}
			prep := bt.PrepareSparse(cl.EncryptAtLevel(v, 1), rotsPerJob)
			fx.lwes = append(fx.lwes, prep.LWEs)
		}
		if err := fx.clients[0].UploadKey(0, time.Minute); err != nil {
			t.Fatalf("tenant %s key upload: %v", fx.name, err)
		}
		fixes[ti] = fx
	}

	// Phase 1: all four jobs concurrently, inside one window per tenant.
	phase1 := make([][][]*rlwe.Ciphertext, tenants)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for ti, fx := range fixes {
		phase1[ti] = make([][]*rlwe.Ciphertext, connsPer)
		for c := range fx.clients {
			wg.Add(1)
			go func(ti, c int, fx *tenantFix) {
				defer wg.Done()
				accs, err := fx.clients[c].Rotate(fx.lwes[c], 0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				phase1[ti][c] = accs
			}(ti, c, fx)
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	met := srv.Metrics()
	if got := met.Counter(obs.CounterJobsCoalesced); got != tenants*connsPer {
		t.Fatalf("jobs_coalesced = %d, want %d (every job should share a batch)", got, tenants*connsPer)
	}
	if got := met.Counter(obs.CounterServeBatches); got != tenants {
		t.Fatalf("serve_batches = %d, want %d (one key-major batch per tenant)", got, tenants)
	}
	brkCoalesced := met.Counter(obs.CounterBRKBytesStreamed)
	if brkCoalesced == 0 {
		t.Fatal("no BRK traffic recorded for the coalesced batches")
	}

	// Phase 2: the identical four jobs, one at a time. Same rotations, but
	// four batches — the BRK now streams once per job instead of once per
	// tenant pair.
	for ti, fx := range fixes {
		for c := range fx.clients {
			accs, err := fx.clients[c].Rotate(fx.lwes[c], 0)
			if err != nil {
				t.Fatal(err)
			}
			for k := range accs {
				if !sameCiphertext(accs[k], phase1[ti][c][k]) {
					t.Fatalf("tenant %s conn %d acc %d: coalesced result differs from sequential", fx.name, c, k)
				}
			}
		}
	}
	if got := met.Counter(obs.CounterServeBatches); got != tenants+tenants*connsPer {
		t.Fatalf("serve_batches = %d after sequential phase, want %d", got, tenants+tenants*connsPer)
	}
	if got := met.Counter(obs.CounterJobsCoalesced); got != tenants*connsPer {
		t.Fatalf("jobs_coalesced grew to %d during the sequential phase; single-job batches must not count", got)
	}
	brkSequential := met.Counter(obs.CounterBRKBytesStreamed) - brkCoalesced
	if brkCoalesced >= brkSequential {
		t.Fatalf("coalesced BRK traffic %d >= sequential %d: key-major batching saved nothing", brkCoalesced, brkSequential)
	}

	// The service must match the tenant's own local rotations bit for bit:
	// blind rotation is deterministic in (lwe, lut, brk), and the server's
	// LUT is params-only.
	for ti, fx := range fixes {
		for c := range fx.clients {
			for k, lwe := range fx.lwes[c] {
				ref := fx.bt.BlindRotateOne(lwe)
				if !sameCiphertext(ref, phase1[ti][c][k]) {
					t.Fatalf("tenant %s conn %d acc %d: service result differs from local rotation", fx.name, c, k)
				}
			}
		}
	}

	// Per-tenant ledgers.
	snap := srv.Snapshot()
	for _, fx := range fixes {
		ts, ok := snap.Tenants[fx.name]
		if !ok {
			t.Fatalf("tenant %s missing from snapshot", fx.name)
		}
		wantJobs := uint64(2 * connsPer) // both phases
		if ts.Admitted != wantJobs || ts.Jobs != wantJobs || ts.Rejected != 0 {
			t.Fatalf("tenant %s ledger = %+v, want %d admitted/served", fx.name, ts, wantJobs)
		}
		if ts.Coalesced != connsPer {
			t.Fatalf("tenant %s coalesced = %d, want %d", fx.name, ts.Coalesced, connsPer)
		}
	}

	for _, fx := range fixes {
		for _, cl := range fx.clients {
			_ = cl.Close()
		}
	}
	stop()
	assertNoGoroutineLeak(t, before)
}

// TestServiceBootstrapBitExact runs the full offload path — Prepare locally,
// rotate remotely, Finish locally — and checks it against the tenant's
// purely local bootstrap bit for bit, then decrypts.
func TestServiceBootstrapBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("full bootstrap round trip is slow")
	}
	_, _, serverBt := buildBoot(t, 50, true)
	srv := NewServer(serverBt, Config{Window: time.Millisecond, Executors: 1, Workers: 1})
	l, stop := startServer(t, srv)
	defer stop()

	params, cl, bt := buildBoot(t, 70, false)
	client := dialClient(t, l, bt, "tenant-solo")
	defer client.Close()
	if err := client.UploadKey(0, time.Minute); err != nil {
		t.Fatal(err)
	}

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.3*float64(i%5)/5, -0.15*float64(i%4)/4)
	}
	ct := cl.EncryptAtLevel(v, 1)
	local := bt.Bootstrap(ct.CopyNew())
	remote, err := client.Bootstrap(ct.CopyNew(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCiphertext(local, remote) {
		t.Fatal("service bootstrap differs from local bootstrap")
	}
	got := cl.Decrypt(remote)
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > 1e-2 {
			t.Fatalf("slot %d: %v want %v", i, got[i], v[i])
		}
	}
}

// syntheticJob builds one dense dim-sized LWE (cheap admission-test payload;
// the rotation it triggers is real but tiny).
func syntheticJob(dim int, twoN uint64, seed uint64) []*rlwe.LWECiphertext {
	s := ring.NewSampler(seed)
	lwe := &rlwe.LWECiphertext{A: make([]uint64, dim), Q: twoN}
	for i := range lwe.A {
		lwe.A[i] = 1 + s.UniformMod(twoN-1)
	}
	lwe.B = s.UniformMod(twoN)
	return []*rlwe.LWECiphertext{lwe}
}

// TestServiceAdmissionIsolatesTenants: a tenant that exhausts its token
// bucket is rejected non-fatally while a second tenant on the same server
// keeps being served — per-tenant buckets, shared nothing.
func TestServiceAdmissionIsolatesTenants(t *testing.T) {
	_, _, serverBt := buildBoot(t, 50, true)
	srv := NewServer(serverBt, Config{
		Window:    time.Millisecond,
		Executors: 1,
		Workers:   1,
		Admission: AdmissionConfig{RatePerSec: 0.0001, Burst: 2},
	})
	l, stop := startServer(t, srv)
	defer stop()

	dim := cluster.LWEDim(serverBt)
	twoN := uint64(2 * serverBt.Params.N())

	_, _, btA := buildBoot(t, 60, false)
	_, _, btB := buildBoot(t, 70, false)
	clA := dialClient(t, l, btA, "A")
	defer clA.Close()
	clB := dialClient(t, l, btB, "B")
	defer clB.Close()
	if err := clA.UploadKey(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := clB.UploadKey(0, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Burst of 2: jobs 1 and 2 are served, job 3 bounces off the bucket.
	for i := 0; i < 2; i++ {
		if _, err := clA.Rotate(syntheticJob(dim, twoN, uint64(100+i)), 0); err != nil {
			t.Fatalf("tenant A job %d: %v", i+1, err)
		}
	}
	_, err := clA.Rotate(syntheticJob(dim, twoN, 102), 0)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("tenant A job 3: want RejectedError, got %v", err)
	}
	if !rej.IsRateLimited() {
		t.Fatalf("tenant A job 3: want a rate-limit rejection, got %q", rej.Reason)
	}

	// The connection survives the rejection AND tenant B is untouched.
	for i := 0; i < 2; i++ {
		if _, err := clB.Rotate(syntheticJob(dim, twoN, uint64(200+i)), 0); err != nil {
			t.Fatalf("tenant B job %d after A's rejection: %v", i+1, err)
		}
	}
	_, err = clA.Rotate(syntheticJob(dim, twoN, 103), 0)
	if !errors.As(err, &rej) {
		t.Fatalf("tenant A stays rate-limited on a live conn, got %v", err)
	}

	snap := srv.Snapshot()
	if a := snap.Tenants["A"]; a.Admitted != 2 || a.Rejected != 2 {
		t.Fatalf("tenant A ledger = %+v, want 2 admitted / 2 rejected", a)
	}
	if b := snap.Tenants["B"]; b.Admitted != 2 || b.Rejected != 0 {
		t.Fatalf("tenant B ledger = %+v, want 2 admitted / 0 rejected", b)
	}
	if got := srv.Metrics().Counter(obs.CounterJobsRejected); got != 2 {
		t.Fatalf("jobs_rejected = %d, want 2", got)
	}
}

// TestServiceDeadlineRejectedAtDoor: a budget below the projected wait
// (window + batch EWMA) is refused before queueing, not left to expire.
func TestServiceDeadlineRejectedAtDoor(t *testing.T) {
	_, _, serverBt := buildBoot(t, 50, true)
	srv := NewServer(serverBt, Config{Window: 500 * time.Millisecond, Executors: 1, Workers: 1})
	l, stop := startServer(t, srv)
	defer stop()

	_, _, bt := buildBoot(t, 60, false)
	cl := dialClient(t, l, bt, "deadline-tenant")
	defer cl.Close()

	dim := cluster.LWEDim(serverBt)
	twoN := uint64(2 * serverBt.Params.N())
	_, err := cl.Rotate(syntheticJob(dim, twoN, 1), time.Millisecond)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError for a 1ms budget under a 500ms window, got %v", err)
	}
	if rej.IsRateLimited() {
		t.Fatalf("rejection should be the deadline check, got %q", rej.Reason)
	}
	// No key was ever needed: the job died at the door.
	if got := srv.Metrics().Counter(obs.CounterJobsAdmitted); got != 0 {
		t.Fatalf("jobs_admitted = %d, want 0", got)
	}
}

// TestMetricsHandlerServesSnapshot exercises the /metrics endpoint shape.
func TestMetricsHandlerServesSnapshot(t *testing.T) {
	_, _, serverBt := buildBoot(t, 50, true)
	srv := NewServer(serverBt, Config{Window: time.Millisecond})
	rr := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{`"server"`, `"tenants"`, `"registry"`, `"queue_depth"`, `"ewma_batch_ms"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %s:\n%s", want, body)
		}
	}
}
