package serve

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heap/internal/cluster"
	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// stashFixture serializes one real blind-rotate key into the chunked-upload
// wire shape.
type stashFixture struct {
	blob  []byte
	offer cluster.KeyOffer
	dim   int
}

func buildStashFixture(t *testing.T, seed uint64, chunkSize uint32) (*rlwe.Parameters, stashFixture) {
	t.Helper()
	_, _, bt := buildBoot(t, seed, false)
	var buf bytes.Buffer
	if _, err := bt.BlindRotateKey().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	count := (uint32(len(blob)) + chunkSize - 1) / chunkSize
	return bt.Params.Parameters, stashFixture{
		blob: blob,
		offer: cluster.KeyOffer{
			TotalSize:  uint64(len(blob)),
			ChunkSize:  chunkSize,
			ChunkCount: count,
			BlobCRC:    crc32.ChecksumIEEE(blob),
		},
		dim: bt.BlindRotateKey().NumKeys(),
	}
}

func (fx *stashFixture) chunk(idx uint32) []byte {
	off := int(idx) * int(fx.offer.ChunkSize)
	end := off + int(fx.offer.ChunkSize)
	if end > len(fx.blob) {
		end = len(fx.blob)
	}
	return fx.blob[off:end]
}

// TestRegistryStashDoneVsChunkRace drives the interleaving that used to be
// a data race: two connections of the same tenant, one streaming chunks
// while the other fires key-done. stashDone must detach the stash under the
// lock before it CRCs and parses the buffer, so a concurrent chunk write
// can never touch bytes the parser is reading (the race detector enforces
// exactly this under `make race`). A done that fires mid-upload drops the
// stash — the protocol's restart-from-fresh-offer rule — and the uploader
// resumes from the offer's resume point; a clean final upload must still
// land the key.
func TestRegistryStashDoneVsChunkRace(t *testing.T) {
	params, fx := buildStashFixture(t, 90, 4096)
	reg := NewRegistry(params, fx.dim, 0, nil, nil)
	const tenant = "raced"

	for round := 0; round < 3; round++ {
		stop := make(chan struct{})
		var doneOK atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the racing second connection
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.stashDone(tenant); err == nil {
					doneOK.Store(true)
				}
				runtime.Gosched()
			}
		}()

		idx := uint32(0)
		have, err := reg.stashOffer(tenant, fx.offer)
		if err != nil {
			t.Fatal(err)
		}
		idx = have
		for idx < fx.offer.ChunkCount {
			_, _, err := reg.stashChunk(tenant, idx, fx.chunk(idx))
			if err != nil {
				// The racing done deleted the stash mid-upload: restart from
				// a fresh offer, as a real uploader would.
				have, oerr := reg.stashOffer(tenant, fx.offer)
				if oerr != nil {
					t.Fatal(oerr)
				}
				idx = have
				continue
			}
			idx++
		}
		close(stop)
		wg.Wait()
		// Settle the round: either the racer landed the completed blob, or we
		// finish it ourselves (retrying the full upload if the racer's LAST
		// done consumed the stash without the chunks being complete).
		if !doneOK.Load() {
			if err := reg.stashDone(tenant); err != nil {
				if _, err := reg.stashOffer(tenant, fx.offer); err != nil {
					t.Fatal(err)
				}
				for i := uint32(0); i < fx.offer.ChunkCount; i++ {
					if _, _, err := reg.stashChunk(tenant, i, fx.chunk(i)); err != nil {
						t.Fatal(err)
					}
				}
				if err := reg.stashDone(tenant); err != nil {
					t.Fatalf("round %d: clean upload after race: %v", round, err)
				}
			}
		}
		key, rel, err := reg.Acquire(tenant)
		if err != nil {
			t.Fatalf("round %d: acquire after upload: %v", round, err)
		}
		if key.NumKeys() != fx.dim {
			t.Fatalf("round %d: key covers %d indices, want %d", round, key.NumKeys(), fx.dim)
		}
		rel()
	}
}

// TestRegistryEvictionNeverEvictsPinned stresses the LRU-vs-pin interaction:
// one goroutine repeatedly pins tenant "a" and asserts it stays resident for
// the whole pin, while churners hammer Put for other tenants against a
// byte budget that only fits two keys — every insert must evict, and the
// only legal victims are unpinned entries. The byte accounting must never
// exceed the budget.
func TestRegistryEvictionNeverEvictsPinned(t *testing.T) {
	params, fx := buildStashFixture(t, 91, 1<<20)
	key, err := readKey(params, fx)
	if err != nil {
		t.Fatal(err)
	}
	maxBytes := 2*int64(key.SizeBytes()) + 1
	reg := NewRegistry(params, fx.dim, maxBytes, nil, nil)
	if err := reg.Put("a", key); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // churner: rotate other tenants through the budget
			defer wg.Done()
			names := []string{"b", "c", "d"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.Put(names[(i+w)%len(names)], key); err != nil {
					select {
					case errc <- fmt.Errorf("churner %d put: %v", w, err):
					default:
					}
					return
				}
				if b := reg.Bytes(); b > maxBytes {
					select {
					case errc <- fmt.Errorf("churner %d: accounted bytes %d exceed budget %d", w, b, maxBytes):
					default:
					}
					return
				}
				runtime.Gosched() // don't starve the pinner on one core
			}
		}(w)
	}

	resident := func(tenant string) bool {
		for _, tk := range reg.Resident() {
			if tk.Tenant == tenant {
				return true
			}
		}
		return false
	}
	reinstalls := 0
	for i := 0; i < 300; i++ {
		got, rel, err := reg.Acquire("a")
		if err != nil {
			// Evicted while unpinned — legal. Reinstall and keep going.
			if !errors.Is(err, ErrNoKey) {
				t.Fatalf("iteration %d: %v", i, err)
			}
			reinstalls++
			if err := reg.Put("a", key); err != nil {
				t.Fatalf("iteration %d: reinstall: %v", i, err)
			}
			continue
		}
		for probe := 0; probe < 3; probe++ {
			if !resident("a") {
				t.Fatalf("iteration %d: tenant a evicted while pinned", i)
			}
			runtime.Gosched()
		}
		if got.NumKeys() != fx.dim {
			t.Fatalf("iteration %d: pinned key covers %d indices, want %d", i, got.NumKeys(), fx.dim)
		}
		rel()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	t.Logf("pinned tenant survived 300 pin cycles (%d reinstalls after unpinned evictions)", reinstalls)
}

func readKey(params *rlwe.Parameters, fx stashFixture) (*tfhe.BlindRotateKey, error) {
	return tfhe.ReadBlindRotateKey(bytes.NewReader(fx.blob), params)
}

// TestServiceKeyChurnUnderLoad runs the whole stack against a registry that
// only fits two of three tenants' keys: every upload evicts someone, and
// batches execute while other tenants' uploads churn the LRU — the pin on
// the executing batch's key is what keeps its rotations bit-exact. Evicted
// tenants see a non-fatal no-key rejection, re-upload on the same
// connection, and retry.
func TestServiceKeyChurnUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full service churn is slow")
	}
	_, _, serverBt := buildBoot(t, 92, true)
	const tenants = 3

	// Size the budget off a real key: all tenants share the parameter set,
	// so every key has the same footprint.
	_, fx := buildStashFixture(t, 93, 1<<20)
	key, err := readKey(serverBt.Params.Parameters, fx)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(serverBt, Config{
		Window:      3 * time.Millisecond,
		Executors:   2,
		Tile:        8,
		Workers:     1,
		MaxKeyBytes: 2*int64(key.SizeBytes()) + 1,
	})
	l, stop := startServer(t, srv)
	defer stop()

	dim := cluster.LWEDim(serverBt)
	twoN := uint64(2 * serverBt.Params.N())

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			_, _, bt := buildBoot(t, uint64(95+10*ti), false)
			name := fmt.Sprintf("churny-%d", ti)
			cl := dialClient(t, l, bt, name)
			defer cl.Close()
			// An upload races with the other tenants' executing batches: with
			// both budget slots pinned, the registry refuses the install
			// (ErrRegistryFull) non-fatally on a still-open connection —
			// back off and retry until a pin releases.
			uploadWithRetry := func() error {
				for attempt := 0; ; attempt++ {
					err := cl.UploadKey(0, 0)
					if err == nil {
						return nil
					}
					if attempt > 50 || !strings.Contains(err.Error(), ErrRegistryFull.Error()) {
						return err
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			if err := uploadWithRetry(); err != nil {
				errs <- fmt.Errorf("%s: initial upload: %v", name, err)
				return
			}
			for j := 0; j < 4; j++ {
				lwes := []*rlwe.LWECiphertext{
					syntheticJob(dim, twoN, uint64(5000+100*ti+j))[0],
					syntheticJob(dim, twoN, uint64(6000+100*ti+j))[0],
				}
				var accs []*rlwe.Ciphertext
				for attempt := 0; ; attempt++ {
					if attempt > 50 {
						errs <- fmt.Errorf("%s job %d: still failing after %d attempts", name, j, attempt)
						return
					}
					var err error
					accs, err = cl.Rotate(lwes, 0)
					if err == nil {
						break
					}
					rej := &RejectedError{}
					if errors.As(err, &rej) && strings.Contains(rej.Reason, ErrNoKey.Error()) {
						// Evicted by another tenant's upload: re-upload on the
						// SAME connection (rejections are non-fatal) and retry.
						if err := uploadWithRetry(); err != nil {
							errs <- fmt.Errorf("%s job %d: re-upload: %v", name, j, err)
							return
						}
						continue
					}
					errs <- fmt.Errorf("%s job %d: %v", name, j, err)
					return
				}
				for k := range accs {
					if !sameCiphertext(accs[k], bt.BlindRotateOne(lwes[k])) {
						errs <- fmt.Errorf("%s job %d acc %d differs from local rotation under key churn", name, j, k)
						return
					}
				}
			}
		}(ti)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if evicted := srv.Metrics().Counter(obs.CounterKeysEvicted); evicted == 0 {
		t.Fatal("no evictions with 3 tenants in a 2-key budget; the churn never churned")
	}
}
