package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is an injectable admission clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionTokenBucketRefills(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAdmission(AdmissionConfig{RatePerSec: 1, Burst: 2}, clk.now)

	if err := a.admit("t", 0, 0); err != nil {
		t.Fatalf("burst token 1: %v", err)
	}
	if err := a.admit("t", 0, 0); err != nil {
		t.Fatalf("burst token 2: %v", err)
	}
	if err := a.admit("t", 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty bucket must rate-limit, got %v", err)
	}
	clk.advance(time.Second) // refill exactly one token
	if err := a.admit("t", 0, 0); err != nil {
		t.Fatalf("after 1s refill: %v", err)
	}
	if err := a.admit("t", 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("the refill was one token, not two, got %v", err)
	}
	// Refill caps at burst: a long idle does not bank unbounded tokens.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if err := a.admit("t", 0, 0); err != nil {
			t.Fatalf("capped refill token %d: %v", i+1, err)
		}
	}
	if err := a.admit("t", 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("refill must cap at burst, got %v", err)
	}
}

func TestAdmissionBucketsArePerTenant(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAdmission(AdmissionConfig{RatePerSec: 1, Burst: 1}, clk.now)
	if err := a.admit("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.admit("a", 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("tenant a exhausted, got %v", err)
	}
	if err := a.admit("b", 0, 0); err != nil {
		t.Fatalf("tenant b has its own bucket: %v", err)
	}
}

func TestAdmissionQueueLimit(t *testing.T) {
	a := newAdmission(AdmissionConfig{QueueLimit: 2}, nil)
	if err := a.admit("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.admit("t", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.admit("t", 0, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue must reject, got %v", err)
	}
	if got := a.depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	a.release()
	if err := a.admit("t", 0, 0); err != nil {
		t.Fatalf("after release a slot is free: %v", err)
	}
	a.release()
	a.release()
	a.release() // extra releases never go negative
	if got := a.depth(); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
}

func TestAdmissionDeadlineBudget(t *testing.T) {
	a := newAdmission(AdmissionConfig{}, nil)
	err := a.admit("t", 5*time.Millisecond, 20*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("budget below projected wait must reject, got %v", err)
	}
	if err := a.admit("t", 50*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatalf("budget above projected wait must pass: %v", err)
	}
	if err := a.admit("t", 0, 20*time.Millisecond); err != nil {
		t.Fatalf("zero budget means unbounded: %v", err)
	}
}

func TestCoalescerPoolsPerTenantFIFO(t *testing.T) {
	c := newCoalescer(30 * time.Millisecond)
	c.add(&job{tenant: "a", id: 1})
	c.add(&job{tenant: "b", id: 2})
	c.add(&job{tenant: "a", id: 3}) // joins a's pending pool

	jobs, ok := c.next()
	if !ok || len(jobs) != 2 || jobs[0].tenant != "a" {
		t.Fatalf("first ripe pool = %v (ok=%v), want tenant a with 2 jobs", jobs, ok)
	}
	if jobs[0].id != 1 || jobs[1].id != 3 {
		t.Fatalf("pool order = %d,%d, want arrival order 1,3", jobs[0].id, jobs[1].id)
	}
	jobs, ok = c.next()
	if !ok || len(jobs) != 1 || jobs[0].tenant != "b" {
		t.Fatalf("second ripe pool = %v, want tenant b", jobs)
	}
}

func TestCoalescerWindowHoldsJobs(t *testing.T) {
	window := 80 * time.Millisecond
	c := newCoalescer(window)
	start := time.Now()
	c.add(&job{tenant: "a", id: 1})
	jobs, ok := c.next()
	if !ok || len(jobs) != 1 {
		t.Fatalf("pool = %v", jobs)
	}
	if waited := time.Since(start); waited < window-5*time.Millisecond {
		t.Fatalf("pool ripened after %v, want >= window %v", waited, window)
	}
}

func TestCoalescerCloseDrainsImmediately(t *testing.T) {
	c := newCoalescer(time.Hour) // would never ripen on its own
	c.add(&job{tenant: "a", id: 1})
	done := make(chan struct{})
	var jobs []*job
	var ok bool
	go func() {
		defer close(done)
		jobs, ok = c.next()
	}()
	time.Sleep(10 * time.Millisecond)
	c.close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("close must ripen pending pools immediately")
	}
	if !ok || len(jobs) != 1 {
		t.Fatalf("drained pool = %v (ok=%v)", jobs, ok)
	}
	if _, ok := c.next(); ok {
		t.Fatal("a closed, drained coalescer must report done")
	}
}
