// Package serve is the bootstrap-as-a-service layer: a stdlib-only network
// front end that accepts blind-rotate jobs from many concurrent tenants over
// the cluster's v3 frame protocol, resolves each tenant's evaluation key
// from a concurrent-safe registry, and coalesces same-key requests from
// different connections into key-major batches so one BRK pass through cache
// serves N users (the amortization HEAP's parallelized bootstrapping is
// built around, lifted from "one ciphertext's rotations" to "one tenant's
// concurrent requests").
//
// The split of labor mirrors the paper's trust model: blind rotation touches
// only public material (the LWE ciphertexts, the params-only LUT, and the
// tenant's public blind-rotate key), so the server computes the expensive
// middle of Algorithm 2 bit-identically to the tenant running it locally,
// while Prepare and Finish — which involve the tenant's own ciphertext
// stream — stay client-side.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"heap/internal/cluster"
	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// ErrNoKey reports a job for a tenant whose blind-rotate key is neither
// resident nor loadable; the client should upload the key and retry.
var ErrNoKey = errors.New("no blind-rotate key registered for tenant")

// ErrRegistryFull reports that the registry byte budget is exhausted by
// pinned (in-use) keys, so nothing can be evicted to make room.
var ErrRegistryFull = errors.New("key registry full: byte budget exhausted by pinned keys")

// Registry is the multi-tenant evaluation-key store (the role lattigo's
// EvaluationKeySetInterface plays for its evaluators): ref-counted so a key
// is never evicted while a batch streams it, LRU-bounded by total key bytes,
// and optionally backed by a loader for lazily materialized keys. It also
// owns the per-tenant upload stash of the chunked key-stream protocol, so a
// tenant killed mid-upload resumes from its last acked chunk on a fresh
// connection.
type Registry struct {
	params   *rlwe.Parameters
	dim      int // LWE dimension every key must cover
	maxBytes int64
	loader   func(tenant string) (*tfhe.BlindRotateKey, error)
	rec      obs.Recorder

	mu      sync.Mutex
	entries map[string]*regEntry
	loading map[string]chan struct{} // single-flight latches for loader calls
	stash   map[string]*keyRecv
	bytes   int64
	clock   uint64 // LRU tick, bumped on every acquire
}

type regEntry struct {
	key   *tfhe.BlindRotateKey
	bytes int64
	refs  int
	used  uint64
}

// keyRecv is one tenant's in-flight chunked key upload (receiver side of the
// cluster key-stream protocol, stop-and-wait).
type keyRecv struct {
	offer cluster.KeyOffer
	buf   []byte
	have  uint32 // contiguous chunks held
}

// NewRegistry builds a registry for keys of the given LWE dimension.
// maxBytes ≤ 0 means unbounded; loader may be nil (keys then arrive only via
// Put or the upload stash). rec may be nil.
func NewRegistry(params *rlwe.Parameters, dim int, maxBytes int64, loader func(string) (*tfhe.BlindRotateKey, error), rec obs.Recorder) *Registry {
	return &Registry{
		params:   params,
		dim:      dim,
		maxBytes: maxBytes,
		loader:   loader,
		rec:      obs.OrNop(rec),
		entries:  make(map[string]*regEntry),
		loading:  make(map[string]chan struct{}),
		stash:    make(map[string]*keyRecv),
	}
}

// Acquire resolves and pins tenant's key. The returned release func is
// idempotent and must be called when the batch is done streaming the key;
// until then the key cannot be evicted. Concurrent acquires of a
// loader-backed tenant load once (single flight).
func (r *Registry) Acquire(tenant string) (*tfhe.BlindRotateKey, func(), error) {
	r.mu.Lock()
	for {
		if e, ok := r.entries[tenant]; ok {
			rel := r.pinLocked(e)
			r.mu.Unlock()
			return e.key, rel, nil
		}
		ch, inFlight := r.loading[tenant]
		if !inFlight {
			break
		}
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	if r.loader == nil {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("serve: %w: %q", ErrNoKey, tenant)
	}
	ch := make(chan struct{})
	r.loading[tenant] = ch
	r.mu.Unlock()

	key, err := r.loader(tenant)

	r.mu.Lock()
	delete(r.loading, tenant)
	close(ch)
	if err != nil {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("serve: loading key for %q: %w", tenant, err)
	}
	e, err := r.insertLocked(tenant, key)
	if err != nil {
		r.mu.Unlock()
		return nil, nil, err
	}
	rel := r.pinLocked(e)
	r.mu.Unlock()
	return e.key, rel, nil
}

// pinLocked bumps the ref count and LRU tick of e (r.mu held) and returns
// the matching idempotent release.
func (r *Registry) pinLocked(e *regEntry) func() {
	e.refs++
	r.clock++
	e.used = r.clock
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			e.refs--
			r.mu.Unlock()
		})
	}
}

// Put installs (or replaces) tenant's key, evicting unpinned LRU keys as
// needed to fit the byte budget.
func (r *Registry) Put(tenant string, key *tfhe.BlindRotateKey) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.insertLocked(tenant, key)
	return err
}

func (r *Registry) insertLocked(tenant string, key *tfhe.BlindRotateKey) (*regEntry, error) {
	if key == nil || key.NumKeys() != r.dim {
		got := 0
		if key != nil {
			got = key.NumKeys()
		}
		return nil, fmt.Errorf("serve: key for %q covers %d indices, want %d", tenant, got, r.dim)
	}
	size := int64(key.SizeBytes())
	if old, ok := r.entries[tenant]; ok {
		r.bytes -= old.bytes
		delete(r.entries, tenant)
		r.rec.Gauge(obs.GaugeResidentTenants, -1)
	}
	if r.maxBytes > 0 && size > r.maxBytes {
		return nil, fmt.Errorf("serve: key for %q is %d bytes, registry budget is %d", tenant, size, r.maxBytes)
	}
	for r.maxBytes > 0 && r.bytes+size > r.maxBytes {
		if !r.evictLRULocked() {
			return nil, fmt.Errorf("serve: cannot admit %d-byte key for %q: %w", size, tenant, ErrRegistryFull)
		}
	}
	e := &regEntry{key: key, bytes: size}
	r.clock++
	e.used = r.clock
	r.entries[tenant] = e
	r.bytes += size
	r.rec.Gauge(obs.GaugeResidentTenants, +1)
	return e, nil
}

// evictLRULocked removes the least-recently-used unpinned entry; false when
// every resident key is pinned.
func (r *Registry) evictLRULocked() bool {
	victim := ""
	var oldest uint64
	for t, e := range r.entries {
		if e.refs > 0 {
			continue
		}
		if victim == "" || e.used < oldest {
			victim, oldest = t, e.used
		}
	}
	if victim == "" {
		return false
	}
	r.bytes -= r.entries[victim].bytes
	delete(r.entries, victim)
	r.rec.Add(obs.CounterKeysEvicted, 1)
	r.rec.Gauge(obs.GaugeResidentTenants, -1)
	return true
}

// TenantKey describes one resident registry entry for the metrics snapshot.
type TenantKey struct {
	Tenant string `json:"tenant"`
	Bytes  int64  `json:"bytes"`
	Refs   int    `json:"refs"`
}

// Resident snapshots the resident keys (unspecified order).
func (r *Registry) Resident() []TenantKey {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantKey, 0, len(r.entries))
	for t, e := range r.entries {
		out = append(out, TenantKey{Tenant: t, Bytes: e.bytes, Refs: e.refs})
	}
	return out
}

// Bytes returns the resident key bytes.
func (r *Registry) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// --- chunked upload stash (receiver side of cluster's key-stream protocol) ---

// stashOffer starts (or resumes) tenant's upload. The offered size must be
// exactly the full-key blob size at the registry's parameters — the receiver
// sizes its buffer from its own params, never the wire. Returns the resume
// point (contiguous chunks already held).
func (r *Registry) stashOffer(tenant string, o cluster.KeyOffer) (have uint32, err error) {
	want := tfhe.BRKBlobBytes(r.params, r.dim)
	if o.TotalSize != uint64(want) {
		return 0, fmt.Errorf("serve: key offer is %d bytes, want %d for dimension %d", o.TotalSize, want, r.dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stash[tenant]
	if st == nil || st.offer != o {
		st = &keyRecv{offer: o, buf: make([]byte, want)}
		r.stash[tenant] = st
	}
	return st.have, nil
}

// stashChunk accepts one chunk (stop-and-wait: idx must be the next chunk;
// duplicates of already-held chunks are re-acked without recounting).
// Returns the new contiguous count and whether the blob is complete.
func (r *Registry) stashChunk(tenant string, idx uint32, data []byte) (have uint32, complete bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stash[tenant]
	if st == nil {
		return 0, false, fmt.Errorf("serve: key chunk for %q without an offer", tenant)
	}
	if idx < st.have { // duplicate of an acked chunk: re-ack, don't recount
		return st.have, false, nil
	}
	if idx != st.have {
		return 0, false, fmt.Errorf("serve: key chunk %d for %q, want %d (stop-and-wait)", idx, tenant, st.have)
	}
	off := int(idx) * int(st.offer.ChunkSize)
	end := off + int(st.offer.ChunkSize)
	if end > len(st.buf) {
		end = len(st.buf)
	}
	if len(data) != end-off {
		return 0, false, fmt.Errorf("serve: key chunk %d for %q is %d bytes, want %d", idx, tenant, len(data), end-off)
	}
	copy(st.buf[off:end], data)
	st.have++
	r.rec.Add(obs.CounterKeyChunks, 1)
	r.rec.Add(obs.CounterKeyChunkBytes, uint64(len(data)))
	return st.have, st.have == st.offer.ChunkCount, nil
}

// stashDone verifies the completed blob against the offered CRC, parses it
// at the registry's parameters, and installs the key.
//
// The stash entry is detached from the map under the lock BEFORE the CRC
// and the parse touch its buffer: two connections of the same tenant racing
// an upload (one sending chunks while the other sends done) must not turn
// into an unlocked read of a buffer a stashChunk is concurrently writing —
// the registry-stress test drives exactly that interleaving under -race.
// Detaching also means a failed done (incomplete, CRC mismatch, parse
// error) drops the stash and the upload restarts from a fresh offer, which
// is the only sound resume point once the blob bytes are suspect.
func (r *Registry) stashDone(tenant string) error {
	r.mu.Lock()
	st := r.stash[tenant]
	if st == nil {
		r.mu.Unlock()
		return fmt.Errorf("serve: key done for %q without an offer", tenant)
	}
	delete(r.stash, tenant)
	r.mu.Unlock()
	if st.have != st.offer.ChunkCount {
		return fmt.Errorf("serve: key done for %q with %d/%d chunks", tenant, st.have, st.offer.ChunkCount)
	}
	if crc := crc32.ChecksumIEEE(st.buf); crc != st.offer.BlobCRC {
		return fmt.Errorf("serve: key blob CRC mismatch for %q (got %#x want %#x)", tenant, crc, st.offer.BlobCRC)
	}
	key, err := tfhe.ReadBlindRotateKey(bytes.NewReader(st.buf), r.params)
	if err != nil {
		return fmt.Errorf("serve: parsing key for %q: %w", tenant, err)
	}
	return r.Put(tenant, key)
}
