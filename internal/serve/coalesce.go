package serve

import (
	"sync"
	"time"

	"heap/internal/rlwe"
)

// job is one admitted batch request: a set of (client-local index, LWE)
// pairs from one connection, to be blind-rotated under its tenant's key.
type job struct {
	tenant   string
	id       uint32 // client-chosen job id (frame Shard), echoed on every reply
	idxs     []int
	lwes     []*rlwe.LWECiphertext
	deadline time.Time // zero = unbounded
	cw       *connWriter
	seq      uint32 // response stream sequence, owned by the executor
	failed   bool   // a reply write failed; stop sending to this job
}

// coalescer is the cross-request batching window. Admitted jobs pool per
// tenant; a tenant's pool ripens window after its first job arrived and is
// then handed to an executor whole — every concurrent same-key request in
// the window becomes one key-major batch, so the tenant's BRK streams
// through cache once for all of them. Tenants ripen in FIFO order of their
// first pending job, so a hot tenant cannot starve the others: its follow-on
// jobs pool into the *next* window while other tenants' batches run.
type coalescer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	window  time.Duration
	pending map[string][]*job
	order   []string // tenants with pending jobs, in first-arrival order
	ripeAt  map[string]time.Time
	closed  bool
}

func newCoalescer(window time.Duration) *coalescer {
	c := &coalescer{
		window:  window,
		pending: make(map[string][]*job),
		ripeAt:  make(map[string]time.Time),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// add pools one admitted job. The first job of a tenant's pool starts its
// ripening clock.
func (c *coalescer) add(j *job) {
	c.mu.Lock()
	if _, ok := c.pending[j.tenant]; !ok {
		c.order = append(c.order, j.tenant)
		c.ripeAt[j.tenant] = time.Now().Add(c.window)
	}
	c.pending[j.tenant] = append(c.pending[j.tenant], j)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// next blocks until some tenant's pool is ripe (or the coalescer is closed,
// which ripens everything immediately so admitted work drains) and returns
// the whole pool. ok is false only when closed and fully drained.
func (c *coalescer) next() (jobs []*job, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.order) > 0 {
			tenant := c.order[0]
			ripe := c.ripeAt[tenant]
			now := time.Now()
			if c.closed || !now.Before(ripe) {
				jobs = c.pending[tenant]
				delete(c.pending, tenant)
				delete(c.ripeAt, tenant)
				c.order = c.order[1:]
				return jobs, true
			}
			// Not ripe yet: wake ourselves when it is. A late timer after
			// the pool was already taken just broadcasts into the void.
			t := time.AfterFunc(ripe.Sub(now), c.cond.Broadcast)
			c.cond.Wait()
			t.Stop()
			continue
		}
		if c.closed {
			return nil, false
		}
		c.cond.Wait()
	}
}

// close drains the coalescer: pending pools ripen immediately and next
// returns false once they are gone.
func (c *coalescer) close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}
