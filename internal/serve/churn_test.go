package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"heap/internal/cluster"
	"heap/internal/obs"
	"heap/internal/rlwe"
)

// churnJob is one pre-built job with its locally computed reference
// accumulators: the ground truth every served response is checked against.
type churnJob struct {
	lwes []*rlwe.LWECiphertext
	refs []*rlwe.Ciphertext
}

// TestCoalescerChurnPropertyBitExact is the coalescer property test: N
// tenants × M connections submitting interleaved jobs under a randomized
// seeded schedule (shuffled job order, jittered start times), checked
// against three properties that must hold under EVERY interleaving:
//
//  1. Bit-exactness — each job's accumulators are identical to the
//     tenant's own BlindRotateOne, whatever batch the coalescer put the
//     job in.
//  2. Exactly-once — no job dropped, no job double-executed: every Rotate
//     returns, returns once, with exactly one accumulator per rotation,
//     and the server-side served counter matches the client-side count.
//  3. Traffic bound — brk_bytes_streamed never exceeds the sequential
//     baseline (every job its own batch); when coalescing happened, the
//     batch count is strictly below the job count.
//
// Run under -race via `make race`, this doubles as the coalescer's
// concurrency soundness check.
func TestCoalescerChurnPropertyBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("churn rounds are slow")
	}
	const (
		tenants     = 3
		connsPer    = 3
		jobsPerConn = 4
		rotsPerJob  = 4
	)
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, _, serverBt := buildBoot(t, 70, true)
			srv := NewServer(serverBt, Config{Window: 40 * time.Millisecond, Executors: 2, Tile: 8, Workers: 1})
			l, stop := startServer(t, srv)
			defer stop()

			dim := cluster.LWEDim(serverBt)
			twoN := uint64(2 * serverBt.Params.N())
			met := srv.Metrics()

			// Sequential baseline: one isolated job on its own tenant = one
			// single-job batch = one key pass. Its BRK byte delta is what a
			// no-coalescing server would stream per job.
			_, _, baseBt := buildBoot(t, 71, false)
			baseCl := dialClient(t, l, baseBt, "baseline")
			defer baseCl.Close()
			if err := baseCl.UploadKey(0, 0); err != nil {
				t.Fatal(err)
			}
			baseJob := make([]*rlwe.LWECiphertext, rotsPerJob)
			for k := range baseJob {
				baseJob[k] = syntheticJob(dim, twoN, uint64(900+k))[0]
			}
			pre := met.Counter(obs.CounterBRKBytesStreamed)
			if _, err := baseCl.Rotate(baseJob, 0); err != nil {
				t.Fatal(err)
			}
			perJobBytes := met.Counter(obs.CounterBRKBytesStreamed) - pre
			if perJobBytes == 0 {
				t.Fatal("baseline job streamed zero BRK bytes; counter broken")
			}

			// Build the fleet: per-tenant keys, per-connection job lists with
			// locally computed references.
			type connFix struct {
				cl   *Client
				jobs []churnJob
			}
			rng := rand.New(rand.NewSource(seed))
			var fleet []connFix
			for ti := 0; ti < tenants; ti++ {
				_, _, bt := buildBoot(t, uint64(80+10*ti), false)
				name := fmt.Sprintf("churn-%d", ti)
				for c := 0; c < connsPer; c++ {
					fix := connFix{cl: dialClient(t, l, bt, name)}
					for j := 0; j < jobsPerConn; j++ {
						job := churnJob{lwes: make([]*rlwe.LWECiphertext, rotsPerJob)}
						for k := range job.lwes {
							job.lwes[k] = syntheticJob(dim, twoN, uint64(1000+1000*ti+100*c+10*j+k))[0]
							job.refs = append(job.refs, bt.BlindRotateOne(job.lwes[k]))
						}
						fix.jobs = append(fix.jobs, job)
					}
					// Randomized interleaving: each connection walks its jobs
					// in a seeded shuffled order...
					rng.Shuffle(len(fix.jobs), func(a, b int) { fix.jobs[a], fix.jobs[b] = fix.jobs[b], fix.jobs[a] })
					fleet = append(fleet, fix)
					if c == 0 {
						if err := fix.cl.UploadKey(0, 0); err != nil {
							t.Fatalf("%s key upload: %v", name, err)
						}
					}
				}
			}
			defer func() {
				for _, fix := range fleet {
					_ = fix.cl.Close()
				}
			}()

			// ...after a seeded jitter, so different seeds exercise different
			// arrival orders relative to the coalescing windows.
			jitters := make([][]time.Duration, len(fleet))
			for i := range jitters {
				jitters[i] = make([]time.Duration, jobsPerConn)
				for j := range jitters[i] {
					jitters[i][j] = time.Duration(rng.Intn(5000)) * time.Microsecond
				}
			}

			preAdmitted := met.Counter(obs.CounterJobsAdmitted)
			preServed := met.Counter(obs.CounterJobsServed)
			preBytes := met.Counter(obs.CounterBRKBytesStreamed)
			preBatches := met.Counter(obs.CounterServeBatches)
			preCoalesced := met.Counter(obs.CounterJobsCoalesced)

			var wg sync.WaitGroup
			errs := make(chan error, len(fleet)*jobsPerConn)
			var servedClientSide int64
			var mu sync.Mutex
			for i := range fleet {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					fix := fleet[i]
					for j, job := range fix.jobs {
						time.Sleep(jitters[i][j])
						accs, err := fix.cl.Rotate(job.lwes, 0)
						if err != nil {
							errs <- fmt.Errorf("conn %d job %d: %v", i, j, err)
							return
						}
						if len(accs) != len(job.lwes) {
							errs <- fmt.Errorf("conn %d job %d: %d accs for %d rotations", i, j, len(accs), len(job.lwes))
							return
						}
						for k := range accs {
							if !sameCiphertext(accs[k], job.refs[k]) {
								errs <- fmt.Errorf("conn %d job %d acc %d differs from local BlindRotateOne", i, j, k)
								return
							}
						}
						mu.Lock()
						servedClientSide++
						mu.Unlock()
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if t.Failed() {
				t.FailNow()
			}

			const totalJobs = tenants * connsPer * jobsPerConn
			if servedClientSide != totalJobs {
				t.Fatalf("%d jobs returned, want %d (dropped jobs)", servedClientSide, totalJobs)
			}
			// Server-side exactly-once: the served counter settles to the
			// client-side count (the server credits a job just after the
			// BatchEnd frame the client returns on).
			deadline := time.Now().Add(5 * time.Second)
			for met.Counter(obs.CounterJobsServed)-preServed != totalJobs && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := met.Counter(obs.CounterJobsServed) - preServed; got != totalJobs {
				t.Fatalf("server served counter %d, want %d (dropped or double-executed)", got, totalJobs)
			}
			if got := met.Counter(obs.CounterJobsAdmitted) - preAdmitted; got != totalJobs {
				t.Fatalf("server admitted %d, want %d", got, totalJobs)
			}

			bytes := met.Counter(obs.CounterBRKBytesStreamed) - preBytes
			batches := met.Counter(obs.CounterServeBatches) - preBatches
			coalesced := met.Counter(obs.CounterJobsCoalesced) - preCoalesced
			if bytes > totalJobs*perJobBytes {
				t.Fatalf("coalesced run streamed %d BRK bytes, sequential baseline is %d×%d=%d",
					bytes, totalJobs, perJobBytes, totalJobs*perJobBytes)
			}
			if coalesced == 0 {
				t.Fatalf("no coalescing across %d same-tenant connections inside a %v window", connsPer, 40*time.Millisecond)
			}
			if batches >= totalJobs {
				t.Fatalf("%d batches for %d jobs with %d coalesced: coalescing saved nothing", batches, totalJobs, coalesced)
			}
			t.Logf("seed %d: %d jobs in %d batches (%d coalesced), BRK %d vs sequential %d bytes",
				seed, totalJobs, batches, coalesced, bytes, totalJobs*perJobBytes)
		})
	}
}
