package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/tfhe"

	"heap/internal/rlwe"
)

// Config tunes one Server.
type Config struct {
	// MaxKeyBytes bounds the registry's resident key bytes (0 = unbounded).
	MaxKeyBytes int64
	// Loader lazily materializes a tenant's key on first use (nil = keys
	// arrive only via client upload).
	Loader func(tenant string) (*tfhe.BlindRotateKey, error)
	// Admission is the front-door policy.
	Admission AdmissionConfig
	// Window is the coalescing window: how long a tenant's first pending
	// job waits for same-key company before its batch dispatches
	// (default 10ms).
	Window time.Duration
	// Executors is the number of concurrent batch executors (default 1).
	Executors int
	// Tile and Workers tune the key-major batch engine (0 = bootstrapper
	// defaults).
	Tile, Workers int
	// Recorder receives events in addition to the server's own Metrics
	// aggregate (optional).
	Recorder obs.Recorder
	// Now is the server's clock (nil = time.Now). It drives the admission
	// token buckets, deadline stamping, and queue-expiry checks, so a test
	// or deterministic load harness can replay the same arrival schedule
	// against the same admission decisions. The coalescing-window timer
	// stays on the real clock: it is a wait, not a decision.
	Now func() time.Time
}

// Server is the bootstrap service: it speaks the cluster's v3 frame protocol
// to any number of tenant connections, pools admitted same-tenant jobs in a
// coalescing window, and executes each pool as one key-major batch under the
// tenant's registered key — one BRK pass through cache per window instead of
// one per request. The bootstrapper provides the parameter set, LUT, and
// scratch pools only (ColdStart — the server needs no key material of its
// own; blind rotation is deterministic in the request and the tenant's
// public key, so results are bit-identical to tenant-local execution).
type Server struct {
	boot *core.Bootstrapper
	reg  *Registry
	adm  *admission
	co   *coalescer
	cfg  Config
	met  *obs.Metrics
	rec  obs.Recorder

	hello    cluster.Hello
	dim      int
	maxBatch int
	twoN     uint64
	maxRead  int // payload bound for the connection read loop
	now      func() time.Time

	mu      sync.Mutex
	tenants map[string]*TenantStats
	conns   map[io.ReadWriter]struct{}
	closing bool
	ewmaMs  float64 // EWMA of batch service time, feeds admission's wait projection
	startEx sync.Once
	execWG  sync.WaitGroup
	connWG  sync.WaitGroup
}

// TenantStats is one tenant's admission/coalescing ledger. Admitted jobs
// are partitioned by terminal outcome — Jobs (served), Expired (deadline
// passed while queued), Failed (connection died mid-reply or the batch
// rotation errored) — so at quiesce Admitted = Jobs + Expired + Failed:
// the consistency invariant the shutdown tests assert. Rejected counts
// every non-fatal refusal the tenant saw (door rejections plus Expired,
// which is refused at dispatch).
type TenantStats struct {
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Coalesced uint64 `json:"coalesced"`
	Jobs      uint64 `json:"jobs"` // jobs fully served
	Rotations uint64 `json:"rotations"`
	Expired   uint64 `json:"expired"`
	Failed    uint64 `json:"failed"`
}

// NewServer builds a server around boot (typically ColdStart: the server
// carries no tenant key material; the registry does).
func NewServer(boot *core.Bootstrapper, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Millisecond
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	met := obs.NewMetrics()
	rec := obs.Combine(met, cfg.Recorder)
	// Kernel counters (brk_bytes_streamed, blind_rotate_tiles, …) from the
	// batch engine land in the same aggregate as the service counters.
	boot.SetRecorder(rec)
	dim := cluster.LWEDim(boot)
	p := boot.Params.Parameters
	s := &Server{
		boot:     boot,
		reg:      NewRegistry(p, dim, cfg.MaxKeyBytes, cfg.Loader, rec),
		adm:      newAdmission(cfg.Admission, cfg.Now),
		now:      cfg.Now,
		co:       newCoalescer(cfg.Window),
		cfg:      cfg,
		met:      met,
		rec:      rec,
		hello:    cluster.HelloFor(boot),
		dim:      dim,
		maxBatch: p.N(),
		twoN:     uint64(2 * p.N()),
		tenants:  make(map[string]*TenantStats),
		conns:    make(map[io.ReadWriter]struct{}),
	}
	s.maxRead = cluster.BatchPayloadBound(s.maxBatch, dim)
	for _, b := range []int{cluster.JoinPayloadBound, cluster.MaxKeyChunkPayload, cluster.MaxErrorPayload} {
		if b > s.maxRead {
			s.maxRead = b
		}
	}
	return s
}

// Registry exposes the key registry (seeding keys without an upload).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server's aggregate recorder.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// QueueDepth reports the jobs currently admitted but not yet dispatched —
// the level the load harness samples to prove admission keeps the queue
// bounded under overload (Snapshot carries the same figure, but building a
// full snapshot per sample is too heavy for a sub-millisecond sampler).
func (s *Server) QueueDepth() int { return s.adm.depth() }

// Serve accepts tenant connections until the listener fails (e.g. it was
// closed). Safe to run from multiple goroutines over multiple listeners;
// executors start once.
func (s *Server) Serve(l cluster.Listener) error {
	s.startEx.Do(func() {
		for i := 0; i < s.cfg.Executors; i++ {
			s.execWG.Add(1)
			go func() {
				defer s.execWG.Done()
				for {
					jobs, ok := s.co.next()
					if !ok {
						return
					}
					s.execBatch(jobs)
				}
			}()
		}
	})
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			closeIfCloser(conn)
			return errors.New("serve: server closing")
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// Close drains the server: open connections are closed, admitted jobs run to
// completion (their reply writes fail harmlessly if the conn died), and the
// executors exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closing = true
	conns := make([]io.ReadWriter, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		closeIfCloser(c)
	}
	s.connWG.Wait()
	s.co.close()
	s.execWG.Wait()
}

func closeIfCloser(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close()
	}
}

// connWriter serializes frame writes from the read loop (acks, rejections)
// and the executors (accumulator streams) onto one connection.
type connWriter struct {
	mu   sync.Mutex
	conn io.ReadWriter
	rec  obs.Recorder
}

func (cw *connWriter) write(f *cluster.Frame) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := cluster.WriteFrame(cw.conn, f); err != nil {
		return err
	}
	cw.rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(f.Payload)))
	return nil
}

func (s *Server) stats(tenant string) *TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &TenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// handleConn runs one tenant connection: join handshake, then a read loop
// over batch submissions, key-upload frames, and probes.
func (s *Server) handleConn(conn io.ReadWriter) {
	defer func() {
		closeIfCloser(conn)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cw := &connWriter{conn: conn, rec: s.rec}

	f, err := cluster.ReadFrame(conn, cluster.JoinPayloadBound)
	if err != nil {
		return
	}
	s.rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(f.Payload)))
	if f.Kind != cluster.FrameJoin {
		s.failConn(cw, fmt.Errorf("serve: expected join, got frame kind %#x", f.Kind))
		return
	}
	peer, tenant, err := cluster.DecodeJoin(f.Payload)
	if err != nil {
		s.failConn(cw, err)
		return
	}
	if tenant == "" {
		s.failConn(cw, errors.New("serve: empty tenant name"))
		return
	}
	if err := cluster.CheckHello(s.hello, peer); err != nil {
		s.failConn(cw, err)
		return
	}
	if err := cw.write(&cluster.Frame{Kind: cluster.FrameJoinAck, Payload: cluster.EncodeHello(s.hello)}); err != nil {
		return
	}

	for {
		f, err := cluster.ReadFrame(conn, s.maxRead)
		if err != nil {
			return // EOF, closed conn, or garbage: the tenant is gone
		}
		s.rec.Add(obs.CounterBytesFramed, cluster.WireSize(len(f.Payload)))
		switch f.Kind {
		case cluster.FrameBatch:
			s.submit(cw, tenant, f)
		case cluster.FrameKeyOffer, cluster.FrameKeyChunk, cluster.FrameKeyDone:
			if err := s.handleKey(cw, tenant, f); err != nil {
				s.failConn(cw, err)
				// A registry-full refusal is transient — every budget byte is
				// momentarily pinned by executing batches — and it can only
				// surface at the final install, with the wire protocol at a
				// clean frame boundary. The tenant keeps its connection and
				// retries the upload once a pin releases; protocol and parse
				// errors still drop the connection.
				if errors.Is(err, ErrRegistryFull) {
					continue
				}
				return
			}
		case cluster.FrameProbe:
			if err := cw.write(&cluster.Frame{Kind: cluster.FrameProbeAck, Payload: f.Payload}); err != nil {
				return
			}
		case cluster.FrameShutdown, cluster.FrameLeave:
			return
		default:
			s.failConn(cw, fmt.Errorf("serve: unknown frame kind %#x", f.Kind))
			return
		}
	}
}

// failConn reports a per-connection error (bounded, best effort); the
// caller decides whether the connection survives it.
func (s *Server) failConn(cw *connWriter, err error) {
	msg := err.Error()
	if len(msg) > cluster.MaxErrorPayload {
		msg = msg[:cluster.MaxErrorPayload]
	}
	_ = cw.write(&cluster.Frame{Kind: cluster.FrameError, Payload: []byte(msg)})
}

// reject refuses one job non-fatally: the connection stays usable and the
// client sees the reason.
func (s *Server) reject(cw *connWriter, tenant string, jobID uint32, reason error) {
	s.rec.Add(obs.CounterJobsRejected, 1)
	ts := s.stats(tenant)
	s.mu.Lock()
	ts.Rejected++
	s.mu.Unlock()
	_ = cw.write(&cluster.Frame{
		Kind:    cluster.FrameRejected,
		Shard:   jobID,
		Payload: cluster.EncodeReason(reason.Error()),
	})
}

// submit decodes one batch request and runs it through admission into the
// coalescer. The batch frame's seq field carries the client's deadline
// budget in milliseconds (0 = unbounded), exactly as in the cluster
// protocol.
func (s *Server) submit(cw *connWriter, tenant string, f *cluster.Frame) {
	idxs, lwes, err := cluster.DecodeBatch(f.Payload, s.maxBatch, s.dim, s.twoN)
	if err != nil {
		s.reject(cw, tenant, f.Shard, err)
		return
	}
	budget := time.Duration(f.Seq) * time.Millisecond
	s.mu.Lock()
	projected := s.cfg.Window + time.Duration(s.ewmaMs*float64(time.Millisecond))
	s.mu.Unlock()
	if err := s.adm.admit(tenant, budget, projected); err != nil {
		s.reject(cw, tenant, f.Shard, err)
		return
	}
	j := &job{tenant: tenant, id: f.Shard, idxs: idxs, lwes: lwes, cw: cw}
	if budget > 0 {
		j.deadline = s.now().Add(budget)
	}
	s.rec.Add(obs.CounterJobsAdmitted, 1)
	s.rec.Gauge(obs.GaugeQueueDepth, 1)
	ts := s.stats(tenant)
	s.mu.Lock()
	ts.Admitted++
	s.mu.Unlock()
	s.co.add(j)
}

// handleKey runs the receiver side of the chunked key upload against the
// registry's per-tenant stash. The stash is keyed by tenant, not connection,
// so an upload killed mid-stream resumes from the last acked chunk on a
// fresh connection.
func (s *Server) handleKey(cw *connWriter, tenant string, f *cluster.Frame) error {
	switch f.Kind {
	case cluster.FrameKeyOffer:
		offer, err := cluster.DecodeKeyOffer(f.Payload)
		if err != nil {
			return err
		}
		have, err := s.reg.stashOffer(tenant, offer)
		if err != nil {
			return err
		}
		return cw.write(&cluster.Frame{Kind: cluster.FrameKeyResume, Payload: cluster.EncodeKeyResume(have, offer.BlobCRC)})
	case cluster.FrameKeyChunk:
		have, _, err := s.reg.stashChunk(tenant, f.Seq, f.Payload)
		if err != nil {
			return err
		}
		return cw.write(&cluster.Frame{Kind: cluster.FrameKeyAck, Payload: cluster.EncodeKeyResume(have, 0)})
	case cluster.FrameKeyDone:
		if err := s.reg.stashDone(tenant); err != nil {
			return err
		}
		return cw.write(&cluster.Frame{Kind: cluster.FrameKeyDone, Payload: f.Payload})
	}
	return fmt.Errorf("serve: unexpected key frame kind %#x", f.Kind)
}

// execBatch runs one tenant's coalesced pool as a single key-major batch:
// one registry Acquire, one BlindRotateBatchWithKey over the concatenated
// LWEs, accumulators streamed back per job as tiles complete.
func (s *Server) execBatch(jobs []*job) {
	tenant := jobs[0].tenant
	now := s.now()
	live := jobs[:0]
	for _, j := range jobs {
		s.adm.release()
		s.rec.Gauge(obs.GaugeQueueDepth, -1)
		if !j.deadline.IsZero() && now.After(j.deadline) {
			s.reject(j.cw, tenant, j.id, fmt.Errorf("%w (expired while queued)", ErrDeadline))
			s.rec.Add(obs.CounterJobsExpired, 1)
			ts := s.stats(tenant)
			s.mu.Lock()
			ts.Expired++
			s.mu.Unlock()
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	brk, release, err := s.reg.Acquire(tenant)
	if err != nil {
		s.rec.Add(obs.CounterJobsFailed, uint64(len(live)))
		ts := s.stats(tenant)
		s.mu.Lock()
		ts.Failed += uint64(len(live))
		s.mu.Unlock()
		for _, j := range live {
			s.reject(j.cw, tenant, j.id, err)
		}
		return
	}
	defer release()

	total := 0
	for _, j := range live {
		total += len(j.lwes)
	}
	type slot struct {
		j     *job
		local int // client-local LWE index
	}
	slots := make([]slot, 0, total)
	lwes := make([]*rlwe.LWECiphertext, 0, total)
	for _, j := range live {
		for k, lwe := range j.lwes {
			slots = append(slots, slot{j, j.idxs[k]})
			lwes = append(lwes, lwe)
		}
	}
	accs := make([]*rlwe.Ciphertext, total)

	s.rec.Gauge(obs.GaugeInFlightShards, int64(len(live)))
	start := time.Now()
	var sendMu sync.Mutex
	opts := tfhe.BatchOptions{
		Tile:    s.cfg.Tile,
		Workers: s.cfg.Workers,
		OnTile: func(lo, hi int) error {
			// Stream finished accumulators while later tiles still rotate.
			// sendMu serializes concurrent worker tiles; per-conn ordering
			// within a job is the executor's responsibility (seq).
			sendMu.Lock()
			defer sendMu.Unlock()
			for k := lo; k < hi; k++ {
				sl := slots[k]
				if sl.j.failed {
					continue
				}
				payload, err := cluster.EncodeAcc(sl.local, accs[k])
				if err != nil {
					sl.j.failed = true
					continue
				}
				f := &cluster.Frame{Kind: cluster.FrameAcc, Shard: sl.j.id, Seq: sl.j.seq, Payload: payload}
				if err := sl.j.cw.write(f); err != nil {
					sl.j.failed = true // conn is gone; finish the batch for the others
					continue
				}
				sl.j.seq++
				accs[k] = nil
			}
			return nil
		},
	}
	rotErr := s.boot.BlindRotateBatchWithKey(accs, lwes, brk, opts)
	elapsedMs := float64(time.Since(start)) / float64(time.Millisecond)
	s.rec.Gauge(obs.GaugeInFlightShards, -int64(len(live)))

	s.rec.Add(obs.CounterServeBatches, 1)
	if len(live) > 1 {
		s.rec.Add(obs.CounterJobsCoalesced, uint64(len(live)))
	}
	ts := s.stats(tenant)
	s.mu.Lock()
	if len(live) > 1 {
		ts.Coalesced += uint64(len(live))
	}
	if s.ewmaMs == 0 {
		s.ewmaMs = elapsedMs
	} else {
		s.ewmaMs = 0.8*s.ewmaMs + 0.2*elapsedMs
	}
	s.mu.Unlock()

	for _, j := range live {
		if rotErr != nil {
			if !j.failed {
				s.failConn(j.cw, rotErr)
			}
			s.jobFailed(ts)
			continue
		}
		if j.failed {
			s.jobFailed(ts)
			continue
		}
		end := make([]byte, 4)
		binary.LittleEndian.PutUint32(end, uint32(len(j.lwes)))
		if err := j.cw.write(&cluster.Frame{Kind: cluster.FrameBatchEnd, Shard: j.id, Seq: uint32(len(j.lwes)), Payload: end}); err != nil {
			s.jobFailed(ts)
			continue
		}
		s.rec.Add(obs.CounterJobsServed, 1)
		s.mu.Lock()
		ts.Jobs++
		ts.Rotations += uint64(len(j.lwes))
		s.mu.Unlock()
	}
}

// jobFailed records one admitted job's terminal failure (conn gone or batch
// error) in both the counter ledger and the tenant ledger.
func (s *Server) jobFailed(ts *TenantStats) {
	s.rec.Add(obs.CounterJobsFailed, 1)
	s.mu.Lock()
	ts.Failed++
	s.mu.Unlock()
}

// ServiceSnapshot is the /metrics JSON document: the obs aggregate plus the
// per-tenant ledgers and the resident registry.
type ServiceSnapshot struct {
	Server      obs.Snapshot           `json:"server"`
	Tenants     map[string]TenantStats `json:"tenants"`
	Registry    []TenantKey            `json:"registry"`
	QueueDepth  int                    `json:"queue_depth"`
	EWMABatchMs float64                `json:"ewma_batch_ms"`
}

// Snapshot collects a point-in-time service snapshot.
func (s *Server) Snapshot() ServiceSnapshot {
	s.mu.Lock()
	tenants := make(map[string]TenantStats, len(s.tenants))
	for t, st := range s.tenants {
		tenants[t] = *st
	}
	ewma := s.ewmaMs
	s.mu.Unlock()
	return ServiceSnapshot{
		Server:      s.met.Snapshot(),
		Tenants:     tenants,
		Registry:    s.reg.Resident(),
		QueueDepth:  s.adm.depth(),
		EWMABatchMs: ewma,
	}
}

// MetricsHandler serves the snapshot as indented JSON — the expvar-style
// endpoint heapd mounts at /metrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		b = append(b, '\n')
		_, _ = w.Write(b)
	})
}
