package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heap/internal/obs"
	"heap/internal/tfhe"
)

// regFixture builds a registry plus freshly generated keys of the right
// dimension (every key the same size, so byte budgets count in keys).
func regFixture(t *testing.T, maxKeys int64, loader func(string) (*tfhe.BlindRotateKey, error), rec obs.Recorder) (*Registry, func(seed uint64) *tfhe.BlindRotateKey, int64) {
	t.Helper()
	_, _, bt := buildBoot(t, 40, false)
	size := int64(bt.BlindRotateKey().SizeBytes())
	gen := func(seed uint64) *tfhe.BlindRotateKey {
		_, _, tb := buildBoot(t, seed, false)
		return tb.BlindRotateKey()
	}
	p := bt.Params.Parameters
	var budget int64
	if maxKeys > 0 {
		budget = maxKeys * size
	}
	return NewRegistry(p, bt.Params.N(), budget, loader, rec), gen, size
}

func TestRegistryLRUEviction(t *testing.T) {
	met := obs.NewMetrics()
	reg, gen, size := regFixture(t, 2, nil, met)

	if err := reg.Put("a", gen(41)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("b", gen(42)); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU victim.
	if _, rel, err := reg.Acquire("a"); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if err := reg.Put("c", gen(43)); err != nil {
		t.Fatal(err)
	}

	resident := map[string]bool{}
	for _, tk := range reg.Resident() {
		resident[tk.Tenant] = true
	}
	if !resident["a"] || !resident["c"] || resident["b"] {
		t.Fatalf("resident = %v, want a and c with b evicted", resident)
	}
	if got := met.Counter(obs.CounterKeysEvicted); got != 1 {
		t.Fatalf("keys_evicted = %d, want 1", got)
	}
	if got := reg.Bytes(); got != 2*size {
		t.Fatalf("resident bytes = %d, want %d", got, 2*size)
	}
	if got := met.GaugeValue(obs.GaugeResidentTenants); got != 2 {
		t.Fatalf("resident_tenants gauge = %d, want 2", got)
	}
}

func TestRegistryPinBlocksEviction(t *testing.T) {
	reg, gen, _ := regFixture(t, 1, nil, nil)
	if err := reg.Put("a", gen(41)); err != nil {
		t.Fatal(err)
	}
	_, rel, err := reg.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	// a is pinned and the budget is one key: b cannot be admitted.
	if err := reg.Put("b", gen(42)); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("want ErrRegistryFull while a is pinned, got %v", err)
	}
	rel()
	rel() // idempotent: the second release must not double-decrement
	if err := reg.Put("b", gen(42)); err != nil {
		t.Fatalf("after release the LRU key must give way: %v", err)
	}
	for _, tk := range reg.Resident() {
		if tk.Tenant == "a" {
			t.Fatal("a should have been evicted after its pin was released")
		}
	}
}

func TestRegistryLoaderSingleFlight(t *testing.T) {
	var calls atomic.Int32
	var key *tfhe.BlindRotateKey
	loader := func(tenant string) (*tfhe.BlindRotateKey, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // widen the single-flight race window
		return key, nil
	}
	reg, gen, _ := regFixture(t, 0, loader, nil)
	key = gen(41)

	const waiters = 4
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, rel, err := reg.Acquire("lazy")
			if err == nil {
				if k != key {
					errs[i] = errors.New("acquired a different key instance")
				}
				rel()
			} else {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times for concurrent acquires, want 1 (single flight)", got)
	}
}

func TestRegistryNoKeyNoLoader(t *testing.T) {
	reg, _, _ := regFixture(t, 0, nil, nil)
	if _, _, err := reg.Acquire("stranger"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("want ErrNoKey, got %v", err)
	}
}

func TestRegistryLoaderErrorPropagates(t *testing.T) {
	boom := errors.New("cold storage down")
	loader := func(string) (*tfhe.BlindRotateKey, error) { return nil, boom }
	reg, _, _ := regFixture(t, 0, loader, nil)
	if _, _, err := reg.Acquire("x"); !errors.Is(err, boom) {
		t.Fatalf("want the loader error, got %v", err)
	}
	// The single-flight latch must be gone: a second acquire retries.
	if _, _, err := reg.Acquire("x"); !errors.Is(err, boom) {
		t.Fatalf("second acquire after loader failure: %v", err)
	}
}

func TestRegistryRejectsWrongDimension(t *testing.T) {
	reg, _, _ := regFixture(t, 0, nil, nil)
	if err := reg.Put("a", nil); err == nil || !strings.Contains(err.Error(), "covers 0 indices") {
		t.Fatalf("nil key must be rejected with the dimension message, got %v", err)
	}
}

func TestRegistryStashStopAndWait(t *testing.T) {
	reg, _, _ := regFixture(t, 0, nil, nil)
	// A chunk without an offer is a protocol error.
	if _, _, err := reg.stashChunk("t", 0, nil); err == nil {
		t.Fatal("chunk without offer must error")
	}
	if err := reg.stashDone("t"); err == nil {
		t.Fatal("done without offer must error")
	}
}
