// Package load is the serving layer's load harness: it drives a full
// in-process bootstrap service (internal/serve: frame protocol, tenant key
// registry, admission control, cross-connection coalescing, key-major batch
// executors) end to end through the real serve.Client, under configurable
// arrival processes, and reports the scaling numbers every parallel-feature
// claim in this repository should come with — achieved jobs/s vs offered
// load, per-job latency percentiles from a lock-free histogram, admission
// rejection rates, and the coalescing efficiency read back from the obs
// counters.
//
// Two drive modes:
//
//   - Closed loop (OfferedRate = 0): every connection keeps exactly one job
//     in flight, back to back. Throughput is the service's saturation
//     capacity at the configured concurrency; latency is the self-clocked
//     service time. This is the mode for worker/executor scaling curves.
//
//   - Open loop (OfferedRate > 0): arrivals fire on a precomputed seeded
//     schedule regardless of how the service is keeping up — the only mode
//     that can push a service past saturation, which is exactly what the
//     overload tests need. Latency is measured from the scheduled arrival
//     instant, so queueing delay (including the client-side connection
//     queue) counts, the way a real caller would experience it.
//
// Both modes are deterministic given Config.Seed: the schedule, tenant
// choices, connection choices, and payloads are all derived from one seeded
// source before the measured section starts. Combined with the virtual
// Clock (serve.Config.Now) the harness doubles as the deterministic
// concurrency test driver for the overload suite.
package load

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/serve"
)

// Config shapes one load run. The zero value is not runnable; Jobs and (for
// open loop) OfferedRate must be set. Service-side knobs mirror
// serve.Config.
type Config struct {
	// --- service shape ---
	Tenants        int                   // distinct keys (default 2)
	ConnsPerTenant int                   // concurrent connections per tenant (default 2)
	Window         time.Duration         // coalescing window (default 5ms)
	Executors      int                   // concurrent batch executors (default 1)
	Workers        int                   // batch workers per executor (default 1)
	Tile           int                   // key-major tile (0 = engine default)
	Admission      serve.AdmissionConfig // front-door policy
	MaxKeyBytes    int64                 // registry byte budget (0 = unbounded)
	Now            func() time.Time      // virtual clock hook (nil = real time)

	// --- offered load ---
	Pattern     Pattern       // arrival pattern (default Uniform)
	Jobs        int           // total jobs to issue across the run
	RotsPerJob  int           // rotations per job (default 4)
	PayloadPool int           // distinct pre-built payloads per tenant (default 4)
	OfferedRate float64       // jobs/s across the system; 0 = closed loop
	Budget      time.Duration // per-job deadline budget (0 = unbounded)
	ZipfS       float64       // hot-key skew exponent (default 1.2)
	BurstLen    time.Duration // bursty: on-window length (default 50ms)
	GapLen      time.Duration // bursty: off-window length (default 150ms)
	Seed        uint64        // drives schedule, payloads, and tenant keys

	// --- plumbing ---
	TCP    bool // real loopback TCP instead of in-memory pipes
	Verify bool // check every served job bit-exact vs the tenant's local BlindRotateOne
	Warmup bool // run one uncounted job per tenant first (pins keys, seeds the EWMA)
}

// Result is one load point, JSON-shaped for the BENCH_load matrix.
type Result struct {
	Pattern        string  `json:"pattern"`
	ClosedLoop     bool    `json:"closed_loop"`
	OfferedPerSec  float64 `json:"offered_jobs_per_sec"` // 0 in closed loop
	Tenants        int     `json:"tenants"`
	Conns          int     `json:"conns_per_tenant"`
	RotsPerJob     int     `json:"rot_per_job"`
	Executors      int     `json:"executors"`
	Workers        int     `json:"workers"`
	WindowMs       float64 `json:"window_ms"`
	BudgetMs       float64 `json:"budget_ms,omitempty"`
	WallMs         float64 `json:"wall_ms"`
	Issued         int     `json:"issued"`
	Served         int     `json:"served"`
	Rejected       int     `json:"rejected"`
	RateLimited    int     `json:"rejected_rate_limited"`
	Failed         int     `json:"failed"`
	AchievedPerSec float64 `json:"achieved_jobs_per_sec"`
	RotPerSec      float64 `json:"rot_per_sec"`
	RejectionRate  float64 `json:"rejection_rate"`

	// Latency of served jobs only. Latency is the response time a caller
	// experiences: measured from the scheduled arrival instant in open loop
	// (client-side queueing counts), from issue in closed loop.
	// ServiceLatency is measured from the moment Rotate is issued on the
	// wire in both modes — the figure the server's deadline budget actually
	// governs, since admission cannot see a job before it arrives.
	Latency        obs.HistSnapshot `json:"latency"`
	ServiceLatency obs.HistSnapshot `json:"service_latency"`
	OverBudget     int              `json:"served_over_budget"`

	// Sampled during the run: the queue-bound proof under overload.
	MaxQueueDepth int `json:"max_queue_depth"`

	// Server-side ledger and coalescing efficiency, from the obs counters.
	Admitted       uint64  `json:"jobs_admitted"`
	Expired        uint64  `json:"jobs_expired"`
	SrvServed      uint64  `json:"jobs_served"`
	SrvFailed      uint64  `json:"jobs_failed"`
	SrvRejected    uint64  `json:"jobs_rejected"`
	Coalesced      uint64  `json:"jobs_coalesced"`
	Batches        uint64  `json:"serve_batches"`
	BRKBytes       uint64  `json:"brk_bytes_streamed"`
	CoalescedFrac  float64 `json:"coalesced_fraction"`
	BRKBytesPerRot float64 `json:"brk_bytes_per_rot"`
}

// LedgerGap returns admitted − (served + expired + failed) from the server
// counters. At quiesce (run drained, server closed) it must be zero: every
// admitted job reached exactly one terminal state.
func (r Result) LedgerGap() int64 {
	return int64(r.Admitted) - int64(r.SrvServed) - int64(r.Expired) - int64(r.SrvFailed)
}

func (cfg *Config) defaults() error {
	if cfg.Jobs <= 0 {
		return fmt.Errorf("load: Config.Jobs must be positive")
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 2
	}
	if cfg.ConnsPerTenant <= 0 {
		cfg.ConnsPerTenant = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Millisecond
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.RotsPerJob <= 0 {
		cfg.RotsPerJob = 4
	}
	if cfg.PayloadPool <= 0 {
		cfg.PayloadPool = 4
	}
	if cfg.Pattern == "" {
		cfg.Pattern = Uniform
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 50 * time.Millisecond
	}
	if cfg.GapLen <= 0 {
		cfg.GapLen = 150 * time.Millisecond
	}
	return nil
}

// benchBoot builds one party at the small ring the serve tests use (N=64,
// three 30-bit limbs): real kernels end to end, cheap enough that a sweep
// matrix finishes in CI time. The harness measures scheduling — admission,
// coalescing, executor fan-out — not kernel speed, so the small ring is the
// right instrument.
func benchBoot(seed uint64, cold bool, workers int) (*core.Bootstrapper, error) {
	logN := 6
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = workers
	cfg.ColdStart = cold
	return core.NewBootstrapper(params, kg, sk, cfg)
}

// Harness is one constructed service + tenant fleet, ready to drive. Build
// with NewHarness, drive with Run (or RunOn for several points against the
// same fleet), release with Close.
type Harness struct {
	cfg     Config
	srv     *serve.Server
	lis     interface{ Close() error }
	dial    func() (io.ReadWriter, error)
	served  chan struct{}
	boots   []*core.Bootstrapper // per tenant, key-warm
	clients [][]*serve.Client    // [tenant][conn]
	lwes    [][][]*rlwe.LWECiphertext
	refs    [][][]*rlwe.Ciphertext // BlindRotateOne references (Verify only)
	closed  bool
}

// NewHarness builds the service and tenant fleet for cfg: a key-cold server
// on an in-memory or TCP loopback listener, one key-warm bootstrapper per
// tenant, ConnsPerTenant live connections each, keys uploaded through the
// real chunked stream, and the seeded payload pool (plus local reference
// rotations when Verify is set).
func NewHarness(cfg Config) (*Harness, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	serverBt, err := benchBoot(cfg.Seed+1000, true, 1)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serverBt, serve.Config{
		MaxKeyBytes: cfg.MaxKeyBytes,
		Admission:   cfg.Admission,
		Window:      cfg.Window,
		Executors:   cfg.Executors,
		Tile:        cfg.Tile,
		Workers:     cfg.Workers,
		Now:         cfg.Now,
	})
	h := &Harness{cfg: cfg, srv: srv, served: make(chan struct{})}

	if cfg.TCP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		h.lis = ln
		addr := ln.Addr().String()
		h.dial = func() (io.ReadWriter, error) { return net.Dial("tcp", addr) }
		go func() {
			defer close(h.served)
			_ = srv.Serve(cluster.ListenerFrom(ln))
		}()
	} else {
		pl := cluster.NewPipeListener()
		h.lis = pl
		h.dial = func() (io.ReadWriter, error) { return pl.Dial() }
		go func() {
			defer close(h.served)
			_ = srv.Serve(pl)
		}()
	}

	dim := cluster.LWEDim(serverBt)
	twoN := uint64(2 * serverBt.Params.N())
	payloadRng := ring.NewSampler(cfg.Seed + 2000)
	for t := 0; t < cfg.Tenants; t++ {
		bt, err := benchBoot(cfg.Seed+uint64(3000+t), false, 1)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.boots = append(h.boots, bt)
		conns := make([]*serve.Client, cfg.ConnsPerTenant)
		for c := range conns {
			conn, err := h.dial()
			if err != nil {
				h.Close()
				return nil, err
			}
			cl, err := serve.NewClient(conn, bt, tenantName(t), nil)
			if err != nil {
				h.Close()
				return nil, err
			}
			conns[c] = cl
		}
		h.clients = append(h.clients, conns)
		if err := conns[0].UploadKey(0, time.Minute); err != nil {
			h.Close()
			return nil, fmt.Errorf("load: %s key upload: %w", tenantName(t), err)
		}

		// Payload pool: dense synthetic LWEs — real rotations under the
		// tenant's real key; only the plaintext is noise.
		pool := make([][]*rlwe.LWECiphertext, cfg.PayloadPool)
		for p := range pool {
			job := make([]*rlwe.LWECiphertext, cfg.RotsPerJob)
			for j := range job {
				lwe := &rlwe.LWECiphertext{A: make([]uint64, dim), Q: twoN}
				for i := range lwe.A {
					lwe.A[i] = 1 + payloadRng.UniformMod(twoN-1)
				}
				lwe.B = payloadRng.UniformMod(twoN)
				job[j] = lwe
			}
			pool[p] = job
		}
		h.lwes = append(h.lwes, pool)
		if cfg.Verify {
			refs := make([][]*rlwe.Ciphertext, cfg.PayloadPool)
			for p, job := range pool {
				refs[p] = make([]*rlwe.Ciphertext, len(job))
				for j, lwe := range job {
					refs[p][j] = bt.BlindRotateOne(lwe)
				}
			}
			h.refs = append(h.refs, refs)
		}
	}
	return h, nil
}

func tenantName(t int) string { return fmt.Sprintf("tenant-%d", t) }

// Server exposes the harness's serve.Server (metrics, snapshots).
func (h *Harness) Server() *serve.Server { return h.srv }

// Close tears the fleet down: clients, listener, then the server drain.
// Idempotent.
func (h *Harness) Close() {
	if h.closed {
		return
	}
	h.closed = true
	for _, conns := range h.clients {
		for _, cl := range conns {
			if cl != nil {
				_ = cl.Close()
			}
		}
	}
	_ = h.lis.Close()
	<-h.served
	h.srv.Close()
}

// outcome is one issued job's terminal state at the client.
type outcome struct {
	served      bool
	rejected    bool
	rateLimited bool // rejected specifically by the tenant's token bucket
	err         error
	lat         time.Duration // from the scheduled arrival (response time)
	svcLat      time.Duration // from Rotate hitting the wire (service time)
}

// drive issues one job and classifies the result. Rejections are non-fatal
// by protocol; any other error is.
func (h *Harness) drive(cl *serve.Client, tenant, payload int, issuedAt time.Time) outcome {
	t0 := time.Now()
	accs, err := cl.Rotate(h.lwes[tenant][payload], h.cfg.Budget)
	svcLat := time.Since(t0)
	lat := time.Since(issuedAt)
	if err != nil {
		if rej, ok := err.(*serve.RejectedError); ok {
			return outcome{rejected: true, rateLimited: rej.IsRateLimited(), lat: lat, svcLat: svcLat}
		}
		return outcome{err: err, lat: lat, svcLat: svcLat}
	}
	if h.cfg.Verify {
		refs := h.refs[tenant][payload]
		for k := range accs {
			if !equalCiphertext(accs[k], refs[k]) {
				return outcome{err: fmt.Errorf("load: tenant %d payload %d acc %d differs from local BlindRotateOne", tenant, payload, k)}
			}
		}
	}
	return outcome{served: true, lat: lat, svcLat: svcLat}
}

func equalCiphertext(a, b *rlwe.Ciphertext) bool {
	for i := range a.C0.Limbs {
		for j := range a.C0.Limbs[i] {
			if a.C0.Limbs[i][j] != b.C0.Limbs[i][j] || a.C1.Limbs[i][j] != b.C1.Limbs[i][j] {
				return false
			}
		}
	}
	return true
}

// Run builds a harness for cfg, drives one load point, tears down, and
// returns the point. The one-shot entry heapbench's matrix and most tests
// use.
func Run(cfg Config) (Result, error) {
	h, err := NewHarness(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.Close()
	return h.RunPoint()
}

// RunPoint drives the configured load against the already-built fleet and
// returns the measured point. The server's counters accumulate across
// points on the same harness; RunPoint snapshots them before and after so
// the Result's ledger fields are per-point deltas.
func (h *Harness) RunPoint() (Result, error) {
	cfg := h.cfg
	met := h.srv.Metrics()
	pre := counterSet(met)

	if cfg.Warmup {
		for t := range h.clients {
			if _, err := h.clients[t][0].Rotate(h.lwes[t][0], 0); err != nil {
				return Result{}, fmt.Errorf("load: warm-up job for %s: %w", tenantName(t), err)
			}
		}
		settleLedger(met)
		pre = counterSet(met) // warm-up jobs are not part of the point
	}

	// Queue-depth sampler: proves the admission bound held for the whole
	// run (QueueLimit configured → max sampled depth ≤ limit).
	stopSampler := make(chan struct{})
	samplerDone := make(chan int)
	go func() {
		max := 0
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				samplerDone <- max
				return
			case <-tick.C:
				if d := h.srv.QueueDepth(); d > max {
					max = d
				}
			}
		}
	}()

	hist := obs.NewHist()
	svcHist := obs.NewHist()
	var (
		mu          sync.Mutex
		served      int
		rejected    int
		rateLimited int
		failed      int
		overBudget  int
		firstErr    error
	)
	record := func(o outcome) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case o.served:
			served++
			hist.Observe(o.lat)
			svcHist.Observe(o.svcLat)
			// Budget overruns count against the service time: the deadline
			// door cannot see a job before it reaches the wire.
			if cfg.Budget > 0 && o.svcLat > cfg.Budget {
				overBudget++
			}
		case o.rejected:
			rejected++
			if o.rateLimited {
				rateLimited++
			}
		default:
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
		}
	}

	start := time.Now()
	var err error
	if cfg.OfferedRate > 0 {
		err = h.runOpen(start, record)
	} else {
		err = h.runClosed(record)
	}
	wall := time.Since(start)
	close(stopSampler)
	maxDepth := <-samplerDone
	if err != nil {
		return Result{}, err
	}

	// Drain to quiesce before reading the ledger: Rotate is synchronous, so
	// once every driver returned there are no in-flight jobs — but the
	// server credits a job to the served counter just AFTER writing the
	// BatchEnd frame the client returns on, so the accounting can trail the
	// drain by one scheduler beat. Settle before snapshotting.
	settleLedger(met)
	post := counterSet(met)
	res := Result{
		Pattern:        string(cfg.Pattern),
		ClosedLoop:     cfg.OfferedRate <= 0,
		OfferedPerSec:  cfg.OfferedRate,
		Tenants:        cfg.Tenants,
		Conns:          cfg.ConnsPerTenant,
		RotsPerJob:     cfg.RotsPerJob,
		Executors:      cfg.Executors,
		Workers:        cfg.Workers,
		WindowMs:       float64(cfg.Window.Microseconds()) / 1e3,
		BudgetMs:       float64(cfg.Budget.Microseconds()) / 1e3,
		WallMs:         float64(wall.Microseconds()) / 1e3,
		Issued:         cfg.Jobs,
		Served:         served,
		Rejected:       rejected,
		RateLimited:    rateLimited,
		Failed:         failed,
		Latency:        hist.Summary(),
		ServiceLatency: svcHist.Summary(),
		OverBudget:     overBudget,
		MaxQueueDepth:  maxDepth,
		Admitted:       post[obs.CounterJobsAdmitted] - pre[obs.CounterJobsAdmitted],
		Expired:        post[obs.CounterJobsExpired] - pre[obs.CounterJobsExpired],
		SrvServed:      post[obs.CounterJobsServed] - pre[obs.CounterJobsServed],
		SrvFailed:      post[obs.CounterJobsFailed] - pre[obs.CounterJobsFailed],
		SrvRejected:    post[obs.CounterJobsRejected] - pre[obs.CounterJobsRejected],
		Coalesced:      post[obs.CounterJobsCoalesced] - pre[obs.CounterJobsCoalesced],
		Batches:        post[obs.CounterServeBatches] - pre[obs.CounterServeBatches],
		BRKBytes:       post[obs.CounterBRKBytesStreamed] - pre[obs.CounterBRKBytesStreamed],
	}
	if wall > 0 {
		res.AchievedPerSec = float64(served) / wall.Seconds()
		res.RotPerSec = float64(served*cfg.RotsPerJob) / wall.Seconds()
	}
	if cfg.Jobs > 0 {
		res.RejectionRate = float64(rejected) / float64(cfg.Jobs)
	}
	if res.Admitted > 0 {
		res.CoalescedFrac = float64(res.Coalesced) / float64(res.Admitted)
	}
	if rots := res.SrvServed; rots > 0 {
		res.BRKBytesPerRot = float64(res.BRKBytes) / float64(rots*uint64(cfg.RotsPerJob))
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// settleLedger waits (bounded) for the server's post-drain accounting to
// catch up: at quiesce admitted = served + expired + failed must hold, and
// the load tests assert it through Result.LedgerGap.
func settleLedger(m *obs.Metrics) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		adm := m.Counter(obs.CounterJobsAdmitted)
		done := m.Counter(obs.CounterJobsServed) + m.Counter(obs.CounterJobsExpired) + m.Counter(obs.CounterJobsFailed)
		if adm == done || time.Now().After(deadline) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func counterSet(m *obs.Metrics) map[obs.Counter]uint64 {
	out := make(map[obs.Counter]uint64, 8)
	for _, c := range []obs.Counter{
		obs.CounterJobsAdmitted, obs.CounterJobsExpired, obs.CounterJobsServed,
		obs.CounterJobsFailed, obs.CounterJobsRejected, obs.CounterJobsCoalesced,
		obs.CounterServeBatches, obs.CounterBRKBytesStreamed,
	} {
		out[c] = m.Counter(c)
	}
	return out
}

// runClosed drives the closed loop: every connection issues its share of
// the jobs back to back, payload sequence seeded per connection.
func (h *Harness) runClosed(record func(outcome)) error {
	cfg := h.cfg
	total := cfg.Tenants * cfg.ConnsPerTenant
	var wg sync.WaitGroup
	idx := 0
	for t := 0; t < cfg.Tenants; t++ {
		for c := 0; c < cfg.ConnsPerTenant; c++ {
			n := cfg.Jobs / total
			if idx < cfg.Jobs%total {
				n++
			}
			wg.Add(1)
			go func(t, c, n int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				cl := h.clients[t][c]
				for j := 0; j < n; j++ {
					o := h.drive(cl, t, r.Intn(cfg.PayloadPool), time.Now())
					record(o)
					if o.err != nil {
						return // conn is broken; its remaining share is lost
					}
				}
			}(t, c, n, int64(cfg.Seed)+int64(idx))
			idx++
		}
	}
	wg.Wait()
	return nil
}

// runOpen drives the open loop: a dispatcher walks the precomputed seeded
// schedule and hands each arrival to its connection's worker queue. Queues
// are buffered to the full schedule length, so a saturated connection never
// blocks the dispatcher — arrivals stay on schedule, which is the entire
// point of open-loop driving.
func (h *Harness) runOpen(start time.Time, record func(outcome)) error {
	cfg := h.cfg
	evs, err := schedule(&cfg, rand.New(rand.NewSource(int64(cfg.Seed))))
	if err != nil {
		return err
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	chans := make([][]chan event, cfg.Tenants)
	var wg sync.WaitGroup
	for t := range chans {
		chans[t] = make([]chan event, cfg.ConnsPerTenant)
		for c := range chans[t] {
			ch := make(chan event, len(evs))
			chans[t][c] = ch
			wg.Add(1)
			go func(t, c int, ch chan event) {
				defer wg.Done()
				cl := h.clients[t][c]
				var dead error
				for ev := range ch {
					if dead != nil {
						record(outcome{err: dead})
						continue
					}
					o := h.drive(cl, t, ev.payload, start.Add(ev.at))
					record(o)
					if o.err != nil {
						dead = o.err // conn broken: fail the queue's remainder
					}
				}
			}(t, c, ch)
		}
	}
	for _, ev := range evs {
		if d := time.Until(start.Add(ev.at)); d > 0 {
			time.Sleep(d)
		}
		chans[ev.tenant][ev.conn] <- ev
	}
	for t := range chans {
		for _, ch := range chans[t] {
			close(ch)
		}
	}
	wg.Wait()
	return nil
}
