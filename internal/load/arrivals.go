package load

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Pattern names an arrival process. Patterns shape WHO submits WHEN; the
// job payloads themselves are identical across patterns so throughput
// numbers compare apples to apples.
type Pattern string

const (
	// Uniform spreads open-loop arrivals evenly over the tenant set with
	// exponential (Poisson) inter-arrival times — the baseline curve.
	Uniform Pattern = "uniform"
	// HotKey draws the submitting tenant from a Zipf distribution, so one
	// tenant dominates the offered load. This is the coalescer's best case
	// (most jobs share one key) and the fairness stress for admission: the
	// hot tenant must exhaust its own token bucket, not everyone's.
	HotKey Pattern = "hotkey"
	// Bursty gates a Poisson process through on/off windows: arrivals
	// cluster at a multiple of the average rate during bursts, then go
	// silent. Exercises queue growth and deadline expiry under transient
	// overload at the same average offered load as Uniform.
	Bursty Pattern = "bursty"
)

// Patterns lists every arrival pattern, in sweep order.
func Patterns() []Pattern { return []Pattern{Uniform, HotKey, Bursty} }

// event is one scheduled open-loop arrival, fully determined by the
// config's seed: when, which tenant, which of its connections, and which
// pre-built payload the job carries. The schedule is computed before the
// run starts so the measured section does no RNG work and two runs with
// the same seed offer byte-identical load.
type event struct {
	at      time.Duration
	tenant  int
	conn    int
	payload int
}

// schedule builds the deterministic arrival schedule for an open-loop run:
// cfg.Jobs events over a Poisson process at cfg.OfferedRate jobs/s, with
// the tenant choice and the burst gating drawn from the same seeded source.
func schedule(cfg *Config, r *rand.Rand) ([]event, error) {
	if cfg.OfferedRate <= 0 {
		return nil, fmt.Errorf("load: open-loop schedule requires OfferedRate > 0")
	}
	pickTenant, err := tenantPicker(cfg, r)
	if err != nil {
		return nil, err
	}

	// Bursty: arrivals only inside [cycle·period, cycle·period+BurstLen).
	// Compressing the same average rate into the burst windows multiplies
	// the instantaneous rate by period/burst.
	period := cfg.BurstLen + cfg.GapLen
	rate := cfg.OfferedRate
	if cfg.Pattern == Bursty {
		rate *= float64(period) / float64(cfg.BurstLen)
	}

	evs := make([]event, cfg.Jobs)
	var t float64 // seconds
	for i := range evs {
		t += r.ExpFloat64() / rate
		at := time.Duration(t * float64(time.Second))
		if cfg.Pattern == Bursty {
			phase := at % period
			if phase >= cfg.BurstLen {
				// Fell in the gap: shift to the start of the next burst.
				at += period - phase
				t = float64(at) / float64(time.Second)
			}
		}
		tenant := pickTenant()
		evs[i] = event{
			at:      at,
			tenant:  tenant,
			conn:    r.Intn(cfg.ConnsPerTenant),
			payload: r.Intn(cfg.PayloadPool),
		}
	}
	return evs, nil
}

// tenantPicker returns the seeded tenant-choice function for the pattern.
func tenantPicker(cfg *Config, r *rand.Rand) (func() int, error) {
	switch cfg.Pattern {
	case HotKey:
		s := cfg.ZipfS
		if s <= 1 {
			s = 1.2
		}
		if cfg.Tenants == 1 {
			return func() int { return 0 }, nil
		}
		z := rand.NewZipf(r, s, 1, uint64(cfg.Tenants-1))
		return func() int { return int(z.Uint64()) }, nil
	case Uniform, Bursty:
		return func() int { return r.Intn(cfg.Tenants) }, nil
	default:
		return nil, fmt.Errorf("load: unknown arrival pattern %q", cfg.Pattern)
	}
}

// Clock is a virtual clock for deterministic concurrency tests: it only
// moves when the test calls Advance, and it plugs into serve.Config.Now so
// admission's token buckets and deadline-expiry checks run on test time
// while the goroutine scheduling underneath stays real. The zero value is
// not ready; use NewClock.
type Clock struct {
	base time.Time
	ns   atomic.Int64
}

// NewClock returns a virtual clock pinned to an arbitrary fixed epoch.
func NewClock() *Clock {
	// The epoch is fixed, not time.Now(): two runs of the same test see
	// identical timestamps everywhere the clock reaches.
	return &Clock{base: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time. Safe for concurrent use.
func (c *Clock) Now() time.Time { return c.base.Add(time.Duration(c.ns.Load())) }

// Advance moves the clock forward by d (concurrent-safe, monotonic as long
// as every caller passes d ≥ 0).
func (c *Clock) Advance(d time.Duration) { c.ns.Add(int64(d)) }
