package load

import (
	"runtime"
	"testing"
	"time"

	"heap/internal/serve"
)

// TestOverloadBoundedQueueWithinBudget is the overload acceptance test:
// open-loop arrivals several times past the small ring's service capacity,
// with a server-wide queue cap and a per-job deadline budget. Admission
// must shed the excess non-fatally (rejections on still-usable
// connections, zero fatal failures), keep the sampled queue depth inside
// the cap, serve everything it admits (ledger gap 0 at quiesce), and keep
// the p99 SERVICE latency of the jobs it DID admit within the deadline
// budget — the deadline-aware door refuses work it cannot finish in time
// instead of queueing it to die. Service latency (Rotate on the wire →
// reply) is the figure the budget governs; the open-loop response time
// additionally counts client-side queueing the server never sees.
//
// The budget is calibrated from a measured idle round-trip rather than
// hard-coded: the bound being tested is relative (admitted work finishes
// within a small multiple of a batch), and an absolute number would couple
// the test to host speed and the ~15× race-detector slowdown `make race`
// imposes.
func TestOverloadBoundedQueueWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overload runs are slow")
	}
	// Each connection is synchronous (one Rotate in flight), so server-side
	// queue pressure tops out at the connection count: overload needs more
	// connections than queue slots.
	const queueCap = 4
	for _, p := range []Pattern{Uniform, Bursty} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			h, err := NewHarness(Config{
				Tenants:        2,
				ConnsPerTenant: 6,
				Jobs:           120,
				RotsPerJob:     4,
				PayloadPool:    2,
				OfferedRate:    2000, // far past capacity: window alone caps ~1/window jobs per tenant-batch
				Pattern:        p,
				Window:         3 * time.Millisecond,
				BurstLen:       20 * time.Millisecond,
				GapLen:         60 * time.Millisecond,
				Admission:      serve.AdmissionConfig{QueueLimit: queueCap},
				Seed:           23,
				Warmup:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			// Calibrate: the slowest of three idle round-trips is the unit of
			// service time on this host, race detector included. A served job
			// under overload waits for at most queueCap batches ahead of it
			// plus its own; 8× that leaves slack for scheduler noise without
			// letting an unbounded queue hide (an uncapped queue of 120 jobs
			// would overshoot this bound many times over).
			var calib time.Duration
			for i := 0; i < 3; i++ {
				o := h.drive(h.clients[0][0], 0, i%h.cfg.PayloadPool, time.Now())
				if o.err != nil || !o.served {
					t.Fatalf("calibration job %d: served=%v err=%v", i, o.served, o.err)
				}
				if o.svcLat > calib {
					calib = o.svcLat
				}
			}
			budget := 8 * (queueCap + 1) * calib
			if budget < time.Second {
				budget = time.Second
			}
			h.cfg.Budget = budget
			t.Logf("calibrated idle round-trip %v -> budget %v", calib, budget)

			res, err := h.RunPoint()
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("%d fatal failures under overload; rejections must be non-fatal", res.Failed)
			}
			if res.Served+res.Rejected != res.Issued {
				t.Fatalf("outcomes %d+%d don't cover %d issued", res.Served, res.Rejected, res.Issued)
			}
			if res.Rejected == 0 {
				t.Fatalf("offered %v jobs/s with queue cap %d produced no rejections; not an overload run", res.OfferedPerSec, queueCap)
			}
			if res.Served == 0 {
				t.Fatal("nothing served: connections did not survive rejections")
			}
			if res.MaxQueueDepth > queueCap {
				t.Fatalf("sampled queue depth %d exceeds cap %d", res.MaxQueueDepth, queueCap)
			}
			if gap := res.LedgerGap(); gap != 0 {
				t.Fatalf("ledger gap %d at quiesce: admitted %d served %d expired %d failed %d",
					gap, res.Admitted, res.SrvServed, res.Expired, res.SrvFailed)
			}
			if got := time.Duration(res.ServiceLatency.P99Ms * float64(time.Millisecond)); got > budget {
				t.Fatalf("service-latency p99 of admitted jobs %v exceeds deadline budget %v", got, budget)
			}
			// Expiry is checked at dispatch and execution follows, so a
			// served job can legally finish a little past its deadline — but
			// only a thin tail of them may.
			if limit := 1 + res.Served/20; res.OverBudget > limit {
				t.Fatalf("%d of %d served jobs exceeded the budget (tail allowance %d)", res.OverBudget, res.Served, limit)
			}
			t.Logf("%s: served %d rejected %d (%.0f%%), service p99 %.1fms (response p99 %.1fms), max queue %d",
				p, res.Served, res.Rejected, 100*res.RejectionRate, res.ServiceLatency.P99Ms, res.Latency.P99Ms, res.MaxQueueDepth)
		})
	}
}

// TestOverloadVirtualClockDeterministic pins admission to the harness's
// virtual clock: with a frozen clock, a 2-token bucket admits exactly the
// first two jobs of a sequential closed loop and rate-limits the other
// four — the same counts every run, because no real time elapses where the
// admission decisions look. Advancing the clock refills the bucket and the
// same connection serves again: rejection left the connection usable and
// the clock hook reaches the refill arithmetic.
func TestOverloadVirtualClockDeterministic(t *testing.T) {
	clock := NewClock()
	h, err := NewHarness(Config{
		Tenants:        1,
		ConnsPerTenant: 1,
		Jobs:           6,
		RotsPerJob:     2,
		PayloadPool:    2,
		Window:         time.Millisecond,
		Admission:      serve.AdmissionConfig{RatePerSec: 1, Burst: 2},
		Seed:           31,
		Now:            clock.Now,
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	res, err := h.RunPoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2 || res.Rejected != 4 || res.RateLimited != 4 || res.Failed != 0 {
		t.Fatalf("frozen clock: served %d rejected %d (rate-limited %d) failed %d; want exactly 2/4/4/0",
			res.Served, res.Rejected, res.RateLimited, res.Failed)
	}
	if gap := res.LedgerGap(); gap != 0 {
		t.Fatalf("ledger gap %d", gap)
	}

	// Refill two tokens of virtual time: the next two jobs on the same
	// connection must both serve.
	clock.Advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		o := h.drive(h.clients[0][0], 0, i%h.cfg.PayloadPool, time.Now())
		if o.err != nil || !o.served {
			t.Fatalf("job %d after Advance(2s): served=%v err=%v", i, o.served, o.err)
		}
	}
	// And the third is rate-limited again — the bucket really is on the
	// virtual clock, not wall time.
	if o := h.drive(h.clients[0][0], 0, 0, time.Now()); !o.rateLimited {
		t.Fatalf("third job after refill: want rate-limited, got served=%v err=%v", o.served, o.err)
	}
}

// TestHarnessShutdownNoGoroutineLeak: a full build–drive–Close cycle
// returns the process to its pre-harness goroutine count — the server
// drain, executors, coalescer, sampler, and per-connection reader/writer
// goroutines all exit.
func TestHarnessShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	h, err := NewHarness(Config{
		Tenants:        2,
		ConnsPerTenant: 2,
		Jobs:           8,
		RotsPerJob:     2,
		PayloadPool:    2,
		Window:         2 * time.Millisecond,
		Seed:           37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunPoint(); err != nil {
		h.Close()
		t.Fatal(err)
	}
	h.Close()
	h.Close() // idempotent
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
