package load

import (
	"math/rand"
	"testing"
	"time"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestScheduleDeterministic: the open-loop schedule is a pure function of
// the seed — identical across runs, different across seeds, monotonic in
// time, and every field inside its configured range.
func TestScheduleDeterministic(t *testing.T) {
	base := Config{
		Jobs:        200,
		OfferedRate: 500,
		Tenants:     4,
	}
	for _, p := range Patterns() {
		cfg := base
		cfg.Pattern = p
		if err := cfg.defaults(); err != nil {
			t.Fatal(err)
		}
		a, err := schedule(&cfg, newRand(7))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := schedule(&cfg, newRand(7))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(a) != cfg.Jobs {
			t.Fatalf("%s: %d events, want %d", p, len(a), cfg.Jobs)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: event %d differs across same-seed runs: %+v vs %+v", p, i, a[i], b[i])
			}
			if i > 0 && a[i].at < a[i-1].at {
				t.Fatalf("%s: schedule not monotonic at %d: %v after %v", p, i, a[i].at, a[i-1].at)
			}
			ev := a[i]
			if ev.tenant < 0 || ev.tenant >= cfg.Tenants ||
				ev.conn < 0 || ev.conn >= cfg.ConnsPerTenant ||
				ev.payload < 0 || ev.payload >= cfg.PayloadPool {
				t.Fatalf("%s: event %d out of range: %+v", p, i, ev)
			}
		}
		c, err := schedule(&cfg, newRand(8))
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical schedules", p)
		}
	}
}

// TestScheduleHotKeySkew: the Zipf tenant choice concentrates load — tenant
// 0 must carry at least triple its uniform fair share of a hot-key
// schedule over 8 tenants, and strictly dominate tenant 1.
func TestScheduleHotKeySkew(t *testing.T) {
	cfg := Config{Jobs: 2000, OfferedRate: 1000, Tenants: 8, Pattern: HotKey}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	evs, err := schedule(&cfg, newRand(42))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Tenants)
	for _, ev := range evs {
		counts[ev.tenant]++
	}
	if fair := len(evs) / cfg.Tenants; counts[0] < 3*fair {
		t.Fatalf("hot tenant got %d/%d jobs, want ≥ 3× the fair share %d: %v", counts[0], len(evs), fair, counts)
	}
	if counts[0] <= counts[1] {
		t.Fatalf("tenant 0 (%d) does not dominate tenant 1 (%d): %v", counts[0], counts[1], counts)
	}
}

// TestScheduleBurstyGating: every bursty arrival lands inside an on-window,
// and the schedule actually uses more than one burst cycle.
func TestScheduleBurstyGating(t *testing.T) {
	cfg := Config{
		Jobs:        300,
		OfferedRate: 2000,
		Tenants:     2,
		Pattern:     Bursty,
		BurstLen:    10 * time.Millisecond,
		GapLen:      30 * time.Millisecond,
	}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	evs, err := schedule(&cfg, newRand(3))
	if err != nil {
		t.Fatal(err)
	}
	period := cfg.BurstLen + cfg.GapLen
	cycles := map[int64]bool{}
	for i, ev := range evs {
		if phase := ev.at % period; phase >= cfg.BurstLen {
			t.Fatalf("event %d at %v falls in the gap (phase %v)", i, ev.at, phase)
		}
		cycles[int64(ev.at/period)] = true
	}
	if len(cycles) < 2 {
		t.Fatalf("all %d arrivals in %d burst cycle(s); gating untested", len(evs), len(cycles))
	}
}

// TestClockVirtualTime: the virtual clock only moves on Advance and is
// identical across runs.
func TestClockVirtualTime(t *testing.T) {
	a, b := NewClock(), NewClock()
	if !a.Now().Equal(b.Now()) {
		t.Fatalf("two fresh clocks disagree: %v vs %v", a.Now(), b.Now())
	}
	t0 := a.Now()
	a.Advance(3 * time.Second)
	if got := a.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("Advance moved clock by %v, want 3s", got)
	}
	if !b.Now().Equal(t0) {
		t.Fatal("advancing one clock moved another")
	}
}

// TestClosedLoopServesEverything: a closed-loop run with no admission
// limits serves every issued job, bit-exact against the tenants' local
// blind rotations, with a consistent server-side ledger.
func TestClosedLoopServesEverything(t *testing.T) {
	res, err := Run(Config{
		Tenants:        2,
		ConnsPerTenant: 2,
		Jobs:           12,
		RotsPerJob:     2,
		PayloadPool:    2,
		Window:         2 * time.Millisecond,
		Seed:           11,
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != res.Issued || res.Rejected != 0 || res.Failed != 0 {
		t.Fatalf("served %d rejected %d failed %d of %d issued", res.Served, res.Rejected, res.Failed, res.Issued)
	}
	if !res.ClosedLoop {
		t.Fatal("closed-loop run not flagged as such")
	}
	if gap := res.LedgerGap(); gap != 0 {
		t.Fatalf("ledger gap %d: admitted %d served %d expired %d failed %d",
			gap, res.Admitted, res.SrvServed, res.Expired, res.SrvFailed)
	}
	if res.Latency.Count != uint64(res.Served) {
		t.Fatalf("histogram holds %d observations, served %d", res.Latency.Count, res.Served)
	}
	if res.AchievedPerSec <= 0 || res.Latency.P50Ms <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

// TestOpenLoopUniform: an open-loop run at a modest offered rate completes
// every scheduled arrival (served; nothing rejected with no admission
// limits, nothing failed) and reports the offered rate it was asked for.
func TestOpenLoopUniform(t *testing.T) {
	res, err := Run(Config{
		Tenants:        2,
		ConnsPerTenant: 2,
		Jobs:           16,
		RotsPerJob:     2,
		PayloadPool:    2,
		OfferedRate:    200,
		Pattern:        Uniform,
		Window:         2 * time.Millisecond,
		Seed:           5,
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClosedLoop {
		t.Fatal("open-loop run flagged closed")
	}
	if res.Served+res.Rejected+res.Failed != res.Issued {
		t.Fatalf("outcomes %d+%d+%d don't cover %d issued", res.Served, res.Rejected, res.Failed, res.Issued)
	}
	if res.Failed != 0 {
		t.Fatalf("%d jobs failed fatally", res.Failed)
	}
	if res.Served != res.Issued {
		t.Fatalf("served %d of %d with no admission limits", res.Served, res.Issued)
	}
	if gap := res.LedgerGap(); gap != 0 {
		t.Fatalf("ledger gap %d", gap)
	}
}

// TestHarnessReuseAcrossPoints: RunPoint on a shared harness isolates each
// point's counter deltas, so a sweep over one fleet reports per-point
// ledgers.
func TestHarnessReuseAcrossPoints(t *testing.T) {
	h, err := NewHarness(Config{
		Tenants:        1,
		ConnsPerTenant: 2,
		Jobs:           6,
		RotsPerJob:     2,
		PayloadPool:    2,
		Window:         2 * time.Millisecond,
		Seed:           13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 2; i++ {
		res, err := h.RunPoint()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if res.Served != res.Issued {
			t.Fatalf("point %d: served %d of %d", i, res.Served, res.Issued)
		}
		if res.Admitted != uint64(res.Issued) {
			t.Fatalf("point %d: admitted delta %d, want %d (counter deltas leaked across points)",
				i, res.Admitted, res.Issued)
		}
		if gap := res.LedgerGap(); gap != 0 {
			t.Fatalf("point %d: ledger gap %d", i, gap)
		}
	}
}

// TestHarnessTCP: the same fleet drives over real loopback TCP.
func TestHarnessTCP(t *testing.T) {
	res, err := Run(Config{
		Tenants:        1,
		ConnsPerTenant: 2,
		Jobs:           6,
		RotsPerJob:     2,
		PayloadPool:    2,
		Window:         2 * time.Millisecond,
		Seed:           17,
		TCP:            true,
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != res.Issued {
		t.Fatalf("served %d of %d over TCP", res.Served, res.Issued)
	}
}
