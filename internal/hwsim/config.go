// Package hwsim is a calibrated cycle-level performance and resource model
// of the HEAP FPGA microarchitecture (§IV–§V of the paper). It never touches
// ciphertexts: given the paper's parameter set and the Alveo U280 resource
// budget it derives cycle counts for every primitive from the datapath
// descriptions (512 seven-cycle modular units, the Cooley-Tukey NTT
// schedule, the batched BlindRotate pipeline, HBM streaming and the 100G
// inter-FPGA link), calibrates a small number of per-operation efficiency
// factors against the paper's reported single-FPGA latencies (Tables III–IV),
// and then *predicts* the system-level results (Tables V–VIII).
//
// EXPERIMENTS.md records, for every table, the paper's number, this model's
// number, and where first-principles estimates disagree with the paper.
package hwsim

// FPGAConfig describes one accelerator node (defaults: Alveo U280, §IV/§V).
type FPGAConfig struct {
	FreqMHz       float64 // kernel clock (paper: 300 MHz)
	MemFreqMHz    float64 // HBM-side clock (450 MHz)
	ModUnits      int     // modular arithmetic units (512)
	ModOpLatency  int     // cycles per scalar modular op (7)
	HBMBytesPerGB float64 // HBM bandwidth, GB/s (460)
	AXIPorts      int     // 256-bit AXI ports (32)
	EthernetGbps  float64 // CMAC link (100)
	CyclesPerCtTx int     // cycles to transmit one RLWE ciphertext (458)

	// Resource budget.
	LUTs, FFs, DSPs, BRAMs, URAMs int
}

// AlveoU280 returns the paper's FPGA configuration.
func AlveoU280() FPGAConfig {
	return FPGAConfig{
		FreqMHz:       300,
		MemFreqMHz:    450,
		ModUnits:      512,
		ModOpLatency:  7,
		HBMBytesPerGB: 460,
		AXIPorts:      32,
		EthernetGbps:  100,
		CyclesPerCtTx: 458,
		LUTs:          1304_000,
		FFs:           2607_000,
		DSPs:          9024,
		BRAMs:         4032,
		URAMs:         962,
	}
}

// ParamSet is the crypto parameter set the model evaluates (§III-C).
type ParamSet struct {
	LogN     int // ring degree exponent
	Limbs    int // RNS limbs L of a ciphertext
	LimbBits int // bits per limb (36)
	AuxLimbs int // auxiliary primes during bootstrapping (the paper's p)
	NT       int // LWE dimension n_t
	D        int // gadget decomposition number d
	H        int // GLWE mask h
	Slots    int // packed plaintext slots n
}

// PaperParams is the HEAP parameter set: N=2^13, logQ=216 (six 36-bit
// limbs), one auxiliary prime, n_t=500, d=2, h=1, fully packed (n=4096).
func PaperParams() ParamSet {
	return ParamSet{LogN: 13, Limbs: 6, LimbBits: 36, AuxLimbs: 1, NT: 500, D: 2, H: 1, Slots: 1 << 12}
}

// N returns the ring degree.
func (p ParamSet) N() int { return 1 << p.LogN }

// CtBytes returns the size of one RLWE ciphertext (2 polynomials, §III-C:
// 2·logQ·N bits).
func (p ParamSet) CtBytes() int64 {
	return int64(2) * int64(p.Limbs) * int64(p.LimbBits) * int64(p.N()) / 8
}

// LWECtBytes returns the size of one LWE ciphertext ((n_t+1)·logq bits,
// §III-C: ~2.3 KB for n_t=500, logq=36).
func (p ParamSet) LWECtBytes() int64 {
	return int64(p.NT+1) * int64(p.LimbBits) / 8
}

// BRKKeyBytes returns the size of one blind-rotate key: a
// (h+1)·d × (h+1) matrix of degree-(N−1) polynomials over Q·p (§III-C:
// ~3.52 MB with 64-bit storage words).
func (p ParamSet) BRKKeyBytes() int64 {
	polys := (p.H + 1) * p.D * (p.H + 1)
	return int64(polys) * int64(p.N()) * int64(p.Limbs+p.AuxLimbs) * 8
}

// BRKTotalBytes is the full blind-rotate key material (n_t keys): the
// paper's 1.76 GB.
func (p ParamSet) BRKTotalBytes() int64 { return int64(p.NT) * p.BRKKeyBytes() }

// BRKWireBlobBytes is the size of the serialized blind-rotate key blob the
// cluster streams to a cold elastic joiner: a 24-byte blob header plus, per
// LWE key index, one record holding the b=0 and b=1 RGSW ciphertexts. Each
// record carries twice BRKKeyBytes of coefficient data (the paper's per-key
// figure counts one (h+1)d × (h+1) matrix; the wire form ships both gadgets
// of each RGSW) plus four 32-byte gadget headers. The software serializer's
// tfhe.BRKBlobBytes must agree exactly for a mirrored parameter set —
// locked by TestBRKWireBlobMatchesSerializer.
func (p ParamSet) BRKWireBlobBytes() int64 {
	return 24 + int64(p.NT)*(2*p.BRKKeyBytes()+128)
}

// KeyTraffic returns the BRK bytes one node pulls from memory to
// blind-rotate a batch of ciphertexts under the two software schedules:
// ciphertext-major (the full key set streamed once per ciphertext — the
// pre-batching path) and key-major batched (once per tile of accumulators —
// the URAM-residency schedule BlindRotateBatched assumes). tile ≤ 0 is
// treated as 1.
func (p ParamSet) KeyTraffic(batch, tile int) (perCtBytes, batchedBytes int64) {
	if batch <= 0 {
		return 0, 0
	}
	if tile <= 0 {
		tile = 1
	}
	tiles := int64((batch + tile - 1) / tile)
	return int64(batch) * p.BRKTotalBytes(), tiles * p.BRKTotalBytes()
}

// KeyReuse is the model's key-reuse factor for a batch at the given tile:
// per-ciphertext traffic over batched traffic. The software engine's
// brk_bytes_streamed counter ratio must match this exactly for dense masks —
// locked by TestKeyReuseMatchesSoftwareCounters.
func (p ParamSet) KeyReuse(batch, tile int) float64 {
	perCt, batched := p.KeyTraffic(batch, tile)
	if batched == 0 {
		return 0
	}
	return float64(perCt) / float64(batched)
}

// ResourceUsage models Table II: utilization of the single-FPGA design.
type ResourceUsage struct {
	LUTs, FFs, DSPs, BRAMs, URAMs int
}

// ResourceModel derives the Table II utilization from the architecture:
//   - DSPs: each 36-bit modular unit composes 18-bit DSP multipliers and
//     32-bit DSP adders into a 12-DSP pipeline → 512 × 12 = 6144.
//   - URAM: one ciphertext limb-pair (a,b interleaved, Fig. 2) fills two
//     4096×72b blocks → 12 blocks per ciphertext, 80 ciphertexts → 960.
//   - BRAM: 18-bit halves, two blocks per coefficient column (Fig. 3) →
//     192 blocks per ciphertext, 20 ciphertexts → 3840.
//   - LUT/FF: per-unit soft-logic estimates (functional units take 42% of
//     utilized LUTs, §VI-A) — calibrated to the reported totals.
func ResourceModel(cfg FPGAConfig, p ParamSet) ResourceUsage {
	dspPerUnit := 12
	uramPerCt := 2 * p.Limbs                    // Fig. 2: 12 for L=6
	bramPerCt := 2 * p.Limbs * p.N() * 2 / 1024 // Fig. 3: 192 for N=2^13, L=6
	urams := cfg.URAMs / uramPerCt * uramPerCt  // 80 cts → 960
	// One ciphertext's worth of BRAM stays with the external-product MAC
	// units as partial-accumulation buffers (§IV-A), leaving 20 ciphertexts.
	brams := (cfg.BRAMs - bramPerCt) / bramPerCt * bramPerCt
	lutPerUnit := 830    // functional units ≈ 42% of 1012K
	lutOther := 587_000  // RF/FIFO/control/addr-gen logic
	ffPerUnit := 1588    //
	ffOther := 1_123_000 //
	return ResourceUsage{
		LUTs:  cfg.ModUnits*lutPerUnit + lutOther,
		FFs:   cfg.ModUnits*ffPerUnit + ffOther,
		DSPs:  cfg.ModUnits * dspPerUnit,
		BRAMs: brams,
		URAMs: urams,
	}
}

// MemoryPlan reports the Fig. 2/3 on-chip memory organization.
type MemoryPlan struct {
	URAMPerCt, CtsInURAM int
	BRAMPerCt, CtsInBRAM int
	OnChipMB             float64
}

// PlanMemory computes the URAM/BRAM ciphertext capacity.
func PlanMemory(cfg FPGAConfig, p ParamSet) MemoryPlan {
	uramPerCt := 2 * p.Limbs
	bramPerCt := 2 * p.Limbs * p.N() * 2 / 1024
	mp := MemoryPlan{
		URAMPerCt: uramPerCt,
		CtsInURAM: cfg.URAMs / uramPerCt,
		BRAMPerCt: bramPerCt,
		CtsInBRAM: (cfg.BRAMs - bramPerCt) / bramPerCt,
	}
	// Data capacity: URAM addresses hold two full 36-bit coefficients
	// (72 of 72 bits used, Fig. 2); BRAM addresses hold one 18-bit half
	// coefficient (Fig. 3) — §VI-B's 43 MB of on-chip memory.
	mp.OnChipMB = (float64(mp.CtsInURAM*uramPerCt)*4096*72 +
		float64((mp.CtsInBRAM+1)*bramPerCt)*1024*18) / 8 / (1 << 20)
	return mp
}
