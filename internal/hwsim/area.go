package hwsim

// §VI-B area and power comparison: the paper argues HEAP's resource
// footprint (modular multipliers + on-chip memory) is far below the ASIC
// proposals', so first-order power — proportional to active compute and
// memory area — should be comparable or better despite the FPGA substrate.

// AreaPoint is one row of the §VI-B comparison.
type AreaPoint struct {
	Name          string
	Multipliers   int     // modular multipliers instantiated
	OnChipMB      float64 // on-chip memory
	Chips         int     // dies/FPGAs the resources are spread over
	CoherentChip  bool    // single coherent chip (ASIC) vs discrete FPGAs
	RelPowerProxy float64 // first-order proxy: multipliers + memory area
}

// AreaComparison returns HEAP (1 and 8 FPGAs) against the ASIC envelope the
// paper quotes (4096–20480 multipliers, 72–512 MB on-chip).
func AreaComparison(cfg FPGAConfig, p ParamSet) []AreaPoint {
	mp := PlanMemory(cfg, p)
	proxy := func(mults int, mb float64) float64 {
		// Normalized first-order area/power proxy: one 36-bit modular
		// multiplier ≈ 0.012 mm²-equivalents, 1 MB SRAM ≈ 0.5 (arbitrary
		// shared units — only ratios are meaningful).
		return float64(mults)*0.012 + mb*0.5
	}
	single := AreaPoint{
		Name: "HEAP (1 FPGA)", Multipliers: cfg.ModUnits, OnChipMB: mp.OnChipMB,
		Chips: 1, RelPowerProxy: proxy(cfg.ModUnits, mp.OnChipMB),
	}
	eight := AreaPoint{
		Name: "HEAP (8 FPGAs)", Multipliers: 8 * cfg.ModUnits, OnChipMB: 8 * mp.OnChipMB,
		Chips: 8, RelPowerProxy: proxy(8*cfg.ModUnits, 8*mp.OnChipMB),
	}
	asicLo := AreaPoint{
		Name: "ASIC (low end)", Multipliers: 4096, OnChipMB: 72,
		Chips: 1, CoherentChip: true, RelPowerProxy: proxy(4096, 72),
	}
	asicHi := AreaPoint{
		Name: "ASIC (high end)", Multipliers: 20480, OnChipMB: 512,
		Chips: 1, CoherentChip: true, RelPowerProxy: proxy(20480, 512),
	}
	return []AreaPoint{single, eight, asicLo, asicHi}
}
