package hwsim

// CycleEstimate pairs a first-principles cycle count with the wall-clock
// latency the paper reports, plus the resulting calibration factor. Tables
// use the calibrated latency; EXPERIMENTS.md reports the raw estimate so
// modeling gaps stay visible.
type CycleEstimate struct {
	RawCycles   float64
	RawMs       float64
	PaperMs     float64 // 0 when the paper reports no number (pure prediction)
	Calibration float64 // PaperMs / RawMs (1 when no paper number exists)
}

// Ms returns the model's working latency: calibrated when a paper anchor
// exists, raw otherwise.
func (c CycleEstimate) Ms() float64 {
	if c.PaperMs > 0 {
		return c.PaperMs
	}
	return c.RawMs
}

// Model evaluates the HEAP datapath at a parameter set.
type Model struct {
	Cfg FPGAConfig
	P   ParamSet
}

// NewModel builds the single-FPGA model.
func NewModel(cfg FPGAConfig, p ParamSet) *Model { return &Model{Cfg: cfg, P: p} }

func (m *Model) cyclesToMs(c float64) float64 { return c / (m.Cfg.FreqMHz * 1e3) }

func (m *Model) estimate(raw float64, paperMs float64) CycleEstimate {
	e := CycleEstimate{RawCycles: raw, RawMs: m.cyclesToMs(raw), PaperMs: paperMs, Calibration: 1}
	if paperMs > 0 && e.RawMs > 0 {
		e.Calibration = paperMs / e.RawMs
	}
	return e
}

// nttCycles models the §IV-D datapath: two limbs are transformed together
// (256 butterflies each per cycle with 512 units), log N stages of N/2
// butterflies, plus the 7-cycle pipeline fill per stage.
func (m *Model) nttCycles(limbs int) float64 {
	n := float64(m.P.N())
	perLimbPair := float64(m.P.LogN) * (n/2/float64(m.Cfg.ModUnits/2) + float64(m.Cfg.ModOpLatency))
	pairs := float64((limbs + 1) / 2)
	return pairs * perLimbPair
}

// elementwiseCycles is L·N/units per polynomial touched.
func (m *Model) elementwiseCycles(polys, limbs int) float64 {
	return float64(polys*limbs) * float64(m.P.N()) / float64(m.Cfg.ModUnits)
}

// keySwitchCycles models the hybrid key switch (§IV-A basis-conversion
// datapath): per digit an iNTT of the digit window, the basis extension
// MACs, NTTs over the extended basis, and the row MACs; then ModDown.
func (m *Model) keySwitchCycles(limbs int) float64 {
	alpha := (limbs + m.P.D - 1) / m.P.D
	ext := limbs + m.P.AuxLimbs // extended basis size
	var c float64
	for d := 0; d < m.P.D; d++ {
		c += m.nttCycles(alpha)                // iNTT digit window
		c += m.elementwiseCycles(alpha*ext, 1) // basis-extension MACs
		c += m.nttCycles(ext)                  // NTT extended digit
		c += m.elementwiseCycles(2*2, ext)     // MAC against both key rows
	}
	// ModDown: iNTT aux, extend back, NTT L limbs, scale.
	c += m.nttCycles(m.P.AuxLimbs) + m.elementwiseCycles(m.P.AuxLimbs*limbs, 1) +
		m.nttCycles(limbs) + m.elementwiseCycles(2, limbs)
	return c
}

// Table III anchors (§VI-D, single FPGA, ms).
const (
	paperAddMs         = 0.001
	paperMultMs        = 0.028
	paperRescaleMs     = 0.010
	paperRotateMs      = 0.025
	paperBlindRotateMs = 0.060
)

// Add models the CKKS Add: two polynomials, elementwise.
func (m *Model) Add() CycleEstimate {
	return m.estimate(m.elementwiseCycles(2, m.P.Limbs), paperAddMs)
}

// Mult models CKKS Mult: the four-way tensor product plus relinearization.
func (m *Model) Mult() CycleEstimate {
	raw := m.elementwiseCycles(4, m.P.Limbs) + m.keySwitchCycles(m.P.Limbs)
	return m.estimate(raw, paperMultMs)
}

// Rescale models DivRoundByLastModulus: one iNTT, per-limb re-encode +
// NTT + subtract/scale on both polynomials.
func (m *Model) Rescale() CycleEstimate {
	raw := 2*(m.nttCycles(1)+m.nttCycles(m.P.Limbs-1)) + m.elementwiseCycles(4, m.P.Limbs-1)
	return m.estimate(raw, paperRescaleMs)
}

// Rotate models the automorph unit (16 cycles per limb with 512 units on 16
// elements each, §IV-A) followed by a key switch.
func (m *Model) Rotate() CycleEstimate {
	raw := float64(16*2*m.P.Limbs) + m.keySwitchCycles(m.P.Limbs)
	return m.estimate(raw, paperRotateMs)
}

// NTTThroughput models Table IV: single-limb NTTs per second at the
// benchmark parameter set, derived from the datapath cycles plus HBM
// streaming of the operand.
func (m *Model) NTTThroughput() (opsPerSec float64, raw CycleEstimate) {
	compute := m.nttCycles(1)
	bytes := float64(m.P.N()) * 8
	memCycles := bytes / (m.Cfg.HBMBytesPerGB * 1e9 / (m.Cfg.FreqMHz * 1e6))
	raw = m.estimate(compute+memCycles, 1e3/210_000) // paper: 210K ops/s
	return 1e3 / raw.Ms(), raw
}

// BlindRotate models a single TFHE blind rotation (Table III): n_t
// iterations of rotate → decompose → NTT → external-product MAC over the
// raised basis (§IV-E), with the accumulator kept on-chip.
func (m *Model) BlindRotate() CycleEstimate {
	lb := m.P.Limbs + m.P.AuxLimbs
	perIter := m.elementwiseCycles(2*(m.P.H+1), lb) + // monomial rotate + sub
		m.elementwiseCycles(m.P.D*(m.P.H+1), lb) + // gadget decompose
		m.nttCycles(m.P.D*(m.P.H+1)*lb) + // NTTs of the digits
		m.elementwiseCycles(2*m.P.D*(m.P.H+1)*(m.P.H+1), lb) + // MACs
		m.nttCycles((m.P.H+1)*lb) // accumulator back to coefficients
	raw := float64(m.P.NT) * perIter
	return m.estimate(raw, paperBlindRotateMs)
}

// BlindRotateBatched models the §IV-E parallel schedule: B ciphertexts
// advance through each iteration together, so every brk key is fetched once
// and the MAC pipeline stays full. It returns the per-FPGA latency for B
// ciphertexts (anchored to the paper's reported step-3 throughput), the key
// traffic, and the first-principles key-streaming lower bound — which at
// full packing EXCEEDS the reported latency (1.76 GB over 460 GB/s ≈
// 3.8 ms > 1.33 ms); EXPERIMENTS.md flags this as a soundness gap in the
// paper, and the tables use the reported figure, as the paper does.
func (m *Model) BlindRotateBatched(batch int) (ms float64, keyBytes int64, memBoundMs float64) {
	const paperBatch, paperBatchMs = 512, 1.3303
	ms = paperBatchMs * float64(batch) / float64(paperBatch)
	keyBytes = m.P.BRKTotalBytes()
	memBoundMs = float64(keyBytes) / (m.Cfg.HBMBytesPerGB * 1e9) * 1e3
	return ms, keyBytes, memBoundMs
}

// PaperHEAPTMultUs is the paper's reported Table V amortized
// per-slot-multiplication time for HEAP (µs). Our own Eq.-3 evaluation of
// the paper's latency split yields ≈0.08 µs (see AmortizedMultTime and
// EXPERIMENTS.md); tables quote the paper figure, as the paper does.
const PaperHEAPTMultUs = 0.031
