package hwsim

import (
	"math/big"
	"testing"

	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// TestKeyReuseMatchesSoftwareCounters cross-checks the model's URAM
// key-reuse assumption against the real engine: BlindRotateBatched assumes
// each BRK slab is fetched once per batch tile rather than once per
// ciphertext, and the software engine's brk_bytes_streamed counters must
// reproduce exactly the KeyTraffic ratio the model predicts. Dense masks
// (every key index used by every ciphertext) make the comparison exact; the
// batch size is deliberately a non-multiple of the tile so the partial-tile
// rounding in both accountings is exercised too.
func TestKeyReuseMatchesSoftwareCounters(t *testing.T) {
	q := ring.GenerateNTTPrimes(40, 6, 2)
	up := ring.GenerateNTTPrimesUp(40, 6, 2)
	params := rlwe.MustParameters(6, q, up, ring.DefaultSigma, 2)
	kg := rlwe.NewKeyGenerator(params, 40)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(12, rlwe.SecretBinary)
	brk := tfhe.GenBlindRotateKey(kg, lweSK, rsk)
	ev := tfhe.NewEvaluator(params, nil)
	lut := tfhe.NewLUTFromBig(params, params.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u))
	})

	const batch, tile = 10, 4
	twoN := uint64(2 * params.N())
	s := ring.NewSampler(5)
	lwes := make([]*rlwe.LWECiphertext, batch)
	for j := range lwes {
		lwe := &rlwe.LWECiphertext{A: make([]uint64, brk.NumKeys()), Q: twoN}
		for i := range lwe.A {
			lwe.A[i] = 1 + s.UniformMod(twoN-1) // dense: every key index used
		}
		lwe.B = s.UniformMod(twoN)
		lwes[j] = lwe
	}

	perCt := obs.NewMetrics()
	ev.KS.SetRecorder(perCt)
	sc := ev.NewScratch()
	acc := rlwe.NewCiphertext(params, lut.Level)
	for _, lwe := range lwes {
		ev.BlindRotateInto(acc, lwe, lut, brk, sc)
	}
	batched := obs.NewMetrics()
	ev.KS.SetRecorder(batched)
	err := ev.BlindRotateBatchInto(make([]*rlwe.Ciphertext, batch), lwes, lut, brk, tfhe.BatchOptions{Tile: tile})
	ev.KS.SetRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}

	swPerCt := perCt.Counter(obs.CounterBRKBytesStreamed)
	swBatched := batched.Counter(obs.CounterBRKBytesStreamed)
	if swPerCt == 0 || swBatched == 0 {
		t.Fatal("brk_bytes_streamed counters did not move")
	}
	swReuse := float64(swPerCt) / float64(swBatched)

	// The real quotient is batch/⌈batch/tile⌉ in both accountings, so the
	// correctly-rounded float64 divisions agree bit-exactly even though the
	// byte magnitudes differ (test ring vs paper ring).
	modelReuse := PaperParams().KeyReuse(batch, tile)
	if swReuse != modelReuse {
		t.Errorf("software key-reuse %.6f != model key-reuse %.6f", swReuse, modelReuse)
	}
	if swReuse < 2 {
		t.Errorf("key-reuse %.2f at tile %d, want >= 2 (the batching must actually help)", swReuse, tile)
	}

	perCtModel, batchedModel := PaperParams().KeyTraffic(batch, tile)
	if perCtModel != int64(batch)*PaperParams().BRKTotalBytes() {
		t.Errorf("model per-ct traffic %d, want batch×BRKTotalBytes", perCtModel)
	}
	if wantTiles := int64(3); batchedModel != wantTiles*PaperParams().BRKTotalBytes() {
		t.Errorf("model batched traffic %d, want %d tiles × BRKTotalBytes", batchedModel, wantTiles)
	}
}
