package hwsim

// Published baseline numbers the paper compares against. None of these
// systems is an open artifact at HEAP's parameter points, so — exactly as
// the paper does — the comparison rows quote the numbers published in the
// respective papers (citations keyed to the paper's bibliography).

// BasicOpBaseline is a Table III row: basic-operation latencies in ms.
type BasicOpBaseline struct {
	Name                       string
	Cite                       string
	Add, Mult, Rescale, Rotate float64 // ms; 0 = not supported
	BlindRotate                float64 // ms; 0 = not supported
}

// TableIIIBaselines returns the published comparison rows of Table III.
func TableIIIBaselines() []BasicOpBaseline {
	return []BasicOpBaseline{
		{Name: "FAB", Cite: "[2]", Add: 0.04, Mult: 1.71, Rescale: 0.19, Rotate: 1.57},
		{Name: "GPU", Cite: "[34]", Add: 0.16, Mult: 2.96, Rescale: 0.49, Rotate: 2.55},
		{Name: "GME", Cite: "[51]", Add: 0.028, Mult: 0.464, Rescale: 0.069, Rotate: 0.364},
		{Name: "TFHE", Cite: "[17]", BlindRotate: 9.40},
	}
}

// NTTBaseline is a Table IV row: NTT throughput in operations per second at
// N=2^13, logQ=218.
type NTTBaseline struct {
	Name string
	Cite string
	Ops  float64
}

// TableIVBaselines returns the published NTT throughput rows.
func TableIVBaselines() []NTTBaseline {
	return []NTTBaseline{
		{Name: "FAB", Cite: "[2]", Ops: 103_000},
		{Name: "HEAX", Cite: "[48]", Ops: 90_000},
	}
}

// BootstrapBaseline is a Table V row: amortized multiplication time per slot
// (Eq. 3) in µs, with the operating frequency and slot count each system
// reported.
type BootstrapBaseline struct {
	Name    string
	Cite    string
	FreqGHz float64
	Slots   int
	TimeUs  float64
}

// TableVBaselines returns the published bootstrapping rows of Table V.
func TableVBaselines() []BootstrapBaseline {
	return []BootstrapBaseline{
		{Name: "Lattigo", Cite: "[6]", FreqGHz: 3.5, Slots: 1 << 15, TimeUs: 101.78},
		{Name: "GPU", Cite: "[34]", FreqGHz: 1.2, Slots: 1 << 15, TimeUs: 0.716},
		{Name: "GME", Cite: "[51]", FreqGHz: 1.5, Slots: 1 << 16, TimeUs: 0.074},
		{Name: "F1", Cite: "[49]", FreqGHz: 1, Slots: 1, TimeUs: 254.46},
		{Name: "BTS-2", Cite: "[38]", FreqGHz: 1.2, Slots: 1 << 16, TimeUs: 0.0455},
		{Name: "CL", Cite: "[50]", FreqGHz: 1, Slots: 1 << 15, TimeUs: 4.19},
		{Name: "ARK", Cite: "[37]", FreqGHz: 1, Slots: 1 << 15, TimeUs: 0.014},
		{Name: "SHARP", Cite: "[36]", FreqGHz: 1, Slots: 1 << 15, TimeUs: 0.012},
		{Name: "FAB", Cite: "[2]", FreqGHz: 0.3, Slots: 1 << 15, TimeUs: 0.477},
	}
}

// HEAPFreqGHz is HEAP's operating frequency (for cycle-normalized speedups).
const HEAPFreqGHz = 0.3

// AppBaseline is a Table VI/VII row: application latency in seconds.
type AppBaseline struct {
	Name    string
	Cite    string
	FreqGHz float64
	TimeSec float64
}

// TableVIBaselines returns the published LR-training rows (average training
// time per iteration, sparsely packed ciphertexts).
func TableVIBaselines() []AppBaseline {
	return []AppBaseline{
		{Name: "Lattigo", Cite: "[6]", FreqGHz: 3.5, TimeSec: 37.05},
		{Name: "GPU", Cite: "[34]", FreqGHz: 1.2, TimeSec: 0.775},
		{Name: "GME", Cite: "[51]", FreqGHz: 1.5, TimeSec: 0.054},
		{Name: "F1", Cite: "[49]", FreqGHz: 1, TimeSec: 1.024},
		{Name: "BTS-2", Cite: "[38]", FreqGHz: 1.2, TimeSec: 0.028},
		{Name: "ARK", Cite: "[37]", FreqGHz: 1, TimeSec: 0.008},
		{Name: "SHARP", Cite: "[36]", FreqGHz: 1, TimeSec: 0.002},
		{Name: "FAB", Cite: "[2]", FreqGHz: 0.3, TimeSec: 0.103},
		{Name: "FAB-2", Cite: "[2]", FreqGHz: 0.3, TimeSec: 0.081},
	}
}

// TableVIIBaselines returns the published ResNet-20 inference rows.
func TableVIIBaselines() []AppBaseline {
	return []AppBaseline{
		{Name: "CPU", Cite: "[40]", FreqGHz: 3.5, TimeSec: 10602},
		{Name: "GME", Cite: "[51]", FreqGHz: 1.5, TimeSec: 0.982},
		{Name: "CL", Cite: "[50]", FreqGHz: 1, TimeSec: 0.321},
		{Name: "ARK", Cite: "[37]", FreqGHz: 1, TimeSec: 0.125},
		{Name: "SHARP", Cite: "[36]", FreqGHz: 1, TimeSec: 0.099},
	}
}

// TableVIIIPaper holds the paper's Table VIII runtimes (scheme switching vs
// hardware split). Our own CPU library re-measures the two CPU columns —
// see BenchmarkTable8SchemeSwitchSplit — while the HEAP column comes from
// the system model.
type TableVIIIPaper struct {
	Workload string
	CKKSCPU  float64 // seconds
	SSCPU    float64
	SSHEAP   float64
	Speedup1 float64 // CKKS-CPU / SS-CPU (algorithmic gain)
	Speedup2 float64 // SS-CPU / SS-HEAP (hardware gain)
}

// TableVIIIBaselines returns the paper's Table VIII.
func TableVIIIBaselines() []TableVIIIPaper {
	return []TableVIIIPaper{
		{Workload: "Bootstrapping", CKKSCPU: 4.168, SSCPU: 0.436, SSHEAP: 0.0015, Speedup1: 9.6, Speedup2: 290.7},
		{Workload: "LR Model Training", CKKSCPU: 37.05, SSCPU: 2.39, SSHEAP: 0.007, Speedup1: 15.5, Speedup2: 341.4},
		{Workload: "ResNet-20 Inference", CKKSCPU: 10602, SSCPU: 309.7, SSHEAP: 0.267, Speedup1: 34.2, Speedup2: 1160},
	}
}

// PaperResourceTable is Table II as published.
func PaperResourceTable() (used, available ResourceUsage) {
	return ResourceUsage{LUTs: 1012_000, FFs: 1936_000, DSPs: 6144, BRAMs: 3840, URAMs: 960},
		ResourceUsage{LUTs: 1304_000, FFs: 2607_000, DSPs: 9024, BRAMs: 4032, URAMs: 962}
}
