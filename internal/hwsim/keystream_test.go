package hwsim

import (
	"bytes"
	"testing"

	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// TestBRKWireBlobMatchesSerializer cross-checks the model's key-streaming
// traffic formula against the real serializer: BRKWireBlobBytes for a
// ParamSet mirroring a software parameter set must equal both
// tfhe.BRKBlobBytes (the arithmetic bound the cluster's chunked upload
// validates offers against) and the byte length an actual serialized
// blind-rotate key produces. This is the wire analog of
// TestKeyReuseMatchesSoftwareCounters: if the serializer format drifts, the
// model's cold-join traffic predictions drift with it, and this test pins
// the two together.
func TestBRKWireBlobMatchesSerializer(t *testing.T) {
	const (
		logN   = 6
		limbs  = 2
		aux    = 2
		dnum   = 2
		lweDim = 12
	)
	q := ring.GenerateNTTPrimes(40, logN, limbs)
	up := ring.GenerateNTTPrimesUp(40, logN, aux)
	params := rlwe.MustParameters(logN, q, up, ring.DefaultSigma, dnum)

	// The mirrored model ParamSet: h=1 ternary-style RGSW rows, d=dnum
	// gadget digits, 64-bit storage words — the same storage convention
	// BRKKeyBytes documents.
	ps := ParamSet{LogN: logN, Limbs: limbs, LimbBits: 40, AuxLimbs: aux, NT: lweDim, D: dnum, H: 1}

	if got, want := tfhe.BRKBlobBytes(params, lweDim), int(ps.BRKWireBlobBytes()); got != want {
		t.Fatalf("tfhe.BRKBlobBytes = %d, model BRKWireBlobBytes = %d", got, want)
	}
	if got, want := tfhe.BRKRecordBytes(params), int(2*ps.BRKKeyBytes()+128); got != want {
		t.Fatalf("tfhe.BRKRecordBytes = %d, model per-record bytes = %d", got, want)
	}

	// And against a real key, not just the arithmetic.
	kg := rlwe.NewKeyGenerator(params, 7)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(lweDim, rlwe.SecretBinary)
	brk := tfhe.GenBlindRotateKey(kg, lweSK, rsk)
	var buf bytes.Buffer
	if _, err := brk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), int(ps.BRKWireBlobBytes()); got != want {
		t.Fatalf("serialized BRK is %d bytes, model predicts %d", got, want)
	}

	// Paper-scale sanity: the full blob is BRKTotalBytes plus bounded framing
	// overhead (headers only — under 0.01% at n_t=500).
	pp := PaperParams()
	overhead := pp.BRKWireBlobBytes() - 2*pp.BRKTotalBytes()
	if overhead != 24+int64(pp.NT)*128 {
		t.Fatalf("paper-scale framing overhead %d bytes, want headers only", overhead)
	}
}
