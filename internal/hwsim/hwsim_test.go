package hwsim

import (
	"math"
	"testing"
)

func paperModel() *Model { return NewModel(AlveoU280(), PaperParams()) }

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if r := math.Abs(got-want) / want; r > relTol {
		t.Errorf("%s: got %g want %g (rel err %.2f > %.2f)", name, got, want, r, relTol)
	}
}

func TestResourceModelMatchesTableII(t *testing.T) {
	got := ResourceModel(AlveoU280(), PaperParams())
	want, avail := PaperResourceTable()
	within(t, "LUTs", float64(got.LUTs), float64(want.LUTs), 0.02)
	within(t, "FFs", float64(got.FFs), float64(want.FFs), 0.02)
	if got.DSPs != want.DSPs {
		t.Errorf("DSPs: got %d want %d", got.DSPs, want.DSPs)
	}
	if got.BRAMs != want.BRAMs || got.URAMs != want.URAMs {
		t.Errorf("memory blocks: got %d/%d want %d/%d", got.BRAMs, got.URAMs, want.BRAMs, want.URAMs)
	}
	// Nothing may exceed the device budget.
	if got.LUTs > avail.LUTs || got.DSPs > avail.DSPs || got.BRAMs > avail.BRAMs || got.URAMs > avail.URAMs {
		t.Error("modeled design exceeds the U280 budget")
	}
}

func TestMemoryPlanMatchesFigures(t *testing.T) {
	mp := PlanMemory(AlveoU280(), PaperParams())
	if mp.URAMPerCt != 12 || mp.CtsInURAM != 80 {
		t.Errorf("URAM plan %d/%d, Fig. 2 says 12 blocks/ct and 80 cts", mp.URAMPerCt, mp.CtsInURAM)
	}
	if mp.BRAMPerCt != 192 || mp.CtsInBRAM != 20 {
		t.Errorf("BRAM plan %d/%d, Fig. 3 says 192 blocks/ct and 20 cts", mp.BRAMPerCt, mp.CtsInBRAM)
	}
	within(t, "on-chip MB", mp.OnChipMB, 43, 0.15) // §VI-B: 43 MB
}

func TestParamSetSizes(t *testing.T) {
	p := PaperParams()
	// §III-C: RLWE ct ≈ 0.44 MB, LWE ct ≈ 2.3 KB, brk key ≈ 3.52 MB,
	// total keys ≈ 1.76 GB.
	within(t, "RLWE ct bytes", float64(p.CtBytes()), 0.44*(1<<20), 0.05)
	within(t, "LWE ct bytes", float64(p.LWECtBytes()), 2.3*1024, 0.05)
	within(t, "brk key bytes", float64(p.BRKKeyBytes()), 3.52*(1<<20), 0.05)
	within(t, "brk total bytes", float64(p.BRKTotalBytes()), 1.76*(1<<30), 0.05)
}

func TestBasicOpsAnchoredToTableIII(t *testing.T) {
	m := paperModel()
	within(t, "Add", m.Add().Ms(), 0.001, 1e-9)
	within(t, "Mult", m.Mult().Ms(), 0.028, 1e-9)
	within(t, "Rescale", m.Rescale().Ms(), 0.010, 1e-9)
	within(t, "Rotate", m.Rotate().Ms(), 0.025, 1e-9)
	within(t, "BlindRotate", m.BlindRotate().Ms(), 0.060, 1e-9)

	// First-principles estimates must sit within an order of magnitude of
	// the anchors for the basic CKKS operations (they are compute-bound and
	// well understood; the BlindRotate batch anchor is the known exception,
	// see EXPERIMENTS.md).
	for _, tc := range []struct {
		name string
		est  CycleEstimate
	}{
		{"Add", m.Add()}, {"Mult", m.Mult()}, {"Rescale", m.Rescale()}, {"Rotate", m.Rotate()},
	} {
		if tc.est.Calibration > 10 || tc.est.Calibration < 0.1 {
			t.Errorf("%s: calibration factor %.2f outside [0.1, 10] — first-principles model far off", tc.name, tc.est.Calibration)
		}
	}
}

func TestNTTThroughputTableIV(t *testing.T) {
	m := paperModel()
	ops, est := m.NTTThroughput()
	within(t, "NTT ops/s", ops, 210_000, 1e-6)
	if est.Calibration > 10 || est.Calibration < 0.1 {
		t.Errorf("NTT calibration %.2f out of range", est.Calibration)
	}
	for _, b := range TableIVBaselines() {
		if ops <= b.Ops {
			t.Errorf("HEAP NTT throughput %.0f should exceed %s's %.0f", ops, b.Name, b.Ops)
		}
	}
}

func TestBootstrapBreakdownMatchesPaper(t *testing.T) {
	s := NewSystem(AlveoU280(), PaperParams(), 8)
	b := s.Bootstrap(1 << 12) // fully packed: 4096 LWE ciphertexts
	within(t, "steps 1-2", b.Steps12Ms, 0.0025, 1e-6)
	within(t, "step 3", b.Step3Ms, 1.3303, 0.05)
	within(t, "steps 4-5", b.Steps45Ms, 0.1672, 1e-6)
	within(t, "total", b.TotalMs, 1.5, 0.05)
}

func TestBootstrapScalesWithSlotsAndFPGAs(t *testing.T) {
	s8 := NewSystem(AlveoU280(), PaperParams(), 8)
	s1 := NewSystem(AlveoU280(), PaperParams(), 1)
	full := s8.Bootstrap(1 << 12).TotalMs
	sparse := s8.Bootstrap(256).TotalMs
	if sparse >= full {
		t.Errorf("sparse packing (256) should bootstrap faster: %g vs %g", sparse, full)
	}
	single := s1.Bootstrap(1 << 12).TotalMs
	if single <= full {
		t.Errorf("single FPGA should be slower: %g vs %g", single, full)
	}
	// Fully-packed blind rotation parallelizes near-linearly (§V).
	if ratio := single / full; ratio < 4 {
		t.Errorf("8-FPGA speedup %.1f× too low for a parallelized step 3", ratio)
	}
}

func TestAmortizedMultTimeTableV(t *testing.T) {
	s := NewSystem(AlveoU280(), PaperParams(), 8)
	eq3 := s.AmortizedMultTime(1<<12, 5)
	// Our Eq.-3 evaluation of the paper's own latency split gives ~0.08 µs
	// against the 0.031 µs the paper reports; the gap (≈2.6×) is recorded
	// in EXPERIMENTS.md. The table rows quote the paper's anchored value.
	if eq3 < PaperHEAPTMultUs || eq3 > 4*PaperHEAPTMultUs {
		t.Errorf("Eq. 3 evaluation %.3f µs should sit within 4× of the paper's %.3f µs", eq3, PaperHEAPTMultUs)
	}
	got := PaperHEAPTMultUs
	// Table V ordering: HEAP beats every baseline except ARK and SHARP on
	// absolute time.
	for _, b := range TableVBaselines() {
		faster := got < b.TimeUs
		wantFaster := b.Name != "ARK" && b.Name != "SHARP"
		if faster != wantFaster {
			t.Errorf("vs %s: HEAP %.3fµs, baseline %.3fµs — ordering differs from Table V", b.Name, got, b.TimeUs)
		}
	}
	// Cycle-normalized, HEAP must beat everything (Table V last column).
	for _, b := range TableVBaselines() {
		heapCycles := got * HEAPFreqGHz
		baseCycles := b.TimeUs * b.FreqGHz
		if heapCycles >= baseCycles {
			t.Errorf("vs %s: HEAP %.4f cycle-µs not below %.4f", b.Name, heapCycles, baseCycles)
		}
	}
}

func TestKeyTrafficBound(t *testing.T) {
	m := paperModel()
	ms, keyBytes, memBound := m.BlindRotateBatched(512)
	if ms <= 0 {
		t.Fatal("non-positive batch latency")
	}
	within(t, "key bytes", float64(keyBytes), 1.76*(1<<30), 0.05)
	// Streaming 1.76 GB at 460 GB/s takes ≈ 3.8 ms: the first-principles
	// memory bound exceeds the paper's reported 1.33 ms step-3 latency —
	// the model must surface that gap (EXPERIMENTS.md discusses it).
	if memBound < 3.5 {
		t.Errorf("key-streaming bound %.2f ms too low", memBound)
	}
	if ms >= memBound {
		t.Errorf("anchored latency %.2f ms should be below the memory bound %.2f ms (the flagged discrepancy)", ms, memBound)
	}
}

// TestAreaComparisonMatchesSectionVIB checks the §VI-B claims: HEAP on
// eight FPGAs instantiates 4096 multipliers and ~344 MB of on-chip memory,
// within/below the ASIC envelope.
func TestAreaComparisonMatchesSectionVIB(t *testing.T) {
	pts := AreaComparison(AlveoU280(), PaperParams())
	if len(pts) != 4 {
		t.Fatalf("expected 4 comparison points, got %d", len(pts))
	}
	eight := pts[1]
	if eight.Multipliers != 4096 {
		t.Errorf("8-FPGA multipliers %d, §VI-B says 4096", eight.Multipliers)
	}
	within(t, "8-FPGA on-chip MB", eight.OnChipMB, 344, 0.1)
	asicHi := pts[3]
	if eight.RelPowerProxy >= asicHi.RelPowerProxy {
		t.Errorf("HEAP power proxy %.1f should undercut the high-end ASIC %.1f",
			eight.RelPowerProxy, asicHi.RelPowerProxy)
	}
}
