package hwsim

// SystemModel is the §V multi-FPGA system: one primary plus secondaries,
// connected by the 100G CMAC link, running the parallelized bootstrap.
type SystemModel struct {
	*Model
	NumFPGAs int
}

// NewSystem builds an nFPGA-node system model.
func NewSystem(cfg FPGAConfig, p ParamSet, nFPGAs int) *SystemModel {
	return &SystemModel{Model: NewModel(cfg, p), NumFPGAs: nFPGAs}
}

// BootstrapBreakdown is the Algorithm 2 latency split the paper reports in
// §VI-E (steps 1–2: 0.0025 ms, step 3: 1.3303 ms, steps 4–5: 0.1672 ms).
type BootstrapBreakdown struct {
	Steps12Ms float64 // ModulusSwitch + Extract
	Step3Ms   float64 // distributed BlindRotate (incl. communication)
	Steps45Ms float64 // repack + add + p/2N rescale
	CommMs    float64 // CMAC transfer component (overlapped into Step3Ms)
	TotalMs   float64
}

// Bootstrap models one fully-parallelized scheme-switching bootstrap over
// nLWE extracted ciphertexts (nLWE = slots for the packing in use).
func (s *SystemModel) Bootstrap(nLWE int) BootstrapBreakdown {
	var b BootstrapBreakdown

	// Steps 1–2: elementwise scale/divide on 2 polynomials of one limb.
	raw := s.elementwiseCycles(4, 1)
	b.Steps12Ms = s.estimate(raw, 0.0025).Ms()

	// Step 3: nLWE blind rotations spread across the FPGAs. LWE fan-out
	// rides the CMAC link; each secondary pre-packs its own accumulators
	// into a single RLWE ciphertext before streaming it back, so the
	// fan-in is one ciphertext per secondary. Both directions overlap with
	// compute through the §V smart scheduling, so step 3 is the max of the
	// compute and communication streams ("no FPGA is sitting idle").
	perFPGA := (nLWE + s.NumFPGAs - 1) / s.NumFPGAs
	computeMs, _, _ := s.BlindRotateBatched(perFPGA)
	ethBytesPerMs := s.Cfg.EthernetGbps / 8 * 1e6
	commBytes := float64(nLWE-perFPGA)*float64(s.P.LWECtBytes()) +
		float64(s.NumFPGAs-1)*float64(s.P.CtBytes())
	b.CommMs = commBytes / ethBytesPerMs
	b.Step3Ms = computeMs
	if s.NumFPGAs > 1 && b.CommMs > b.Step3Ms {
		b.Step3Ms = b.CommMs // network-bound regime
	}

	// Steps 4–5: repack (log N automorphism key switches on the primary),
	// the ct' addition and the p/2N rescale.
	raw45 := float64(s.P.LogN)*s.keySwitchCycles(s.P.Limbs+s.P.AuxLimbs) +
		s.elementwiseCycles(4, s.P.Limbs+s.P.AuxLimbs) +
		2*s.nttCycles(s.P.Limbs+s.P.AuxLimbs)
	b.Steps45Ms = s.estimate(raw45, 0.1672).Ms()

	b.TotalMs = b.Steps12Ms + b.Step3Ms + b.Steps45Ms
	return b
}

// AmortizedMultTime computes Eq. 3, the T_{Mult,a/slot} metric (µs):
//
//	T = (T_BS + Σ_{i=1..ℓ} T_Mult(i)) / (ℓ·n)
//
// with ℓ the levels regained per bootstrap (L − depth, depth = 1 for the
// scheme-switching bootstrap) and n the packed slots.
func (s *SystemModel) AmortizedMultTime(nSlots, levels int) float64 {
	bs := s.Bootstrap(nSlots).TotalMs
	mult := s.Mult().Ms()
	totalMs := bs + float64(levels)*mult
	return totalMs / float64(levels*nSlots) * 1e3 // µs
}

// WorkloadSchedule is a per-iteration (or per-inference) homomorphic
// operation count plus the bootstrap packing it uses.
type WorkloadSchedule struct {
	Name      string
	Adds      int
	Mults     int
	PtMults   int
	Rotates   int
	Rescales  int
	Boots     int // bootstrap invocations
	BootSlots int // slots packed while bootstrapping
}

// Time evaluates a schedule on the system model (ms).
func (s *SystemModel) Time(w WorkloadSchedule) float64 {
	ms := float64(w.Adds)*s.Add().Ms() +
		float64(w.Mults)*s.Mult().Ms() +
		float64(w.PtMults)*(s.Mult().Ms()/2) + // no relinearization
		float64(w.Rotates)*s.Rotate().Ms() +
		float64(w.Rescales)*s.Rescale().Ms()
	if w.Boots > 0 {
		ms += float64(w.Boots) * s.Bootstrap(w.BootSlots).TotalMs
	}
	return ms
}

// ComputeToBootRatio reports the §VI-F compute:bootstrapping split of a
// schedule (the paper: LR moves from 0.3 to 0.79, ResNet from 0.2 to 0.56).
func (s *SystemModel) ComputeToBootRatio(w WorkloadSchedule) (computeFrac, bootFrac float64) {
	total := s.Time(w)
	boot := float64(w.Boots) * s.Bootstrap(w.BootSlots).TotalMs
	return (total - boot) / total, boot / total
}
