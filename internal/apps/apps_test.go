package apps

import (
	"math"
	"testing"

	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/hwsim"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

func TestSyntheticDatasetShapeAndBalance(t *testing.T) {
	ds := PaperShapeDataset(1)
	if ds.Len() != 11982 || ds.Features() != 196 {
		t.Fatalf("dataset shape %d×%d, want 11982×196", ds.Len(), ds.Features())
	}
	ones := 0
	for _, y := range ds.Y {
		if y == 1 {
			ones++
		} else if y != 0 {
			t.Fatalf("label %v not in {0,1}", y)
		}
	}
	if ones < ds.Len()*2/5 || ones > ds.Len()*3/5 {
		t.Errorf("class balance off: %d/%d", ones, ds.Len())
	}
	// Determinism.
	ds2 := PaperShapeDataset(1)
	if ds2.X[0][0] != ds.X[0][0] {
		t.Error("same seed should reproduce the dataset")
	}
}

// TestPlainLRReachesPaperAccuracy reproduces the §VI-F.3 accuracy regime:
// 30 iterations, one per paper protocol, on the 11982×196 dataset.
func TestPlainLRReachesPaperAccuracy(t *testing.T) {
	ds := PaperShapeDataset(2)
	w := TrainLogisticPlain(ds, 30, 1.0, false)
	if acc := Accuracy(w, ds); acc < 0.95 {
		t.Errorf("plaintext LR accuracy %.3f below the ~97%% regime", acc)
	}
	// The degree-1 approximate sigmoid the encrypted trainer uses must stay
	// in the same accuracy regime.
	wApprox := TrainLogisticPlain(ds, 30, 1.0, true)
	if acc := Accuracy(wApprox, ds); acc < 0.93 {
		t.Errorf("approx-sigmoid LR accuracy %.3f degraded too far", acc)
	}
}

func encryptedLRContext(t *testing.T, slots int) (*EncryptedLR, *Dataset) {
	t.Helper()
	logN := 8
	q := ring.GenerateNTTPrimes(30, logN, 6) // q0 + 4 app limbs + aux
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 3, float64(uint64(1)<<28), slots)
	kg := rlwe.NewKeyGenerator(params.Parameters, 70)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 71)

	rotations := make([]int, 0)
	for r := 1; r < slots; r <<= 1 {
		rotations = append(rotations, r)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, rotations, false)
	ev := ckks.NewEvaluator(params, keys, nil)

	cfg := core.DefaultConfig()
	cfg.NT = 24
	cfg.Workers = 4
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &EncryptedLR{Params: params, Client: cl, Ev: ev, Boot: bt, Gamma: 1.0}
	ds := MiniDataset(slots, 4, 3)
	return trainer, ds
}

// TestEncryptedLRMatchesPlaintextOneIteration checks the homomorphic
// gradient computation against the plaintext reference (no bootstrap).
func TestEncryptedLRMatchesPlaintextOneIteration(t *testing.T) {
	trainer, ds := encryptedLRContext(t, 128)
	wEnc := trainer.Train(ds, 1)
	wPlain := TrainLogisticPlain(ds, 1, 1.0, true)
	for j := range wPlain {
		if d := math.Abs(wEnc[j] - wPlain[j]); d > 0.02 {
			t.Errorf("weight %d: encrypted %.4f vs plaintext %.4f", j, wEnc[j], wPlain[j])
		}
	}
}

// TestEncryptedLRTrainingWithBootstrap runs two full iterations with a
// scheme-switching bootstrap between them — the end-to-end Table VI code
// path — and checks the model still classifies.
func TestEncryptedLRTrainingWithBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapped training is slow")
	}
	// Exact bootstrap mode at N=128: the n_t-mode rounding noise at toy
	// ring degrees can push weights past the wrap-around bound.
	logN := 7
	slots := 64
	q := ring.GenerateNTTPrimes(30, logN, 6)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 3, float64(uint64(1)<<28), slots)
	kg := rlwe.NewKeyGenerator(params.Parameters, 70)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 71)
	rotations := make([]int, 0)
	for r := 1; r < slots; r <<= 1 {
		rotations = append(rotations, r)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, rotations, false)
	ev := ckks.NewEvaluator(params, keys, nil)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 4
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &EncryptedLR{Params: params, Client: cl, Ev: ev, Boot: bt, Gamma: 1.0}
	ds := MiniDataset(slots, 4, 3)
	w := trainer.Train(ds, 2)
	acc := Accuracy(w, ds)
	wPlain := TrainLogisticPlain(ds, 2, 1.0, true)
	accPlain := Accuracy(wPlain, ds)
	t.Logf("encrypted accuracy %.3f, plaintext %.3f", acc, accPlain)
	if acc < accPlain-0.1 {
		t.Errorf("encrypted training accuracy %.3f collapsed vs plaintext %.3f", acc, accPlain)
	}
}

func TestLRScheduleMatchesTableVI(t *testing.T) {
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	w := LRSchedule()
	sec := s.Time(w) / 1e3
	// Paper: 0.007 s per iteration on HEAP.
	if sec < 0.005 || sec > 0.009 {
		t.Errorf("modeled LR iteration %.4f s, paper reports 0.007 s", sec)
	}
	compute, boot := s.ComputeToBootRatio(w)
	// §VI-F.1: bootstrapping drops to ~21% of the iteration.
	if boot < 0.12 || boot > 0.30 {
		t.Errorf("boot fraction %.2f, paper reports ~0.21", boot)
	}
	if compute+boot < 0.999 || compute+boot > 1.001 {
		t.Error("fractions must sum to 1")
	}
}

func TestResNetScheduleMatchesTableVII(t *testing.T) {
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	w := ResNetSchedule()
	sec := s.Time(w) / 1e3
	// Paper: 0.267 s per inference on HEAP.
	if sec < 0.21 || sec > 0.33 {
		t.Errorf("modeled ResNet-20 inference %.4f s, paper reports 0.267 s", sec)
	}
	_, boot := s.ComputeToBootRatio(w)
	// §VI-F.2: bootstrapping is ~44% of HEAP's inference time.
	if boot < 0.35 || boot > 0.55 {
		t.Errorf("boot fraction %.2f, paper reports ~0.44", boot)
	}
	if len(ResNet20Layers()) != 20 {
		t.Errorf("ResNet-20 should have 20 stages, got %d", len(ResNet20Layers()))
	}
}

// TestEncryptedCNNLayers runs a two-layer encrypted CNN (conv + square
// activation each) with a scheme-switching bootstrap between the layers and
// checks against the plaintext reference — the functional counterpart of
// the Table VII workload.
func TestEncryptedCNNLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapped CNN is slow")
	}
	logN := 7
	slots := 64
	q := ring.GenerateNTTPrimes(30, logN, 4)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), slots)
	kg := rlwe.NewKeyGenerator(params.Parameters, 140)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 141)
	keys := ckks.GenEvaluationKeySet(params, kg, sk, []int{1, -1}, false)
	ev := ckks.NewEvaluator(params, keys, nil)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 2
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}

	layers := []ConvLayer{
		{Kernel: map[int]float64{-1: 0.25, 0: 0.5, 1: 0.25}, Activate: true},
		{Kernel: map[int]float64{-1: -0.5, 0: 1.0, 1: -0.5}, Activate: true},
	}
	cnn := &EncryptedCNN{Params: params, Ev: ev, Boot: bt, Layers: layers}

	img := make([]complex128, slots)
	for i := range img {
		img[i] = complex(0.4*float64(i%8)/8, 0)
	}
	out := cnn.Infer(cl.EncryptAtLevel(img, bt.AppMaxLevel()))
	got := cl.Decrypt(out)
	want := ReferenceCNN(img, layers)
	for i := range want {
		re := real(got[i]) - real(want[i])
		im := imag(got[i]) - imag(want[i])
		if re*re+im*im > 1e-4 {
			t.Fatalf("slot %d: %v want %v", i, got[i], want[i])
		}
	}
}
