// Package apps implements the paper's two evaluation workloads: HELR-style
// logistic-regression training (§VI-F.1) and ResNet-20 inference following
// the Lee et al. schedule (§VI-F.2) — both as hwsim operation schedules that
// regenerate Tables VI and VII, and (for LR) as a fully functional encrypted
// training loop over the scheme-switching bootstrapper.
//
// The MNIST 3-vs-8 subset the paper trains on is substituted by a
// deterministic synthetic two-class Gaussian dataset with the same shape
// (11 982 samples × 196 features); see DESIGN.md for why this preserves the
// experiment (the measurements depend on the operation schedule and on
// bootstrap exactness, not on pixel values).
package apps

import (
	"math"
	"math/rand/v2"
)

// Dataset is a binary-classification dataset with labels in {0, 1}.
type Dataset struct {
	X [][]float64 // [samples][features]
	Y []float64
}

// NewSyntheticDataset generates two Gaussian classes with means ±mu along a
// random direction — linearly separable up to the class overlap controlled
// by mu/sigma, mimicking the difficulty of MNIST 3-vs-8.
func NewSyntheticDataset(samples, features int, mu, sigma float64, seed uint64) *Dataset {
	var key [32]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(seed >> (8 * i))
	}
	rng := rand.New(rand.NewChaCha8(key))
	dir := make([]float64, features)
	norm := 0.0
	for j := range dir {
		dir[j] = rng.NormFloat64()
		norm += dir[j] * dir[j]
	}
	norm = math.Sqrt(norm)
	for j := range dir {
		dir[j] /= norm
	}
	ds := &Dataset{X: make([][]float64, samples), Y: make([]float64, samples)}
	for i := 0; i < samples; i++ {
		cls := float64(i % 2)
		sign := 2*cls - 1
		row := make([]float64, features)
		for j := 0; j < features; j++ {
			row[j] = sign*mu*dir[j] + sigma*rng.NormFloat64()
		}
		ds.X[i] = row
		ds.Y[i] = cls
	}
	return ds
}

// PaperShapeDataset returns the 11 982 × 196 dataset matching the paper's
// MNIST subset (§VI-F.1).
func PaperShapeDataset(seed uint64) *Dataset {
	return NewSyntheticDataset(11982, 196, 1.9, 1.0, seed)
}

// MiniDataset returns a small dataset for the functional encrypted trainer.
func MiniDataset(samples, features int, seed uint64) *Dataset {
	return NewSyntheticDataset(samples, features, 1.5, 0.7, seed)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Features returns the feature dimension.
func (d *Dataset) Features() int { return len(d.X[0]) }
