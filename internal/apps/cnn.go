package apps

import (
	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/rlwe"
)

// Encrypted CNN building blocks: the multiplexed-convolution pattern of
// Lee et al. [39] (rotations + plaintext weight multiplications) and the
// square activation, with a scheme-switching bootstrap between layers —
// the functional counterpart of the Table VII schedule.

// ConvLayer is a 1-D convolution kernel over the packed feature map plus an
// optional square activation.
type ConvLayer struct {
	Kernel   map[int]float64 // offset → weight
	Activate bool            // apply x² after the convolution
}

// EncryptedCNN applies conv layers to an encrypted feature map, invoking
// the bootstrapper whenever the level budget runs out.
type EncryptedCNN struct {
	Params *ckks.Parameters
	Ev     *ckks.Evaluator
	Boot   *core.Bootstrapper
	Layers []ConvLayer
}

// levelCost is the multiplicative depth of one layer (1 for the plaintext
// weight multiplication, +1 for the square activation).
func (l ConvLayer) levelCost() int {
	if l.Activate {
		return 2
	}
	return 1
}

// Infer runs the layers over ct, bootstrapping between layers when needed,
// and returns the final feature-map ciphertext.
func (c *EncryptedCNN) Infer(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	for _, layer := range c.Layers {
		if ct.Level() <= layer.levelCost() {
			if ct.Level() > 1 {
				ct = c.Ev.DropLevels(ct, ct.Level()-1)
			}
			ct = c.Boot.Bootstrap(ct)
		}
		ct = c.applyLayer(ct, layer)
	}
	return ct
}

func (c *EncryptedCNN) applyLayer(ct *rlwe.Ciphertext, layer ConvLayer) *rlwe.Ciphertext {
	var conv *rlwe.Ciphertext
	for off, w := range layer.Kernel {
		t := ct
		if off != 0 {
			t = c.Ev.Rotate(ct, off)
		}
		t = c.Ev.MulConstToScale(t, complex(w, 0), c.Params.DefaultScale)
		if conv == nil {
			conv = t
		} else {
			conv = c.Ev.Add(conv, t)
		}
	}
	if layer.Activate {
		// Scale after the square is Δ²/q, tracked exactly; the next layer's
		// MulConstToScale re-normalizes it to Δ.
		conv = c.Ev.MulRelinRescale(conv, conv)
	}
	return conv
}

// ReferenceCNN computes the same layers on plaintext values (cyclic
// convolution over the slot vector), for verification.
func ReferenceCNN(values []complex128, layers []ConvLayer) []complex128 {
	cur := append([]complex128(nil), values...)
	n := len(cur)
	for _, layer := range layers {
		next := make([]complex128, n)
		for i := 0; i < n; i++ {
			var acc complex128
			for off, w := range layer.Kernel {
				acc += cur[((i+off)%n+n)%n] * complex(w, 0)
			}
			next[i] = acc
		}
		if layer.Activate {
			for i := range next {
				next[i] *= next[i]
			}
		}
		cur = next
	}
	return cur
}
