package apps

import "heap/internal/hwsim"

// ResNetLayer is one stage of the Lee et al. [39] homomorphic ResNet-20
// schedule: a multiplexed-parallel convolution (rotations + plaintext
// multiplications), batch-norm folding (plaintext multiply/add), and the
// degree-27 polynomial ReLU approximation whose depth forces several
// bootstrap invocations at HEAP's five usable levels.
type ResNetLayer struct {
	Name       string
	ConvRots   int
	ConvPtMul  int
	ConvAdds   int
	ReLUMults  int
	Bootstraps int
}

// ResNet20Layers returns the 1+3×6+1 layer structure of ResNet-20 on
// 32×32 inputs with 1024-slot packing.
func ResNet20Layers() []ResNetLayer {
	layers := make([]ResNetLayer, 0, 20)
	layers = append(layers, ResNetLayer{Name: "conv1", ConvRots: 140, ConvPtMul: 140, ConvAdds: 190, ReLUMults: 30, Bootstraps: 10})
	stages := []struct {
		name string
		n    int
	}{{"stage1", 6}, {"stage2", 6}, {"stage3", 6}}
	for _, st := range stages {
		for i := 0; i < st.n; i++ {
			layers = append(layers, ResNetLayer{
				Name: st.name, ConvRots: 150, ConvPtMul: 150, ConvAdds: 200,
				ReLUMults: 30, Bootstraps: 10,
			})
		}
	}
	layers = append(layers, ResNetLayer{Name: "avgpool+fc", ConvRots: 60, ConvPtMul: 50, ConvAdds: 100, ReLUMults: 0, Bootstraps: 10})
	return layers
}

// ResNetSchedule aggregates the full-network operation counts at the
// paper's 1024-slot packing (§VI-F.2: 1024 LWE ciphertexts per bootstrap,
// ~44% of HEAP's inference time in bootstrapping).
func ResNetSchedule() hwsim.WorkloadSchedule {
	var w hwsim.WorkloadSchedule
	w.Name = "ResNet-20 inference (Lee et al. [39], 1024 slots)"
	w.BootSlots = 1024
	for _, l := range ResNet20Layers() {
		w.Rotates += l.ConvRots
		w.PtMults += l.ConvPtMul
		w.Adds += l.ConvAdds
		w.Mults += l.ReLUMults
		w.Boots += l.Bootstraps
		w.Rescales += l.ConvPtMul/2 + l.ReLUMults
	}
	return w
}
