package apps

import (
	"math"

	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/hwsim"
	"heap/internal/rlwe"
)

// sigmoid is the logistic function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// sigmoidApprox is the degree-1 minimax approximation the encrypted trainer
// evaluates (HELR [29] uses low-degree polynomial sigmoids; degree 1 keeps
// the per-iteration depth at three levels).
func sigmoidApprox(z float64) float64 { return 0.5 + 0.25*z }

// TrainLogisticPlain trains logistic regression with full-batch gradient
// descent — the plaintext reference for the encrypted trainer and the
// accuracy yardstick of §VI-F.3.
func TrainLogisticPlain(ds *Dataset, iters int, gamma float64, approx bool) []float64 {
	nf := ds.Features()
	w := make([]float64, nf)
	m := float64(ds.Len())
	for it := 0; it < iters; it++ {
		grad := make([]float64, nf)
		for i, row := range ds.X {
			z := 0.0
			for j, x := range row {
				z += w[j] * x
			}
			var p float64
			if approx {
				p = sigmoidApprox(z)
			} else {
				p = sigmoid(z)
			}
			e := ds.Y[i] - p
			for j, x := range row {
				grad[j] += e * x
			}
		}
		for j := range w {
			w[j] += gamma * grad[j] / m
		}
	}
	return w
}

// Accuracy scores a weight vector on a dataset.
func Accuracy(w []float64, ds *Dataset) float64 {
	correct := 0
	for i, row := range ds.X {
		z := 0.0
		for j, x := range row {
			z += w[j] * x
		}
		pred := 0.0
		if z > 0 {
			pred = 1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// EncryptedLR trains logistic regression on encrypted data: one ciphertext
// per feature column (batch packed in slots), encrypted weight ciphertexts,
// three multiplicative levels per iteration, and one scheme-switching
// bootstrap per exhausted weight ciphertext — the paper's protocol of one
// bootstrap per training iteration (§VI-F.1).
type EncryptedLR struct {
	Params *ckks.Parameters
	Client *ckks.Client
	Ev     *ckks.Evaluator
	Boot   *core.Bootstrapper
	Gamma  float64
}

// Train runs iters iterations over ds (ds.Len() must equal the slot count)
// and returns the decrypted weights.
func (t *EncryptedLR) Train(ds *Dataset, iters int) []float64 {
	nf := ds.Features()
	slots := t.Params.Slots
	if ds.Len() != slots {
		panic("apps: batch size must equal the slot count")
	}
	// Encrypt feature columns and labels.
	xCts := make([]*rlwe.Ciphertext, nf)
	col := make([]complex128, slots)
	level := t.Boot.AppMaxLevel()
	for j := 0; j < nf; j++ {
		for i := 0; i < slots; i++ {
			col[i] = complex(ds.X[i][j], 0)
		}
		xCts[j] = t.Client.EncryptAtLevel(col, level)
	}
	for i := 0; i < slots; i++ {
		col[i] = complex(ds.Y[i]-0.5, 0) // y − 1/2 folds the sigmoid offset in
	}
	yCt := t.Client.EncryptAtLevel(col, level)

	// Encrypted weights, zero-initialized (trivial encryptions of 0).
	wCts := make([]*rlwe.Ciphertext, nf)
	zero := make([]complex128, slots)
	for j := range wCts {
		wCts[j] = t.Client.EncryptAtLevel(zero, level)
	}

	gammaOverM := t.Gamma / float64(slots)
	for it := 0; it < iters; it++ {
		// z = Σ_j X_j ⊙ W_j (weights are replicated across slots).
		var z *rlwe.Ciphertext
		for j := 0; j < nf; j++ {
			xj := xCts[j]
			if xj.Level() > wCts[j].Level() {
				xj = t.Ev.DropLevels(xj, xj.Level()-wCts[j].Level())
			}
			term := t.Ev.MulRelinRescale(xj, wCts[j])
			if z == nil {
				z = term
			} else {
				z = t.Ev.Add(z, term)
			}
		}
		// err = (y − 1/2) − z/4   (degree-1 sigmoid)
		quarterZ := t.Ev.MulConstToScale(z, 0.25, t.Params.DefaultScale)
		yAligned := yCt
		if yAligned.Level() > quarterZ.Level() {
			yAligned = t.Ev.DropLevels(yAligned, yAligned.Level()-quarterZ.Level())
		}
		yAligned = yAligned.CopyNew()
		yAligned.Scale = quarterZ.Scale // both sit at Δ up to rounding
		errCt := t.Ev.Sub(yAligned, quarterZ)

		// grad_j = Σ_i err_i·x_ij, replicated by rotate-and-add, scaled by γ/m.
		for j := 0; j < nf; j++ {
			xj := xCts[j]
			if xj.Level() > errCt.Level() {
				xj = t.Ev.DropLevels(xj, xj.Level()-errCt.Level())
			}
			g := t.Ev.MulRelinRescale(xj, errCt)
			for r := 1; r < slots; r <<= 1 {
				g = t.Ev.Add(g, t.Ev.Rotate(g, r))
			}
			// Scale by γ/m, landing exactly on the weights' scale so the
			// update is a plain addition even at level 1.
			g = t.Ev.MulConstToScale(g, complex(gammaOverM, 0), wCts[j].Scale)
			wAligned := wCts[j]
			if wAligned.Level() > g.Level() {
				wAligned = t.Ev.DropLevels(wAligned, wAligned.Level()-g.Level())
			}
			wCts[j] = t.Ev.Add(wAligned, g)
		}

		// Bootstrap the exhausted weight ciphertexts — the paper performs a
		// bootstrapping operation after every iteration.
		if it < iters-1 {
			for j := range wCts {
				w := wCts[j]
				if w.Level() > 1 {
					w = t.Ev.DropLevels(w, w.Level()-1)
				}
				wCts[j] = t.Boot.Bootstrap(w)
			}
		}
	}

	out := make([]float64, nf)
	for j := range wCts {
		out[j] = real(t.Client.Decrypt(wCts[j])[0])
	}
	return out
}

// LRSchedule is the per-iteration HELR operation count at the paper's
// packing (256 slots, 196 features, BSGS matrix products): three
// matrix-vector passes of ~2√196 rotations each, the degree-3 sigmoid, the
// weight update, and the refresh of the three working ciphertexts.
func LRSchedule() hwsim.WorkloadSchedule {
	return hwsim.WorkloadSchedule{
		Name:      "LR training iteration (HELR [29], 256 slots)",
		Adds:      220,
		Mults:     46,
		PtMults:   84,
		Rotates:   100,
		Rescales:  70,
		Boots:     3,
		BootSlots: 256,
	}
}
