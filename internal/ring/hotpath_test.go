package ring

import "testing"

// TestShoupPrecompBoundary is the regression test for the bits.Div64 panic:
// ShoupPrecomp(w) with w ≥ q used to crash (quotient overflow) instead of
// reducing the operand. The precomputed constant must agree with the one for
// the reduced operand, and the fast multiply must stay correct at the
// boundary w = q−1.
func TestShoupPrecompBoundary(t *testing.T) {
	m := NewModulus(GenerateNTTPrimes(40, 4, 1)[0])
	q := m.Q
	for _, w := range []uint64{q - 1, q, q + 1, 2*q + 5, ^uint64(0)} {
		got := m.ShoupPrecomp(w) // must not panic
		want := m.ShoupPrecomp(w % q)
		if got != want {
			t.Fatalf("ShoupPrecomp(%d) = %d, want ShoupPrecomp(%d mod q) = %d", w, got, w, want)
		}
	}
	// Fast path correctness at the largest legal operand.
	w := q - 1
	ws := m.ShoupPrecomp(w)
	for _, a := range []uint64{0, 1, q / 2, q - 1} {
		if got, want := m.MulModShoup(a, w, ws), m.MulMod(a, w); got != want {
			t.Fatalf("MulModShoup(%d, q-1) = %d, want %d", a, got, want)
		}
	}
}

// TestNTTZeroAllocs locks in that the table-driven NTT/INTT pair and the
// scratch-fed on-the-fly variant never touch the heap.
func TestNTTZeroAllocs(t *testing.T) {
	r := NewRing(8, GenerateNTTPrimes(40, 8, 1)[0])
	p := r.NewPoly()
	for i := range p {
		p[i] = uint64(i * 31)
	}
	if avg := testing.AllocsPerRun(10, func() {
		r.NTT(p)
		r.INTT(p)
	}); avg != 0 {
		t.Fatalf("NTT+INTT allocate %.1f objects/op, want 0", avg)
	}
	sc := NewTwiddleScratch(r.N)
	if avg := testing.AllocsPerRun(10, func() {
		r.NTTOnTheFlyWith(p, sc)
		r.INTT(p)
	}); avg != 0 {
		t.Fatalf("NTTOnTheFlyWith allocates %.1f objects/op, want 0", avg)
	}
}

// TestNTTOnTheFlyWithMatchesPrecomputed checks the scratch variant against
// the table-driven transform.
func TestNTTOnTheFlyWithMatchesPrecomputed(t *testing.T) {
	r := NewRing(6, GenerateNTTPrimes(40, 6, 1)[0])
	a := r.NewPoly()
	b := r.NewPoly()
	for i := range a {
		a[i] = uint64(i*i+7) % r.Mod.Q
		b[i] = a[i]
	}
	r.NTT(a)
	sc := NewTwiddleScratch(r.N)
	r.NTTOnTheFlyWith(b, sc)
	if !r.Equal(a, b) {
		t.Fatal("NTTOnTheFlyWith disagrees with precomputed NTT")
	}
}

// TestMulByMonomialIntoMatches checks the no-alias fast path against the
// temporary-buffer reference for every rotation class (no wrap, wrap, k≥N).
func TestMulByMonomialIntoMatches(t *testing.T) {
	r := NewRing(5, GenerateNTTPrimes(40, 5, 1)[0])
	p := r.NewPoly()
	for i := range p {
		p[i] = uint64(i + 1)
	}
	for _, k := range []int{0, 1, 7, r.N - 1, r.N, r.N + 3, 2*r.N - 1, -1, -r.N} {
		want := r.NewPoly()
		r.MulByMonomial(p, k, want)
		got := r.NewPoly()
		r.MulByMonomialInto(p, k, got)
		if !r.Equal(want, got) {
			t.Fatalf("k=%d: MulByMonomialInto disagrees with MulByMonomial", k)
		}
	}
}
