package ring

// Automorphism applies the Galois automorphism X → X^g (g odd) to a
// polynomial in coefficient representation: coefficient i moves to position
// i·g mod 2N with a sign flip when it wraps past N. This is the index-mapping
// operation the paper's automorph unit performs for CKKS Rotate (§IV-A,
// i_r = i·5^r mod N family of maps).
func (r *Ring) Automorphism(p Poly, g uint64, out Poly) {
	n := uint64(r.N)
	twoN := 2 * n
	g %= twoN
	q := r.Mod.Q
	for i := uint64(0); i < n; i++ {
		k := (i * g) % twoN
		v := p[i]
		if k < n {
			out[k] = v
		} else {
			if v != 0 {
				v = q - v
			}
			out[k-n] = v
		}
	}
}

// AutomorphismNTTIndex precomputes the slot permutation realizing X → X^g
// directly on NTT-representation polynomials: out[j] = in[perm[j]].
func (r *Ring) AutomorphismNTTIndex(g uint64) []uint64 {
	n := uint64(r.N)
	twoN := 2 * n
	g %= twoN
	perm := make([]uint64, n)
	for j := uint64(0); j < n; j++ {
		e := (2*bitReverse(j, r.LogN) + 1) * g % twoN
		perm[j] = bitReverse((e-1)/2, r.LogN)
	}
	return perm
}

// AutomorphismNTT applies X → X^g to a polynomial in NTT representation
// using a permutation previously computed by AutomorphismNTTIndex.
func (r *Ring) AutomorphismNTT(p Poly, perm []uint64, out Poly) {
	for j := range out {
		out[j] = p[perm[j]]
	}
}

// GaloisElementForRotation returns the Galois element g = 5^k mod 2N whose
// automorphism realizes a rotation of the CKKS slot vector by k positions
// (negative k rotates the other way). GaloisElementConjugate (g = 2N-1)
// realizes complex conjugation of the slots.
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	twoN := uint64(2 * r.N)
	kk := uint64(((k % r.N) + r.N) % r.N)
	g := uint64(1)
	base := uint64(5)
	for i := uint64(0); i < kk; i++ {
		g = g * base % twoN
	}
	return g
}

// GaloisElementConjugate returns the Galois element realizing complex
// conjugation on CKKS slots: X → X^{2N-1}.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// MonomialNTT writes the NTT (evaluation) representation of the monomial X^k
// into out, for any k (reduced mod 2N; X^N = −1). Pointwise multiplication by
// this table realizes MulByMonomial directly in the evaluation domain —
// slot j holds ψ^{k·e_j} where e_j is the slot's evaluation exponent — and is
// bit-identical to the INTT→MulByMonomial→NTT round-trip it replaces, since
// both compute the same residues and emit canonical representatives.
func (r *Ring) MonomialNTT(k int, out Poly) {
	n := r.N
	k = ((k % (2 * n)) + 2*n) % (2 * n)
	out.Zero()
	if k < n {
		out[k] = 1
	} else {
		out[k-n] = r.Mod.Q - 1
	}
	r.NTT(out)
}

// MulByMonomial multiplies p (coefficient representation) by X^k in the
// negacyclic ring, for any k in [0, 2N). This is the TFHE rotation unit of
// §IV-A: coefficients shift by k positions and flip sign when wrapping,
// since X^N = -1.
func (r *Ring) MulByMonomial(p Poly, k int, out Poly) {
	tmp := make(Poly, r.N)
	r.MulByMonomialInto(p, k, tmp)
	copy(out, tmp)
}

// MulByMonomialInto is MulByMonomial writing directly into out, which must
// not alias p. Every output position is written exactly once, so no
// temporary is needed — this is the allocation-free rotation of the
// BlindRotate hot path.
func (r *Ring) MulByMonomialInto(p Poly, k int, out Poly) {
	n := r.N
	k = ((k % (2 * n)) + 2*n) % (2 * n)
	q := r.Mod.Q
	neg := false
	if k >= n {
		k -= n
		neg = true
	}
	for i := 0; i < n; i++ {
		v := p[i]
		flip := neg
		j := i + k
		if j >= n {
			j -= n
			flip = !flip
		}
		if flip && v != 0 {
			v = q - v
		}
		out[j] = v
	}
}
