package ring

import (
	"math/rand"
	"sync"
	"testing"
)

// fuzzPrimes is built once per process: the committed basis widths plus edge
// and boundary moduli, so the selector byte can reach every shift/width class
// the kernels specialize on.
var fuzzPrimesOnce sync.Once
var fuzzPrimesList []uint64

func fuzzPrimes() []uint64 {
	fuzzPrimesOnce.Do(func() {
		fuzzPrimesList = GenerateNTTPrimes(36, 13, 2)
		fuzzPrimesList = append(fuzzPrimesList, GenerateNTTPrimesUp(37, 13, 2)...)
		fuzzPrimesList = append(fuzzPrimesList, 97, 257, 12289)
		fuzzPrimesList = append(fuzzPrimesList, GenerateNTTPrimes(55, 12, 1)[0])
		fuzzPrimesList = append(fuzzPrimesList, GenerateNTTPrimes(60, 12, 1)[0])
		fuzzPrimesList = append(fuzzPrimesList, GenerateNTTPrimes(61, 12, 1)[0])
	})
	return fuzzPrimesList
}

// FuzzVectorVsScalarKernels fuzzes the bit-identity contract: every
// dispatched kernel, run on the vector path and the scalar path with
// identical fuzz-chosen inputs (prime, length — including sub-width lengths
// and width±1 —, aliasing, values planted at the lazy-interval edges), must
// produce byte-for-byte equal output. On builds or hosts without the vector
// path the target degenerates to scalar-vs-scalar and trivially holds, so
// corpus entries stay portable.
func FuzzVectorVsScalarKernels(f *testing.F) {
	// Seed corpus: each kernel class at the tail-machinery lengths (1,
	// width-1, width, width+1, two groups) with and without aliasing; the
	// committed files under testdata/fuzz mirror these.
	for kernel := uint8(0); kernel < 10; kernel++ {
		f.Add(uint64(1), uint8(0), kernel, uint8(1), false)
		f.Add(uint64(2), uint8(3), kernel, uint8(3), false)
		f.Add(uint64(3), uint8(5), kernel, uint8(4), true)
		f.Add(uint64(4), uint8(7), kernel, uint8(5), true)
		f.Add(uint64(5), uint8(8), kernel, uint8(8), false)
	}
	f.Fuzz(func(t *testing.T, seed uint64, primeSel, kernel, length uint8, alias bool) {
		prev := simdActive()
		defer SetSIMD(prev)
		hasVec := SetSIMD(true)

		primes := fuzzPrimes()
		q := primes[int(primeSel)%len(primes)]
		mod := NewModulus(q)
		rng := rand.New(rand.NewSource(int64(seed)))

		fill := func(p []uint64, bound uint64) {
			for i := range p {
				switch rng.Intn(4) {
				case 0:
					// Interval edge: bound-1 .. bound-4.
					p[i] = (bound - 1 - uint64(rng.Intn(4))) % bound
				case 1:
					p[i] = uint64(rng.Intn(3)) % bound
				default:
					p[i] = rng.Uint64() % bound
				}
			}
		}

		runBoth := func(run func(p, a, b, out Poly), n int, pBound, aBound uint64) {
			p := make(Poly, n)
			a := make(Poly, n)
			b := make(Poly, n)
			out := make(Poly, n)
			fill(p, pBound)
			fill(a, aBound)
			fill(b, q)
			fill(out, q)
			if alias {
				// out aliases a: kernels must read each lane group before
				// writing it, exactly like the scalar loops.
				a = out
			}
			pS, aS, outS := p.Copy(), a.Copy(), out.Copy()
			SetSIMD(false)
			run(pS, aS, b, outS)
			pV, aV, outV := p.Copy(), a.Copy(), out.Copy()
			if hasVec {
				SetSIMD(true)
			}
			run(pV, aV, b, outV)
			for i := 0; i < n; i++ {
				if pS[i] != pV[i] || aS[i] != aV[i] || outS[i] != outV[i] {
					t.Fatalf("q=%d kernel=%d n=%d alias=%v idx=%d: scalar (p=%d a=%d out=%d) vector (p=%d a=%d out=%d)",
						q, kernel, n, alias, i, pS[i], aS[i], outS[i], pV[i], aV[i], outV[i])
				}
			}
		}

		r := &Ring{Mod: mod}
		w := rng.Uint64() % q
		wShoup := mod.ShoupPrecomp(w)

		switch kernel % 10 {
		case 0:
			runBoth(func(p, a, b, out Poly) { r.MulCoeffs(a, b, out) }, int(length), q, q)
		case 1:
			runBoth(func(p, a, b, out Poly) { r.MulCoeffsAndAdd(a, b, out) }, int(length), q, q)
		case 2:
			// MulScalar accepts lazy [0, 2q) operands (the INTT sweep).
			runBoth(func(p, a, b, out Poly) { r.MulScalar(a, w, out) }, int(length), q, 2*q)
		case 3:
			runBoth(func(p, a, b, out Poly) { mod.MACShoupVec(a, out, w, wShoup) }, int(length), q, q)
		case 4:
			runBoth(func(p, a, b, out Poly) { r.Add(a, b, out) }, int(length), q, q)
		case 5:
			runBoth(func(p, a, b, out Poly) { r.Sub(a, b, out) }, int(length), q, q)
		default:
			// NTT stage kernels: degree 8..256, one fuzz-chosen stage with
			// t >= 4, twiddle-like tables (canonical, consistent companions).
			logN := 3 + int(length)%6
			n := 1 << logN
			psi := make([]uint64, n)
			psiShoup := make([]uint64, n)
			for i := range psi {
				psi[i] = rng.Uint64() % q
				psiShoup[i] = mod.ShoupPrecomp(psi[i])
			}
			// Enumerate vectorizable stages, pick one from the seed.
			type stage struct{ m, t int }
			var stages []stage
			st := n
			for m := 1; m < n>>1; m <<= 1 {
				st >>= 1
				if st >= 4 {
					stages = append(stages, stage{m, st})
				}
			}
			if len(stages) == 0 {
				return
			}
			sel := stages[int(seed>>32)%len(stages)]
			switch kernel % 10 {
			case 6:
				runBoth(func(p, a, b, out Poly) {
					if simdActive() {
						nttFwdStepAVX2(p, psi, psiShoup, q, sel.m, sel.t)
					} else {
						nttFwdStepScalar(p, psi, psiShoup, q, sel.m, sel.t)
					}
				}, n, 4*q, q)
			case 7:
				runBoth(func(p, a, b, out Poly) {
					if simdActive() {
						nttInvStepAVX2(p, psi, psiShoup, q, sel.m, sel.t)
					} else {
						nttInvStepScalar(p, psi, psiShoup, q, sel.m, sel.t)
					}
				}, n, 2*q, q)
			case 8:
				runBoth(func(p, a, b, out Poly) {
					if simdActive() {
						nttFwdStepMontAVX2(p, psi, q, mod.MRedQInv, sel.m, sel.t)
					} else {
						nttFwdStepMontScalar(p, psi, q, mod.MRedQInv, sel.m, sel.t)
					}
				}, n, 4*q, q)
			case 9:
				runBoth(func(p, a, b, out Poly) {
					if simdActive() {
						nttInvStepMontAVX2(p, psi, q, mod.MRedQInv, sel.m, sel.t)
					} else {
						nttInvStepMontScalar(p, psi, q, mod.MRedQInv, sel.m, sel.t)
					}
				}, n, 2*q, q)
			}
		}
	})
}
