package ring

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
)

// paramsPrimes returns the committed paper-parameter basis (7 ciphertext
// primes at 36 bits, 4 special primes at 37 bits, logN=13) so the kernel
// equivalence suite runs on the moduli the benchmarks and the bootstrapper
// actually use, plus a few extreme-width primes to exercise the shift logic.
func paramsPrimes(t testing.TB) []uint64 {
	t.Helper()
	primes := GenerateNTTPrimes(36, 13, 7)
	primes = append(primes, GenerateNTTPrimesUp(37, 13, 4)...)
	// Edge widths: the smallest usable odd primes and the top of the
	// supported range, where the fixed-shift window is tightest.
	primes = append(primes, 97, 257, 12289, GenerateNTTPrimes(55, 12, 1)[0], GenerateNTTPrimes(60, 12, 1)[0])
	return primes
}

// adversarialOperands returns the boundary operands every specialized kernel
// is exercised with: 0, 1, q-1 and neighbors, the half-range, and values
// just above the lazy-reduction bounds (2q, 4q) where a kernel that
// documents a canonical-operand precondition must still be excluded or a
// lazy kernel must still meet its output interval.
func adversarialOperands(q uint64) []uint64 {
	ops := []uint64{0, 1, 2, 3, q - 1, q - 2, q / 2, q/2 + 1}
	return ops
}

// TestFixedBarrettMatchesGeneric is the randomized equivalence of the
// fixed-shift single-word Barrett path against the generic two-word
// MulModBarrett reference, over every params prime and adversarial operand.
func TestFixedBarrettMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range paramsPrimes(t) {
		m := NewModulus(q)
		check := func(a, b uint64) {
			t.Helper()
			want := m.MulModBarrett(a, b)
			got := m.MulModBarrettFixed(a, b)
			if got != want {
				t.Fatalf("q=%d: MulModBarrettFixed(%d,%d)=%d, generic Barrett gives %d", q, a, b, got, want)
			}
		}
		ops := adversarialOperands(q)
		for _, a := range ops {
			for _, b := range ops {
				check(a, b)
			}
		}
		for i := 0; i < 20000; i++ {
			check(rng.Uint64()%q, rng.Uint64()%q)
		}
	}
}

// TestBarrettReduce128Correction exercises the worst-case quotient
// underestimate of the generic 128-bit Barrett reduction: the correction is
// documented as at most two conditional subtractions (no data-dependent
// loop), so the result must already be canonical on inputs engineered to
// maximize the dropped-carry and truncation error — hi just under q, low
// word saturated — as well as under random fire, all cross-checked against
// big.Int division.
func TestBarrettReduce128Correction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	two64 := new(big.Int).Lsh(big.NewInt(1), 64)
	for _, q := range paramsPrimes(t) {
		m := NewModulus(q)
		bigQ := new(big.Int).SetUint64(q)
		check := func(hi, lo uint64) {
			t.Helper()
			x := new(big.Int).SetUint64(hi)
			x.Mul(x, two64)
			x.Add(x, new(big.Int).SetUint64(lo))
			want := new(big.Int).Mod(x, bigQ).Uint64()
			if got := m.BarrettReduce128(hi, lo); got != want {
				t.Fatalf("q=%d: BarrettReduce128(%d,%d)=%d, want %d", q, hi, lo, got, want)
			}
		}
		// Boundary sweeps: extreme high words (the precondition is hi < q)
		// against low words chosen to push the truncated partial products to
		// their carry boundaries.
		his := []uint64{0, 1, 2, q / 2, q - 2, q - 1}
		los := []uint64{0, 1, q - 1, q, ^uint64(0), ^uint64(0) - 1, ^uint64(0) - (q - 1), 1 << 63, (1 << 63) - 1}
		for _, hi := range his {
			for _, lo := range los {
				check(hi, lo)
			}
		}
		for i := 0; i < 20000; i++ {
			check(rng.Uint64()%q, rng.Uint64())
		}
		// Products of canonical operands (the MulModBarrett path).
		for i := 0; i < 2000; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			hi, lo := bits.Mul64(a, b)
			check(hi, lo)
		}
	}
}

// TestMRedLazyBoundsAndEquivalence checks the lazy Montgomery butterfly
// kernel on every params prime: for a in [0, 4q) — including values just
// above the 2q and 4q lazy bounds the NTT rides — and a canonical
// Montgomery-domain twiddle, the result stays in [0, 2q) and reduces to the
// generic Barrett product.
func TestMRedLazyBoundsAndEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, q := range paramsPrimes(t) {
		m := NewModulus(q)
		check := func(a, w uint64) {
			t.Helper()
			wM := m.MForm(w % q)
			r := m.MRedLazy(a, wM)
			if r >= 2*q {
				t.Fatalf("q=%d: MRedLazy(%d, MForm(%d))=%d escapes [0, 2q)", q, a, w, r)
			}
			want := m.MulModBarrett(a%q, w%q)
			if a >= q {
				want = m.MulModBarrett(m.Reduce(a), w%q)
			}
			if got := m.Reduce(r); got != want {
				t.Fatalf("q=%d: MRedLazy(%d, MForm(%d)) ≡ %d, want %d", q, a, w, got, want)
			}
		}
		lazyEdges := []uint64{0, 1, q - 1, q, q + 1, 2*q - 1, 2 * q, 2*q + 1, 4*q - 1}
		for _, a := range lazyEdges {
			for _, w := range adversarialOperands(q) {
				check(a, w)
			}
		}
		for i := 0; i < 20000; i++ {
			check(rng.Uint64()%(4*q), rng.Uint64()%q)
		}
	}
}

// TestNTTMontgomeryMatchesShoup locks the two butterfly modes together: the
// Montgomery-twiddle transform must be bit-identical to the default
// Shoup-twiddle transform in both directions, including on the all-(q-1)
// polynomial that maximizes the lazy intervals.
func TestNTTMontgomeryMatchesShoup(t *testing.T) {
	for _, q := range []uint64{GenerateNTTPrimes(36, 8, 1)[0], GenerateNTTPrimesUp(37, 8, 1)[0], GenerateNTTPrimes(60, 8, 1)[0]} {
		r := NewRing(8, q)
		s := NewSampler(5)
		for trial := 0; trial < 20; trial++ {
			p := r.NewPoly()
			if trial == 0 {
				for i := range p {
					p[i] = q - 1
				}
			} else {
				s.UniformPoly(r, p)
			}
			ref := p.Copy()
			mont := p.Copy()
			r.NTT(ref)
			r.NTTMontgomery(mont)
			if !r.Equal(ref, mont) {
				t.Fatalf("q=%d: NTTMontgomery differs from NTT", q)
			}
			r.INTT(ref)
			r.INTTMontgomery(mont)
			if !r.Equal(ref, mont) {
				t.Fatalf("q=%d: INTTMontgomery differs from INTT", q)
			}
			if !r.Equal(ref, p) {
				t.Fatalf("q=%d: Montgomery round trip does not invert", q)
			}
		}
	}
}

// TestMulCoeffsKernelsMatchScalarReference checks the open-coded fixed-shift
// loops of MulCoeffs and MulCoeffsAndAdd against the scalar MulModBarrett
// reference, with adversarial coefficients planted alongside random ones.
func TestMulCoeffsKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, q := range []uint64{GenerateNTTPrimes(36, 6, 1)[0], GenerateNTTPrimesUp(37, 6, 1)[0], GenerateNTTPrimes(60, 6, 1)[0]} {
		r := NewRing(6, q)
		a, b, acc := r.NewPoly(), r.NewPoly(), r.NewPoly()
		ops := adversarialOperands(q)
		for i := range a {
			if i < len(ops) {
				a[i], b[i] = ops[i], ops[len(ops)-1-i]
			} else {
				a[i], b[i] = rng.Uint64()%q, rng.Uint64()%q
			}
			acc[i] = rng.Uint64() % q
		}
		wantMul := r.NewPoly()
		wantMac := acc.Copy()
		for i := range a {
			p := r.Mod.MulModBarrett(a[i], b[i])
			wantMul[i] = p
			wantMac[i] = r.Mod.AddMod(wantMac[i], p)
		}
		gotMul := r.NewPoly()
		r.MulCoeffs(a, b, gotMul)
		if !r.Equal(gotMul, wantMul) {
			t.Fatalf("q=%d: MulCoeffs diverges from scalar Barrett reference", q)
		}
		gotMac := acc.Copy()
		r.MulCoeffsAndAdd(a, b, gotMac)
		if !r.Equal(gotMac, wantMac) {
			t.Fatalf("q=%d: MulCoeffsAndAdd diverges from scalar Barrett reference", q)
		}
	}
}
