package ring

import (
	"math/big"
	"testing"
	"testing/quick"
)

func testModuli(t *testing.T) []Modulus {
	t.Helper()
	qs := []uint64{
		97, 257, 7681, 12289,
		GenerateNTTPrimes(36, 13, 1)[0],
		GenerateNTTPrimes(55, 15, 1)[0],
		GenerateNTTPrimes(60, 16, 1)[0],
	}
	out := make([]Modulus, len(qs))
	for i, q := range qs {
		out[i] = NewModulus(q)
	}
	return out
}

func TestNewModulusConstants(t *testing.T) {
	for _, m := range testModuli(t) {
		q := new(big.Int).SetUint64(m.Q)
		want := new(big.Int).Lsh(big.NewInt(1), 128)
		want.Div(want, q)
		gotHi := new(big.Int).SetUint64(m.BRedHi)
		got := new(big.Int).Lsh(gotHi, 64)
		got.Add(got, new(big.Int).SetUint64(m.BRedLo))
		if want.Cmp(got) != 0 {
			t.Errorf("q=%d: Barrett constant mismatch: want %v got %v", m.Q, want, got)
		}
		// MRedQInv * q ≡ -1 mod 2^64
		if m.MRedQInv*m.Q != ^uint64(0) {
			t.Errorf("q=%d: Montgomery constant invalid", m.Q)
		}
		r2 := new(big.Int).Lsh(big.NewInt(1), 128)
		r2.Mod(r2, q)
		if r2.Uint64() != m.RSquare {
			t.Errorf("q=%d: RSquare mismatch", m.Q)
		}
	}
}

func TestNewModulusRange(t *testing.T) {
	for _, bad := range []uint64{0, 1, 1 << 61, 1 << 62} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModulus(%d) should panic", bad)
				}
			}()
			NewModulus(bad)
		}()
	}
}

func TestAddSubNegMod(t *testing.T) {
	for _, m := range testModuli(t) {
		s := NewSampler(1)
		for i := 0; i < 200; i++ {
			a, b := s.UniformMod(m.Q), s.UniformMod(m.Q)
			if got, want := m.AddMod(a, b), (a+b)%m.Q; got != want {
				t.Fatalf("AddMod(%d,%d) mod %d = %d want %d", a, b, m.Q, got, want)
			}
			if got, want := m.SubMod(a, b), (a+m.Q-b)%m.Q; got != want {
				t.Fatalf("SubMod(%d,%d) mod %d = %d want %d", a, b, m.Q, got, want)
			}
			if got, want := m.NegMod(a), (m.Q-a)%m.Q; got != want {
				t.Fatalf("NegMod(%d) mod %d = %d want %d", a, m.Q, got, want)
			}
		}
	}
}

func TestMulModAgainstBigInt(t *testing.T) {
	for _, m := range testModuli(t) {
		s := NewSampler(2)
		q := new(big.Int).SetUint64(m.Q)
		for i := 0; i < 500; i++ {
			a, b := s.UniformMod(m.Q), s.UniformMod(m.Q)
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, q)
			if got := m.MulModBarrett(a, b); got != want.Uint64() {
				t.Fatalf("MulModBarrett(%d,%d) mod %d = %d want %v", a, b, m.Q, got, want)
			}
			if got := m.MulModMontgomery(a, b); got != want.Uint64() {
				t.Fatalf("MulModMontgomery(%d,%d) mod %d = %d want %v", a, b, m.Q, got, want)
			}
		}
	}
}

func TestMulModEdgeCases(t *testing.T) {
	for _, m := range testModuli(t) {
		cases := [][2]uint64{{0, 0}, {0, m.Q - 1}, {m.Q - 1, m.Q - 1}, {1, m.Q - 1}, {m.Q / 2, 2}}
		q := new(big.Int).SetUint64(m.Q)
		for _, c := range cases {
			want := new(big.Int).Mul(new(big.Int).SetUint64(c[0]), new(big.Int).SetUint64(c[1]))
			want.Mod(want, q)
			if got := m.MulModBarrett(c[0], c[1]); got != want.Uint64() {
				t.Errorf("q=%d MulModBarrett(%d,%d)=%d want %v", m.Q, c[0], c[1], got, want)
			}
		}
	}
}

func TestBarrettEqualsMontgomeryProperty(t *testing.T) {
	m := NewModulus(GenerateNTTPrimes(36, 13, 1)[0])
	f := func(a, b uint64) bool {
		a, b = a%m.Q, b%m.Q
		return m.MulModBarrett(a, b) == m.MulModMontgomery(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShoupMul(t *testing.T) {
	for _, m := range testModuli(t) {
		s := NewSampler(3)
		for i := 0; i < 200; i++ {
			a, w := s.UniformMod(m.Q), s.UniformMod(m.Q)
			wS := m.ShoupPrecomp(w)
			if got, want := m.MulModShoup(a, w, wS), m.MulModBarrett(a, w); got != want {
				t.Fatalf("q=%d MulModShoup(%d,%d)=%d want %d", m.Q, a, w, got, want)
			}
		}
	}
}

func TestPowInvMod(t *testing.T) {
	for _, m := range testModuli(t) {
		s := NewSampler(4)
		for i := 0; i < 50; i++ {
			a := 1 + s.UniformMod(m.Q-1)
			inv := m.InvMod(a)
			if m.MulMod(a, inv) != 1 {
				t.Fatalf("q=%d: a·a^{-1} != 1 for a=%d", m.Q, a)
			}
		}
		if m.PowMod(3, 0) != 1 {
			t.Errorf("PowMod(3,0) != 1")
		}
		if got := m.PowMod(2, 10); got != m.Reduce(1024) {
			t.Errorf("PowMod(2,10)=%d want %d", got, m.Reduce(1024))
		}
	}
}

func TestMFormRoundTrip(t *testing.T) {
	m := NewModulus(GenerateNTTPrimes(55, 14, 1)[0])
	f := func(a uint64) bool {
		a %= m.Q
		return m.MRed(m.MForm(a), 1) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 97, 7681, 12289, 786433, 18446744073709551557}
	composites := []uint64{0, 1, 4, 6, 9, 15, 7683, 1<<36 + 1, 3215031751}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, tc := range []struct{ bits, logN, count int }{
		{36, 13, 8}, {55, 15, 5}, {45, 12, 4}, {60, 16, 3},
	} {
		ps := GenerateNTTPrimes(tc.bits, tc.logN, tc.count)
		if len(ps) != tc.count {
			t.Fatalf("want %d primes, got %d", tc.count, len(ps))
		}
		twoN := uint64(1) << (tc.logN + 1)
		seen := map[uint64]bool{}
		for _, p := range ps {
			if !IsPrime(p) {
				t.Errorf("%d is not prime", p)
			}
			if (p-1)%twoN != 0 {
				t.Errorf("%d is not ≡ 1 mod 2N", p)
			}
			if p >= 1<<tc.bits || p < 1<<(tc.bits-1) {
				t.Errorf("%d has wrong size for %d bits", p, tc.bits)
			}
			if seen[p] {
				t.Errorf("duplicate prime %d", p)
			}
			seen[p] = true
		}
	}
}

func TestGenerateNTTPrimesUpDisjoint(t *testing.T) {
	down := GenerateNTTPrimes(36, 13, 4)
	up := GenerateNTTPrimesUp(36, 13, 2)
	for _, u := range up {
		if u < 1<<36 {
			t.Errorf("upward prime %d below 2^36", u)
		}
		if (u-1)%(1<<14) != 0 {
			t.Errorf("%d not NTT friendly", u)
		}
		for _, d := range down {
			if u == d {
				t.Errorf("upward and downward scans overlap at %d", u)
			}
		}
	}
}

func TestPrimitiveRoot2N(t *testing.T) {
	for _, logN := range []int{4, 8, 11, 13} {
		q := GenerateNTTPrimes(36, logN, 1)[0]
		m := NewModulus(q)
		psi := PrimitiveRoot2N(q, logN)
		n := uint64(1) << logN
		if m.PowMod(psi, n) != q-1 {
			t.Errorf("logN=%d: psi^N != -1", logN)
		}
		if m.PowMod(psi, 2*n) != 1 {
			t.Errorf("logN=%d: psi^2N != 1", logN)
		}
	}
}

func TestCenteredRep(t *testing.T) {
	q := uint64(97)
	cases := map[uint64]int64{0: 0, 1: 1, 48: 48, 49: -48, 96: -1}
	for x, want := range cases {
		if got := CenteredRep(x, q); got != want {
			t.Errorf("CenteredRep(%d,%d)=%d want %d", x, q, got, want)
		}
	}
}
