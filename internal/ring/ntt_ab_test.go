package ring

import (
	"math/bits"
	"testing"
)

// This file pins down a register-allocation hazard in the scalar NTT driver
// with an A/B benchmark pair. Two findings, both measured at ~40-50% on the
// whole transform (N=2^13, single 61-bit modulus):
//
//  1. A CALL to an assembly kernel anywhere in a function — even on a branch
//     never taken — forces the hot scalar loop state into spill slots. The
//     scalar driver must therefore contain no assembly calls; SIMD dispatch
//     happens before entering it.
//
//  2. One extra incoming argument (a `lazy bool` threaded to the last stage)
//     evicts a hot loop value into a spill slot for the entire function,
//     even though the flag is only read after the main stage loop. The
//     scalar driver therefore takes no lazy flag; NTTLazy is a separate
//     driver built from the stage helpers.
//
// BenchmarkABOldInlineNTT is the monolithic pre-split transform kept
// verbatim as the performance reference; BenchmarkABNewScalarNTT is the
// production scalar path (SIMD forced off). The two should stay within
// run-to-run noise of each other; a gap reopening here means one of the
// hazards above crept back into nttWithTables.

// nttOldInline is the monolithic forward transform: every stage open-coded
// in one function, no helpers, no flags, no assembly. Reference only.
func nttOldInline(r *Ring, p Poly) {
	q := r.Mod.Q
	twoQ := 2 * q
	n := r.N
	psi := r.psiTable
	psiShoup := r.psiTableShoup
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			wS := psiShoup[m+i]
			j1 := 2 * i * t
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := b[j]
				hi, _ := bits.Mul64(v, wS)
				v = v*w - hi*q
				a[j] = u + v
				b[j] = u + twoQ - v
			}
		}
	}
	m := n >> 1
	for i := 0; i < m; i++ {
		w := psi[m+i]
		wS := psiShoup[m+i]
		u := p[2*i]
		if u >= twoQ {
			u -= twoQ
		}
		v := p[2*i+1]
		hi, _ := bits.Mul64(v, wS)
		v = v*w - hi*q
		x := u + v
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		y := u + twoQ - v
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		p[2*i] = x
		p[2*i+1] = y
	}
}

func BenchmarkABOldInlineNTT(b *testing.B) {
	r := NewRing(13, 68719230977)
	p := make(Poly, r.N)
	for i := range p {
		p[i] = uint64(i) * 2654435761 % r.Mod.Q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nttOldInline(r, p)
	}
}

func BenchmarkABNewScalarNTT(b *testing.B) {
	r := NewRing(13, 68719230977)
	prev := SetSIMD(false)
	defer SetSIMD(prev)
	p := make(Poly, r.N)
	for i := range p {
		p[i] = uint64(i) * 2654435761 % r.Mod.Q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
	}
}
