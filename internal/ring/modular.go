// Package ring implements arithmetic in the negacyclic polynomial ring
// R_q = Z_q[X]/(X^N + 1) for power-of-two N and NTT-friendly word-sized
// primes q ≡ 1 (mod 2N).
//
// It provides the lowest layer of the HEAP reproduction: scalar modular
// arithmetic (Barrett and Montgomery reductions, mirroring the §IV-A
// functional-unit discussion in the paper), number-theoretic transforms with
// precomputed or on-the-fly twiddle factors (§IV-D), automorphisms and
// negacyclic monomial rotations (the permute unit of §IV-A), and
// deterministic samplers for secrets, errors and uniform polynomials.
package ring

import "math/bits"

// Modulus bundles a word-sized prime q with every precomputed constant the
// reduction algorithms need. All arithmetic helpers hang off this struct so
// that a single lookup provides Barrett, Montgomery and Shoup material.
type Modulus struct {
	Q uint64 // the prime modulus, q < 2^61

	// Barrett constants: BRedHi·2^64 + BRedLo = floor(2^128 / q).
	BRedHi uint64
	BRedLo uint64

	// Montgomery constant: -q^{-1} mod 2^64.
	MRedQInv uint64
	// RSquare = 2^128 mod q, used to enter the Montgomery domain.
	RSquare uint64

	// Fixed-shift Barrett constants, specialized to this prime's bit length
	// at NewModulus time (the per-modulus functional-unit specialization of
	// §IV-A): BRedMu = floor(2^{64+BRedShift} / q) with BRedShift = bitlen(q)-1.
	// They reduce a full 128-bit product of canonical operands with a single
	// 64×64→128 estimate multiply instead of the four multiplies of the
	// generic two-word Barrett above.
	BRedMu    uint64
	BRedShift uint
}

// NewModulus precomputes the reduction constants for prime q.
// q must satisfy 1 < q < 2^61 so that lazy sums of two residues fit in a word.
func NewModulus(q uint64) Modulus {
	if q <= 1 || q >= 1<<61 {
		panic("ring: modulus out of supported range (1, 2^61)")
	}
	m := Modulus{Q: q}

	// floor(2^128 / q) via two long divisions.
	hi, rem := bits.Div64(1, 0, q) // floor(2^64 / q), remainder
	lo, _ := bits.Div64(rem, 0, q)
	m.BRedHi, m.BRedLo = hi, lo

	// Newton iteration for -q^{-1} mod 2^64.
	qInv := q // correct mod 2^3
	for i := 0; i < 5; i++ {
		qInv *= 2 - q*qInv
	}
	m.MRedQInv = -qInv

	// 2^128 mod q: square 2^64 mod q using Barrett-free big division.
	r64 := rem // 2^64 mod q
	hi2, lo2 := bits.Mul64(r64, r64)
	_, r128 := bits.Div64(hi2%q, lo2, q)
	m.RSquare = r128

	// Fixed-shift Barrett: with s = bitlen(q)-1, mu = floor(2^{64+s}/q) fits
	// a word (2^s ≤ q... q > 2^s ⟹ mu < 2^64) and a product x = a·b of
	// canonical operands satisfies x < q² < 2^{2s+2}, so floor(x/2^s) fits a
	// word and mulhi(floor(x/2^s), mu) underestimates floor(x/q) by at most 2.
	s := uint(bits.Len64(q)) - 1
	if uint64(1)<<s == q {
		// Exact power of two (not an NTT prime, but NewModulus accepts it):
		// drop one bit so the dividend's high word stays below q. The error
		// bound only improves — f/q halves.
		s--
	}
	m.BRedShift = s
	// 2^{64+s} = (2^s)·2^64: one long division, high word 2^s < q.
	mu, _ := bits.Div64(1<<s, 0, q)
	m.BRedMu = mu

	return m
}

// AddMod returns a + b mod q for a, b < q.
func (m Modulus) AddMod(a, b uint64) uint64 {
	c := a + b
	if c >= m.Q {
		c -= m.Q
	}
	return c
}

// SubMod returns a - b mod q for a, b < q.
func (m Modulus) SubMod(a, b uint64) uint64 {
	c := a - b
	if c > a { // borrow
		c += m.Q
	}
	return c
}

// NegMod returns -a mod q for a < q.
func (m Modulus) NegMod(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce returns a mod q for arbitrary a.
func (m Modulus) Reduce(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return a % m.Q
}

// BarrettReduce128 reduces the 128-bit value hi·2^64 + lo modulo q, for
// hi < q (every caller reduces a product of a canonical operand pair, or a
// value below q·2^64). It implements the classic Barrett reduction the paper
// maps onto DSP multipliers: estimate the quotient with the precomputed
// floor(2^128/q), multiply back and correct with at most two conditional
// subtractions.
//
// The quotient estimate only ever underestimates, by at most 2: one unit
// from truncating floor(2^128/q) to 128 bits, one from the dropped low word
// of the 256-bit product (its carry into the kept words is what carry1/
// carry2 recover, but the estimate still floors). The remainder therefore
// lands in [0, 3q), which two conditional subtractions canonicalize — no
// data-dependent loop.
func (m Modulus) BarrettReduce128(hi, lo uint64) uint64 {
	// qest = floor((hi·2^64 + lo) · (BRedHi·2^64 + BRedLo) / 2^128)
	ahiuhi := hi * m.BRedHi // low 64 bits of the 2^128 term are all we need
	h1, l1 := bits.Mul64(hi, m.BRedLo)
	h2, l2 := bits.Mul64(lo, m.BRedHi)
	h3, _ := bits.Mul64(lo, m.BRedLo)
	mid, carry1 := bits.Add64(l1, l2, 0)
	_, carry2 := bits.Add64(mid, h3, 0)
	qest := ahiuhi + h1 + h2 + carry1 + carry2

	r := lo - qest*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// BarrettReduce128Fixed reduces the 128-bit product hi·2^64 + lo modulo q
// using the per-prime fixed-shift constants: a single 64×64→128 multiply
// estimates the quotient, against the four multiplies of the generic
// two-word reduction. It requires hi·2^64 + lo < q² (i.e. a product of two
// canonical operands), which is what pins the quotient underestimate to at
// most 2 and the correction to two conditional subtractions.
func (m Modulus) BarrettReduce128Fixed(hi, lo uint64) uint64 {
	s := m.BRedShift
	// xs = floor(x / 2^s) < 2^{s+2}, assembled from both words.
	xs := hi<<(64-s) | lo>>s
	qest, _ := bits.Mul64(xs, m.BRedMu) // floor(xs·mu / 2^64) ∈ [floor(x/q)-2, floor(x/q)]
	r := lo - qest*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulModBarrettFixed returns a·b mod q for canonical a, b < q via the
// fixed-shift Barrett path. Bit-identical to MulModBarrett on canonical
// operands; this is the form the MAC inner loops run.
func (m Modulus) MulModBarrettFixed(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.BarrettReduce128Fixed(hi, lo)
}

// MulModBarrett returns a·b mod q using Barrett reduction.
func (m Modulus) MulModBarrett(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.BarrettReduce128(hi, lo)
}

// MulMod is the default modular multiplication (Barrett, per §IV-A).
func (m Modulus) MulMod(a, b uint64) uint64 { return m.MulModBarrett(a, b) }

// MRed performs a Montgomery reduction of the 128-bit product a·b, returning
// a·b·2^{-64} mod q. Operands must be < q (one of them typically in the
// Montgomery domain).
func (m Modulus) MRed(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	u := lo * m.MRedQInv // u = T·(-q^{-1}) mod 2^64
	h, _ := bits.Mul64(u, m.Q)
	// T + u·q has zero low word by construction; the carry out of the low
	// word is 1 exactly when lo != 0.
	r := hi + h
	if lo != 0 {
		r++
	}
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MRedLazy is MRed without the final conditional subtraction: for a < 2q
// and b < q (q < 2^61) the result lies in [0, 2q) — the same lazy interval
// the Shoup butterflies ride in, so the two twiddle representations can be
// swapped under an identical reduction discipline. The NTT's Montgomery
// mode calls it with a lazy coefficient and a canonical Montgomery-domain
// twiddle.
func (m Modulus) MRedLazy(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	u := lo * m.MRedQInv
	h, _ := bits.Mul64(u, m.Q)
	r := hi + h
	if lo != 0 {
		r++
	}
	return r
}

// MForm maps a < q into the Montgomery domain: a·2^64 mod q.
func (m Modulus) MForm(a uint64) uint64 { return m.MRed(a, m.RSquare) }

// MulModMontgomery returns a·b mod q by a round trip through the Montgomery
// domain. It exists so the Barrett-vs-Montgomery design choice from §IV-A can
// be benchmarked head-to-head (see BenchmarkAblationReduction).
func (m Modulus) MulModMontgomery(a, b uint64) uint64 {
	return m.MRed(m.MForm(a), b)
}

// ShoupPrecomp returns floor(w·2^64 / q), the Shoup constant for repeated
// multiplication by the fixed operand w (used for NTT twiddles). The operand
// is reduced modulo q first: bits.Div64 panics when its high word reaches the
// divisor, so w ≥ q would otherwise crash — and MulModShoup requires the
// reduced operand anyway (its quotient estimate is off for w ≥ q).
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	if w >= m.Q {
		w %= m.Q
	}
	hi, _ := bits.Div64(w, 0, m.Q)
	return hi
}

// MulModShoup returns a·w mod q given wShoup = ShoupPrecomp(w). It requires
// w < q (callers with a possibly unreduced operand must reduce it with the
// same Reduce that ShoupPrecomp applies internally, or the quotient estimate
// no longer matches). This is the fixed-operand fast path used inside the
// NTT butterflies.
func (m Modulus) MulModShoup(a, w, wShoup uint64) uint64 {
	qest, _ := bits.Mul64(a, wShoup)
	r := a*w - qest*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// PowMod returns a^e mod q by square-and-multiply.
func (m Modulus) PowMod(a, e uint64) uint64 {
	r := uint64(1)
	a = m.Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			r = m.MulMod(r, a)
		}
		a = m.MulMod(a, a)
		e >>= 1
	}
	return r
}

// InvMod returns a^{-1} mod q (q prime, a ≠ 0 mod q).
func (m Modulus) InvMod(a uint64) uint64 {
	return m.PowMod(a, m.Q-2)
}
