package ring

import "math/bits"

// NTT transforms p in place from coefficient to evaluation (NTT)
// representation using the negacyclic Cooley-Tukey decimation-in-time pass
// with precomputed, bit-reversed twiddle tables and Shoup fixed-operand
// multiplication — the "read twiddles from memory" mode of the paper's NTT
// datapath (§IV-D).
//
// The butterflies use Harvey's lazy reduction: coefficients ride in [0, 4q)
// through the passes (q < 2^61, so 4q fits a word) and are canonically
// reduced only in a final sweep. The output is bit-identical to an eagerly
// reduced transform — the lazy interval only changes intermediate
// representatives, never the residue.
//
// When the vector path is active (see simd.go), stages with block half
// length t ≥ 4 run on the AVX2 stage kernel; t is a power of two, so those
// stages are whole 4-lane groups with no tails. The t=2 stage and the fused
// canonical last stage stay scalar. The vector butterflies perform the same
// operations in the same order on the same lazy intervals, so the transform
// is bit-identical either way.
//
// The scalar and vector passes are separate driver functions on purpose:
// a CALL to an assembly kernel anywhere in a function — even on a branch
// never taken — forces the Go register allocator to keep the scalar loop
// state in spill slots, which measured ~1.5× on the pure-scalar transform.
// The scalar driver therefore contains no assembly calls at all, and the
// vector driver pays the (amortized, per-stage) call overhead knowingly.
func (r *Ring) NTT(p Poly) {
	r.nttWithTables(p, r.psiTable, r.psiTableShoup)
}

// NTTLazy is NTT with the final canonicalization left out: outputs are lazy
// representatives in [0, 2q) rather than [0, q). The residues are exactly
// NTT's — only the representative differs — and every consumer of
// evaluation-domain values that tolerates the lazy interval (INTT's
// butterflies assume only < 2q; the Shoup scalar sweep accepts any operand
// < 2^63) produces bit-identical final results. It saves one conditional
// subtraction per coefficient in the last stage for callers that feed the
// result straight into such a consumer.
//
// The scalar path runs through the stage helpers rather than the inline
// driver: threading a lazy flag through nttWithTables' signature measured a
// 40% slowdown on the whole canonical transform (the extra incoming
// argument evicts a hot loop value into a spill slot — see the BenchmarkAB
// pair), and NTTLazy has no latency-critical callers.
func (r *Ring) NTTLazy(p Poly) {
	psi, psiShoup := r.psiTable, r.psiTableShoup
	if simdActive() {
		r.nttVecWithTables(p, psi, psiShoup, true)
		return
	}
	q := r.Mod.Q
	n := r.N
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		nttFwdStepScalar(p, psi, psiShoup, q, m, t)
	}
	nttFwdLastScalar(p, psi, psiShoup, q, true)
}

func (r *Ring) nttWithTables(p Poly, psi, psiShoup []uint64) {
	if simdActive() {
		r.nttVecWithTables(p, psi, psiShoup, false)
		return
	}
	q := r.Mod.Q
	twoQ := 2 * q
	n := r.N
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			wS := psiShoup[m+i]
			j1 := 2 * i * t
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)] // bounds-check elimination for b[j]
			for j := range a {
				// u ∈ [0, 4q) → [0, 2q); v ← lazy Shoup ∈ [0, 2q).
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := b[j]
				hi, _ := bits.Mul64(v, wS)
				v = v*w - hi*q
				a[j] = u + v        // < 4q
				b[j] = u + twoQ - v // < 4q
			}
		}
	}
	// Last stage (t=1, m=n/2), open-coded: pairs are adjacent, so direct
	// indexing replaces 4096 one-element subslice loops, and the canonical
	// sweep is fused into the butterfly instead of running as an extra pass
	// over the polynomial. Arithmetic and reduction order are exactly those
	// of the generic stage followed by the old sweep — bit-identical output.
	if n == 1 {
		c := p[0]
		if c >= twoQ {
			c -= twoQ
		}
		if c >= q {
			c -= q
		}
		p[0] = c
		return
	}
	m := n >> 1
	for i := 0; i < m; i++ {
		w := psi[m+i]
		wS := psiShoup[m+i]
		u := p[2*i]
		if u >= twoQ {
			u -= twoQ
		}
		v := p[2*i+1]
		hi, _ := bits.Mul64(v, wS)
		v = v*w - hi*q
		x := u + v // < 4q
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		y := u + twoQ - v // < 4q
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		p[2*i] = x
		p[2*i+1] = y
	}
}

// nttVecWithTables is the forward pass with the AVX2 stage kernels doing
// every t ≥ 4 stage; the t=2 stage and the fused last stage run through the
// scalar stage helpers. Bit-identical to the scalar driver.
func (r *Ring) nttVecWithTables(p Poly, psi, psiShoup []uint64, lazy bool) {
	q := r.Mod.Q
	n := r.N
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		if t >= 4 {
			nttFwdStepAVX2(p, psi, psiShoup, q, m, t)
		} else {
			nttFwdStepScalar(p, psi, psiShoup, q, m, t)
		}
	}
	nttFwdLastScalar(p, psi, psiShoup, q, lazy)
}

// nttFwdStepScalar runs one forward Cooley-Tukey stage (m blocks of half
// length t) with Shoup-twiddle butterflies — the t=2 stage of the vector
// driver, and the lane-for-lane reference the vector property tests and
// fuzz target compare nttFwdStepAVX2 against. The pure-scalar transform
// inlines this same loop (see nttWithTables for why); keep the two in sync.
func nttFwdStepScalar(p Poly, psi, psiShoup []uint64, q uint64, m, t int) {
	twoQ := 2 * q
	for i := 0; i < m; i++ {
		w := psi[m+i]
		wS := psiShoup[m+i]
		j1 := 2 * i * t
		a := p[j1 : j1+t]
		b := p[j1+t : j1+2*t]
		b = b[:len(a)] // bounds-check elimination for b[j]
		for j := range a {
			// u ∈ [0, 4q) → [0, 2q); v ← lazy Shoup ∈ [0, 2q).
			u := a[j]
			if u >= twoQ {
				u -= twoQ
			}
			v := b[j]
			hi, _ := bits.Mul64(v, wS)
			v = v*w - hi*q
			a[j] = u + v        // < 4q
			b[j] = u + twoQ - v // < 4q
		}
	}
}

// nttFwdLastScalar is the fused canonicalizing last stage (t=1, m=n/2) as
// a helper for the vector driver; the scalar driver inlines the same loop.
func nttFwdLastScalar(p Poly, psi, psiShoup []uint64, q uint64, lazy bool) {
	twoQ := 2 * q
	n := len(p)
	if n == 1 {
		c := p[0]
		if c >= twoQ {
			c -= twoQ
		}
		if !lazy && c >= q {
			c -= q
		}
		p[0] = c
		return
	}
	m := n >> 1
	for i := 0; i < m; i++ {
		w := psi[m+i]
		wS := psiShoup[m+i]
		u := p[2*i]
		if u >= twoQ {
			u -= twoQ
		}
		v := p[2*i+1]
		hi, _ := bits.Mul64(v, wS)
		v = v*w - hi*q
		x := u + v // < 4q
		if x >= twoQ {
			x -= twoQ
		}
		if !lazy && x >= q {
			x -= q
		}
		y := u + twoQ - v // < 4q
		if y >= twoQ {
			y -= twoQ
		}
		if !lazy && y >= q {
			y -= q
		}
		p[2*i] = x
		p[2*i+1] = y
	}
}

// INTT transforms p in place from evaluation back to coefficient
// representation (Gentleman-Sande decimation-in-frequency pass with the same
// lazy-reduction discipline as NTT, coefficients in [0, 2q) between passes),
// including the final multiplication by N^{-1} which also performs the
// canonical reduction. Driver split mirrors NTT: the scalar pass contains no
// assembly calls, the vector pass sends t ≥ 4 stages to the AVX2 kernel and
// the open-coded first stage through the scalar helper; the N^{-1} sweep
// rides the MulScalar Shoup kernel in both.
func (r *Ring) INTT(p Poly) {
	if simdActive() {
		r.inttVec(p)
		return
	}
	q := r.Mod.Q
	twoQ := 2 * q
	n := r.N
	psiInv := r.psiInvTable
	psiInvShoup := r.psiInvTableShoup
	p = p[:n]
	t := 1
	if n >= 2 {
		// First stage (t=1, h=n/2), open-coded with direct indexing for the
		// same reason as the forward transform's last stage: the pairs are
		// adjacent and a one-element subslice loop per butterfly costs more
		// than the butterfly.
		h := n >> 1
		for i := 0; i < h; i++ {
			w := psiInv[h+i]
			wS := psiInvShoup[h+i]
			u := p[2*i]
			v := p[2*i+1]
			c := u + v // < 4q
			if c >= twoQ {
				c -= twoQ
			}
			p[2*i] = c
			d := u + twoQ - v // < 4q
			hi, _ := bits.Mul64(d, wS)
			p[2*i+1] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
		}
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := psiInv[h+i]
			wS := psiInvShoup[h+i]
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				v := b[j]
				c := u + v // < 4q
				if c >= twoQ {
					c -= twoQ
				}
				a[j] = c
				d := u + twoQ - v // < 4q
				hi, _ := bits.Mul64(d, wS)
				b[j] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	r.nInvSweep(p)
}

// inttVec is the inverse pass with the AVX2 stage kernels (see INTT).
func (r *Ring) inttVec(p Poly) {
	q := r.Mod.Q
	n := r.N
	psiInv := r.psiInvTable
	psiInvShoup := r.psiInvTableShoup
	p = p[:n]
	t := 1
	if n >= 2 {
		nttInvFirstScalar(p, psiInv, psiInvShoup, q)
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		if t >= 4 {
			nttInvStepAVX2(p, psiInv, psiInvShoup, q, h, t)
		} else {
			nttInvStepScalar(p, psiInv, psiInvShoup, q, h, t)
		}
		t <<= 1
	}
	r.nInvSweep(p)
}

// nttInvFirstScalar is the open-coded first inverse stage (t=1, h=n/2) as a
// helper for the vector driver; INTT inlines the same loop.
func nttInvFirstScalar(p Poly, psiInv, psiInvShoup []uint64, q uint64) {
	twoQ := 2 * q
	h := len(p) >> 1
	for i := 0; i < h; i++ {
		w := psiInv[h+i]
		wS := psiInvShoup[h+i]
		u := p[2*i]
		v := p[2*i+1]
		c := u + v // < 4q
		if c >= twoQ {
			c -= twoQ
		}
		p[2*i] = c
		d := u + twoQ - v // < 4q
		hi, _ := bits.Mul64(d, wS)
		p[2*i+1] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
	}
}

// nttInvStepScalar runs one inverse Gentleman-Sande stage (h blocks of half
// length t) — the t=2 stage of the vector driver and the reference
// semantics for nttInvStepAVX2; INTT inlines the same loop (keep in sync).
func nttInvStepScalar(p Poly, psiInv, psiInvShoup []uint64, q uint64, h, t int) {
	twoQ := 2 * q
	j1 := 0
	for i := 0; i < h; i++ {
		w := psiInv[h+i]
		wS := psiInvShoup[h+i]
		a := p[j1 : j1+t]
		b := p[j1+t : j1+2*t]
		b = b[:len(a)]
		for j := range a {
			u := a[j]
			v := b[j]
			c := u + v // < 4q
			if c >= twoQ {
				c -= twoQ
			}
			a[j] = c
			d := u + twoQ - v // < 4q
			hi, _ := bits.Mul64(d, wS)
			b[j] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
		}
		j1 += 2 * t
	}
}

// nInvSweep multiplies every coefficient by N^{-1} (Shoup fixed-operand)
// with canonical output — the final pass of both inverse transforms. It is
// the same kernel as MulScalar's inner loop (correct for any input < 2^63,
// which covers the lazy [0, 2q) coefficients arriving here), so it shares
// the vector dispatch.
func (r *Ring) nInvSweep(p Poly) {
	mulScalarShoupInto(p, p, r.Mod.Q, r.nInv, r.nInvShoup)
}

// NTTOnTheFly performs the forward NTT while generating the twiddle factors
// arithmetically instead of reading precomputed tables — the alternative
// datapath mode of §IV-D ("on-the-fly twiddle factor generation ... when the
// on-chip memory is not sufficient"). Functionally identical to NTT; the
// twiddles are derived per call into scratch storage, trading multiplications
// for table reads. Exposed so the design choice can be benchmarked.
func (r *Ring) NTTOnTheFly(p Poly) {
	r.NTTOnTheFlyWith(p, NewTwiddleScratch(r.N))
}

// TwiddleScratch holds the per-call twiddle buffers of the on-the-fly NTT
// mode, so a worker that keeps one around pays no allocation per transform —
// the software analog of the datapath reusing one on-chip twiddle buffer.
type TwiddleScratch struct {
	psi, psiShoup []uint64
}

// NewTwiddleScratch allocates twiddle buffers for ring degree n.
func NewTwiddleScratch(n int) *TwiddleScratch {
	return &TwiddleScratch{psi: make([]uint64, n), psiShoup: make([]uint64, n)}
}

// NTTOnTheFlyWith is NTTOnTheFly with caller-owned twiddle scratch; it is
// allocation-free when sc is large enough for the ring degree.
func (r *Ring) NTTOnTheFlyWith(p Poly, sc *TwiddleScratch) {
	n := r.N
	if len(sc.psi) < n {
		sc.psi = make([]uint64, n)
		sc.psiShoup = make([]uint64, n)
	}
	psi := sc.psi[:n]
	psiShoup := sc.psiShoup[:n]
	fillTwiddles(r.Mod, r.psi, r.LogN, psi)
	for i := range psi {
		psiShoup[i] = r.Mod.ShoupPrecomp(psi[i])
	}
	r.nttWithTables(p, psi, psiShoup)
}

// NTTMontgomery is the forward transform with Montgomery-domain twiddle
// tables: each butterfly multiplies by ψ·2^64 mod q through MRedLazy instead
// of the Shoup pair. Same Harvey lazy-reduction discipline (coefficients in
// [0, 4q) between stages, canonical sweep at the end), so the output is
// bit-identical to NTT — the two modes differ only in which per-prime
// constant form feeds the butterfly multiplier. Exposed so the §IV-A
// reduction choice is measurable on the real transform, not just on scalar
// chains; the default NTT keeps whichever mode the committed kernel
// ablation shows faster. Driver split mirrors NTT, with the MRed butterfly
// vectorized in nttFwdStepMontAVX2.
func (r *Ring) NTTMontgomery(p Poly) {
	if simdActive() {
		r.nttMontVec(p)
		return
	}
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	twoQ := 2 * q
	n := r.N
	psi := r.psiTableMont
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			j1 := 2 * i * t
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				// v ← MRedLazy(b[j], w) ∈ [0, 2q), inlined.
				hi, lo := bits.Mul64(b[j], w)
				uu := lo * qInv
				h, _ := bits.Mul64(uu, q)
				v := hi + h
				if lo != 0 {
					v++
				}
				a[j] = u + v
				b[j] = u + twoQ - v
			}
		}
	}
	nttFwdLastMontScalar(p, psi, q, qInv)
}

// nttMontVec is the Montgomery-twiddle forward pass with the AVX2 stage
// kernels (see NTTMontgomery).
func (r *Ring) nttMontVec(p Poly) {
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	n := r.N
	psi := r.psiTableMont
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		if t >= 4 {
			nttFwdStepMontAVX2(p, psi, q, qInv, m, t)
		} else {
			nttFwdStepMontScalar(p, psi, q, qInv, m, t)
		}
	}
	nttFwdLastMontScalar(p, psi, q, qInv)
}

// nttFwdStepMontScalar is the Montgomery-twiddle counterpart of
// nttFwdStepScalar; reference semantics for nttFwdStepMontAVX2, inlined by
// the scalar NTTMontgomery (keep in sync).
func nttFwdStepMontScalar(p Poly, psi []uint64, q, qInv uint64, m, t int) {
	twoQ := 2 * q
	for i := 0; i < m; i++ {
		w := psi[m+i]
		j1 := 2 * i * t
		a := p[j1 : j1+t]
		b := p[j1+t : j1+2*t]
		b = b[:len(a)]
		for j := range a {
			u := a[j]
			if u >= twoQ {
				u -= twoQ
			}
			// v ← MRedLazy(b[j], w) ∈ [0, 2q), inlined.
			hi, lo := bits.Mul64(b[j], w)
			uu := lo * qInv
			h, _ := bits.Mul64(uu, q)
			v := hi + h
			if lo != 0 {
				v++
			}
			a[j] = u + v
			b[j] = u + twoQ - v
		}
	}
}

// nttFwdLastMontScalar is the open-coded fused last stage of NTTMontgomery,
// mirroring nttFwdLastScalar so the committed ablation compares the twiddle
// kernel, not the loop structure.
func nttFwdLastMontScalar(p Poly, psi []uint64, q, qInv uint64) {
	twoQ := 2 * q
	n := len(p)
	if n == 1 {
		c := p[0]
		if c >= twoQ {
			c -= twoQ
		}
		if c >= q {
			c -= q
		}
		p[0] = c
		return
	}
	m := n >> 1
	for i := 0; i < m; i++ {
		w := psi[m+i]
		u := p[2*i]
		if u >= twoQ {
			u -= twoQ
		}
		hi, lo := bits.Mul64(p[2*i+1], w)
		uu := lo * qInv
		h, _ := bits.Mul64(uu, q)
		v := hi + h
		if lo != 0 {
			v++
		}
		x := u + v
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		y := u + twoQ - v
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		p[2*i] = x
		p[2*i+1] = y
	}
}

// INTTMontgomery is the inverse transform in the Montgomery twiddle mode;
// bit-identical to INTT (see NTTMontgomery).
func (r *Ring) INTTMontgomery(p Poly) {
	if simdActive() {
		r.inttMontVec(p)
		return
	}
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	twoQ := 2 * q
	n := r.N
	psiInv := r.psiInvTableMont
	p = p[:n]
	t := 1
	if n >= 2 {
		// First stage (t=1, h=n/2), open-coded (see INTT).
		h := n >> 1
		for i := 0; i < h; i++ {
			w := psiInv[h+i]
			u := p[2*i]
			v := p[2*i+1]
			c := u + v
			if c >= twoQ {
				c -= twoQ
			}
			p[2*i] = c
			d := u + twoQ - v
			hi, lo := bits.Mul64(d, w)
			uu := lo * qInv
			hh, _ := bits.Mul64(uu, q)
			e := hi + hh
			if lo != 0 {
				e++
			}
			p[2*i+1] = e
		}
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := psiInv[h+i]
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				v := b[j]
				c := u + v
				if c >= twoQ {
					c -= twoQ
				}
				a[j] = c
				d := u + twoQ - v
				hi, lo := bits.Mul64(d, w)
				uu := lo * qInv
				hh, _ := bits.Mul64(uu, q)
				e := hi + hh
				if lo != 0 {
					e++
				}
				b[j] = e
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	r.nInvSweep(p)
}

// inttMontVec is the Montgomery-twiddle inverse pass with the AVX2 stage
// kernels (see INTTMontgomery).
func (r *Ring) inttMontVec(p Poly) {
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	n := r.N
	psiInv := r.psiInvTableMont
	p = p[:n]
	t := 1
	if n >= 2 {
		nttInvFirstMontScalar(p, psiInv, q, qInv)
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		if t >= 4 {
			nttInvStepMontAVX2(p, psiInv, q, qInv, h, t)
		} else {
			nttInvStepMontScalar(p, psiInv, q, qInv, h, t)
		}
		t <<= 1
	}
	r.nInvSweep(p)
}

// nttInvFirstMontScalar is the open-coded first inverse stage in the
// Montgomery twiddle mode (see nttInvFirstScalar).
func nttInvFirstMontScalar(p Poly, psiInv []uint64, q, qInv uint64) {
	twoQ := 2 * q
	h := len(p) >> 1
	for i := 0; i < h; i++ {
		w := psiInv[h+i]
		u := p[2*i]
		v := p[2*i+1]
		c := u + v
		if c >= twoQ {
			c -= twoQ
		}
		p[2*i] = c
		d := u + twoQ - v
		hi, lo := bits.Mul64(d, w)
		uu := lo * qInv
		hh, _ := bits.Mul64(uu, q)
		e := hi + hh
		if lo != 0 {
			e++
		}
		p[2*i+1] = e
	}
}

// nttInvStepMontScalar is the Montgomery-twiddle counterpart of
// nttInvStepScalar; reference semantics for nttInvStepMontAVX2, inlined by
// the scalar INTTMontgomery (keep in sync).
func nttInvStepMontScalar(p Poly, psiInv []uint64, q, qInv uint64, h, t int) {
	twoQ := 2 * q
	j1 := 0
	for i := 0; i < h; i++ {
		w := psiInv[h+i]
		a := p[j1 : j1+t]
		b := p[j1+t : j1+2*t]
		b = b[:len(a)]
		for j := range a {
			u := a[j]
			v := b[j]
			c := u + v
			if c >= twoQ {
				c -= twoQ
			}
			a[j] = c
			d := u + twoQ - v
			hi, lo := bits.Mul64(d, w)
			uu := lo * qInv
			hh, _ := bits.Mul64(uu, q)
			e := hi + hh
			if lo != 0 {
				e++
			}
			b[j] = e
		}
		j1 += 2 * t
	}
}
