package ring

import "math/bits"

// NTT transforms p in place from coefficient to evaluation (NTT)
// representation using the negacyclic Cooley-Tukey decimation-in-time pass
// with precomputed, bit-reversed twiddle tables and Shoup fixed-operand
// multiplication — the "read twiddles from memory" mode of the paper's NTT
// datapath (§IV-D).
//
// The butterflies use Harvey's lazy reduction: coefficients ride in [0, 4q)
// through the passes (q < 2^61, so 4q fits a word) and are canonically
// reduced only in a final sweep. The output is bit-identical to an eagerly
// reduced transform — the lazy interval only changes intermediate
// representatives, never the residue.
func (r *Ring) NTT(p Poly) {
	r.nttWithTables(p, r.psiTable, r.psiTableShoup)
}

func (r *Ring) nttWithTables(p Poly, psi, psiShoup []uint64) {
	q := r.Mod.Q
	twoQ := 2 * q
	n := r.N
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			wS := psiShoup[m+i]
			j1 := 2 * i * t
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)] // bounds-check elimination for b[j]
			for j := range a {
				// u ∈ [0, 4q) → [0, 2q); v ← lazy Shoup ∈ [0, 2q).
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := b[j]
				hi, _ := bits.Mul64(v, wS)
				v = v*w - hi*q
				a[j] = u + v        // < 4q
				b[j] = u + twoQ - v // < 4q
			}
		}
	}
	// Last stage (t=1, m=n/2), open-coded: pairs are adjacent, so direct
	// indexing replaces 4096 one-element subslice loops, and the canonical
	// sweep is fused into the butterfly instead of running as an extra pass
	// over the polynomial. Arithmetic and reduction order are exactly those
	// of the generic stage followed by the old sweep — bit-identical output.
	if n == 1 {
		c := p[0]
		if c >= twoQ {
			c -= twoQ
		}
		if c >= q {
			c -= q
		}
		p[0] = c
		return
	}
	{
		m := n >> 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			wS := psiShoup[m+i]
			u := p[2*i]
			if u >= twoQ {
				u -= twoQ
			}
			v := p[2*i+1]
			hi, _ := bits.Mul64(v, wS)
			v = v*w - hi*q
			x := u + v // < 4q
			if x >= twoQ {
				x -= twoQ
			}
			if x >= q {
				x -= q
			}
			y := u + twoQ - v // < 4q
			if y >= twoQ {
				y -= twoQ
			}
			if y >= q {
				y -= q
			}
			p[2*i] = x
			p[2*i+1] = y
		}
	}
}

// INTT transforms p in place from evaluation back to coefficient
// representation (Gentleman-Sande decimation-in-frequency pass with the same
// lazy-reduction discipline as NTT, coefficients in [0, 2q) between passes),
// including the final multiplication by N^{-1} which also performs the
// canonical reduction.
func (r *Ring) INTT(p Poly) {
	q := r.Mod.Q
	twoQ := 2 * q
	n := r.N
	p = p[:n]
	t := 1
	if n >= 2 {
		// First stage (t=1, h=n/2), open-coded with direct indexing for the
		// same reason as the forward transform's last stage: the pairs are
		// adjacent and a one-element subslice loop per butterfly costs more
		// than the butterfly. Arithmetic is identical — bit-identical output.
		h := n >> 1
		for i := 0; i < h; i++ {
			w := r.psiInvTable[h+i]
			wS := r.psiInvTableShoup[h+i]
			u := p[2*i]
			v := p[2*i+1]
			c := u + v // < 4q
			if c >= twoQ {
				c -= twoQ
			}
			p[2*i] = c
			d := u + twoQ - v // < 4q
			hi, _ := bits.Mul64(d, wS)
			p[2*i+1] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
		}
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := r.psiInvTable[h+i]
			wS := r.psiInvTableShoup[h+i]
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				v := b[j]
				c := u + v // < 4q
				if c >= twoQ {
					c -= twoQ
				}
				a[j] = c
				d := u + twoQ - v // < 4q
				hi, _ := bits.Mul64(d, wS)
				b[j] = d*w - hi*q // lazy Shoup ∈ [0, 2q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	nInv, nInvS := r.nInv, r.nInvShoup
	for i := range p {
		x := p[i]
		hi, _ := bits.Mul64(x, nInvS)
		x = x*nInv - hi*q
		if x >= q {
			x -= q
		}
		p[i] = x
	}
}

// NTTOnTheFly performs the forward NTT while generating the twiddle factors
// arithmetically instead of reading precomputed tables — the alternative
// datapath mode of §IV-D ("on-the-fly twiddle factor generation ... when the
// on-chip memory is not sufficient"). Functionally identical to NTT; the
// twiddles are derived per call into scratch storage, trading multiplications
// for table reads. Exposed so the design choice can be benchmarked.
func (r *Ring) NTTOnTheFly(p Poly) {
	r.NTTOnTheFlyWith(p, NewTwiddleScratch(r.N))
}

// TwiddleScratch holds the per-call twiddle buffers of the on-the-fly NTT
// mode, so a worker that keeps one around pays no allocation per transform —
// the software analog of the datapath reusing one on-chip twiddle buffer.
type TwiddleScratch struct {
	psi, psiShoup []uint64
}

// NewTwiddleScratch allocates twiddle buffers for ring degree n.
func NewTwiddleScratch(n int) *TwiddleScratch {
	return &TwiddleScratch{psi: make([]uint64, n), psiShoup: make([]uint64, n)}
}

// NTTOnTheFlyWith is NTTOnTheFly with caller-owned twiddle scratch; it is
// allocation-free when sc is large enough for the ring degree.
func (r *Ring) NTTOnTheFlyWith(p Poly, sc *TwiddleScratch) {
	n := r.N
	if len(sc.psi) < n {
		sc.psi = make([]uint64, n)
		sc.psiShoup = make([]uint64, n)
	}
	psi := sc.psi[:n]
	psiShoup := sc.psiShoup[:n]
	fillTwiddles(r.Mod, r.psi, r.LogN, psi)
	for i := range psi {
		psiShoup[i] = r.Mod.ShoupPrecomp(psi[i])
	}
	r.nttWithTables(p, psi, psiShoup)
}

// NTTLazy is NTT followed by no extra normalization; it exists for symmetry
// of naming in benchmark code.
func (r *Ring) NTTLazy(p Poly) { r.NTT(p) }

// NTTMontgomery is the forward transform with Montgomery-domain twiddle
// tables: each butterfly multiplies by ψ·2^64 mod q through MRedLazy instead
// of the Shoup pair. Same Harvey lazy-reduction discipline (coefficients in
// [0, 4q) between stages, canonical sweep at the end), so the output is
// bit-identical to NTT — the two modes differ only in which per-prime
// constant form feeds the butterfly multiplier. Exposed so the §IV-A
// reduction choice is measurable on the real transform, not just on scalar
// chains; the default NTT keeps whichever mode the committed kernel
// ablation shows faster.
func (r *Ring) NTTMontgomery(p Poly) {
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	twoQ := 2 * q
	n := r.N
	psi := r.psiTableMont
	p = p[:n]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			j1 := 2 * i * t
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				// v ← MRedLazy(b[j], w) ∈ [0, 2q), inlined.
				hi, lo := bits.Mul64(b[j], w)
				uu := lo * qInv
				h, _ := bits.Mul64(uu, q)
				v := hi + h
				if lo != 0 {
					v++
				}
				a[j] = u + v
				b[j] = u + twoQ - v
			}
		}
	}
	// Open-coded fused last stage, mirroring nttWithTables so the committed
	// ablation compares the twiddle kernel, not the loop structure.
	if n == 1 {
		c := p[0]
		if c >= twoQ {
			c -= twoQ
		}
		if c >= q {
			c -= q
		}
		p[0] = c
		return
	}
	{
		m := n >> 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			u := p[2*i]
			if u >= twoQ {
				u -= twoQ
			}
			hi, lo := bits.Mul64(p[2*i+1], w)
			uu := lo * qInv
			h, _ := bits.Mul64(uu, q)
			v := hi + h
			if lo != 0 {
				v++
			}
			x := u + v
			if x >= twoQ {
				x -= twoQ
			}
			if x >= q {
				x -= q
			}
			y := u + twoQ - v
			if y >= twoQ {
				y -= twoQ
			}
			if y >= q {
				y -= q
			}
			p[2*i] = x
			p[2*i+1] = y
		}
	}
}

// INTTMontgomery is the inverse transform in the Montgomery twiddle mode;
// bit-identical to INTT (see NTTMontgomery).
func (r *Ring) INTTMontgomery(p Poly) {
	q := r.Mod.Q
	qInv := r.Mod.MRedQInv
	twoQ := 2 * q
	n := r.N
	p = p[:n]
	t := 1
	if n >= 2 {
		// Open-coded first stage, mirroring INTT (see NTTMontgomery).
		h := n >> 1
		for i := 0; i < h; i++ {
			w := r.psiInvTableMont[h+i]
			u := p[2*i]
			v := p[2*i+1]
			c := u + v
			if c >= twoQ {
				c -= twoQ
			}
			p[2*i] = c
			d := u + twoQ - v
			hi, lo := bits.Mul64(d, w)
			uu := lo * qInv
			hh, _ := bits.Mul64(uu, q)
			e := hi + hh
			if lo != 0 {
				e++
			}
			p[2*i+1] = e
		}
		t = 2
	}
	for m := n >> 1; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := r.psiInvTableMont[h+i]
			a := p[j1 : j1+t]
			b := p[j1+t : j1+2*t]
			b = b[:len(a)]
			for j := range a {
				u := a[j]
				v := b[j]
				c := u + v
				if c >= twoQ {
					c -= twoQ
				}
				a[j] = c
				d := u + twoQ - v
				hi, lo := bits.Mul64(d, w)
				uu := lo * qInv
				hh, _ := bits.Mul64(uu, q)
				e := hi + hh
				if lo != 0 {
					e++
				}
				b[j] = e
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	nInv, nInvS := r.nInv, r.nInvShoup
	for i := range p {
		x := p[i]
		hi, _ := bits.Mul64(x, nInvS)
		x = x*nInv - hi*q
		if x >= q {
			x -= q
		}
		p[i] = x
	}
}
