package ring

// NTT transforms p in place from coefficient to evaluation (NTT)
// representation using the negacyclic Cooley-Tukey decimation-in-time pass
// with precomputed, bit-reversed twiddle tables and Shoup fixed-operand
// multiplication — the "read twiddles from memory" mode of the paper's NTT
// datapath (§IV-D).
func (r *Ring) NTT(p Poly) {
	r.nttWithTables(p, r.psiTable, r.psiTableShoup)
}

func (r *Ring) nttWithTables(p Poly, psi, psiShoup []uint64) {
	mod := r.Mod
	q := mod.Q
	n := r.N
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psi[m+i]
			wS := psiShoup[m+i]
			j1 := 2 * i * t
			j2 := j1 + t
			for j := j1; j < j2; j++ {
				u := p[j]
				v := mod.MulModShoup(p[j+t], w, wS)
				c := u + v
				if c >= q {
					c -= q
				}
				p[j] = c
				c = u - v
				if c > u {
					c += q
				}
				p[j+t] = c
			}
		}
	}
}

// INTT transforms p in place from evaluation back to coefficient
// representation (Gentleman-Sande decimation-in-frequency pass), including
// the final multiplication by N^{-1}.
func (r *Ring) INTT(p Poly) {
	mod := r.Mod
	q := mod.Q
	n := r.N
	t := 1
	for m := n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := r.psiInvTable[h+i]
			wS := r.psiInvTableShoup[h+i]
			j2 := j1 + t
			for j := j1; j < j2; j++ {
				u := p[j]
				v := p[j+t]
				c := u + v
				if c >= q {
					c -= q
				}
				p[j] = c
				c = u - v
				if c > u {
					c += q
				}
				p[j+t] = mod.MulModShoup(c, w, wS)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range p {
		p[i] = mod.MulModShoup(p[i], r.nInv, r.nInvShoup)
	}
}

// NTTOnTheFly performs the forward NTT while generating the twiddle factors
// arithmetically instead of reading precomputed tables — the alternative
// datapath mode of §IV-D ("on-the-fly twiddle factor generation ... when the
// on-chip memory is not sufficient"). Functionally identical to NTT; the
// twiddles are derived per call into scratch storage, trading multiplications
// for table reads. Exposed so the design choice can be benchmarked.
func (r *Ring) NTTOnTheFly(p Poly) {
	n := r.N
	psi := make([]uint64, n)
	fillTwiddles(r.Mod, r.psi, r.LogN, psi)
	psiShoup := make([]uint64, n)
	for i := range psi {
		psiShoup[i] = r.Mod.ShoupPrecomp(psi[i])
	}
	r.nttWithTables(p, psi, psiShoup)
}

// NTTLazy is NTT followed by no extra normalization; it exists for symmetry
// of naming in benchmark code.
func (r *Ring) NTTLazy(p Poly) { r.NTT(p) }
