//go:build amd64 && !purego

package ring

import (
	"os"
	"sync/atomic"
)

// simdOn gates every vector dispatch point. It is an atomic so a runtime
// toggle (the binaries' -nosimd flag, tests flipping the path under -race)
// is a plain data-race-free load on the hot paths — on amd64 an atomic load
// is an ordinary MOV, so the guard costs one predictable branch per sweep,
// never per coefficient.
var simdOn atomic.Bool

func init() {
	simdOn.Store(cpuSupportsAVX2() && os.Getenv("HEAP_NOSIMD") == "")
}

// simdActive reports whether the vector kernels are selected.
func simdActive() bool { return simdOn.Load() }

// SetSIMD enables or disables the vector kernel set at runtime and reports
// the resulting state. Enabling is refused (returns false) when the host
// lacks AVX2 or OS support for saving the YMM state; disabling always takes
// effect. The scalar fallback is bit-identical, so flipping this mid-run is
// safe — it only changes which instructions compute the same values.
func SetSIMD(enable bool) bool {
	if enable && !cpuSupportsAVX2() {
		simdOn.Store(false)
		return false
	}
	simdOn.Store(enable)
	return enable
}

// cpuid and xgetbv0 are the tiny assembly probes behind feature detection —
// stdlib-only, no new module dependencies (golang.org/x/sys/cpu would pull
// one in, and internal/cpu is off-limits outside the standard library).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// cpuSupportsAVX2 performs the full architectural check for safely running
// VEX-encoded 256-bit integer code: AVX2 in CPUID.(7,0):EBX, AVX+OSXSAVE in
// CPUID.1:ECX, and the OS actually enabling XMM+YMM state saving in XCR0.
// Skipping the XCR0 check is the classic way to SIGILL inside a VM.
func cpuSupportsAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	const xmmYmmState = 0x6 // SSE (bit 1) and AVX (bit 2) state enabled
	if xcr0&xmmYmmState != xmmYmmState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// Assembly kernels (ntt_amd64.s, vec_amd64.s). Every function processes
// only whole 4-lane groups: the NTT stage kernels are called for stages
// with block length t ≥ 4 (t is a power of two, so always a multiple of
// the vector width there), and the sweep kernels are handed a length
// pre-truncated to a multiple of 4 by their Go wrappers, which run the
// scalar loop on the tail. All of them tolerate out aliasing an input
// (each lane group is fully read before it is written, like the scalar
// loops). //go:noescape keeps the slice headers off the heap so the PR 2
// zero-allocation locks keep holding on the vector path.

//go:noescape
func nttFwdStepAVX2(p []uint64, psi, psiShoup []uint64, q uint64, m, t int)

//go:noescape
func nttInvStepAVX2(p []uint64, psiInv, psiInvShoup []uint64, q uint64, h, t int)

//go:noescape
func nttFwdStepMontAVX2(p []uint64, psiMont []uint64, q, qInv uint64, m, t int)

//go:noescape
func nttInvStepMontAVX2(p []uint64, psiInvMont []uint64, q, qInv uint64, h, t int)

//go:noescape
func mulCoeffsBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint)

//go:noescape
func mulCoeffsAndAddBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint)

//go:noescape
func mulScalarShoupAVX2(out, a []uint64, q, c, cShoup uint64)

//go:noescape
func macShoupAVX2(out, a []uint64, q, w, wShoup uint64)

//go:noescape
func addVecAVX2(out, a, b []uint64, q uint64)

//go:noescape
func subVecAVX2(out, a, b []uint64, q uint64)
