package ring

import (
	"testing"
	"testing/quick"
)

func TestPolyAddSubNeg(t *testing.T) {
	r := NewRing(8, GenerateNTTPrimes(30, 8, 1)[0])
	s := NewSampler(20)
	a, b := r.NewPoly(), r.NewPoly()
	s.UniformPoly(r, a)
	s.UniformPoly(r, b)

	sum, diff := r.NewPoly(), r.NewPoly()
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !r.Equal(diff, a) {
		t.Error("(a+b)-b != a")
	}
	neg := r.NewPoly()
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	for i, v := range sum {
		if v != 0 {
			t.Fatalf("a + (-a) != 0 at %d: %d", i, v)
		}
	}
}

func TestMulScalar(t *testing.T) {
	r := NewRing(7, GenerateNTTPrimes(30, 7, 1)[0])
	s := NewSampler(21)
	a := r.NewPoly()
	s.UniformPoly(r, a)
	out := r.NewPoly()
	r.MulScalar(a, 3, out)
	want := r.NewPoly()
	r.Add(a, a, want)
	r.Add(want, a, want)
	if !r.Equal(out, want) {
		t.Error("3·a != a+a+a")
	}
}

func TestMulCoeffsAndAdd(t *testing.T) {
	r := NewRing(6, 7681)
	s := NewSampler(22)
	a, b, acc := r.NewPoly(), r.NewPoly(), r.NewPoly()
	s.UniformPoly(r, a)
	s.UniformPoly(r, b)
	s.UniformPoly(r, acc)
	want := r.NewPoly()
	r.MulCoeffs(a, b, want)
	r.Add(want, acc, want)
	r.MulCoeffsAndAdd(a, b, acc)
	if !r.Equal(acc, want) {
		t.Error("MulCoeffsAndAdd mismatch")
	}
}

func TestAutomorphismCoeffDomain(t *testing.T) {
	r := NewRing(4, 12289)
	// p = X: automorphism g sends X -> X^g.
	for _, g := range []uint64{3, 5, 7, 31} {
		p := r.NewPoly()
		p[1] = 1
		out := r.NewPoly()
		r.Automorphism(p, g, out)
		want := r.NewPoly()
		r.MulByMonomial(appendOne(r), int(g), want) // X^g = 1·X^g
		if !r.Equal(out, want) {
			t.Errorf("g=%d: automorphism of X != X^g", g)
		}
	}
}

func appendOne(r *Ring) Poly {
	p := r.NewPoly()
	p[0] = 1
	return p
}

func TestAutomorphismIsRingHomomorphism(t *testing.T) {
	r := NewRing(6, GenerateNTTPrimes(30, 6, 1)[0])
	s := NewSampler(23)
	g := uint64(5)
	a, b := r.NewPoly(), r.NewPoly()
	s.UniformPoly(r, a)
	s.UniformPoly(r, b)

	// σ(a·b) == σ(a)·σ(b)
	prod := r.NewPoly()
	r.MulPolyNaive(a, b, prod)
	sProd := r.NewPoly()
	r.Automorphism(prod, g, sProd)

	sa, sb := r.NewPoly(), r.NewPoly()
	r.Automorphism(a, g, sa)
	r.Automorphism(b, g, sb)
	prod2 := r.NewPoly()
	r.MulPolyNaive(sa, sb, prod2)
	if !r.Equal(sProd, prod2) {
		t.Error("automorphism is not multiplicative")
	}
}

func TestAutomorphismNTTMatchesCoeffDomain(t *testing.T) {
	r := NewRing(8, GenerateNTTPrimes(30, 8, 1)[0])
	s := NewSampler(24)
	for _, g := range []uint64{3, 5, 25, uint64(2*r.N - 1)} {
		a := r.NewPoly()
		s.UniformPoly(r, a)

		want := r.NewPoly()
		r.Automorphism(a, g, want)
		r.NTT(want)

		got := a.Copy()
		r.NTT(got)
		perm := r.AutomorphismNTTIndex(g)
		out := r.NewPoly()
		r.AutomorphismNTT(got, perm, out)
		if !r.Equal(out, want) {
			t.Errorf("g=%d: NTT-domain automorphism mismatch", g)
		}
	}
}

func TestMulByMonomial(t *testing.T) {
	r := NewRing(3, 7681)
	p := r.NewPoly()
	s := NewSampler(25)
	s.UniformPoly(r, p)

	// Rotating by 2N is the identity; rotating by N negates.
	out := r.NewPoly()
	r.MulByMonomial(p, 2*r.N, out)
	if !r.Equal(out, p) {
		t.Error("X^{2N} rotation is not identity")
	}
	r.MulByMonomial(p, r.N, out)
	neg := r.NewPoly()
	r.Neg(p, neg)
	if !r.Equal(out, neg) {
		t.Error("X^N rotation is not negation")
	}

	// Composition: rotating by a then b equals rotating by a+b.
	f := func(a, b uint8) bool {
		o1, o2 := r.NewPoly(), r.NewPoly()
		r.MulByMonomial(p, int(a), o1)
		r.MulByMonomial(o1, int(b), o1)
		r.MulByMonomial(p, int(a)+int(b), o2)
		return r.Equal(o1, o2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}

	// Against naive polynomial multiplication by monomial.
	mono := r.NewPoly()
	mono[3] = 1
	want := r.NewPoly()
	r.MulPolyNaive(p, mono, want)
	r.MulByMonomial(p, 3, out)
	if !r.Equal(out, want) {
		t.Error("MulByMonomial(3) != naive p·X^3")
	}
}

func TestGaloisElements(t *testing.T) {
	r := NewRing(4, 12289)
	if g := r.GaloisElementForRotation(0); g != 1 {
		t.Errorf("rotation by 0 should be identity, got %d", g)
	}
	if g := r.GaloisElementConjugate(); g != uint64(2*r.N-1) {
		t.Errorf("conjugate galois element: got %d", g)
	}
	// 5^k mod 2N values must all be odd and distinct for k in [0, N/2).
	seen := map[uint64]bool{}
	for k := 0; k < r.N/2; k++ {
		g := r.GaloisElementForRotation(k)
		if g%2 == 0 {
			t.Fatalf("even galois element %d", g)
		}
		if seen[g] {
			t.Fatalf("repeated galois element %d at k=%d", g, k)
		}
		seen[g] = true
	}
}

func TestSamplerDeterminism(t *testing.T) {
	r := NewRing(6, 7681)
	a, b := r.NewPoly(), r.NewPoly()
	NewSampler(99).UniformPoly(r, a)
	NewSampler(99).UniformPoly(r, b)
	if !r.Equal(a, b) {
		t.Error("same seed should give same polynomial")
	}
	NewSampler(100).UniformPoly(r, b)
	if r.Equal(a, b) {
		t.Error("different seeds should differ")
	}
}

func TestTernaryAndGaussianSamplers(t *testing.T) {
	r := NewRing(10, GenerateNTTPrimes(30, 10, 1)[0])
	s := NewSampler(30)
	p := r.NewPoly()
	s.TernaryPoly(r, p)
	counts := map[uint64]int{}
	for _, v := range p {
		counts[v]++
	}
	if len(counts) != 3 {
		t.Fatalf("ternary sampler produced %d distinct values", len(counts))
	}
	for v := range counts {
		if v != 0 && v != 1 && v != r.Mod.Q-1 {
			t.Fatalf("ternary sampler produced %d", v)
		}
	}
	// Each of the three values should appear with roughly probability 1/3.
	for v, c := range counts {
		if c < r.N/5 || c > r.N/2 {
			t.Errorf("ternary value %d count %d far from N/3=%d", v, c, r.N/3)
		}
	}

	g := s.GaussianSigned(4096, DefaultSigma)
	var sum, sumSq float64
	for _, v := range g {
		if v < -20 || v > 20 {
			t.Fatalf("gaussian sample %d outside 6-sigma truncation", v)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / float64(len(g))
	if mean < -0.3 || mean > 0.3 {
		t.Errorf("gaussian mean %f too far from 0", mean)
	}
	variance := sumSq/float64(len(g)) - mean*mean
	if variance < 7 || variance > 14 { // sigma^2 = 10.24
		t.Errorf("gaussian variance %f far from %f", variance, DefaultSigma*DefaultSigma)
	}
}

func TestBinarySigned(t *testing.T) {
	s := NewSampler(31)
	v := s.BinarySigned(1000)
	ones := 0
	for _, x := range v {
		if x != 0 && x != 1 {
			t.Fatalf("binary sampler produced %d", x)
		}
		ones += int(x)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("binary sampler unbalanced: %d ones / 1000", ones)
	}
}

func TestSignedToPolyRoundTrip(t *testing.T) {
	r := NewRing(5, 7681)
	v := []int64{0, 1, -1, 5, -5, 3000, -3000, 0, 2, -2, 7, -7, 100, -100, 1, -1,
		0, 1, -1, 5, -5, 3000, -3000, 0, 2, -2, 7, -7, 100, -100, 1, -1}
	p := r.NewPoly()
	SignedToPoly(r, v, p)
	for i, want := range v {
		if got := CenteredRep(p[i], r.Mod.Q); got != want {
			t.Errorf("coefficient %d: got %d want %d", i, got, want)
		}
	}
}
