//go:build amd64 && !purego

// AVX2 coefficient-sweep kernels: the fixed-shift Barrett Hadamard
// product/MAC (external product and key-switch digit accumulation), the
// Shoup fixed-operand scalar multiply (rescale, ModDown, INTT's N^{-1}
// sweep), the basis-conversion Shoup MAC, and the add/sub sweeps. Each
// processes len(out)/4 whole 4-lane groups — the Go wrappers truncate to a
// multiple of the vector width and run the scalar loop on the tail — and
// every kernel reads a full lane group before writing it, so exact
// aliasing (out == a or out == b) behaves like the scalar loops.
//
// Register conventions: DI out, SI a, DX b (when present), CX lane-group
// countdown; Y15 q, Y13 0xFFFFFFFF lane mask, Y12/Y11/Y10 broadcast
// constants per kernel.

#include "textflag.h"
#include "mul64_amd64.h"

// func mulCoeffsBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint)
//
// out[i] = a[i]*b[i] mod q via the per-prime fixed-shift Barrett form:
//   hi:lo = a*b;  xs = hi<<(64-s) | lo>>s;  qest = mulhi(xs, mu)
//   r = lo - qest*q, then at most two conditional subtractions.
// The lane-wise quotient estimate inherits the scalar proof: operands are
// canonical, so x < q^2 and the underestimate is at most 2.
TEXT ·mulCoeffsBarrettAVX2(SB), NOSPLIT, $0-96
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   mulcDone

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	MOVQ mu+80(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y12    // mu
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask
	MOVQ shift+88(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // s
	MOVQ $64, BX
	SUBQ AX, BX
	VMOVQ BX, X0
	VPBROADCASTQ X0, Y10    // 64 - s

mulcLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	MULFULL64(Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, Y13)  // Y2:Y3 = a*b
	VPSRLVQ Y11, Y3, Y4     // lo >> s
	VPSLLVQ Y10, Y2, Y5     // hi << (64-s)
	VPOR    Y5, Y4, Y4      // xs = floor(x / 2^s)
	MULHI64(Y4, Y12, Y5, Y6, Y7, Y8, Y9, Y13)       // qest
	MULLO64(Y5, Y15, Y6, Y7, Y8)                    // qest*q mod 2^64
	VPSUBQ  Y6, Y3, Y3      // r in [0, 3q)
	CSUB(Y3, Y15, Y6)
	CSUB(Y3, Y15, Y6)
	VMOVDQU Y3, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  mulcLoop

mulcDone:
	VZEROUPPER
	RET

// func mulCoeffsAndAddBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint)
//
// out[i] = (out[i] + a[i]*b[i] mod q) mod q — the MAC form of the kernel
// above, with the accumulate folded by one more conditional subtraction.
TEXT ·mulCoeffsAndAddBarrettAVX2(SB), NOSPLIT, $0-96
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   maccDone

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	MOVQ mu+80(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y12    // mu
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask
	MOVQ shift+88(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // s
	MOVQ $64, BX
	SUBQ AX, BX
	VMOVQ BX, X0
	VPBROADCASTQ X0, Y10    // 64 - s

maccLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	MULFULL64(Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, Y13)  // Y2:Y3 = a*b
	VPSRLVQ Y11, Y3, Y4
	VPSLLVQ Y10, Y2, Y5
	VPOR    Y5, Y4, Y4      // xs
	MULHI64(Y4, Y12, Y5, Y6, Y7, Y8, Y9, Y13)       // qest
	MULLO64(Y5, Y15, Y6, Y7, Y8)                    // qest*q
	VPSUBQ  Y6, Y3, Y3      // p in [0, 3q)
	CSUB(Y3, Y15, Y6)
	CSUB(Y3, Y15, Y6)       // p canonical
	VMOVDQU (DI), Y0        // accumulator
	VPADDQ  Y3, Y0, Y3      // s = out + p < 2q
	CSUB(Y3, Y15, Y6)
	VMOVDQU Y3, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  maccLoop

maccDone:
	VZEROUPPER
	RET

// func mulScalarShoupAVX2(out, a []uint64, q, c, cShoup uint64)
//
// out[i] = a[i]*c mod q via lazy Shoup plus one conditional subtraction.
// Correct for any a[i] < 2^63 (the INTT final sweep feeds it lazy-domain
// values in [0, 2q)); canonical output.
TEXT ·mulScalarShoupAVX2(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   mulsDone

	MOVQ q+48(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	MOVQ c+56(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y12    // c
	MOVQ cShoup+64(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // cShoup
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask

mulsLoop:
	VMOVDQU (SI), Y0
	MULHI64(Y0, Y11, Y3, Y4, Y5, Y6, Y7, Y13)  // mulhi(x, cShoup)
	MULLO64(Y0, Y12, Y4, Y5, Y6)               // x*c mod 2^64
	MULLO64(Y3, Y15, Y5, Y6, Y7)               // mulhi*q mod 2^64
	VPSUBQ Y5, Y4, Y4       // lazy Shoup in [0, 2q)
	CSUB(Y4, Y15, Y6)       // canonical
	VMOVDQU Y4, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  mulsLoop

mulsDone:
	VZEROUPPER
	RET

// func macShoupAVX2(out, a []uint64, q, w, wShoup uint64)
//
// out[i] = (out[i] + a[i]*w mod q) mod q — the basis-conversion inner MAC
// (rns.ExtendSelectedWith). Same eagerly-canonical accumulation as the
// scalar loop: reduce the Shoup product first, then one fold after the add.
TEXT ·macShoupAVX2(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   macsDone

	MOVQ q+48(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	MOVQ w+56(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y12    // w
	MOVQ wShoup+64(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // wShoup
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask

macsLoop:
	VMOVDQU (SI), Y0
	MULHI64(Y0, Y11, Y3, Y4, Y5, Y6, Y7, Y13)
	MULLO64(Y0, Y12, Y4, Y5, Y6)
	MULLO64(Y3, Y15, Y5, Y6, Y7)
	VPSUBQ Y5, Y4, Y4       // r lazy in [0, 2q)
	CSUB(Y4, Y15, Y6)       // r canonical
	VMOVDQU (DI), Y0
	VPADDQ Y4, Y0, Y4       // s = out + r < 2q
	CSUB(Y4, Y15, Y6)
	VMOVDQU Y4, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  macsLoop

macsDone:
	VZEROUPPER
	RET

// func addVecAVX2(out, a, b []uint64, q uint64)
TEXT ·addVecAVX2(SB), NOSPLIT, $0-80
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   addvDone

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q

addvLoop:
	VMOVDQU (SI), Y0
	VMOVDQU (DX), Y1
	VPADDQ Y1, Y0, Y0       // c = a + b < 2q
	CSUB(Y0, Y15, Y2)
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  addvLoop

addvDone:
	VZEROUPPER
	RET

// func subVecAVX2(out, a, b []uint64, q uint64)
TEXT ·subVecAVX2(SB), NOSPLIT, $0-80
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), DX
	MOVQ out_len+8(FP), CX
	SHRQ $2, CX
	JZ   subvDone

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q

subvLoop:
	VMOVDQU (SI), Y0        // a
	VMOVDQU (DX), Y1        // b
	VPSUBQ Y1, Y0, Y2       // c = a - b (wraps when b > a)
	CADDLT(Y2, Y0, Y1, Y15, Y3)  // c += q where a < b
	VMOVDQU Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  subvLoop

subvDone:
	VZEROUPPER
	RET
