//go:build amd64 && !purego

// AVX2 butterfly stage kernels for the negacyclic NTT/INTT. Each function
// runs ONE Cooley-Tukey (forward) or Gentleman-Sande (inverse) stage over
// the whole polynomial, vectorized 4 butterflies at a time. They are only
// called for stages whose block length t is >= 4: t is a power of two, so
// every block is then a whole number of 4-lane groups and no tail handling
// is needed here (the t=2 and t=1 edge stages stay on the scalar path, see
// ntt.go). The arithmetic is exactly the scalar butterflies' — same Harvey
// lazy intervals ([0,4q) into a forward stage, [0,2q) between inverse
// stages), same reduction order — so the outputs are bit-identical.
//
// Register conventions (all four kernels):
//   DI  a-side block pointer      SI  twiddle table pointer (at [m] / [h])
//   R8  Shoup-companion pointer   R9  twiddle count (m or h)
//   R10 block half-length t       R11 twiddle index i
//   R13 b-side block pointer      CX  inner countdown (t/4 groups)
//   Y15 q broadcast, Y14 2q broadcast, Y13 0xFFFFFFFF lane mask

#include "textflag.h"
#include "mul64_amd64.h"

// func nttFwdStepAVX2(p []uint64, psi, psiShoup []uint64, q uint64, m, t int)
//
// Forward Shoup-twiddle stage: for each twiddle i < m, block at j1 = 2*i*t,
//   u = fold2q(a[j]);  v' = v*w - mulhi(v, wS)*q   (lazy Shoup, < 2q)
//   a[j] = u + v';  b[j] = u + 2q - v'             (both < 4q)
TEXT ·nttFwdStepAVX2(SB), NOSPLIT, $0-96
	MOVQ p_base+0(FP), DI
	MOVQ psi_base+24(FP), SI
	MOVQ psiShoup_base+48(FP), R8
	MOVQ m+80(FP), R9
	MOVQ t+88(FP), R10

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	ADDQ AX, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y14    // 2q
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask

	LEAQ (SI)(R9*8), SI     // &psi[m]
	LEAQ (R8)(R9*8), R8     // &psiShoup[m]
	XORQ R11, R11           // i = 0

fwdILoop:
	CMPQ R11, R9
	JGE  fwdDone
	VPBROADCASTQ (SI)(R11*8), Y12    // w
	VPBROADCASTQ (R8)(R11*8), Y11    // wShoup
	LEAQ (DI)(R10*8), R13   // b = a + t
	MOVQ R10, CX

fwdJLoop:
	VMOVDQU (DI), Y0        // u (raw, < 4q)
	VMOVDQU (R13), Y1       // v (< 4q)
	CSUB(Y0, Y14, Y2)       // u in [0, 2q)
	MULHI64(Y1, Y11, Y3, Y4, Y5, Y6, Y7, Y13)  // Y3 = mulhi(v, wS)
	MULLO64(Y1, Y12, Y4, Y5, Y6)               // Y4 = v*w mod 2^64
	MULLO64(Y3, Y15, Y5, Y6, Y7)               // Y5 = mulhi*q mod 2^64
	VPSUBQ Y5, Y4, Y4       // v' in [0, 2q)
	VPADDQ Y4, Y0, Y1       // a' = u + v' < 4q
	VMOVDQU Y1, (DI)
	VPSUBQ Y4, Y14, Y2      // 2q - v'
	VPADDQ Y2, Y0, Y2       // b' = u + 2q - v' < 4q
	VMOVDQU Y2, (R13)
	ADDQ $32, DI
	ADDQ $32, R13
	SUBQ $4, CX
	JNZ  fwdJLoop

	LEAQ (DI)(R10*8), DI    // skip the b half: next block start
	INCQ R11
	JMP  fwdILoop

fwdDone:
	VZEROUPPER
	RET

// func nttInvStepAVX2(p []uint64, psiInv, psiInvShoup []uint64, q uint64, h, t int)
//
// Inverse Shoup-twiddle stage: for each twiddle i < h, block at j1 = 2*i*t,
//   a[j] = fold2q(u + v);  b[j] = (u + 2q - v)*w - mulhi(...)*q  (< 2q)
TEXT ·nttInvStepAVX2(SB), NOSPLIT, $0-96
	MOVQ p_base+0(FP), DI
	MOVQ psiInv_base+24(FP), SI
	MOVQ psiInvShoup_base+48(FP), R8
	MOVQ h+80(FP), R9
	MOVQ t+88(FP), R10

	MOVQ q+72(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	ADDQ AX, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y14    // 2q
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask

	LEAQ (SI)(R9*8), SI     // &psiInv[h]
	LEAQ (R8)(R9*8), R8     // &psiInvShoup[h]
	XORQ R11, R11           // i = 0

invILoop:
	CMPQ R11, R9
	JGE  invDone
	VPBROADCASTQ (SI)(R11*8), Y12    // w
	VPBROADCASTQ (R8)(R11*8), Y11    // wShoup
	LEAQ (DI)(R10*8), R13   // b = a + t
	MOVQ R10, CX

invJLoop:
	VMOVDQU (DI), Y0        // u (< 2q)
	VMOVDQU (R13), Y1       // v (< 2q)
	VPADDQ Y1, Y0, Y2       // c = u + v < 4q
	CSUB(Y2, Y14, Y3)       // c in [0, 2q)
	VMOVDQU Y2, (DI)
	VPSUBQ Y1, Y14, Y2      // 2q - v
	VPADDQ Y2, Y0, Y0       // d = u + 2q - v < 4q
	MULHI64(Y0, Y11, Y3, Y4, Y5, Y6, Y7, Y13)  // Y3 = mulhi(d, wS)
	MULLO64(Y0, Y12, Y4, Y5, Y6)               // Y4 = d*w mod 2^64
	MULLO64(Y3, Y15, Y5, Y6, Y7)               // Y5 = mulhi*q mod 2^64
	VPSUBQ Y5, Y4, Y4       // lazy Shoup in [0, 2q)
	VMOVDQU Y4, (R13)
	ADDQ $32, DI
	ADDQ $32, R13
	SUBQ $4, CX
	JNZ  invJLoop

	LEAQ (DI)(R10*8), DI
	INCQ R11
	JMP  invILoop

invDone:
	VZEROUPPER
	RET

// func nttFwdStepMontAVX2(p []uint64, psiMont []uint64, q, qInv uint64, m, t int)
//
// Forward Montgomery-twiddle stage: the butterfly multiplier is MRedLazy
// (v*w*2^-64 mod q, result < 2q), inlined per lane:
//   hi:lo = v*w;  u2 = lo*qInv mod 2^64;  r = hi + mulhi(u2, q) + (lo != 0)
// Extra pinned registers: Y12 w (Montgomery domain), Y11 qInv, Y10 ones.
TEXT ·nttFwdStepMontAVX2(SB), NOSPLIT, $0-80
	MOVQ p_base+0(FP), DI
	MOVQ psiMont_base+24(FP), SI
	MOVQ m+64(FP), R9
	MOVQ t+72(FP), R10

	MOVQ q+48(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	ADDQ AX, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y14    // 2q
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask
	MOVQ qInv+56(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // -q^{-1} mod 2^64
	MOVQ $1, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y10    // ones

	LEAQ (SI)(R9*8), SI     // &psiMont[m]
	XORQ R11, R11

fwdMontILoop:
	CMPQ R11, R9
	JGE  fwdMontDone
	VPBROADCASTQ (SI)(R11*8), Y12    // w (Montgomery domain, < q)
	LEAQ (DI)(R10*8), R13
	MOVQ R10, CX

fwdMontJLoop:
	VMOVDQU (DI), Y0        // u (< 4q)
	VMOVDQU (R13), Y1       // v (< 4q)
	CSUB(Y0, Y14, Y2)       // u in [0, 2q)
	MULFULL64(Y1, Y12, Y2, Y3, Y4, Y5, Y6, Y7, Y13)  // Y2:Y3 = v*w
	MULLO64(Y3, Y11, Y4, Y5, Y6)                     // Y4 = lo*qInv mod 2^64
	MULHI64(Y4, Y15, Y5, Y6, Y7, Y8, Y9, Y13)        // Y5 = mulhi(u2, q)
	VPADDQ Y5, Y2, Y2       // hi + h
	VPXOR Y6, Y6, Y6
	VPCMPEQQ Y6, Y3, Y7     // -1 where lo == 0
	VPADDQ Y10, Y2, Y2      // +1 ...
	VPADDQ Y7, Y2, Y2       // ... cancelled where lo == 0 → v' = MRedLazy < 2q
	VPADDQ Y2, Y0, Y1       // a' = u + v'
	VMOVDQU Y1, (DI)
	VPSUBQ Y2, Y14, Y3      // 2q - v'
	VPADDQ Y3, Y0, Y3       // b' = u + 2q - v'
	VMOVDQU Y3, (R13)
	ADDQ $32, DI
	ADDQ $32, R13
	SUBQ $4, CX
	JNZ  fwdMontJLoop

	LEAQ (DI)(R10*8), DI
	INCQ R11
	JMP  fwdMontILoop

fwdMontDone:
	VZEROUPPER
	RET

// func nttInvStepMontAVX2(p []uint64, psiInvMont []uint64, q, qInv uint64, h, t int)
TEXT ·nttInvStepMontAVX2(SB), NOSPLIT, $0-80
	MOVQ p_base+0(FP), DI
	MOVQ psiInvMont_base+24(FP), SI
	MOVQ h+64(FP), R9
	MOVQ t+72(FP), R10

	MOVQ q+48(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y15    // q
	ADDQ AX, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y14    // 2q
	MOVQ $0x00000000FFFFFFFF, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y13    // lane mask
	MOVQ qInv+56(FP), AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y11    // -q^{-1} mod 2^64
	MOVQ $1, AX
	VMOVQ AX, X0
	VPBROADCASTQ X0, Y10    // ones

	LEAQ (SI)(R9*8), SI     // &psiInvMont[h]
	XORQ R11, R11

invMontILoop:
	CMPQ R11, R9
	JGE  invMontDone
	VPBROADCASTQ (SI)(R11*8), Y12    // w (Montgomery domain, < q)
	LEAQ (DI)(R10*8), R13
	MOVQ R10, CX

invMontJLoop:
	VMOVDQU (DI), Y0        // u (< 2q)
	VMOVDQU (R13), Y1       // v (< 2q)
	VPADDQ Y1, Y0, Y2       // c = u + v < 4q
	CSUB(Y2, Y14, Y3)       // c in [0, 2q)
	VMOVDQU Y2, (DI)
	VPSUBQ Y1, Y14, Y2      // 2q - v
	VPADDQ Y2, Y0, Y0       // d = u + 2q - v < 4q
	MULFULL64(Y0, Y12, Y2, Y3, Y4, Y5, Y6, Y7, Y13)  // Y2:Y3 = d*w
	MULLO64(Y3, Y11, Y4, Y5, Y6)                     // Y4 = lo*qInv mod 2^64
	MULHI64(Y4, Y15, Y5, Y6, Y7, Y8, Y9, Y13)        // Y5 = mulhi(u2, q)
	VPADDQ Y5, Y2, Y2       // hi + h
	VPXOR Y6, Y6, Y6
	VPCMPEQQ Y6, Y3, Y7     // -1 where lo == 0
	VPADDQ Y10, Y2, Y2
	VPADDQ Y7, Y2, Y2       // MRedLazy(d, w) < 2q
	VMOVDQU Y2, (R13)
	ADDQ $32, DI
	ADDQ $32, R13
	SUBQ $4, CX
	JNZ  invMontJLoop

	LEAQ (DI)(R10*8), DI
	INCQ R11
	JMP  invMontILoop

invMontDone:
	VZEROUPPER
	RET
