package ring

import (
	"math"
	"math/rand/v2"
)

// DefaultSigma is the standard deviation of the RLWE error distribution used
// throughout the library (the value used by essentially all CKKS/TFHE
// deployments and assumed by the paper's 128-bit-security parameter claims).
const DefaultSigma = 3.2

// Sampler draws all randomness for key generation and encryption from a
// seeded ChaCha8 stream, so every test and example in this repository is
// fully deterministic given its seed.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler creates a deterministic sampler from a 64-bit seed.
func NewSampler(seed uint64) *Sampler {
	var key [32]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(seed >> (8 * i))
		key[i+8] = byte(seed>>(8*i)) ^ 0x5a
		key[i+16] = byte(seed>>(8*i)) ^ 0xa5
		key[i+24] = byte(seed>>(8*i)) ^ 0xc3
	}
	return &Sampler{rng: rand.New(rand.NewChaCha8(key))}
}

// Uint64 returns a uniform 64-bit value.
func (s *Sampler) Uint64() uint64 { return s.rng.Uint64() }

// UniformMod returns a uniform value in [0, q).
func (s *Sampler) UniformMod(q uint64) uint64 { return s.rng.Uint64N(q) }

// UniformPoly fills p with uniform residues mod q.
func (s *Sampler) UniformPoly(r *Ring, p Poly) {
	q := r.Mod.Q
	for i := range p {
		p[i] = s.rng.Uint64N(q)
	}
}

// TernaryPoly fills p with a uniform ternary secret: each coefficient is
// -1, 0 or 1 with probability 1/3. The paper explicitly avoids sparse secret
// keys (§II), so this is the CKKS key distribution used here.
func (s *Sampler) TernaryPoly(r *Ring, p Poly) {
	q := r.Mod.Q
	for i := range p {
		switch s.rng.Uint64N(3) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = 1
		default:
			p[i] = q - 1
		}
	}
}

// TernarySigned returns a length-n ternary secret as signed values in
// {-1, 0, 1}, used where the same secret must be re-encoded under several
// moduli (RNS keys, LWE extraction).
func (s *Sampler) TernarySigned(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		switch s.rng.Uint64N(3) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = 1
		default:
			out[i] = -1
		}
	}
	return out
}

// BinarySigned returns a length-n binary secret in {0, 1}. The LWE secret of
// dimension n_t in the scheme-switching pipeline is binary so that the
// wrap-around multiple stays within the valid range of the negacyclic test
// vector (‖s‖₁ ≤ n_t ≪ N/2).
func (s *Sampler) BinarySigned(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(s.rng.Uint64N(2))
	}
	return out
}

// GaussianSigned returns n samples from a rounded Gaussian with standard
// deviation sigma, truncated at 6 sigma.
func (s *Sampler) GaussianSigned(n int, sigma float64) []int64 {
	out := make([]int64, n)
	bound := int64(math.Ceil(6 * sigma))
	for i := range out {
		for {
			v := int64(math.Round(s.rng.NormFloat64() * sigma))
			if v >= -bound && v <= bound {
				out[i] = v
				break
			}
		}
	}
	return out
}

// GaussianPoly fills p with a rounded Gaussian error mod q.
func (s *Sampler) GaussianPoly(r *Ring, sigma float64, p Poly) {
	q := r.Mod.Q
	for i := range p {
		v := int64(math.Round(s.rng.NormFloat64() * sigma))
		if v >= 0 {
			p[i] = uint64(v) % q
		} else {
			p[i] = q - uint64(-v)%q
		}
	}
}

// SignedToPoly encodes a signed integer vector into residues mod q.
func SignedToPoly(r *Ring, v []int64, p Poly) {
	q := r.Mod.Q
	for i := range p {
		x := v[i]
		if x >= 0 {
			p[i] = uint64(x) % q
		} else {
			p[i] = q - uint64(-x)%q
		}
	}
}

// CenteredRep returns the signed representative of x mod q in (-q/2, q/2].
func CenteredRep(x, q uint64) int64 {
	if x > q/2 {
		return int64(x) - int64(q)
	}
	return int64(x)
}
