package ring

// SIMD dispatch. The coefficient sweeps that dominate the CPU profile — the
// Harvey lazy-reduction NTT/INTT butterfly stages, the fixed-shift Barrett
// MAC, and the Shoup fixed-operand scalar sweeps — each exist in two
// bit-identical forms: the portable scalar loops (the universal fallback,
// always compiled, selected on non-amd64 targets, under the `purego` build
// tag, on hosts without AVX2, or by an explicit override) and hand-written
// AVX2 assembly processing four 64-bit lanes per step. Selection happens
// once at package init (a CPUID/XGETBV probe plus the HEAP_NOSIMD
// environment variable) and can be changed at runtime through SetSIMD —
// the binaries expose it as -nosimd so a production regression can be
// bisected to the kernel set without rebuilding.
//
// The vector paths are required to be bit-identical to the scalar ones —
// not merely congruent modulo q. The Harvey lazy bounds (operands in
// [0, 4q), q < 2^61, every intermediate below 2^63 so signed 64-bit lane
// compares are exact) and the ≤2-correction fixed-shift Barrett argument
// carry over lane-wise; see DESIGN.md "Vectorized kernels" for the bound
// accounting and internal/ring/simd_test.go + FuzzVectorVsScalarKernels for
// the byte-for-byte equivalence locks.

// SIMDLevel reports the ISA level the ring kernels currently dispatch to:
// "avx2" when the vector paths are active, "none" when every kernel runs
// the portable scalar loops.
func SIMDLevel() string {
	if simdActive() {
		return "avx2"
	}
	return "none"
}
