package ring

import "math/bits"

// mulMod64 returns a·b mod q without precomputed constants (slow path,
// used only during prime generation).
func mulMod64(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi%q, lo, q)
	return r
}

func powMod64(a, e, q uint64) uint64 {
	r := uint64(1)
	a %= q
	for e > 0 {
		if e&1 == 1 {
			r = mulMod64(r, a, q)
		}
		a = mulMod64(a, a, q)
		e >>= 1
	}
	return r
}

// IsPrime reports whether n is prime, using the deterministic Miller-Rabin
// witness set that is exact for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod64(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// GenerateNTTPrimes returns count distinct primes of approximately the given
// bit size that are congruent to 1 modulo 2N, scanning downward from 2^bits.
// Such primes admit a primitive 2N-th root of unity, enabling the negacyclic
// NTT. The paper's parameter set uses 36-bit primes (§III-C); tests and the
// conventional-bootstrapping baseline use larger ones.
func GenerateNTTPrimes(bits, logN, count int) []uint64 {
	if bits < logN+2 || bits > 61 {
		panic("ring: prime bit size out of range")
	}
	twoN := uint64(1) << (logN + 1)
	primes := make([]uint64, 0, count)
	// Largest candidate ≡ 1 mod 2N strictly below 2^bits.
	c := (uint64(1)<<bits - 1) / twoN * twoN
	c++
	lower := uint64(1) << (bits - 1)
	for c > lower && len(primes) < count {
		if IsPrime(c) {
			primes = append(primes, c)
		}
		c -= twoN
	}
	if len(primes) < count {
		panic("ring: not enough NTT primes in range")
	}
	return primes
}

// GenerateNTTPrimesUp is like GenerateNTTPrimes but scans upward from
// 2^bits, which keeps the returned set disjoint from the downward scan.
// It is used for auxiliary/special moduli.
func GenerateNTTPrimesUp(bits, logN, count int) []uint64 {
	if bits < logN+2 || bits > 60 {
		panic("ring: prime bit size out of range")
	}
	twoN := uint64(1) << (logN + 1)
	primes := make([]uint64, 0, count)
	c := (uint64(1)<<bits)/twoN*twoN + 1
	upper := uint64(1) << (bits + 1)
	for c < upper && len(primes) < count {
		if IsPrime(c) {
			primes = append(primes, c)
		}
		c += twoN
	}
	if len(primes) < count {
		panic("ring: not enough NTT primes in range")
	}
	return primes
}

// PrimitiveRoot2N returns a primitive 2N-th root of unity modulo q,
// where q ≡ 1 (mod 2N) and N = 2^logN. The returned psi satisfies
// psi^N ≡ -1 (mod q).
func PrimitiveRoot2N(q uint64, logN int) uint64 {
	twoN := uint64(1) << (logN + 1)
	if (q-1)%twoN != 0 {
		panic("ring: modulus not NTT-friendly for this ring degree")
	}
	exp := (q - 1) / twoN
	// Deterministic scan over small candidates keeps key generation
	// reproducible across runs.
	for x := uint64(2); x < q; x++ {
		psi := powMod64(x, exp, q)
		if psi == 0 || psi == 1 {
			continue
		}
		if powMod64(psi, twoN/2, q) == q-1 { // psi^N = -1 ⇒ order exactly 2N
			return psi
		}
	}
	panic("ring: no primitive root found")
}
