// Lane-wise 64-bit multiply building blocks for the AVX2 kernels.
//
// AVX2 has no 64x64 multiply; the widest unsigned form is VPMULUDQ
// (32x32->64 per lane). Every macro below assembles the needed 64-bit
// product from 32-bit partial products, schoolbook style, on 4 independent
// lanes. Writing them once keeps the butterfly/MAC kernels short and keeps
// the carry discipline in one audited place:
//
//   a = a1*2^32 + a0, b = b1*2^32 + b0
//   p00 = a0*b0, p01 = a0*b1, p10 = a1*b0, p11 = a1*b1
//   u1 = p10 + (p00 >> 32)        // ≤ (2^32-1)^2 + 2^32-1 < 2^64, no overflow
//   u2 = p01 + (u1 & M)           // same bound, no overflow
//   hi = p11 + (u1 >> 32) + (u2 >> 32)
//   lo = (u2 << 32) + (p00 & M)
//
// The u1/u2 chain folds each carry as it appears instead of masking and
// re-splitting every partial product, which is several fewer vector ops per
// multiply than the textbook mid-word assembly.
//
// MASK must hold 0x00000000FFFFFFFF in every lane. Inputs are preserved
// unless a register is also named as an output or temp.

// MULLO64(A, B, LO, T1, T2): LO = (A*B) mod 2^64 per lane.
// Only the partial products that land below bit 64 are formed (3 multiplies).
#define MULLO64(A, B, LO, T1, T2) \
	VPMULUDQ A, B, LO;  \
	VPSRLQ   $32, A, T1; \
	VPMULUDQ B, T1, T1; \
	VPSRLQ   $32, B, T2; \
	VPMULUDQ A, T2, T2; \
	VPADDQ   T2, T1, T1; \
	VPSLLQ   $32, T1, T1; \
	VPADDQ   T1, LO, LO

// MULHI64(A, B, HI, T1, T2, T3, T4, MASK): HI = floor(A*B / 2^64) per lane.
#define MULHI64(A, B, HI, T1, T2, T3, T4, MASK) \
	VPSRLQ   $32, A, T1; \
	VPSRLQ   $32, B, T2; \
	VPMULUDQ B, T1, T3; \
	VPMULUDQ T2, A, T4; \
	VPMULUDQ T2, T1, HI; \
	VPMULUDQ B, A, T2; \
	VPSRLQ   $32, T2, T2; \
	VPADDQ   T2, T3, T3; \
	VPAND    MASK, T3, T1; \
	VPSRLQ   $32, T3, T3; \
	VPADDQ   T1, T4, T4; \
	VPSRLQ   $32, T4, T4; \
	VPADDQ   T3, HI, HI; \
	VPADDQ   T4, HI, HI

// MULFULL64(A, B, HI, LO, T1, T2, T3, T4, MASK): HI:LO = A*B per lane.
#define MULFULL64(A, B, HI, LO, T1, T2, T3, T4, MASK) \
	VPSRLQ   $32, A, T1; \
	VPSRLQ   $32, B, T2; \
	VPMULUDQ B, T1, T3; \
	VPMULUDQ T2, A, T4; \
	VPMULUDQ T2, T1, HI; \
	VPMULUDQ B, A, LO; \
	VPSRLQ   $32, LO, T1; \
	VPADDQ   T1, T3, T3; \
	VPAND    MASK, T3, T1; \
	VPSRLQ   $32, T3, T3; \
	VPADDQ   T1, T4, T4; \
	VPADDQ   T3, HI, HI; \
	VPSRLQ   $32, T4, T2; \
	VPADDQ   T2, HI, HI; \
	VPSLLQ   $32, T4, T4; \
	VPAND    MASK, LO, LO; \
	VPADDQ   T4, LO, LO

// CSUB(X, BOUND, T): X -= BOUND where X >= BOUND, per lane — the branchless
// conditional subtraction every lazy interval fold and canonical correction
// compiles to. Uses the signed VPCMPGTQ, which is exact here because every
// value compared stays below 2^63 (q < 2^61, operands < 4q).
#define CSUB(X, BOUND, T) \
	VPCMPGTQ X, BOUND, T; \
	VPANDN   BOUND, T, T; \
	VPSUBQ   T, X, X

// CADDLT(X, A, B, Q, T): X += Q where A < B, per lane (the borrow fold of
// modular subtraction). Same signed-compare argument as CSUB.
#define CADDLT(X, A, B, Q, T) \
	VPCMPGTQ A, B, T; \
	VPAND    Q, T, T; \
	VPADDQ   T, X, X
