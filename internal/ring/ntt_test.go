package ring

import (
	"testing"
	"testing/quick"
)

func testRings(t *testing.T) []*Ring {
	t.Helper()
	return []*Ring{
		NewRing(3, 7681),
		NewRing(4, 12289),
		NewRing(8, GenerateNTTPrimes(30, 8, 1)[0]),
		NewRing(10, GenerateNTTPrimes(36, 10, 1)[0]),
		NewRing(11, GenerateNTTPrimes(55, 11, 1)[0]),
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, r := range testRings(t) {
		s := NewSampler(10)
		p := r.NewPoly()
		s.UniformPoly(r, p)
		orig := p.Copy()
		r.NTT(p)
		r.INTT(p)
		if !r.Equal(p, orig) {
			t.Errorf("logN=%d q=%d: NTT/INTT round trip failed", r.LogN, r.Mod.Q)
		}
	}
}

func TestNTTMatchesNaiveNegacyclicProduct(t *testing.T) {
	for _, r := range testRings(t) {
		if r.LogN > 10 {
			continue // keep the O(N^2) reference fast
		}
		s := NewSampler(11)
		a, b := r.NewPoly(), r.NewPoly()
		s.UniformPoly(r, a)
		s.UniformPoly(r, b)
		want := r.NewPoly()
		r.MulPolyNaive(a, b, want)

		an, bn := a.Copy(), b.Copy()
		r.NTT(an)
		r.NTT(bn)
		got := r.NewPoly()
		r.MulCoeffs(an, bn, got)
		r.INTT(got)
		if !r.Equal(got, want) {
			t.Errorf("logN=%d q=%d: NTT product != naive product", r.LogN, r.Mod.Q)
		}
	}
}

func TestNTTNegacyclicWrap(t *testing.T) {
	// X^{N-1} · X = X^N = -1.
	r := NewRing(4, 12289)
	a, b := r.NewPoly(), r.NewPoly()
	a[r.N-1] = 1
	b[1] = 1
	r.NTT(a)
	r.NTT(b)
	out := r.NewPoly()
	r.MulCoeffs(a, b, out)
	r.INTT(out)
	want := r.NewPoly()
	want[0] = r.Mod.Q - 1
	if !r.Equal(out, want) {
		t.Errorf("X^{N-1}·X != -1: got %v", out[:4])
	}
}

func TestNTTLinearity(t *testing.T) {
	r := NewRing(9, GenerateNTTPrimes(40, 9, 1)[0])
	s := NewSampler(12)
	f := func(seed uint64) bool {
		ss := NewSampler(seed%1000 + 1)
		a, b := r.NewPoly(), r.NewPoly()
		ss.UniformPoly(r, a)
		ss.UniformPoly(r, b)
		sum := r.NewPoly()
		r.Add(a, b, sum)
		r.NTT(sum)
		an, bn := a.Copy(), b.Copy()
		r.NTT(an)
		r.NTT(bn)
		sum2 := r.NewPoly()
		r.Add(an, bn, sum2)
		return r.Equal(sum, sum2)
	}
	_ = s
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNTTOnTheFlyMatchesPrecomputed(t *testing.T) {
	for _, r := range testRings(t) {
		s := NewSampler(13)
		a := r.NewPoly()
		s.UniformPoly(r, a)
		b := a.Copy()
		r.NTT(a)
		r.NTTOnTheFly(b)
		if !r.Equal(a, b) {
			t.Errorf("logN=%d: on-the-fly NTT differs from precomputed", r.LogN)
		}
	}
}

func TestNTTConstantPolynomial(t *testing.T) {
	r := NewRing(6, GenerateNTTPrimes(30, 6, 1)[0])
	p := r.NewPoly()
	p[0] = 42 // constant polynomial
	r.NTT(p)
	for i, v := range p {
		if v != 42 {
			t.Fatalf("NTT of constant should be constant, slot %d = %d", i, v)
		}
	}
}
