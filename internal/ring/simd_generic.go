//go:build !amd64 || purego

package ring

// Pure-Go lane: non-amd64 targets and `-tags purego` builds compile the
// kernels with simdActive pinned false, so every dispatch branch folds away
// and the scalar loops are the only code path. The assembly stubs below
// exist to satisfy the call sites; they are unreachable (guarded by
// simdActive) and panic loudly if a refactor ever breaks that invariant.

// simdActive reports whether the vector kernels are selected: never, on
// this build.
func simdActive() bool { return false }

// SetSIMD is the runtime toggle for the vector kernel set; without compiled
// vector kernels it always reports false and enabling is a no-op.
func SetSIMD(enable bool) bool { return false }

func unreachableSIMD() {
	panic("ring: vector kernel called on a build without SIMD support")
}

func nttFwdStepAVX2(p []uint64, psi, psiShoup []uint64, q uint64, m, t int) { unreachableSIMD() }

func nttInvStepAVX2(p []uint64, psiInv, psiInvShoup []uint64, q uint64, h, t int) {
	unreachableSIMD()
}

func nttFwdStepMontAVX2(p []uint64, psiMont []uint64, q, qInv uint64, m, t int) { unreachableSIMD() }

func nttInvStepMontAVX2(p []uint64, psiInvMont []uint64, q, qInv uint64, h, t int) {
	unreachableSIMD()
}

func mulCoeffsBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint) { unreachableSIMD() }

func mulCoeffsAndAddBarrettAVX2(out, a, b []uint64, q, mu uint64, shift uint) { unreachableSIMD() }

func mulScalarShoupAVX2(out, a []uint64, q, c, cShoup uint64) { unreachableSIMD() }

func macShoupAVX2(out, a []uint64, q, w, wShoup uint64) { unreachableSIMD() }

func addVecAVX2(out, a, b []uint64, q uint64) { unreachableSIMD() }

func subVecAVX2(out, a, b []uint64, q uint64) { unreachableSIMD() }
