package ring

import (
	"math/rand"
	"sync"
	"testing"
)

// simdPrimes is the kernel-equivalence basis plus a 61-bit boundary modulus:
// the vector kernels' signed-compare argument (every compared value < 2^63
// because q < 2^61) is tightest there, so the top of the supported range must
// be in every bit-identity sweep.
func simdPrimes(t testing.TB) []uint64 {
	t.Helper()
	return append(paramsPrimes(t), GenerateNTTPrimes(61, 12, 1)[0])
}

// withVector enables the vector kernels for the duration of the test,
// restoring the prior dispatch state afterwards, and skips when the build or
// host has no vector path (purego tag, non-amd64, AVX2 absent).
func withVector(t *testing.T) {
	t.Helper()
	prev := simdActive()
	if !SetSIMD(true) {
		SetSIMD(prev)
		t.Skip("vector kernels unavailable on this build/host")
	}
	t.Cleanup(func() { SetSIMD(prev) })
}

// lazyFill writes values in [0, bound) with the interval boundaries planted
// in the first slots (bound-1, bound-2, 0, 1, ...) so every run exercises the
// exact edges of the lazy-reduction intervals, then random values.
func lazyFill(rng *rand.Rand, p []uint64, bound uint64) {
	edges := []uint64{bound - 1, bound - 2, 0, 1, bound / 2, bound/2 + 1}
	for i := range p {
		if i < len(edges) {
			p[i] = edges[i] % bound
		} else {
			p[i] = rng.Uint64() % bound
		}
	}
}

// sweepLens covers the tail machinery: below one vector width, exactly one
// width, width±1, and larger mixed cases.
var sweepLens = []int{1, 2, 3, 4, 5, 7, 8, 12, 33, 64, 100}

// TestVectorSweepKernelsMatchScalar is the bit-identity property test for the
// coefficient-sweep kernels: every dispatched entry point is run once with
// the vector path and once with the scalar path on identical inputs —
// including aliased out == a — and the outputs must agree byte for byte.
func TestVectorSweepKernelsMatchScalar(t *testing.T) {
	withVector(t)
	rng := rand.New(rand.NewSource(101))
	for _, q := range simdPrimes(t) {
		r := &Ring{Mod: NewModulus(q)}
		mod := r.Mod
		w := rng.Uint64() % q
		wShoup := mod.ShoupPrecomp(w)
		cases := []struct {
			name string
			// bound on a/b inputs; out starts canonical where the kernel reads it.
			aBound uint64
			run    func(a, b, out Poly)
		}{
			{"Add", q, func(a, b, out Poly) { r.Add(a, b, out) }},
			{"Sub", q, func(a, b, out Poly) { r.Sub(a, b, out) }},
			{"MulCoeffs", q, func(a, b, out Poly) { r.MulCoeffs(a, b, out) }},
			{"MulCoeffsAndAdd", q, func(a, b, out Poly) { r.MulCoeffsAndAdd(a, b, out) }},
			// MulScalar's kernel is documented for any operand < 2^63; the
			// INTT feeds it lazy values, so test the [0, 2q) domain.
			{"MulScalar", 2 * q, func(a, b, out Poly) { r.MulScalar(a, w, out) }},
			{"MACShoupVec", q, func(a, b, out Poly) { mod.MACShoupVec(a, out, w, wShoup) }},
		}
		for _, tc := range cases {
			for _, n := range sweepLens {
				a := make(Poly, n)
				b := make(Poly, n)
				out0 := make(Poly, n)
				lazyFill(rng, a, tc.aBound)
				lazyFill(rng, b, q)
				lazyFill(rng, out0, q)

				want := out0.Copy()
				SetSIMD(false)
				tc.run(a.Copy(), b, want)
				SetSIMD(true)
				got := out0.Copy()
				tc.run(a.Copy(), b, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("q=%d %s n=%d: vector[%d]=%d scalar=%d", q, tc.name, n, i, got[i], want[i])
					}
				}

				// Aliased: out == a (in place), both paths.
				SetSIMD(false)
				aw := a.Copy()
				tc.run(aw, b, aw)
				SetSIMD(true)
				ag := a.Copy()
				tc.run(ag, b, ag)
				for i := range aw {
					if aw[i] != ag[i] {
						t.Fatalf("q=%d %s n=%d aliased: vector[%d]=%d scalar=%d", q, tc.name, n, i, ag[i], aw[i])
					}
				}
			}
		}
	}
}

// TestVectorNTTStageKernelsMatchScalar compares each AVX2 butterfly stage
// kernel directly against its scalar reference, on inputs planted at the
// extreme edges of the Harvey lazy intervals ([0, 4q) into a forward stage,
// [0, 2q) into an inverse stage) — the adversarial domain where a reduction
// that diverges from the scalar order would show.
func TestVectorNTTStageKernelsMatchScalar(t *testing.T) {
	withVector(t)
	rng := rand.New(rand.NewSource(202))
	for _, q := range simdPrimes(t) {
		mod := NewModulus(q)
		for _, n := range []int{8, 32, 256} {
			// Random canonical twiddle-like tables: the stage kernels do not
			// require genuine roots of unity, only w < q with consistent
			// Shoup/Montgomery companions.
			psi := make([]uint64, n)
			psiShoup := make([]uint64, n)
			psiMont := make([]uint64, n)
			for i := range psi {
				psi[i] = rng.Uint64() % q
				psiShoup[i] = mod.ShoupPrecomp(psi[i])
				psiMont[i] = rng.Uint64() % q
			}

			// Forward stages: every (m, t) with t >= 4, Shoup and Montgomery.
			st := n
			for m := 1; m < n>>1; m <<= 1 {
				st >>= 1
				if st < 4 {
					break
				}
				p := make(Poly, n)
				lazyFill(rng, p, 4*q)
				ps, pv := p.Copy(), p.Copy()
				nttFwdStepScalar(ps, psi, psiShoup, q, m, st)
				nttFwdStepAVX2(pv, psi, psiShoup, q, m, st)
				for i := range ps {
					if ps[i] != pv[i] {
						t.Fatalf("q=%d n=%d fwd m=%d t=%d: vector[%d]=%d scalar=%d", q, n, m, st, i, pv[i], ps[i])
					}
				}
				ps, pv = p.Copy(), p.Copy()
				nttFwdStepMontScalar(ps, psiMont, q, mod.MRedQInv, m, st)
				nttFwdStepMontAVX2(pv, psiMont, q, mod.MRedQInv, m, st)
				for i := range ps {
					if ps[i] != pv[i] {
						t.Fatalf("q=%d n=%d fwdMont m=%d t=%d: vector[%d]=%d scalar=%d", q, n, m, st, i, pv[i], ps[i])
					}
				}
			}

			// Inverse stages: every (h, t) with t >= 4.
			it := 2
			for m := n >> 1; m > 1; m >>= 1 {
				h := m >> 1
				if it >= 4 {
					p := make(Poly, n)
					lazyFill(rng, p, 2*q)
					ps, pv := p.Copy(), p.Copy()
					nttInvStepScalar(ps, psi, psiShoup, q, h, it)
					nttInvStepAVX2(pv, psi, psiShoup, q, h, it)
					for i := range ps {
						if ps[i] != pv[i] {
							t.Fatalf("q=%d n=%d inv h=%d t=%d: vector[%d]=%d scalar=%d", q, n, h, it, i, pv[i], ps[i])
						}
					}
					ps, pv = p.Copy(), p.Copy()
					nttInvStepMontScalar(ps, psiMont, q, mod.MRedQInv, h, it)
					nttInvStepMontAVX2(pv, psiMont, q, mod.MRedQInv, h, it)
					for i := range ps {
						if ps[i] != pv[i] {
							t.Fatalf("q=%d n=%d invMont h=%d t=%d: vector[%d]=%d scalar=%d", q, n, h, it, i, pv[i], ps[i])
						}
					}
				}
				it <<= 1
			}
		}
	}
}

// TestVectorTransformsMatchScalar runs every public transform with the vector
// path on and off and requires byte-identical results — the whole-transform
// closure of the per-stage identity above, across ring degrees (including
// degrees small enough that every stage falls back to scalar) and an extra
// 61-bit boundary-modulus ring.
func TestVectorTransformsMatchScalar(t *testing.T) {
	withVector(t)
	rings := testRings(t)
	rings = append(rings, NewRing(12, GenerateNTTPrimes(61, 12, 1)[0]))
	for _, r := range rings {
		s := NewSampler(303)
		p := r.NewPoly()
		s.UniformPoly(r, p)
		sc := NewTwiddleScratch(r.N)
		cases := []struct {
			name string
			f    func(Poly)
		}{
			{"NTT", r.NTT},
			{"NTTLazy", r.NTTLazy},
			{"INTT", r.INTT},
			{"NTTMontgomery", r.NTTMontgomery},
			{"INTTMontgomery", r.INTTMontgomery},
			{"NTTOnTheFly", func(q Poly) { r.NTTOnTheFlyWith(q, sc) }},
		}
		for _, tc := range cases {
			SetSIMD(false)
			want := p.Copy()
			tc.f(want)
			SetSIMD(true)
			got := p.Copy()
			tc.f(got)
			if !r.Equal(want, got) {
				t.Errorf("logN=%d q=%d %s: vector and scalar transforms differ", r.LogN, r.Mod.Q, tc.name)
			}
		}
	}
}

// TestNTTLazySemantics pins the NTTLazy contract on whichever dispatch path
// is active: outputs are in [0, 2q), their residues are exactly NTT's, and
// the inverse transform restores the original polynomial bit for bit.
func TestNTTLazySemantics(t *testing.T) {
	for _, r := range testRings(t) {
		q := r.Mod.Q
		s := NewSampler(404)
		p := r.NewPoly()
		s.UniformPoly(r, p)

		canon := p.Copy()
		r.NTT(canon)
		lazy := p.Copy()
		r.NTTLazy(lazy)
		for i := range lazy {
			if lazy[i] >= 2*q {
				t.Fatalf("logN=%d q=%d: NTTLazy[%d]=%d outside [0, 2q)", r.LogN, q, i, lazy[i])
			}
			if lazy[i]%q != canon[i] {
				t.Fatalf("logN=%d q=%d: NTTLazy[%d]=%d has residue %d, NTT gives %d", r.LogN, q, i, lazy[i], lazy[i]%q, canon[i])
			}
		}
		r.INTT(lazy)
		if !r.Equal(lazy, p) {
			t.Errorf("logN=%d q=%d: INTT(NTTLazy(p)) != p", r.LogN, q)
		}
	}
}

// TestSetSIMDToggleConcurrent toggles the dispatch flag while workers hammer
// NTT/INTT round trips. Run under -race this proves the runtime toggle is
// data-race-free; the round trips prove both paths stay correct mid-flip
// (they compute identical values, so a flip between passes is harmless).
func TestSetSIMDToggleConcurrent(t *testing.T) {
	prev := simdActive()
	defer SetSIMD(prev)
	r := NewRing(8, GenerateNTTPrimes(30, 8, 1)[0])
	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		on := true
		for {
			select {
			case <-stop:
				return
			default:
				SetSIMD(on)
				on = !on
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := NewSampler(uint64(seed))
			p := r.NewPoly()
			for it := 0; it < 50; it++ {
				s.UniformPoly(r, p)
				orig := p.Copy()
				r.NTT(p)
				r.INTT(p)
				for i := range p {
					if p[i] != orig[i] {
						t.Errorf("round trip diverged under concurrent toggling at %d", i)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	flips.Wait()
}

// TestSIMDLevelConsistent pins the obs-facing level string to the dispatch
// state on every build.
func TestSIMDLevelConsistent(t *testing.T) {
	if simdActive() && SIMDLevel() != "avx2" {
		t.Fatalf("SIMD active but level = %q", SIMDLevel())
	}
	if !simdActive() && SIMDLevel() != "none" {
		t.Fatalf("SIMD inactive but level = %q", SIMDLevel())
	}
}
