package ring

import "math/bits"

// Poly is a dense degree-(N-1) polynomial over Z_q, stored as N coefficients.
// Whether a Poly is in coefficient or NTT (evaluation) representation is
// tracked by its owner; the ring operations themselves are representation
// agnostic except where documented.
type Poly []uint64

// Copy returns an independent copy of p.
func (p Poly) Copy() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Zero clears all coefficients in place.
func (p Poly) Zero() {
	for i := range p {
		p[i] = 0
	}
}

// Ring is the negacyclic polynomial ring Z_q[X]/(X^N+1) for a single prime
// modulus q, with all NTT tables precomputed. A multi-limb RNS ring is a
// slice of these (see package rns).
type Ring struct {
	N    int // ring degree, power of two
	LogN int
	Mod  Modulus

	psi    uint64 // primitive 2N-th root of unity
	psiInv uint64

	// Twiddle tables in the bit-reversed order used by the in-place
	// Cooley-Tukey / Gentleman-Sande passes: psiTable[i] = psi^{brv(i)},
	// together with their Shoup companions for the fixed-operand fast path
	// and their Montgomery-domain images (psi^{brv(i)}·2^64 mod q) for the
	// MRed butterfly mode — both per-prime forms derived once at ring build.
	psiTable         []uint64
	psiTableShoup    []uint64
	psiTableMont     []uint64
	psiInvTable      []uint64
	psiInvTableShoup []uint64
	psiInvTableMont  []uint64

	nInv      uint64 // N^{-1} mod q
	nInvShoup uint64
}

// NewRing constructs the ring Z_q[X]/(X^N+1). q must be prime with
// q ≡ 1 mod 2N.
func NewRing(logN int, q uint64) *Ring {
	n := 1 << logN
	r := &Ring{N: n, LogN: logN, Mod: NewModulus(q)}
	r.psi = PrimitiveRoot2N(q, logN)
	r.psiInv = r.Mod.InvMod(r.psi)

	r.psiTable = make([]uint64, n)
	r.psiTableShoup = make([]uint64, n)
	r.psiTableMont = make([]uint64, n)
	r.psiInvTable = make([]uint64, n)
	r.psiInvTableShoup = make([]uint64, n)
	r.psiInvTableMont = make([]uint64, n)

	fillTwiddles(r.Mod, r.psi, logN, r.psiTable)
	fillTwiddles(r.Mod, r.psiInv, logN, r.psiInvTable)
	for i := 0; i < n; i++ {
		r.psiTableShoup[i] = r.Mod.ShoupPrecomp(r.psiTable[i])
		r.psiInvTableShoup[i] = r.Mod.ShoupPrecomp(r.psiInvTable[i])
		r.psiTableMont[i] = r.Mod.MForm(r.psiTable[i])
		r.psiInvTableMont[i] = r.Mod.MForm(r.psiInvTable[i])
	}
	r.nInv = r.Mod.InvMod(uint64(n))
	r.nInvShoup = r.Mod.ShoupPrecomp(r.nInv)
	return r
}

// fillTwiddles writes table[i] = base^{bitreverse_logN(i)} mod q.
func fillTwiddles(m Modulus, base uint64, logN int, table []uint64) {
	n := 1 << logN
	pow := uint64(1)
	for i := 0; i < n; i++ {
		table[bitReverse(uint64(i), logN)] = pow
		pow = m.MulMod(pow, base)
	}
}

func bitReverse(x uint64, bitsN int) uint64 {
	var r uint64
	for i := 0; i < bitsN; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// NewPoly allocates a zero polynomial of the ring's degree.
func (r *Ring) NewPoly() Poly { return make(Poly, r.N) }

// Add sets out = a + b (mod q), elementwise. Valid in either representation.
func (r *Ring) Add(a, b, out Poly) {
	q := r.Mod.Q
	a = a[:len(out)]
	b = b[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		addVecAVX2(out[:nv], a[:nv], b[:nv], q)
		i = nv
	}
	for ; i < len(out); i++ {
		c := a[i] + b[i]
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// Sub sets out = a - b (mod q).
func (r *Ring) Sub(a, b, out Poly) {
	q := r.Mod.Q
	a = a[:len(out)]
	b = b[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		subVecAVX2(out[:nv], a[:nv], b[:nv], q)
		i = nv
	}
	for ; i < len(out); i++ {
		c := a[i] - b[i]
		if c > a[i] {
			c += q
		}
		out[i] = c
	}
}

// Neg sets out = -a (mod q).
func (r *Ring) Neg(a, out Poly) {
	q := r.Mod.Q
	for i := range out {
		if a[i] == 0 {
			out[i] = 0
		} else {
			out[i] = q - a[i]
		}
	}
}

// MulCoeffs sets out = a ⊙ b, the elementwise (Hadamard) product. Both
// operands must be in NTT representation for this to realize a negacyclic
// polynomial product.
func (r *Ring) MulCoeffs(a, b, out Poly) {
	// Open-coded fixed-shift Barrett (see MulCoeffsAndAdd): the merge tree's
	// NTT-domain monomial rotation runs through here, so it gets the same
	// per-prime specialization as the MAC.
	q := r.Mod.Q
	mu, shift := r.Mod.BRedMu, r.Mod.BRedShift
	a = a[:len(out)]
	b = b[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		mulCoeffsBarrettAVX2(out[:nv], a[:nv], b[:nv], q, mu, shift)
		i = nv
	}
	for ; i < len(out); i++ {
		hi, lo := bits.Mul64(a[i], b[i])
		qest, _ := bits.Mul64(hi<<(64-shift)|lo>>shift, mu)
		p := lo - qest*q
		if p >= q {
			p -= q
		}
		if p >= q {
			p -= q
		}
		out[i] = p
	}
}

// MulCoeffsAndAdd sets out += a ⊙ b, the fused multiply-accumulate that the
// paper's external-product MAC units implement (§IV-A).
func (r *Ring) MulCoeffsAndAdd(a, b, out Poly) {
	// Open-coded fixed-shift Barrett MAC: this is the inner loop of the
	// key-switch digit accumulation, so the per-prime constants are hoisted
	// and the operand slices pinned to len(out) for bounds-check
	// elimination. The arithmetic is exactly Modulus.MulModBarrettFixed +
	// AddMod, which on canonical operands is bit-identical to the generic
	// two-word Barrett this loop used to run — one estimate multiply per
	// coefficient instead of four.
	q := r.Mod.Q
	mu, shift := r.Mod.BRedMu, r.Mod.BRedShift
	a = a[:len(out)]
	b = b[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		mulCoeffsAndAddBarrettAVX2(out[:nv], a[:nv], b[:nv], q, mu, shift)
		i = nv
	}
	for ; i < len(out); i++ {
		hi, lo := bits.Mul64(a[i], b[i])
		qest, _ := bits.Mul64(hi<<(64-shift)|lo>>shift, mu)
		p := lo - qest*q
		if p >= q {
			p -= q
		}
		if p >= q {
			p -= q
		}
		s := out[i] + p
		if s >= q {
			s -= q
		}
		out[i] = s
	}
}

// MulScalar sets out = c·a (mod q).
func (r *Ring) MulScalar(a Poly, c uint64, out Poly) {
	// Shoup sweep (the scalar is a fixed operand), bit-identical to
	// MulModShoup per coefficient; shares the dispatched kernel with the
	// INTT's N^{-1} pass.
	c = r.Mod.Reduce(c)
	cShoup := r.Mod.ShoupPrecomp(c)
	mulScalarShoupInto(out, a[:len(out)], r.Mod.Q, c, cShoup)
}

// mulScalarShoupInto is the dispatched fixed-operand Shoup sweep behind
// MulScalar and the inverse transforms' N^{-1} pass: out[i] = a[i]·c mod q,
// canonical output, correct for any a[i] < 2^63 (which covers lazy [0, 2q)
// inputs). The vector kernel covers whole 4-lane groups; the scalar loop
// finishes the tail — same arithmetic, bit-identical.
func mulScalarShoupInto(out, a []uint64, q, c, cShoup uint64) {
	a = a[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		mulScalarShoupAVX2(out[:nv], a[:nv], q, c, cShoup)
		i = nv
	}
	for ; i < len(out); i++ {
		x := a[i]
		hi, _ := bits.Mul64(x, cShoup)
		v := x*c - hi*q
		if v >= q {
			v -= q
		}
		out[i] = v
	}
}

// MACShoupVec sets out[i] = (out[i] + a[i]·w mod q) mod q over the whole
// slice, for a fixed operand w < q with Shoup companion wShoup — the inner
// MAC of the RNS basis conversion (rns.ExtendSelectedWith), exposed on
// Modulus so that loop can ride the vector dispatch without the rns package
// reaching into kernel internals. The accumulation is eagerly canonical,
// matching the scalar rationale recorded at that call site (both conditional
// subtractions lower to CMOVs; the lazy alternative measured ~3× slower).
func (m Modulus) MACShoupVec(a, out []uint64, w, wShoup uint64) {
	q := m.Q
	a = a[:len(out)]
	i := 0
	if simdActive() {
		nv := len(out) &^ 3
		macShoupAVX2(out[:nv], a[:nv], q, w, wShoup)
		i = nv
	}
	for ; i < len(out); i++ {
		x := a[i]
		hi, _ := bits.Mul64(x, wShoup)
		p := x*w - hi*q // lazy Shoup ∈ [0, 2q)
		if p >= q {
			p -= q
		}
		s := out[i] + p
		if s >= q {
			s -= q
		}
		out[i] = s
	}
}

// AddScalar sets out = a + c (mod q) applied to the constant coefficient
// only when the polynomial is in coefficient form would be wrong for NTT
// form; this helper adds c to every slot, which is the correct constant
// addition for NTT representation.
func (r *Ring) AddScalar(a Poly, c uint64, out Poly) {
	c = r.Mod.Reduce(c)
	for i := range out {
		out[i] = r.Mod.AddMod(a[i], c)
	}
}

// MulPolyNaive computes the negacyclic product out = a·b in coefficient
// representation by the O(N^2) schoolbook method. It exists as the reference
// against which the NTT is tested.
func (r *Ring) MulPolyNaive(a, b, out Poly) {
	n := r.N
	tmp := make(Poly, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			p := r.Mod.MulMod(a[i], b[j])
			if k < n {
				tmp[k] = r.Mod.AddMod(tmp[k], p)
			} else {
				tmp[k-n] = r.Mod.SubMod(tmp[k-n], p)
			}
		}
	}
	copy(out, tmp)
}

// Equal reports whether two polynomials are identical.
func (r *Ring) Equal(a, b Poly) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
