package ckks

import (
	"math/cmplx"
	"testing"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

// BootstrapTestParams: N=2^9, q0 a 50-bit prime, 21 further 44-bit limbs
// (Δ pinned to a limb so repeated Rescale keeps the scale stable), dnum=6.
func bootstrapTestParams(t *testing.T) *Parameters {
	t.Helper()
	q := append(ring.GenerateNTTPrimes(50, 9, 1), ring.GenerateNTTPrimes(44, 9, 21)...)
	p := ring.GenerateNTTPrimesUp(50, 9, 4)
	params := MustParameters(9, q, p, ring.DefaultSigma, 6, float64(q[1]), 1<<8)
	return params
}

func newBootstrapContext(t *testing.T) (*Parameters, *Client, *Bootstrapper) {
	t.Helper()
	params := bootstrapTestParams(t)
	kg := rlwe.NewKeyGenerator(params.Parameters, 40)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(params, sk, 41)
	keys := GenEvaluationKeySet(params, kg, sk, BootstrapRotations(params), true)
	ev := NewEvaluator(params, keys, nil)
	bt := NewBootstrapper(params, cl.Encoder, ev, DefaultBootstrapConfig())
	return params, cl, bt
}

func TestLinearTransformIdentityAndShift(t *testing.T) {
	p := TestParams(7, 4, 64)
	kg := rlwe.NewKeyGenerator(p.Parameters, 42)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 43)

	// Identity and a cyclic-shift matrix.
	id := NewLinearTransform(cl.Encoder, func(r, c int) complex128 {
		if r == c {
			return 1
		}
		return 0
	}, p.Slots, p.MaxLevel(), p.DefaultScale)
	shift := NewLinearTransform(cl.Encoder, func(r, c int) complex128 {
		if (r+3)%p.Slots == c {
			return 1
		}
		return 0
	}, p.Slots, p.MaxLevel(), p.DefaultScale)

	rots := append(id.Rotations(), shift.Rotations()...)
	keys := GenEvaluationKeySet(p, kg, sk, rots, false)
	ev := NewEvaluator(p, keys, nil)

	v := rampVector(p.Slots)
	ct := cl.Encrypt(v)
	got := cl.Decrypt(ev.Rescale(ev.EvalLinearTransform(ct, id)))
	if err := maxErr(got, v); err > 1e-5 {
		t.Errorf("identity LT error %g", err)
	}
	got = cl.Decrypt(ev.Rescale(ev.EvalLinearTransform(ct, shift)))
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = v[(i+3)%p.Slots]
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("shift LT error %g", err)
	}
}

func TestLinearTransformDense(t *testing.T) {
	p := TestParams(6, 4, 32)
	kg := rlwe.NewKeyGenerator(p.Parameters, 44)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 45)

	m := func(r, c int) complex128 {
		return complex(float64(r-c)/64, float64(r+c)/128)
	}
	lt := NewLinearTransform(cl.Encoder, m, p.Slots, p.MaxLevel(), p.DefaultScale)
	keys := GenEvaluationKeySet(p, kg, sk, lt.Rotations(), false)
	ev := NewEvaluator(p, keys, nil)

	v := rampVector(p.Slots)
	ct := cl.Encrypt(v)
	got := cl.Decrypt(ev.Rescale(ev.EvalLinearTransform(ct, lt)))
	want := make([]complex128, p.Slots)
	for r := 0; r < p.Slots; r++ {
		var acc complex128
		for c := 0; c < p.Slots; c++ {
			acc += m(r, c) * v[c]
		}
		want[r] = acc
	}
	if err := maxErr(got, want); err > 1e-4 {
		t.Errorf("dense LT error %g", err)
	}
}

func TestConventionalBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap test is slow")
	}
	params, cl, bt := newBootstrapContext(t)

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.6*float64(i%7)/7-0.3, 0.4*float64(i%5)/5-0.2)
	}
	// Simulate an exhausted ciphertext at level 1.
	ct := cl.EncryptAtLevel(v, 1)
	out := bt.Bootstrap(ct)

	if out.Level() != params.MaxLevel()-bt.ConsumedLevels() {
		t.Fatalf("bootstrap output level %d want %d", out.Level(), params.MaxLevel()-bt.ConsumedLevels())
	}
	got := cl.Decrypt(out)
	worst := 0.0
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > worst {
			worst = e
		}
	}
	t.Logf("conventional bootstrap max error: %g", worst)
	if worst > 5e-3 {
		t.Errorf("bootstrap error %g exceeds tolerance", worst)
	}

	// The refreshed ciphertext must support further multiplications.
	ev := bt.Ev
	sq := ev.MulRelinRescale(out, out)
	got2 := cl.Decrypt(sq)
	for i := range v {
		if e := cmplx.Abs(got2[i] - v[i]*v[i]); e > 1e-2 {
			t.Fatalf("post-bootstrap square error %g at slot %d", e, i)
		}
	}
}
