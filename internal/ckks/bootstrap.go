package ckks

import (
	"math"
	"math/cmplx"

	"heap/internal/rlwe"
)

// BootstrapConfig tunes the conventional CKKS bootstrapping pipeline of
// Figure 1(a) — the baseline HEAP's scheme-switching approach replaces.
type BootstrapConfig struct {
	// K bounds the modular-reduction interval: the wrap-around polynomial I
	// in m + q0·I must satisfy |I| ≤ K (K ≈ O(√N) for ternary secrets).
	K int
	// R is the number of angle-doubling squarings; the Taylor expansion of
	// exp(iθ) is evaluated on |θ| ≤ 2π(K+1)/2^R.
	R int
	// TaylorDeg is the degree of the exp Taylor expansion (must be 7).
	TaylorDeg int
}

// DefaultBootstrapConfig matches the precision analysis in DESIGN.md.
func DefaultBootstrapConfig() BootstrapConfig { return BootstrapConfig{K: 32, R: 10, TaylorDeg: 7} }

// Bootstrapper implements conventional CKKS bootstrapping:
// ModRaise → CoeffToSlot (homomorphic DFT) → EvalMod (sine evaluation via
// complex exponential Taylor series + angle doubling) → SlotToCoeff.
// It consumes ConsumedLevels limbs and requires the full N/2 slots.
type Bootstrapper struct {
	Params *Parameters
	Ev     *Evaluator
	Cfg    BootstrapConfig

	c2sM0, c2sM0c, c2sM1, c2sM1c *LinearTransform
	s2cS0, s2cS1                 *LinearTransform
}

// BootstrapMatrices builds the four CoeffToSlot and two SlotToCoeff
// matrices by numerically probing the encoder — immune to index-convention
// drift between the FFT and the canonical embedding.
func bootstrapMatrices(enc *Encoder, params *Parameters) (m0, m0c, m1, m1c, s0, s1 [][]complex128) {
	n := params.N()
	half := n / 2
	alloc := func() [][]complex128 {
		m := make([][]complex128, half)
		for i := range m {
			m[i] = make([]complex128, half)
		}
		return m
	}
	m0, m0c, m1, m1c, s0, s1 = alloc(), alloc(), alloc(), alloc(), alloc(), alloc()

	// CoeffToSlot: probe z = e_l and z = i·e_l through the encode direction
	// (slot vector → real coefficient vector) and solve for the z and
	// conj(z) matrix pair.
	vals := make([]complex128, half)
	for l := 0; l < half; l++ {
		for i := range vals {
			vals[i] = 0
		}
		vals[l] = 1
		enc.specialInvFFT(vals)
		w0 := make([]complex128, half)
		w0i := make([]complex128, half)
		for j := 0; j < half; j++ {
			w0[j] = complex(real(vals[j]), 0)
			w0i[j] = complex(imag(vals[j]), 0)
		}
		for i := range vals {
			vals[i] = 0
		}
		vals[l] = complex(0, 1)
		enc.specialInvFFT(vals)
		for j := 0; j < half; j++ {
			wp := complex(real(vals[j]), 0)
			wpi := complex(imag(vals[j]), 0)
			// col(M) = (w − i·w')/2 ; col(Mc) = (w + i·w')/2
			m0[j][l] = (w0[j] - complex(0, 1)*wp) / 2
			m0c[j][l] = (w0[j] + complex(0, 1)*wp) / 2
			m1[j][l] = (w0i[j] - complex(0, 1)*wpi) / 2
			m1c[j][l] = (w0i[j] + complex(0, 1)*wpi) / 2
		}
	}

	// SlotToCoeff: column k of S0 is the slot vector of the monomial X^k,
	// column k of S1 that of X^{k+N/2}.
	for k := 0; k < half; k++ {
		for i := range vals {
			vals[i] = 0
		}
		vals[k] = 1 // coefficient k real part
		enc.specialFFT(vals)
		for j := 0; j < half; j++ {
			s0[j][k] = vals[j]
		}
		for i := range vals {
			vals[i] = 0
		}
		vals[k] = complex(0, 1) // coefficient k+N/2 rides the imaginary part
		enc.specialFFT(vals)
		for j := 0; j < half; j++ {
			s1[j][k] = vals[j]
		}
	}
	return
}

// NewBootstrapper precomputes the DFT linear transforms. The evaluator must
// hold Galois keys for BootstrapRotations plus conjugation and the
// relinearization key.
func NewBootstrapper(params *Parameters, enc *Encoder, ev *Evaluator, cfg BootstrapConfig) *Bootstrapper {
	if params.Slots != params.N()/2 {
		panic("ckks: conventional bootstrapping requires full slot packing")
	}
	bt := &Bootstrapper{Params: params, Ev: ev, Cfg: cfg}
	m0, m0c, m1, m1c, s0, s1 := bootstrapMatrices(enc, params)
	slots := params.Slots
	level := params.MaxLevel()
	scale := params.DefaultScale
	mk := func(m [][]complex128) *LinearTransform {
		return NewLinearTransform(enc, func(r, c int) complex128 { return m[r][c] }, slots, level, scale)
	}
	bt.c2sM0, bt.c2sM0c, bt.c2sM1, bt.c2sM1c = mk(m0), mk(m0c), mk(m1), mk(m1c)
	bt.s2cS0, bt.s2cS1 = mk(s0), mk(s1)
	return bt
}

// BootstrapRotations returns the rotation indices the pipeline needs
// (generate Galois keys for these plus conjugation).
func BootstrapRotations(params *Parameters) []int {
	// All six transforms share the BSGS layout of a dense slots×slots
	// matrix: baby steps 1..g−1 and giant steps g, 2g, ….
	slots := params.Slots
	g := 1 << (bitsLen(slots) / 2)
	seen := map[int]bool{}
	for b := 1; b < g; b++ {
		seen[b] = true
	}
	for a := g; a < slots; a += g {
		seen[a] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

// ConsumedLevels reports how many limbs one bootstrap invocation consumes.
func (bt *Bootstrapper) ConsumedLevels() int {
	// C2S(1) + input scaling(1) + exp Taylor(4) + R squarings + sine
	// extraction(1) + S2C(1).
	return 8 + bt.Cfg.R
}

// modRaise reinterprets the centered level-1 residues modulo the full
// modulus chain: the phase becomes m + q0·I for a small integer polynomial I.
func (bt *Bootstrapper) modRaise(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	p := bt.Params
	if ct.Level() != 1 {
		panic("ckks: bootstrap input must be at level 1")
	}
	b1 := p.QBasis.AtLevel(1)
	c0 := ct.C0.Copy()
	c1 := ct.C1.Copy()
	if ct.IsNTT {
		b1.INTT(c0)
		b1.INTT(c1)
	}
	level := p.MaxLevel()
	bL := p.QBasis.AtLevel(level)
	out := rlwe.NewCiphertext(p.Parameters, level)
	q0 := p.Q[0]
	lift := func(src, dst []uint64, ringIdx int) {
		q := p.Q[ringIdx]
		for j, v := range src {
			if v > q0/2 { // centered lift
				dst[j] = q - (q0-v)%q
				if dst[j] == q {
					dst[j] = 0
				}
			} else {
				dst[j] = v % q
			}
		}
	}
	for i := 0; i < level; i++ {
		lift(c0.Limbs[0], out.C0.Limbs[i], i)
		lift(c1.Limbs[0], out.C1.Limbs[i], i)
	}
	bL.NTT(out.C0)
	bL.NTT(out.C1)
	out.Scale = ct.Scale
	return out
}

// evalMod homomorphically evaluates x ↦ q0/(2π)·sin(2πx/q0) on slot values
// holding (m + q0·I)/Δ, returning values m/Δ — the approximate modular
// reduction at the heart of conventional bootstrapping.
func (bt *Bootstrapper) evalMod(t *rlwe.Ciphertext) *rlwe.Ciphertext {
	ev := bt.Ev
	p := bt.Params
	delta := p.DefaultScale
	q0 := float64(p.Q[0])
	twoPow := math.Exp2(float64(bt.Cfg.R))

	// θ = 2π·(m + q0·I)/(q0·2^R), |θ| ≤ 2π(K+1)/2^R.
	theta := ev.MulConstToScale(t, complex(2*math.Pi*delta/(q0*twoPow), 0), delta)

	// exp(iθ) by a degree-7 Taylor series, BSGS-split as
	// (c0+c1θ+c2θ²+c3θ³) + θ⁴·(c4+c5θ+c6θ²+c7θ³).
	if bt.Cfg.TaylorDeg != 7 {
		panic("ckks: evalMod implements a degree-7 Taylor expansion")
	}
	coef := make([]complex128, 8)
	fact := 1.0
	for k := 0; k < 8; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		coef[k] = cmplx.Pow(complex(0, 1), complex(float64(k), 0)) / complex(fact, 0)
	}
	p2 := ev.Rescale(ev.Mul(theta, theta))
	p3 := ev.Rescale(ev.Mul(p2, ev.DropLevels(theta, 1)))
	p4 := ev.Rescale(ev.Mul(p2, p2))

	// All terms land at the common level of p3/p4 minus one, scale Δ.
	lowLevel := p3.Level() - 1
	sumAt := func(ps []*rlwe.Ciphertext, cs []complex128, target float64) *rlwe.Ciphertext {
		var acc *rlwe.Ciphertext
		for i, pc := range ps {
			if cs[i] == 0 {
				continue
			}
			c := pc
			if c.Level() > lowLevel+1 {
				c = ev.DropLevels(c, c.Level()-(lowLevel+1))
			}
			term := ev.MulConstToScale(c, cs[i], target)
			if acc == nil {
				acc = term
			} else {
				acc = ev.Add(acc, term)
			}
		}
		return acc
	}
	low := sumAt([]*rlwe.Ciphertext{theta, p2, p3}, coef[1:4], delta)
	low = ev.AddConst(low, coef[0])

	// high target scale chosen so p4·high rescales exactly to Δ.
	p4d := p4
	if p4d.Level() > lowLevel {
		p4d = ev.DropLevels(p4d, p4d.Level()-lowLevel)
	}
	qAtMul := float64(p.Q[lowLevel-1])
	targetHigh := delta * qAtMul / p4d.Scale
	high := sumAt([]*rlwe.Ciphertext{theta, p2, p3}, coef[5:8], targetHigh)
	high = ev.AddConst(high, coef[4])

	e := ev.Rescale(ev.Mul(p4d, high))
	e.Scale = delta
	if low.Level() > e.Level() {
		low = ev.DropLevels(low, low.Level()-e.Level())
	}
	e = ev.Add(e, low)

	// Angle doubling: R squarings take exp(iθ) to exp(2πi(m+q0I)/q0) =
	// exp(2πi·m/q0); the integer wrap I vanishes.
	for r := 0; r < bt.Cfg.R; r++ {
		e = ev.Rescale(ev.Mul(e, e))
		if ratio := e.Scale / delta; ratio < 0.9 || ratio > 1.1 {
			panic("ckks: evalMod scale drift — moduli must sit close to Δ")
		}
		e.Scale = delta
	}

	// sin = (E − conj(E))/(2i); multiply by q0/(2πΔ)·Δ to land on m/Δ.
	diff := ev.Sub(e, ev.Conjugate(e))
	out := ev.MulConstToScale(diff, complex(0, -1)*complex(q0/(4*math.Pi*delta), 0), delta)
	return out
}

// Bootstrap refreshes a level-1 ciphertext to level
// MaxLevel − ConsumedLevels, homomorphically re-encrypting the message per
// Figure 1(a). The output scale equals the input scale.
func (bt *Bootstrapper) Bootstrap(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	ev := bt.Ev
	delta := bt.Params.DefaultScale

	raised := bt.modRaise(ct)

	// CoeffToSlot: two real-coefficient vectors from z and conj(z).
	conj := ev.Conjugate(raised)
	t0 := ev.Add(ev.EvalLinearTransform(raised, bt.c2sM0), ev.EvalLinearTransform(conj, bt.c2sM0c))
	t0 = ev.RescaleToScale(t0, delta)
	t1 := ev.Add(ev.EvalLinearTransform(raised, bt.c2sM1), ev.EvalLinearTransform(conj, bt.c2sM1c))
	t1 = ev.RescaleToScale(t1, delta)

	// EvalMod on both coefficient halves.
	r0 := bt.evalMod(t0)
	r1 := bt.evalMod(t1)

	// SlotToCoeff.
	out := ev.Add(ev.EvalLinearTransform(r0, bt.s2cS0), ev.EvalLinearTransform(r1, bt.s2cS1))
	out = ev.RescaleToScale(out, delta)
	out.Scale = ct.Scale
	return out
}
