package ckks

import (
	"fmt"
	"math"

	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/rns"
)

// EvaluationKeySet holds the public evaluation material: the relinearization
// key and the Galois keys for every rotation/conjugation the application
// performs.
type EvaluationKeySet struct {
	Rlk        *rlwe.GadgetCiphertext
	GaloisKeys map[uint64]*rlwe.GadgetCiphertext
}

// GenEvaluationKeySet creates the relinearization key plus Galois keys for
// the given slot rotations (and conjugation if conj is set).
func GenEvaluationKeySet(params *Parameters, kg *rlwe.KeyGenerator, sk *rlwe.SecretKey, rotations []int, conj bool) *EvaluationKeySet {
	ks := &EvaluationKeySet{
		Rlk:        kg.GenRelinearizationKey(sk),
		GaloisKeys: make(map[uint64]*rlwe.GadgetCiphertext),
	}
	r0 := params.QBasis.Rings[0]
	for _, k := range rotations {
		g := r0.GaloisElementForRotation(k)
		if _, ok := ks.GaloisKeys[g]; !ok {
			ks.GaloisKeys[g] = kg.GenGaloisKey(g, sk)
		}
	}
	if conj {
		g := r0.GaloisElementConjugate()
		ks.GaloisKeys[g] = kg.GenGaloisKey(g, sk)
	}
	return ks
}

// Evaluator performs homomorphic CKKS operations. Safe for concurrent use
// after construction.
type Evaluator struct {
	Params *Parameters
	KS     *rlwe.KeySwitcher
	Keys   *EvaluationKeySet

	// NTT form of the monomial X^{N/2} per Q limb: in CKKS slot space this
	// monomial is the constant imaginary unit i (5^j ≡ 1 mod 4 puts every
	// evaluation point on a root with ζ^{N/2} = i), enabling cheap complex
	// scalar multiplication.
	monoI []ring.Poly
}

// NewEvaluator constructs an evaluator; ks may be shared (or nil to build).
func NewEvaluator(params *Parameters, keys *EvaluationKeySet, ks *rlwe.KeySwitcher) *Evaluator {
	if ks == nil {
		ks = rlwe.NewKeySwitcher(params.Parameters)
	}
	ev := &Evaluator{Params: params, KS: ks, Keys: keys}
	ev.monoI = make([]ring.Poly, params.MaxLevel())
	for i, r := range params.QBasis.Rings {
		p := r.NewPoly()
		p[params.N()/2] = 1
		r.NTT(p)
		ev.monoI[i] = p
	}
	// Precompute the automorphism permutations for all held Galois keys so
	// concurrent evaluation never mutates shared state.
	if keys != nil {
		for g := range keys.GaloisKeys {
			ks.EnsurePerm(g)
		}
	}
	return ev
}

func commonLevel(a, b *rlwe.Ciphertext) int {
	if a.Level() < b.Level() {
		return a.Level()
	}
	return b.Level()
}

func checkScales(a, b *rlwe.Ciphertext) {
	r := a.Scale / b.Scale
	if r < 0.99 || r > 1.01 {
		panic(fmt.Sprintf("ckks: scale mismatch %g vs %g", a.Scale, b.Scale))
	}
}

// Add returns a + b (Add of §II-A).
func (ev *Evaluator) Add(a, b *rlwe.Ciphertext) *rlwe.Ciphertext {
	checkScales(a, b)
	level := commonLevel(a, b)
	bas := ev.Params.QBasis.AtLevel(level)
	out := rlwe.NewCiphertext(ev.Params.Parameters, level)
	bas.Add(a.C0, b.C0, out.C0)
	bas.Add(a.C1, b.C1, out.C1)
	out.Scale = a.Scale
	return out
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *rlwe.Ciphertext) *rlwe.Ciphertext {
	checkScales(a, b)
	level := commonLevel(a, b)
	bas := ev.Params.QBasis.AtLevel(level)
	out := rlwe.NewCiphertext(ev.Params.Parameters, level)
	bas.Sub(a.C0, b.C0, out.C0)
	bas.Sub(a.C1, b.C1, out.C1)
	out.Scale = a.Scale
	return out
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *rlwe.Ciphertext) *rlwe.Ciphertext {
	bas := ev.Params.QBasis.AtLevel(a.Level())
	out := rlwe.NewCiphertext(ev.Params.Parameters, a.Level())
	bas.Neg(a.C0, out.C0)
	bas.Neg(a.C1, out.C1)
	out.Scale = a.Scale
	return out
}

// AddPlain returns ct + pt where pt is an NTT plaintext at matching scale
// (PtAdd of §II-A).
func (ev *Evaluator) AddPlain(ct *rlwe.Ciphertext, pt rns.Poly) *rlwe.Ciphertext {
	out := ct.CopyNew()
	ev.Params.QBasis.AtLevel(commonLevel(ct, &rlwe.Ciphertext{C0: pt, C1: pt})).Add(out.C0, pt, out.C0)
	return out
}

// MulPlain returns ct ⊙ pt with the plaintext's scale multiplied in
// (PtMult of §II-A). Rescale afterwards to shrink Δ² back to Δ.
func (ev *Evaluator) MulPlain(ct *rlwe.Ciphertext, pt rns.Poly, ptScale float64) *rlwe.Ciphertext {
	level := ct.Level()
	if pt.Level() < level {
		level = pt.Level()
	}
	bas := ev.Params.QBasis.AtLevel(level)
	out := rlwe.NewCiphertext(ev.Params.Parameters, level)
	bas.MulCoeffs(ct.C0, pt, out.C0)
	bas.MulCoeffs(ct.C1, pt, out.C1)
	out.Scale = ct.Scale * ptScale
	return out
}

// Mul returns the relinearized product a·b (Mult of §II-A): tensor to degree
// two, then key-switch the s² component with the relinearization key.
func (ev *Evaluator) Mul(a, b *rlwe.Ciphertext) *rlwe.Ciphertext {
	level := commonLevel(a, b)
	bas := ev.Params.QBasis.AtLevel(level)
	d0 := bas.NewPoly()
	d1 := bas.NewPoly()
	d2 := bas.NewPoly()
	tmp := bas.NewPoly()
	bas.MulCoeffs(a.C0, b.C0, d0)
	bas.MulCoeffs(a.C0, b.C1, d1)
	bas.MulCoeffs(a.C1, b.C0, tmp)
	bas.Add(d1, tmp, d1)
	bas.MulCoeffs(a.C1, b.C1, d2)
	r0, r1 := ev.KS.Relinearize(d0, d1, d2, ev.Keys.Rlk)
	return &rlwe.Ciphertext{C0: r0, C1: r1, IsNTT: true, Scale: a.Scale * b.Scale}
}

// Square returns the relinearized a².
func (ev *Evaluator) Square(a *rlwe.Ciphertext) *rlwe.Ciphertext { return ev.Mul(a, a) }

// Rescale divides by the last limb modulus and drops it (Rescale of §II-A).
func (ev *Evaluator) Rescale(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	level := ct.Level()
	if level < 2 {
		panic("ckks: no limb left to rescale")
	}
	qLast := ev.Params.Q[level-1]
	bas := ev.Params.QBasis.AtLevel(level)
	out := &rlwe.Ciphertext{
		C0:    bas.DivRoundByLastModulus(ct.C0, true),
		C1:    bas.DivRoundByLastModulus(ct.C1, true),
		IsNTT: true,
		Scale: ct.Scale / float64(qLast),
	}
	return out
}

// MulRelinRescale is the common Mult→Rescale sequence.
func (ev *Evaluator) MulRelinRescale(a, b *rlwe.Ciphertext) *rlwe.Ciphertext {
	return ev.Rescale(ev.Mul(a, b))
}

// DropLevels truncates n limbs without rescaling (level alignment).
func (ev *Evaluator) DropLevels(ct *rlwe.Ciphertext, n int) *rlwe.Ciphertext {
	level := ct.Level() - n
	if level < 1 {
		panic("ckks: cannot drop below level 1")
	}
	return &rlwe.Ciphertext{C0: ct.C0.AtLevel(level), C1: ct.C1.AtLevel(level), IsNTT: true, Scale: ct.Scale}
}

// Rotate rotates the slot vector by k positions (Rotate of §II-A): the
// automorphism X → X^{5^k} followed by a key switch.
func (ev *Evaluator) Rotate(ct *rlwe.Ciphertext, k int) *rlwe.Ciphertext {
	if k == 0 {
		return ct.CopyNew()
	}
	g := ev.Params.QBasis.Rings[0].GaloisElementForRotation(k)
	gk, ok := ev.Keys.GaloisKeys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for k=%d (galois %d)", k, g))
	}
	return ev.KS.Automorphism(ct, g, gk)
}

// Conjugate conjugates every slot (Conjugate of §II-A): X → X^{2N−1}.
func (ev *Evaluator) Conjugate(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	g := ev.Params.QBasis.Rings[0].GaloisElementConjugate()
	gk, ok := ev.Keys.GaloisKeys[g]
	if !ok {
		panic("ckks: missing conjugation key")
	}
	return ev.KS.Automorphism(ct, g, gk)
}

// MulByConstInt multiplies by a signed integer without consuming scale.
func (ev *Evaluator) MulByConstInt(ct *rlwe.Ciphertext, c int64) *rlwe.Ciphertext {
	level := ct.Level()
	bas := ev.Params.QBasis.AtLevel(level)
	out := rlwe.NewCiphertext(ev.Params.Parameters, level)
	out.Scale = ct.Scale
	for i := 0; i < level; i++ {
		r := bas.Rings[i]
		cc := signedResidue(c, r.Mod.Q)
		r.MulScalar(ct.C0.Limbs[i], cc, out.C0.Limbs[i])
		r.MulScalar(ct.C1.Limbs[i], cc, out.C1.Limbs[i])
	}
	return out
}

// MulByComplexConst multiplies every slot by the complex constant c, encoded
// at auxScale (the ciphertext scale is multiplied by auxScale; rescale to
// shrink it back). The real part is a plain scalar; the imaginary part rides
// on the monomial X^{N/2}, which is the constant i in slot space.
func (ev *Evaluator) MulByComplexConst(ct *rlwe.Ciphertext, c complex128, auxScale float64) *rlwe.Ciphertext {
	level := ct.Level()
	bas := ev.Params.QBasis.AtLevel(level)
	re := int64(math.Round(real(c) * auxScale))
	im := int64(math.Round(imag(c) * auxScale))
	out := rlwe.NewCiphertext(ev.Params.Parameters, level)
	out.Scale = ct.Scale * auxScale
	tmp := bas.NewPoly()
	for i := 0; i < level; i++ {
		r := bas.Rings[i]
		rr := signedResidue(re, r.Mod.Q)
		r.MulScalar(ct.C0.Limbs[i], rr, out.C0.Limbs[i])
		r.MulScalar(ct.C1.Limbs[i], rr, out.C1.Limbs[i])
		if im != 0 {
			ii := signedResidue(im, r.Mod.Q)
			r.MulCoeffs(ct.C0.Limbs[i], ev.monoI[i], tmp.Limbs[i])
			r.MulScalar(tmp.Limbs[i], ii, tmp.Limbs[i])
			r.Add(out.C0.Limbs[i], tmp.Limbs[i], out.C0.Limbs[i])
			r.MulCoeffs(ct.C1.Limbs[i], ev.monoI[i], tmp.Limbs[i])
			r.MulScalar(tmp.Limbs[i], ii, tmp.Limbs[i])
			r.Add(out.C1.Limbs[i], tmp.Limbs[i], out.C1.Limbs[i])
		}
	}
	return out
}

// MulByFloat multiplies every slot by a real constant at auxScale.
func (ev *Evaluator) MulByFloat(ct *rlwe.Ciphertext, f, auxScale float64) *rlwe.Ciphertext {
	return ev.MulByComplexConst(ct, complex(f, 0), auxScale)
}

// AddConst adds the complex constant c to every slot.
func (ev *Evaluator) AddConst(ct *rlwe.Ciphertext, c complex128) *rlwe.Ciphertext {
	level := ct.Level()
	bas := ev.Params.QBasis.AtLevel(level)
	out := ct.CopyNew()
	re := int64(math.Round(real(c) * ct.Scale))
	im := int64(math.Round(imag(c) * ct.Scale))
	for i := 0; i < level; i++ {
		r := bas.Rings[i]
		if re != 0 {
			r.AddScalar(out.C0.Limbs[i], signedResidue(re, r.Mod.Q), out.C0.Limbs[i])
		}
		if im != 0 {
			tmp := r.NewPoly()
			r.MulScalar(ev.monoI[i], signedResidue(im, r.Mod.Q), tmp)
			r.Add(out.C0.Limbs[i], tmp, out.C0.Limbs[i])
		}
	}
	return out
}

func signedResidue(c int64, q uint64) uint64 {
	if c >= 0 {
		return uint64(c) % q
	}
	return q - uint64(-c)%q
}
