package ckks

import (
	"math"
	"math/cmplx"
	"testing"

	"heap/internal/rlwe"
)

func maxErr(got, want []complex128) float64 {
	worst := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func rampVector(n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64(i)/float64(n)-0.5, float64(n-i)/float64(2*n))
	}
	return v
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct{ logN, slots int }{{6, 32}, {8, 128}, {8, 16}, {10, 512}} {
		p := TestParams(tc.logN, 3, tc.slots)
		e := NewEncoder(p)
		v := rampVector(tc.slots)
		pt := e.EncodeAtLevel(v, p.DefaultScale, p.MaxLevel())
		b := p.QBasis.AtLevel(p.MaxLevel())
		b.INTT(pt)
		got := e.Decode(b.CRTReconstructCentered(pt), p.DefaultScale)
		if err := maxErr(got, v); err > 1e-7 {
			t.Errorf("logN=%d slots=%d: encode/decode error %g", tc.logN, tc.slots, err)
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	p := TestParams(7, 3, 64)
	kg := rlwe.NewKeyGenerator(p.Parameters, 1)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 2)
	v := rampVector(p.Slots)
	ct := cl.Encrypt(v)
	got := cl.Decrypt(ct)
	if err := maxErr(got, v); err > 1e-6 {
		t.Errorf("encrypt/decrypt error %g", err)
	}
}

func newTestContext(t *testing.T, logN, limbs, slots int, rotations []int) (*Parameters, *Client, *Evaluator) {
	t.Helper()
	p := TestParams(logN, limbs, slots)
	kg := rlwe.NewKeyGenerator(p.Parameters, 10)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 11)
	keys := GenEvaluationKeySet(p, kg, sk, rotations, true)
	ev := NewEvaluator(p, keys, nil)
	return p, cl, ev
}

func TestAddSubNeg(t *testing.T) {
	p, cl, ev := newTestContext(t, 6, 3, 32, nil)
	a, b := rampVector(p.Slots), rampVector(p.Slots)
	for i := range b {
		b[i] *= complex(0, 1)
	}
	ctA, ctB := cl.Encrypt(a), cl.Encrypt(b)

	sum := cl.Decrypt(ev.Add(ctA, ctB))
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if err := maxErr(sum, want); err > 1e-6 {
		t.Errorf("Add error %g", err)
	}

	diff := cl.Decrypt(ev.Sub(ctA, ctB))
	for i := range want {
		want[i] = a[i] - b[i]
	}
	if err := maxErr(diff, want); err > 1e-6 {
		t.Errorf("Sub error %g", err)
	}

	neg := cl.Decrypt(ev.Neg(ctA))
	for i := range want {
		want[i] = -a[i]
	}
	if err := maxErr(neg, want); err > 1e-6 {
		t.Errorf("Neg error %g", err)
	}
}

func TestMulRescale(t *testing.T) {
	p, cl, ev := newTestContext(t, 7, 4, 64, nil)
	a, b := rampVector(p.Slots), rampVector(p.Slots)
	ctA, ctB := cl.Encrypt(a), cl.Encrypt(b)
	prod := ev.MulRelinRescale(ctA, ctB)
	if prod.Level() != p.MaxLevel()-1 {
		t.Fatalf("rescaled level %d want %d", prod.Level(), p.MaxLevel()-1)
	}
	got := cl.Decrypt(prod)
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("Mul error %g", err)
	}
}

func TestMulPlain(t *testing.T) {
	p, cl, ev := newTestContext(t, 6, 3, 32, nil)
	a := rampVector(p.Slots)
	w := make([]complex128, p.Slots)
	for i := range w {
		w[i] = complex(math.Cos(float64(i)), math.Sin(float64(i)))
	}
	ct := cl.Encrypt(a)
	pt := cl.Encoder.EncodeAtLevel(w, p.DefaultScale, ct.Level())
	out := ev.Rescale(ev.MulPlain(ct, pt, p.DefaultScale))
	got := cl.Decrypt(out)
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = a[i] * w[i]
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("MulPlain error %g", err)
	}
}

func TestMultiplicativeDepth(t *testing.T) {
	// Use every available level: ((a²)²)²… until level 1, checking values.
	p, cl, ev := newTestContext(t, 6, 4, 32, nil)
	v := make([]complex128, p.Slots)
	for i := range v {
		v[i] = complex(0.9, 0)
	}
	ct := cl.Encrypt(v)
	want := 0.9
	for ct.Level() > 1 {
		ct = ev.MulRelinRescale(ct, ct)
		want *= want
	}
	got := cl.Decrypt(ct)
	for i := range got {
		if math.Abs(real(got[i])-want) > 1e-3 {
			t.Fatalf("slot %d: %v want %v", i, got[i], want)
		}
	}
}

func TestRotateConjugate(t *testing.T) {
	p, cl, ev := newTestContext(t, 7, 3, 64, []int{1, 5, -3, 17})
	a := rampVector(p.Slots)
	ct := cl.Encrypt(a)
	for _, k := range []int{1, 5, -3, 17} {
		got := cl.Decrypt(ev.Rotate(ct, k))
		want := make([]complex128, p.Slots)
		for i := range want {
			want[i] = a[((i+k)%p.Slots+p.Slots)%p.Slots]
		}
		if err := maxErr(got, want); err > 1e-5 {
			t.Errorf("Rotate(%d) error %g", k, err)
		}
	}
	got := cl.Decrypt(ev.Conjugate(ct))
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = cmplx.Conj(a[i])
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("Conjugate error %g", err)
	}
}

func TestMulByComplexConstAndAddConst(t *testing.T) {
	p, cl, ev := newTestContext(t, 6, 3, 32, nil)
	a := rampVector(p.Slots)
	ct := cl.Encrypt(a)

	c := complex(0.75, -1.25)
	out := ev.Rescale(ev.MulByComplexConst(ct, c, p.DefaultScale))
	got := cl.Decrypt(out)
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = a[i] * c
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("MulByComplexConst error %g", err)
	}

	out2 := ev.AddConst(ct, complex(0.5, 0.25))
	got2 := cl.Decrypt(out2)
	for i := range want {
		want[i] = a[i] + complex(0.5, 0.25)
	}
	if err := maxErr(got2, want); err > 1e-5 {
		t.Errorf("AddConst error %g", err)
	}
}

func TestMulByConstIntAndDropLevels(t *testing.T) {
	p, cl, ev := newTestContext(t, 6, 3, 32, nil)
	a := rampVector(p.Slots)
	ct := cl.Encrypt(a)
	out := ev.MulByConstInt(ct, -3)
	got := cl.Decrypt(out)
	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = a[i] * -3
	}
	if err := maxErr(got, want); err > 1e-5 {
		t.Errorf("MulByConstInt error %g", err)
	}
	dropped := ev.DropLevels(ct, 1)
	if dropped.Level() != ct.Level()-1 {
		t.Fatal("DropLevels did not drop")
	}
	if err := maxErr(cl.Decrypt(dropped), a); err > 1e-5 {
		t.Errorf("DropLevels changed values: %g", err)
	}
}

func TestSparseSlotsReplication(t *testing.T) {
	// Sparse packing (slots < N/2) replicates the vector in the subring;
	// a rotation by `slots` must therefore be the identity.
	p, cl, ev := newTestContext(t, 7, 3, 16, []int{16})
	a := rampVector(p.Slots)
	ct := cl.Encrypt(a)
	got := cl.Decrypt(ev.Rotate(ct, 16))
	if err := maxErr(got, a); err > 1e-5 {
		t.Errorf("rotation by slot count is not identity under sparse packing: %g", err)
	}
}

func TestPaperParams(t *testing.T) {
	p := HEAPPaperParams()
	if p.LogN != 13 || p.MaxLevel() != 6 {
		t.Fatalf("paper params: logN=%d L=%d", p.LogN, p.MaxLevel())
	}
	if got := p.LogQTotal(); got < 210 || got > 217 {
		t.Errorf("paper logQ = %d, want ≈216", got)
	}
	for _, q := range p.Q {
		if q>>35 != 1 {
			t.Errorf("limb %d is not a 36-bit prime", q)
		}
	}
}

func TestNoiseBitsDiagnostic(t *testing.T) {
	p := TestParams(6, 3, 32)
	kg := rlwe.NewKeyGenerator(p.Parameters, 130)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 131)
	v := rampVector(p.Slots)
	ct := cl.Encrypt(v)
	bits := cl.NoiseBits(ct, v)
	// Fresh encryption noise ≈ σ·√N-ish ≈ 2^7±; far below the 43-bit scale.
	if bits < 1 || bits > 25 {
		t.Errorf("fresh-ciphertext noise %f bits outside the expected band", bits)
	}
	// A wrong expectation reports huge noise.
	w := make([]complex128, p.Slots)
	if cl.NoiseBits(ct, w) < 40 {
		t.Error("noise against wrong expectation should approach the scale")
	}
}
