package ckks

import (
	"math"
	"math/cmplx"
	"testing"

	"heap/internal/rlwe"
)

func TestChebyshevPlaintextFit(t *testing.T) {
	f := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) } // sigmoid
	a, b := -4.0, 4.0
	c := ApproximateChebyshev(f, a, b, 15)
	for _, x := range []float64{-3.5, -1, 0, 0.7, 2, 3.9} {
		u := 2*(x-a)/(b-a) - 1
		got := real(c.Eval(u))
		if e := math.Abs(got - f(x)); e > 1e-4 {
			t.Errorf("sigmoid fit at %g: got %g want %g (err %g)", x, got, f(x), e)
		}
	}
}

func TestEvalChebyshevHomomorphic(t *testing.T) {
	p := TestParams(7, 10, 64)
	kg := rlwe.NewKeyGenerator(p.Parameters, 110)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 111)
	keys := GenEvaluationKeySet(p, kg, sk, nil, false)
	ev := NewEvaluator(p, keys, nil)

	// Degree-7 approximation of a smooth odd-ish function on [-1, 1].
	f := func(x float64) float64 { return 0.5 + 0.25*x - 0.02*x*x*x }
	c := ApproximateChebyshev(f, -1, 1, 7)

	v := make([]complex128, p.Slots)
	for i := range v {
		v[i] = complex(2*float64(i)/float64(p.Slots)-1, 0) // u ∈ [-1, 1)
	}
	ct := cl.Encrypt(v)
	out := ev.EvalChebyshev(ct, c)
	got := cl.Decrypt(out)
	for i := range v {
		want := f(real(v[i]))
		if e := cmplx.Abs(got[i] - complex(want, 0)); e > 1e-3 {
			t.Fatalf("slot %d (u=%g): got %v want %g (err %g)", i, real(v[i]), got[i], want, e)
		}
	}
}

func TestEvalChebyshevDegree27ReLU(t *testing.T) {
	if testing.Short() {
		t.Skip("deep polynomial evaluation is slow")
	}
	// The Lee et al. ResNet schedule evaluates a degree-27 polynomial ReLU;
	// check our evaluator survives that depth with adequate accuracy away
	// from the kink.
	p := TestParams(7, 14, 64)
	kg := rlwe.NewKeyGenerator(p.Parameters, 112)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 113)
	keys := GenEvaluationKeySet(p, kg, sk, nil, false)
	ev := NewEvaluator(p, keys, nil)

	relu := func(x float64) float64 { return math.Max(0, x) }
	c := ApproximateChebyshev(relu, -1, 1, 27)
	v := make([]complex128, p.Slots)
	for i := range v {
		v[i] = complex(2*float64(i)/float64(p.Slots)-1, 0)
	}
	ct := cl.Encrypt(v)
	out := ev.EvalChebyshev(ct, c)
	got := cl.Decrypt(out)
	for i := range v {
		x := real(v[i])
		if math.Abs(x) < 0.15 {
			continue // the kink region needs much higher degree
		}
		if e := cmplx.Abs(got[i] - complex(relu(x), 0)); e > 0.03 {
			t.Fatalf("slot %d (x=%g): ReLU approx error %g", i, x, e)
		}
	}
}

func TestInnerSum(t *testing.T) {
	p := TestParams(6, 3, 32)
	kg := rlwe.NewKeyGenerator(p.Parameters, 114)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := NewClient(p, sk, 115)
	rot := []int{}
	for r := 1; r < p.Slots; r <<= 1 {
		rot = append(rot, r)
	}
	keys := GenEvaluationKeySet(p, kg, sk, rot, false)
	ev := NewEvaluator(p, keys, nil)

	v := rampVector(p.Slots)
	var want complex128
	for _, x := range v {
		want += x
	}
	ct := cl.Encrypt(v)
	got := cl.Decrypt(ev.InnerSum(ct, p.Slots))
	for i := range got {
		if e := cmplx.Abs(got[i] - want); e > 1e-4 {
			t.Fatalf("slot %d: inner sum %v want %v", i, got[i], want)
		}
	}
}
