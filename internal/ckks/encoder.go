package ckks

import (
	"math"
	"math/big"
	"math/cmplx"

	"heap/internal/rns"
)

// Encoder maps complex slot vectors to ring plaintexts through the canonical
// embedding: slot j holds the polynomial's value at the primitive 2N-th root
// ζ^{5^j}. The special FFT below is the standard HEAAN/Lattigo formulation.
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^j mod 2N
	roots    []complex128 // e^{iπk/N} for k < 2N
}

// NewEncoder precomputes the embedding tables.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	e := &Encoder{params: params, m: m}
	e.rotGroup = make([]int, n/2)
	fivePow := 1
	for i := range e.rotGroup {
		e.rotGroup[i] = fivePow
		fivePow = fivePow * 5 % m
	}
	e.roots = make([]complex128, m+1)
	for i := 0; i <= m; i++ {
		angle := 2 * math.Pi * float64(i) / float64(m)
		e.roots[i] = cmplx.Rect(1, angle)
	}
	return e
}

func bitReversePermute(v []complex128) {
	n := len(v)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// specialFFT evaluates the polynomial at the 5^j-orbit roots (decode
// direction).
func (e *Encoder) specialFFT(vals []complex128) {
	bitReversePermute(vals)
	n := len(vals)
	for lenn := 2; lenn <= n; lenn <<= 1 {
		lenh, lenq := lenn>>1, lenn<<2
		for i := 0; i < n; i += lenn {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * (e.m / lenq)
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// specialInvFFT interpolates slot values into polynomial coefficients
// (encode direction).
func (e *Encoder) specialInvFFT(vals []complex128) {
	n := len(vals)
	for lenn := n; lenn >= 2; lenn >>= 1 {
		lenh, lenq := lenn>>1, lenn<<2
		for i := 0; i < n; i += lenn {
			for j := 0; j < lenh; j++ {
				idx := (lenq - e.rotGroup[j]%lenq) * (e.m / lenq)
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReversePermute(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// EncodeAtLevel encodes values (length ≤ params.Slots; shorter vectors are
// zero-padded, and sparse packings are replicated into the full slot count)
// into an NTT-form plaintext polynomial at the given level and scale.
func (e *Encoder) EncodeAtLevel(values []complex128, scale float64, level int) rns.Poly {
	n := e.params.N()
	full := n / 2
	vals := make([]complex128, full)
	if len(values) > e.params.Slots {
		panic("ckks: too many values for the parameter slot count")
	}
	// Replicate the slot vector to fill N/2 slots so the underlying
	// polynomial lives in the subring (standard sparse packing).
	rep := full / e.params.Slots
	for r := 0; r < rep; r++ {
		copy(vals[r*e.params.Slots:(r+1)*e.params.Slots], values)
	}
	e.specialInvFFT(vals)

	b := e.params.QBasis.AtLevel(level)
	pt := b.NewPoly()

	// Fast path: when every scaled coefficient fits comfortably in int64,
	// skip big-integer encoding entirely.
	maxMag := 0.0
	for _, v := range vals {
		if m := math.Abs(real(v)); m > maxMag {
			maxMag = m
		}
		if m := math.Abs(imag(v)); m > maxMag {
			maxMag = m
		}
	}
	if maxMag*scale < float64(1<<62) {
		signed := make([]int64, n)
		for j := 0; j < full; j++ {
			signed[j] = int64(math.Round(real(vals[j]) * scale))
			signed[j+full] = int64(math.Round(imag(vals[j]) * scale))
		}
		b.SetSigned(signed, pt)
		b.NTT(pt)
		return pt
	}

	coeffs := make([]*big.Int, n)
	for j := 0; j < full; j++ {
		coeffs[j] = roundToBig(real(vals[j]) * scale)
		coeffs[j+full] = roundToBig(imag(vals[j]) * scale)
	}
	setBigSigned(b, coeffs, pt)
	b.NTT(pt)
	return pt
}

// Decode converts a decrypted phase (centered big-int coefficients) back to
// the slot vector at the given scale.
func (e *Encoder) Decode(phase []*big.Int, scale float64) []complex128 {
	n := e.params.N()
	full := n / 2
	vals := make([]complex128, full)
	for j := 0; j < full; j++ {
		re := bigToFloat(phase[j]) / scale
		im := bigToFloat(phase[j+full]) / scale
		vals[j] = complex(re, im)
	}
	e.specialFFT(vals)
	return vals[:e.params.Slots]
}

func roundToBig(f float64) *big.Int {
	bf := new(big.Float).SetFloat64(f)
	half := big.NewFloat(0.5)
	if f >= 0 {
		bf.Add(bf, half)
	} else {
		bf.Sub(bf, half)
	}
	out, _ := bf.Int(nil)
	return out
}

func bigToFloat(b *big.Int) float64 {
	f, _ := new(big.Float).SetInt(b).Float64()
	return f
}

// setBigSigned writes signed big-int coefficients into every limb.
func setBigSigned(b *rns.Basis, coeffs []*big.Int, p rns.Poly) {
	for i := 0; i < p.Level(); i++ {
		q := new(big.Int).SetUint64(b.Rings[i].Mod.Q)
		t := new(big.Int)
		for j, c := range coeffs {
			t.Mod(c, q)
			p.Limbs[i][j] = t.Uint64()
		}
	}
}
