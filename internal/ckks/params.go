// Package ckks implements the CKKS approximate homomorphic encryption
// scheme on the shared rlwe substrate: canonical-embedding encoding, the
// primitive operations of §II-A (PtAdd, Add, PtMult, Mult, Rescale, Rotate,
// Conjugate), homomorphic linear transforms, and the conventional CKKS
// bootstrapping pipeline of Figure 1(a) (ModRaise → CoeffToSlot → EvalMod →
// SlotToCoeff) that serves as the baseline HEAP's scheme-switching
// bootstrapper replaces.
package ckks

import (
	"fmt"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

// Parameters wraps the RLWE parameter set with CKKS-specific metadata.
type Parameters struct {
	*rlwe.Parameters
	// DefaultScale is the plaintext scale Δ (§II-A: "the scale factor is
	// the size of one of the limbs of the ciphertext").
	DefaultScale float64
	// Slots is the default number of packed plaintext slots (≤ N/2).
	Slots int
}

// NewParameters builds a CKKS parameter set. slots must be a power of two
// no greater than N/2.
func NewParameters(logN int, q, p []uint64, sigma float64, dnum int, defaultScale float64, slots int) (*Parameters, error) {
	base, err := rlwe.NewParameters(logN, q, p, sigma, dnum)
	if err != nil {
		return nil, err
	}
	n := 1 << logN
	if slots <= 0 || slots > n/2 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("ckks: slots=%d invalid for N=%d", slots, n)
	}
	if defaultScale <= 1 {
		return nil, fmt.Errorf("ckks: scale must exceed 1")
	}
	return &Parameters{Parameters: base, DefaultScale: defaultScale, Slots: slots}, nil
}

// MustParameters panics on error.
func MustParameters(logN int, q, p []uint64, sigma float64, dnum int, defaultScale float64, slots int) *Parameters {
	pr, err := NewParameters(logN, q, p, sigma, dnum, defaultScale, slots)
	if err != nil {
		panic(err)
	}
	return pr
}

// HEAPPaperParams returns the paper's CKKS parameter set (§III-C):
// N = 2^13, logQ = 216 split into six 36-bit limbs plus one auxiliary
// 36-bit prime p, giving L = 6 and five multiplications between bootstraps.
// The special-modulus chain used by hybrid key switching is sized to match
// the largest gadget digit. Scale Δ is set one bit below the limb size
// ("a value close to the limb of a ciphertext", Table I).
func HEAPPaperParams() *Parameters {
	logN := 13
	q := ring.GenerateNTTPrimes(36, logN, 7) // 6 limbs + the auxiliary p
	p := ring.GenerateNTTPrimesUp(37, logN, 4)
	return MustParameters(logN, q[:6], p, ring.DefaultSigma, 2, float64(uint64(1)<<35), 1<<12)
}

// TestParams returns a small parameter set for fast unit tests: N = 2^logN
// with `limbs` 45-bit limbs and Δ = 2^43 (close to the limb size, as the
// paper prescribes, so the scale stays stable under repeated Rescale).
func TestParams(logN, limbs, slots int) *Parameters {
	q := ring.GenerateNTTPrimes(45, logN, limbs)
	p := ring.GenerateNTTPrimesUp(45, logN, 3)
	// Keep gadget digits at two limbs so the three special primes always
	// cover them, whatever the chain length.
	dnum := (limbs + 1) / 2
	if dnum < 1 {
		dnum = 1
	}
	return MustParameters(logN, q, p, ring.DefaultSigma, dnum, float64(uint64(1)<<43), slots)
}
