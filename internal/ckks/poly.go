package ckks

import (
	"math"

	"heap/internal/rlwe"
)

// Polynomial evaluation over encrypted slots — the workhorse behind the
// non-linear activations of the paper's workloads (HELR's polynomial
// sigmoid, Lee et al.'s degree-27 ReLU approximation) and the sine
// evaluation inside the conventional bootstrap.

// Chebyshev holds the coefficients of Σ c_k·T_k(x) on [-1, 1].
type Chebyshev struct {
	Coeffs []complex128
}

// ApproximateChebyshev fits a degree-d Chebyshev series to f on [a, b]
// using the standard cosine-node projection.
func ApproximateChebyshev(f func(float64) float64, a, b float64, degree int) *Chebyshev {
	nodes := 4 * (degree + 1)
	fv := make([]float64, nodes)
	for j := 0; j < nodes; j++ {
		theta := math.Pi * (float64(j) + 0.5) / float64(nodes)
		x := math.Cos(theta)
		fv[j] = f(a + (b-a)*(x+1)/2)
	}
	c := &Chebyshev{Coeffs: make([]complex128, degree+1)}
	for k := 0; k <= degree; k++ {
		sum := 0.0
		for j := 0; j < nodes; j++ {
			theta := math.Pi * (float64(j) + 0.5) / float64(nodes)
			sum += fv[j] * math.Cos(float64(k)*theta)
		}
		sum *= 2 / float64(nodes)
		if k == 0 {
			sum /= 2
		}
		c.Coeffs[k] = complex(sum, 0)
	}
	return c
}

// Eval evaluates the series at a plaintext point (for tests/diagnostics),
// mapping x from [a,b] handled by the caller: the argument here is the
// normalized u ∈ [-1, 1].
func (c *Chebyshev) Eval(u float64) complex128 {
	// Clenshaw recurrence.
	var b1, b2 complex128
	for k := len(c.Coeffs) - 1; k >= 1; k-- {
		b1, b2 = c.Coeffs[k]+complex(2*u, 0)*b1-b2, b1
	}
	return c.Coeffs[0] + complex(u, 0)*b1 - b2
}

// EvalChebyshev homomorphically evaluates the series on a ciphertext whose
// slot values are already normalized to [-1, 1]. Chebyshev basis
// polynomials are built with the stable doubling identities
// T_{2k} = 2T_k² − 1 and T_{2k+1} = 2T_k·T_{k+1} − T_1, giving logarithmic
// multiplicative depth; every term is aligned to scale Δ via
// MulConstToScale so additions stay exact.
func (ev *Evaluator) EvalChebyshev(ct *rlwe.Ciphertext, c *Chebyshev) *rlwe.Ciphertext {
	delta := ev.Params.DefaultScale
	degree := len(c.Coeffs) - 1
	if degree < 1 {
		out := rlwe.NewCiphertext(ev.Params.Parameters, ct.Level())
		out.Scale = ct.Scale
		return ev.AddConst(out, c.Coeffs[0])
	}
	// Build T_1..T_degree, pinning every node to scale Δ (one extra
	// constant multiplication per node) so the scale cannot collapse
	// double-exponentially along deep doubling chains.
	ts := make([]*rlwe.Ciphertext, degree+1)
	if r := ct.Scale / delta; r > 0.99 && r < 1.01 {
		ts[1] = ct.CopyNew()
		ts[1].Scale = delta
	} else {
		ts[1] = ev.MulConstToScale(ct, 1, delta)
	}
	for k := 2; k <= degree; k++ {
		half := k / 2
		var t *rlwe.Ciphertext
		if k%2 == 0 {
			// T_{2h} = 2·T_h² − 1
			a := ts[half]
			t = ev.MulConstToScale(ev.Rescale(ev.Mul(a, a)), 2, delta)
			t = ev.AddConst(t, complex(-1, 0))
		} else {
			// T_{2h+1} = 2·T_h·T_{h+1} − T_1
			a, b := ts[half], ts[half+1]
			a, b = alignLevels(ev, a, b)
			t = ev.MulConstToScale(ev.Rescale(ev.Mul(a, b)), 2, delta)
			t1 := ts[1]
			if t1.Level() > t.Level() {
				t1 = ev.DropLevels(t1, t1.Level()-t.Level())
			}
			t = ev.Sub(t, t1)
		}
		ts[k] = t
	}
	// Find the lowest level among the basis polynomials.
	low := ts[1].Level()
	for k := 2; k <= degree; k++ {
		if ts[k].Level() < low {
			low = ts[k].Level()
		}
	}
	target := low - 1
	var acc *rlwe.Ciphertext
	for k := 1; k <= degree; k++ {
		if c.Coeffs[k] == 0 {
			continue
		}
		tk := ts[k]
		if tk.Level() > target+1 {
			tk = ev.DropLevels(tk, tk.Level()-(target+1))
		}
		term := ev.MulConstToScale(tk, c.Coeffs[k], delta)
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	return ev.AddConst(acc, c.Coeffs[0])
}

// alignLevels drops the deeper operand so both sit at a common level.
func alignLevels(ev *Evaluator, a, b *rlwe.Ciphertext) (*rlwe.Ciphertext, *rlwe.Ciphertext) {
	if a.Level() > b.Level() {
		a = ev.DropLevels(a, a.Level()-b.Level())
	} else if b.Level() > a.Level() {
		b = ev.DropLevels(b, b.Level()-a.Level())
	}
	// Multiplication tolerates scale differences (tracked exactly); only
	// additions need matching, handled by callers.
	return a, b
}

// InnerSum rotates-and-adds so every slot holds the sum of all n slots
// (n a power of two) — the reduction used by the LR gradient and the
// average-pooling layer of ResNet.
func (ev *Evaluator) InnerSum(ct *rlwe.Ciphertext, n int) *rlwe.Ciphertext {
	out := ct
	for r := 1; r < n; r <<= 1 {
		out = ev.Add(out, ev.Rotate(out, r))
	}
	return out
}
