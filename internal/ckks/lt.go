package ckks

import (
	"fmt"
	"math"

	"heap/internal/rlwe"
	"heap/internal/rns"
)

// LinearTransform is a homomorphic slot-space matrix-vector product
// M·z = Σ_k diag_k(M) ⊙ rot_k(z), evaluated with the baby-step giant-step
// split k = g·a + b that the CKKS bootstrapping literature uses for its
// homomorphic DFTs ([28], [10] in the paper's related-work discussion).
type LinearTransform struct {
	Slots int
	Level int     // level the diagonals are encoded at
	Scale float64 // plaintext scale of the diagonals
	G     int     // baby-step count

	// Pre-rotated encoded diagonals: diags[k] = encode(rot_{-g·⌊k/g⌋}(diag_k)).
	diags map[int]rns.Poly
}

// NewLinearTransform encodes the nonzero diagonals of the slots×slots matrix
// m (row, col indexed) at the given level and scale.
func NewLinearTransform(enc *Encoder, m func(row, col int) complex128, slots, level int, scale float64) *LinearTransform {
	g := 1 << (bitsLen(slots) / 2)
	if g < 1 {
		g = 1
	}
	lt := &LinearTransform{Slots: slots, Level: level, Scale: scale, G: g, diags: make(map[int]rns.Poly)}
	diag := make([]complex128, slots)
	for k := 0; k < slots; k++ {
		nonzero := false
		for j := 0; j < slots; j++ {
			diag[j] = m(j, (j+k)%slots)
			if diag[j] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		// Pre-rotate by −g·⌊k/g⌋ so the giant-step rotation lands right.
		shift := g * (k / g)
		rotated := make([]complex128, slots)
		for j := 0; j < slots; j++ {
			rotated[j] = diag[((j-shift)%slots+slots)%slots]
		}
		lt.diags[k] = enc.EncodeAtLevel(rotated, scale, level)
	}
	return lt
}

func bitsLen(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Rotations returns every rotation index the evaluation needs, for Galois
// key generation.
func (lt *LinearTransform) Rotations() []int {
	seen := map[int]bool{}
	for k := range lt.diags {
		seen[k%lt.G] = true
		seen[lt.G*(k/lt.G)] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		if k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// EvalLinearTransform applies lt to ct. The result has scale
// ct.Scale·lt.Scale; the caller rescales.
func (ev *Evaluator) EvalLinearTransform(ct *rlwe.Ciphertext, lt *LinearTransform) *rlwe.Ciphertext {
	level := ct.Level()
	if lt.Level < level {
		level = lt.Level
	}
	in := ct
	if in.Level() > level {
		in = ev.DropLevels(in, in.Level()-level)
	}

	// Baby rotations (computed lazily), hoisted: all baby steps rotate the
	// same input, so its c1 component is gadget-decomposed once and every
	// rotation reuses the digits — G−1 permute+MAC tails for the price of a
	// single decomposition (ARK's decompose-once/apply-many key reuse). The
	// giant steps below rotate distinct partial sums and keep the plain path.
	var hoisted *rlwe.Hoisted
	babies := map[int]*rlwe.Ciphertext{0: in}
	baby := func(b int) *rlwe.Ciphertext {
		if c, ok := babies[b]; ok {
			return c
		}
		g := ev.Params.QBasis.Rings[0].GaloisElementForRotation(b)
		gk, ok := ev.Keys.GaloisKeys[g]
		if !ok {
			panic(fmt.Sprintf("ckks: missing rotation key for k=%d (galois %d)", b, g))
		}
		if hoisted == nil {
			hoisted = ev.KS.Decompose(in.C1)
		}
		c := ev.KS.ApplyGaloisHoisted(in, hoisted, g, gk)
		babies[b] = c
		return c
	}

	var out *rlwe.Ciphertext
	maxA := 0
	for k := range lt.diags {
		if a := k / lt.G; a > maxA {
			maxA = a
		}
	}
	for a := 0; a <= maxA; a++ {
		var inner *rlwe.Ciphertext
		for b := 0; b < lt.G; b++ {
			pt, ok := lt.diags[a*lt.G+b]
			if !ok {
				continue
			}
			term := ev.MulPlain(baby(b), pt.AtLevel(level), lt.Scale)
			if inner == nil {
				inner = term
			} else {
				inner = ev.Add(inner, term)
			}
		}
		if inner == nil {
			continue
		}
		if a > 0 {
			inner = ev.Rotate(inner, a*lt.G)
		}
		if out == nil {
			out = inner
		} else {
			out = ev.Add(out, inner)
		}
	}
	if out == nil {
		z := rlwe.NewCiphertext(ev.Params.Parameters, level)
		z.Scale = ct.Scale * lt.Scale
		return z
	}
	return out
}

// MulConstToScale multiplies ct by the complex constant c and rescales so
// the output lands exactly at targetScale — the scale-management primitive
// that keeps the bootstrapping pipeline's additions aligned.
func (ev *Evaluator) MulConstToScale(ct *rlwe.Ciphertext, c complex128, targetScale float64) *rlwe.Ciphertext {
	level := ct.Level()
	qLast := float64(ev.Params.Q[level-1])
	aux := targetScale * qLast / ct.Scale
	if aux < 1 {
		panic("ckks: MulConstToScale would lose all precision (aux scale < 1)")
	}
	out := ev.Rescale(ev.MulByComplexConst(ct, c, aux))
	out.Scale = targetScale
	return out
}

// RescaleToScale rescales and pins the tracked scale to targetScale
// (absorbing the ~2^-40 relative drift between the true and tracked scale).
func (ev *Evaluator) RescaleToScale(ct *rlwe.Ciphertext, targetScale float64) *rlwe.Ciphertext {
	out := ev.Rescale(ct)
	if r := out.Scale / targetScale; r < 0.99 || r > 1.01 {
		panic("ckks: RescaleToScale drift exceeds 1%")
	}
	out.Scale = targetScale
	return out
}

var _ = math.Round
