package ckks

import (
	"math"

	"heap/internal/rlwe"
)

// Client bundles the user-side objects: encoder, encryptor, decryptor.
type Client struct {
	Params  *Parameters
	Encoder *Encoder
	enc     *rlwe.Encryptor
	dec     *rlwe.Decryptor
}

// NewClient builds the client side for a secret key.
func NewClient(params *Parameters, sk *rlwe.SecretKey, seed uint64) *Client {
	return &Client{
		Params:  params,
		Encoder: NewEncoder(params),
		enc:     rlwe.NewEncryptor(params.Parameters, sk, seed),
		dec:     rlwe.NewDecryptor(params.Parameters, sk),
	}
}

// EncryptAtLevel encodes and encrypts a complex vector at a level with the
// default scale.
func (c *Client) EncryptAtLevel(values []complex128, level int) *rlwe.Ciphertext {
	pt := c.Encoder.EncodeAtLevel(values, c.Params.DefaultScale, level)
	return c.enc.EncryptPolyAtLevel(pt, level, c.Params.DefaultScale)
}

// Encrypt encrypts at the maximum level.
func (c *Client) Encrypt(values []complex128) *rlwe.Ciphertext {
	return c.EncryptAtLevel(values, c.Params.MaxLevel())
}

// Decrypt returns the decoded slot values of a ciphertext.
func (c *Client) Decrypt(ct *rlwe.Ciphertext) []complex128 {
	return c.Encoder.Decode(c.dec.PhaseCentered(ct), ct.Scale)
}

// Decryptor exposes the raw phase decryptor (used by tests and the
// bootstrappers' diagnostics).
func (c *Client) Decryptor() *rlwe.Decryptor { return c.dec }

// NoiseBits measures the ciphertext's effective noise: it decrypts, compares
// against the expected slot values, and returns log2 of the largest absolute
// error times the scale — i.e. the noise magnitude in bits. A healthy
// ciphertext reports far fewer bits than log2(Scale); diagnostics for
// parameter tuning and bootstrap-quality tracking.
func (c *Client) NoiseBits(ct *rlwe.Ciphertext, expected []complex128) float64 {
	got := c.Decrypt(ct)
	worst := 0.0
	for i := range expected {
		re := real(got[i]) - real(expected[i])
		im := imag(got[i]) - imag(expected[i])
		if e := re*re + im*im; e > worst {
			worst = e
		}
	}
	if worst == 0 {
		return 0
	}
	return 0.5*math.Log2(worst) + math.Log2(ct.Scale)
}
