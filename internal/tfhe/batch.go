package tfhe

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heap/internal/obs"
	"heap/internal/rlwe"
)

// This file is the key-major batched blind-rotate engine. The per-ciphertext
// loop in blindrotate.go is ciphertext-major: for each LWE ciphertext it
// streams the entire blind-rotate key (hundreds of MB at paper parameters)
// through cache once. But HEAP's premise (§V) is the opposite schedule: the
// n_br extracted LWE ciphertexts are rotated against ONE shared key, so the
// FPGA keeps each BRK slab resident in URAM and reuses it across shards.
//
// BlindRotateTileInto realizes that schedule in software: the outer loop
// walks the BRK index i, the inner loop advances a tile of accumulators, so
// brk.Plus[i]/brk.Minus[i] and their decomposition constants are pulled
// through cache once per tile instead of once per ciphertext. Correctness is
// immediate: each accumulator still sees exactly the per-ciphertext CMux
// sequence (the rotations of different accumulators are independent), so the
// batched engine is bit-exact against BlindRotateInto — locked by the
// property tests in batch_test.go.
//
// BlindRotateBatchInto fans tiles out across a worker pool, each worker
// owning one BatchScratch arena (the PR 2 zero-alloc discipline: nothing but
// the retained accumulators is allocated in steady state).

// DefaultTile is the number of accumulators that advance together through
// the key-major schedule when the caller does not choose one. At paper
// parameters one RGSW key pair is a few MB — far larger than L2 — so even a
// small tile converts the key stream from once-per-ciphertext to
// once-per-tile; 8 keeps the tile's accumulators and the scratch arena
// cache-resident while already capturing an 8× key-traffic reduction.
const DefaultTile = 8

// BatchScratch is the per-worker arena of the batched engine: the underlying
// single-rotation scratch plus the transposed mask tile. One arena per
// worker keeps the whole key-major schedule allocation-free in steady state.
// A BatchScratch must not be shared between concurrent tiles.
type BatchScratch struct {
	// Scratch holds the rotate/external-product buffers shared with the
	// per-ciphertext path.
	Scratch *Scratch
	// aT is the key-major transpose of the tile's masks: aT[i*T+j] is
	// a_{j,i} mod 2N for tile slot j — laid out so the inner loop over the
	// tile reads contiguously. Doing the reduction once at transpose time
	// hoists the per-aᵢ monomial bookkeeping out of the key loop.
	aT []uint64
}

// NewBatchScratch allocates a batched blind-rotation scratch arena. Buffers
// are sized lazily by the first tile, so one arena serves any tile size.
func (ev *Evaluator) NewBatchScratch() *BatchScratch {
	return &BatchScratch{Scratch: ev.NewScratch()}
}

func (bsc *BatchScratch) ensure(n int) {
	if cap(bsc.aT) < n {
		bsc.aT = make([]uint64, n)
	}
	bsc.aT = bsc.aT[:n]
}

func (ev *Evaluator) getBatchScratch() *BatchScratch {
	return ev.batchScratchPool.Get().(*BatchScratch)
}
func (ev *Evaluator) putBatchScratch(bsc *BatchScratch) { ev.batchScratchPool.Put(bsc) }

// BlindRotateTileInto blind-rotates one tile of LWE ciphertexts into the
// caller-owned accumulators with the key-index-major schedule described
// above. It is the single-threaded building block of BlindRotateBatchInto;
// callers that manage their own worker fan-out (the cluster's runLocal) use
// it directly. len(accs) must equal len(lwes); input validation matches
// BlindRotateInto and panics on malformed inputs. Allocation-free in steady
// state.
func (ev *Evaluator) BlindRotateTileInto(accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, lut *LookupTable, brk *BlindRotateKey, bsc *BatchScratch) {
	T := len(accs)
	if T == 0 {
		return
	}
	if len(lwes) != T {
		panic("tfhe: tile accumulator/LWE count mismatch")
	}
	n := ev.Params.N()
	twoN := uint64(2 * n)
	nk := brk.NumKeys()
	level := lut.Level
	sc := bsc.Scratch
	sc.ensure(ev.Params, level)
	bsc.ensure(nk * T)
	b := ev.Params.QBasis.AtLevel(level)

	// Per-ciphertext setup: ACC_j ← (f·X^{b_j}, 0) exactly as the scalar
	// path, plus the key-major mask transpose (reduced mod 2N once, here).
	for j, lwe := range lwes {
		if lwe.Q != twoN {
			panic("tfhe: BlindRotate requires an LWE ciphertext at modulus 2N")
		}
		if len(lwe.A) != nk {
			panic("tfhe: LWE dimension does not match blind-rotate key")
		}
		acc := accs[j]
		if acc.Level() != level {
			panic("tfhe: accumulator level does not match lookup table")
		}
		acc.IsNTT = false
		acc.Scale = 1
		for i := 0; i < level; i++ {
			b.Rings[i].MulByMonomialInto(lut.Poly.Limbs[i], int(lwe.B%twoN), acc.C0.Limbs[i])
		}
		acc.C1.Zero()
		for i, ai := range lwe.A {
			bsc.aT[i*T+j] = ai % twoN
		}
	}

	// Key-major sweep: brk.Plus[i]/brk.Minus[i] stay hot across the whole
	// tile. A key index no ciphertext in the tile uses (all-zero row) is
	// never touched and never counted.
	keyBytes := uint64(brk.PerKeyBytes())
	var streamed uint64
	for i := 0; i < nk; i++ {
		row := bsc.aT[i*T : i*T+T]
		touched := false
		for j, k := range row {
			if k == 0 {
				continue
			}
			touched = true
			ev.cmuxStep(accs[j], int(k), brk.Plus[i], level, sc)
			if !brk.Binary {
				ev.cmuxStep(accs[j], -int(k), brk.Minus[i], level, sc)
			}
		}
		if touched {
			streamed += keyBytes
		}
	}
	rec := ev.KS.Recorder()
	rec.Add(obs.CounterBRKBytesStreamed, streamed)
	rec.Add(obs.CounterBlindRotateTile, 1)
	rec.Add(obs.CounterBlindRotate, uint64(T))
}

// BatchOptions tunes BlindRotateBatchInto.
type BatchOptions struct {
	// Tile is the number of accumulators that share one pass over the key
	// (≤ 0 selects DefaultTile). The key-traffic reduction is the average
	// tile fill, so larger tiles stream fewer key bytes, at the cost of a
	// larger working set of accumulators per worker.
	Tile int
	// Workers is the fan-out width; ≤ 1 runs every tile on the calling
	// goroutine (the allocation-free path the AllocsPerRun lock covers).
	Workers int
	// BaseLane offsets the shard lanes per-tile BlindRotate spans are
	// recorded on: worker w records on lane BaseLane+w.
	BaseLane int
	// NewAcc supplies an accumulator for each nil entry of accs; nil
	// defaults to a fresh ciphertext at the lookup-table level. Callers with
	// recycling pools (the cluster secondary) inject theirs here. Must be
	// safe for concurrent use when Workers > 1.
	NewAcc func() *rlwe.Ciphertext
	// OnTile, when non-nil, is called from the worker goroutine after the
	// tile covering batch indices [lo, hi) completes — the hook the cluster
	// secondary streams finished accumulators back through, preserving the
	// rotate/network overlap. A non-nil error stops the batch: no new tiles
	// start, in-flight tiles finish, and the error is returned. Must be safe
	// for concurrent use when Workers > 1.
	OnTile func(lo, hi int) error
}

// BlindRotateBatchInto blind-rotates lwes[j] into accs[j] for every j,
// fanning key-major tiles (see BlindRotateTileInto) across a worker pool.
// Nil entries of accs are filled via opts.NewAcc; non-nil entries must be at
// the lookup-table level. Each worker owns a pooled BatchScratch, so steady
// state allocates only the accumulators the caller did not supply. Tiles are
// claimed from an atomic cursor, and each completed tile is reported through
// opts.OnTile. Panics from malformed inputs (wrong LWE modulus/dimension,
// wrong accumulator level) are recovered and returned as errors naming the
// tile, so one bad shard cannot take down a serving node.
func (ev *Evaluator) BlindRotateBatchInto(accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, lut *LookupTable, brk *BlindRotateKey, opts BatchOptions) error {
	if len(accs) != len(lwes) {
		return fmt.Errorf("tfhe: %d accumulators for %d LWE ciphertexts", len(accs), len(lwes))
	}
	n := len(lwes)
	if n == 0 {
		return nil
	}
	tile := opts.Tile
	if tile <= 0 {
		tile = DefaultTile
	}
	numTiles := (n + tile - 1) / tile
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > numTiles {
		workers = numTiles
	}
	newAcc := opts.NewAcc
	if newAcc == nil {
		newAcc = func() *rlwe.Ciphertext { return rlwe.NewCiphertext(ev.Params, lut.Level) }
	}
	rec := ev.KS.Recorder()

	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	work := func(lane int, bsc *BatchScratch) {
		for !stop.Load() {
			t := int(cursor.Add(1)) - 1
			if t >= numTiles {
				return
			}
			lo := t * tile
			hi := lo + tile
			if hi > n {
				hi = n
			}
			for j := lo; j < hi; j++ {
				if accs[j] == nil {
					accs[j] = newAcc()
				}
			}
			err := func() (err error) {
				tok := rec.Begin(obs.StageBlindRotate, lane)
				defer rec.End(obs.StageBlindRotate, lane, tok)
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("tfhe: blind rotation of batch indices [%d,%d): %v", lo, hi, r)
					}
				}()
				ev.BlindRotateTileInto(accs[lo:hi], lwes[lo:hi], lut, brk, bsc)
				return nil
			}()
			if err == nil && opts.OnTile != nil {
				err = opts.OnTile(lo, hi)
			}
			if err != nil {
				fail(err)
				return
			}
		}
	}

	if workers == 1 {
		bsc := ev.getBatchScratch()
		work(opts.BaseLane, bsc)
		ev.putBatchScratch(bsc)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bsc := ev.getBatchScratch()
				work(opts.BaseLane+w, bsc)
				ev.putBatchScratch(bsc)
			}(w)
		}
		wg.Wait()
	}
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}
