package tfhe

import (
	"testing"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

func gateContext(t *testing.T) (*rlwe.Parameters, *GateKeySet, *Evaluator, *rlwe.LWESecretKey, *ring.Sampler) {
	t.Helper()
	q := ring.GenerateNTTPrimes(40, 6, 2)
	p := ring.GenerateNTTPrimesUp(40, 6, 2)
	params := rlwe.MustParameters(6, q, p, ring.DefaultSigma, 2)
	kg := rlwe.NewKeyGenerator(params, 80)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(16, rlwe.SecretBinary)
	s := ring.NewSampler(81)
	gk := NewGateKeySet(params, kg, lweSK, rsk, 10, s)
	ev := NewEvaluator(params, nil)
	return params, gk, ev, lweSK, s
}

// TestGateBootstrapping exercises the §VII-A standalone-TFHE gates over all
// input combinations: each gate must return the correct, noise-refreshed
// bit.
func TestGateBootstrapping(t *testing.T) {
	params, gk, ev, lweSK, s := gateContext(t)
	truth := []struct {
		name string
		f    func(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext
		want func(a, b bool) bool
	}{
		{"NAND", func(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext { return gk.NAND(ev, a, b) },
			func(a, b bool) bool { return !(a && b) }},
		{"AND", func(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext { return gk.AND(ev, a, b) },
			func(a, b bool) bool { return a && b }},
		{"OR", func(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext { return gk.OR(ev, a, b) },
			func(a, b bool) bool { return a || b }},
		{"XOR", func(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext { return gk.XOR(ev, a, b) },
			func(a, b bool) bool { return a != b }},
	}
	for _, g := range truth {
		for _, av := range []bool{false, true} {
			for _, bv := range []bool{false, true} {
				ca := EncryptBit(av, params, lweSK.Signed, s)
				cb := EncryptBit(bv, params, lweSK.Signed, s)
				out := g.f(ca, cb)
				if got, want := DecryptBit(out, lweSK.Signed), g.want(av, bv); got != want {
					t.Errorf("%s(%v,%v) = %v want %v", g.name, av, bv, got, want)
				}
			}
		}
	}
}

// TestNOTGate checks the linear (non-bootstrapped) negation.
func TestNOTGate(t *testing.T) {
	params, gk, _, lweSK, s := gateContext(t)
	for _, bv := range []bool{false, true} {
		ct := EncryptBit(bv, params, lweSK.Signed, s)
		if got := DecryptBit(gk.NOT(ct), lweSK.Signed); got != !bv {
			t.Errorf("NOT(%v) = %v", bv, got)
		}
	}
}

// TestGateChainRefreshesNoise composes many gates in sequence — only
// possible because every gate bootstraps: a NAND-built NOT chain of depth 24
// must still decrypt correctly.
func TestGateChainRefreshesNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("gate chain is slow")
	}
	params, gk, ev, lweSK, s := gateContext(t)
	ct := EncryptBit(true, params, lweSK.Signed, s)
	val := true
	for i := 0; i < 24; i++ {
		ct = gk.NAND(ev, ct, ct) // NAND(x,x) = NOT x
		val = !val
	}
	if got := DecryptBit(ct, lweSK.Signed); got != val {
		t.Errorf("24-deep NAND chain: got %v want %v", got, val)
	}
}
