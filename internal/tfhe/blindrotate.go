package tfhe

import (
	"sync"

	"heap/internal/obs"
	"heap/internal/rlwe"
)

// Evaluator performs blind rotations and CMux operations. It wraps the
// shared rlwe key switcher and is safe for concurrent use — one evaluator
// can serve every worker of the parallel bootstrapper.
type Evaluator struct {
	Params *rlwe.Parameters
	KS     *rlwe.KeySwitcher

	scratchPool      sync.Pool
	batchScratchPool sync.Pool
}

// NewEvaluator builds an evaluator (reusing an existing key switcher if
// provided, since its precomputed conversion tables are large).
func NewEvaluator(params *rlwe.Parameters, ks *rlwe.KeySwitcher) *Evaluator {
	if ks == nil {
		ks = rlwe.NewKeySwitcher(params)
	}
	ev := &Evaluator{Params: params, KS: ks}
	ev.scratchPool.New = func() any { return ev.NewScratch() }
	ev.batchScratchPool.New = func() any { return ev.NewBatchScratch() }
	return ev
}

// Scratch is the per-worker arena of the blind-rotation datapath: the
// rotated-difference ciphertext, the external-product output, and the
// underlying key-switch scratch. One arena per worker makes the whole
// rotate→decompose→NTT→MAC schedule (§IV-E) allocation-free in steady
// state, the software mirror of the paper's on-chip accumulator residency.
// A Scratch must not be shared between concurrent rotations.
type Scratch struct {
	rot, d *rlwe.Ciphertext
	KS     *rlwe.Scratch
}

// NewScratch allocates a blind-rotation scratch arena (ciphertext buffers
// are sized lazily to the lookup-table level of the first rotation).
func (ev *Evaluator) NewScratch() *Scratch {
	return &Scratch{KS: ev.KS.NewScratch()}
}

func (sc *Scratch) ensure(params *rlwe.Parameters, level int) {
	if sc.rot == nil || sc.rot.Level() != level {
		sc.rot = rlwe.NewCiphertext(params, level)
		sc.d = rlwe.NewCiphertext(params, level)
	}
}

func (ev *Evaluator) getScratch() *Scratch   { return ev.scratchPool.Get().(*Scratch) }
func (ev *Evaluator) putScratch(sc *Scratch) { ev.scratchPool.Put(sc) }

// BlindRotate implements Algorithm 1 of the paper: starting from the trivial
// accumulator ACC = (f·X^b, 0), it folds in each LWE mask element via
//
//	ACC ← ACC ∗ (RGSW(1) + (X^{a_i}−1)·RGSW(s_i⁺) + (X^{−a_i}−1)·RGSW(s_i⁻))
//
// realized as two CMux external products per iteration (one for binary
// keys). The input LWE ciphertext must be at modulus 2N; the output is an
// RLWE ciphertext at lut.Level whose constant coefficient encrypts g(phase).
//
// The accumulator is kept in coefficient representation between iterations:
// the monomial rotations and gadget decompositions of the BlindRotate
// datapath (§IV-E) operate on coefficients, with NTTs only inside the
// external product — exactly the rotate→decompose→NTT→MAC schedule the
// paper describes.
func (ev *Evaluator) BlindRotate(lwe *rlwe.LWECiphertext, lut *LookupTable, brk *BlindRotateKey) *rlwe.Ciphertext {
	acc := rlwe.NewCiphertext(ev.Params, lut.Level)
	sc := ev.getScratch()
	ev.BlindRotateInto(acc, lwe, lut, brk, sc)
	ev.putScratch(sc)
	return acc
}

// BlindRotateInto is BlindRotate writing into the caller-owned accumulator
// acc (at lut.Level) using the per-worker scratch arena sc. The rotation
// itself allocates nothing in steady state; a worker loop that also reuses
// its accumulators runs the full kernel with zero garbage per rotation.
func (ev *Evaluator) BlindRotateInto(acc *rlwe.Ciphertext, lwe *rlwe.LWECiphertext, lut *LookupTable, brk *BlindRotateKey, sc *Scratch) {
	n := ev.Params.N()
	twoN := uint64(2 * n)
	if lwe.Q != twoN {
		panic("tfhe: BlindRotate requires an LWE ciphertext at modulus 2N")
	}
	if len(lwe.A) != brk.NumKeys() {
		panic("tfhe: LWE dimension does not match blind-rotate key")
	}
	level := lut.Level
	if acc.Level() != level {
		panic("tfhe: accumulator level does not match lookup table")
	}
	sc.ensure(ev.Params, level)
	b := ev.Params.QBasis.AtLevel(level)

	// ACC ← (f·X^b, 0), trivial RLWE in coefficient representation.
	acc.IsNTT = false
	acc.Scale = 1
	for i := 0; i < level; i++ {
		b.Rings[i].MulByMonomialInto(lut.Poly.Limbs[i], int(lwe.B%twoN), acc.C0.Limbs[i])
	}
	acc.C1.Zero()

	keyBytes := uint64(brk.PerKeyBytes())
	var streamed uint64
	for i, ai := range lwe.A {
		ai %= twoN
		if ai == 0 {
			continue
		}
		streamed += keyBytes
		ev.cmuxStep(acc, int(ai), brk.Plus[i], level, sc)
		if !brk.Binary {
			ev.cmuxStep(acc, -int(ai), brk.Minus[i], level, sc)
		}
	}
	rec := ev.KS.Recorder()
	rec.Add(obs.CounterBRKBytesStreamed, streamed)
	rec.Add(obs.CounterBlindRotate, 1)
}

// cmuxStep computes ACC += (X^k·ACC − ACC) ⊡ rgsw in place, with the rotated
// difference and the external-product output living in the scratch arena.
func (ev *Evaluator) cmuxStep(acc *rlwe.Ciphertext, k int, rgsw *rlwe.RGSWCiphertext, level int, sc *Scratch) {
	b := ev.Params.QBasis.AtLevel(level)
	rot, d := sc.rot, sc.d
	rot.IsNTT = false
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.MulByMonomialInto(acc.C0.Limbs[i], k, rot.C0.Limbs[i])
		r.MulByMonomialInto(acc.C1.Limbs[i], k, rot.C1.Limbs[i])
		r.Sub(rot.C0.Limbs[i], acc.C0.Limbs[i], rot.C0.Limbs[i])
		r.Sub(rot.C1.Limbs[i], acc.C1.Limbs[i], rot.C1.Limbs[i])
	}
	ev.KS.ExternalProductInto(d, rot, rgsw, sc.KS) // NTT-form output
	b.INTT(d.C0)
	b.INTT(d.C1)
	ev.KS.Recorder().Add(obs.CounterNTT, uint64(2*level))
	b.Add(acc.C0, d.C0, acc.C0)
	b.Add(acc.C1, d.C1, acc.C1)
}

// CMuxInto homomorphically selects ct1 (bit=1) or ct0 (bit=0) into the
// caller-owned out: out = ct0 + (ct1 − ct0) ⊡ RGSW(bit). Inputs must share
// representation and level; out must be at the same level and must not alias
// either input. The difference and the external product live in the scratch
// arena, so the selection is allocation-free in steady state. The output is
// in NTT representation.
func (ev *Evaluator) CMuxInto(out *rlwe.Ciphertext, bit *rlwe.RGSWCiphertext, ct0, ct1 *rlwe.Ciphertext, sc *Scratch) {
	level := ct0.Level()
	if ct1.Level() != level || out.Level() != level {
		panic("tfhe: CMux operand levels differ")
	}
	if ct0.IsNTT != ct1.IsNTT {
		panic("tfhe: CMux inputs must share representation")
	}
	sc.ensure(ev.Params, level)
	b := ev.Params.QBasis.AtLevel(level)
	diff := sc.rot
	diff.IsNTT = ct1.IsNTT
	diff.Scale = ct1.Scale
	b.Sub(ct1.C0, ct0.C0, diff.C0)
	b.Sub(ct1.C1, ct0.C1, diff.C1)
	ev.KS.ExternalProductInto(sc.d, diff, bit, sc.KS) // NTT-form output
	for i := 0; i < level; i++ {
		copy(out.C0.Limbs[i], ct0.C0.Limbs[i])
		copy(out.C1.Limbs[i], ct0.C1.Limbs[i])
	}
	out.IsNTT = ct0.IsNTT
	out.Scale = ct0.Scale
	if !out.IsNTT {
		b.NTT(out.C0)
		b.NTT(out.C1)
		out.IsNTT = true
	}
	b.Add(out.C0, sc.d.C0, out.C0)
	b.Add(out.C1, sc.d.C1, out.C1)
}

// CMux is the allocating convenience form of CMuxInto, drawing its scratch
// from the evaluator's pool.
func (ev *Evaluator) CMux(bit *rlwe.RGSWCiphertext, ct0, ct1 *rlwe.Ciphertext) *rlwe.Ciphertext {
	out := rlwe.NewCiphertext(ev.Params, ct0.Level())
	sc := ev.getScratch()
	ev.CMuxInto(out, bit, ct0, ct1, sc)
	ev.putScratch(sc)
	return out
}

// InternalProductRows realizes the §VII-A InternalProduct between GGSW
// ciphertexts as "a list of independent ExternalProducts": every RLWE row of
// the gadget ciphertext b (restricted to the ciphertext modulus Q) is
// externally multiplied by a, yielding RLWE encryptions of m_a·phase(row_b).
// Reassembling the rows into a full GGSW additionally requires fresh
// special-modulus components, which the paper's offline key generation
// provides; the returned rows are the on-line computation.
func (ev *Evaluator) InternalProductRows(a *rlwe.RGSWCiphertext, b *rlwe.GadgetCiphertext) []*rlwe.Ciphertext {
	L := ev.Params.MaxLevel()
	out := make([]*rlwe.Ciphertext, b.Rows())
	for j := 0; j < b.Rows(); j++ {
		row := rlwe.NewCiphertext(ev.Params, L)
		row.C0 = b.B[j].AtLevel(L)
		row.C1 = b.A[j].AtLevel(L)
		row.IsNTT = true
		out[j] = ev.KS.ExternalProduct(row, a)
	}
	return out
}
