package tfhe

import (
	"math/big"
	"testing"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

func testParams(t *testing.T) *rlwe.Parameters {
	t.Helper()
	q := ring.GenerateNTTPrimes(40, 6, 2)
	p := ring.GenerateNTTPrimesUp(40, 6, 2)
	return rlwe.MustParameters(6, q, p, ring.DefaultSigma, 2)
}

// encryptLWEPhase builds an LWE ciphertext with exact phase u at modulus q
// under secret s (no encryption noise — phase exactness mirrors the
// floor-divided ciphertexts the bootstrapper feeds to BlindRotate).
func encryptLWEPhase(u int64, q uint64, s []int64, sampler *ring.Sampler) *rlwe.LWECiphertext {
	ct := &rlwe.LWECiphertext{A: make([]uint64, len(s)), Q: q}
	for i := range ct.A {
		ct.A[i] = sampler.UniformMod(q)
	}
	acc := uint64(((u % int64(q)) + int64(q)) % int64(q))
	for i, ai := range ct.A {
		switch s[i] {
		case 1:
			acc = (acc + q - ai) % q
		case -1:
			acc = (acc + ai) % q
		}
	}
	ct.B = acc
	return ct
}

func TestLUTMapping(t *testing.T) {
	p := testParams(t)
	n := p.N()
	g := func(u int) *big.Int { return big.NewInt(int64(u) * 1000) }
	lut := NewLUTFromBig(p, 1, g)
	r := p.QBasis.Rings[0]

	// Multiplying the LUT by X^u and reading the constant coefficient must
	// give g(signed(u)) for |signed(u)| < N/2.
	for _, u := range []int{0, 1, 5, n/2 - 1, 2*n - 1, 2*n - 7, 3*n/2 + 1} {
		rot := r.NewPoly()
		r.MulByMonomial(lut.Poly.Limbs[0], u, rot)
		signed := u % (2 * n)
		if signed >= n {
			signed -= 2 * n
		}
		want := int64(signed) * 1000
		if got := ring.CenteredRep(rot[0], r.Mod.Q); got != want {
			t.Errorf("u=%d: constant coeff %d want %d", u, got, want)
		}
	}
}

func TestBlindRotateComputesLUT(t *testing.T) {
	p := testParams(t)
	n := p.N()
	kg := rlwe.NewKeyGenerator(p, 30)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(16, rlwe.SecretBinary)
	brk := GenBlindRotateKey(kg, lweSK, rsk)
	ev := NewEvaluator(p, nil)
	dec := rlwe.NewDecryptor(p, rsk)
	s := ring.NewSampler(31)

	lut := NewLUTFromBig(p, p.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u) << 24)
	})
	for _, u := range []int64{0, 1, -1, 5, -9, int64(n/2) - 1, -int64(n / 2)} {
		lwe := encryptLWEPhase(u, uint64(2*n), lweSK.Signed, s)
		acc := ev.BlindRotate(lwe, lut, brk)
		acc2 := acc.CopyNew()
		p.QBasis.AtLevel(acc.Level()).NTT(acc2.C0)
		p.QBasis.AtLevel(acc.Level()).NTT(acc2.C1)
		acc2.IsNTT = true
		phase := dec.PhaseCentered(acc2)
		want := u << 24
		diff := new(big.Int).Sub(phase[0], big.NewInt(want))
		if diff.CmpAbs(big.NewInt(1<<20)) > 0 {
			t.Errorf("u=%d: blind rotate result off by %v", u, diff)
		}
	}
}

func TestBlindRotateTernarySecret(t *testing.T) {
	p := testParams(t)
	n := p.N()
	kg := rlwe.NewKeyGenerator(p, 32)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(12, rlwe.SecretTernary)
	brk := GenBlindRotateKey(kg, lweSK, rsk)
	if brk.Binary {
		t.Skip("sampled ternary secret happened to be binary")
	}
	ev := NewEvaluator(p, nil)
	dec := rlwe.NewDecryptor(p, rsk)
	s := ring.NewSampler(33)

	lut := NewLUTFromBig(p, p.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u) << 24)
	})
	for _, u := range []int64{3, -4, 11} {
		lwe := encryptLWEPhase(u, uint64(2*n), lweSK.Signed, s)
		acc := ev.BlindRotate(lwe, lut, brk)
		acc2 := acc.CopyNew()
		p.QBasis.AtLevel(acc.Level()).NTT(acc2.C0)
		p.QBasis.AtLevel(acc.Level()).NTT(acc2.C1)
		acc2.IsNTT = true
		phase := dec.PhaseCentered(acc2)
		diff := new(big.Int).Sub(phase[0], big.NewInt(u<<24))
		if diff.CmpAbs(big.NewInt(1<<20)) > 0 {
			t.Errorf("u=%d: ternary blind rotate off by %v", u, diff)
		}
	}
}

func TestCMux(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 34)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	enc := rlwe.NewEncryptor(p, sk, 35)
	dec := rlwe.NewDecryptor(p, sk)
	ev := NewEvaluator(p, nil)

	level := p.MaxLevel()
	b := p.QBasis.AtLevel(level)
	mk := func(v int64) *rlwe.Ciphertext {
		msg := make([]int64, p.N())
		msg[0] = v
		pt := b.NewPoly()
		b.SetSigned(msg, pt)
		b.NTT(pt)
		return enc.EncryptPolyAtLevel(pt, level, 1)
	}
	ct0, ct1 := mk(1<<26), mk(-(1 << 25))

	for bit, want := range map[int64]int64{0: 1 << 26, 1: -(1 << 25)} {
		sel := kg.GenRGSWConstant(bit, sk)
		out := ev.CMux(sel, ct0, ct1)
		phase := dec.PhaseCentered(out)
		diff := new(big.Int).Sub(phase[0], big.NewInt(want))
		if diff.CmpAbs(big.NewInt(1<<20)) > 0 {
			t.Errorf("bit=%d: CMux result off by %v", bit, diff)
		}
	}
}

func TestProgrammableBootstrap(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 36)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(16, rlwe.SecretBinary)
	s := ring.NewSampler(37)
	keys := GenPBSKeySet(p, kg, lweSK, rsk, 10, s)
	ev := NewEvaluator(p, nil)

	tt := 8 // message space [-8, 8)
	square := func(m int) int64 { return int64(m * m % 8) }
	for _, m := range []int64{0, 1, 2, 3, -1, -2, -3} {
		ct := EncryptLWE(m, tt, p.Q[0], lweSK.Signed, s, p.Sigma)
		out := ev.ProgrammableBootstrap(ct, tt, square, keys)
		if got, want := DecodeLWE(out, lweSK.Signed, tt), square(int(m)); got != want {
			t.Errorf("PBS(x²) for m=%d: got %d want %d", m, got, want)
		}
	}
}

func TestInternalProductRows(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 38)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	ev := NewEvaluator(p, nil)
	dec := rlwe.NewDecryptor(p, sk)

	// a encrypts the constant 1; the internal product must preserve each
	// row's phase up to external-product noise.
	a := kg.GenRGSWConstant(1, sk)
	msg := p.QPBasis.NewPoly()
	v := make([]int64, p.N())
	v[0] = 1 << 20
	p.QPBasis.SetSigned(v, msg)
	p.QPBasis.NTT(msg)
	b := kg.GenGadgetCiphertext(msg, sk)

	rows := ev.InternalProductRows(a, b)
	if len(rows) != b.Rows() {
		t.Fatalf("expected %d rows, got %d", b.Rows(), len(rows))
	}
	for j, row := range rows {
		wantRow := &rlwe.Ciphertext{C0: b.B[j].AtLevel(p.MaxLevel()), C1: b.A[j].AtLevel(p.MaxLevel()), IsNTT: true}
		wantPhase := dec.PhaseCentered(wantRow)
		gotPhase := dec.PhaseCentered(row)
		diff := new(big.Int).Sub(wantPhase[0], gotPhase[0])
		if diff.CmpAbs(big.NewInt(1<<18)) > 0 {
			t.Errorf("row %d: internal product changed phase by %v", j, diff)
		}
	}
}

// TestPBSNonlinearFunctions exercises the §III-A motivation directly: the
// blind-rotation function f programmed as sigmoid, ReLU and exponentiation
// over a small discretized domain.
func TestPBSNonlinearFunctions(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 120)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(16, rlwe.SecretBinary)
	s := ring.NewSampler(121)
	keys := GenPBSKeySet(p, kg, lweSK, rsk, 10, s)
	ev := NewEvaluator(p, nil)

	tt := 8
	funcs := []struct {
		name string
		f    func(m int) int64
	}{
		{"ReLU", func(m int) int64 {
			if m > 0 {
				return int64(m)
			}
			return 0
		}},
		{"sigmoid4", func(m int) int64 { // ⌊4·σ(m)⌉ over the integer domain
			switch {
			case m <= -2:
				return 0
			case m == -1:
				return 1
			case m == 0:
				return 2
			case m == 1:
				return 3
			default:
				return 3
			}
		}},
		{"exp2", func(m int) int64 { // 2^m clamped to the message space
			if m < 0 {
				return 0
			}
			v := int64(1) << uint(m)
			if v > 3 {
				v = 3
			}
			return v
		}},
	}
	for _, fn := range funcs {
		for _, m := range []int64{-3, -2, -1, 0, 1, 2, 3} {
			ct := EncryptLWE(m, tt, p.Q[0], lweSK.Signed, s, p.Sigma)
			out := ev.ProgrammableBootstrap(ct, tt, fn.f, keys)
			if got, want := DecodeLWE(out, lweSK.Signed, tt), fn.f(int(m)); got != want {
				t.Errorf("%s(%d): got %d want %d", fn.name, m, got, want)
			}
		}
	}
}
