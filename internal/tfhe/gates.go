package tfhe

import (
	"math/big"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

// Boolean gate evaluation by programmable bootstrapping — the classic TFHE
// usage the paper's §VII-A standalone-TFHE discussion covers. Bits are
// encoded as ±q/8 (message space t=4, value −1 = false, +1 = true); each
// gate is one linear combination followed by a sign-extracting PBS, which
// simultaneously computes the gate and refreshes the noise.

// GateKeySet is a PBSKeySet plus the precomputed sign lookup table.
type GateKeySet struct {
	*PBSKeySet
	signLUT *LookupTable
	params  *rlwe.Parameters
}

// NewGateKeySet builds gate-bootstrapping keys. The sign function is
// anti-periodic (sign(u+N) = −sign(u) matches −sign over the wrap), so the
// negacyclic lookup table computes it correctly over the whole circle —
// the property that makes TFHE gates work.
func NewGateKeySet(params *rlwe.Parameters, kg *rlwe.KeyGenerator, lweSK *rlwe.LWESecretKey,
	rsk *rlwe.SecretKey, logBase int, sampler *ring.Sampler) *GateKeySet {
	delta := int64(params.Q[0] / 8)
	lut := NewLUTFromBig(params, 1, func(u int) *big.Int {
		if u >= 0 {
			return big.NewInt(delta)
		}
		return big.NewInt(-delta)
	})
	return &GateKeySet{
		PBSKeySet: GenPBSKeySet(params, kg, lweSK, rsk, logBase, sampler),
		signLUT:   lut,
		params:    params,
	}
}

// EncryptBit encrypts a boolean as ±q/8 under the LWE secret.
func EncryptBit(bit bool, params *rlwe.Parameters, s []int64, sampler *ring.Sampler) *rlwe.LWECiphertext {
	m := int64(-1)
	if bit {
		m = 1
	}
	return EncryptLWE(m, 4, params.Q[0], s, sampler, params.Sigma)
}

// DecryptBit decodes a boolean.
func DecryptBit(ct *rlwe.LWECiphertext, s []int64) bool {
	return rlwe.DecryptLWE(ct, s) > 0
}

// addLWE returns a+b (componentwise, same modulus).
func addLWE(a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	q := a.Q
	out := &rlwe.LWECiphertext{A: make([]uint64, len(a.A)), Q: q}
	out.B = (a.B + b.B) % q
	for i := range out.A {
		out.A[i] = (a.A[i] + b.A[i]) % q
	}
	return out
}

// negLWE returns −a.
func negLWE(a *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	q := a.Q
	out := &rlwe.LWECiphertext{A: make([]uint64, len(a.A)), Q: q}
	if a.B%q != 0 {
		out.B = q - a.B%q
	}
	for i := range out.A {
		if a.A[i]%q != 0 {
			out.A[i] = q - a.A[i]%q
		}
	}
	return out
}

// addConstLWE adds the plaintext constant c·q/8 to the phase.
func addConstLWE(a *rlwe.LWECiphertext, c int64) *rlwe.LWECiphertext {
	q := a.Q
	out := a.CopyNew()
	delta := q / 8
	if c >= 0 {
		out.B = (out.B + uint64(c)*delta) % q
	} else {
		out.B = (out.B + q - (uint64(-c)*delta)%q) % q
	}
	return out
}

// signBootstrap runs the sign PBS: ModulusSwitch → BlindRotate(sign LUT) →
// Extract → LWE KeySwitch, returning a fresh ±q/8 encryption.
func (gk *GateKeySet) signBootstrap(ev *Evaluator, ct *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	ms := rlwe.ModSwitchLWE(ct, uint64(2*gk.params.N()))
	acc := ev.BlindRotate(ms, gk.signLUT, gk.BRK)
	out := rlwe.ExtractLWE(gk.params, acc, 0)
	return gk.LWEKSK.Apply(out)
}

// NAND computes ¬(a ∧ b): sign(q/8 − a − b).
func (gk *GateKeySet) NAND(ev *Evaluator, a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	return gk.signBootstrap(ev, addConstLWE(negLWE(addLWE(a, b)), 1))
}

// AND computes a ∧ b: sign(a + b − q/8).
func (gk *GateKeySet) AND(ev *Evaluator, a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	return gk.signBootstrap(ev, addConstLWE(addLWE(a, b), -1))
}

// OR computes a ∨ b: sign(a + b + q/8).
func (gk *GateKeySet) OR(ev *Evaluator, a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	return gk.signBootstrap(ev, addConstLWE(addLWE(a, b), 1))
}

// NOT negates without bootstrapping (noise-free).
func (gk *GateKeySet) NOT(a *rlwe.LWECiphertext) *rlwe.LWECiphertext { return negLWE(a) }

// XOR computes a ⊕ b with a three-window lookup: the sum a+b lands on
// −q/4, 0 or +q/4; the middle window is true.
func (gk *GateKeySet) XOR(ev *Evaluator, a, b *rlwe.LWECiphertext) *rlwe.LWECiphertext {
	n := gk.params.N()
	delta := int64(gk.params.Q[0] / 8)
	window := n / 4 // phase units per q/4 step after the 2N switch
	lut := NewLUTFromBig(gk.params, 1, func(u int) *big.Int {
		m := (u + window/2) / window
		if u < 0 {
			m = -((-u + window/2) / window)
		}
		if m == 0 {
			return big.NewInt(delta)
		}
		return big.NewInt(-delta)
	})
	ms := rlwe.ModSwitchLWE(addLWE(a, b), uint64(2*n))
	acc := ev.BlindRotate(ms, lut, gk.BRK)
	out := rlwe.ExtractLWE(gk.params, acc, 0)
	return gk.LWEKSK.Apply(out)
}
