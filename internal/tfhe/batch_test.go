package tfhe

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// batchFixture returns the blind-rotate material plus a fresh LWE generator
// drawing exact-phase ciphertexts with pseudorandom masks.
func batchFixture(t *testing.T, secret rlwe.SecretDist) (*rlwe.Parameters, *Evaluator, *LookupTable, *BlindRotateKey, func() *rlwe.LWECiphertext) {
	t.Helper()
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 40)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(12, secret)
	brk := GenBlindRotateKey(kg, lweSK, rsk)
	ev := NewEvaluator(p, nil)
	lut := NewLUTFromBig(p, p.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u) << 24)
	})
	s := ring.NewSampler(97)
	phase := int64(0)
	next := func() *rlwe.LWECiphertext {
		phase++
		return encryptLWEPhase(phase%17-8, uint64(2*p.N()), lweSK.Signed, s)
	}
	return p, ev, lut, brk, next
}

// TestBlindRotateBatchMatchesPerCiphertext is the bit-exactness property
// test of the key-major engine: for shard counts that are non-multiples of
// the tile (plus the 0- and 1-shard edges), every tile size, worker count,
// and both secret distributions, the batched accumulators must equal the
// per-ciphertext BlindRotateInto outputs exactly. Run under -race this also
// exercises the tile cursor and per-worker arenas.
func TestBlindRotateBatchMatchesPerCiphertext(t *testing.T) {
	for _, secret := range []rlwe.SecretDist{rlwe.SecretBinary, rlwe.SecretTernary} {
		p, ev, lut, brk, next := batchFixture(t, secret)
		if secret == rlwe.SecretTernary && brk.Binary {
			t.Skip("sampled ternary secret happened to be binary")
		}
		sc := ev.NewScratch()
		for _, count := range []int{0, 1, 2, 7, 8, 13} {
			lwes := make([]*rlwe.LWECiphertext, count)
			want := make([]*rlwe.Ciphertext, count)
			for j := range lwes {
				lwes[j] = next()
				want[j] = rlwe.NewCiphertext(p, lut.Level)
				ev.BlindRotateInto(want[j], lwes[j], lut, brk, sc)
			}
			for _, tile := range []int{1, 3, 8} {
				for _, workers := range []int{1, 3} {
					accs := make([]*rlwe.Ciphertext, count)
					err := ev.BlindRotateBatchInto(accs, lwes, lut, brk, BatchOptions{Tile: tile, Workers: workers})
					if err != nil {
						t.Fatalf("count=%d tile=%d workers=%d: %v", count, tile, workers, err)
					}
					for j := range accs {
						if accs[j] == nil {
							t.Fatalf("count=%d tile=%d workers=%d: accumulator %d not filled", count, tile, workers, j)
						}
						if !p.QBasis.Equal(want[j].C0, accs[j].C0) || !p.QBasis.Equal(want[j].C1, accs[j].C1) ||
							accs[j].IsNTT != want[j].IsNTT {
							t.Fatalf("count=%d tile=%d workers=%d: accumulator %d differs from per-ciphertext path",
								count, tile, workers, j)
						}
					}
				}
			}
		}
	}
}

// TestBlindRotateTileZeroAllocs locks the PR 2 discipline on the batched
// inner loop: with a warm arena and reused accumulators, a key-major tile
// performs zero heap allocations.
func TestBlindRotateTileZeroAllocs(t *testing.T) {
	p, ev, lut, brk, next := batchFixture(t, rlwe.SecretBinary)
	const tile = 4
	lwes := make([]*rlwe.LWECiphertext, tile)
	accs := make([]*rlwe.Ciphertext, tile)
	for j := range lwes {
		lwes[j] = next()
		accs[j] = rlwe.NewCiphertext(p, lut.Level)
	}
	bsc := ev.NewBatchScratch()
	ev.BlindRotateTileInto(accs, lwes, lut, brk, bsc) // warm the arena

	if avg := testing.AllocsPerRun(5, func() {
		ev.BlindRotateTileInto(accs, lwes, lut, brk, bsc)
	}); avg != 0 {
		t.Fatalf("BlindRotateTileInto allocates %.1f objects/op, want 0", avg)
	}
}

// TestBlindRotateBatchKeyReuse locks the counter semantics behind the
// engine's whole point: with dense masks, the per-ciphertext path streams
// the key once per rotation while the batched path streams it once per
// tile, so brk_bytes_streamed must drop by exactly the tile size.
func TestBlindRotateBatchKeyReuse(t *testing.T) {
	p, ev, lut, brk, _ := batchFixture(t, rlwe.SecretBinary)
	const count, tile = 16, 4
	twoN := uint64(2 * p.N())
	s := ring.NewSampler(11)
	lwes := make([]*rlwe.LWECiphertext, count)
	for j := range lwes {
		lwe := &rlwe.LWECiphertext{A: make([]uint64, brk.NumKeys()), Q: twoN}
		for i := range lwe.A {
			lwe.A[i] = 1 + s.UniformMod(twoN-1) // dense: every key index used
		}
		lwe.B = s.UniformMod(twoN)
		lwes[j] = lwe
	}

	perCt := obs.NewMetrics()
	ev.KS.SetRecorder(perCt)
	sc := ev.NewScratch()
	acc := rlwe.NewCiphertext(p, lut.Level)
	for _, lwe := range lwes {
		ev.BlindRotateInto(acc, lwe, lut, brk, sc)
	}

	batched := obs.NewMetrics()
	ev.KS.SetRecorder(batched)
	accs := make([]*rlwe.Ciphertext, count)
	err := ev.BlindRotateBatchInto(accs, lwes, lut, brk, BatchOptions{Tile: tile})
	ev.KS.SetRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}

	wantKey := uint64(brk.PerKeyBytes()) * uint64(brk.NumKeys())
	if got := perCt.Counter(obs.CounterBRKBytesStreamed); got != wantKey*count {
		t.Errorf("per-ciphertext path streamed %d key bytes, want %d", got, wantKey*count)
	}
	if got := batched.Counter(obs.CounterBRKBytesStreamed); got != wantKey*count/tile {
		t.Errorf("batched path streamed %d key bytes, want %d", got, wantKey*count/tile)
	}
	if got := batched.Counter(obs.CounterBlindRotateTile); got != count/tile {
		t.Errorf("tiles counter = %d, want %d", got, count/tile)
	}
	if got := batched.Counter(obs.CounterBlindRotate); got != count {
		t.Errorf("blind_rotates = %d, want %d", got, count)
	}
	reuse := float64(perCt.Counter(obs.CounterBRKBytesStreamed)) /
		float64(batched.Counter(obs.CounterBRKBytesStreamed))
	if reuse < tile {
		t.Errorf("key-reuse factor %.2f, want >= %d", reuse, tile)
	}
}

// TestBlindRotateBatchOnTile locks the streaming hook: every batch index is
// reported exactly once in tile-sized ranges, and an OnTile error stops the
// batch and surfaces.
func TestBlindRotateBatchOnTile(t *testing.T) {
	_, ev, lut, brk, next := batchFixture(t, rlwe.SecretBinary)
	const count, tile = 11, 4
	lwes := make([]*rlwe.LWECiphertext, count)
	for j := range lwes {
		lwes[j] = next()
	}

	var mu sync.Mutex
	seen := make([]bool, count)
	accs := make([]*rlwe.Ciphertext, count)
	err := ev.BlindRotateBatchInto(accs, lwes, lut, brk, BatchOptions{
		Tile: tile, Workers: 2,
		OnTile: func(lo, hi int) error {
			mu.Lock()
			defer mu.Unlock()
			if hi-lo > tile || lo < 0 || hi > count {
				return fmt.Errorf("bad tile range [%d,%d)", lo, hi)
			}
			for j := lo; j < hi; j++ {
				if seen[j] {
					return fmt.Errorf("index %d reported twice", j)
				}
				seen[j] = true
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, ok := range seen {
		if !ok {
			t.Fatalf("index %d never reported", j)
		}
	}

	boom := errors.New("sink failed")
	err = ev.BlindRotateBatchInto(make([]*rlwe.Ciphertext, count), lwes, lut, brk, BatchOptions{
		Tile: tile, OnTile: func(lo, hi int) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("OnTile error not surfaced: %v", err)
	}
}

// TestBlindRotateBatchRecoversPanics locks the serving-node contract: a
// malformed LWE ciphertext in the batch comes back as an error naming the
// tile, never as a panic.
func TestBlindRotateBatchRecoversPanics(t *testing.T) {
	_, ev, lut, brk, next := batchFixture(t, rlwe.SecretBinary)
	lwes := []*rlwe.LWECiphertext{next(), next(), next()}
	lwes[1] = &rlwe.LWECiphertext{A: make([]uint64, 3), Q: lwes[0].Q} // wrong dimension
	err := ev.BlindRotateBatchInto(make([]*rlwe.Ciphertext, 3), lwes, lut, brk, BatchOptions{Tile: 2})
	if err == nil {
		t.Fatal("malformed LWE in batch did not error")
	}
	if err := ev.BlindRotateBatchInto(make([]*rlwe.Ciphertext, 2), lwes, lut, brk, BatchOptions{}); err == nil {
		t.Fatal("length mismatch did not error")
	}
}

// TestCMuxIntoMatchesCMux locks the scratch-arena CMux against a reference
// transcription of the retired allocating implementation.
func TestCMuxIntoMatchesCMux(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 34)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	enc := rlwe.NewEncryptor(p, sk, 35)
	ev := NewEvaluator(p, nil)

	level := p.MaxLevel()
	b := p.QBasis.AtLevel(level)
	mk := func(v int64) *rlwe.Ciphertext {
		msg := make([]int64, p.N())
		msg[0] = v
		pt := b.NewPoly()
		b.SetSigned(msg, pt)
		b.NTT(pt)
		return enc.EncryptPolyAtLevel(pt, level, 1)
	}
	ct0, ct1 := mk(1<<26), mk(-(1 << 25))
	ref := func(bit *rlwe.RGSWCiphertext, ct0, ct1 *rlwe.Ciphertext) *rlwe.Ciphertext {
		diff := ct1.CopyNew()
		b.Sub(diff.C0, ct0.C0, diff.C0)
		b.Sub(diff.C1, ct0.C1, diff.C1)
		d := ev.KS.ExternalProduct(diff, bit)
		out := ct0.CopyNew()
		if !out.IsNTT {
			b.NTT(out.C0)
			b.NTT(out.C1)
			out.IsNTT = true
		}
		b.Add(out.C0, d.C0, out.C0)
		b.Add(out.C1, d.C1, out.C1)
		return out
	}
	for bit := int64(0); bit <= 1; bit++ {
		sel := kg.GenRGSWConstant(bit, sk)
		want := ref(sel, ct0, ct1)
		got := ev.CMux(sel, ct0, ct1)
		if !p.QBasis.Equal(want.C0, got.C0) || !p.QBasis.Equal(want.C1, got.C1) || got.IsNTT != want.IsNTT {
			t.Fatalf("bit=%d: CMuxInto differs from reference", bit)
		}
	}
}

// TestCMuxIntoZeroAllocs locks the selection path's allocation freedom with
// a warm arena, like the other hot-path locks.
func TestCMuxIntoZeroAllocs(t *testing.T) {
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 34)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	enc := rlwe.NewEncryptor(p, sk, 35)
	ev := NewEvaluator(p, nil)

	level := p.MaxLevel()
	b := p.QBasis.AtLevel(level)
	pt := b.NewPoly()
	b.NTT(pt)
	ct0 := enc.EncryptPolyAtLevel(pt, level, 1)
	ct1 := enc.EncryptPolyAtLevel(pt, level, 1)
	sel := kg.GenRGSWConstant(1, sk)
	out := rlwe.NewCiphertext(p, level)
	sc := ev.NewScratch()
	ev.CMuxInto(out, sel, ct0, ct1, sc) // warm the arena

	if avg := testing.AllocsPerRun(5, func() {
		ev.CMuxInto(out, sel, ct0, ct1, sc)
	}); avg != 0 {
		t.Fatalf("CMuxInto allocates %.1f objects/op, want 0", avg)
	}
}
