package tfhe

import (
	"math/big"
	"testing"

	"heap/internal/ring"
	"heap/internal/rlwe"
)

func blindRotateFixture(t *testing.T) (*rlwe.Parameters, *Evaluator, *LookupTable, *BlindRotateKey, *rlwe.LWECiphertext) {
	t.Helper()
	p := testParams(t)
	kg := rlwe.NewKeyGenerator(p, 40)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(12, rlwe.SecretBinary)
	brk := GenBlindRotateKey(kg, lweSK, rsk)
	ev := NewEvaluator(p, nil)
	lut := NewLUTFromBig(p, p.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u) << 24)
	})
	s := ring.NewSampler(41)
	lwe := encryptLWEPhase(5, uint64(2*p.N()), lweSK.Signed, s)
	return p, ev, lut, brk, lwe
}

// TestBlindRotateIntoMatchesBlindRotate locks in bit-identical accumulators
// between the allocating API and the in-place scratch-arena variant,
// including across scratch reuse (dirty accumulator and rot/d buffers from
// the previous rotation must not leak into the next).
func TestBlindRotateIntoMatchesBlindRotate(t *testing.T) {
	p, ev, lut, brk, lwe := blindRotateFixture(t)
	want := ev.BlindRotate(lwe, lut, brk)

	sc := ev.NewScratch()
	acc := rlwe.NewCiphertext(p, lut.Level)
	for rep := 0; rep < 2; rep++ {
		ev.BlindRotateInto(acc, lwe, lut, brk, sc)
		if !p.QBasis.Equal(want.C0, acc.C0) || !p.QBasis.Equal(want.C1, acc.C1) {
			t.Fatalf("rep %d: BlindRotateInto differs from BlindRotate", rep)
		}
		if acc.IsNTT != want.IsNTT {
			t.Fatalf("rep %d: representation mismatch", rep)
		}
	}
}

// TestBlindRotateIntoZeroAllocs is the allocation-regression lock for the
// full rotate→decompose→NTT→MAC schedule: with a warm arena and a reused
// accumulator, a steady-state blind rotation performs zero heap allocations.
func TestBlindRotateIntoZeroAllocs(t *testing.T) {
	_, ev, lut, brk, lwe := blindRotateFixture(t)
	sc := ev.NewScratch()
	acc := rlwe.NewCiphertext(ev.Params, lut.Level)
	ev.BlindRotateInto(acc, lwe, lut, brk, sc) // warm the arena

	if avg := testing.AllocsPerRun(5, func() {
		ev.BlindRotateInto(acc, lwe, lut, brk, sc)
	}); avg != 0 {
		t.Fatalf("BlindRotateInto allocates %.1f objects/op, want 0", avg)
	}
}
