package tfhe

import (
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// PBSKeySet bundles everything programmable bootstrapping needs: the
// blind-rotate key for the LWE secret and the LWE key-switching key mapping
// the RLWE coefficient secret back down to the LWE secret.
type PBSKeySet struct {
	BRK    *BlindRotateKey
	LWEKSK *rlwe.LWEKeySwitchKey
}

// GenPBSKeySet generates the standalone-TFHE key material of §VII-A for an
// n_t-dimensional LWE secret under the RLWE secret rsk, working at the
// single-limb modulus q_0.
func GenPBSKeySet(params *rlwe.Parameters, kg *rlwe.KeyGenerator, lweSK *rlwe.LWESecretKey,
	rsk *rlwe.SecretKey, logBase int, sampler *ring.Sampler) *PBSKeySet {
	return &PBSKeySet{
		BRK:    GenBlindRotateKey(kg, lweSK, rsk),
		LWEKSK: rlwe.GenLWEKeySwitchKey(rsk.Signed, lweSK.Signed, params.Q[0], logBase, sampler, params.Sigma),
	}
}

// EncryptLWE encrypts message value m·Δ (Δ = q/(2t) for message space
// [−t, t)) under the LWE secret at modulus q, for PBS demos and tests.
func EncryptLWE(m int64, t int, q uint64, s []int64, sampler *ring.Sampler, sigma float64) *rlwe.LWECiphertext {
	delta := q / uint64(2*t)
	ct := &rlwe.LWECiphertext{A: make([]uint64, len(s)), Q: q}
	for i := range ct.A {
		ct.A[i] = sampler.UniformMod(q)
	}
	msg := int64MulDelta(m, delta, q)
	e := sampler.GaussianSigned(1, sigma)[0]
	acc := msg
	if e >= 0 {
		acc = (acc + uint64(e)) % q
	} else {
		acc = (acc + q - uint64(-e)%q) % q
	}
	for i, ai := range ct.A {
		switch s[i] {
		case 1:
			acc = (acc + q - ai) % q
		case -1:
			acc = (acc + ai) % q
		}
	}
	ct.B = acc
	return ct
}

func int64MulDelta(m int64, delta, q uint64) uint64 {
	if m >= 0 {
		return (uint64(m) % q * (delta % q)) % q
	}
	return q - (uint64(-m)%q*(delta%q))%q
}

// DecodeLWE decrypts an LWE ciphertext at modulus q with message space
// [−t, t) and returns the rounded message value.
func DecodeLWE(ct *rlwe.LWECiphertext, s []int64, t int) int64 {
	phase := rlwe.DecryptLWE(ct, s)
	delta := int64(ct.Q / uint64(2*t))
	if phase >= 0 {
		return (phase + delta/2) / delta
	}
	return -((-phase + delta/2) / delta)
}

// ProgrammableBootstrap evaluates f over the encrypted message while
// refreshing its noise: ModulusSwitch to 2N → BlindRotate with the staircase
// lookup table → Extract → LWE KeySwitch back to the small secret. This is
// the standalone-TFHE PBS pipeline of §VII-A ("BlindRotate with PBS keys can
// perform PBS in a straightforward way"). The input must be at modulus q_0
// with message space [−t, t); so is the output.
func (ev *Evaluator) ProgrammableBootstrap(ct *rlwe.LWECiphertext, t int, f func(m int) int64, keys *PBSKeySet) *rlwe.LWECiphertext {
	p := ev.Params
	q0 := p.Q[0]
	if ct.Q != q0 {
		panic("tfhe: PBS input must be at modulus q_0")
	}
	// Staircase LUT at level 1 so the blind-rotated accumulator is already
	// a single-limb RLWE ready for extraction.
	delta := int64(q0 / uint64(2*t))
	lut := NewLUTFromFunc(p, 1, t, delta, f)

	ms := rlwe.ModSwitchLWE(ct, uint64(2*p.N()))
	acc := ev.BlindRotate(ms, lut, keys.BRK)
	out := rlwe.ExtractLWE(p, acc, 0)
	return keys.LWEKSK.Apply(out)
}
