// Package tfhe implements the TFHE-side operations of the paper: blind-rotate
// key generation, the BlindRotate operation (Algorithm 1, ternary-secret
// form), negacyclic lookup-table construction, CMux, and programmable
// bootstrapping (PBS, §VII-A). It is built directly on the shared
// rlwe substrate — in particular the ExternalProduct kernel — so the CKKS
// KeySwitch and TFHE BlindRotate literally share one datapath, as the HEAP
// microarchitecture does (§IV-A, §IV-E).
package tfhe

import (
	"math/big"

	"heap/internal/rlwe"
	"heap/internal/rns"
)

// BlindRotateKey is the brk of the paper: for every coefficient of the LWE
// secret s⃗, RGSW encryptions of s_i⁺ and s_i⁻ under the RLWE secret
// (brk = {RGSW(s_i⁺), RGSW(s_i⁻)}, §II-B). For binary LWE secrets every
// s_i⁻ encrypts zero and the minus branch can be skipped.
type BlindRotateKey struct {
	Plus  []*rlwe.RGSWCiphertext
	Minus []*rlwe.RGSWCiphertext
	// Binary records that the source secret was binary, enabling the
	// single-branch CMux fast path.
	Binary bool
}

// GenBlindRotateKey encrypts the LWE secret coefficientwise as RGSW
// ciphertexts under the RLWE secret rsk.
func GenBlindRotateKey(kg *rlwe.KeyGenerator, lweSK *rlwe.LWESecretKey, rsk *rlwe.SecretKey) *BlindRotateKey {
	n := len(lweSK.Signed)
	brk := &BlindRotateKey{
		Plus:   make([]*rlwe.RGSWCiphertext, n),
		Minus:  make([]*rlwe.RGSWCiphertext, n),
		Binary: true,
	}
	for i, s := range lweSK.Signed {
		var plus, minus int64
		switch s {
		case 1:
			plus = 1
		case -1:
			minus = 1
			brk.Binary = false
		case 0:
		default:
			panic("tfhe: blind-rotate keys require a ternary LWE secret")
		}
		brk.Plus[i] = kg.GenRGSWConstant(plus, rsk)
		brk.Minus[i] = kg.GenRGSWConstant(minus, rsk)
	}
	return brk
}

// NumKeys returns n_t, the LWE dimension covered by the key.
func (k *BlindRotateKey) NumKeys() int { return len(k.Plus) }

// SizeBytes returns the total in-memory key size, for the §III-C key-traffic
// accounting.
func (k *BlindRotateKey) SizeBytes() int {
	total := 0
	for i := range k.Plus {
		total += k.Plus[i].C0.SizeBytes() + k.Plus[i].C1.SizeBytes()
		total += k.Minus[i].C0.SizeBytes() + k.Minus[i].C1.SizeBytes()
	}
	return total
}

// PerKeyBytes returns the in-memory size of the RGSW material one key index
// streams through the blind-rotate datapath: the Plus ciphertext, plus the
// Minus ciphertext for ternary secrets (the binary fast path never touches
// the minus branch). This is the unit of the brk_bytes_streamed counter.
func (k *BlindRotateKey) PerKeyBytes() int {
	if len(k.Plus) == 0 {
		return 0
	}
	b := k.Plus[0].C0.SizeBytes() + k.Plus[0].C1.SizeBytes()
	if !k.Binary {
		b += k.Minus[0].C0.SizeBytes() + k.Minus[0].C1.SizeBytes()
	}
	return b
}

// LookupTable is a negacyclic test polynomial f over the full Q basis
// (coefficient representation) together with the level it lives at. The
// blind rotation of an LWE ciphertext with phase u produces an RLWE
// ciphertext whose constant coefficient encrypts the programmed g(u).
type LookupTable struct {
	Poly  rns.Poly
	Level int
}

// NewLUTFromBig programs g: the blind rotation of an LWE ciphertext (mod 2N)
// with signed phase u ∈ [−N/2, N/2) yields g(u) mod Q in the constant
// coefficient. Values outside that range alias negacyclically (g(u±N) =
// −g(u)); callers must guarantee |u| < N/2, which the scheme-switching
// bootstrapper does via its n_t-dimensional binary LWE secret.
func NewLUTFromBig(p *rlwe.Parameters, level int, g func(u int) *big.Int) *LookupTable {
	n := p.N()
	b := p.QBasis.AtLevel(level)
	f := b.NewPoly()
	// Mapping derived from (f·X^u)_0 in Z[X]/(X^N+1):
	//   f_0 = g(0);  f_j = g(−j) for 1 ≤ j ≤ N/2;  f_j = −g(N−j) for j > N/2.
	for i := 0; i < level; i++ {
		q := new(big.Int).SetUint64(b.Rings[i].Mod.Q)
		set := func(j int, v *big.Int) {
			r := new(big.Int).Mod(v, q)
			f.Limbs[i][j] = r.Uint64()
		}
		set(0, g(0))
		for j := 1; j <= n/2; j++ {
			set(j, g(-j))
		}
		neg := new(big.Int)
		for j := n/2 + 1; j < n; j++ {
			set(j, neg.Neg(g(n-j)))
		}
	}
	return &LookupTable{Poly: f, Level: level}
}

// NewLUTFromFunc programs a small signed integer function, scaled by scale —
// the staircase form used by classic TFHE programmable bootstrapping over a
// message space of size 2·t: g(u) = scale · f(round(u·t/N)).
func NewLUTFromFunc(p *rlwe.Parameters, level int, t int, scale int64, f func(m int) int64) *LookupTable {
	n := p.N()
	// One message unit Δ = q/(2t) maps to Δ·2N/q = N/t phase units after
	// the switch to modulus 2N.
	window := n / t
	return NewLUTFromBig(p, level, func(u int) *big.Int {
		// Map phase to the nearest message value, rounding half up.
		m := (u + window/2) / window
		if u < 0 {
			m = -((-u + window/2) / window)
		}
		return new(big.Int).Mul(big.NewInt(f(m)), big.NewInt(scale))
	})
}
