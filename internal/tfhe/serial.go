package tfhe

import (
	"encoding/binary"
	"fmt"
	"io"

	"heap/internal/rlwe"
)

// Blind-rotate key serialization — the unit of the cluster's chunked key
// distribution channel. The layout is strictly fixed-size for a given
// parameter set: a 24-byte header followed by NumKeys records, each the
// Plus and Minus RGSW ciphertexts of one LWE secret coefficient. Fixed
// records let a streaming receiver install complete key indices
// incrementally (becoming key-warm one prefix at a time) and let a resumed
// upload compute exactly which byte offset to continue from.

const magicBRK = 0x4845_4252 // "HEBR"

// brkHeaderSize is the serialized header: magic, key count, binary flag
// (all uint64, little-endian).
const brkHeaderSize = 24

// BRKRecordBytes returns the exact serialized size of one key index's
// record (Plus + Minus RGSW, four gadget ciphertexts with their headers)
// for the parameter set.
func BRKRecordBytes(p *rlwe.Parameters) int {
	rows := p.DigitsAtLevel(p.MaxLevel())
	limbs := p.MaxLevel() + len(p.P)
	gadget := 32 + rows*2*limbs*p.N()*8
	return 4 * gadget
}

// BRKBlobBytes returns the full serialized size of a blind-rotate key with
// n key indices under the parameter set.
func BRKBlobBytes(p *rlwe.Parameters, n int) int {
	return brkHeaderSize + n*BRKRecordBytes(p)
}

// WriteTo serializes the key: header, then one fixed-size record per index.
func (k *BlindRotateKey) WriteTo(w io.Writer) (int64, error) {
	var bin uint64
	if k.Binary {
		bin = 1
	}
	hdr := []uint64{magicBRK, uint64(len(k.Plus)), bin}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return 0, err
	}
	n := int64(brkHeaderSize)
	for i := range k.Plus {
		m, err := k.Plus[i].WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
		m, err = k.Minus[i].WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadBRKHeader reads and validates the blob header, returning the key
// count and binary flag. It is the entry point of the streaming receiver,
// which then calls ReadBRKRecord once per index.
func ReadBRKHeader(r io.Reader) (numKeys int, isBinary bool, err error) {
	hdr := make([]uint64, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return 0, false, err
	}
	if hdr[0] != magicBRK {
		return 0, false, fmt.Errorf("tfhe: bad blind-rotate key magic %x", hdr[0])
	}
	if hdr[1] == 0 || hdr[1] > 1<<20 {
		return 0, false, fmt.Errorf("tfhe: blind-rotate key count %d out of range", hdr[1])
	}
	if hdr[2] > 1 {
		return 0, false, fmt.Errorf("tfhe: blind-rotate key binary flag %d", hdr[2])
	}
	return int(hdr[1]), hdr[2] == 1, nil
}

// ReadBRKRecord deserializes one key index's Plus and Minus RGSW pair.
func ReadBRKRecord(r io.Reader, p *rlwe.Parameters) (plus, minus *rlwe.RGSWCiphertext, err error) {
	plus, err = rlwe.ReadRGSWCiphertext(r, p)
	if err != nil {
		return nil, nil, err
	}
	minus, err = rlwe.ReadRGSWCiphertext(r, p)
	if err != nil {
		return nil, nil, err
	}
	return plus, minus, nil
}

// ReadBlindRotateKey deserializes a complete key.
func ReadBlindRotateKey(r io.Reader, p *rlwe.Parameters) (*BlindRotateKey, error) {
	n, bin, err := ReadBRKHeader(r)
	if err != nil {
		return nil, err
	}
	k := &BlindRotateKey{
		Plus:   make([]*rlwe.RGSWCiphertext, n),
		Minus:  make([]*rlwe.RGSWCiphertext, n),
		Binary: bin,
	}
	for i := 0; i < n; i++ {
		k.Plus[i], k.Minus[i], err = ReadBRKRecord(r, p)
		if err != nil {
			return nil, fmt.Errorf("tfhe: blind-rotate key record %d: %w", i, err)
		}
	}
	return k, nil
}
