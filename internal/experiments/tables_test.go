package experiments

import (
	"strings"
	"testing"
)

// TestAllTablesRender checks that every table generator produces the
// expected headline figures.
func TestAllTablesRender(t *testing.T) {
	out := All()
	for _, want := range []string{
		"Table II", "Table III", "Table IV", "Table V", "Table VI",
		"Table VII", "Table VIII", "Key material",
		"6144",      // DSPs (Table II)
		"3283",      // Lattigo bootstrap speedup (Table V)
		"15.39",     // FAB bootstrap speedup (Table V)
		"210",       // NTT kops/s (Table IV)
		"read once", // blind-rotate key traffic (§III-C)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestTableSpeedupShapes(t *testing.T) {
	// Table VI: HEAP beats FAB and FAB-2 but not SHARP (paper's ordering).
	tab := Table6()
	if !strings.Contains(tab, "FAB") || !strings.Contains(tab, "SHARP") {
		t.Fatalf("table VI missing rows:\n%s", tab)
	}
	// Table VII contains the CPU row with a ~4×10^4 speedup.
	tab = Table7()
	if !strings.Contains(tab, "CPU") {
		t.Fatalf("table VII missing CPU row:\n%s", tab)
	}
}
