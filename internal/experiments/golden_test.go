package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"heap/internal/hwsim"
)

var update = flag.Bool("update", false, "rewrite testdata/tables_golden.json from the current model")

const goldenPath = "testdata/tables_golden.json"

func loadGolden(t *testing.T) Golden {
	t.Helper()
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -args -update): %v", err)
	}
	var g Golden
	if err := json.Unmarshal(blob, &g); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	return g
}

func marshalGolden(t *testing.T, g Golden) []byte {
	t.Helper()
	blob, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n')
}

// TestTablesMatchGolden locks every generated report — Tables II–VIII, the
// key-traffic report, the area report — bit for bit against the committed
// golden file. heapbench prints these strings verbatim, so this is the
// conformance lock on the whole `heapbench` output surface.
func TestTablesMatchGolden(t *testing.T) {
	got := CurrentGolden()
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, marshalGolden(t, got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want := loadGolden(t)
	for name, wantText := range want.Tables {
		gotText, ok := got.Tables[name]
		if !ok {
			t.Errorf("report %q present in golden but no longer generated", name)
			continue
		}
		if gotText != wantText {
			t.Errorf("report %q drifted from golden:\n%s", name, firstDiff(wantText, gotText))
		}
	}
	for name := range got.Tables {
		if _, ok := want.Tables[name]; !ok {
			t.Errorf("report %q generated but missing from golden (regenerate with -args -update)", name)
		}
	}
}

// firstDiff renders the first differing line pair for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "(identical?)"
}

// nonFinite matches the strconv renderings of NaN/±Inf as standalone tokens
// (word-bounded, so "Inference" does not trip it).
var nonFinite = regexp.MustCompile(`\b(NaN|[+-]?Inf)\b`)

// TestTablesFinite asserts every report actually carries numbers and none of
// them degenerated to NaN or Inf — the "measured values present and finite"
// half of the conformance contract.
func TestTablesFinite(t *testing.T) {
	for name, text := range CurrentGolden().Tables {
		if strings.TrimSpace(text) == "" {
			t.Errorf("report %q is empty", name)
			continue
		}
		if m := nonFinite.FindString(text); m != "" {
			t.Errorf("report %q contains non-finite value %q:\n%s", name, m, text)
		}
		if !strings.ContainsAny(text, "0123456789") {
			t.Errorf("report %q carries no numeric values:\n%s", name, text)
		}
	}
}

// TestPaperColumnsExact spot-checks that the paper's published values appear
// verbatim in the rendered tables: the golden lock catches drift, this test
// pins the provenance of the paper columns themselves.
func TestPaperColumnsExact(t *testing.T) {
	g := CurrentGolden()
	// Table V quotes the paper's amortized multiplication time for HEAP.
	if want := fmt.Sprintf("paper %.3f µs", hwsim.PaperHEAPTMultUs); !strings.Contains(g.Tables["table5"], want) {
		t.Errorf("table5 lost the paper T_mult value %q", want)
	}
	// Table II quotes the paper's published resource counts.
	paper, _ := hwsim.PaperResourceTable()
	for _, v := range []int{paper.LUTs, paper.DSPs, paper.URAMs} {
		if want := fmt.Sprintf("%10d", v); !strings.Contains(g.Tables["table2"], want) {
			t.Errorf("table2 lost the paper resource value %d", v)
		}
	}
	// Table VIII's CPU columns are the paper's measurements.
	for _, r := range hwsim.TableVIIIBaselines() {
		if want := fmt.Sprintf("%12.3f", r.CKKSCPU); !strings.Contains(g.Tables["table8"], want) {
			t.Errorf("table8 lost the paper CKKS@CPU value %.3f for %s", r.CKKSCPU, r.Workload)
		}
	}
}

// TestGoldenDetectsMutation proves the conformance comparison actually bites:
// flipping a single digit anywhere in a golden table must be detected. (The
// same property was exercised end-to-end by mutating a baseline value and
// watching TestTablesMatchGolden fail.)
func TestGoldenDetectsMutation(t *testing.T) {
	want := loadGolden(t)
	got := CurrentGolden()
	for name, text := range want.Tables {
		idx := strings.IndexAny(text, "0123456789")
		if idx < 0 {
			t.Fatalf("golden report %q has no digit to mutate", name)
		}
		mutated := text[:idx] + string('0'+('9'-text[idx])%10) + text[idx+1:]
		if mutated == got.Tables[name] {
			t.Errorf("mutated %q still matches the generated report — comparison is vacuous", name)
		}
	}
}

// TestAllComposesReports locks that heapbench's default mode (All) is exactly
// the individual reports joined in order — no report silently dropped.
func TestAllComposesReports(t *testing.T) {
	all := All()
	for _, part := range []string{Table2(), Table3(), Table4(), Table5(), Table6(), Table7(), Table8(), KeyReport(), AreaReport()} {
		if !strings.Contains(all, part) {
			t.Errorf("All() is missing a report:\n%s", part)
		}
	}
}
