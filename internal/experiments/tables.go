// Package experiments regenerates every table of the paper's evaluation
// (§VI) from the hwsim model, the workload schedules, and the published
// baseline numbers — the same methodology the paper itself uses for its
// comparison rows. cmd/heapbench prints them; the root benchmarks time the
// functional counterparts.
package experiments

import (
	"fmt"
	"strings"

	"heap/internal/apps"
	"heap/internal/core"
	"heap/internal/hwsim"
)

func system(nFPGAs int) *hwsim.SystemModel {
	return hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), nFPGAs)
}

// Table2 renders the FPGA resource utilization (Table II) plus the
// Fig. 2/3 memory plan.
func Table2() string {
	var b strings.Builder
	cfg := hwsim.AlveoU280()
	p := hwsim.PaperParams()
	got := hwsim.ResourceModel(cfg, p)
	paper, _ := hwsim.PaperResourceTable()
	fmt.Fprintf(&b, "Table II — HEAP resource utilization on a single FPGA (model vs paper)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %8s\n", "Resource", "Available", "Model", "Paper", "Util%")
	row := func(name string, avail, model, pap int) {
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %7.2f%%\n", name, avail, model, pap, 100*float64(model)/float64(avail))
	}
	row("LUTs", cfg.LUTs, got.LUTs, paper.LUTs)
	row("FFs", cfg.FFs, got.FFs, paper.FFs)
	row("DSPs", cfg.DSPs, got.DSPs, paper.DSPs)
	row("BRAM", cfg.BRAMs, got.BRAMs, paper.BRAMs)
	row("URAM", cfg.URAMs, got.URAMs, paper.URAMs)
	mp := hwsim.PlanMemory(cfg, p)
	fmt.Fprintf(&b, "Memory plan (Figs. 2-3): %d URAM/ct × %d cts, %d BRAM/ct × %d cts, %.1f MB on-chip\n",
		mp.URAMPerCt, mp.CtsInURAM, mp.BRAMPerCt, mp.CtsInBRAM, mp.OnChipMB)
	return b.String()
}

// Table3 renders the basic-operation latencies and speedups (Table III).
func Table3() string {
	var b strings.Builder
	m := hwsim.NewModel(hwsim.AlveoU280(), hwsim.PaperParams())
	heapMs := map[string]float64{
		"Add": m.Add().Ms(), "Mult": m.Mult().Ms(),
		"Rescale": m.Rescale().Ms(), "Rotate": m.Rotate().Ms(),
		"BlindRotate": m.BlindRotate().Ms(),
	}
	fmt.Fprintf(&b, "Table III — basic FHE operation latency (ms), single FPGA\n")
	fmt.Fprintf(&b, "%-12s %9s", "Operation", "HEAP")
	base := hwsim.TableIIIBaselines()
	for _, r := range base {
		fmt.Fprintf(&b, " %9s", r.Name)
	}
	fmt.Fprintf(&b, "\n")
	rowFor := func(op string, sel func(hwsim.BasicOpBaseline) float64) {
		fmt.Fprintf(&b, "%-12s %9.3f", op, heapMs[op])
		for _, r := range base {
			v := sel(r)
			if v == 0 {
				fmt.Fprintf(&b, " %9s", "-")
			} else {
				fmt.Fprintf(&b, " %6.2f×%2s", v/heapMs[op], "")
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	rowFor("Add", func(r hwsim.BasicOpBaseline) float64 { return r.Add })
	rowFor("Mult", func(r hwsim.BasicOpBaseline) float64 { return r.Mult })
	rowFor("Rescale", func(r hwsim.BasicOpBaseline) float64 { return r.Rescale })
	rowFor("Rotate", func(r hwsim.BasicOpBaseline) float64 { return r.Rotate })
	rowFor("BlindRotate", func(r hwsim.BasicOpBaseline) float64 { return r.BlindRotate })
	return b.String()
}

// Table4 renders the NTT throughput comparison (Table IV).
func Table4() string {
	var b strings.Builder
	m := hwsim.NewModel(hwsim.AlveoU280(), hwsim.PaperParams())
	ops, est := m.NTTThroughput()
	fmt.Fprintf(&b, "Table IV — NTT throughput (N=2^13, logQ=218)\n")
	fmt.Fprintf(&b, "%-8s %12.0f ops/s (first-principles %.0f ops/s)\n", "HEAP", ops, 1e3/est.RawMs)
	for _, r := range hwsim.TableIVBaselines() {
		fmt.Fprintf(&b, "%-8s %12.0f ops/s  → HEAP speedup %.2f×\n", r.Name, r.Ops, ops/r.Ops)
	}
	return b.String()
}

// Table5 renders the bootstrapping comparison (Table V, Eq. 3 metric).
func Table5() string {
	var b strings.Builder
	s := system(8)
	bs := s.Bootstrap(1 << 12)
	heapUs := hwsim.PaperHEAPTMultUs
	eq3 := s.AmortizedMultTime(1<<12, 5)
	fmt.Fprintf(&b, "Table V — bootstrapping, T_mult,a/slot (Eq. 3)\n")
	fmt.Fprintf(&b, "Model bootstrap breakdown: steps1-2 %.4f ms, step3 %.4f ms (comm %.4f ms), steps4-5 %.4f ms, total %.3f ms\n",
		bs.Steps12Ms, bs.Step3Ms, bs.CommMs, bs.Steps45Ms, bs.TotalMs)
	fmt.Fprintf(&b, "HEAP T_mult,a/slot: paper %.3f µs (our Eq.-3 evaluation of the latency split: %.3f µs)\n", heapUs, eq3)
	fmt.Fprintf(&b, "%-10s %6s %8s %10s %12s %12s\n", "Work", "GHz", "Slots", "Time(µs)", "Speedup(t)", "Speedup(cyc)")
	for _, r := range hwsim.TableVBaselines() {
		fmt.Fprintf(&b, "%-10s %6.1f %8d %10.3f %11.2f× %11.2f×\n",
			r.Name, r.FreqGHz, r.Slots, r.TimeUs, r.TimeUs/heapUs, r.TimeUs*r.FreqGHz/(heapUs*hwsim.HEAPFreqGHz))
	}
	return b.String()
}

// Table6 renders the LR-training comparison (Table VI).
func Table6() string {
	return appTable("Table VI — LR model training, time per iteration (sparse 256-slot packing)",
		apps.LRSchedule(), hwsim.TableVIBaselines())
}

// Table7 renders the ResNet-20 comparison (Table VII).
func Table7() string {
	return appTable("Table VII — ResNet-20 inference (1024-slot packing)",
		apps.ResNetSchedule(), hwsim.TableVIIBaselines())
}

func appTable(title string, w hwsim.WorkloadSchedule, baselines []hwsim.AppBaseline) string {
	var b strings.Builder
	s := system(8)
	heapSec := s.Time(w) / 1e3
	compute, boot := s.ComputeToBootRatio(w)
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "HEAP (model): %.4f s  [compute %.0f%%, bootstrap %.0f%%]\n", heapSec, 100*compute, 100*boot)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "Work", "Time(s)", "Speedup(t)", "Speedup(cyc)")
	for _, r := range baselines {
		fmt.Fprintf(&b, "%-10s %10.3f %11.2f× %11.2f×\n",
			r.Name, r.TimeSec, r.TimeSec/heapSec, r.TimeSec*r.FreqGHz/(heapSec*hwsim.HEAPFreqGHz))
	}
	return b.String()
}

// Table8 renders the scheme-switching-vs-hardware split (Table VIII). The
// CPU columns are the paper's; BenchmarkTable8SchemeSwitchSplit re-measures
// Speedup 1 with this library.
func Table8() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VIII — scheme switching (SS) vs hardware speedups\n")
	fmt.Fprintf(&b, "%-20s %12s %10s %10s %10s %10s\n", "Workload", "CKKS@CPU(s)", "SS@CPU(s)", "SS@HEAP(s)", "Speedup1", "Speedup2")
	for _, r := range hwsim.TableVIIIBaselines() {
		fmt.Fprintf(&b, "%-20s %12.3f %10.3f %10.4f %9.1f× %9.1f×\n",
			r.Workload, r.CKKSCPU, r.SSCPU, r.SSHEAP, r.Speedup1, r.Speedup2)
	}
	fmt.Fprintf(&b, "(run `go test -bench=Table8` to re-measure Speedup 1 with this library's two bootstrappers)\n")
	return b.String()
}

// AreaReport renders the §VI-B area/power comparison.
func AreaReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Area & power comparison (§VI-B)\n")
	fmt.Fprintf(&b, "%-16s %12s %10s %6s %10s\n", "Design", "Multipliers", "MB", "Chips", "PowerProxy")
	for _, pt := range hwsim.AreaComparison(hwsim.AlveoU280(), hwsim.PaperParams()) {
		fmt.Fprintf(&b, "%-16s %12d %10.1f %6d %10.1f\n", pt.Name, pt.Multipliers, pt.OnChipMB, pt.Chips, pt.RelPowerProxy)
	}
	return b.String()
}

// KeyReport renders the §III-C key-traffic accounting.
func KeyReport() string {
	return "Key material (§III-C)\n" + core.PaperKeyMaterialReport().String() + "\n"
}

// All returns every table in order.
func All() string {
	return strings.Join([]string{
		Table2(), Table3(), Table4(), Table5(), Table6(), Table7(), Table8(),
		KeyReport(), AreaReport(),
	}, "\n")
}
