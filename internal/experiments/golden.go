package experiments

// Golden is the serializable snapshot of every generated report: the exact
// rendered text of Tables II–VIII plus the key and area reports. All of them
// are pure functions of the calibrated hardware model, the workload
// schedules, and the published baseline numbers — no wall-clock measurement
// enters — so the snapshot is bit-stable across runs and platforms and is
// committed as testdata/tables_golden.json. The conformance tests fail on
// any drift: a model change, a baseline edit, or a formatting change all
// require regenerating the golden file (go test -run Golden -args -update)
// and reviewing the diff.
type Golden struct {
	Tables map[string]string `json:"tables"`
}

// CurrentGolden renders every report at head.
func CurrentGolden() Golden {
	return Golden{Tables: map[string]string{
		"table2": Table2(),
		"table3": Table3(),
		"table4": Table4(),
		"table5": Table5(),
		"table6": Table6(),
		"table7": Table7(),
		"table8": Table8(),
		"keys":   KeyReport(),
		"area":   AreaReport(),
	}}
}
