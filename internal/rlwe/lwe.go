package rlwe

import (
	"math/bits"

	"heap/internal/ring"
)

func mul128(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

func div128(hi, lo, d uint64) (quo, rem uint64) { return bits.Div64(hi%d, lo, d) }

// LWECiphertext is a plain LWE ciphertext (a⃗, b) over a single modulus Q
// (not necessarily prime — the scheme-switching pipeline uses both a prime
// limb and the power-of-two modulus 2N). It decrypts to b + ⟨a⃗, s⃗⟩ mod Q.
type LWECiphertext struct {
	A []uint64
	B uint64
	Q uint64
}

// CopyNew returns a deep copy of the ciphertext.
func (ct *LWECiphertext) CopyNew() *LWECiphertext {
	return &LWECiphertext{A: append([]uint64(nil), ct.A...), B: ct.B, Q: ct.Q}
}

// DecryptLWE returns the centered phase b + ⟨a, s⟩ mod Q of ct under the
// signed secret s.
func DecryptLWE(ct *LWECiphertext, s []int64) int64 {
	q := ct.Q
	acc := ct.B % q
	for i, ai := range ct.A {
		ai %= q
		switch {
		case s[i] == 1:
			acc += ai
		case s[i] == -1:
			acc += q - ai
		case s[i] > 1 || s[i] < -1:
			panic("rlwe: DecryptLWE supports ternary secrets only")
		}
		if acc >= q {
			acc -= q
		}
	}
	return ring.CenteredRep(acc, q)
}

// ExtractLWE implements the paper's Extract operation (Eq. 2): it pulls
// coefficient idx of a single-limb RLWE ciphertext (coefficient
// representation, modulus q_0) out as an LWE ciphertext of dimension N under
// the coefficient vector of the RLWE secret:
//
//	a⃗^{(i)} = (a_i, a_{i-1}, …, a_0, −a_{N-1}, …, −a_{i+1}),  b = c0_i.
func ExtractLWE(p *Parameters, ct *Ciphertext, idx int) *LWECiphertext {
	if ct.IsNTT {
		panic("rlwe: ExtractLWE requires coefficient representation")
	}
	if ct.Level() != 1 {
		panic("rlwe: ExtractLWE requires a single-limb ciphertext")
	}
	return ExtractLWEFromPolys(ct.C0.Limbs[0], ct.C1.Limbs[0], p.Q[0], idx)
}

// ExtractLWEFromPolys is ExtractLWE for raw polynomial pairs over an
// explicit modulus (used on the mod-2N floor-divided ciphertext of the
// scheme-switching bootstrap, which is not an RNS object).
func ExtractLWEFromPolys(c0, c1 []uint64, q uint64, idx int) *LWECiphertext {
	out := &LWECiphertext{A: make([]uint64, len(c1)), B: c0[idx] % q, Q: q}
	n := len(c1)
	for k := 0; k <= idx; k++ {
		out.A[k] = c1[idx-k] % q
	}
	for k := idx + 1; k < n; k++ {
		v := c1[n+idx-k] % q
		if v != 0 {
			v = q - v
		}
		out.A[k] = v
	}
	return out
}

// LWEKeySwitchKey switches LWE ciphertexts from an N-dimensional secret to
// an n_t-dimensional one at modulus Q with an unsigned digit decomposition in
// base 2^LogBase. ksk[i][j] encrypts sFrom_i · Base^j under sTo.
type LWEKeySwitchKey struct {
	Rows    [][]LWECiphertext // [fromDim][digits]
	Q       uint64
	LogBase int
	Digits  int
	NTo     int
}

// GenLWEKeySwitchKey generates the N→n_t LWE key-switching key at modulus q
// ("the key switching key is a vector of h·N·d LWE ciphertexts", §II-B).
func GenLWEKeySwitchKey(sFrom, sTo []int64, q uint64, logBase int, sampler *ring.Sampler, sigma float64) *LWEKeySwitchKey {
	digits := 0
	for b := q - 1; b > 0; b >>= uint(logBase) {
		digits++
	}
	k := &LWEKeySwitchKey{
		Rows:    make([][]LWECiphertext, len(sFrom)),
		Q:       q,
		LogBase: logBase,
		Digits:  digits,
		NTo:     len(sTo),
	}
	for i := range sFrom {
		k.Rows[i] = make([]LWECiphertext, digits)
		pow := uint64(1)
		for j := 0; j < digits; j++ {
			ct := LWECiphertext{A: make([]uint64, len(sTo)), Q: q}
			for t := range ct.A {
				ct.A[t] = sampler.UniformMod(q)
			}
			// b = m + e − ⟨a, sTo⟩
			msg := mulModU(signedModU(sFrom[i], q), pow%q, q)
			e := sampler.GaussianSigned(1, sigma)[0]
			acc := addModU(msg, signedModU(e, q), q)
			for t, at := range ct.A {
				switch sTo[t] {
				case 1:
					acc = subModU(acc, at, q)
				case -1:
					acc = addModU(acc, at, q)
				}
			}
			ct.B = acc
			k.Rows[i][j] = ct
			pow = mulModU(pow, 1<<uint(logBase), q)
		}
	}
	return k
}

// Apply key-switches ct (dimension len(Rows), modulus Q) to dimension NTo.
func (k *LWEKeySwitchKey) Apply(ct *LWECiphertext) *LWECiphertext {
	if ct.Q != k.Q {
		panic("rlwe: LWE key-switch modulus mismatch")
	}
	out := &LWECiphertext{A: make([]uint64, k.NTo), B: ct.B % k.Q, Q: k.Q}
	mask := uint64(1)<<uint(k.LogBase) - 1
	for i, ai := range ct.A {
		v := ai % k.Q
		for j := 0; j < k.Digits && v != 0; j++ {
			d := v & mask
			v >>= uint(k.LogBase)
			if d == 0 {
				continue
			}
			row := &k.Rows[i][j]
			out.B = addModU(out.B, mulModU(d, row.B, k.Q), k.Q)
			for t, at := range row.A {
				out.A[t] = addModU(out.A[t], mulModU(d, at, k.Q), k.Q)
			}
		}
	}
	return out
}

// ModSwitchLWE rescales every component of ct from modulus ct.Q to newQ with
// rounding — the paper's ModulusSwitch ("each element in LWE is switched
// from the modulus q to the modulus 2N", §II-B).
func ModSwitchLWE(ct *LWECiphertext, newQ uint64) *LWECiphertext {
	out := &LWECiphertext{A: make([]uint64, len(ct.A)), Q: newQ}
	out.B = divRound(ct.B, ct.Q, newQ)
	for i, a := range ct.A {
		out.A[i] = divRound(a, ct.Q, newQ)
	}
	return out
}

// ScaleUpLWE multiplies every component by 2^t exactly, moving ct from
// modulus Q to modulus Q·2^t. This lossless lift lets the dimension-reducing
// key switch run at a large modulus so its noise, once switched back down,
// stays far below one unit of the target modulus.
func ScaleUpLWE(ct *LWECiphertext, t uint) *LWECiphertext {
	newQ := ct.Q << t
	out := &LWECiphertext{A: make([]uint64, len(ct.A)), B: (ct.B % ct.Q) << t, Q: newQ}
	for i, a := range ct.A {
		out.A[i] = (a % ct.Q) << t
	}
	return out
}

// divRound computes round(x · newQ / oldQ) mod newQ.
func divRound(x, oldQ, newQ uint64) uint64 {
	// x, moduli < 2^61 in all uses; use big-free 128-bit arithmetic.
	hi, lo := mul128(x%oldQ, newQ)
	q, r := div128(hi, lo, oldQ)
	if 2*r >= oldQ {
		q++
	}
	return q % newQ
}

func signedModU(v int64, q uint64) uint64 {
	if v >= 0 {
		return uint64(v) % q
	}
	return q - uint64(-v)%q
}

func addModU(a, b, q uint64) uint64 {
	c := a + b
	if c >= q {
		c -= q
	}
	return c
}

func subModU(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return q - b + a
}

func mulModU(a, b, q uint64) uint64 {
	hi, lo := mul128(a%q, b%q)
	_, r := div128(hi, lo, q)
	return r
}
