package rlwe

import (
	"math/big"

	"heap/internal/ring"
	"heap/internal/rns"
)

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) over the Q basis at some
// level, decrypting to phase = c0 + c1·s. Scale carries the CKKS plaintext
// scale Δ and is ignored by the TFHE layer.
type Ciphertext struct {
	C0, C1 rns.Poly
	IsNTT  bool
	Scale  float64
}

// NewCiphertext allocates a zero ciphertext at the given level.
func NewCiphertext(p *Parameters, level int) *Ciphertext {
	b := p.QBasis.AtLevel(level)
	return &Ciphertext{C0: b.NewPoly(), C1: b.NewPoly(), IsNTT: true, Scale: 1}
}

// Level returns the number of limbs of the ciphertext.
func (ct *Ciphertext) Level() int { return ct.C0.Level() }

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Copy(), C1: ct.C1.Copy(), IsNTT: ct.IsNTT, Scale: ct.Scale}
}

// Encryptor encrypts under an RLWE secret key with deterministic randomness.
type Encryptor struct {
	params  *Parameters
	sk      *SecretKey
	sampler *ring.Sampler
}

// Decryptor recovers phases.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewEncryptor creates an encryptor with its own random stream.
func NewEncryptor(params *Parameters, sk *SecretKey, seed uint64) *Encryptor {
	return &Encryptor{params: params, sk: sk, sampler: ring.NewSampler(seed)}
}

// NewDecryptor creates a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// EncryptZeroAtLevel returns a fresh encryption of zero at the given level in
// NTT representation: c1 uniform, c0 = -c1·s + e.
func (e *Encryptor) EncryptZeroAtLevel(level int) *Ciphertext {
	b := e.params.QBasis.AtLevel(level)
	ct := NewCiphertext(e.params, level)
	errSigned := e.sampler.GaussianSigned(e.params.N(), e.params.Sigma)
	ePoly := b.NewPoly()
	b.SetSigned(errSigned, ePoly)
	b.NTT(ePoly)
	for i := 0; i < level; i++ {
		e.sampler.UniformPoly(b.Rings[i], ct.C1.Limbs[i])
	}
	// c0 = e - c1·s  (limbs of s over Q are the first limbs of NTTQP)
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.MulCoeffs(ct.C1.Limbs[i], e.sk.NTTQP.Limbs[i], ct.C0.Limbs[i])
		r.Sub(ePoly.Limbs[i], ct.C0.Limbs[i], ct.C0.Limbs[i])
	}
	return ct
}

// EncryptPolyAtLevel encrypts an NTT-form plaintext polynomial (already
// encoded over the first level limbs) by adding it to a fresh zero
// encryption.
func (e *Encryptor) EncryptPolyAtLevel(pt rns.Poly, level int, scale float64) *Ciphertext {
	ct := e.EncryptZeroAtLevel(level)
	e.params.QBasis.AtLevel(level).Add(ct.C0, pt, ct.C0)
	ct.Scale = scale
	return ct
}

// Phase returns c0 + c1·s over the ciphertext's level (NTT in, coefficient
// representation out).
func (d *Decryptor) Phase(ct *Ciphertext) rns.Poly {
	level := ct.Level()
	b := d.params.QBasis.AtLevel(level)
	out := b.NewPoly()
	c0, c1 := ct.C0, ct.C1
	if !ct.IsNTT {
		c0, c1 = ct.C0.Copy(), ct.C1.Copy()
		b.NTT(c0)
		b.NTT(c1)
	}
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.MulCoeffs(c1.Limbs[i], d.sk.NTTQP.Limbs[i], out.Limbs[i])
		r.Add(out.Limbs[i], c0.Limbs[i], out.Limbs[i])
	}
	b.INTT(out)
	return out
}

// PhaseCentered returns the phase as centered big integers.
func (d *Decryptor) PhaseCentered(ct *Ciphertext) []*big.Int {
	return d.params.QBasis.AtLevel(ct.Level()).CRTReconstructCentered(d.Phase(ct))
}
