package rlwe

import (
	"sync"
	"testing"
)

// The repacking entry points promise errors, not panics, on malformed input
// (a malformed request must not take down a bootstrap in flight), and must
// accept every well-formed input. FuzzRepackerValidation drives PackRLWEs,
// Trace, and MergePair through adversarial shapes — non-power-of-two counts,
// mixed levels, nil entries, dropped Galois keys — and checks both halves of
// that contract. The seed corpus under testdata/fuzz covers each rejection
// branch plus the happy path.

var fuzzPack struct {
	once sync.Once
	ks   *KeySwitcher
	pk   *PackingKeys
}

func fuzzPackSetup() (*KeySwitcher, *PackingKeys) {
	fuzzPack.once.Do(func() {
		p := fuzzParams()
		kg := NewKeyGenerator(p, 210)
		sk := kg.GenSecretKey(SecretTernary)
		fuzzPack.ks = NewKeySwitcher(p)
		fuzzPack.pk = kg.GenPackingKeys(sk)
	})
	return fuzzPack.ks, fuzzPack.pk
}

func FuzzRepackerValidation(f *testing.F) {
	f.Add(uint16(4), uint16(0), uint16(0), uint16(0), uint16(4))      // valid pack of 4
	f.Add(uint16(3), uint16(0), uint16(0), uint16(0), uint16(3))      // non-power-of-two count
	f.Add(uint16(4), uint16(0b0010), uint16(0), uint16(0), uint16(4)) // mixed levels
	f.Add(uint16(4), uint16(0), uint16(0b0100), uint16(0), uint16(4)) // nil entry
	f.Add(uint16(8), uint16(0), uint16(0), uint16(1), uint16(8))      // dropped Galois key
	f.Add(uint16(33), uint16(0), uint16(0), uint16(0), uint16(0))     // count > N, trace count 0
	f.Add(uint16(1), uint16(0), uint16(0), uint16(0), uint16(64))     // single ct, trace count > N
	f.Fuzz(func(t *testing.T, rawCount, lvlBits, nilBits, dropStep, traceCount uint16) {
		ks, pk := fuzzPackSetup()
		p := ks.params
		n := p.N()

		count := int(rawCount % uint16(2*n+2)) // covers 0, valid, and > N
		cts := make([]*Ciphertext, count)
		sameLevel, allPresent := true, true
		for i := range cts {
			if nilBits&(1<<(i%16)) != 0 {
				allPresent = false
				continue
			}
			level := 1 + int(lvlBits>>(i%16))&1
			if level != 1+int(lvlBits)&1 {
				sameLevel = false
			}
			ct := NewCiphertext(p, level)
			ct.IsNTT = true
			cts[i] = ct
		}

		// Optionally drop one packing key; every Pack needs the full ladder
		// (merge steps 2..count, trace steps 2·count..N), so any drop must be
		// rejected.
		usePK := pk
		dropped := false
		if dropStep != 0 {
			steps := make([]uint64, 0, 8)
			for s := 2; s <= n; s <<= 1 {
				steps = append(steps, uint64(s+1))
			}
			g := steps[int(dropStep)%len(steps)]
			usePK = &PackingKeys{Keys: make(map[uint64]*GadgetCiphertext, len(pk.Keys))}
			for k, v := range pk.Keys {
				if k == g {
					dropped = true
					continue
				}
				usePK.Keys[k] = v
			}
		}

		valid := count >= 1 && count <= n && count&(count-1) == 0 &&
			allPresent && sameLevel && !dropped

		out, err := PackRLWEs(ks, cts, usePK)
		if valid && err != nil {
			t.Fatalf("well-formed pack (count=%d) rejected: %v", count, err)
		}
		if !valid && err == nil {
			t.Fatalf("malformed pack accepted: count=%d nil=%v mixed=%v dropped=%v",
				count, !allPresent, !sameLevel, dropped)
		}
		if err == nil && out == nil {
			t.Fatal("pack returned nil ciphertext with nil error")
		}

		// Trace validation: arbitrary counts must error (not panic) unless a
		// power of two in [1, N].
		tc := int(traceCount % uint16(2*n+2))
		tct := NewCiphertext(p, 1)
		tct.IsNTT = true
		_, terr := TraceToSubring(ks, tct, tc, usePK)
		traceValid := tc >= 1 && tc <= n && tc&(tc-1) == 0
		if traceValid && !dropped && terr != nil {
			t.Fatalf("well-formed trace (count=%d) rejected: %v", tc, terr)
		}
		if !traceValid && terr == nil {
			t.Fatalf("malformed trace count %d accepted", tc)
		}

		// MergePair validation: mixed levels and bad spans must error.
		rp := NewRepacker(ks, usePK, 1)
		e, o := NewCiphertext(p, 1), NewCiphertext(p, 2)
		e.IsNTT, o.IsNTT = true, true
		if _, merr := rp.MergePair(e, o, 2); merr == nil {
			t.Fatal("mixed-level MergePair accepted")
		}
		if _, merr := rp.MergePair(e, e, 3); merr == nil {
			t.Fatal("non-power-of-two merge span accepted")
		}
	})
}
