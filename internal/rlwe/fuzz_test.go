package rlwe

import (
	"bytes"
	"sync"
	"testing"

	"heap/internal/ring"
)

// Corrupt wire bytes must never panic the deserializers (they feed directly
// from cluster connections), and anything they accept must round-trip
// stably — the contract the hardened cluster protocol builds on.

var fuzzP struct {
	once sync.Once
	p    *Parameters
}

func fuzzParams() *Parameters {
	fuzzP.once.Do(func() {
		q := ring.GenerateNTTPrimes(30, 4, 3)
		p := ring.GenerateNTTPrimesUp(31, 4, 2)
		params, err := NewParameters(4, q, p, ring.DefaultSigma, 2)
		if err != nil {
			panic(err)
		}
		fuzzP.p = params
	})
	return fuzzP.p
}

func FuzzReadCiphertext(f *testing.F) {
	p := fuzzParams()
	kg := NewKeyGenerator(p, 200)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 201)
	for _, level := range []int{1, p.MaxLevel()} {
		var buf bytes.Buffer
		ct := enc.EncryptZeroAtLevel(level)
		ct.Scale = 3.25e12
		if _, err := ct.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A corrupted header variant.
		raw := append([]byte(nil), buf.Bytes()...)
		raw[8] ^= 0x7F
		f.Add(raw)
	}
	f.Add([]byte("not a ciphertext"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := ReadCiphertext(bytes.NewReader(data), p)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := ct.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialize of accepted ciphertext: %v", err)
		}
		ct2, err := ReadCiphertext(&buf, p)
		if err != nil {
			t.Fatalf("re-read of accepted ciphertext: %v", err)
		}
		if ct2.Level() != ct.Level() || ct2.IsNTT != ct.IsNTT || ct2.Scale != ct.Scale {
			t.Fatal("accepted ciphertext metadata not stable")
		}
		for i := 0; i < ct.Level(); i++ {
			if !equalU64(ct.C0.Limbs[i], ct2.C0.Limbs[i]) || !equalU64(ct.C1.Limbs[i], ct2.C1.Limbs[i]) {
				t.Fatalf("accepted ciphertext limb %d not stable", i)
			}
		}
	})
}

func FuzzReadLWECiphertext(f *testing.F) {
	s := ring.NewSampler(202)
	ct := &LWECiphertext{A: make([]uint64, 32), Q: 1 << 20, B: 77}
	for i := range ct.A {
		ct.A[i] = s.UniformMod(ct.Q)
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	raw := append([]byte(nil), buf.Bytes()...)
	raw[9] ^= 0xFF // dimension field
	f.Add(raw)
	f.Add([]byte{0x4C, 0x41, 0x45, 0x48})

	f.Fuzz(func(t *testing.T, data []byte) {
		lwe, err := ReadLWECiphertext(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := lwe.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize of accepted LWE ciphertext: %v", err)
		}
		lwe2, err := ReadLWECiphertext(&out)
		if err != nil {
			t.Fatalf("re-read of accepted LWE ciphertext: %v", err)
		}
		if lwe2.B != lwe.B || lwe2.Q != lwe.Q || !equalU64(lwe2.A, lwe.A) {
			t.Fatal("accepted LWE ciphertext not stable")
		}
	})
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
