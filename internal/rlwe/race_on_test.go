//go:build race

package rlwe

// raceEnabled reports whether the race detector is compiled in. Under -race
// sync.Pool intentionally drops items to widen interleavings, so pool-backed
// zero-allocation locks cannot hold and are skipped.
const raceEnabled = true
