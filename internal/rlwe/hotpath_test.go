package rlwe

import (
	"sync"
	"testing"
)

// hotpathFixture builds a key switcher plus the ciphertext/RGSW operands of
// an external product at the full level.
func hotpathFixture(t *testing.T) (*Parameters, *KeySwitcher, *Ciphertext, *RGSWCiphertext) {
	t.Helper()
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 7)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 8)
	rgsw := kg.GenRGSWConstant(1, sk)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i%17) - 8
	}
	level := p.MaxLevel()
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
	return p, NewKeySwitcher(p), ct, rgsw
}

// TestExternalProductIntoMatchesAllocating locks in bit-identical outputs
// between the allocating convenience API and the scratch-arena hot path,
// including on scratch reuse (a stale buffer that leaked state across calls
// would show up on the second Into call).
func TestExternalProductIntoMatchesAllocating(t *testing.T) {
	p, ks, ct, rgsw := hotpathFixture(t)
	want := ks.ExternalProduct(ct, rgsw)

	sc := ks.NewScratch()
	got := NewCiphertext(p, ct.Level())
	for rep := 0; rep < 2; rep++ {
		ks.ExternalProductInto(got, ct, rgsw, sc)
		if !p.QBasis.Equal(want.C0, got.C0) || !p.QBasis.Equal(want.C1, got.C1) {
			t.Fatalf("rep %d: ExternalProductInto differs from ExternalProduct", rep)
		}
		if got.IsNTT != want.IsNTT || got.Scale != want.Scale {
			t.Fatalf("rep %d: metadata mismatch", rep)
		}
	}
}

// TestSwitchPolyIntoMatchesSwitchPoly does the same for the CKKS-side kernel.
func TestSwitchPolyIntoMatchesSwitchPoly(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 9)
	sk := kg.GenSecretKey(SecretTernary)
	rlk := kg.GenRelinearizationKey(sk)
	ks := NewKeySwitcher(p)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i%23) - 11
	}
	c := encodeSigned(p, msg, p.MaxLevel())
	wd0, wd1 := ks.SwitchPoly(c, rlk)

	b := p.QBasis.AtLevel(c.Level())
	d0, d1 := b.NewPoly(), b.NewPoly()
	sc := ks.NewScratch()
	for rep := 0; rep < 2; rep++ {
		ks.SwitchPolyInto(c, rlk, d0, d1, sc)
		if !p.QBasis.Equal(wd0, d0) || !p.QBasis.Equal(wd1, d1) {
			t.Fatalf("rep %d: SwitchPolyInto differs from SwitchPoly", rep)
		}
	}
}

// TestExternalProductIntoZeroAllocs is the allocation-regression lock for
// the BlindRotate hot kernel: once the scratch arena is warm, an external
// product must not touch the heap at all.
func TestExternalProductIntoZeroAllocs(t *testing.T) {
	p, ks, ct, rgsw := hotpathFixture(t)
	sc := ks.NewScratch()
	out := NewCiphertext(p, ct.Level())
	ks.ExternalProductInto(out, ct, rgsw, sc) // warm the arena

	if avg := testing.AllocsPerRun(10, func() {
		ks.ExternalProductInto(out, ct, rgsw, sc)
	}); avg != 0 {
		t.Fatalf("ExternalProductInto allocates %.1f objects/op, want 0", avg)
	}
}

// TestConcurrentAutomorphismsColdCache drives Automorphism from many
// goroutines against a cold permutation cache — the exact lazy-fill pattern
// pack.go and the CKKS evaluator trigger. Before EnsurePerm was guarded,
// this was a concurrent map write crash under -race (and in production).
func TestConcurrentAutomorphismsColdCache(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 11)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 12)

	gs := []uint64{3, 5, 9, 17, 33}
	keys := make(map[uint64]*GadgetCiphertext, len(gs))
	for _, g := range gs {
		keys[g] = kg.GenGaloisKey(g, sk)
	}
	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i % 7)
	}
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, p.MaxLevel()), p.MaxLevel(), 1)

	ks := NewKeySwitcher(p) // cold permCache
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, g := range gs {
					_ = ks.Automorphism(ct, g, keys[g])
				}
			}
		}()
	}
	wg.Wait()

	// The cache must now serve every element without recomputation.
	for _, g := range gs {
		if got := ks.EnsurePerm(g); len(got) != p.N() {
			t.Fatalf("perm for g=%d has length %d, want %d", g, len(got), p.N())
		}
	}
}

// TestShoupPrecompViaMulScalar exercises the ring hot-path contract from
// the consumer side: a scalar ≥ q must round-trip through the internal
// reduce + precompute without panicking.
func TestShoupPrecompViaMulScalar(t *testing.T) {
	p := testParams(t, 4)
	r := p.QBasis.Rings[0]
	q := r.Mod.Q
	a := r.NewPoly()
	for i := range a {
		a[i] = uint64(i) % q
	}
	out := r.NewPoly()
	r.MulScalar(a, q+3, out) // would panic in bits.Div64 before the fix
	want := r.NewPoly()
	r.MulScalar(a, 3, want)
	if !r.Equal(out, want) {
		t.Fatal("MulScalar with unreduced scalar disagrees with reduced scalar")
	}
}
