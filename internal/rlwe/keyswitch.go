package rlwe

import (
	"sync"

	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rns"
)

// KeySwitcher implements the gadget-decomposition + MAC + ModDown kernel
// shared by CKKS KeySwitch and the TFHE ExternalProduct. It is safe for
// concurrent use after construction: all precomputation is read-only, the
// permutation cache is lock-guarded, and per-call scratch comes from either
// a caller-owned Scratch arena (the allocation-free hot path) or an internal
// pool (the convenience API).
type KeySwitcher struct {
	params *Parameters
	// extenders[(start<<16)|end] extends the digit window Q[start:end]
	// into the full QP basis.
	extenders map[int]*rns.Extender
	modDown   *rns.ModDown
	// permCache caches NTT-domain automorphism permutations per Galois
	// element. permMu guards it: Automorphism fills it lazily, so concurrent
	// rotations with a cold cache would otherwise race on the map.
	permMu    sync.RWMutex
	permCache map[uint64][]uint64
	// monoCache caches, per rotation amount k, the NTT image of X^k over
	// every Q limb, so the repacking merge tree can rotate accumulators by a
	// pointwise multiply without leaving the evaluation domain.
	monoMu    sync.RWMutex
	monoCache map[int][]ring.Poly

	// rec receives the kernel-granularity cost counters (NTT limb
	// transforms, external products, key switches). Always non-nil; the
	// default obs.Nop makes every instrumentation site a free leaf call, so
	// the zero-allocation hot-path locks hold with the counters compiled in.
	rec obs.Recorder

	scratchPool sync.Pool
}

// NewKeySwitcher precomputes all basis-conversion tables for the parameter
// set: one extender per (digit window, window length) pair and the P→Q
// ModDown tables.
func NewKeySwitcher(params *Parameters) *KeySwitcher {
	ks := &KeySwitcher{
		params:    params,
		extenders: make(map[int]*rns.Extender),
		modDown:   rns.NewModDown(params.QBasis, params.PBasis),
		permCache: make(map[uint64][]uint64),
		monoCache: make(map[int][]ring.Poly),
		rec:       obs.Nop{},
	}
	alpha := params.Alpha()
	L := params.MaxLevel()
	for start := 0; start < L; start += alpha {
		maxEnd := start + alpha
		if maxEnd > L {
			maxEnd = L
		}
		for end := start + 1; end <= maxEnd; end++ {
			src := &rns.Basis{Rings: params.QBasis.Rings[start:end], LogN: params.LogN, N: params.N()}
			ks.extenders[start<<16|end] = rns.NewExtender(src, params.QPBasis)
		}
	}
	ks.scratchPool.New = func() any { return ks.NewScratch() }
	return ks
}

// SetRecorder installs the observability recorder the kernel counters
// report to (nil restores the no-op default). Install before the key
// switcher is shared across goroutines; the recorder itself must be
// concurrency-safe.
func (ks *KeySwitcher) SetRecorder(r obs.Recorder) { ks.rec = obs.OrNop(r) }

// Recorder returns the installed recorder (never nil). Components built on
// top of the key switcher — the TFHE evaluator, the repacker — report their
// own stages and counters through it, so one installation covers the whole
// kernel stack.
func (ks *KeySwitcher) Recorder() obs.Recorder { return ks.rec }

// EnsurePerm precomputes and caches the NTT-domain permutation for Galois
// element g. Safe for concurrent use (double-checked under an RWMutex), so
// lazy callers like Automorphism may hit a cold cache from many goroutines.
func (ks *KeySwitcher) EnsurePerm(g uint64) []uint64 {
	ks.permMu.RLock()
	p, ok := ks.permCache[g]
	ks.permMu.RUnlock()
	if ok {
		return p
	}
	ks.permMu.Lock()
	defer ks.permMu.Unlock()
	if p, ok := ks.permCache[g]; ok {
		return p
	}
	p = ks.params.QBasis.Rings[0].AutomorphismNTTIndex(g)
	ks.permCache[g] = p
	return p
}

// EnsureMonomialNTT precomputes and caches the NTT representation of the
// monomial X^k for every Q limb at the maximum level (lower levels use a
// prefix). Safe for concurrent use with the same double-checked RWMutex
// discipline as EnsurePerm. The merge tree only ever needs log2(N) distinct
// rotation amounts, so the cache stays tiny.
func (ks *KeySwitcher) EnsureMonomialNTT(k int) []ring.Poly {
	ks.monoMu.RLock()
	m, ok := ks.monoCache[k]
	ks.monoMu.RUnlock()
	if ok {
		return m
	}
	ks.monoMu.Lock()
	defer ks.monoMu.Unlock()
	if m, ok := ks.monoCache[k]; ok {
		return m
	}
	rings := ks.params.QBasis.Rings
	m = make([]ring.Poly, len(rings))
	for i, r := range rings {
		m[i] = r.NewPoly()
		r.MonomialNTT(k, m[i])
	}
	ks.monoCache[k] = m
	return m
}

// qpAccumulator is scratch for a key-switch accumulation at a given level:
// level Q limbs followed by all P limbs, in NTT representation.
type qpAccumulator struct {
	q rns.Poly
	p rns.Poly
}

// atLevel returns a view of the accumulator truncated to level Q limbs.
func (a qpAccumulator) atLevel(level int) qpAccumulator {
	return qpAccumulator{q: a.q.AtLevel(level), p: a.p}
}

// Scratch is a per-worker arena holding every intermediate of the
// key-switch/external-product kernel: accumulators, the digit buffer, the
// combined limb table and destination indices of the gadget decomposition,
// INTT copies of the input, and the basis-conversion/ModDown scratch. It is
// the software analog of the paper's §VI-B plan of keeping all BlindRotate
// operands resident in on-chip URAM/BRAM: one arena per worker, reused for
// every external product, so the steady-state datapath never allocates.
// A Scratch must not be shared between concurrent calls.
type Scratch struct {
	accB, accA qpAccumulator
	dig        qpAccumulator
	combined   []ring.Poly
	dstIdx     []int
	c0, c1     rns.Poly
	t0, t1     rns.Poly
	conv       *rns.ExtendScratch
	md         *rns.ModDownScratch
}

// NewScratch allocates a scratch arena sized for this key switcher's
// parameter set (all buffers at the maximum level; lower levels use views).
func (ks *KeySwitcher) NewScratch() *Scratch {
	p := ks.params
	nP := len(p.P)
	L := p.MaxLevel()
	newAcc := func() qpAccumulator {
		return qpAccumulator{q: p.QBasis.NewPoly(), p: p.PBasis.NewPoly()}
	}
	return &Scratch{
		accB:     newAcc(),
		accA:     newAcc(),
		dig:      newAcc(),
		combined: make([]ring.Poly, L+nP),
		dstIdx:   make([]int, 0, L+nP),
		c0:       p.QBasis.NewPoly(),
		c1:       p.QBasis.NewPoly(),
		t0:       p.QBasis.NewPoly(),
		t1:       p.QBasis.NewPoly(),
		conv:     rns.NewExtendScratch(p.Alpha(), p.N()),
		md:       ks.modDown.NewScratch(),
	}
}

func (ks *KeySwitcher) getScratch() *Scratch   { return ks.scratchPool.Get().(*Scratch) }
func (ks *KeySwitcher) putScratch(sc *Scratch) { ks.scratchPool.Put(sc) }

// decomposeDigit extracts gadget digit j of cCoeff (coefficient
// representation, level limbs) and extends it over the level Q limbs plus
// all P limbs, writing the result into dig in NTT representation. dig must
// be a level view; every limb is fully overwritten.
func (ks *KeySwitcher) decomposeDigit(j, level int, cCoeff rns.Poly, dig qpAccumulator, sc *Scratch) {
	p := ks.params
	alpha := p.Alpha()
	start := j * alpha
	end := start + alpha
	if end > level {
		end = level
	}
	src := rns.Poly{Limbs: cCoeff.Limbs[start:end]}

	nP := len(p.P)
	L := p.MaxLevel()
	combined := rns.Poly{Limbs: sc.combined[:level+nP]}
	copy(combined.Limbs, dig.q.Limbs)
	copy(combined.Limbs[level:], dig.p.Limbs)
	dstIdx := sc.dstIdx[:0]
	for i := 0; i < level; i++ {
		dstIdx = append(dstIdx, i)
	}
	for i := 0; i < nP; i++ {
		dstIdx = append(dstIdx, L+i)
	}
	ks.extenders[start<<16|end].ExtendSelectedWith(src, combined, dstIdx, sc.conv)
	for i := 0; i < level; i++ {
		p.QBasis.Rings[i].NTT(combined.Limbs[i])
	}
	for i := 0; i < nP; i++ {
		p.PBasis.Rings[i].NTT(combined.Limbs[level+i])
	}
	ks.rec.Add(obs.CounterNTT, uint64(level+nP))
}

// macRow accumulates acc += dig ⊙ row, where row is a full-QP polynomial and
// dig/acc are (level Q + P) accumulators.
func (ks *KeySwitcher) macRow(acc, dig qpAccumulator, row rns.Poly, level int) {
	p := ks.params
	L := p.MaxLevel()
	for i := 0; i < level; i++ {
		p.QBasis.Rings[i].MulCoeffsAndAdd(dig.q.Limbs[i], row.Limbs[i], acc.q.Limbs[i])
	}
	for i := 0; i < len(p.P); i++ {
		p.PBasis.Rings[i].MulCoeffsAndAdd(dig.p.Limbs[i], row.Limbs[L+i], acc.p.Limbs[i])
	}
}

// SwitchPoly applies the gadget ciphertext gct to the polynomial c (NTT,
// level limbs): it returns (d0, d1) ≈ (c·msg "b side", c·msg "a side")
// after ModDown — the core of every key switch. For a key-switching key
// encrypting s_from under s_to, feeding c = c1 yields d0 + d1·s_to ≈ c1·s_from.
func (ks *KeySwitcher) SwitchPoly(c rns.Poly, gct *GadgetCiphertext) (d0, d1 rns.Poly) {
	level := c.Level()
	b := ks.params.QBasis.AtLevel(level)
	d0, d1 = b.NewPoly(), b.NewPoly()
	sc := ks.getScratch()
	ks.SwitchPolyInto(c, gct, d0, d1, sc)
	ks.putScratch(sc)
	return d0, d1
}

// SwitchPolyInto is SwitchPoly writing into caller-owned d0, d1 (level
// limbs each) using the scratch arena; steady-state it allocates nothing.
func (ks *KeySwitcher) SwitchPolyInto(c rns.Poly, gct *GadgetCiphertext, d0, d1 rns.Poly, sc *Scratch) {
	level := c.Level()
	cCoeff := sc.c0.AtLevel(level)
	for i := range cCoeff.Limbs {
		copy(cCoeff.Limbs[i], c.Limbs[i])
	}
	ks.params.QBasis.AtLevel(level).INTT(cCoeff)
	ks.rec.Add(obs.CounterNTT, uint64(level))
	ks.rec.Add(obs.CounterKeySwitch, 1)
	ks.switchPolyCoeff(cCoeff, gct, d0, d1, sc)
}

// switchPolyCoeff runs the decompose→MAC→ModDown pipeline on a
// coefficient-representation input. cCoeff may alias sc.c0.
func (ks *KeySwitcher) switchPolyCoeff(cCoeff rns.Poly, gct *GadgetCiphertext, d0, d1 rns.Poly, sc *Scratch) {
	level := cCoeff.Level()
	accB := sc.accB.atLevel(level)
	accA := sc.accA.atLevel(level)
	accB.q.Zero()
	accB.p.Zero()
	accA.q.Zero()
	accA.p.Zero()
	dig := sc.dig.atLevel(level)
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		ks.decomposeDigit(j, level, cCoeff, dig, sc)
		ks.macRow(accB, dig, gct.B[j], level)
		ks.macRow(accA, dig, gct.A[j], level)
	}
	ks.modDown.ApplyWith(accB.q, accB.p, d0, sc.md)
	ks.modDown.ApplyWith(accA.q, accA.p, d1, sc.md)
}

// switchPolyCoeffSplit is switchPolyCoeff with a split output domain: d0 is
// produced in NTT representation as usual, while d1 is emitted directly in
// coefficient representation via the linear ModDown variant. This is the
// trace kernel: the repack trace feeds the next step's decomposition from
// d1, so keeping it in the coefficient domain hoists the per-step INTT out
// of the loop. cCoeff may alias d1Coeff — the decomposition consumes the
// input before the final ModDown writes the output.
func (ks *KeySwitcher) switchPolyCoeffSplit(cCoeff rns.Poly, gct *GadgetCiphertext, d0, d1Coeff rns.Poly, sc *Scratch) {
	level := cCoeff.Level()
	accB := sc.accB.atLevel(level)
	accA := sc.accA.atLevel(level)
	accB.q.Zero()
	accB.p.Zero()
	accA.q.Zero()
	accA.p.Zero()
	ks.rec.Add(obs.CounterKeySwitch, 1)
	dig := sc.dig.atLevel(level)
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		ks.decomposeDigit(j, level, cCoeff, dig, sc)
		ks.macRow(accB, dig, gct.B[j], level)
		ks.macRow(accA, dig, gct.A[j], level)
	}
	ks.modDown.ApplyWith(accB.q, accB.p, d0, sc.md)
	ks.modDown.ApplyCoeffWith(accA.q, accA.p, d1Coeff, sc.md)
}

// Relinearize reduces a degree-2 ciphertext (c0, c1, c2) to degree 1 using
// the relinearization key (a gadget encryption of s²).
func (ks *KeySwitcher) Relinearize(c0, c1, c2 rns.Poly, rlk *GadgetCiphertext) (r0, r1 rns.Poly) {
	d0, d1 := ks.SwitchPoly(c2, rlk)
	level := c0.Level()
	b := ks.params.QBasis.AtLevel(level)
	r0, r1 = b.NewPoly(), b.NewPoly()
	b.Add(c0, d0, r0)
	b.Add(c1, d1, r1)
	return r0, r1
}

// Automorphism applies X→X^g to ct (NTT form) and key-switches back to the
// original secret using gk (a gadget encryption of σ_g(s)).
func (ks *KeySwitcher) Automorphism(ct *Ciphertext, g uint64, gk *GadgetCiphertext) *Ciphertext {
	out := NewCiphertext(ks.params, ct.Level())
	sc := ks.getScratch()
	ks.AutomorphismInto(out, ct, g, gk, sc)
	ks.putScratch(sc)
	return out
}

// AutomorphismInto is Automorphism writing into the caller-owned out
// ciphertext (same level as ct; must not alias it) using the scratch arena.
// This is the allocation-free form the repacking merge tree and trace run:
// the permuted components land in sc.t0/sc.t1 and the key-switch reuses the
// usual decompose→MAC→ModDown buffers. The output is in NTT representation
// and bit-identical to Automorphism's.
func (ks *KeySwitcher) AutomorphismInto(out, ct *Ciphertext, g uint64, gk *GadgetCiphertext, sc *Scratch) {
	level := ct.Level()
	b := ks.params.QBasis.AtLevel(level)
	perm := ks.EnsurePerm(g)
	t0 := sc.t0.AtLevel(level)
	t1 := sc.t1.AtLevel(level)
	b.AutomorphismNTT(ct.C0, perm, t0)
	b.AutomorphismNTT(ct.C1, perm, t1)
	ks.SwitchPolyInto(t1, gk, out.C0, out.C1, sc)
	b.Add(t0, out.C0, out.C0)
	out.IsNTT = true
	out.Scale = ct.Scale
}

// Hoisted holds the gadget decomposition of one ciphertext component,
// extended to the full QP basis in NTT representation: the "decompose once"
// half of hoisted rotations. Galois automorphisms act on each digit as a
// pure NTT-slot permutation, so a single decomposition of c1 serves every
// automorphism applied to the same ciphertext — ARK's key-reuse insight
// applied to rotation batches (PAPERS.md). Note the hoisted result is not
// bit-identical to the non-hoisted key switch (the fast basis extension and
// the permutation do not commute exactly); the difference is bounded by the
// usual key-switch noise, which is why the repacking merge tree — whose
// output is locked bit-identical to the serial reference — uses
// AutomorphismInto instead.
type Hoisted struct {
	level int
	digs  []qpAccumulator
}

// Level reports the level the decomposition was taken at.
func (h *Hoisted) Level() int { return h.level }

// NewHoisted allocates digit buffers sized for the maximum level.
func (ks *KeySwitcher) NewHoisted() *Hoisted {
	p := ks.params
	L := p.MaxLevel()
	h := &Hoisted{digs: make([]qpAccumulator, p.DigitsAtLevel(L))}
	for j := range h.digs {
		h.digs[j] = qpAccumulator{q: p.QBasis.NewPoly(), p: p.PBasis.NewPoly()}
	}
	return h
}

// DecomposeInto fills h with the gadget decomposition of c (NTT form, level
// limbs), extended over the full QP basis.
func (ks *KeySwitcher) DecomposeInto(h *Hoisted, c rns.Poly, sc *Scratch) {
	level := c.Level()
	h.level = level
	cCoeff := sc.c0.AtLevel(level)
	for i := range cCoeff.Limbs {
		copy(cCoeff.Limbs[i], c.Limbs[i])
	}
	ks.params.QBasis.AtLevel(level).INTT(cCoeff)
	ks.rec.Add(obs.CounterNTT, uint64(level))
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		ks.decomposeDigit(j, level, cCoeff, h.digs[j].atLevel(level), sc)
	}
}

// Decompose is DecomposeInto with a freshly allocated Hoisted and pooled
// scratch — decompose c1 once, then apply many Galois keys against it.
func (ks *KeySwitcher) Decompose(c rns.Poly) *Hoisted {
	h := ks.NewHoisted()
	sc := ks.getScratch()
	ks.DecomposeInto(h, c, sc)
	ks.putScratch(sc)
	return h
}

// ApplyGaloisHoistedInto computes out = KeySwitch(σ_g(ct), gk) reusing the
// decomposition h of ct.C1: each stored digit is permuted in the NTT domain
// (σ_g commutes with the RNS digit selection) and MACed against the key rows,
// skipping the per-rotation INTT/decompose/NTT pipeline entirely. ct must be
// the ciphertext h was decomposed from, at the same level; out must not
// alias ct.
func (ks *KeySwitcher) ApplyGaloisHoistedInto(out, ct *Ciphertext, h *Hoisted, g uint64, gk *GadgetCiphertext, sc *Scratch) {
	level := h.level
	p := ks.params
	b := p.QBasis.AtLevel(level)
	perm := ks.EnsurePerm(g)
	nP := len(p.P)
	accB := sc.accB.atLevel(level)
	accA := sc.accA.atLevel(level)
	accB.q.Zero()
	accB.p.Zero()
	accA.q.Zero()
	accA.p.Zero()
	ks.rec.Add(obs.CounterKeySwitch, 1)
	dig := sc.dig.atLevel(level)
	for j := 0; j < p.DigitsAtLevel(level); j++ {
		for i := 0; i < level; i++ {
			p.QBasis.Rings[i].AutomorphismNTT(h.digs[j].q.Limbs[i], perm, dig.q.Limbs[i])
		}
		for i := 0; i < nP; i++ {
			p.PBasis.Rings[i].AutomorphismNTT(h.digs[j].p.Limbs[i], perm, dig.p.Limbs[i])
		}
		ks.macRow(accB, dig, gk.B[j], level)
		ks.macRow(accA, dig, gk.A[j], level)
	}
	ks.modDown.ApplyWith(accB.q, accB.p, out.C0, sc.md)
	ks.modDown.ApplyWith(accA.q, accA.p, out.C1, sc.md)
	t0 := sc.t0.AtLevel(level)
	b.AutomorphismNTT(ct.C0, perm, t0)
	b.Add(t0, out.C0, out.C0)
	out.IsNTT = true
	out.Scale = ct.Scale
}

// ApplyGaloisHoisted is the allocating convenience form of
// ApplyGaloisHoistedInto.
func (ks *KeySwitcher) ApplyGaloisHoisted(ct *Ciphertext, h *Hoisted, g uint64, gk *GadgetCiphertext) *Ciphertext {
	out := NewCiphertext(ks.params, h.level)
	sc := ks.getScratch()
	ks.ApplyGaloisHoistedInto(out, ct, h, g, gk, sc)
	ks.putScratch(sc)
	return out
}

// ExternalProduct computes ct ⊡ rgsw ≈ RLWE(m · phase(ct)): both ciphertext
// components are gadget-decomposed and MACed against the RGSW rows — the
// TFHE kernel at the heart of BlindRotate (§IV-E) — then ModDown'd back to Q.
func (ks *KeySwitcher) ExternalProduct(ct *Ciphertext, rgsw *RGSWCiphertext) *Ciphertext {
	out := NewCiphertext(ks.params, ct.Level())
	sc := ks.getScratch()
	ks.ExternalProductInto(out, ct, rgsw, sc)
	ks.putScratch(sc)
	return out
}

// ExternalProductInto is ExternalProduct writing into the caller-owned out
// ciphertext (same level as ct, must not alias it) using the scratch arena.
// This is the zero-allocation form the blind-rotation hot loop runs: all
// digit decompositions, NTTs, and MAC accumulators live in sc, mirroring the
// paper's on-chip operand residency for the rotate→decompose→NTT→MAC
// schedule. The output is in NTT representation.
func (ks *KeySwitcher) ExternalProductInto(out, ct *Ciphertext, rgsw *RGSWCiphertext, sc *Scratch) {
	level := ct.Level()
	b := ks.params.QBasis.AtLevel(level)

	c0Coeff, c1Coeff := sc.c0.AtLevel(level), sc.c1.AtLevel(level)
	for i := 0; i < level; i++ {
		copy(c0Coeff.Limbs[i], ct.C0.Limbs[i])
		copy(c1Coeff.Limbs[i], ct.C1.Limbs[i])
	}
	if ct.IsNTT {
		b.INTT(c0Coeff)
		b.INTT(c1Coeff)
		ks.rec.Add(obs.CounterNTT, uint64(2*level))
	}
	ks.rec.Add(obs.CounterExternalProduct, 1)
	accB := sc.accB.atLevel(level)
	accA := sc.accA.atLevel(level)
	accB.q.Zero()
	accB.p.Zero()
	accA.q.Zero()
	accA.p.Zero()
	dig := sc.dig.atLevel(level)
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		ks.decomposeDigit(j, level, c0Coeff, dig, sc)
		ks.macRow(accB, dig, rgsw.C0.B[j], level)
		ks.macRow(accA, dig, rgsw.C0.A[j], level)
		ks.decomposeDigit(j, level, c1Coeff, dig, sc)
		ks.macRow(accB, dig, rgsw.C1.B[j], level)
		ks.macRow(accA, dig, rgsw.C1.A[j], level)
	}
	ks.modDown.ApplyWith(accB.q, accB.p, out.C0, sc.md)
	ks.modDown.ApplyWith(accA.q, accA.p, out.C1, sc.md)
	out.IsNTT = true
	out.Scale = ct.Scale
}
