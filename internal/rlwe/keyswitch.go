package rlwe

import (
	"heap/internal/ring"
	"heap/internal/rns"
)

// KeySwitcher implements the gadget-decomposition + MAC + ModDown kernel
// shared by CKKS KeySwitch and the TFHE ExternalProduct. It is safe for
// concurrent use after construction (all state is read-only precomputation;
// scratch space is allocated per call).
type KeySwitcher struct {
	params *Parameters
	// extenders[(start<<16)|end] extends the digit window Q[start:end]
	// into the full QP basis.
	extenders map[int]*rns.Extender
	modDown   *rns.ModDown
	// permCache caches NTT-domain automorphism permutations per Galois
	// element (read-only after first use; built eagerly via EnsurePerm).
	permCache map[uint64][]uint64
}

// NewKeySwitcher precomputes all basis-conversion tables for the parameter
// set: one extender per (digit window, window length) pair and the P→Q
// ModDown tables.
func NewKeySwitcher(params *Parameters) *KeySwitcher {
	ks := &KeySwitcher{
		params:    params,
		extenders: make(map[int]*rns.Extender),
		modDown:   rns.NewModDown(params.QBasis, params.PBasis),
		permCache: make(map[uint64][]uint64),
	}
	alpha := params.Alpha()
	L := params.MaxLevel()
	for start := 0; start < L; start += alpha {
		maxEnd := start + alpha
		if maxEnd > L {
			maxEnd = L
		}
		for end := start + 1; end <= maxEnd; end++ {
			src := &rns.Basis{Rings: params.QBasis.Rings[start:end], LogN: params.LogN, N: params.N()}
			ks.extenders[start<<16|end] = rns.NewExtender(src, params.QPBasis)
		}
	}
	return ks
}

// EnsurePerm precomputes and caches the NTT-domain permutation for Galois
// element g. Call once per Galois element before concurrent use.
func (ks *KeySwitcher) EnsurePerm(g uint64) []uint64 {
	if p, ok := ks.permCache[g]; ok {
		return p
	}
	p := ks.params.QBasis.Rings[0].AutomorphismNTTIndex(g)
	ks.permCache[g] = p
	return p
}

// qpAccumulator is scratch for a key-switch accumulation at a given level:
// level Q limbs followed by all P limbs, in NTT representation.
type qpAccumulator struct {
	q rns.Poly
	p rns.Poly
}

func (ks *KeySwitcher) newAccumulator(level int) qpAccumulator {
	return qpAccumulator{
		q: ks.params.QBasis.AtLevel(level).NewPoly(),
		p: ks.params.PBasis.NewPoly(),
	}
}

// decomposeDigit extracts gadget digit j of cCoeff (coefficient
// representation, level limbs) and extends it over the level Q limbs plus
// all P limbs, returning the result in NTT representation.
func (ks *KeySwitcher) decomposeDigit(j, level int, cCoeff rns.Poly) qpAccumulator {
	p := ks.params
	alpha := p.Alpha()
	start := j * alpha
	end := start + alpha
	if end > level {
		end = level
	}
	src := rns.Poly{Limbs: cCoeff.Limbs[start:end]}

	nP := len(p.P)
	L := p.MaxLevel()
	out := qpAccumulator{
		q: p.QBasis.AtLevel(level).NewPoly(),
		p: p.PBasis.NewPoly(),
	}
	combined := rns.Poly{Limbs: make([]ring.Poly, level+nP)}
	copy(combined.Limbs, out.q.Limbs)
	copy(combined.Limbs[level:], out.p.Limbs)
	dstIdx := make([]int, 0, level+nP)
	for i := 0; i < level; i++ {
		dstIdx = append(dstIdx, i)
	}
	for i := 0; i < nP; i++ {
		dstIdx = append(dstIdx, L+i)
	}
	ks.extenders[start<<16|end].ExtendSelected(src, combined, dstIdx)
	for i := 0; i < level; i++ {
		p.QBasis.Rings[i].NTT(combined.Limbs[i])
	}
	for i := 0; i < nP; i++ {
		p.PBasis.Rings[i].NTT(combined.Limbs[level+i])
	}
	return out
}

// macRow accumulates acc += dig ⊙ row, where row is a full-QP polynomial and
// dig/acc are (level Q + P) accumulators.
func (ks *KeySwitcher) macRow(acc, dig qpAccumulator, row rns.Poly, level int) {
	p := ks.params
	L := p.MaxLevel()
	for i := 0; i < level; i++ {
		p.QBasis.Rings[i].MulCoeffsAndAdd(dig.q.Limbs[i], row.Limbs[i], acc.q.Limbs[i])
	}
	for i := 0; i < len(p.P); i++ {
		p.PBasis.Rings[i].MulCoeffsAndAdd(dig.p.Limbs[i], row.Limbs[L+i], acc.p.Limbs[i])
	}
}

// SwitchPoly applies the gadget ciphertext gct to the polynomial c (NTT,
// level limbs): it returns (d0, d1) ≈ (c·msg "b side", c·msg "a side")
// after ModDown — the core of every key switch. For a key-switching key
// encrypting s_from under s_to, feeding c = c1 yields d0 + d1·s_to ≈ c1·s_from.
func (ks *KeySwitcher) SwitchPoly(c rns.Poly, gct *GadgetCiphertext) (d0, d1 rns.Poly) {
	level := c.Level()
	cCoeff := c.Copy()
	ks.params.QBasis.AtLevel(level).INTT(cCoeff)
	return ks.switchPolyCoeff(cCoeff, gct)
}

func (ks *KeySwitcher) switchPolyCoeff(cCoeff rns.Poly, gct *GadgetCiphertext) (d0, d1 rns.Poly) {
	level := cCoeff.Level()
	accB := ks.newAccumulator(level)
	accA := ks.newAccumulator(level)
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		dig := ks.decomposeDigit(j, level, cCoeff)
		ks.macRow(accB, dig, gct.B[j], level)
		ks.macRow(accA, dig, gct.A[j], level)
	}
	d0 = ks.params.QBasis.AtLevel(level).NewPoly()
	d1 = ks.params.QBasis.AtLevel(level).NewPoly()
	ks.modDown.Apply(accB.q, accB.p, d0)
	ks.modDown.Apply(accA.q, accA.p, d1)
	return d0, d1
}

// Relinearize reduces a degree-2 ciphertext (c0, c1, c2) to degree 1 using
// the relinearization key (a gadget encryption of s²).
func (ks *KeySwitcher) Relinearize(c0, c1, c2 rns.Poly, rlk *GadgetCiphertext) (r0, r1 rns.Poly) {
	d0, d1 := ks.SwitchPoly(c2, rlk)
	level := c0.Level()
	b := ks.params.QBasis.AtLevel(level)
	r0, r1 = b.NewPoly(), b.NewPoly()
	b.Add(c0, d0, r0)
	b.Add(c1, d1, r1)
	return r0, r1
}

// Automorphism applies X→X^g to ct (NTT form) and key-switches back to the
// original secret using gk (a gadget encryption of σ_g(s)).
func (ks *KeySwitcher) Automorphism(ct *Ciphertext, g uint64, gk *GadgetCiphertext) *Ciphertext {
	level := ct.Level()
	b := ks.params.QBasis.AtLevel(level)
	perm := ks.EnsurePerm(g)
	sc0, sc1 := b.NewPoly(), b.NewPoly()
	b.AutomorphismNTT(ct.C0, perm, sc0)
	b.AutomorphismNTT(ct.C1, perm, sc1)
	d0, d1 := ks.SwitchPoly(sc1, gk)
	b.Add(sc0, d0, sc0)
	return &Ciphertext{C0: sc0, C1: d1, IsNTT: true, Scale: ct.Scale}
}

// ExternalProduct computes ct ⊡ rgsw ≈ RLWE(m · phase(ct)): both ciphertext
// components are gadget-decomposed and MACed against the RGSW rows — the
// TFHE kernel at the heart of BlindRotate (§IV-E) — then ModDown'd back to Q.
func (ks *KeySwitcher) ExternalProduct(ct *Ciphertext, rgsw *RGSWCiphertext) *Ciphertext {
	level := ct.Level()
	b := ks.params.QBasis.AtLevel(level)

	c0Coeff, c1Coeff := ct.C0.Copy(), ct.C1.Copy()
	if ct.IsNTT {
		b.INTT(c0Coeff)
		b.INTT(c1Coeff)
	}
	accB := ks.newAccumulator(level)
	accA := ks.newAccumulator(level)
	for j := 0; j < ks.params.DigitsAtLevel(level); j++ {
		dig0 := ks.decomposeDigit(j, level, c0Coeff)
		ks.macRow(accB, dig0, rgsw.C0.B[j], level)
		ks.macRow(accA, dig0, rgsw.C0.A[j], level)
		dig1 := ks.decomposeDigit(j, level, c1Coeff)
		ks.macRow(accB, dig1, rgsw.C1.B[j], level)
		ks.macRow(accA, dig1, rgsw.C1.A[j], level)
	}
	out := NewCiphertext(ks.params, level)
	ks.modDown.Apply(accB.q, accB.p, out.C0)
	ks.modDown.Apply(accA.q, accA.p, out.C1)
	out.Scale = ct.Scale
	return out
}
