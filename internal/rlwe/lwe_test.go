package rlwe

import (
	"testing"

	"heap/internal/ring"
)

func TestExtractLWEMatchesPhase(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 20)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 21)
	dec := NewDecryptor(p, sk)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i*7777 - 40000)
	}
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, 1), 1, 1)
	phase := dec.PhaseCentered(ct)

	ctCoeff := ct.CopyNew()
	p.QBasis.AtLevel(1).INTT(ctCoeff.C0)
	p.QBasis.AtLevel(1).INTT(ctCoeff.C1)
	ctCoeff.IsNTT = false

	for _, idx := range []int{0, 1, 7, p.N() - 1} {
		lwe := ExtractLWE(p, ctCoeff, idx)
		got := DecryptLWE(lwe, sk.Signed)
		if got != phase[idx].Int64() {
			t.Errorf("idx %d: extracted LWE phase %d != RLWE phase %v", idx, got, phase[idx])
		}
	}
}

func TestLWEKeySwitch(t *testing.T) {
	s := ring.NewSampler(22)
	q := uint64(1) << 40
	nFrom, nTo := 64, 16
	sFrom := s.TernarySigned(nFrom)
	sTo := s.BinarySigned(nTo)
	ksk := GenLWEKeySwitchKey(sFrom, sTo, q, 8, s, ring.DefaultSigma)

	for trial := 0; trial < 20; trial++ {
		msg := int64(s.UniformMod(1<<30)) - (1 << 29)
		ct := &LWECiphertext{A: make([]uint64, nFrom), Q: q}
		for i := range ct.A {
			ct.A[i] = s.UniformMod(q)
		}
		acc := signedModU(msg, q)
		for i, ai := range ct.A {
			switch sFrom[i] {
			case 1:
				acc = subModU(acc, ai, q)
			case -1:
				acc = addModU(acc, ai, q)
			}
		}
		ct.B = acc
		if got := DecryptLWE(ct, sFrom); got != msg {
			t.Fatalf("trial %d: self-check failed: %d != %d", trial, got, msg)
		}
		out := ksk.Apply(ct)
		got := DecryptLWE(out, sTo)
		diff := got - msg
		if diff < 0 {
			diff = -diff
		}
		if diff > 1<<16 {
			t.Errorf("trial %d: key-switch error %d too large", trial, diff)
		}
	}
}

func TestModSwitchLWE(t *testing.T) {
	s := ring.NewSampler(23)
	q := uint64(1) << 36
	n := 32
	sec := s.BinarySigned(n)
	newQ := uint64(1) << 12

	for trial := 0; trial < 50; trial++ {
		// Message on the coarse grid so mod switching is near-lossless.
		msg := (int64(s.UniformMod(1<<11)) - (1 << 10)) << 24
		ct := &LWECiphertext{A: make([]uint64, n), Q: q}
		for i := range ct.A {
			ct.A[i] = s.UniformMod(q)
		}
		acc := signedModU(msg, q)
		for i, ai := range ct.A {
			if sec[i] == 1 {
				acc = subModU(acc, ai, q)
			}
		}
		ct.B = acc
		out := ModSwitchLWE(ct, newQ)
		if out.Q != newQ {
			t.Fatal("modulus not updated")
		}
		got := DecryptLWE(out, sec)
		want := msg >> 24 // msg·newQ/q
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// Rounding error ≤ (1 + Σ|s_i|)/2 ≈ n/4 + small.
		if diff > int64(n) {
			t.Errorf("trial %d: modswitch error %d (got %d want %d)", trial, diff, got, want)
		}
	}
}

func TestScaleUpLWEExact(t *testing.T) {
	s := ring.NewSampler(24)
	q := uint64(1) << 14
	n := 24
	sec := s.BinarySigned(n)
	for trial := 0; trial < 30; trial++ {
		msg := int64(s.UniformMod(q)) - int64(q/2)
		ct := &LWECiphertext{A: make([]uint64, n), Q: q}
		for i := range ct.A {
			ct.A[i] = s.UniformMod(q)
		}
		acc := signedModU(msg, q)
		for i, ai := range ct.A {
			if sec[i] == 1 {
				acc = subModU(acc, ai, q)
			}
		}
		ct.B = acc
		up := ScaleUpLWE(ct, 20)
		if up.Q != q<<20 {
			t.Fatal("scaled modulus wrong")
		}
		if got, want := DecryptLWE(up, sec), msg<<20; got != want {
			t.Fatalf("trial %d: scale-up not exact: %d != %d", trial, got, want)
		}
		// And switching straight back down must recover the message exactly.
		down := ModSwitchLWE(up, q)
		if got := DecryptLWE(down, sec); got != msg {
			t.Fatalf("trial %d: round trip lost message: %d != %d", trial, got, msg)
		}
	}
}

func TestPackRLWEs(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 25)
	sk := kg.GenSecretKey(SecretTernary)
	ks := NewKeySwitcher(p)
	enc := NewEncryptor(p, sk, 26)
	dec := NewDecryptor(p, sk)
	n := p.N()

	for _, count := range []int{2, 4, n} {
		pk := kg.GenPackingKeys(sk)
		payload := make([]int64, count)
		cts := make([]*Ciphertext, count)
		level := p.MaxLevel()
		for i := 0; i < count; i++ {
			payload[i] = int64(i+1) << 24
			// Message with the payload in the constant coefficient and
			// garbage elsewhere — exactly what BlindRotate outputs.
			msg := make([]int64, n)
			msg[0] = payload[i]
			for j := 1; j < n; j++ {
				msg[j] = int64(j*i) << 20
			}
			cts[i] = enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
		}
		packed, err := PackRLWEs(ks, cts, pk)
		if err != nil {
			t.Fatal(err)
		}
		phase := dec.PhaseCentered(packed)

		stride := n / count
		for j := 0; j < n; j++ {
			var want int64
			if j%stride == 0 {
				want = payload[j/stride] * int64(n)
			}
			diff := phase[j].Int64() - want
			if diff < 0 {
				diff = -diff
			}
			if diff > 1<<20 {
				t.Errorf("count=%d coeff %d: packed value %v want %d (diff %d)",
					count, j, phase[j], want, diff)
			}
		}
	}
}
