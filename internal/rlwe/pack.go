package rlwe

import "fmt"

// PackingKeys holds the Galois keys for the automorphisms X → X^{2^j+1}
// used by the Chen et al. [11] repacking algorithm (the "efficient repacking
// technique using an automorph operation" the paper adopts, §II-B).
type PackingKeys struct {
	Keys map[uint64]*GadgetCiphertext // galois element → key
}

// GenPackingKeys generates the log₂(N) Galois keys X → X^{2^j+1} needed to
// pack any power-of-two count of ciphertexts: log₂(count) merge steps plus
// log₂(N/count) trailing trace steps.
func (kg *KeyGenerator) GenPackingKeys(sk *SecretKey) *PackingKeys {
	pk := &PackingKeys{Keys: make(map[uint64]*GadgetCiphertext)}
	for step := 2; step <= kg.params.N(); step <<= 1 {
		g := uint64(step + 1) // automorphism X → X^{2^ℓ+1}
		pk.Keys[g] = kg.GenGaloisKey(g, sk)
	}
	return pk
}

// PackRLWEs combines 2^ℓ RLWE ciphertexts — each carrying its payload in the
// constant coefficient, with arbitrary garbage in all other coefficients —
// into a single RLWE ciphertext encrypting
//
//	Σ_i N · m_i · X^{i · N/2^ℓ}
//
// (every payload is scaled by N regardless of count: 2^ℓ merge doublings
// followed by N/2^ℓ trace doublings that annihilate the remaining garbage).
// This is the accumulation step of the HEAP bootstrapper: the outputs of the
// parallel BlindRotate operations are streamed back and merged by the
// primary node. Inputs must be NTT-form ciphertexts at a common level; they
// are consumed (used as scratch).
func PackRLWEs(ks *KeySwitcher, cts []*Ciphertext, pk *PackingKeys) *Ciphertext {
	count := len(cts)
	if count == 0 || count&(count-1) != 0 {
		panic(fmt.Sprintf("rlwe: PackRLWEs needs a power-of-two count, got %d", count))
	}
	n := ks.params.N()
	if count > n {
		panic("rlwe: cannot pack more ciphertexts than coefficients")
	}
	out := packRecursive(ks, cts, count, pk)
	return TraceToSubring(ks, out, count, pk)
}

// MergeRLWEs is the recursive merge half of PackRLWEs without the trailing
// trace: payloads land at stride N/count scaled by count, but garbage at
// non-stride positions survives. The HEAP sparse bootstrap merges the
// accumulators, adds ct′, and runs TraceToSubring once over the sum so the
// same trace both finishes the packing and annihilates the non-subring
// junk of ct′.
func MergeRLWEs(ks *KeySwitcher, cts []*Ciphertext, pk *PackingKeys) *Ciphertext {
	count := len(cts)
	if count == 0 || count&(count-1) != 0 {
		panic(fmt.Sprintf("rlwe: MergeRLWEs needs a power-of-two count, got %d", count))
	}
	return packRecursive(ks, cts, count, pk)
}

// TraceToSubring applies σ_{2^j+1} for 2^j = 2·count … N: coefficients at
// stride N/count are fixed and doubled at every step (total factor
// N/count); all other coefficients cancel. With count = N it is a no-op.
func TraceToSubring(ks *KeySwitcher, out *Ciphertext, count int, pk *PackingKeys) *Ciphertext {
	n := ks.params.N()
	level := out.Level()
	b := ks.params.QBasis.AtLevel(level)
	for step := 2 * count; step <= n; step <<= 1 {
		g := uint64(step + 1)
		gk, ok := pk.Keys[g]
		if !ok {
			panic(fmt.Sprintf("rlwe: missing packing key for galois element %d", g))
		}
		rot := ks.Automorphism(out, g, gk)
		b.Add(out.C0, rot.C0, out.C0)
		b.Add(out.C1, rot.C1, out.C1)
	}
	return out
}

// packRecursive implements
//
//	Pack(ct_0..ct_{2^ℓ-1}) = (E + X^{N/2^ℓ}·O) + σ_{2^ℓ+1}(E − X^{N/2^ℓ}·O)
//
// with E = Pack(evens), O = Pack(odds). The automorphism fixes the wanted
// coefficients (doubling them) and, composed across all recursion levels,
// acts as the trace that annihilates every garbage coefficient.
func packRecursive(ks *KeySwitcher, cts []*Ciphertext, count int, pk *PackingKeys) *Ciphertext {
	if count == 1 {
		return cts[0]
	}
	half := count / 2
	evens := make([]*Ciphertext, half)
	odds := make([]*Ciphertext, half)
	for i := 0; i < half; i++ {
		evens[i] = cts[2*i]
		odds[i] = cts[2*i+1]
	}
	e := packRecursive(ks, evens, half, pk)
	o := packRecursive(ks, odds, half, pk)

	level := e.Level()
	b := ks.params.QBasis.AtLevel(level)
	n := ks.params.N()

	// X^{N/2^ℓ}·O: monomial multiplication in the coefficient domain.
	rot := uint64(n / count)
	oShift := o // reuse storage
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.INTT(oShift.C0.Limbs[i])
		r.MulByMonomial(oShift.C0.Limbs[i], int(rot), oShift.C0.Limbs[i])
		r.NTT(oShift.C0.Limbs[i])
		r.INTT(oShift.C1.Limbs[i])
		r.MulByMonomial(oShift.C1.Limbs[i], int(rot), oShift.C1.Limbs[i])
		r.NTT(oShift.C1.Limbs[i])
	}

	sum := e.CopyNew()
	b.Add(sum.C0, oShift.C0, sum.C0)
	b.Add(sum.C1, oShift.C1, sum.C1)
	diff := e
	b.Sub(diff.C0, oShift.C0, diff.C0)
	b.Sub(diff.C1, oShift.C1, diff.C1)

	g := uint64(count + 1)
	gk, ok := pk.Keys[g]
	if !ok {
		panic(fmt.Sprintf("rlwe: missing packing key for galois element %d", g))
	}
	rotated := ks.Automorphism(diff, g, gk)
	b.Add(sum.C0, rotated.C0, sum.C0)
	b.Add(sum.C1, rotated.C1, sum.C1)
	return sum
}
