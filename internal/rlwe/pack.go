package rlwe

import (
	"fmt"
	"sync"

	"heap/internal/obs"
	"heap/internal/rns"
)

// PackingKeys holds the Galois keys for the automorphisms X → X^{2^j+1}
// used by the Chen et al. [11] repacking algorithm (the "efficient repacking
// technique using an automorph operation" the paper adopts, §II-B).
type PackingKeys struct {
	Keys map[uint64]*GadgetCiphertext // galois element → key
}

// GenPackingKeys generates the log₂(N) Galois keys X → X^{2^j+1} needed to
// pack any power-of-two count of ciphertexts: log₂(count) merge steps plus
// log₂(N/count) trailing trace steps.
func (kg *KeyGenerator) GenPackingKeys(sk *SecretKey) *PackingKeys {
	pk := &PackingKeys{Keys: make(map[uint64]*GadgetCiphertext)}
	for step := 2; step <= kg.params.N(); step <<= 1 {
		g := uint64(step + 1) // automorphism X → X^{2^ℓ+1}
		pk.Keys[g] = kg.GenGaloisKey(g, sk)
	}
	return pk
}

// Repacker executes the repacking merge tree and trace. It replaces the old
// recursive, single-threaded packRecursive with an iterative level-order
// reduction: the count/2^ℓ merges at depth ℓ are independent, so each level
// is fanned out over Workers goroutines, every worker drawing a private
// scratch arena (diff/rotation temporaries + key-switch buffers) from an
// internal pool. The merge kernel itself never leaves the NTT domain: the
// X^{N/2^ℓ} rotation of the odd branch is a pointwise multiply by a cached
// monomial table instead of the old INTT→MulByMonomial→NTT round-trip
// (4 transforms per node per component).
//
// Determinism: the tree shape and each node's arithmetic are fixed by the
// ciphertext count alone, so the packed output is bit-identical for every
// worker count — including the streaming core.MergeCollector, which drives
// MergePair in arrival order.
type Repacker struct {
	ks *KeySwitcher
	pk *PackingKeys
	// Workers bounds the goroutines one Merge/Pack call fans each tree level
	// over; values ≤ 1 run serially. It must not be mutated while a call is
	// in flight.
	Workers int

	scratch sync.Pool // *mergeScratch
}

// NewRepacker builds a Repacker over the given key switcher and packing
// keys. The Repacker is safe for concurrent use by multiple goroutines.
func NewRepacker(ks *KeySwitcher, pk *PackingKeys, workers int) *Repacker {
	rp := &Repacker{ks: ks, pk: pk, Workers: workers}
	rp.scratch.New = func() any {
		return &mergeScratch{
			d:  NewCiphertext(ks.params, ks.params.MaxLevel()),
			r:  NewCiphertext(ks.params, ks.params.MaxLevel()),
			tc: ks.params.QBasis.NewPoly(),
			ta: ks.params.QBasis.NewPoly(),
			sc: ks.NewScratch(),
		}
	}
	return rp
}

// mergeScratch is one worker's arena for a merge-tree node: the diff and
// rotated temporaries, the hoisted coefficient-domain trace state (tc holds
// the running C1 across trace steps, ta its automorphed image), and the
// key-switch scratch. The backing arrays are allocated at the maximum level;
// ctAtLevel / AtLevel re-slice them in place so a warm arena serves any
// level without allocating.
type mergeScratch struct {
	d, r   *Ciphertext
	tc, ta rns.Poly
	sc     *Scratch
}

// ctAtLevel truncates a max-level scratch ciphertext to level limbs in
// place. The slice capacity is preserved, so a later call can grow it back.
func ctAtLevel(ct *Ciphertext, level int) *Ciphertext {
	ct.C0.Limbs = ct.C0.Limbs[:level]
	ct.C1.Limbs = ct.C1.Limbs[:level]
	return ct
}

// validate checks the merge-tree preconditions and returns the common level.
func (rp *Repacker) validate(cts []*Ciphertext) (level int, err error) {
	count := len(cts)
	if count == 0 || count&(count-1) != 0 {
		return 0, fmt.Errorf("rlwe: repack needs a power-of-two ciphertext count, got %d", count)
	}
	if count > rp.ks.params.N() {
		return 0, fmt.Errorf("rlwe: cannot pack %d ciphertexts into %d coefficients", count, rp.ks.params.N())
	}
	for i, ct := range cts {
		if ct == nil {
			return 0, fmt.Errorf("rlwe: repack input %d is nil", i)
		}
		if i == 0 {
			level = ct.Level()
			continue
		}
		if ct.Level() != level {
			return 0, fmt.Errorf("rlwe: repack inputs at mixed levels (%d vs %d)", level, ct.Level())
		}
	}
	if level < 1 {
		return 0, fmt.Errorf("rlwe: repack inputs have no limbs")
	}
	for c := 2; c <= count; c <<= 1 {
		if _, ok := rp.pk.Keys[uint64(c+1)]; !ok {
			return 0, fmt.Errorf("rlwe: missing packing key for galois element %d", c+1)
		}
	}
	return level, nil
}

// Merge runs the merge tree over cts: payloads land at stride N/count scaled
// by count, but garbage at non-stride positions survives (Pack adds the
// trace that annihilates it). Inputs must be NTT-form ciphertexts at one
// common level; they are consumed as scratch, and the result aliases
// cts[0]'s storage.
func (rp *Repacker) Merge(cts []*Ciphertext) (*Ciphertext, error) {
	if _, err := rp.validate(cts); err != nil {
		return nil, err
	}
	count := len(cts)
	for c := 2; c <= count; c <<= 1 {
		rp.mergeLevel(cts, count/c, c, rp.pk.Keys[uint64(c+1)])
	}
	return cts[0], nil
}

// Pack is Merge followed by Trace: it combines 2^ℓ RLWE ciphertexts — each
// carrying its payload in the constant coefficient, with arbitrary garbage
// in all other coefficients — into a single RLWE ciphertext encrypting
//
//	Σ_i N · m_i · X^{i · N/2^ℓ}
//
// (every payload is scaled by N regardless of count: 2^ℓ merge doublings
// followed by N/2^ℓ trace doublings that annihilate the remaining garbage).
// Inputs are consumed as scratch; the result aliases cts[0]'s storage.
func (rp *Repacker) Pack(cts []*Ciphertext) (*Ciphertext, error) {
	out, err := rp.Merge(cts)
	if err != nil {
		return nil, err
	}
	return rp.Trace(out, len(cts))
}

// Trace applies σ_{2^j+1} for 2^j = 2·count … N in place: coefficients at
// stride N/count are fixed and doubled at every step (total factor N/count);
// all other coefficients cancel. With count = N it is a no-op.
//
// The loop is serial — each step's automorphism consumes the previous step's
// output — but the decomposition input is hoisted into the coefficient
// domain across the whole chain: the running C1 is INTT'd once up front,
// each step permutes it with a coefficient-domain automorphism, decomposes
// it directly (skipping the per-step INTT inside the key switch), and the
// key switch emits its C1 update back in the coefficient domain via the
// linear ModDown variant. C1 re-enters the NTT domain once, after the last
// step. Every constituent map is exact and emits canonical residues, so the
// result is bit-identical to the retired step-by-step AutomorphismInto loop
// (kept as the reference in pack_test.go) — proven by the property tests,
// not just close.
func (rp *Repacker) Trace(out *Ciphertext, count int) (*Ciphertext, error) {
	n := rp.ks.params.N()
	if count < 1 || count&(count-1) != 0 || count > n {
		return nil, fmt.Errorf("rlwe: trace needs a power-of-two count in [1, %d], got %d", n, count)
	}
	for step := 2 * count; step <= n; step <<= 1 {
		if _, ok := rp.pk.Keys[uint64(step+1)]; !ok {
			return nil, fmt.Errorf("rlwe: missing packing key for galois element %d", step+1)
		}
	}
	if 2*count > n {
		return out, nil
	}
	ks := rp.ks
	level := out.Level()
	b := ks.params.QBasis.AtLevel(level)
	ms := rp.scratch.Get().(*mergeScratch)
	defer rp.scratch.Put(ms)
	rot := ctAtLevel(ms.r, level)

	// Hoist the running C1 into the coefficient domain.
	c1c := ms.tc.AtLevel(level)
	ta := ms.ta.AtLevel(level)
	for i := 0; i < level; i++ {
		copy(c1c.Limbs[i], out.C1.Limbs[i])
	}
	b.INTT(c1c)
	ks.rec.Add(obs.CounterNTT, uint64(level))

	for step := 2 * count; step <= n; step <<= 1 {
		g := uint64(step + 1)
		gk := rp.pk.Keys[g]
		// σ_g of the running value: C1 in the coefficient domain (exact,
		// the canonical image of the NTT-slot permutation), C0 in the NTT
		// domain as before.
		b.Automorphism(c1c, g, ta)
		// d0 → rot.C0 (NTT), d1 → ta in place (coefficient domain).
		ks.switchPolyCoeffSplit(ta, gk, rot.C0, ta, ms.sc)
		b.AutomorphismNTT(out.C0, ks.EnsurePerm(g), rot.C1)
		b.Add(out.C0, rot.C1, out.C0) // += σ_g(C0)
		b.Add(out.C0, rot.C0, out.C0) // += d0
		b.Add(c1c, ta, c1c)           // C1 += d1, still in coefficient domain
	}

	for i := 0; i < level; i++ {
		copy(out.C1.Limbs[i], c1c.Limbs[i])
	}
	b.NTT(out.C1)
	ks.rec.Add(obs.CounterNTT, uint64(level))
	return out, nil
}

// MergePair merges sibling nodes whose combined subtree spans c leaves:
//
//	out = (E + X^{N/c}·O) + σ_{c+1}(E − X^{N/c}·O)
//
// Both inputs are consumed; the result lands in (and aliases) e's storage.
// This is the unit of work the streaming core.MergeCollector schedules as
// accumulators arrive.
func (rp *Repacker) MergePair(e, o *Ciphertext, c int) (*Ciphertext, error) {
	if c < 2 || c&(c-1) != 0 || c > rp.ks.params.N() {
		return nil, fmt.Errorf("rlwe: merge span must be a power of two in [2, %d], got %d", rp.ks.params.N(), c)
	}
	if e.Level() != o.Level() {
		return nil, fmt.Errorf("rlwe: merge siblings at mixed levels (%d vs %d)", e.Level(), o.Level())
	}
	gk, ok := rp.pk.Keys[uint64(c+1)]
	if !ok {
		return nil, fmt.Errorf("rlwe: missing packing key for galois element %d", c+1)
	}
	ms := rp.scratch.Get().(*mergeScratch)
	rp.mergePair(e, o, c, gk, ms)
	rp.scratch.Put(ms)
	return e, nil
}

// mergePair is the merge kernel. Entirely in the NTT domain and, with a warm
// arena, allocation-free: the monomial rotation is a pointwise multiply by
// the cached NTT image of X^{N/c}, which is bit-identical to the old
// coefficient-domain MulByMonomial round-trip.
func (rp *Repacker) mergePair(e, o *Ciphertext, c int, gk *GadgetCiphertext, ms *mergeScratch) {
	ks := rp.ks
	ks.rec.Add(obs.CounterMerge, 1)
	level := e.Level()
	b := ks.params.QBasis.AtLevel(level)
	mono := ks.EnsureMonomialNTT(ks.params.N() / c)
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.MulCoeffs(o.C0.Limbs[i], mono[i], o.C0.Limbs[i])
		r.MulCoeffs(o.C1.Limbs[i], mono[i], o.C1.Limbs[i])
	}
	d := ctAtLevel(ms.d, level)
	rot := ctAtLevel(ms.r, level)
	b.Sub(e.C0, o.C0, d.C0) // diff = E − X^{N/c}·O
	b.Sub(e.C1, o.C1, d.C1)
	b.Add(e.C0, o.C0, e.C0) // sum = E + X^{N/c}·O
	b.Add(e.C1, o.C1, e.C1)
	ks.AutomorphismInto(rot, d, uint64(c+1), gk, ms.sc)
	b.Add(e.C0, rot.C0, e.C0)
	b.Add(e.C1, rot.C1, e.C1)
}

// mergeLevel runs the `half` independent merges of one tree level over
// min(Workers, half) goroutines, each holding its own scratch arena for the
// duration. The serial path (Workers ≤ 1) is allocation-free.
func (rp *Repacker) mergeLevel(cts []*Ciphertext, half, c int, gk *GadgetCiphertext) {
	w := rp.Workers
	if w > half {
		w = half
	}
	if w <= 1 {
		ms := rp.scratch.Get().(*mergeScratch)
		for i := 0; i < half; i++ {
			rp.mergePair(cts[i], cts[i+half], c, gk, ms)
		}
		rp.scratch.Put(ms)
		return
	}
	// stride is declared after the serial return: the goroutine closure
	// captures it by reference, and an earlier declaration would heap-move it
	// on the (allocation-free) serial path too.
	stride := w
	var wg sync.WaitGroup
	for k := 0; k < stride; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ms := rp.scratch.Get().(*mergeScratch)
			defer rp.scratch.Put(ms)
			for i := k; i < half; i += stride {
				rp.mergePair(cts[i], cts[i+half], c, gk, ms)
			}
		}(k)
	}
	wg.Wait()
}

// PackRLWEs combines 2^ℓ RLWE ciphertexts into one (see Repacker.Pack). The
// outputs of the parallel BlindRotate operations are streamed back and
// merged by the primary node this way. Inputs must be NTT-form ciphertexts
// at a common level; they are consumed (used as scratch) and the result
// aliases cts[0]'s storage. Returns an error — not a panic — on a
// non-power-of-two count, mixed levels, or missing packing keys, so a
// malformed request cannot take down a bootstrap in flight.
func PackRLWEs(ks *KeySwitcher, cts []*Ciphertext, pk *PackingKeys) (*Ciphertext, error) {
	return NewRepacker(ks, pk, 1).Pack(cts)
}

// MergeRLWEs is the merge half of PackRLWEs without the trailing trace
// (see Repacker.Merge). The HEAP sparse bootstrap merges the accumulators,
// adds ct′, and runs TraceToSubring once over the sum so the same trace both
// finishes the packing and annihilates the non-subring junk of ct′. Inputs
// are consumed as scratch; the result aliases cts[0]'s storage.
func MergeRLWEs(ks *KeySwitcher, cts []*Ciphertext, pk *PackingKeys) (*Ciphertext, error) {
	return NewRepacker(ks, pk, 1).Merge(cts)
}

// TraceToSubring applies the trace in place (see Repacker.Trace).
func TraceToSubring(ks *KeySwitcher, out *Ciphertext, count int, pk *PackingKeys) (*Ciphertext, error) {
	return NewRepacker(ks, pk, 1).Trace(out, count)
}
