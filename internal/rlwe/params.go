// Package rlwe implements the shared (R)LWE substrate on which both the CKKS
// and TFHE schemes of this library are built: secret keys, RLWE ciphertexts,
// hybrid RNS gadget ciphertexts, key switching, automorphisms, external
// products, LWE extraction (the paper's Extract, Eq. 2), LWE key switching,
// LWE modulus switching, and the automorphism-based LWE→RLWE repacking of
// Chen et al. [11] used by the HEAP bootstrapper.
//
// The paper's §IV-A observation that "basis conversion in the CKKS KeySwitch
// follows the same datapath as the ExternalProduct" is mirrored here: both
// operations are built from the same gadget-decomposition + MAC + ModDown
// kernel.
package rlwe

import (
	"fmt"
	"math"
	"math/big"

	"heap/internal/ring"
	"heap/internal/rns"
)

// Parameters fixes a ring degree, a ciphertext modulus chain Q, a special
// modulus chain P (for hybrid key switching / external products) and the
// gadget decomposition number.
type Parameters struct {
	LogN  int
	Q     []uint64 // ciphertext primes q_0 … q_{L-1}
	P     []uint64 // special primes
	Sigma float64  // error standard deviation
	Dnum  int      // gadget decomposition number d (§III-C: d = 2)

	QBasis  *rns.Basis
	PBasis  *rns.Basis
	QPBasis *rns.Basis // view over Q ‖ P (shares ring tables)
}

// NewParameters validates and precomputes a parameter set.
func NewParameters(logN int, q, p []uint64, sigma float64, dnum int) (*Parameters, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("rlwe: logN=%d out of range", logN)
	}
	if len(q) == 0 || len(p) == 0 {
		return nil, fmt.Errorf("rlwe: need at least one ciphertext and one special prime")
	}
	if dnum < 1 || dnum > len(q) {
		return nil, fmt.Errorf("rlwe: dnum=%d invalid for %d limbs", dnum, len(q))
	}
	seen := map[uint64]bool{}
	for _, m := range append(append([]uint64{}, q...), p...) {
		if seen[m] {
			return nil, fmt.Errorf("rlwe: duplicate modulus %d", m)
		}
		seen[m] = true
	}
	pr := &Parameters{LogN: logN, Q: q, P: p, Sigma: sigma, Dnum: dnum}
	// Hybrid key switching requires the special modulus P to cover the
	// largest gadget digit, or every key switch and external product adds
	// ≈ Q_digit/P of noise and destroys the plaintext.
	alpha := (len(q) + dnum - 1) / dnum
	digitBits, pBits := 0.0, 0.0
	for i, qi := range q {
		if i%alpha == 0 {
			if d := digitBitsOf(q[i:min(i+alpha, len(q))]); d > digitBits {
				digitBits = d
			}
		}
		_ = qi
	}
	pBits = digitBitsOf(p)
	if pBits+2 < digitBits {
		return nil, fmt.Errorf("rlwe: special modulus too small: log2(P)=%.0f < largest gadget digit log2(Q_j)=%.0f — increase P or dnum", pBits, digitBits)
	}
	pr.QBasis = rns.NewBasis(logN, q)
	pr.PBasis = rns.NewBasis(logN, p)
	rings := make([]*ring.Ring, 0, len(q)+len(p))
	rings = append(rings, pr.QBasis.Rings...)
	rings = append(rings, pr.PBasis.Rings...)
	pr.QPBasis = &rns.Basis{Rings: rings, LogN: logN, N: 1 << logN}
	return pr, nil
}

func digitBitsOf(primes []uint64) float64 {
	bits := 0.0
	for _, q := range primes {
		bits += math.Log2(float64(q))
	}
	return bits
}

// MustParameters is NewParameters that panics on error (for tests/examples).
func MustParameters(logN int, q, p []uint64, sigma float64, dnum int) *Parameters {
	pr, err := NewParameters(logN, q, p, sigma, dnum)
	if err != nil {
		panic(err)
	}
	return pr
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << p.LogN }

// MaxLevel returns the number of ciphertext limbs L.
func (p *Parameters) MaxLevel() int { return len(p.Q) }

// Alpha returns the number of ciphertext limbs per gadget digit.
func (p *Parameters) Alpha() int { return (len(p.Q) + p.Dnum - 1) / p.Dnum }

// DigitsAtLevel returns how many gadget digits a level-sized decomposition
// produces.
func (p *Parameters) DigitsAtLevel(level int) int {
	a := p.Alpha()
	return (level + a - 1) / a
}

// BigQ returns the full ciphertext modulus ∏ q_i.
func (p *Parameters) BigQ() *big.Int { return p.QBasis.Modulus() }

// BigP returns the special modulus ∏ p_i.
func (p *Parameters) BigP() *big.Int { return p.PBasis.Modulus() }

// LogQTotal returns the total ciphertext modulus size in bits.
func (p *Parameters) LogQTotal() int { return p.BigQ().BitLen() }

// QPLevel maps a ciphertext level to the QP-limb index list: limbs
// [0, level) of Q followed by all P limbs. Used when operating on the
// extended basis during key switching.
func (p *Parameters) QPLevel(level int) []int {
	idx := make([]int, 0, level+len(p.P))
	for i := 0; i < level; i++ {
		idx = append(idx, i)
	}
	for i := 0; i < len(p.P); i++ {
		idx = append(idx, len(p.Q)+i)
	}
	return idx
}
