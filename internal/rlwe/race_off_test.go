//go:build !race

package rlwe

const raceEnabled = false
