package rlwe

import (
	"bytes"
	"testing"

	"heap/internal/ring"
)

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 100)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 101)

	for _, level := range []int{1, 2, p.MaxLevel()} {
		ct := enc.EncryptZeroAtLevel(level)
		ct.Scale = 3.25e12

		var buf bytes.Buffer
		n, err := ct.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != ct.SerializedSize() || buf.Len() != ct.SerializedSize() {
			t.Fatalf("level %d: wrote %d bytes, SerializedSize says %d", level, n, ct.SerializedSize())
		}
		got, err := ReadCiphertext(&buf, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Level() != level || got.IsNTT != ct.IsNTT || got.Scale != ct.Scale {
			t.Fatalf("level %d: metadata mismatch", level)
		}
		for i := 0; i < level; i++ {
			for j := range ct.C0.Limbs[i] {
				if got.C0.Limbs[i][j] != ct.C0.Limbs[i][j] || got.C1.Limbs[i][j] != ct.C1.Limbs[i][j] {
					t.Fatalf("level %d: coefficient mismatch at limb %d coeff %d", level, i, j)
				}
			}
		}
	}
}

func TestLWESerializationRoundTrip(t *testing.T) {
	s := ring.NewSampler(102)
	ct := &LWECiphertext{A: make([]uint64, 500), Q: 1 << 36, B: 12345}
	for i := range ct.A {
		ct.A[i] = s.UniformMod(ct.Q)
	}
	var buf bytes.Buffer
	n, err := ct.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != ct.SerializedSize() {
		t.Fatalf("wrote %d bytes, SerializedSize says %d", n, ct.SerializedSize())
	}
	// §III-C: an LWE ciphertext at n_t=500 is ~2.3 KB of payload on the
	// paper's 36-bit packing; our 64-bit wire format is ~4 KB.
	got, err := ReadLWECiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != ct.B || got.Q != ct.Q || len(got.A) != len(ct.A) {
		t.Fatal("header mismatch")
	}
	for i := range ct.A {
		if got.A[i] != ct.A[i] {
			t.Fatalf("component %d mismatch", i)
		}
	}
}

func TestSerializationRejectsCorruptInput(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 103)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 104)
	ct := enc.EncryptZeroAtLevel(2)

	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadCiphertext(bytes.NewReader(bad), p); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Truncated stream.
	if _, err := ReadCiphertext(bytes.NewReader(raw[:len(raw)/2]), p); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	// Out-of-range residue.
	bad = append([]byte(nil), raw...)
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0xff
	}
	if _, err := ReadCiphertext(bytes.NewReader(bad), p); err == nil {
		t.Error("out-of-range residue accepted")
	}
	// LWE bad magic.
	lwe := &LWECiphertext{A: []uint64{1, 2}, Q: 97, B: 3}
	var lb bytes.Buffer
	if _, err := lwe.WriteTo(&lb); err != nil {
		t.Fatal(err)
	}
	lraw := lb.Bytes()
	lraw[0] ^= 0xff
	if _, err := ReadLWECiphertext(bytes.NewReader(lraw)); err == nil {
		t.Error("corrupt LWE magic accepted")
	}
}

func TestGadgetAndRGSWSerialization(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 105)
	sk1 := kg.GenSecretKey(SecretTernary)
	sk2 := kg.GenSecretKey(SecretTernary)
	ksk := kg.GenKeySwitchKey(sk1, sk2)

	var buf bytes.Buffer
	if _, err := ksk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGadgetCiphertext(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized key must be functionally identical: key-switch a
	// ciphertext with both and compare outputs exactly.
	enc := NewEncryptor(p, sk1, 106)
	ct := enc.EncryptZeroAtLevel(p.MaxLevel())
	ks := NewKeySwitcher(p)
	d0a, d1a := ks.SwitchPoly(ct.C1, ksk)
	d0b, d1b := ks.SwitchPoly(ct.C1, got)
	for i := range d0a.Limbs {
		for j := range d0a.Limbs[i] {
			if d0a.Limbs[i][j] != d0b.Limbs[i][j] || d1a.Limbs[i][j] != d1b.Limbs[i][j] {
				t.Fatalf("deserialized key produced a different key switch at limb %d coeff %d", i, j)
			}
		}
	}

	// RGSW round trip.
	rgsw := kg.GenRGSWConstant(1, sk1)
	buf.Reset()
	if _, err := rgsw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rgsw2, err := ReadRGSWCiphertext(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if rgsw2.C0.Rows() != rgsw.C0.Rows() {
		t.Fatal("RGSW row count changed")
	}
	outA := ks.ExternalProduct(ct, rgsw)
	outB := ks.ExternalProduct(ct, rgsw2)
	for i := range outA.C0.Limbs {
		for j := range outA.C0.Limbs[i] {
			if outA.C0.Limbs[i][j] != outB.C0.Limbs[i][j] {
				t.Fatal("deserialized RGSW produced a different external product")
			}
		}
	}
}
