package rlwe

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"heap/internal/ring"
	"heap/internal/rns"
)

// Wire format for ciphertexts — the software analog of the paper's CMAC
// data streaming between FPGAs (§V): little-endian, length-prefixed limb
// data. The §V system streams LWE ciphertexts from the primary to the
// secondaries and RLWE accumulators back; internal/cluster uses exactly
// these encodings over its node channels.

const (
	magicRLWE = 0x48454150 // "HEAP"
	magicLWE  = 0x4845414c // "HEAL"
)

// WriteTo serializes the ciphertext.
func (ct *Ciphertext) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	level := ct.Level()
	deg := len(ct.C0.Limbs[0])
	hdr := []uint64{magicRLWE, uint64(level), uint64(deg), boolU64(ct.IsNTT), math.Float64bits(ct.Scale)}
	if err := write(hdr); err != nil {
		return n, err
	}
	for _, poly := range []rns.Poly{ct.C0, ct.C1} {
		for i := 0; i < level; i++ {
			if err := write([]uint64(poly.Limbs[i])); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadCiphertext deserializes a ciphertext; the parameter set provides the
// basis (the level and degree must be consistent with it).
func ReadCiphertext(r io.Reader, p *Parameters) (*Ciphertext, error) {
	hdr := make([]uint64, 5)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != magicRLWE {
		return nil, fmt.Errorf("rlwe: bad RLWE ciphertext magic %x", hdr[0])
	}
	level, deg := int(hdr[1]), int(hdr[2])
	if level < 1 || level > p.MaxLevel() || deg != p.N() {
		return nil, fmt.Errorf("rlwe: ciphertext shape %d×%d incompatible with parameters", level, deg)
	}
	ct := NewCiphertext(p, level)
	ct.IsNTT = hdr[3] == 1
	ct.Scale = math.Float64frombits(hdr[4])
	for _, poly := range []rns.Poly{ct.C0, ct.C1} {
		for i := 0; i < level; i++ {
			if err := binary.Read(r, binary.LittleEndian, []uint64(poly.Limbs[i])); err != nil {
				return nil, err
			}
			// Validate residues against the limb modulus.
			q := p.Q[i]
			for _, v := range poly.Limbs[i] {
				if v >= q {
					return nil, fmt.Errorf("rlwe: residue %d out of range for limb %d", v, i)
				}
			}
		}
	}
	return ct, nil
}

// WriteTo serializes an LWE ciphertext (the §III-C ~2.3 KB objects the
// primary node fans out).
func (ct *LWECiphertext) WriteTo(w io.Writer) (int64, error) {
	hdr := []uint64{magicLWE, uint64(len(ct.A)), ct.Q, ct.B}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, ct.A); err != nil {
		return int64(binary.Size(hdr)), err
	}
	return int64(binary.Size(hdr) + 8*len(ct.A)), nil
}

// ReadLWECiphertext deserializes an LWE ciphertext.
func ReadLWECiphertext(r io.Reader) (*LWECiphertext, error) {
	hdr := make([]uint64, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != magicLWE {
		return nil, fmt.Errorf("rlwe: bad LWE ciphertext magic %x", hdr[0])
	}
	n := int(hdr[1])
	if n < 1 || n > 1<<20 {
		return nil, fmt.Errorf("rlwe: unreasonable LWE dimension %d", n)
	}
	ct := &LWECiphertext{A: make([]uint64, n), Q: hdr[2], B: hdr[3]}
	if err := binary.Read(r, binary.LittleEndian, ct.A); err != nil {
		return nil, err
	}
	return ct, nil
}

// SerializedSize returns the exact wire size of the ciphertext in bytes.
func (ct *Ciphertext) SerializedSize() int {
	return 5*8 + 2*ct.Level()*len(ct.C0.Limbs[0])*8
}

// SerializedSize returns the exact wire size of the LWE ciphertext.
func (ct *LWECiphertext) SerializedSize() int { return 4*8 + 8*len(ct.A) }

// CiphertextWireSize is the wire size of an RLWE ciphertext at the given
// level under p — the framing hook transport layers use to bound payload
// allocations before decoding.
func CiphertextWireSize(p *Parameters, level int) int {
	return 5*8 + 2*level*p.N()*8
}

// LWEWireSize is the wire size of an LWE ciphertext of the given dimension.
func LWEWireSize(dim int) int { return 4*8 + 8*dim }

// Validate checks a (typically freshly deserialized) LWE ciphertext against
// the dimension and modulus a consumer expects: transport layers call this
// before handing the ciphertext to BlindRotate, whose preconditions are
// panics rather than errors.
func (ct *LWECiphertext) Validate(dim int, q uint64) error {
	if len(ct.A) != dim {
		return fmt.Errorf("rlwe: LWE dimension %d, want %d", len(ct.A), dim)
	}
	if ct.Q != q {
		return fmt.Errorf("rlwe: LWE modulus %d, want %d", ct.Q, q)
	}
	if ct.B >= q {
		return fmt.Errorf("rlwe: LWE body %d out of range for modulus %d", ct.B, q)
	}
	for i, a := range ct.A {
		if a >= q {
			return fmt.Errorf("rlwe: LWE component %d = %d out of range for modulus %d", i, a, q)
		}
	}
	return nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ = ring.DefaultSigma
