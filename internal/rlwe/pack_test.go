package rlwe

import (
	"testing"

	"heap/internal/ring"
)

// packFixture builds the key material for repacking tests.
func packFixture(t *testing.T, logN int) (*Parameters, *KeySwitcher, *PackingKeys, *KeyGenerator, *SecretKey) {
	t.Helper()
	p := testParams(t, logN)
	kg := NewKeyGenerator(p, 31)
	sk := kg.GenSecretKey(SecretTernary)
	ks := NewKeySwitcher(p)
	pk := kg.GenPackingKeys(sk)
	return p, ks, pk, kg, sk
}

// randCiphertext fills a ciphertext with uniform limbs — the repack
// algebra is data-independent, so random operands exercise it fully.
func randCiphertext(p *Parameters, s *ring.Sampler, level int) *Ciphertext {
	ct := NewCiphertext(p, level)
	for i := 0; i < level; i++ {
		s.UniformPoly(p.QBasis.Rings[i], ct.C0.Limbs[i])
		s.UniformPoly(p.QBasis.Rings[i], ct.C1.Limbs[i])
	}
	ct.IsNTT = true
	return ct
}

func copyCts(cts []*Ciphertext) []*Ciphertext {
	out := make([]*Ciphertext, len(cts))
	for i, ct := range cts {
		out[i] = ct.CopyNew()
	}
	return out
}

// refMerge is the retired recursive implementation, kept verbatim as the
// serial reference: evens/odds split, coefficient-domain monomial rotation
// (INTT→MulByMonomial→NTT), allocating Automorphism.
func refMerge(ks *KeySwitcher, cts []*Ciphertext, pk *PackingKeys) *Ciphertext {
	count := len(cts)
	if count == 1 {
		return cts[0]
	}
	half := count / 2
	evens := make([]*Ciphertext, half)
	odds := make([]*Ciphertext, half)
	for i := 0; i < half; i++ {
		evens[i] = cts[2*i]
		odds[i] = cts[2*i+1]
	}
	e := refMerge(ks, evens, pk)
	o := refMerge(ks, odds, pk)

	level := e.Level()
	b := ks.params.QBasis.AtLevel(level)
	rot := ks.params.N() / count
	for i := 0; i < level; i++ {
		r := b.Rings[i]
		r.INTT(o.C0.Limbs[i])
		r.MulByMonomial(o.C0.Limbs[i], rot, o.C0.Limbs[i])
		r.NTT(o.C0.Limbs[i])
		r.INTT(o.C1.Limbs[i])
		r.MulByMonomial(o.C1.Limbs[i], rot, o.C1.Limbs[i])
		r.NTT(o.C1.Limbs[i])
	}
	sum := e.CopyNew()
	b.Add(sum.C0, o.C0, sum.C0)
	b.Add(sum.C1, o.C1, sum.C1)
	diff := e
	b.Sub(diff.C0, o.C0, diff.C0)
	b.Sub(diff.C1, o.C1, diff.C1)
	rotated := ks.Automorphism(diff, uint64(count+1), pk.Keys[uint64(count+1)])
	b.Add(sum.C0, rotated.C0, sum.C0)
	b.Add(sum.C1, rotated.C1, sum.C1)
	return sum
}

func refTrace(ks *KeySwitcher, out *Ciphertext, count int, pk *PackingKeys) *Ciphertext {
	b := ks.params.QBasis.AtLevel(out.Level())
	for step := 2 * count; step <= ks.params.N(); step <<= 1 {
		g := uint64(step + 1)
		rot := ks.Automorphism(out, g, pk.Keys[g])
		b.Add(out.C0, rot.C0, out.C0)
		b.Add(out.C1, rot.C1, out.C1)
	}
	return out
}

func ctsEqual(p *Parameters, a, b *Ciphertext) bool {
	return p.QBasis.Equal(a.C0, b.C0) && p.QBasis.Equal(a.C1, b.C1)
}

// TestRepackMatchesSerialReference is the bit-exactness property test of the
// parallel merge tree: over random counts and levels, the serial wrapper and
// a 4-worker Repacker must reproduce the retired recursive implementation
// exactly (the cluster chaos tests rely on repacking being deterministic).
// Run under -race this also exercises the per-worker scratch arenas.
func TestRepackMatchesSerialReference(t *testing.T) {
	p, ks, pk, _, _ := packFixture(t, 5)
	s := ring.NewSampler(0xfeed)
	par := NewRepacker(ks, pk, 4)
	for _, count := range []int{1, 2, 4, 8, p.N()} {
		for level := 1; level <= p.MaxLevel(); level++ {
			cts := make([]*Ciphertext, count)
			for i := range cts {
				cts[i] = randCiphertext(p, s, level)
			}
			want := refTrace(ks, refMerge(ks, copyCts(cts), pk), count, pk)

			serial, err := PackRLWEs(ks, copyCts(cts), pk)
			if err != nil {
				t.Fatalf("count=%d level=%d: serial: %v", count, level, err)
			}
			parallel, err := par.Pack(copyCts(cts))
			if err != nil {
				t.Fatalf("count=%d level=%d: parallel: %v", count, level, err)
			}
			if !ctsEqual(p, want, serial) {
				t.Errorf("count=%d level=%d: serial PackRLWEs differs from reference", count, level)
			}
			if !ctsEqual(p, want, parallel) {
				t.Errorf("count=%d level=%d: parallel Pack differs from reference", count, level)
			}
		}
	}
}

// TestMergeConsumesInputs locks the documented contract the cluster layer
// relies on: Merge/Pack use their inputs as scratch and the result aliases
// cts[0]'s storage.
func TestMergeConsumesInputs(t *testing.T) {
	p, ks, pk, _, _ := packFixture(t, 4)
	s := ring.NewSampler(7)
	cts := make([]*Ciphertext, 4)
	for i := range cts {
		cts[i] = randCiphertext(p, s, p.MaxLevel())
	}
	originals := copyCts(cts)

	out, err := MergeRLWEs(ks, cts, pk)
	if err != nil {
		t.Fatal(err)
	}
	if out != cts[0] {
		t.Error("MergeRLWEs result must alias cts[0]'s storage")
	}
	consumed := 0
	for i := range cts {
		if !ctsEqual(p, cts[i], originals[i]) {
			consumed++
		}
	}
	if consumed == 0 {
		t.Error("MergeRLWEs left every input untouched; the consume-as-scratch contract changed")
	}
}

// TestRepackErrors: the exported entry points must return errors — not
// panic mid-bootstrap — on malformed requests.
func TestRepackErrors(t *testing.T) {
	p, ks, pk, _, _ := packFixture(t, 4)
	s := ring.NewSampler(8)
	mk := func(n, level int) []*Ciphertext {
		cts := make([]*Ciphertext, n)
		for i := range cts {
			cts[i] = randCiphertext(p, s, level)
		}
		return cts
	}
	L := p.MaxLevel()

	if _, err := PackRLWEs(ks, mk(3, L), pk); err == nil {
		t.Error("expected error for non-power-of-two count")
	}
	if _, err := MergeRLWEs(ks, nil, pk); err == nil {
		t.Error("expected error for empty input")
	}
	mixed := mk(2, L)
	mixed[1] = randCiphertext(p, s, L-1)
	if _, err := MergeRLWEs(ks, mixed, pk); err == nil {
		t.Error("expected error for mixed levels")
	}
	withNil := mk(2, L)
	withNil[1] = nil
	if _, err := MergeRLWEs(ks, withNil, pk); err == nil {
		t.Error("expected error for nil input")
	}
	if _, err := TraceToSubring(ks, randCiphertext(p, s, L), 3, pk); err == nil {
		t.Error("expected error for non-power-of-two trace count")
	}

	// Missing key: strip the g=5 key needed by any count ≥ 4 merge.
	gutted := &PackingKeys{Keys: map[uint64]*GadgetCiphertext{}}
	for g, k := range pk.Keys {
		if g != 5 {
			gutted.Keys[g] = k
		}
	}
	if _, err := PackRLWEs(ks, mk(4, L), gutted); err == nil {
		t.Error("expected error for missing packing key")
	}
	if _, err := TraceToSubring(ks, randCiphertext(p, s, L), 2, gutted); err == nil {
		t.Error("expected error for missing trace key")
	}

	rp := NewRepacker(ks, pk, 1)
	e, o := randCiphertext(p, s, L), randCiphertext(p, s, L-1)
	if _, err := rp.MergePair(e, o, 2); err == nil {
		t.Error("expected error for mixed-level merge pair")
	}
	if _, err := rp.MergePair(e, randCiphertext(p, s, L), 3); err == nil {
		t.Error("expected error for non-power-of-two merge span")
	}
}

// TestMonomialNTTMatchesCoefficientDomain proves the table the merge kernel
// multiplies by: for every rotation amount, pointwise multiplication by
// NTT(X^k) is bit-identical to the coefficient-domain monomial shift.
func TestMonomialNTTMatchesCoefficientDomain(t *testing.T) {
	p, ks, _, _, _ := packFixture(t, 4)
	r := p.QBasis.Rings[0]
	n := r.N
	s := ring.NewSampler(9)
	for _, k := range []int{0, 1, 5, n / 2, n - 1, n, n + 3, 2*n - 1} {
		a := r.NewPoly()
		s.UniformPoly(r, a) // NTT-form operand
		want := a.Copy()
		r.INTT(want)
		r.MulByMonomial(want, k, want)
		r.NTT(want)

		mono := ks.EnsureMonomialNTT(k)
		got := r.NewPoly()
		r.MulCoeffs(a, mono[0], got)
		if !r.Equal(want, got) {
			t.Errorf("k=%d: NTT-domain monomial multiply differs from coefficient-domain shift", k)
		}
	}
}

// TestHoistedRotationMatchesAutomorphism checks the decompose-once/apply-many
// path: the hoisted rotation must decrypt to the same permuted message as the
// plain Automorphism (the two are not bit-identical — the fast basis
// extension sees permuted digits — but the difference stays inside key-switch
// noise), and the Into form must match the allocating form exactly.
func TestHoistedRotationMatchesAutomorphism(t *testing.T) {
	p, ks, _, kg, sk := packFixture(t, 5)
	enc := NewEncryptor(p, sk, 32)
	dec := NewDecryptor(p, sk)
	n := p.N()
	msg := make([]int64, n)
	for i := range msg {
		msg[i] = int64(i%17) - 8
	}
	level := p.MaxLevel()
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)

	h := ks.Decompose(ct.C1)
	if h.Level() != level {
		t.Fatalf("decomposition at level %d, want %d", h.Level(), level)
	}
	for _, g := range []uint64{3, 5, 9} {
		gk := kg.GenGaloisKey(g, sk)
		plain := ks.Automorphism(ct, g, gk)
		hoisted := ks.ApplyGaloisHoisted(ct, h, g, gk)

		into := NewCiphertext(p, level)
		sc := ks.NewScratch()
		ks.ApplyGaloisHoistedInto(into, ct, h, g, gk, sc)
		if !ctsEqual(p, hoisted, into) {
			t.Fatalf("g=%d: ApplyGaloisHoistedInto differs from ApplyGaloisHoisted", g)
		}

		// Both must decrypt to σ_g(msg).
		expected := make([]int64, n)
		for i := 0; i < n; i++ {
			k := (uint64(i) * g) % uint64(2*n)
			if k < uint64(n) {
				expected[k] = msg[i]
			} else {
				expected[k-uint64(n)] = -msg[i]
			}
		}
		if d := maxAbsDiff(dec.PhaseCentered(plain), expected); d > 1<<16 {
			t.Errorf("g=%d: plain automorphism phase error %d", g, d)
		}
		if d := maxAbsDiff(dec.PhaseCentered(hoisted), expected); d > 1<<16 {
			t.Errorf("g=%d: hoisted automorphism phase error %d", g, d)
		}
	}
}

// TestAutomorphismIntoZeroAllocs locks the allocation-free contract of the
// merge tree's inner kernel.
func TestAutomorphismIntoZeroAllocs(t *testing.T) {
	p, ks, pk, _, sk := packFixture(t, 5)
	enc := NewEncryptor(p, sk, 33)
	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i % 5)
	}
	level := p.MaxLevel()
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
	gk := pk.Keys[3]
	out := NewCiphertext(p, level)
	sc := ks.NewScratch()
	ks.AutomorphismInto(out, ct, 3, gk, sc) // warm the arena + perm cache

	if avg := testing.AllocsPerRun(10, func() {
		ks.AutomorphismInto(out, ct, 3, gk, sc)
	}); avg != 0 {
		t.Fatalf("AutomorphismInto allocates %.1f objects/op, want 0", avg)
	}
}

// TestMergeLevelZeroAllocs locks one full merge-tree level (the unit the
// per-worker arenas are sized for): with a warm Repacker, merging a sibling
// pair must not touch the heap.
func TestMergeLevelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; the allocation lock only holds in regular builds")
	}
	p, ks, pk, _, _ := packFixture(t, 5)
	s := ring.NewSampler(10)
	rp := NewRepacker(ks, pk, 1)
	level := p.MaxLevel()
	pair := []*Ciphertext{randCiphertext(p, s, level), randCiphertext(p, s, level)}
	if _, err := rp.Merge(pair); err != nil { // warm arenas, perm + monomial caches
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := rp.Merge(pair); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("one merge-tree level allocates %.1f objects/op, want 0", avg)
	}
}

// TestHoistedTraceMatchesPreHoistingReference pins the hoisted trace — which
// carries its running C1 in the coefficient domain and skips the per-step
// INTT inside the key switch — bit-exactly to the pre-hoisting
// automorphism-and-add loop kept above as refTrace. Hoisting changes the
// evaluation order, so identity (not closeness) is the contract: every map in
// the hoisted chain is exact on canonical residues. Run under -race this also
// exercises the trace state in the pooled per-worker arenas.
func TestHoistedTraceMatchesPreHoistingReference(t *testing.T) {
	p, ks, pk, _, _ := packFixture(t, 5)
	s := ring.NewSampler(0xbeef)
	rp := NewRepacker(ks, pk, 1)
	for _, count := range []int{1, 2, 8, p.N() / 2, p.N()} {
		for level := 1; level <= p.MaxLevel(); level++ {
			ct := randCiphertext(p, s, level)
			want := refTrace(ks, ct.CopyNew(), count, pk)
			got, err := rp.Trace(ct.CopyNew(), count)
			if err != nil {
				t.Fatalf("count=%d level=%d: %v", count, level, err)
			}
			if !ctsEqual(p, want, got) {
				t.Errorf("count=%d level=%d: hoisted Trace differs from pre-hoisting reference", count, level)
			}
		}
	}
}

// TestTraceZeroAllocs locks the hoisted trace to the heap-free contract the
// merge tree already holds: with a warm arena (the mergeScratch grew
// coefficient-domain trace state for the hoisting), tracing a ciphertext
// down to the subring must not allocate.
func TestTraceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; the allocation lock only holds in regular builds")
	}
	p, ks, pk, _, _ := packFixture(t, 5)
	s := ring.NewSampler(11)
	rp := NewRepacker(ks, pk, 1)
	ct := randCiphertext(p, s, p.MaxLevel())
	if _, err := rp.Trace(ct, 1); err != nil { // warm arena + perm cache
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := rp.Trace(ct, 1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("hoisted trace allocates %.1f objects/op, want 0", avg)
	}
}
