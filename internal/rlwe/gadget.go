package rlwe

import (
	"math/big"

	"heap/internal/ring"
	"heap/internal/rns"
)

// GadgetCiphertext is a hybrid-RNS gadget encryption ("RLWE'") of a message
// polynomial m: one RLWE row per gadget digit j, encrypting
// P·g_j·m where g_j = (Q/Q_j)·[(Q/Q_j)^{-1}]_{Q_j} is the RNS gadget factor
// over digit modulus Q_j and P is the special modulus. Rows live over the
// full Q‖P basis in NTT representation.
//
// A key-switching key, a blind-rotate key row, and an automorphism key are
// all GadgetCiphertexts — this is the shared structure behind the paper's
// observation that CKKS basis conversion and the TFHE ExternalProduct share
// one datapath (§IV-A, §IV-E).
type GadgetCiphertext struct {
	B []rns.Poly // b rows over QP, NTT
	A []rns.Poly // a rows over QP, NTT
}

// GadgetFactors returns the per-digit integers P·(Q/Q_j)·[(Q/Q_j)^{-1}]_{Q_j}.
func (p *Parameters) GadgetFactors() []*big.Int {
	alpha := p.Alpha()
	dnum := p.DigitsAtLevel(p.MaxLevel())
	bigQ := p.BigQ()
	bigP := p.BigP()
	out := make([]*big.Int, dnum)
	for j := 0; j < dnum; j++ {
		start, end := j*alpha, (j+1)*alpha
		if end > len(p.Q) {
			end = len(p.Q)
		}
		qj := big.NewInt(1)
		for i := start; i < end; i++ {
			qj.Mul(qj, new(big.Int).SetUint64(p.Q[i]))
		}
		qHat := new(big.Int).Div(bigQ, qj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qHat, qj), qj)
		f := new(big.Int).Mul(qHat, inv)
		f.Mul(f, bigP)
		out[j] = f
	}
	return out
}

// GenGadgetCiphertext encrypts msg (NTT form over the full QP basis) under
// sk as a gadget ciphertext.
func (kg *KeyGenerator) GenGadgetCiphertext(msg rns.Poly, sk *SecretKey) *GadgetCiphertext {
	p := kg.params
	factors := p.GadgetFactors()
	dnum := len(factors)
	gct := &GadgetCiphertext{B: make([]rns.Poly, dnum), A: make([]rns.Poly, dnum)}
	qp := p.QPBasis
	for j := 0; j < dnum; j++ {
		a := qp.NewPoly()
		for i, r := range qp.Rings {
			kg.sampler.UniformPoly(r, a.Limbs[i])
		}
		eSigned := kg.sampler.GaussianSigned(p.N(), p.Sigma)
		b := qp.NewPoly()
		qp.SetSigned(eSigned, b)
		qp.NTT(b)
		// b = e - a·s + factor_j·msg, limbwise.
		for i, r := range qp.Rings {
			tmp := r.NewPoly()
			r.MulCoeffs(a.Limbs[i], sk.NTTQP.Limbs[i], tmp)
			r.Sub(b.Limbs[i], tmp, b.Limbs[i])
			fi := new(big.Int).Mod(factors[j], new(big.Int).SetUint64(r.Mod.Q)).Uint64()
			r.MulScalar(msg.Limbs[i], fi, tmp)
			r.Add(b.Limbs[i], tmp, b.Limbs[i])
		}
		gct.B[j], gct.A[j] = b, a
	}
	return gct
}

// GenKeySwitchKey returns a key-switching key from skFrom to skTo: a gadget
// encryption of skFrom under skTo.
func (kg *KeyGenerator) GenKeySwitchKey(skFrom, skTo *SecretKey) *GadgetCiphertext {
	return kg.GenGadgetCiphertext(skFrom.NTTQP, skTo)
}

// GenRelinearizationKey encrypts s² under s, enabling CKKS Mult.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *GadgetCiphertext {
	qp := kg.params.QPBasis
	s2 := qp.NewPoly()
	qp.MulCoeffs(sk.NTTQP, sk.NTTQP, s2)
	return kg.GenGadgetCiphertext(s2, sk)
}

// GenGaloisKey encrypts σ_g(s) under s, enabling the automorphism X→X^g
// (CKKS Rotate/Conjugate and the repacking automorphisms).
func (kg *KeyGenerator) GenGaloisKey(g uint64, sk *SecretKey) *GadgetCiphertext {
	qp := kg.params.QPBasis
	perm := qp.Rings[0].AutomorphismNTTIndex(g)
	sg := qp.NewPoly()
	qp.AutomorphismNTT(sk.NTTQP, perm, sg)
	return kg.GenGadgetCiphertext(sg, sk)
}

// RGSWCiphertext encrypts a message for use as the right operand of an
// external product: C0 rows target the c0 component of the left operand and
// C1 rows the c1 component (encrypting m and m·s respectively).
type RGSWCiphertext struct {
	C0 *GadgetCiphertext // gadget encryption of m
	C1 *GadgetCiphertext // gadget encryption of m·s
}

// GenRGSW encrypts msg (NTT over QP) as an RGSW ciphertext under sk.
func (kg *KeyGenerator) GenRGSW(msg rns.Poly, sk *SecretKey) *RGSWCiphertext {
	qp := kg.params.QPBasis
	ms := qp.NewPoly()
	qp.MulCoeffs(msg, sk.NTTQP, ms)
	return &RGSWCiphertext{
		C0: kg.GenGadgetCiphertext(msg, sk),
		C1: kg.GenGadgetCiphertext(ms, sk),
	}
}

// GenRGSWConstant encrypts the constant m ∈ {-1, 0, 1} (or any small signed
// constant) as an RGSW ciphertext — the form blind-rotate keys take.
func (kg *KeyGenerator) GenRGSWConstant(m int64, sk *SecretKey) *RGSWCiphertext {
	qp := kg.params.QPBasis
	msg := qp.NewPoly()
	v := make([]int64, kg.params.N())
	v[0] = m
	qp.SetSigned(v, msg)
	qp.NTT(msg)
	return kg.GenRGSW(msg, sk)
}

// Rows returns the number of gadget digits of the ciphertext.
func (g *GadgetCiphertext) Rows() int { return len(g.B) }

// SizeBytes returns the in-memory size of the gadget ciphertext's
// coefficient data, used by the key-traffic accounting of §III-C.
func (g *GadgetCiphertext) SizeBytes() int {
	total := 0
	for j := range g.B {
		for _, l := range g.B[j].Limbs {
			total += 8 * len(l)
		}
		for _, l := range g.A[j].Limbs {
			total += 8 * len(l)
		}
	}
	return total
}

// ensure ring import is used even if future refactors drop direct uses.
var _ = ring.DefaultSigma
