package rlwe

import (
	"heap/internal/ring"
	"heap/internal/rns"
)

// SecretDist selects the secret-key distribution.
type SecretDist int

const (
	// SecretTernary is the uniform ternary distribution, the non-sparse
	// CKKS key distribution the paper mandates (§II).
	SecretTernary SecretDist = iota
	// SecretBinary is the uniform binary distribution, used for the small
	// LWE secret of dimension n_t in the scheme-switching pipeline.
	SecretBinary
)

// SecretKey is an RLWE secret: its signed coefficient vector plus its
// NTT-form residues over the full Q‖P basis.
type SecretKey struct {
	Signed []int64  // coefficients in {-1,0,1}
	NTTQP  rns.Poly // s mod every q_i and p_j, NTT representation
	params *Parameters
}

// LWESecretKey is a plain LWE secret of dimension n over a single modulus.
type LWESecretKey struct {
	Signed []int64
}

// KeyGenerator produces all key material deterministically from a sampler.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a key generator bound to the parameters and seed.
func NewKeyGenerator(params *Parameters, seed uint64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(seed)}
}

// GenSecretKey samples a fresh RLWE secret with the given distribution.
func (kg *KeyGenerator) GenSecretKey(dist SecretDist) *SecretKey {
	n := kg.params.N()
	var signed []int64
	switch dist {
	case SecretTernary:
		signed = kg.sampler.TernarySigned(n)
	case SecretBinary:
		signed = kg.sampler.BinarySigned(n)
	default:
		panic("rlwe: unknown secret distribution")
	}
	return kg.secretFromSigned(signed)
}

// SecretFromSigned builds a SecretKey from explicit signed coefficients
// (used to import an LWE secret into the RLWE domain for blind-rotate key
// generation).
func (kg *KeyGenerator) SecretFromSigned(signed []int64) *SecretKey {
	if len(signed) != kg.params.N() {
		panic("rlwe: secret length mismatch")
	}
	return kg.secretFromSigned(append([]int64(nil), signed...))
}

func (kg *KeyGenerator) secretFromSigned(signed []int64) *SecretKey {
	sk := &SecretKey{Signed: signed, params: kg.params}
	sk.NTTQP = kg.params.QPBasis.NewPoly()
	kg.params.QPBasis.SetSigned(signed, sk.NTTQP)
	kg.params.QPBasis.NTT(sk.NTTQP)
	return sk
}

// GenLWESecretKey samples an n-dimensional LWE secret.
func (kg *KeyGenerator) GenLWESecretKey(n int, dist SecretDist) *LWESecretKey {
	switch dist {
	case SecretTernary:
		return &LWESecretKey{Signed: kg.sampler.TernarySigned(n)}
	case SecretBinary:
		return &LWESecretKey{Signed: kg.sampler.BinarySigned(n)}
	}
	panic("rlwe: unknown secret distribution")
}

// HammingWeight returns ‖s‖₁, which bounds the wrap-around multiple the
// scheme-switching bootstrap must evaluate (see internal/core).
func (k *LWESecretKey) HammingWeight() int {
	h := 0
	for _, v := range k.Signed {
		if v != 0 {
			h++
		}
	}
	return h
}
