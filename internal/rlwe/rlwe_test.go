package rlwe

import (
	"math/big"
	"testing"

	"heap/internal/ring"
	"heap/internal/rns"
)

func testParams(t *testing.T, logN int) *Parameters {
	t.Helper()
	q := ring.GenerateNTTPrimes(40, logN, 3)
	p := ring.GenerateNTTPrimesUp(40, logN, 2)
	return MustParameters(logN, q, p, ring.DefaultSigma, 2)
}

// encodeSigned builds an NTT-form plaintext over the Q basis at a level.
func encodeSigned(p *Parameters, v []int64, level int) rns.Poly {
	b := p.QBasis.AtLevel(level)
	pt := b.NewPoly()
	b.SetSigned(v, pt)
	b.NTT(pt)
	return pt
}

func maxAbsDiff(phase []*big.Int, want []int64) int64 {
	var worst int64
	for i := range want {
		d := new(big.Int).Sub(phase[i], big.NewInt(want[i]))
		if d.Sign() < 0 {
			d.Neg(d)
		}
		if !d.IsInt64() {
			return 1 << 62
		}
		if d.Int64() > worst {
			worst = d.Int64()
		}
	}
	return worst
}

func TestEncryptDecryptPhase(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 1)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 2)
	dec := NewDecryptor(p, sk)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i*1000 - 16000)
	}
	for level := 1; level <= p.MaxLevel(); level++ {
		ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
		phase := dec.PhaseCentered(ct)
		if d := maxAbsDiff(phase, msg); d > 40 {
			t.Errorf("level %d: decryption error %d exceeds noise bound", level, d)
		}
	}
}

func TestEncryptZeroIsSmall(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 3)
	sk := kg.GenSecretKey(SecretTernary)
	enc := NewEncryptor(p, sk, 4)
	dec := NewDecryptor(p, sk)
	ct := enc.EncryptZeroAtLevel(p.MaxLevel())
	phase := dec.PhaseCentered(ct)
	if d := maxAbsDiff(phase, make([]int64, p.N())); d > 40 {
		t.Errorf("zero encryption phase %d too large", d)
	}
	// And the ciphertext itself must not be trivially zero.
	nonzero := false
	for _, v := range ct.C1.Limbs[0] {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("c1 of a fresh encryption is zero")
	}
}

func TestGadgetFactorsIdentity(t *testing.T) {
	p := testParams(t, 4)
	factors := p.GadgetFactors()
	bigQ, bigP := p.BigQ(), p.BigP()
	alpha := p.Alpha()
	// Σ_j [x]_{Q_j} · g_j ≡ P·x (mod QP) for any x < Q.
	x := new(big.Int).Div(bigQ, big.NewInt(17))
	sum := new(big.Int)
	for j, f := range factors {
		qj := big.NewInt(1)
		for i := j * alpha; i < (j+1)*alpha && i < len(p.Q); i++ {
			qj.Mul(qj, new(big.Int).SetUint64(p.Q[i]))
		}
		xj := new(big.Int).Mod(x, qj)
		sum.Add(sum, new(big.Int).Mul(xj, f))
	}
	qp := new(big.Int).Mul(bigQ, bigP)
	want := new(big.Int).Mul(x, bigP)
	want.Mod(want, qp)
	sum.Mod(sum, qp)
	if sum.Cmp(want) != 0 {
		t.Errorf("gadget identity failed:\n got %v\nwant %v", sum, want)
	}
}

func TestKeySwitch(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 5)
	sk1 := kg.GenSecretKey(SecretTernary)
	sk2 := kg.GenSecretKey(SecretTernary)
	ksk := kg.GenKeySwitchKey(sk1, sk2)
	ks := NewKeySwitcher(p)
	enc := NewEncryptor(p, sk1, 6)
	dec2 := NewDecryptor(p, sk2)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i)*100000 - 1600000
	}
	for _, level := range []int{1, 2, p.MaxLevel()} {
		ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
		d0, d1 := ks.SwitchPoly(ct.C1, ksk)
		b := p.QBasis.AtLevel(level)
		out := NewCiphertext(p, level)
		b.Add(ct.C0, d0, out.C0)
		out.C1 = d1
		phase := dec2.PhaseCentered(out)
		if d := maxAbsDiff(phase, msg); d > 1<<14 {
			t.Errorf("level %d: key-switch error %d too large", level, d)
		}
	}
}

func TestAutomorphismCiphertext(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 7)
	sk := kg.GenSecretKey(SecretTernary)
	ks := NewKeySwitcher(p)
	enc := NewEncryptor(p, sk, 8)
	dec := NewDecryptor(p, sk)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i)*50000 + 7
	}
	for _, g := range []uint64{5, 25, uint64(2*p.N() - 1)} {
		gk := kg.GenGaloisKey(g, sk)
		level := p.MaxLevel()
		ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)
		rot := ks.Automorphism(ct, g, gk)
		phase := dec.PhaseCentered(rot)

		// Expected: σ_g applied to msg.
		r0 := p.QBasis.Rings[0]
		mp := r0.NewPoly()
		ring.SignedToPoly(r0, msg, mp)
		want := r0.NewPoly()
		r0.Automorphism(mp, g, want)
		wantSigned := make([]int64, p.N())
		for i := range wantSigned {
			wantSigned[i] = ring.CenteredRep(want[i], r0.Mod.Q)
		}
		if d := maxAbsDiff(phase, wantSigned); d > 1<<14 {
			t.Errorf("g=%d: automorphism error %d too large", g, d)
		}
	}
}

func TestExternalProductByConstants(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 9)
	sk := kg.GenSecretKey(SecretTernary)
	ks := NewKeySwitcher(p)
	enc := NewEncryptor(p, sk, 10)
	dec := NewDecryptor(p, sk)

	msg := make([]int64, p.N())
	for i := range msg {
		msg[i] = int64(i)*300000 - 100
	}
	level := p.MaxLevel()
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)

	// RGSW(1) ⊡ ct ≈ ct
	one := kg.GenRGSWConstant(1, sk)
	out := ks.ExternalProduct(ct, one)
	if d := maxAbsDiff(dec.PhaseCentered(out), msg); d > 1<<14 {
		t.Errorf("RGSW(1) external product error %d", d)
	}

	// RGSW(0) ⊡ ct ≈ 0
	zero := kg.GenRGSWConstant(0, sk)
	out = ks.ExternalProduct(ct, zero)
	if d := maxAbsDiff(dec.PhaseCentered(out), make([]int64, p.N())); d > 1<<14 {
		t.Errorf("RGSW(0) external product error %d", d)
	}

	// RGSW(-1) ⊡ ct ≈ -ct
	neg := kg.GenRGSWConstant(-1, sk)
	out = ks.ExternalProduct(ct, neg)
	negMsg := make([]int64, p.N())
	for i := range negMsg {
		negMsg[i] = -msg[i]
	}
	if d := maxAbsDiff(dec.PhaseCentered(out), negMsg); d > 1<<14 {
		t.Errorf("RGSW(-1) external product error %d", d)
	}
}

func TestExternalProductByMonomial(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 11)
	sk := kg.GenSecretKey(SecretTernary)
	ks := NewKeySwitcher(p)
	enc := NewEncryptor(p, sk, 12)
	dec := NewDecryptor(p, sk)

	msg := make([]int64, p.N())
	msg[0] = 1 << 22
	msg[3] = -(1 << 21)
	level := p.MaxLevel()
	ct := enc.EncryptPolyAtLevel(encodeSigned(p, msg, level), level, 1)

	// RGSW(X^k) ⊡ ct rotates the phase by k.
	k := 5
	qp := p.QPBasis
	mono := qp.NewPoly()
	mv := make([]int64, p.N())
	mv[k] = 1
	qp.SetSigned(mv, mono)
	qp.NTT(mono)
	rgsw := kg.GenRGSW(mono, sk)
	out := ks.ExternalProduct(ct, rgsw)

	want := make([]int64, p.N())
	r0 := p.QBasis.Rings[0]
	mp := r0.NewPoly()
	ring.SignedToPoly(r0, msg, mp)
	rot := r0.NewPoly()
	r0.MulByMonomial(mp, k, rot)
	for i := range want {
		want[i] = ring.CenteredRep(rot[i], r0.Mod.Q)
	}
	if d := maxAbsDiff(dec.PhaseCentered(out), want); d > 1<<14 {
		t.Errorf("RGSW(X^k) external product error %d", d)
	}
}

func TestRelinearize(t *testing.T) {
	p := testParams(t, 5)
	kg := NewKeyGenerator(p, 13)
	sk := kg.GenSecretKey(SecretTernary)
	rlk := kg.GenRelinearizationKey(sk)
	ks := NewKeySwitcher(p)
	dec := NewDecryptor(p, sk)

	// Construct a degree-2 ciphertext (c0, c1, c2) with phase
	// c0 + c1·s + c2·s² by tensoring two fresh encryptions of messages.
	enc := NewEncryptor(p, sk, 14)
	m1 := make([]int64, p.N())
	m2 := make([]int64, p.N())
	m1[0], m2[0] = 1<<18, 1<<17 // constant messages keep the check simple
	level := p.MaxLevel()
	ct1 := enc.EncryptPolyAtLevel(encodeSigned(p, m1, level), level, 1)
	ct2 := enc.EncryptPolyAtLevel(encodeSigned(p, m2, level), level, 1)

	b := p.QBasis.AtLevel(level)
	d0, d1a, d1b, d2 := b.NewPoly(), b.NewPoly(), b.NewPoly(), b.NewPoly()
	b.MulCoeffs(ct1.C0, ct2.C0, d0)
	b.MulCoeffs(ct1.C0, ct2.C1, d1a)
	b.MulCoeffs(ct1.C1, ct2.C0, d1b)
	b.Add(d1a, d1b, d1a)
	b.MulCoeffs(ct1.C1, ct2.C1, d2)

	r0, r1 := ks.Relinearize(d0, d1a, d2, rlk)
	out := &Ciphertext{C0: r0, C1: r1, IsNTT: true}
	phase := dec.PhaseCentered(out)
	want := int64(1) << 35 // m1·m2 at the constant coefficient
	diff := new(big.Int).Sub(phase[0], big.NewInt(want))
	if diff.CmpAbs(big.NewInt(1<<25)) > 0 {
		t.Errorf("relinearized product constant term off by %v", diff)
	}
}

func TestSecretFromSignedAndHammingWeight(t *testing.T) {
	p := testParams(t, 4)
	kg := NewKeyGenerator(p, 15)
	signed := make([]int64, p.N())
	signed[0], signed[1], signed[5] = 1, -1, 1
	sk := kg.SecretFromSigned(signed)
	if ring.CenteredRep(sk.NTTQP.Limbs[0][0], p.Q[0]) == 0 {
		// NTT form of a non-zero poly should generally be non-zero; just
		// sanity check the struct round-trips the signed values.
		t.Log("NTT constant slot is zero; acceptable but unusual")
	}
	lk := &LWESecretKey{Signed: signed[:8]}
	if lk.HammingWeight() != 3 {
		t.Errorf("hamming weight = %d want 3", lk.HammingWeight())
	}
}

func TestParameterValidation(t *testing.T) {
	q := ring.GenerateNTTPrimes(40, 4, 2)
	p := ring.GenerateNTTPrimesUp(40, 4, 1)
	if _, err := NewParameters(4, q, nil, 3.2, 1); err == nil {
		t.Error("expected error for empty P")
	}
	if _, err := NewParameters(4, q, p, 3.2, 5); err == nil {
		t.Error("expected error for dnum > len(Q)")
	}
	if _, err := NewParameters(4, append(q, q[0]), p, 3.2, 1); err == nil {
		t.Error("expected error for duplicate primes")
	}
	if _, err := NewParameters(1, q, p, 3.2, 1); err == nil {
		t.Error("expected error for tiny logN")
	}
	pr, err := NewParameters(4, q, p, 3.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Alpha() != 1 || pr.DigitsAtLevel(2) != 2 || pr.DigitsAtLevel(1) != 1 {
		t.Errorf("digit accounting wrong: alpha=%d", pr.Alpha())
	}
}
