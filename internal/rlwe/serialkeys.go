package rlwe

import (
	"encoding/binary"
	"fmt"
	"io"

	"heap/internal/rns"
)

// Key-material serialization: gadget ciphertexts (key-switching, Galois and
// relinearization keys) and, via internal/tfhe, blind-rotate keys. This is
// the offline distribution channel of the paper's deployment: "these brk
// public keys can be computed offline and must be generated in advance"
// (§II-B) — a deployment generates them once and ships them to every
// compute node.

const magicGadget = 0x48454147 // "HEAG"

// WriteTo serializes the gadget ciphertext (all rows over the full QP
// basis, NTT representation).
func (g *GadgetCiphertext) WriteTo(w io.Writer) (int64, error) {
	var n int64
	rows := len(g.B)
	if rows == 0 {
		return 0, fmt.Errorf("rlwe: empty gadget ciphertext")
	}
	limbs := g.B[0].Level()
	deg := len(g.B[0].Limbs[0])
	hdr := []uint64{magicGadget, uint64(rows), uint64(limbs), uint64(deg)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return n, err
	}
	n += int64(binary.Size(hdr))
	for j := 0; j < rows; j++ {
		for _, poly := range []rns.Poly{g.B[j], g.A[j]} {
			for i := 0; i < limbs; i++ {
				if err := binary.Write(w, binary.LittleEndian, []uint64(poly.Limbs[i])); err != nil {
					return n, err
				}
				n += int64(8 * deg)
			}
		}
	}
	return n, nil
}

// ReadGadgetCiphertext deserializes a gadget ciphertext for the parameter
// set (rows/limbs/degree must match the parameters' gadget shape).
func ReadGadgetCiphertext(r io.Reader, p *Parameters) (*GadgetCiphertext, error) {
	hdr := make([]uint64, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != magicGadget {
		return nil, fmt.Errorf("rlwe: bad gadget ciphertext magic %x", hdr[0])
	}
	rows, limbs, deg := int(hdr[1]), int(hdr[2]), int(hdr[3])
	wantLimbs := p.MaxLevel() + len(p.P)
	if rows != p.DigitsAtLevel(p.MaxLevel()) || limbs != wantLimbs || deg != p.N() {
		return nil, fmt.Errorf("rlwe: gadget shape %d×%d×%d incompatible with parameters", rows, limbs, deg)
	}
	g := &GadgetCiphertext{B: make([]rns.Poly, rows), A: make([]rns.Poly, rows)}
	for j := 0; j < rows; j++ {
		g.B[j] = p.QPBasis.NewPoly()
		g.A[j] = p.QPBasis.NewPoly()
		for _, poly := range []rns.Poly{g.B[j], g.A[j]} {
			for i := 0; i < limbs; i++ {
				if err := binary.Read(r, binary.LittleEndian, []uint64(poly.Limbs[i])); err != nil {
					return nil, err
				}
				q := p.QPBasis.Rings[i].Mod.Q
				for _, v := range poly.Limbs[i] {
					if v >= q {
						return nil, fmt.Errorf("rlwe: gadget residue out of range for limb %d", i)
					}
				}
			}
		}
	}
	return g, nil
}

// WriteRGSW serializes an RGSW ciphertext (two gadget halves).
func (g *RGSWCiphertext) WriteTo(w io.Writer) (int64, error) {
	n0, err := g.C0.WriteTo(w)
	if err != nil {
		return n0, err
	}
	n1, err := g.C1.WriteTo(w)
	return n0 + n1, err
}

// ReadRGSWCiphertext deserializes an RGSW ciphertext.
func ReadRGSWCiphertext(r io.Reader, p *Parameters) (*RGSWCiphertext, error) {
	c0, err := ReadGadgetCiphertext(r, p)
	if err != nil {
		return nil, err
	}
	c1, err := ReadGadgetCiphertext(r, p)
	if err != nil {
		return nil, err
	}
	return &RGSWCiphertext{C0: c0, C1: c1}, nil
}
