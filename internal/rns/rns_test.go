package rns

import (
	"math/big"
	"testing"
	"testing/quick"

	"heap/internal/ring"
)

func testBasis(t *testing.T, logN, limbs int) *Basis {
	t.Helper()
	return NewBasis(logN, ring.GenerateNTTPrimes(40, logN, limbs))
}

func TestCRTRoundTrip(t *testing.T) {
	b := testBasis(t, 6, 4)
	s := ring.NewSampler(1)
	bigQ := b.Modulus()
	coeffs := make([]*big.Int, b.N)
	for i := range coeffs {
		c := new(big.Int).SetUint64(s.Uint64())
		c.Mul(c, new(big.Int).SetUint64(s.Uint64()))
		coeffs[i] = c.Mod(c, bigQ)
	}
	p := b.NewPoly()
	b.SetBigCoeffs(coeffs, p)
	got := b.CRTReconstruct(p)
	for i := range coeffs {
		if coeffs[i].Cmp(got[i]) != 0 {
			t.Fatalf("coeff %d: want %v got %v", i, coeffs[i], got[i])
		}
	}
}

func TestCRTCentered(t *testing.T) {
	b := testBasis(t, 4, 3)
	v := make([]int64, b.N)
	v[0], v[1], v[2] = -5, 7, -123456
	p := b.NewPoly()
	b.SetSigned(v, p)
	got := b.CRTReconstructCentered(p)
	for i := range v {
		if got[i].Int64() != v[i] {
			t.Fatalf("coeff %d: want %d got %v", i, v[i], got[i])
		}
	}
}

func TestAddSubNegMulLimbwise(t *testing.T) {
	b := testBasis(t, 5, 3)
	s := ring.NewSampler(2)
	a, c := b.NewPoly(), b.NewPoly()
	for i := range a.Limbs {
		s.UniformPoly(b.Rings[i], a.Limbs[i])
		s.UniformPoly(b.Rings[i], c.Limbs[i])
	}
	sum, diff := b.NewPoly(), b.NewPoly()
	b.Add(a, c, sum)
	b.Sub(sum, c, diff)
	if !b.Equal(diff, a) {
		t.Error("(a+c)-c != a")
	}
	neg, zero := b.NewPoly(), b.NewPoly()
	b.Neg(a, neg)
	b.Add(a, neg, zero)
	for i := range zero.Limbs {
		for j, v := range zero.Limbs[i] {
			if v != 0 {
				t.Fatalf("a+(-a) != 0 at limb %d coeff %d", i, j)
			}
		}
	}
}

func TestNTTRoundTripAllLimbs(t *testing.T) {
	b := testBasis(t, 7, 4)
	s := ring.NewSampler(3)
	p := b.NewPoly()
	for i := range p.Limbs {
		s.UniformPoly(b.Rings[i], p.Limbs[i])
	}
	orig := p.Copy()
	b.NTT(p)
	b.INTT(p)
	if !b.Equal(p, orig) {
		t.Error("RNS NTT round trip failed")
	}
}

// TestDivRoundByLastModulus checks the Rescale kernel against exact big-int
// division with rounding.
func TestDivRoundByLastModulus(t *testing.T) {
	for _, inNTT := range []bool{false, true} {
		b := testBasis(t, 4, 3)
		s := ring.NewSampler(4)
		bigQ := b.Modulus()
		qL := new(big.Int).SetUint64(b.Rings[2].Mod.Q)

		coeffs := make([]*big.Int, b.N)
		for i := range coeffs {
			c := new(big.Int).SetUint64(s.Uint64())
			c.Mul(c, new(big.Int).SetUint64(s.Uint64()))
			coeffs[i] = c.Mod(c, bigQ)
		}
		p := b.NewPoly()
		b.SetBigCoeffs(coeffs, p)
		if inNTT {
			b.NTT(p)
		}
		out := b.DivRoundByLastModulus(p, inNTT)
		if inNTT {
			b.INTT(out)
		}
		got := b.CRTReconstruct(out)
		qSub := b.AtLevel(2).Modulus()
		half := new(big.Int).Rsh(qL, 1)
		for i := range coeffs {
			want := new(big.Int).Add(coeffs[i], half)
			want.Div(want, qL)
			want.Mod(want, qSub)
			if want.Cmp(got[i]) != 0 {
				t.Fatalf("inNTT=%v coeff %d: want %v got %v", inNTT, i, want, got[i])
			}
		}
	}
}

// TestExtenderSmallValues: for small values the fast basis conversion must
// yield x + u·Q with 0 ≤ u < level (the Halevi-Polyakov-Shoup slack).
func TestExtenderSmallValues(t *testing.T) {
	src := NewBasis(4, ring.GenerateNTTPrimes(40, 4, 3))
	dst := NewBasis(4, ring.GenerateNTTPrimesUp(40, 4, 2))
	e := NewExtender(src, dst)
	bigQ := src.Modulus()

	v := make([]int64, src.N)
	for i := range v {
		v[i] = int64(i * 31)
	}
	p := src.NewPoly()
	src.SetSigned(v, p)
	out := dst.NewPoly()
	e.Extend(p, out)
	for j := range out.Limbs {
		pj := new(big.Int).SetUint64(dst.Rings[j].Mod.Q)
		for i := range v {
			got := new(big.Int).SetUint64(out.Limbs[j][i])
			ok := false
			for u := int64(0); u < int64(src.Level()); u++ {
				want := new(big.Int).Mul(big.NewInt(u), bigQ)
				want.Add(want, big.NewInt(v[i]))
				want.Mod(want, pj)
				if want.Cmp(got) == 0 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("dst limb %d coeff %d: got %d, not of the form x+u·Q", j, i, out.Limbs[j][i])
			}
		}
	}
}

// TestExtenderApproximation: for arbitrary values the conversion may be off
// by u·Q for u < level, never more.
func TestExtenderApproximation(t *testing.T) {
	src := NewBasis(3, ring.GenerateNTTPrimes(40, 3, 3))
	dst := NewBasis(3, ring.GenerateNTTPrimesUp(40, 3, 2))
	e := NewExtender(src, dst)
	s := ring.NewSampler(5)

	bigQ := src.Modulus()
	coeffs := make([]*big.Int, src.N)
	for i := range coeffs {
		c := new(big.Int).SetUint64(s.Uint64())
		c.Mul(c, new(big.Int).SetUint64(s.Uint64()))
		coeffs[i] = c.Mod(c, bigQ)
	}
	p := src.NewPoly()
	src.SetBigCoeffs(coeffs, p)
	out := dst.NewPoly()
	e.Extend(p, out)

	for j := range out.Limbs {
		pj := new(big.Int).SetUint64(dst.Rings[j].Mod.Q)
		for i := range coeffs {
			got := new(big.Int).SetUint64(out.Limbs[j][i])
			ok := false
			for u := int64(0); u < int64(src.Level()); u++ {
				want := new(big.Int).Add(coeffs[i], new(big.Int).Mul(big.NewInt(u), bigQ))
				want.Mod(want, pj)
				if want.Cmp(got) == 0 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("limb %d coeff %d: conversion not within u·Q slack", j, i)
			}
		}
	}
}

// TestModDown verifies that extending by P then dividing by P returns the
// original value up to a small additive error.
func TestModDown(t *testing.T) {
	qb := NewBasis(4, ring.GenerateNTTPrimes(40, 4, 3))
	pb := NewBasis(4, ring.GenerateNTTPrimesUp(40, 4, 2))
	md := NewModDown(qb, pb)
	s := ring.NewSampler(6)

	// x uniform over Q; represent x·P over Q‖P: residues of x·P.
	bigP := pb.Modulus()
	bigQ := qb.Modulus()
	coeffs := make([]*big.Int, qb.N)
	xs := make([]*big.Int, qb.N)
	for i := range coeffs {
		x := new(big.Int).SetUint64(s.Uint64())
		x.Mul(x, new(big.Int).SetUint64(s.Uint64()))
		x.Mod(x, bigQ)
		xs[i] = x
		coeffs[i] = new(big.Int).Mul(x, bigP)
	}
	cQ := qb.NewPoly()
	qb.SetBigCoeffs(coeffs, cQ)
	cP := pb.NewPoly()
	pb.SetBigCoeffs(coeffs, cP) // x·P ≡ 0 mod P, but set actual residues
	qb.NTT(cQ)
	pb.NTT(cP)

	out := qb.NewPoly()
	md.Apply(cQ, cP, out)
	qb.INTT(out)
	got := qb.CRTReconstruct(out)
	for i := range xs {
		diff := new(big.Int).Sub(got[i], xs[i])
		diff.Mod(diff, bigQ)
		half := new(big.Int).Rsh(bigQ, 1)
		if diff.Cmp(half) > 0 {
			diff.Sub(diff, bigQ)
		}
		if diff.CmpAbs(big.NewInt(int64(pb.Level()+1))) > 0 {
			t.Fatalf("coeff %d: ModDown error %v exceeds bound", i, diff)
		}
	}
}

func TestAtLevelViews(t *testing.T) {
	b := testBasis(t, 4, 4)
	p := b.NewPoly()
	v := p.AtLevel(2)
	if v.Level() != 2 {
		t.Fatalf("AtLevel(2).Level() = %d", v.Level())
	}
	v.Limbs[0][0] = 7
	if p.Limbs[0][0] != 7 {
		t.Error("AtLevel should share storage")
	}
	sb := b.AtLevel(3)
	if sb.Level() != 3 || sb.Rings[2] != b.Rings[2] {
		t.Error("basis AtLevel mismatch")
	}
}

// TestCRTHomomorphismProperty: CRT reconstruction commutes with addition —
// a property-based check over random residue polynomials.
func TestCRTHomomorphismProperty(t *testing.T) {
	b := testBasis(t, 4, 3)
	bigQ := b.Modulus()
	f := func(seed uint64) bool {
		s := ring.NewSampler(seed%1024 + 7)
		x, y := b.NewPoly(), b.NewPoly()
		for i := range x.Limbs {
			s.UniformPoly(b.Rings[i], x.Limbs[i])
			s.UniformPoly(b.Rings[i], y.Limbs[i])
		}
		sum := b.NewPoly()
		b.Add(x, y, sum)
		xs, ys, ss := b.CRTReconstruct(x), b.CRTReconstruct(y), b.CRTReconstruct(sum)
		for i := range ss {
			want := new(big.Int).Add(xs[i], ys[i])
			want.Mod(want, bigQ)
			if want.Cmp(ss[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
