package rns

import (
	"math/big"

	"heap/internal/ring"
)

// DivRoundByLastModulus divides p (at its current level) by its last limb
// modulus and rounds, dropping that limb: this is the CKKS Rescale kernel.
// If inNTT is true the limbs are in evaluation representation and the
// conversion of the last limb is handled internally. The result has one
// fewer limb and is returned in the same representation as the input.
func (b *Basis) DivRoundByLastModulus(p Poly, inNTT bool) Poly {
	level := p.Level()
	if level < 2 {
		panic("rns: cannot rescale a single-limb polynomial")
	}
	last := level - 1
	rLast := b.Rings[last]
	qL := rLast.Mod.Q

	cL := p.Limbs[last].Copy()
	if inNTT {
		rLast.INTT(cL)
	}

	out := Poly{Limbs: make([]ring.Poly, last)}
	half := qL >> 1
	for i := 0; i < last; i++ {
		ri := b.Rings[i]
		qi := ri.Mod.Q
		qLInv := ri.Mod.InvMod(qL % qi)
		t := ri.NewPoly()
		// Centered remainder of the last limb, re-encoded mod q_i, so the
		// division rounds to nearest rather than flooring.
		for j, v := range cL {
			var r uint64
			if v > half {
				r = qi - (qL-v)%qi
				if r == qi {
					r = 0
				}
			} else {
				r = v % qi
			}
			t[j] = r
		}
		if inNTT {
			ri.NTT(t)
		}
		oi := ri.NewPoly()
		ri.Sub(p.Limbs[i], t, oi)
		ri.MulScalar(oi, qLInv, oi)
		out.Limbs[i] = oi
	}
	return out
}

// Extender implements the fast (approximate) RNS basis conversion of
// Halevi-Polyakov-Shoup: residues of x modulo a source basis Q are converted
// to residues modulo a disjoint destination basis P, producing x + u·Q for a
// small u < level. This is the ModUp basis-conversion kernel of the CKKS
// KeySwitch datapath (§IV-A "basis conversion operation ... during ModUp and
// ModDown").
type Extender struct {
	src, dst *Basis

	// Indexed [level-1][srcLimb]: ((Q_level/q_i)^{-1}) mod q_i.
	qhatInvModQ [][]uint64
	// Indexed [level-1][srcLimb][dstLimb]: (Q_level/q_i) mod p_j, with the
	// Shoup companions precomputed once so the per-call inner loop is pure
	// fixed-operand MACs (the §IV-A datapath keeps these constants resident
	// on chip for the same reason).
	qhatModP      [][][]uint64
	qhatModPShoup [][][]uint64
	// identIdx is the identity destination-limb selection 0..dst.Level()-1,
	// shared by every Extend call so the full conversion allocates nothing.
	identIdx []int
}

// NewExtender precomputes conversion tables from every level of src into dst.
func NewExtender(src, dst *Basis) *Extender {
	e := &Extender{src: src, dst: dst}
	maxLevel := src.Level()
	e.qhatInvModQ = make([][]uint64, maxLevel)
	e.qhatModP = make([][][]uint64, maxLevel)
	e.qhatModPShoup = make([][][]uint64, maxLevel)
	for level := 1; level <= maxLevel; level++ {
		bigQ := src.AtLevel(level).Modulus()
		inv := make([]uint64, level)
		modP := make([][]uint64, level)
		modPShoup := make([][]uint64, level)
		for i := 0; i < level; i++ {
			qi := src.Rings[i].Mod.Q
			qhat := new(big.Int).Div(bigQ, new(big.Int).SetUint64(qi))
			qhatModQi := new(big.Int).Mod(qhat, new(big.Int).SetUint64(qi)).Uint64()
			inv[i] = src.Rings[i].Mod.InvMod(qhatModQi)
			row := make([]uint64, dst.Level())
			rowShoup := make([]uint64, dst.Level())
			for j := 0; j < dst.Level(); j++ {
				pj := dst.Rings[j].Mod.Q
				row[j] = new(big.Int).Mod(qhat, new(big.Int).SetUint64(pj)).Uint64()
				rowShoup[j] = dst.Rings[j].Mod.ShoupPrecomp(row[j])
			}
			modP[i] = row
			modPShoup[i] = rowShoup
		}
		e.qhatInvModQ[level-1] = inv
		e.qhatModP[level-1] = modP
		e.qhatModPShoup[level-1] = modPShoup
	}
	e.identIdx = make([]int, dst.Level())
	for i := range e.identIdx {
		e.identIdx[i] = i
	}
	return e
}

// ExtendScratch holds the shared intermediate y_i polynomials of the basis
// conversion, so a worker reusing one across calls allocates nothing. One
// scratch serves extenders of any source level up to its capacity (it grows
// lazily on first use at a larger level).
type ExtendScratch struct {
	ys []ring.Poly
	n  int
}

// NewExtendScratch allocates conversion scratch for up to maxLevel source
// limbs of degree-n polynomials.
func NewExtendScratch(maxLevel, n int) *ExtendScratch {
	sc := &ExtendScratch{ys: make([]ring.Poly, maxLevel), n: n}
	for i := range sc.ys {
		sc.ys[i] = make(ring.Poly, n)
	}
	return sc
}

func (sc *ExtendScratch) grow(level, n int) []ring.Poly {
	for len(sc.ys) < level {
		sc.ys = append(sc.ys, make(ring.Poly, n))
	}
	return sc.ys[:level]
}

// Extend converts p (coefficient representation, any level of src) into the
// destination basis, writing one limb per destination prime into out.
// out must have dst.Level() limbs.
func (e *Extender) Extend(p Poly, out Poly) {
	e.ExtendSelected(p, out, e.identIdx[:out.Level()])
}

// ExtendWith is Extend with caller-owned scratch (see ExtendSelectedWith).
func (e *Extender) ExtendWith(p Poly, out Poly, sc *ExtendScratch) {
	e.ExtendSelectedWith(p, out, e.identIdx[:out.Level()], sc)
}

// ExtendSelected converts p into a chosen subset of destination limbs:
// out.Limbs[k] receives the residue modulo dst prime dstIdx[k]. This supports
// level-aware key switching, where the target basis is a prefix of Q plus all
// of P.
func (e *Extender) ExtendSelected(p Poly, out Poly, dstIdx []int) {
	e.ExtendSelectedWith(p, out, dstIdx, NewExtendScratch(p.Level(), e.src.N))
}

// ExtendSelectedWith is ExtendSelected with caller-owned scratch; it is
// allocation-free once sc has reached the source level, which is how the
// key-switch hot path keeps the ModUp kernel off the garbage collector.
func (e *Extender) ExtendSelectedWith(p Poly, out Poly, dstIdx []int, sc *ExtendScratch) {
	level := p.Level()
	inv := e.qhatInvModQ[level-1]
	modP := e.qhatModP[level-1]
	modPShoup := e.qhatModPShoup[level-1]
	n := e.src.N

	// y_i = [x_i · qhatInv_i]_{q_i}, shared across all destination limbs.
	ys := sc.grow(level, n)
	for i := 0; i < level; i++ {
		e.src.Rings[i].MulScalar(p.Limbs[i], inv[i], ys[i])
	}
	for jj, j := range dstIdx {
		mod := e.dst.Rings[j].Mod
		oj := out.Limbs[jj][:n]
		oj.Zero()
		for i := 0; i < level; i++ {
			// Eagerly canonical accumulation, on purpose: both conditional
			// subtractions inside the MAC lower to branchless conditional
			// moves (scalar) or VPCMPGTQ masks (vector), whereas the lazy
			// alternative (carry the accumulator in [0, 2q) with one
			// subtraction per term plus a canonical sweep per limb) defeats
			// the scalar lowering and measured ~3× slower per term on the
			// reference host — see the modular-kernel ablation in
			// EXPERIMENTS.md. The lazy interval only pays off when it removes
			// work from a longer dependent chain, as in the NTT butterflies.
			mod.MACShoupVec(ys[i][:n], oj, modP[i][j], modPShoup[i][j])
		}
	}
}

// ModDown divides a polynomial represented over the concatenated basis Q‖P
// by P (the special-modulus product) and rounds approximately, returning the
// result over Q. This is the ModDown step completing a hybrid key switch.
type ModDown struct {
	qBasis, pBasis *Basis
	ext            *Extender // P → Q
	pInvModQ       []uint64  // P^{-1} mod q_i
}

// NewModDown precomputes ModDown tables for dividing by ∏ pBasis.
func NewModDown(qBasis, pBasis *Basis) *ModDown {
	md := &ModDown{qBasis: qBasis, pBasis: pBasis, ext: NewExtender(pBasis, qBasis)}
	bigP := pBasis.Modulus()
	md.pInvModQ = make([]uint64, qBasis.Level())
	for i := range md.pInvModQ {
		qi := qBasis.Rings[i].Mod.Q
		pModQi := new(big.Int).Mod(bigP, new(big.Int).SetUint64(qi)).Uint64()
		md.pInvModQ[i] = qBasis.Rings[i].Mod.InvMod(pModQi)
	}
	return md
}

// ModDownScratch holds the per-call intermediates of ModDown.Apply: the
// coefficient-domain copy of the P part, the P→Q extension, and the inner
// conversion scratch. One per worker keeps the ModDown kernel allocation-free.
type ModDownScratch struct {
	cPc, ext Poly
	conv     *ExtendScratch
}

// NewScratch allocates ModDown scratch sized for this converter's bases.
func (md *ModDown) NewScratch() *ModDownScratch {
	return &ModDownScratch{
		cPc:  md.pBasis.NewPoly(),
		ext:  md.qBasis.NewPoly(),
		conv: NewExtendScratch(md.pBasis.Level(), md.pBasis.N),
	}
}

// Apply computes out ≈ round(c / P) mod Q where c is given as cQ (its
// residues modulo the first level limbs of Q, NTT representation) and cP
// (its residues modulo P, NTT representation). out must have level limbs.
func (md *ModDown) Apply(cQ, cP, out Poly) {
	md.ApplyWith(cQ, cP, out, md.NewScratch())
}

// ApplyCoeffWith is ApplyWith emitting the result in coefficient
// representation: instead of NTT-transforming the extended P-part to meet cQ
// in the evaluation domain, it INTTs each cQ limb and subtracts in the
// coefficient domain — the same number of limb transforms, but the output
// needs no separate INTT. Because the inverse transform is linear and every
// step emits canonical residues, the result is bit-identical to
// INTT(ApplyWith(...)): this is what lets the repack trace carry its running
// C1 in the coefficient domain across steps (hoisting the per-step INTT out
// of the key-switch) without perturbing a single bit of the output.
func (md *ModDown) ApplyCoeffWith(cQ, cP, out Poly, sc *ModDownScratch) {
	level := lvl(cQ, out)
	cPc := sc.cPc
	for i := range cPc.Limbs {
		copy(cPc.Limbs[i], cP.Limbs[i])
	}
	md.pBasis.INTT(cPc)
	extended := sc.ext.AtLevel(level)
	md.ext.ExtendWith(cPc, extended, sc.conv)
	for i := 0; i < level; i++ {
		ri := md.qBasis.Rings[i]
		copy(out.Limbs[i], cQ.Limbs[i])
		ri.INTT(out.Limbs[i])
		ri.Sub(out.Limbs[i], extended.Limbs[i], out.Limbs[i])
		ri.MulScalar(out.Limbs[i], md.pInvModQ[i], out.Limbs[i])
	}
}

// ApplyWith is Apply with caller-owned scratch; allocation-free.
func (md *ModDown) ApplyWith(cQ, cP, out Poly, sc *ModDownScratch) {
	level := lvl(cQ, out)
	// Move the P-part to coefficient representation and extend it into Q.
	cPc := sc.cPc
	for i := range cPc.Limbs {
		copy(cPc.Limbs[i], cP.Limbs[i])
	}
	md.pBasis.INTT(cPc)
	extended := sc.ext.AtLevel(level)
	md.ext.ExtendWith(cPc, extended, sc.conv)
	for i := 0; i < level; i++ {
		ri := md.qBasis.Rings[i]
		ri.NTT(extended.Limbs[i])
		ri.Sub(cQ.Limbs[i], extended.Limbs[i], out.Limbs[i])
		ri.MulScalar(out.Limbs[i], md.pInvModQ[i], out.Limbs[i])
	}
}
