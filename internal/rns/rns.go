// Package rns implements the residue-number-system (RNS) layer of the
// library: polynomials over a chain of word-sized prime moduli
// Q = q_0·q_1·…·q_{L-1}, CRT reconstruction, rescaling (division and
// rounding by the last limb), and fast basis extension (the ModUp/ModDown
// basis-conversion operations used by CKKS key switching, §II-A and §IV-A
// of the paper).
package rns

import (
	"math/big"

	"heap/internal/ring"
)

// Basis is an ordered chain of NTT-friendly prime moduli sharing one ring
// degree. Slicing a Basis (dropping trailing limbs) yields the basis of a
// rescaled ciphertext level.
type Basis struct {
	Rings []*ring.Ring
	LogN  int
	N     int
}

// NewBasis builds a basis over the given primes at ring degree 2^logN.
func NewBasis(logN int, primes []uint64) *Basis {
	b := &Basis{LogN: logN, N: 1 << logN}
	b.Rings = make([]*ring.Ring, len(primes))
	for i, q := range primes {
		b.Rings[i] = ring.NewRing(logN, q)
	}
	return b
}

// Level returns the number of limbs.
func (b *Basis) Level() int { return len(b.Rings) }

// AtLevel returns the sub-basis consisting of the first level limbs.
func (b *Basis) AtLevel(level int) *Basis {
	return &Basis{Rings: b.Rings[:level], LogN: b.LogN, N: b.N}
}

// Modulus returns Q = ∏ q_i as a big integer.
func (b *Basis) Modulus() *big.Int {
	q := big.NewInt(1)
	for _, r := range b.Rings {
		q.Mul(q, new(big.Int).SetUint64(r.Mod.Q))
	}
	return q
}

// Primes returns the limb moduli.
func (b *Basis) Primes() []uint64 {
	ps := make([]uint64, len(b.Rings))
	for i, r := range b.Rings {
		ps[i] = r.Mod.Q
	}
	return ps
}

// Poly is an RNS polynomial: one residue polynomial per limb.
type Poly struct {
	Limbs []ring.Poly
}

// NewPoly allocates a zero polynomial over the full basis.
func (b *Basis) NewPoly() Poly {
	limbs := make([]ring.Poly, b.Level())
	for i := range limbs {
		limbs[i] = make(ring.Poly, b.N)
	}
	return Poly{Limbs: limbs}
}

// Level returns the number of limbs of p.
func (p Poly) Level() int { return len(p.Limbs) }

// Copy returns a deep copy.
func (p Poly) Copy() Poly {
	limbs := make([]ring.Poly, len(p.Limbs))
	for i := range limbs {
		limbs[i] = p.Limbs[i].Copy()
	}
	return Poly{Limbs: limbs}
}

// AtLevel returns a view of p truncated to the first level limbs (shared
// backing storage).
func (p Poly) AtLevel(level int) Poly { return Poly{Limbs: p.Limbs[:level]} }

// Zero clears all limbs.
func (p Poly) Zero() {
	for i := range p.Limbs {
		p.Limbs[i].Zero()
	}
}

// lvl returns the smallest level among the operands, so binary operations
// naturally act at the common level.
func lvl(ps ...Poly) int {
	m := len(ps[0].Limbs)
	for _, p := range ps[1:] {
		if len(p.Limbs) < m {
			m = len(p.Limbs)
		}
	}
	return m
}

// NTT transforms every limb to evaluation representation.
func (b *Basis) NTT(p Poly) {
	for i := 0; i < p.Level(); i++ {
		b.Rings[i].NTT(p.Limbs[i])
	}
}

// INTT transforms every limb back to coefficient representation.
func (b *Basis) INTT(p Poly) {
	for i := 0; i < p.Level(); i++ {
		b.Rings[i].INTT(p.Limbs[i])
	}
}

// Add sets out = a + b limbwise at the common level.
func (b *Basis) Add(a, c, out Poly) {
	for i, n := 0, lvl(a, c, out); i < n; i++ {
		b.Rings[i].Add(a.Limbs[i], c.Limbs[i], out.Limbs[i])
	}
}

// Sub sets out = a - b limbwise.
func (b *Basis) Sub(a, c, out Poly) {
	for i, n := 0, lvl(a, c, out); i < n; i++ {
		b.Rings[i].Sub(a.Limbs[i], c.Limbs[i], out.Limbs[i])
	}
}

// Neg sets out = -a limbwise.
func (b *Basis) Neg(a, out Poly) {
	for i, n := 0, lvl(a, out); i < n; i++ {
		b.Rings[i].Neg(a.Limbs[i], out.Limbs[i])
	}
}

// MulCoeffs sets out = a ⊙ c limbwise (NTT-domain product).
func (b *Basis) MulCoeffs(a, c, out Poly) {
	for i, n := 0, lvl(a, c, out); i < n; i++ {
		b.Rings[i].MulCoeffs(a.Limbs[i], c.Limbs[i], out.Limbs[i])
	}
}

// MulCoeffsAndAdd sets out += a ⊙ c limbwise.
func (b *Basis) MulCoeffsAndAdd(a, c, out Poly) {
	for i, n := 0, lvl(a, c, out); i < n; i++ {
		b.Rings[i].MulCoeffsAndAdd(a.Limbs[i], c.Limbs[i], out.Limbs[i])
	}
}

// MulScalarBig multiplies every limb by (c mod q_i).
func (b *Basis) MulScalarBig(a Poly, c *big.Int, out Poly) {
	for i, n := 0, lvl(a, out); i < n; i++ {
		ci := new(big.Int).Mod(c, new(big.Int).SetUint64(b.Rings[i].Mod.Q))
		b.Rings[i].MulScalar(a.Limbs[i], ci.Uint64(), out.Limbs[i])
	}
}

// MulScalar multiplies every limb by c.
func (b *Basis) MulScalar(a Poly, c uint64, out Poly) {
	for i, n := 0, lvl(a, out); i < n; i++ {
		b.Rings[i].MulScalar(a.Limbs[i], c, out.Limbs[i])
	}
}

// Automorphism applies X→X^g limbwise in coefficient representation.
func (b *Basis) Automorphism(a Poly, g uint64, out Poly) {
	for i, n := 0, lvl(a, out); i < n; i++ {
		b.Rings[i].Automorphism(a.Limbs[i], g, out.Limbs[i])
	}
}

// AutomorphismNTT applies X→X^g limbwise in NTT representation using the
// per-limb-independent slot permutation.
func (b *Basis) AutomorphismNTT(a Poly, perm []uint64, out Poly) {
	for i, n := 0, lvl(a, out); i < n; i++ {
		b.Rings[i].AutomorphismNTT(a.Limbs[i], perm, out.Limbs[i])
	}
}

// SetBigCoeffs writes big-integer coefficients (interpreted mod Q) into all
// limbs of p (coefficient representation).
func (b *Basis) SetBigCoeffs(coeffs []*big.Int, p Poly) {
	for i := 0; i < p.Level(); i++ {
		q := new(big.Int).SetUint64(b.Rings[i].Mod.Q)
		t := new(big.Int)
		for j, c := range coeffs {
			t.Mod(c, q)
			p.Limbs[i][j] = t.Uint64()
		}
	}
}

// SetSigned writes small signed coefficients into all limbs.
func (b *Basis) SetSigned(v []int64, p Poly) {
	for i := 0; i < p.Level(); i++ {
		ring.SignedToPoly(b.Rings[i], v, p.Limbs[i])
	}
}

// CRTReconstruct returns the coefficients of p (coefficient representation)
// as big integers in [0, Q), where Q is the product of the limbs of p.
func (b *Basis) CRTReconstruct(p Poly) []*big.Int {
	level := p.Level()
	sub := b.AtLevel(level)
	bigQ := sub.Modulus()
	// Precompute qhat_i = Q/q_i and qhatInv_i = qhat_i^{-1} mod q_i.
	out := make([]*big.Int, b.N)
	for j := range out {
		out[j] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < level; i++ {
		qi := b.Rings[i].Mod.Q
		qhat := new(big.Int).Div(bigQ, new(big.Int).SetUint64(qi))
		qhatModQi := new(big.Int).Mod(qhat, new(big.Int).SetUint64(qi)).Uint64()
		qhatInv := b.Rings[i].Mod.InvMod(qhatModQi)
		for j := 0; j < b.N; j++ {
			c := b.Rings[i].Mod.MulMod(p.Limbs[i][j], qhatInv)
			tmp.SetUint64(c)
			tmp.Mul(tmp, qhat)
			out[j].Add(out[j], tmp)
		}
	}
	for j := range out {
		out[j].Mod(out[j], bigQ)
	}
	return out
}

// CRTReconstructCentered is CRTReconstruct with coefficients mapped to the
// centered interval (-Q/2, Q/2].
func (b *Basis) CRTReconstructCentered(p Poly) []*big.Int {
	out := b.CRTReconstruct(p)
	bigQ := b.AtLevel(p.Level()).Modulus()
	half := new(big.Int).Rsh(bigQ, 1)
	for _, c := range out {
		if c.Cmp(half) > 0 {
			c.Sub(c, bigQ)
		}
	}
	return out
}

// Equal reports limbwise equality at the common level.
func (b *Basis) Equal(a, c Poly) bool {
	if a.Level() != c.Level() {
		return false
	}
	for i := range a.Limbs {
		if !b.Rings[i].Equal(a.Limbs[i], c.Limbs[i]) {
			return false
		}
	}
	return true
}
