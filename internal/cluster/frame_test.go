package cluster

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []*frame{
		{Kind: frameShutdown},
		{Kind: frameHello, Payload: hello{Version: ProtocolVersion, LogN: 6, MaxLevel: 3, LWEDim: 64, MaxBatch: 64, Digest: 0xDEAD}.encode()},
		{Kind: frameBatch, Shard: 7, Seq: 0, Payload: []byte{1, 2, 3, 4, 5}},
		{Kind: frameAcc, Shard: 1<<32 - 1, Seq: 1<<32 - 1, Payload: make([]byte, 4096)},
		{Kind: frameError, Payload: []byte("it broke")},
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(&buf, len(f.Payload))
		if err != nil {
			t.Fatalf("kind %#x: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.Shard != f.Shard || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: sent %+v got %+v", f, got)
		}
		if buf.Len() != 0 {
			t.Fatalf("kind %#x: %d bytes left over", f.Kind, buf.Len())
		}
	}
}

// TestFrameRejectsCorruption flips every byte of an encoded frame in turn:
// the decoder must reject each mutation (or, for the length field, fail the
// bound or checksum) and must never return the corrupted payload as valid.
func TestFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	orig := &frame{Kind: frameAcc, Shard: 3, Seq: 9, Payload: []byte("accumulator bytes")}
	if err := writeFrame(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= bit
			got, err := readFrame(bytes.NewReader(mut), len(raw))
			if err == nil {
				t.Fatalf("flipping bit %#x of byte %d went undetected: %+v", bit, i, got)
			}
		}
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{Kind: frameBatch, Payload: []byte("0123456789")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := readFrame(bytes.NewReader(raw[:cut]), 64); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A clean close at a frame boundary is EOF, not an error.
	if _, err := readFrame(bytes.NewReader(nil), 64); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// TestFrameBoundsPayload: a frame header announcing a payload beyond the
// bound must be rejected before allocation.
func TestFrameBoundsPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{Kind: frameBatch, Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	_, err := readFrame(&buf, 99)
	if err == nil || !strings.Contains(err.Error(), "exceeds bound") {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestHelloRoundTripAndCheck(t *testing.T) {
	h := hello{Version: ProtocolVersion, LogN: 13, MaxLevel: 7, LWEDim: 500, MaxBatch: 8192, Digest: 0xABCD1234}
	got, err := decodeHello(h.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round trip: %+v != %+v", got, h)
	}
	if err := h.check(got); err != nil {
		t.Fatal(err)
	}
	bad := got
	bad.Version = 1
	if err := h.check(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: %v", err)
	}
	bad = got
	bad.Digest++
	if err := h.check(bad); err == nil {
		t.Fatal("digest mismatch accepted")
	}
	if _, err := decodeHello([]byte{1, 2, 3}); err == nil {
		t.Fatal("short hello accepted")
	}
}

// FuzzReadFrame: arbitrary wire bytes must never panic the decoder, and
// every frame it does accept must re-encode to a decodable equal frame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = writeFrame(&buf, &frame{Kind: frameShutdown})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = writeFrame(&buf, &frame{Kind: frameHello, Payload: hello{Version: ProtocolVersion, LogN: 6}.encode()})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = writeFrame(&buf, &frame{Kind: frameAcc, Shard: 2, Seq: 5, Payload: []byte("payload")})
	raw := buf.Bytes()
	f.Add(raw)
	mut := append([]byte(nil), raw...)
	mut[9] ^= 0x40
	f.Add(mut)
	f.Add([]byte{0x4D, 0x52, 0x46, 0x48})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		fr2, err := readFrame(&out, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Shard != fr.Shard || fr2.Seq != fr.Seq || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("accepted frame not stable: %+v vs %+v", fr, fr2)
		}
	})
}

// FuzzDecodeBatch: corrupt batch payloads (the bytes inside an already
// CRC-validated frame) must never panic or over-allocate.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		idxs, lwes, err := decodeBatch(data, 64, 64, 128)
		if err != nil {
			return
		}
		if len(idxs) != len(lwes) || len(idxs) == 0 || len(idxs) > 64 {
			t.Fatalf("accepted batch with inconsistent shape: %d/%d", len(idxs), len(lwes))
		}
		for i, lwe := range lwes {
			if err := lwe.Validate(64, 128); err != nil {
				t.Fatalf("accepted invalid LWE %d: %v", i, err)
			}
		}
	})
}
