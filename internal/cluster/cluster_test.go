package cluster

import (
	"io"
	"math/cmplx"
	"net"
	"testing"

	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// buildNode constructs one node's full context from the shared seed —
// offline key generation, as the paper prescribes.
func buildNode(t *testing.T) (*ckks.Parameters, *ckks.Client, *core.Bootstrapper) {
	t.Helper()
	logN := 6
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 90)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 91)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 1
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return params, cl, bt
}

// TestDistributedBootstrap runs a primary plus two secondaries over
// net.Pipe connections — the full Figure 4 flow with real byte streams —
// and checks the result against the single-node bootstrap bit for bit.
func TestDistributedBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed bootstrap is slow")
	}
	params, cl, btPrimary := buildNode(t)
	_, _, btSec1 := buildNode(t)
	_, _, btSec2 := buildNode(t)

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.35*float64(i%5)/5, -0.2*float64(i%3)/3)
	}
	ct := cl.EncryptAtLevel(v, 1)

	// Reference: purely local bootstrap.
	local := btPrimary.Bootstrap(ct.CopyNew())

	// Distributed: two secondaries over in-process duplex pipes.
	c1p, c1s := net.Pipe()
	c2p, c2s := net.Pipe()
	done := make(chan error, 2)
	go func() { done <- (&Secondary{Boot: btSec1}).Serve(c1s) }()
	go func() { done <- (&Secondary{Boot: btSec2}).Serve(c2s) }()

	primary := &Primary{Boot: btPrimary}
	out, err := primary.Bootstrap(ct.CopyNew(), []io.ReadWriter{c1p, c2p})
	if err != nil {
		t.Fatal(err)
	}
	if err := Shutdown(c1p); err != nil {
		t.Fatal(err)
	}
	if err := Shutdown(c2p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("secondary error: %v", err)
		}
	}

	// Bit-identical to the local result (same keys, deterministic pipeline).
	for i := range local.C0.Limbs {
		for j := range local.C0.Limbs[i] {
			if local.C0.Limbs[i][j] != out.C0.Limbs[i][j] || local.C1.Limbs[i][j] != out.C1.Limbs[i][j] {
				t.Fatalf("distributed result differs at limb %d coeff %d", i, j)
			}
		}
	}

	// And of course it decrypts.
	got := cl.Decrypt(out)
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > 1e-2 {
			t.Fatalf("slot %d: %v want %v", i, got[i], v[i])
		}
	}
}
