package cluster

import (
	"context"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// The elastic chaos suite: joins mid-run, graceful leaves, kills mid-key-
// upload, probe-missed drains, and hedged dispatch under injected stalls.
// Every scenario must end bit-exact against the local reference bootstrap
// and leak no goroutines.

// assertNoGoroutineLeak polls (GC between samples, to let conn finalizers
// and timer goroutines retire) until the goroutine count is back to the
// baseline, failing with a full stack dump if it never gets there.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// coldNode builds a bootstrapper from the same seeds and parameters as the
// shared fixture but with ColdStart set: no blind-rotate key material, so it
// must receive the (public) key over the cluster's streaming channel. The
// params digest still matches — cold is a key state, not a parameter set.
func coldNode(t *testing.T) *core.Bootstrapper {
	t.Helper()
	fixture(t)
	kg := rlwe.NewKeyGenerator(fx.params.Parameters, 90)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 1
	cfg.ColdStart = true
	bt, err := core.NewBootstrapper(fx.params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

type runResult struct {
	out   *rlwe.Ciphertext
	stats *Stats
	err   error
}

// TestElasticJoinMidRunStealsWork starts an elastic bootstrap with zero
// secondaries, joins a key-warm node through the listener while the run is
// in flight, and requires that the joiner demonstrably stole work from the
// shared queue — with health probing live on its idle gaps.
func TestElasticJoinMidRunStealsWork(t *testing.T) {
	fixture(t)
	before := runtime.NumGoroutine()

	m := NewMembership()
	l := NewPipeListener()
	pr := &Primary{Boot: fx.bt}
	acceptDone := make(chan struct{})
	go func() { _ = pr.AcceptJoins(m, l); close(acceptDone) }()

	opts := testOptions()
	opts.LocalWorkers = 1 // leave plenty of queue for the joiner to steal
	opts.ProbeInterval = 20 * time.Millisecond
	opts.ProbeTimeout = 2 * time.Second
	resCh := make(chan runResult, 1)
	go func() {
		out, stats, err := pr.BootstrapElastic(context.Background(), fx.ct.CopyNew(), m, opts)
		resCh <- runResult{out, stats, err}
	}()

	// Join mid-run: the work queue holds many tile tasks and the single
	// local worker needs milliseconds per tile, while the join handshake is
	// two tiny frames — the joiner always finds work left.
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	servDone := make(chan error, 1)
	go func() { servDone <- (&Secondary{Boot: fx.bt}).JoinAndServe(conn, "joiner") }()

	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	var joiner *NodeStats
	for _, ns := range r.stats.Nodes {
		if ns.Name == "joiner" {
			joiner = ns
		}
	}
	if joiner == nil {
		t.Fatalf("joiner missing from stats:\n%s", r.stats)
	}
	if !joiner.Joined || joiner.Failed {
		t.Fatalf("joiner state wrong: %+v", joiner)
	}
	if joiner.Completed == 0 {
		t.Fatalf("joiner stole no work:\n%s", r.stats)
	}
	if r.stats.Joined == 0 {
		t.Fatalf("stats.Joined = 0, want > 0")
	}
	if joiner.Completed+r.stats.Local != r.stats.Total {
		t.Fatalf("rotations unaccounted:\n%s", r.stats)
	}
	if st, ok := m.State("joiner"); !ok || st != MemberActive {
		t.Fatalf("joiner membership state %v, want active", st)
	}
	assertBitExact(t, r.out)

	closeConn(conn)
	<-servDone // pipe closed; the serve loop is done either way
	_ = l.Close()
	<-acceptDone
	assertNoGoroutineLeak(t, before)
}

// TestGracefulLeaveDrains joins a node, asks it to leave before the run
// starts, and requires the primary to drain it — leave frame honored, no
// failure recorded, pending work reassigned, membership transitioned —
// while the bootstrap still completes bit-exact.
func TestGracefulLeaveDrains(t *testing.T) {
	fixture(t)
	before := runtime.NumGoroutine()

	m := NewMembership()
	l := NewPipeListener()
	pr := &Primary{Boot: fx.bt}
	acceptDone := make(chan struct{})
	go func() { _ = pr.AcceptJoins(m, l); close(acceptDone) }()

	sec := &Secondary{Boot: fx.bt}
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	servDone := make(chan error, 1)
	go func() { servDone <- sec.JoinAndServe(conn, "leaver") }()
	// The very first frame the node receives after joining is answered with
	// a leave — deterministic: the request lands before any work can.
	sec.RequestLeave()
	// Wait for the registry to hold the joiner before starting the run.
	for {
		if _, ok := m.State("leaver"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	out, stats, err := pr.BootstrapElastic(context.Background(), fx.ct.CopyNew(), m, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var leaver *NodeStats
	for _, ns := range stats.Nodes {
		if ns.Name == "leaver" {
			leaver = ns
		}
	}
	if leaver == nil {
		t.Fatalf("leaver missing from stats:\n%s", stats)
	}
	if !leaver.Left || leaver.Failed {
		t.Fatalf("leaver should be drained, not failed: %+v", leaver)
	}
	if leaver.Completed != 0 {
		t.Fatalf("leaver completed work after requesting leave: %+v", leaver)
	}
	if stats.Reassigned == 0 {
		t.Fatal("the leaver's batch was never reassigned")
	}
	if st, _ := m.State("leaver"); st != MemberLeft {
		t.Fatalf("membership state %v, want left", st)
	}
	if stats.NodeErrors() != nil {
		t.Fatalf("a graceful leave must not surface as a node error: %v", stats.NodeErrors())
	}
	assertBitExact(t, out)

	if err := <-servDone; err != nil {
		t.Fatalf("leaving secondary: %v", err)
	}
	closeConn(conn)
	_ = l.Close()
	<-acceptDone
	assertNoGoroutineLeak(t, before)
}

// TestKillMidKeyUploadResumes is the headline key-streaming scenario: a
// cold node joins, its link dies partway through the chunked BRK upload,
// it rejoins under the same name, and the upload resumes from the last
// acked chunk. The receiver-side unique-chunk counters must account the
// blob exactly once — no full re-send — and the node must end fully warm.
func TestKillMidKeyUploadResumes(t *testing.T) {
	fixture(t)
	before := runtime.NumGoroutine()

	coldBoot := coldNode(t)
	coldMet := obs.NewMetrics()
	coldBoot.SetRecorder(coldMet)
	cold := &Secondary{Boot: coldBoot}

	priMet := obs.NewMetrics()
	fx.bt.SetRecorder(priMet)
	defer fx.bt.SetRecorder(nil)

	m := NewMembership()
	l := NewPipeListener()
	pr := &Primary{Boot: fx.bt}
	acceptDone := make(chan struct{})
	go func() { _ = pr.AcceptJoins(m, l); close(acceptDone) }()

	const chunkBytes = 64 << 10
	blobSize := tfhe.BRKBlobBytes(fx.bt.Params.Parameters, lweDim(fx.bt))
	chunkCount := (blobSize + chunkBytes - 1) / chunkBytes
	if chunkCount < 8 {
		t.Fatalf("fixture blob of %d bytes gives only %d chunks — too few to kill mid-upload", blobSize, chunkCount)
	}

	// First join: the connection dies after ~3 chunks have been read.
	conn1, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultConn(conn1, FaultPlan{Seed: 13, CutReadAfter: 3*chunkBytes + 4096})
	serv1 := make(chan error, 1)
	go func() { serv1 <- cold.JoinAndServe(fc, "cold") }()
	for {
		if _, ok := m.State("cold"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	opts := testOptions()
	opts.LocalWorkers = 1
	opts.KeyChunkBytes = chunkBytes
	resCh := make(chan runResult, 1)
	go func() {
		out, stats, err := pr.BootstrapElastic(context.Background(), fx.ct.CopyNew(), m, opts)
		resCh <- runResult{out, stats, err}
	}()

	if err := <-serv1; err == nil {
		t.Fatal("the injected cut never fired")
	}
	_ = fc.Close()
	// The primary notices the dead link and marks the member down; only then
	// may the same name rejoin.
	for {
		if st, _ := m.State("cold"); st == MemberDead {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := int(coldMet.Counter(obs.CounterKeyChunks)); got == 0 || got >= chunkCount {
		t.Fatalf("kill-mid-upload landed outside the upload: %d of %d chunks received", got, chunkCount)
	}

	// Rejoin under the same name: the stash on the Secondary survived the
	// connection, so the resume point is whatever was acked.
	conn2, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	serv2 := make(chan error, 1)
	go func() { serv2 <- cold.JoinAndServe(conn2, "cold") }()

	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	assertBitExact(t, r.out)
	// The rejoin races the tail of the run; if the queue drained before the
	// join consumer saw it, the node is still waiting in the membership —
	// a second elastic run picks it up and completes the resumed upload.
	if !cold.fullyWarm() {
		r2 := <-func() chan runResult {
			ch := make(chan runResult, 1)
			go func() {
				out, stats, err := pr.BootstrapElastic(context.Background(), fx.ct.CopyNew(), m, opts)
				ch <- runResult{out, stats, err}
			}()
			return ch
		}()
		if r2.err != nil {
			t.Fatal(r2.err)
		}
		assertBitExact(t, r2.out)
	}
	if !cold.fullyWarm() {
		t.Fatal("cold node never became key-warm")
	}

	// Resume accounting: every unique chunk was received exactly once across
	// both connections — the kill did not trigger a full re-send.
	if got := int(coldMet.Counter(obs.CounterKeyChunks)); got != chunkCount {
		t.Fatalf("receiver counted %d unique chunks, want exactly %d", got, chunkCount)
	}
	if got := int(coldMet.Counter(obs.CounterKeyChunkBytes)); got != blobSize {
		t.Fatalf("receiver counted %d unique chunk bytes, want exactly the %d-byte blob", got, blobSize)
	}
	// Stop-and-wait leaves at most the single unacked chunk to overlap.
	if resent := int(priMet.Counter(obs.CounterKeyChunkResent)); resent > chunkBytes {
		t.Fatalf("sender re-sent %d bytes, want at most one chunk (%d)", resent, chunkBytes)
	}
	if st, _ := m.State("cold"); st != MemberActive {
		t.Fatalf("rejoined node state %v, want active", st)
	}

	closeConn(conn2)
	<-serv2
	_ = l.Close()
	<-acceptDone
	assertNoGoroutineLeak(t, before)
}

// TestStalledNodeTriggersHedge wedges the only secondary after its
// handshake: its shard's indices age past HedgeAfter, the hedge monitor
// re-queues them, the local workers win every claim, and the loser's
// connection is cancelled at completion — bit-exact, no goroutine leaks,
// and no double-counted rotations.
func TestStalledNodeTriggersHedge(t *testing.T) {
	fixture(t)
	before := runtime.NumGoroutine()

	cp, cs := net.Pipe()
	fc := NewFaultConn(cs, FaultPlan{Seed: 3, StallWriteAfter: 48}) // wedge after the hello reply
	servDone := make(chan error, 1)
	go func() { servDone <- (&Secondary{Boot: fx.bt}).Serve(fc) }()

	opts := testOptions()
	opts.HedgeAfter = 100 * time.Millisecond
	nodes := []*Node{{Conn: cp, Name: "wedged"}}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hedged == 0 {
		t.Fatalf("stall never triggered a hedge:\n%s", stats)
	}
	ns := stats.Nodes[0]
	if ns.Completed != 0 {
		t.Fatalf("wedged node cannot have completed work: %+v", ns)
	}
	if stats.Local != stats.Total {
		t.Fatalf("hedged indices must all complete locally:\n%s", stats)
	}
	if stats.HedgeWasted != 0 {
		t.Fatalf("a fully wedged node cannot produce hedge-race losers: %d wasted", stats.HedgeWasted)
	}
	assertBitExact(t, out)

	_ = fc.Close()
	cp.Close()
	cs.Close()
	<-servDone
	assertNoGoroutineLeak(t, before)
}

// TestProbeMissesDrainIdleNode drives runNode directly against a mute peer:
// the queue is idle (work in flight elsewhere), so the worker falls into
// probe ticks; the peer swallows every probe, and after K consecutive
// misses the node must be drained — failed, membership-dead, connection
// closed — without touching the rest of the run.
func TestProbeMissesDrainIdleNode(t *testing.T) {
	fixture(t)
	before := runtime.NumGoroutine()

	cp, cs := net.Pipe()
	// Mute peer: consumes frames so probe writes complete, never answers.
	var swallowed atomic.Int32
	muteDone := make(chan struct{})
	go func() {
		defer close(muteDone)
		for {
			if _, err := readFrame(cs, maxErrorPayload); err != nil {
				return
			}
			swallowed.Add(1)
		}
	}()

	m := NewMembership()
	node := &Node{Conn: cp, Name: "mute", joined: true}
	if err := m.Join(node); err != nil {
		t.Fatal(err)
	}
	<-m.joinCh // consumed by the test, standing in for the scheduler

	met := obs.NewMetrics()
	opts := DefaultOptions()
	opts.ProbeInterval = 10 * time.Millisecond
	opts.ProbeTimeout = 50 * time.Millisecond
	opts.ProbeMisses = 3
	opts = opts.withDefaults()
	q := newWorkQueue(1) // 1 outstanding index, never queued here: permanently idle
	rs := &runState{
		ctx:       context.Background(),
		stats:     &Stats{Nodes: []*NodeStats{{Name: "mute", Joined: true}}, Total: 1},
		q:         q,
		rec:       met,
		opts:      opts,
		m:         m,
		claims:    make([]atomic.Bool, 1),
		flights:   make(map[int]*flight),
		hedgedIdx: make(map[int]bool),
		ests:      make(map[*NodeStats]*latEstimator),
		keyHigh:   make(map[string]uint32),
	}
	ns := rs.stats.Nodes[0]
	done := make(chan struct{})
	go func() {
		(&Primary{Boot: fx.bt}).runNode(context.Background(), node, ns, 0, nil, rs)
		close(done)
	}()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("probe misses never drained the mute node")
	}
	if !ns.Failed || ns.Err == nil {
		t.Fatalf("mute node not failed: %+v", ns)
	}
	if st, _ := m.State("mute"); st != MemberDead {
		t.Fatalf("membership state %v, want dead", st)
	}
	if got := int(met.Counter(obs.CounterProbeMisses)); got < opts.ProbeMisses {
		t.Fatalf("probe_misses = %d, want >= %d", got, opts.ProbeMisses)
	}
	if swallowed.Load() < int32(opts.ProbeMisses) {
		t.Fatalf("mute peer swallowed %d probes, want >= %d", swallowed.Load(), opts.ProbeMisses)
	}
	q.done(1)
	cp.Close()
	cs.Close()
	<-muteDone
	assertNoGoroutineLeak(t, before)
}
