package cluster

import (
	"context"
	"errors"
	"io"
	"math/cmplx"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// The chaos tests all run against one shared miniature node (N=64): every
// node in a real deployment generates identical key material offline from
// the shared seed, so a single bootstrapper can play primary and every
// secondary (BlindRotateOne is concurrency-safe), and bit-exactness against
// the local reference bootstrap stays meaningful.
var fx struct {
	once   sync.Once
	params *ckks.Parameters
	cl     *ckks.Client
	bt     *core.Bootstrapper
	ct     *rlwe.Ciphertext // level-1 input
	want   []complex128     // plaintext
	local  *rlwe.Ciphertext // reference: purely local bootstrap
}

func fixture(t *testing.T) {
	t.Helper()
	fx.once.Do(func() {
		logN := 6
		q := ring.GenerateNTTPrimes(30, logN, 3)
		p := ring.GenerateNTTPrimesUp(31, logN, 2)
		params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
		kg := rlwe.NewKeyGenerator(params.Parameters, 90)
		sk := kg.GenSecretKey(rlwe.SecretTernary)
		cl := ckks.NewClient(params, sk, 91)
		cfg := core.DefaultConfig()
		cfg.NT = 0
		cfg.Workers = 2
		bt, err := core.NewBootstrapper(params, kg, sk, cfg)
		if err != nil {
			panic(err)
		}
		v := make([]complex128, params.Slots)
		for i := range v {
			v[i] = complex(0.35*float64(i%5)/5, -0.2*float64(i%3)/3)
		}
		ct := cl.EncryptAtLevel(v, 1)
		fx.params, fx.cl, fx.bt = params, cl, bt
		fx.ct, fx.want = ct, v
		fx.local = bt.Bootstrap(ct.CopyNew())
	})
}

// assertBitExact checks the distributed result against the local reference
// bit for bit and confirms it still decrypts to the plaintext.
func assertBitExact(t *testing.T, out *rlwe.Ciphertext) {
	t.Helper()
	for i := range fx.local.C0.Limbs {
		for j := range fx.local.C0.Limbs[i] {
			if fx.local.C0.Limbs[i][j] != out.C0.Limbs[i][j] || fx.local.C1.Limbs[i][j] != out.C1.Limbs[i][j] {
				t.Fatalf("result differs from local bootstrap at limb %d coeff %d", i, j)
			}
		}
	}
	got := fx.cl.Decrypt(out)
	for i := range fx.want {
		if e := cmplx.Abs(got[i] - fx.want[i]); e > 1e-2 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], fx.want[i])
		}
	}
}

// startSecondary serves a Secondary over one side of a pipe, optionally
// wrapped in a FaultConn on the secondary side, and returns the primary
// side. All conns are closed at test cleanup, which also unblocks any
// stalled fault injection.
func startSecondary(t *testing.T, plan *FaultPlan) io.ReadWriter {
	t.Helper()
	cp, cs := net.Pipe()
	var sconn io.ReadWriter = cs
	if plan != nil {
		fc := NewFaultConn(cs, *plan)
		t.Cleanup(func() { _ = fc.Close() })
		sconn = fc
	}
	go func() { _ = (&Secondary{Boot: fx.bt}).Serve(sconn) }()
	t.Cleanup(func() { cp.Close(); cs.Close() })
	return cp
}

func testOptions() Options {
	o := DefaultOptions()
	// Generous: the deadline covers a full batch round-trip including the
	// secondary's compute, which is slow under -race. Only the dedicated
	// timeout test tightens it.
	o.BatchTimeout = 2 * time.Minute
	o.BackoffBase = time.Millisecond
	o.BackoffMax = 4 * time.Millisecond
	return o
}

// TestKillSecondaryMidStream cuts one secondary's link partway through its
// accumulator stream (a node dying mid-bootstrap). The primary must detect
// the partial stream, reassign the unfinished LWE indices, and still
// produce the bit-exact result — the issue's headline failure mode.
func TestKillSecondaryMidStream(t *testing.T) {
	fixture(t)
	// The hello reply is one 48-byte frame; each accumulator frame is
	// ~3.1 KB at these parameters. Cut the primary's read side mid-shard,
	// after roughly two accumulators.
	flaky := NewFaultConn(startSecondary(t, nil), FaultPlan{Seed: 7, CutReadAfter: 6800})
	t.Cleanup(func() { _ = flaky.Close() })
	healthy := startSecondary(t, nil)

	nodes := []*Node{
		{Conn: flaky, Name: "flaky"},
		{Conn: healthy, Name: "healthy"},
	}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Nodes[0].Failed {
		t.Fatalf("flaky node not marked failed: %+v", stats.Nodes[0])
	}
	if stats.Reassigned == 0 {
		t.Fatal("no indices were reassigned — the failure path was not exercised")
	}
	if stats.Nodes[0].Completed >= stats.Nodes[0].Dispatched {
		t.Fatalf("expected a partial shard on the flaky node: %+v", stats.Nodes[0])
	}
	if got := stats.Nodes[0].Completed + stats.Nodes[1].Completed + stats.Local; got != stats.Total {
		t.Fatalf("rotations accounted %d, want %d\n%s", got, stats.Total, stats)
	}
	if stats.NodeErrors() == nil {
		t.Fatal("expected a node error for the killed secondary")
	}
	assertBitExact(t, out)
}

// TestAllSecondariesDeadFallsBackLocal: with every peer dead on arrival the
// bootstrap must degrade gracefully to pure local execution.
func TestAllSecondariesDeadFallsBackLocal(t *testing.T) {
	fixture(t)
	dead := func() io.ReadWriter {
		cp, cs := net.Pipe()
		cp.Close()
		cs.Close()
		return cp
	}
	nodes := []*Node{
		{Conn: dead(), Name: "dead-0"},
		{Conn: dead(), Name: "dead-1"},
	}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Local != stats.Total {
		t.Fatalf("expected all %d rotations local, got %d\n%s", stats.Total, stats.Local, stats)
	}
	if stats.Reassigned == 0 {
		t.Fatal("dead shards were never reassigned")
	}
	for i := range stats.Nodes {
		if !stats.Nodes[i].Failed {
			t.Fatalf("node %d should be failed", i)
		}
	}
	assertBitExact(t, out)
}

// TestDelayedPeerTimeout wedges a secondary after its handshake (it accepts
// the batch but never streams accumulators); the per-batch deadline must
// fire and the shard must complete elsewhere.
func TestDelayedPeerTimeout(t *testing.T) {
	fixture(t)
	// The hello reply is one 48-byte write; stall every write after it.
	stalled := startSecondary(t, &FaultPlan{Seed: 3, StallWriteAfter: 48})
	nodes := []*Node{{Conn: stalled, Name: "wedged"}}
	opts := testOptions()
	opts.BatchTimeout = 250 * time.Millisecond

	start := time.Now()
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Nodes[0].Failed {
		t.Fatal("wedged node not marked failed")
	}
	if stats.Reassigned == 0 || stats.Local != stats.Total {
		t.Fatalf("wedged shard not reassigned to local compute\n%s", stats)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("timeout did not bound the wedged peer (took %v)", time.Since(start))
	}
	assertBitExact(t, out)
}

// TestRetryBackoffReconnect: transient dial failures followed by a healthy
// connection must be absorbed by the exponential-backoff retry path without
// losing the shard to reassignment.
func TestRetryBackoffReconnect(t *testing.T) {
	fixture(t)
	var mu sync.Mutex
	dials := 0
	node := &Node{
		Name: "flapping",
		Dial: func() (io.ReadWriter, error) {
			mu.Lock()
			dials++
			d := dials
			mu.Unlock()
			if d <= 2 {
				return nil, errors.New("connection refused")
			}
			return startSecondary(t, nil), nil
		},
	}
	opts := testOptions()
	opts.MaxRetries = 3
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), []*Node{node}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Nodes[0]
	if ns.Failed {
		t.Fatalf("node should have recovered: %+v", ns)
	}
	if ns.Retries < 2 {
		t.Fatalf("expected ≥2 retries, got %d", ns.Retries)
	}
	if ns.Completed == 0 {
		t.Fatal("recovered node completed no work")
	}
	if stats.Reassigned != 0 {
		t.Fatalf("retry path should not reassign, got %d", stats.Reassigned)
	}
	assertBitExact(t, out)
}

// TestReconnectResumesPending: a connection cut mid-stream with a Dial
// function must resume on a fresh connection with only the pending indices
// (the completed prefix of the shard is not recomputed).
func TestReconnectResumesPending(t *testing.T) {
	fixture(t)
	first := NewFaultConn(startSecondary(t, nil), FaultPlan{Seed: 11, CutReadAfter: 6800})
	t.Cleanup(func() { _ = first.Close() })
	node := &Node{
		Conn: first,
		Name: "resuming",
		Dial: func() (io.ReadWriter, error) { return startSecondary(t, nil), nil },
	}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), []*Node{node}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Nodes[0]
	if ns.Failed || ns.Retries == 0 {
		t.Fatalf("expected a successful retry: %+v", ns)
	}
	// Dispatched counts the resend of the pending suffix, so it exceeds the
	// node's completed total, which in turn covers the whole shard exactly
	// once: completed + local == total.
	if ns.Dispatched <= ns.Completed {
		t.Fatalf("expected a partial first stream then a resend: %+v", ns)
	}
	if ns.Completed+stats.Local != stats.Total {
		t.Fatalf("indices recomputed or lost: %+v local=%d total=%d", ns, stats.Local, stats.Total)
	}
	assertBitExact(t, out)
}

// TestCorruptLinkDetected: flipped bits on the wire must be caught by the
// frame CRC (never a panic, never silent corruption) and the shard must be
// recomputed elsewhere, keeping the result bit-exact.
func TestCorruptLinkDetected(t *testing.T) {
	fixture(t)
	lying := NewFaultConn(startSecondary(t, nil), FaultPlan{Seed: 5, CorruptEvery: 701})
	t.Cleanup(func() { _ = lying.Close() })
	nodes := []*Node{{Conn: lying, Name: "lying"}}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Nodes[0].Failed {
		t.Fatal("corrupting link was not detected")
	}
	if stats.Local != stats.Total {
		t.Fatalf("corrupted shard must be fully recomputed locally\n%s", stats)
	}
	assertBitExact(t, out)
}

// TestShortReadsAndDelays: a slow, fragmenting (but honest) link must not
// trip any failure path — io.ReadFull framing absorbs short reads.
func TestShortReadsAndDelays(t *testing.T) {
	fixture(t)
	slow := NewFaultConn(startSecondary(t, nil), FaultPlan{Seed: 9, MaxReadChunk: 7})
	t.Cleanup(func() { _ = slow.Close() })
	nodes := []*Node{{Conn: slow, Name: "slow"}}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes[0].Failed || stats.Reassigned != 0 {
		t.Fatalf("short reads should be harmless: %s", stats)
	}
	if stats.Nodes[0].Completed == 0 {
		t.Fatal("slow node did no work")
	}
	assertBitExact(t, out)
}

// TestHandshakeRejectsMismatchedParams: a secondary built from a different
// parameter set must be refused at connection setup, and the bootstrap must
// complete without it.
func TestHandshakeRejectsMismatchedParams(t *testing.T) {
	fixture(t)
	logN := 5
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 90)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 1
	alien, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, cs := net.Pipe()
	t.Cleanup(func() { cp.Close(); cs.Close() })
	go func() { _ = (&Secondary{Boot: alien}).Serve(cs) }()

	nodes := []*Node{{Conn: cp, Name: "alien"}}
	out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ns := stats.Nodes[0]
	if !ns.Failed || ns.Err == nil {
		t.Fatalf("mismatched node accepted: %+v", ns)
	}
	if !strings.Contains(ns.Err.Error(), "mismatch") {
		t.Fatalf("error does not name the mismatch: %v", ns.Err)
	}
	if ns.Completed != 0 {
		t.Fatal("mismatched node must not receive work")
	}
	assertBitExact(t, out)
}

// TestSecondaryRejectsOversizedBatch drives Serve directly with crafted
// frames: a batch count above the parameter-derived maximum (n ≤ ring
// degree) must be rejected before any allocation.
func TestSecondaryRejectsOversizedBatch(t *testing.T) {
	fixture(t)
	cp, cs := net.Pipe()
	t.Cleanup(func() { cp.Close(); cs.Close() })
	done := make(chan error, 1)
	go func() { done <- (&Secondary{Boot: fx.bt}).Serve(cs) }()

	local := helloFor(fx.bt)
	if err := writeFrame(cp, &frame{Kind: frameHello, Payload: local.encode()}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(cp, helloPayloadSize); err != nil || f.Kind != frameHello {
		t.Fatalf("handshake reply: %v %+v", err, f)
	}
	// count = 2^32−1 with an otherwise empty payload: must fail on the
	// bound check, not by attempting a 4-billion-element make.
	payload := make([]byte, 4)
	putU32(payload, 0xFFFF_FFFF)
	if err := writeFrame(cp, &frame{Kind: frameBatch, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(cp, maxErrorPayload)
	if err != nil {
		t.Fatalf("expected an error frame, got %v", err)
	}
	if f.Kind != frameError || !strings.Contains(string(f.Payload), "batch count") {
		t.Fatalf("expected a batch-count rejection, got kind %#x payload %q", f.Kind, f.Payload)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "batch count") {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not terminate")
	}
}

// TestContextCancellation: a cancelled context aborts the bootstrap with an
// error instead of hanging or returning a partial result.
func TestContextCancellation(t *testing.T) {
	fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := (&Primary{Boot: fx.bt}).BootstrapCluster(ctx, fx.ct.CopyNew(), nil, testOptions())
	if err == nil {
		t.Fatal("cancelled bootstrap reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry the cancellation: %v", err)
	}
}

// TestChaosMatrix sweeps seeds over the cut-mid-stream fault with two
// secondaries, proving the bootstrap is bit-exact under every deterministic
// replay of the failure.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	fixture(t)
	for _, seed := range []uint64{1, 2, 3} {
		cut := 4000 + int(seed)*2500
		flaky := NewFaultConn(startSecondary(t, nil), FaultPlan{Seed: seed, CutReadAfter: cut})
		healthy := startSecondary(t, nil)
		nodes := []*Node{
			{Conn: flaky, Name: "flaky"},
			{Conn: healthy, Name: "healthy"},
		}
		out, stats, err := (&Primary{Boot: fx.bt}).BootstrapCluster(context.Background(), fx.ct.CopyNew(), nodes, testOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !stats.Nodes[0].Failed {
			t.Fatalf("seed %d: cut link not detected", seed)
		}
		assertBitExact(t, out)
		_ = flaky.Close()
	}
}
