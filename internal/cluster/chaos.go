package cluster

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrInjected marks a failure manufactured by a FaultConn, so tests can
// distinguish injected faults from real ones.
var ErrInjected = errors.New("cluster: injected fault")

// FaultPlan configures a FaultConn. The zero value injects nothing. All
// injections are deterministic functions of the byte/call counters and the
// seed, so a failing chaos test replays exactly.
type FaultPlan struct {
	// Seed drives the deterministic corruption PRNG.
	Seed uint64

	// CutReadAfter kills the connection once this many bytes have been
	// read (0 = never): the read fails with ErrInjected and the underlying
	// conn is closed — a mid-stream disconnect.
	CutReadAfter int
	// CutWriteAfter is the write-side analog.
	CutWriteAfter int

	// CorruptEvery flips one bit in every CorruptEvery-th byte read
	// (0 = never) — a lying link the CRC must catch.
	CorruptEvery int

	// MaxReadChunk caps each Read at this many bytes (0 = no cap),
	// exercising short-read handling in the frame decoder.
	MaxReadChunk int

	// ReadDelay/WriteDelay sleep before each operation — a slow link.
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// StallWriteAfter blocks writes forever (until Close) once this many
	// bytes have been written (0 = never) — a wedged peer that triggers the
	// primary's batch deadline.
	StallWriteAfter int

	// FailFirstWrites makes the first N Write calls fail with ErrInjected
	// without touching the underlying conn — a transient error the retry
	// path should absorb.
	FailFirstWrites int
}

// FaultConn wraps a connection and injects faults per its plan. It is the
// software stand-in for the paper's fragile inter-FPGA links: drops, delays,
// short reads, bit corruption, and mid-stream disconnects, all reproducible
// from a seed.
type FaultConn struct {
	inner io.ReadWriter
	plan  FaultPlan

	mu         sync.Mutex
	rng        uint64
	readBytes  int
	writeBytes int
	writeCalls int

	closeOnce sync.Once
	closed    chan struct{}
}

// NewFaultConn wraps conn with the given plan.
func NewFaultConn(conn io.ReadWriter, plan FaultPlan) *FaultConn {
	return &FaultConn{inner: conn, plan: plan, rng: plan.Seed | 1, closed: make(chan struct{})}
}

func (f *FaultConn) Read(p []byte) (int, error) {
	if f.plan.ReadDelay > 0 {
		f.sleep(f.plan.ReadDelay)
	}
	select {
	case <-f.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	f.mu.Lock()
	if f.plan.CutReadAfter > 0 && f.readBytes >= f.plan.CutReadAfter {
		f.mu.Unlock()
		f.Close()
		return 0, ErrInjected
	}
	if f.plan.MaxReadChunk > 0 && len(p) > f.plan.MaxReadChunk {
		p = p[:f.plan.MaxReadChunk]
	}
	if f.plan.CutReadAfter > 0 && f.readBytes+len(p) > f.plan.CutReadAfter {
		p = p[:f.plan.CutReadAfter-f.readBytes]
	}
	start := f.readBytes
	f.mu.Unlock()

	n, err := f.inner.Read(p)

	f.mu.Lock()
	defer f.mu.Unlock()
	f.readBytes = start + n
	if f.plan.CorruptEvery > 0 {
		for i := 0; i < n; i++ {
			if (start+i)%f.plan.CorruptEvery == f.plan.CorruptEvery-1 {
				p[i] ^= 1 << (f.next() % 8)
			}
		}
	}
	return n, err
}

func (f *FaultConn) Write(p []byte) (int, error) {
	if f.plan.WriteDelay > 0 {
		f.sleep(f.plan.WriteDelay)
	}
	f.mu.Lock()
	f.writeCalls++
	if f.plan.FailFirstWrites > 0 && f.writeCalls <= f.plan.FailFirstWrites {
		f.mu.Unlock()
		return 0, ErrInjected
	}
	if f.plan.StallWriteAfter > 0 && f.writeBytes >= f.plan.StallWriteAfter {
		f.mu.Unlock()
		<-f.closed // wedged until someone closes the conn
		return 0, io.ErrClosedPipe
	}
	if f.plan.CutWriteAfter > 0 && f.writeBytes >= f.plan.CutWriteAfter {
		f.mu.Unlock()
		f.Close()
		return 0, ErrInjected
	}
	f.mu.Unlock()

	n, err := f.inner.Write(p)

	f.mu.Lock()
	f.writeBytes += n
	f.mu.Unlock()
	return n, err
}

// Close unblocks any stalled operation and closes the underlying conn if it
// is a Closer.
func (f *FaultConn) Close() error {
	var err error
	f.closeOnce.Do(func() {
		close(f.closed)
		if c, ok := f.inner.(io.Closer); ok {
			err = c.Close()
		}
	})
	return err
}

// SetDeadline forwards to the underlying conn when supported, so deadline-
// based batch timeouts keep working through the wrapper.
func (f *FaultConn) SetDeadline(t time.Time) error {
	if d, ok := f.inner.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// sleep waits for d or until the conn is closed.
func (f *FaultConn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.closed:
	}
}

// next is a splitmix64 step (deterministic corruption choices).
func (f *FaultConn) next() uint64 {
	f.rng += 0x9E3779B97F4A7C15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
