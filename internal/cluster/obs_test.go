package cluster

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"heap/internal/obs"
)

// TestClusterTraceAccounting locks the observability contract of a
// distributed bootstrap: the pipeline phases recorded on the primary tile
// its end-to-end wall time within 5%, the per-node network spans land on
// shard lanes, byte counters account the framed traffic on both endpoints,
// and the flight/queue gauges return to zero.
func TestClusterTraceAccounting(t *testing.T) {
	params, cl, btPrimary := buildNode(t)
	_, _, btSec := buildNode(t)

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.3*float64(i%7)/7, 0)
	}
	ct := cl.EncryptAtLevel(v, 1)

	cp, cs := net.Pipe()
	secMet := obs.NewMetrics()
	btSec.SetRecorder(secMet)
	done := make(chan error, 1)
	go func() { done <- (&Secondary{Boot: btSec}).Serve(cs) }()

	met := obs.NewMetrics()
	tracer := obs.NewTracer()
	btPrimary.SetRecorder(obs.Combine(met, tracer))
	primary := &Primary{Boot: btPrimary}
	nodes := []*Node{{Conn: cp, Name: "sec-0"}}
	start := time.Now()
	out, stats, err := primary.BootstrapCluster(context.Background(), ct, nodes, DefaultOptions())
	wallMs := float64(time.Since(start).Microseconds()) / 1e3
	btPrimary.SetRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || stats.Total != params.N() {
		t.Fatalf("unexpected result: out=%v stats=%+v", out != nil, stats)
	}
	if err := Shutdown(cp); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("secondary error: %v", err)
	}

	pipeMs := met.PipelineTotalMs()
	if diff := pipeMs - wallMs; diff < -0.05*wallMs || diff > 0.05*wallMs {
		t.Errorf("pipeline phases sum to %.3f ms, measured wall %.3f ms (>5%% apart)", pipeMs, wallMs)
	}

	snap := met.Snapshot()
	for _, stage := range []string{"ModSwitch", "Extract", "BlindRotate", "Repack", "Finish"} {
		if st := snap.Pipeline[stage]; st.Count != 1 {
			t.Errorf("pipeline stage %s: want exactly one span, got %+v", stage, st)
		}
	}
	if snap.Shards["NetSend"].Count == 0 || snap.Shards["NetRecv"].Count == 0 {
		t.Errorf("network spans missing from shard lanes: %+v", snap.Shards)
	}
	// Every rotation ran somewhere: remotely (received over the wire) or on
	// the primary's local workers. Local shard-lane BlindRotate spans are
	// per key-major tile — at least ⌈local/tile⌉ of them (tasks tile
	// independently, so partial tiles can add more), never more than one per
	// rotation — and the exact rotation count lives in the counters.
	remote := 0
	for i := range stats.Nodes {
		remote += stats.Nodes[i].Completed
	}
	tile := btPrimary.TileSize()
	minTiles := (stats.Local + tile - 1) / tile
	tileSpans := int(snap.Shards["BlindRotate"].Count)
	if tileSpans < minTiles || tileSpans > maxInt(stats.Local, minTiles) {
		t.Errorf("local shard-lane tile spans = %d, want in [%d, %d] for %d local rotations (tile %d)",
			tileSpans, minTiles, maxInt(stats.Local, minTiles), stats.Local, tile)
	}
	if got := int(met.Counter(obs.CounterBlindRotate)); got != stats.Local {
		t.Errorf("primary blind_rotates = %d, want stats.Local = %d", got, stats.Local)
	}
	if got := int(met.Counter(obs.CounterBlindRotateTile)); got != tileSpans {
		t.Errorf("primary blind_rotate_tiles = %d, want %d (one per tile span)", got, tileSpans)
	}
	if remote+stats.Local != stats.Total {
		t.Errorf("remote %d + local %d != total %d", remote, stats.Local, stats.Total)
	}
	// The secondary runs each dispatch batch through the batched engine:
	// exactly its completed rotations on the counter, and per-batch (not
	// per-LWE) BlindRotate spans on lane 0 so traces stay bounded.
	if got := int(secMet.Counter(obs.CounterBlindRotate)); got != remote {
		t.Errorf("secondary blind_rotates = %d, want %d", got, remote)
	}
	if remote > 0 {
		secSnap := secMet.Snapshot()
		spans := int(secSnap.Shards["BlindRotate"].Count)
		tilesSec := int(secMet.Counter(obs.CounterBlindRotateTile))
		// One span per batch (lane 0) plus one per tile (lanes ≥ 1): at most
		// 2× the tile count, and far below the per-LWE count at real sizes.
		if spans == 0 || spans > 2*tilesSec {
			t.Errorf("secondary BlindRotate spans = %d with %d tiles — want per-batch+per-tile, never per LWE",
				spans, tilesSec)
		}
	}

	// The primary frames one batch per dispatch and receives one frame per
	// accumulator plus one batch-end; the secondary frames the accumulator
	// stream. Exact byte counts depend on scheduling, but both endpoints
	// must have counted traffic, and the primary must have seen at least the
	// secondary's accumulator payloads.
	pBytes := met.Counter(obs.CounterBytesFramed)
	sBytes := secMet.Counter(obs.CounterBytesFramed)
	if pBytes == 0 || sBytes == 0 {
		t.Errorf("bytes_framed: primary %d, secondary %d — both must be nonzero", pBytes, sBytes)
	}
	if pBytes < sBytes {
		t.Errorf("primary framed %d bytes < secondary's %d (must include the received accumulator stream)", pBytes, sBytes)
	}
	for g := obs.Gauge(0); int(g) < obs.NumGauges; g++ {
		if v := met.GaugeValue(g); v != 0 {
			t.Errorf("gauge %s = %d after completion, want 0", g, v)
		}
	}

	var buf bytes.Buffer
	if _, err := tracer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if diff := tr.PipelineTotalMs() - wallMs; diff < -0.05*wallMs || diff > 0.05*wallMs {
		t.Errorf("trace pipeline spans sum to %.3f ms, measured wall %.3f ms (>5%% apart)",
			tr.PipelineTotalMs(), wallMs)
	}
	var netSpans int
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "X" && (ev.Name == "NetSend" || ev.Name == "NetRecv") {
			if ev.Cat != "shard" || ev.Tid != 1 {
				t.Errorf("%s span on cat=%q tid=%d, want shard lane 0 (tid 1)", ev.Name, ev.Cat, ev.Tid)
			}
			netSpans++
		}
	}
	if netSpans == 0 {
		t.Error("trace has no network spans")
	}
}

// TestClusterRetryBytesAccounted locks the bytes_retried counter: when a
// node's stream breaks mid-batch and the node reconnects via Dial, the
// re-dispatched batch is counted as retried traffic.
func TestClusterRetryBytesAccounted(t *testing.T) {
	params, cl, btPrimary := buildNode(t)
	_, _, btSec := buildNode(t)

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.25, 0)
	}
	ct := cl.EncryptAtLevel(v, 1)

	serve := func() io.ReadWriter {
		cp, cs := net.Pipe()
		go func() { _ = (&Secondary{Boot: btSec}).Serve(cs) }()
		return cp
	}
	// First connection dies after a little accumulator traffic; the Dial
	// function hands out a healthy replacement.
	first := NewFaultConn(serve(), FaultPlan{Seed: 7, CutReadAfter: 4 << 10})
	nodes := []*Node{{
		Conn: first,
		Dial: func() (io.ReadWriter, error) { return serve(), nil },
		Name: "flaky-0",
	}}

	met := obs.NewMetrics()
	btPrimary.SetRecorder(met)
	primary := &Primary{Boot: btPrimary}
	out, stats, err := primary.BootstrapCluster(context.Background(), ct, nodes, DefaultOptions())
	btPrimary.SetRecorder(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("bootstrap returned nil")
	}
	if stats.Nodes[0].Retries == 0 {
		t.Skip("link survived the fault plan; nothing was retried")
	}
	if met.Counter(obs.CounterBytesRetried) == 0 {
		t.Error("node retried but bytes_retried counter did not move")
	}
	if met.Counter(obs.CounterBytesFramed) <= met.Counter(obs.CounterBytesRetried) {
		t.Errorf("bytes_framed %d must exceed bytes_retried %d",
			met.Counter(obs.CounterBytesFramed), met.Counter(obs.CounterBytesRetried))
	}
}
