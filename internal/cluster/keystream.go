package cluster

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// Chunked resumable blind-rotate key streaming. The BRK is by far the
// largest object the cluster moves (1.76 GB at paper parameters, §III-C),
// and ARK/BTS both observe that evaluation-key movement bounds
// bootstrapping systems — so a cold joiner must not restart a multi-GB
// transfer because its link blipped at 90%. The upload is cut into
// CRC-framed chunks with stop-and-wait acks: the receiver's stash survives
// the connection (it lives on the Secondary, not the conn), a rejoining
// node reports the contiguous chunks it already holds, and the sender
// resumes from exactly there. Because the serialized key is a fixed-size
// header plus fixed-size per-index records (tfhe/serial.go), the receiver
// parses complete records incrementally and can serve shards whose LWE
// masks only touch the warm prefix while the tail is still in flight.

// keyStash is the receiver-side state of a (possibly interrupted) key
// upload. It belongs to the Secondary and deliberately outlives any single
// connection: that persistence is the resume mechanism.
type keyStash struct {
	mu    sync.Mutex
	offer keyOffer
	buf   []byte // the partial blob; nil until an offer arrives
	have  uint32 // contiguous chunks held

	headerParsed bool
	numKeys      int
	binary       bool
	key          *tfhe.BlindRotateKey // full-length, records [0, warm) filled
	warm         int                  // complete key records parsed from buf
	installed    bool                 // key handed to the bootstrapper after keyDone
}

// reset discards any partial state and adopts a new offer.
func (st *keyStash) reset(o keyOffer) {
	st.offer = o
	st.buf = make([]byte, o.TotalSize)
	st.have = 0
	st.headerParsed = false
	st.numKeys = 0
	st.binary = false
	st.key = nil
	st.warm = 0
	st.installed = false
}

// contiguousBytes is how many prefix bytes of the blob the stash holds.
func (st *keyStash) contiguousBytes() int {
	b := uint64(st.have) * uint64(st.offer.ChunkSize)
	if b > st.offer.TotalSize {
		b = st.offer.TotalSize
	}
	return int(b)
}

// advance parses the header and any newly-completed fixed-size key records
// out of the contiguous prefix. Returns the number of warm records.
func (st *keyStash) advance(s *Secondary) (int, error) {
	p := s.Boot.Params.Parameters
	avail := st.contiguousBytes()
	if !st.headerParsed {
		if avail < tfhe.BRKBlobBytes(p, 0) {
			return 0, nil
		}
		n, bin, err := tfhe.ReadBRKHeader(bytes.NewReader(st.buf))
		if err != nil {
			return 0, err
		}
		if n != lweDim(s.Boot) {
			return 0, fmt.Errorf("cluster: streamed key covers %d indices, want %d", n, lweDim(s.Boot))
		}
		st.headerParsed = true
		st.numKeys = n
		st.binary = bin
		st.key = &tfhe.BlindRotateKey{
			Plus:   make([]*rlwe.RGSWCiphertext, n),
			Minus:  make([]*rlwe.RGSWCiphertext, n),
			Binary: bin,
		}
	}
	recSize := tfhe.BRKRecordBytes(p)
	hdr := tfhe.BRKBlobBytes(p, 0)
	for st.warm < st.numKeys && hdr+(st.warm+1)*recSize <= avail {
		off := hdr + st.warm*recSize
		plus, minus, err := tfhe.ReadBRKRecord(bytes.NewReader(st.buf[off:off+recSize]), p)
		if err != nil {
			return st.warm, fmt.Errorf("cluster: streamed key record %d: %w", st.warm, err)
		}
		st.key.Plus[st.warm] = plus
		st.key.Minus[st.warm] = minus
		st.warm++
	}
	return st.warm, nil
}

// warmRecords is the number of key indices the secondary can currently
// rotate with: the full dimension once a locally-generated or fully
// installed key is present, else the streamed warm prefix.
func (s *Secondary) warmRecords() int {
	s.stash.mu.Lock()
	defer s.stash.mu.Unlock()
	if s.stash.buf != nil && !s.stash.installed {
		return s.stash.warm
	}
	if s.Boot.HasBlindRotateKey() {
		return lweDim(s.Boot)
	}
	return 0
}

// fullyWarm reports whether the node holds its complete blind-rotate key
// (the hello key-warm flag). A node mid-upload is not warm even though a
// partial key may already be installed for prefix serving.
func (s *Secondary) fullyWarm() bool {
	s.stash.mu.Lock()
	defer s.stash.mu.Unlock()
	if s.stash.buf != nil && !s.stash.installed {
		return false
	}
	return s.Boot.HasBlindRotateKey()
}

// handleKeyOffer processes a key-streaming offer, answering with the resume
// point (0 for a fresh upload, the stashed contiguous chunk count after an
// interrupted one).
func (s *Secondary) handleKeyOffer(conn io.ReadWriter, f *frame, rec obs.Recorder) error {
	o, err := decodeKeyOffer(f.Payload)
	if err != nil {
		return err
	}
	// The receiver sizes its buffer from its own parameters, never from the
	// wire: a lying offer cannot force an oversized allocation.
	expect := tfhe.BRKBlobBytes(s.Boot.Params.Parameters, lweDim(s.Boot))
	if o.TotalSize != uint64(expect) {
		return fmt.Errorf("cluster: key offer of %d bytes, want %d for this parameter set", o.TotalSize, expect)
	}
	s.stash.mu.Lock()
	if s.stash.buf == nil || s.stash.offer != o {
		s.stash.reset(o)
	}
	have := s.stash.have
	s.stash.mu.Unlock()
	payload := encodeKeyResume(have, o.BlobCRC)
	if err := writeFrame(conn, &frame{Kind: frameKeyResume, Payload: payload}); err != nil {
		return err
	}
	rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
	return nil
}

// handleKeyChunk stores one chunk (stop-and-wait: its index must be exactly
// the next expected one; an already-held index is re-acked without being
// stored or counted, so the unique-chunk counters are exact across any
// number of kill/resume cycles) and acks the new contiguous count.
func (s *Secondary) handleKeyChunk(conn io.ReadWriter, f *frame, rec obs.Recorder) error {
	s.stash.mu.Lock()
	st := &s.stash
	if st.buf == nil {
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: key chunk before offer")
	}
	idx := f.Seq
	switch {
	case idx < st.have:
		// Duplicate after a resume race; already stored.
	case idx > st.have:
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: key chunk %d, want %d", idx, st.have)
	default:
		off := uint64(idx) * uint64(st.offer.ChunkSize)
		want := st.offer.TotalSize - off
		if want > uint64(st.offer.ChunkSize) {
			want = uint64(st.offer.ChunkSize)
		}
		if uint64(len(f.Payload)) != want {
			s.stash.mu.Unlock()
			return fmt.Errorf("cluster: key chunk %d is %d bytes, want %d", idx, len(f.Payload), want)
		}
		copy(st.buf[off:], f.Payload)
		st.have++
		rec.Add(obs.CounterKeyChunks, 1)
		rec.Add(obs.CounterKeyChunkBytes, uint64(len(f.Payload)))
		if _, err := st.advance(s); err != nil {
			s.stash.mu.Unlock()
			return err
		}
		// Prefix serving: once the header and at least one record are in,
		// install the partial key so batches bounded by the warm prefix can
		// rotate while the tail streams.
		if st.headerParsed && !st.installed && s.Boot.BlindRotateKey() != st.key {
			if err := s.Boot.SetBlindRotateKey(st.key); err != nil {
				s.stash.mu.Unlock()
				return err
			}
		}
	}
	have := st.have
	blobCRC := st.offer.BlobCRC
	s.stash.mu.Unlock()
	payload := encodeKeyResume(have, blobCRC)
	if err := writeFrame(conn, &frame{Kind: frameKeyAck, Payload: payload}); err != nil {
		return err
	}
	rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
	return nil
}

// handleKeyDone verifies the complete blob against the offered CRC,
// installs the key, and echoes the done frame as the sender's confirmation.
func (s *Secondary) handleKeyDone(conn io.ReadWriter, f *frame, rec obs.Recorder) error {
	if len(f.Payload) != 4 {
		return fmt.Errorf("cluster: key done payload is %d bytes, want 4", len(f.Payload))
	}
	s.stash.mu.Lock()
	st := &s.stash
	if st.buf == nil || st.have != st.offer.ChunkCount {
		have := st.have
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: key done with %d chunks held", have)
	}
	if got := u32(f.Payload); got != st.offer.BlobCRC {
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: key done CRC %#x, want %#x", got, st.offer.BlobCRC)
	}
	if sum := crc32.ChecksumIEEE(st.buf); sum != st.offer.BlobCRC {
		st.reset(st.offer)
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: reassembled key CRC %#x does not match offer %#x", sum, st.offer.BlobCRC)
	}
	if _, err := st.advance(s); err != nil {
		s.stash.mu.Unlock()
		return err
	}
	if st.warm != st.numKeys {
		warm, want := st.warm, st.numKeys
		s.stash.mu.Unlock()
		return fmt.Errorf("cluster: key done with %d of %d records parsed", warm, want)
	}
	key := st.key
	st.installed = true
	st.buf = nil // the parsed key holds the material; drop the raw blob
	s.stash.mu.Unlock()
	if err := s.Boot.SetBlindRotateKey(key); err != nil {
		return err
	}
	if err := writeFrame(conn, &frame{Kind: frameKeyDone, Payload: f.Payload}); err != nil {
		return err
	}
	rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
	return nil
}

// keyBlob lazily serializes the primary's blind-rotate key for streaming.
// Built once per run and shared by every cold joiner.
func (rs *runState) keyBlobBytes(p *Primary) ([]byte, uint32, error) {
	rs.keyOnce.Do(func() {
		brk := p.Boot.BlindRotateKey()
		if brk == nil {
			rs.keyErr = fmt.Errorf("cluster: primary holds no blind-rotate key to stream")
			return
		}
		var buf bytes.Buffer
		if _, err := brk.WriteTo(&buf); err != nil {
			rs.keyErr = err
			return
		}
		rs.keyBlob = buf.Bytes()
		rs.keyCRC = crc32.ChecksumIEEE(rs.keyBlob)
	})
	return rs.keyBlob, rs.keyCRC, rs.keyErr
}

// sendKey streams the key blob to a cold node, resuming from whatever the
// receiver already holds. high persists the per-node high-water mark of
// pushed chunks across reconnects, so re-sent overlap (at most the one
// unacked chunk per kill, with stop-and-wait) is counted exactly in
// CounterKeyChunkResent. onAck, when non-nil, is called after every acked
// chunk with the receiver's contiguous chunk count — the hook the scheduler
// uses to dispatch prefix-bounded work mid-upload.
func sendKey(conn io.ReadWriter, blob []byte, blobCRC uint32, opts Options, rec obs.Recorder, high *uint32, onAck func(warmRecords int) error) error {
	chunk := opts.KeyChunkBytes
	count := (len(blob) + chunk - 1) / chunk
	offer := keyOffer{
		TotalSize:  uint64(len(blob)),
		ChunkSize:  uint32(chunk),
		ChunkCount: uint32(count),
		BlobCRC:    blobCRC,
	}

	roundTrip := func(send *frame, wantKind uint32) (*frame, error) {
		disarm := armTimeout(conn, opts.BatchTimeout)
		defer disarm()
		if err := writeFrame(conn, send); err != nil {
			return nil, fmt.Errorf("cluster: key upload send: %w", err)
		}
		rec.Add(obs.CounterBytesFramed, wireSize(len(send.Payload)))
		f, err := readFrame(conn, maxErrorPayload)
		if err != nil {
			return nil, fmt.Errorf("cluster: key upload reply: %w", err)
		}
		rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
		if f.Kind == frameError {
			return nil, fmt.Errorf("cluster: key upload refused: %s", f.Payload)
		}
		if f.Kind != wantKind {
			return nil, fmt.Errorf("cluster: key upload expected frame kind %#x, got %#x", wantKind, f.Kind)
		}
		return f, nil
	}

	f, err := roundTrip(&frame{Kind: frameKeyOffer, Payload: offer.encode()}, frameKeyResume)
	if err != nil {
		return err
	}
	have, rcrc, err := decodeKeyResume(f.Payload)
	if err != nil {
		return err
	}
	if rcrc != blobCRC || int(have) > count {
		return fmt.Errorf("cluster: key resume for CRC %#x at chunk %d/%d is inconsistent", rcrc, have, count)
	}

	for i := int(have); i < count; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(blob) {
			hi = len(blob)
		}
		payload := blob[lo:hi]
		if uint32(i) < *high {
			rec.Add(obs.CounterKeyChunkResent, uint64(len(payload)))
		}
		f, err := roundTrip(&frame{Kind: frameKeyChunk, Seq: uint32(i), Payload: payload}, frameKeyAck)
		if err != nil {
			return err
		}
		if uint32(i) >= *high {
			*high = uint32(i) + 1
		}
		acked, _, err := decodeKeyResume(f.Payload)
		if err != nil {
			return err
		}
		if acked != uint32(i)+1 {
			return fmt.Errorf("cluster: key chunk %d acked at %d", i, acked)
		}
		if onAck != nil {
			if err := onAck(int(acked)); err != nil {
				return err
			}
		}
	}

	done := make([]byte, 4)
	putU32(done, blobCRC)
	if _, err := roundTrip(&frame{Kind: frameKeyDone, Payload: done}, frameKeyDone); err != nil {
		return err
	}
	return nil
}
