package cluster

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLatEstimatorP99 pins the nearest-rank percentile to exact indices at
// the 8-sample arming boundary, at n=100 (where the old (n*99)/100 indexing
// overshot by one whenever 99·n was a multiple of 100: n=100 picked the
// maximum instead of the 99th of 100), and after the 256-slot ring wraps.
func TestLatEstimatorP99(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	fill := func(count int) *latEstimator {
		e := &latEstimator{}
		for i := 0; i < count; i++ {
			e.add(ms(i + 1))
		}
		return e
	}

	cases := []struct {
		name string
		adds int
		want time.Duration
	}{
		// Below the arming threshold there is no signal to hedge on.
		{"below_threshold_7", 7, 0},
		// Boundary: exactly 8 samples arm the estimator. ceil(0.99*8)=8th
		// smallest of 1..8 ms.
		{"arming_boundary_8", 8, ms(8)},
		// The case the old code got wrong: ceil(0.99*100)=99th smallest of
		// 1..100 ms is 99ms; (100*99)/100 indexed sample 100.
		{"exact_hundred", 100, ms(99)},
		// ceil(0.99*200)=198th smallest of 1..200 ms.
		{"two_hundred", 200, ms(198)},
		// Ring wraparound: 264 adds keep the newest 256 samples, values
		// 9..264 ms. ceil(0.99*256)=254th smallest → 9+253 = 262 ms.
		{"ring_wraparound", 264, ms(262)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := fill(tc.adds).p99(); got != tc.want {
				t.Fatalf("p99 after %d adds = %v, want %v", tc.adds, got, tc.want)
			}
		})
	}
}

// rwcConn wraps one end of a net.Pipe exposing only Read/Write/Close, so
// armTimeout cannot see SetDeadline and must take the watchdog-Close
// fallback. Closes are counted to catch double-Close.
type rwcConn struct {
	inner  net.Conn
	closes atomic.Int32
}

func (c *rwcConn) Read(p []byte) (int, error)  { return c.inner.Read(p) }
func (c *rwcConn) Write(p []byte) (int, error) { return c.inner.Write(p) }
func (c *rwcConn) Close() error {
	c.closes.Add(1)
	return c.inner.Close()
}

// TestArmTimeoutWatchdogDisarm locks the watchdog fallback's contract: a
// disarm before the timer fires reports false and the conn is never closed —
// not even by a callback already scheduled. The old code stopped the timer
// but a callback that had already started could still Close after disarm
// returned, killing the conn mid-use for the *next* round trip.
func TestArmTimeoutWatchdogDisarm(t *testing.T) {
	before := runtime.NumGoroutine()
	a, b := net.Pipe()
	defer b.Close()
	conn := &rwcConn{inner: a}

	disarm := armTimeout(conn, time.Hour)
	if disarm() {
		t.Fatal("disarm before the deadline must report no timeout")
	}
	// The conn must stay usable after disarm: a write paired with a read on
	// the far end succeeds only if nothing closed the pipe.
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 2)
		_, err := io.ReadFull(b, buf)
		done <- err
	}()
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("conn closed after disarm: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("far end read: %v", err)
	}
	if disarm() {
		t.Fatal("disarm must be idempotent and stable")
	}
	if n := conn.closes.Load(); n != 0 {
		t.Fatalf("watchdog closed a disarmed conn %d time(s)", n)
	}
	conn.Close()
	assertNoGoroutineLeak(t, before)
}

// TestArmTimeoutWatchdogFires checks the fire path: the conn is closed
// exactly once, disarm reports the timeout, and repeated disarm calls stay
// stable without a second Close.
func TestArmTimeoutWatchdogFires(t *testing.T) {
	before := runtime.NumGoroutine()
	a, b := net.Pipe()
	defer b.Close()
	conn := &rwcConn{inner: a}

	disarm := armTimeout(conn, time.Millisecond)
	// A blocked read on the pipe unblocks with an error when the watchdog
	// closes it — the same way a stuck secondary read is broken.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read should fail once the watchdog closes the conn")
	}
	if !disarm() {
		t.Fatal("disarm after the watchdog fired must report the timeout")
	}
	if !disarm() {
		t.Fatal("the fired verdict must be stable across repeated disarms")
	}
	if n := conn.closes.Load(); n != 1 {
		t.Fatalf("watchdog closed the conn %d time(s), want exactly 1", n)
	}
	assertNoGoroutineLeak(t, before)
}

// TestArmTimeoutWatchdogRace hammers the disarm-vs-fire race: whatever the
// interleaving, the invariant is disarm()==true ⟺ exactly one Close, and
// disarm()==false ⟹ zero Closes ever (checked after a settle delay so a
// straggling callback would be caught).
func TestArmTimeoutWatchdogRace(t *testing.T) {
	before := runtime.NumGoroutine()
	conns := make([]*rwcConn, 0, 200)
	for i := 0; i < 200; i++ {
		a, b := net.Pipe()
		defer b.Close()
		conn := &rwcConn{inner: a}
		conns = append(conns, conn)
		disarm := armTimeout(conn, time.Duration(1+i%5)*100*time.Microsecond)
		if i%2 == 0 {
			time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
		}
		timedOut := disarm()
		if timedOut != disarm() {
			t.Fatal("verdict flipped across disarm calls")
		}
		want := int32(0)
		if timedOut {
			want = 1
		}
		if got := conn.closes.Load(); got != want {
			t.Fatalf("iteration %d: timedOut=%v but %d close(s)", i, timedOut, got)
		}
		if !timedOut {
			// Remember for the settle check below: no late close may arrive.
			continue
		}
	}
	time.Sleep(5 * time.Millisecond) // let any stray callback land
	for i, conn := range conns {
		if n := conn.closes.Load(); n > 1 {
			t.Fatalf("conn %d closed %d times", i, n)
		}
	}
	assertNoGoroutineLeak(t, before)
}

// deadlineRecorder implements SetDeadline, so armTimeout must prefer the
// deadline path and never Close.
type deadlineRecorder struct {
	mu    sync.Mutex
	calls []time.Time
}

func (c *deadlineRecorder) Read(p []byte) (int, error)  { return 0, io.EOF }
func (c *deadlineRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (c *deadlineRecorder) Close() error                { panic("deadline path must never Close") }
func (c *deadlineRecorder) SetDeadline(d time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls = append(c.calls, d)
	return nil
}

func TestArmTimeoutPrefersDeadline(t *testing.T) {
	conn := &deadlineRecorder{}
	disarm := armTimeout(conn, time.Millisecond)
	if disarm() {
		t.Fatal("deadline path never reports a watchdog timeout")
	}
	disarm() // idempotent: no second clear
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if len(conn.calls) != 2 {
		t.Fatalf("want arm+clear = 2 SetDeadline calls, got %d", len(conn.calls))
	}
	if conn.calls[0].IsZero() || !conn.calls[1].IsZero() {
		t.Fatalf("want non-zero arm then zero clear, got %v", conn.calls)
	}
}

func TestArmTimeoutZeroIsUnbounded(t *testing.T) {
	a, _ := net.Pipe()
	conn := &rwcConn{inner: a}
	disarm := armTimeout(conn, 0)
	time.Sleep(time.Millisecond)
	if disarm() {
		t.Fatal("zero timeout must never report a timeout")
	}
	if n := conn.closes.Load(); n != 0 {
		t.Fatalf("zero timeout closed the conn %d time(s)", n)
	}
}
