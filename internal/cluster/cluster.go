// Package cluster realizes the paper's §V multi-node system (Figure 4) with
// real byte streams: a primary node runs steps 1–2 of Algorithm 2, fans the
// independent LWE ciphertexts out to secondary nodes over duplex
// connections (the software analog of the 100G CMAC links — net.Pipe in
// tests, net.Conn for actual TCP deployments), the secondaries blind-rotate
// and stream their accumulator ciphertexts back as soon as each completes,
// and the primary repacks and finishes the bootstrap.
//
// The layer is fault-tolerant and, since protocol v3, elastic and
// self-healing. Because the n extracted LWE ciphertexts are mutually
// independent (the property §V exploits for parallelism), a lost node costs
// only its unfinished shard. The wire protocol is framed and
// CRC32-checksummed with a version/params handshake (frame.go), batches
// carry per-shard sequence numbers so partial accumulator streams are
// detected, failed or wedged secondaries are retried with exponential
// backoff and their pending LWE indices reassigned to healthy nodes or the
// primary's own compute (scheduler.go), and the whole failure matrix is
// exercised deterministically by the FaultConn chaos wrapper (chaos.go).
//
// On top of that, v3 adds:
//   - Membership (membership.go): secondaries join through a listener
//     mid-run and immediately start draining the work queue; nodes that
//     leave gracefully or miss K health probes are drained, their pending
//     indices reassigned.
//   - Hedged dispatch: when an in-flight index ages past an obs-derived
//     per-node p99 latency estimate, it is speculatively re-queued; the
//     first result wins an atomic per-index claim and the loser's stream is
//     cancelled at completion.
//   - Chunked resumable key streaming (keystream.go): a cold joiner
//     receives the blind-rotate key in CRC-framed acked chunks, resumes
//     from the last acked chunk after a mid-upload kill, and can serve
//     prefix-bounded shards while the tail is still in flight.
//
// A bootstrap therefore always completes — bit-identical to local execution
// — as long as the primary itself survives, degrading gracefully to pure
// local compute with zero live peers.
//
// Key material is generated offline on every node from the shared seed,
// matching the paper's "brk public keys can be computed offline and must be
// generated in advance" — except for cold elastic joiners, which receive
// the (public) brk over the key-streaming channel; no secret ever crosses a
// connection.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// Secondary serves blind-rotation work over a connection. It owns a full
// bootstrapper (keys generated offline from the shared seed, or streamed in
// over the cluster's key channel for ColdStart nodes).
type Secondary struct {
	Boot *core.Bootstrapper

	// stash is the resumable key-upload state; it survives connections, so
	// a node killed mid-upload resumes from its last acked chunk after
	// rejoining.
	stash keyStash
	// leaving requests a graceful drain: the next frame that would start
	// work is answered with a leave frame instead.
	leaving atomic.Bool
}

// RequestLeave asks the secondary to drain gracefully: the next batch or
// probe it receives is answered with a leave frame, the primary requeues
// whatever was pending, and the serve loop exits.
func (s *Secondary) RequestLeave() { s.leaving.Store(true) }

// localHello is the node's hello with the key-warm flag reflecting the
// stash state (a node mid-upload holds a partial key but is not warm).
func (s *Secondary) localHello() hello {
	h := helloFor(s.Boot)
	if !s.fullyWarm() {
		h.Flags &^= helloFlagKeyWarm
	}
	return h
}

// Serve processes batches until shutdown or connection close. The first
// frame must be the hello handshake (version + parameter digest); batch
// counts, LWE indices, dimensions, and moduli are all validated against the
// secondary's own parameters before any allocation, so a lying primary can
// neither crash the node nor make it allocate unboundedly. Every
// accumulator is streamed back immediately after its rotation completes —
// with its LWE index and a per-shard sequence number — mirroring the
// paper's "a secondary FPGA starts sending the resultant ciphertext ... as
// soon as the BlindRotate operation is completed".
func (s *Secondary) Serve(conn io.ReadWriter) error {
	local := s.localHello()
	maxPayload := s.maxServePayload()

	// Handshake: hello in, hello out. A bare shutdown of a never-used
	// connection is also accepted.
	f, err := readFrame(conn, maxPayload)
	if err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	switch f.Kind {
	case frameShutdown:
		return nil
	case frameHello:
		peer, err := decodeHello(f.Payload)
		if err != nil {
			return s.failConn(conn, err)
		}
		if err := local.check(peer); err != nil {
			return s.failConn(conn, err)
		}
		if err := writeFrame(conn, &frame{Kind: frameHello, Payload: local.encode()}); err != nil {
			return err
		}
	default:
		return s.failConn(conn, fmt.Errorf("cluster: expected hello, got frame kind %#x", f.Kind))
	}
	return s.serveLoop(conn)
}

// maxServePayload bounds the frames a serving secondary accepts: batches,
// hellos, probes, and key chunks.
func (s *Secondary) maxServePayload() int {
	p := s.Boot.Params.Parameters
	maxBatch := p.N()
	dim := lweDim(s.Boot)
	return maxInt(maxInt(helloPayloadSize, batchPayloadBound(maxBatch, dim)), maxKeyChunkPayload)
}

// failConn sends a best-effort structured error so the primary fails fast
// instead of waiting out its deadline; the connection is dead either way.
func (s *Secondary) failConn(conn io.ReadWriter, err error) error {
	msg := err.Error()
	if len(msg) > maxErrorPayload {
		msg = msg[:maxErrorPayload]
	}
	_ = writeFrame(conn, &frame{Kind: frameError, Payload: []byte(msg)})
	return err
}

// serveLoop is the post-handshake serving loop, shared by Serve (classic
// hello connections) and JoinAndServe (membership joiners). It handles
// batches, health probes, graceful leave, and the chunked key upload.
func (s *Secondary) serveLoop(conn io.ReadWriter) error {
	p := s.Boot.Params.Parameters
	rec := s.Boot.Recorder()
	maxBatch := p.N()
	dim := lweDim(s.Boot)
	maxPayload := s.maxServePayload()
	twoN := uint64(2 * p.N())
	fail := func(err error) error { return s.failConn(conn, err) }

	sendLeave := func() error {
		payload := encodeLeave("leave requested")
		err := writeFrame(conn, &frame{Kind: frameLeave, Payload: payload})
		if err == nil {
			rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
		}
		return err
	}

	// Recycled accumulators, reused across batches for the connection's
	// life: tiles in flight hold at most workers×tile accumulators live, and
	// each is returned to the free list as soon as it is framed, so a large
	// batch never materializes all of its accumulators at once.
	var (
		accMu   sync.Mutex
		freeAcc []*rlwe.Ciphertext
	)
	getAcc := func() *rlwe.Ciphertext {
		accMu.Lock()
		if n := len(freeAcc); n > 0 {
			a := freeAcc[n-1]
			freeAcc = freeAcc[:n-1]
			accMu.Unlock()
			return a
		}
		accMu.Unlock()
		return s.Boot.NewAccumulator()
	}
	putAcc := func(a *rlwe.Ciphertext) {
		accMu.Lock()
		freeAcc = append(freeAcc, a)
		accMu.Unlock()
	}
	for {
		f, err := readFrame(conn, maxPayload)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch f.Kind {
		case frameShutdown:
			return nil
		case frameProbe:
			if s.leaving.Load() {
				return sendLeave()
			}
			if _, err := decodeProbe(f.Payload); err != nil {
				return fail(err)
			}
			if err := writeFrame(conn, &frame{Kind: frameProbeAck, Payload: f.Payload}); err != nil {
				return err
			}
			rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
		case frameKeyOffer:
			if err := s.handleKeyOffer(conn, f, rec); err != nil {
				return fail(err)
			}
		case frameKeyChunk:
			if err := s.handleKeyChunk(conn, f, rec); err != nil {
				return fail(err)
			}
		case frameKeyDone:
			if err := s.handleKeyDone(conn, f, rec); err != nil {
				return fail(err)
			}
		case frameBatch:
			if s.leaving.Load() {
				return sendLeave()
			}
			idxs, lwes, err := decodeBatch(f.Payload, maxBatch, dim, twoN)
			if err != nil {
				return fail(err)
			}
			// Warm gating: a batch whose masks reach past the streamed key
			// prefix is refused (not failed) — the primary requeues it and
			// keeps prefix-bounded work coming while the upload continues.
			if need := batchNeedDim(lwes, twoN); need > s.warmRecords() {
				payload := make([]byte, 4)
				putU32(payload, uint32(s.warmRecords()))
				if err := writeFrame(conn, &frame{Kind: frameBatchRefused, Shard: f.Shard, Payload: payload}); err != nil {
					return err
				}
				rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
				continue
			}
			// The batch frame's seq field carries the primary's deadline
			// budget in milliseconds (0 = none): work the node cannot finish
			// in time is abandoned here instead of wasting compute on a
			// result the primary will have re-dispatched anyway.
			var deadline time.Time
			if f.Seq != 0 {
				deadline = time.Now().Add(time.Duration(f.Seq) * time.Millisecond)
			}
			// The whole dispatch batch runs through the key-major engine as
			// one batch (§V: one shared key, many shards), so the BRK streams
			// once per tile instead of once per LWE. Each finished tile is
			// framed and sent the moment it completes — the "send as soon as
			// BlindRotate completes" overlap — with sequence numbers stamped
			// in completion order (the primary resolves accumulators by
			// index, not order). One BlindRotate span covers the batch
			// (lane 0); the engine's per-tile spans land on lanes ≥ 1, so
			// traces stay bounded at large shard counts.
			accs := make([]*rlwe.Ciphertext, len(lwes))
			var (
				sendMu  sync.Mutex
				seq     uint32
				sendErr error
			)
			tok := rec.Begin(obs.StageBlindRotate, 0)
			err = s.Boot.BlindRotateBatch(accs, lwes, tfhe.BatchOptions{
				Workers:  s.Boot.Cfg.Workers,
				BaseLane: 1,
				NewAcc:   getAcc,
				OnTile: func(lo, hi int) error {
					sendMu.Lock()
					defer sendMu.Unlock()
					if sendErr != nil {
						return sendErr
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						sendErr = fmt.Errorf("cluster: batch %d deadline budget of %dms exceeded", f.Shard, f.Seq)
						return sendErr
					}
					for j := lo; j < hi; j++ {
						payload, err := encodeAcc(idxs[j], accs[j])
						if err == nil {
							err = writeFrame(conn, &frame{Kind: frameAcc, Shard: f.Shard, Seq: seq, Payload: payload})
						}
						if err != nil {
							sendErr = err
							return err
						}
						seq++
						rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
						putAcc(accs[j])
						accs[j] = nil
					}
					return nil
				},
			})
			rec.End(obs.StageBlindRotate, 0, tok)
			if err != nil {
				if sendErr != nil && !errors.Is(err, sendErr) {
					return sendErr // the link itself is dead; no error frame can reach the primary
				}
				return fail(fmt.Errorf("cluster: batch %d: %w", f.Shard, err))
			}
			endPayload := make([]byte, 4)
			putU32(endPayload, uint32(len(lwes)))
			if err := writeFrame(conn, &frame{Kind: frameBatchEnd, Shard: f.Shard, Seq: uint32(len(lwes)), Payload: endPayload}); err != nil {
				return err
			}
			rec.Add(obs.CounterBytesFramed, wireSize(len(endPayload)))
		default:
			return fail(fmt.Errorf("cluster: unknown message kind %#x", f.Kind))
		}
	}
}

// batchNeedDim is the minimal key coverage a batch needs: the largest LWE
// mask index with a nonzero coefficient, plus one. The blind-rotate kernel
// skips zero mask coefficients, so a node whose streamed key prefix covers
// this much can serve the batch while the rest of the key is in flight.
func batchNeedDim(lwes []*rlwe.LWECiphertext, twoN uint64) int {
	need := 0
	for _, lwe := range lwes {
		for i := len(lwe.A) - 1; i >= need; i-- {
			if lwe.A[i]%twoN != 0 {
				need = i + 1
				break
			}
		}
	}
	return need
}

// lweNeedDim is batchNeedDim for a single prepared ciphertext.
func lweNeedDim(lwe *rlwe.LWECiphertext, twoN uint64) int {
	for i := len(lwe.A) - 1; i >= 0; i-- {
		if lwe.A[i]%twoN != 0 {
			return i + 1
		}
	}
	return 0
}

// DefaultWatchdog is the conservative per-batch deadline the seed-compatible
// Primary.Bootstrap applies so a wedged peer can no longer block a bootstrap
// forever. It is deliberately far above any sane batch round-trip: it exists
// to unwedge, not to tune latency.
const DefaultWatchdog = 2 * time.Minute

// Primary drives a distributed bootstrap over a set of connections to
// secondaries. With zero connections (or zero healthy ones) it degrades to
// local execution.
type Primary struct {
	Boot *core.Bootstrapper

	// Watchdog bounds each batch round-trip of the seed-compatible
	// Bootstrap entry point. 0 selects DefaultWatchdog; a negative value
	// opts out entirely, restoring the seed's original semantics where a
	// wedged peer blocks indefinitely. BootstrapCluster callers tune
	// Options.BatchTimeout instead.
	Watchdog time.Duration
}

// Bootstrap distributes the blind rotations across the secondaries (plus
// the primary itself working its own share locally) and finishes the
// repacking. It is the strict entry point kept for single-shot callers: the
// bootstrap itself is fault-tolerant, but if any node failed along the way
// the (still correct) result is accompanied by a joined error naming each
// failed shard. Use BootstrapCluster for graceful-degradation semantics
// with per-shard stats.
func (p *Primary) Bootstrap(ct *rlwe.Ciphertext, conns []io.ReadWriter) (*rlwe.Ciphertext, error) {
	nodes := make([]*Node, len(conns))
	for i, c := range conns {
		nodes[i] = &Node{Conn: c, Name: fmt.Sprintf("secondary-%d", i)}
	}
	opts := DefaultOptions()
	// The seed ran this path with no per-batch deadline, so a wedged peer
	// blocked forever. The watchdog closes that hole with a deadline far
	// above any healthy round-trip; Watchdog < 0 restores the old behavior.
	switch {
	case p.Watchdog < 0:
		opts.BatchTimeout = 0
	case p.Watchdog == 0:
		opts.BatchTimeout = DefaultWatchdog
	default:
		opts.BatchTimeout = p.Watchdog
	}
	out, stats, err := p.BootstrapCluster(context.Background(), ct, nodes, opts)
	if err != nil {
		return nil, err
	}
	if nerr := stats.NodeErrors(); nerr != nil {
		return out, nerr
	}
	return out, nil
}

// BootstrapCluster is the fault-tolerant distributed bootstrap over a fixed
// node set. The LWE indices start as contiguous shards, one per node plus
// one for the primary; any shard a secondary cannot finish — connection
// error, frame corruption, timeout, death mid-stream — is retried (with
// exponential backoff and reconnect when the node has a Dial function) and
// then reassigned to the remaining healthy nodes or the primary's local
// compute. The returned Stats say where every rotation actually ran. The
// error is non-nil only when the bootstrap itself could not complete
// (context cancelled, local compute panicked, bad input); per-node failures
// are reported via Stats.NodeErrors.
func (p *Primary) BootstrapCluster(ctx context.Context, ct *rlwe.Ciphertext, nodes []*Node, opts Options) (*rlwe.Ciphertext, *Stats, error) {
	return p.bootstrap(ctx, ct, nodes, nil, opts)
}

// BootstrapElastic is BootstrapCluster over an elastic membership instead
// of a fixed node set: every node currently queued in m (and every node
// that joins while the bootstrap runs) is picked up and starts draining the
// work queue; nodes that leave or miss health probes are drained with their
// pending indices reassigned. Work is cut into tile-sized tasks so a
// mid-run joiner always finds queued work to steal.
func (p *Primary) BootstrapElastic(ctx context.Context, ct *rlwe.Ciphertext, m *Membership, opts Options) (*rlwe.Ciphertext, *Stats, error) {
	return p.bootstrap(ctx, ct, nil, m, opts)
}

// runState is the shared state of one distributed bootstrap run.
type runState struct {
	ctx   context.Context
	prep  *core.PreparedBootstrap
	accs  []*rlwe.Ciphertext
	stats *Stats
	q     *workQueue
	sink  *accSink
	rec   obs.Recorder
	opts  Options
	m     *Membership // nil for fixed-set runs

	// claims dedups hedged work: exactly one worker wins each index, and
	// only the winner stores the accumulator, advances the queue, and feeds
	// the merge sink. Losers are counted as wasted hedges.
	claims []atomic.Bool
	// needDim[i] is the minimal key coverage index i's rotation needs — the
	// prefix-dispatch bound for partially warm joiners.
	needDim []int

	mu          sync.Mutex // guards stats, flights, ests, activeConns, keyHigh
	flights     map[int]*flight
	hedgedIdx   map[int]bool
	ests        map[*NodeStats]*latEstimator
	activeConns map[io.ReadWriter]int // non-nil only when hedging is enabled
	keyHigh     map[string]uint32     // per-name high-water of pushed key chunks

	keyOnce sync.Once
	keyBlob []byte
	keyCRC  uint32
	keyErr  error
}

// flight is one in-flight LWE index: who it was dispatched to and when.
type flight struct {
	ns    *NodeStats
	conn  io.ReadWriter
	start time.Time
}

// complete claims idx and records its accumulator. It returns false when
// another worker already claimed the index — the hedge-race loser, whose
// result is discarded.
func (rs *runState) complete(idx int, acc *rlwe.Ciphertext) bool {
	if !rs.claims[idx].CompareAndSwap(false, true) {
		rs.mu.Lock()
		rs.stats.HedgeWasted++
		rs.mu.Unlock()
		rs.rec.Add(obs.CounterHedgeWasted, 1)
		return false
	}
	rs.accs[idx] = acc
	rs.q.done(1)
	return true
}

// claimed reports whether idx has a winning result already.
func (rs *runState) claimed(idx int) bool { return rs.claims[idx].Load() }

// pendingOf returns the indices of task not yet claimed by any worker —
// the set a failing node's retry or reassignment must cover.
func (rs *runState) pendingOf(task []int) []int {
	pending := make([]int, 0, len(task))
	for _, idx := range task {
		if !rs.claimed(idx) {
			pending = append(pending, idx)
		}
	}
	return pending
}

// estFor returns (lazily creating) the latency estimator for a node.
func (rs *runState) estFor(ns *NodeStats) *latEstimator {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	est := rs.ests[ns]
	if est == nil {
		est = &latEstimator{}
		rs.ests[ns] = est
	}
	return est
}

// down marks a membership node's terminal state (no-op for fixed-set runs).
func (rs *runState) down(name string, st MemberState) {
	if rs.m != nil {
		rs.m.markDown(name, st)
	}
}

func (p *Primary) bootstrap(ctx context.Context, ct *rlwe.Ciphertext, nodes []*Node, m *Membership, opts Options) (*rlwe.Ciphertext, *Stats, error) {
	opts = opts.withDefaults()
	prep, err := p.prepare(ct)
	if err != nil {
		return nil, nil, err
	}
	n := len(prep.LWEs)
	rec := p.Boot.Recorder()
	if m != nil {
		m.SetRecorder(rec)
		// Pick up every node already waiting in the membership.
		for {
			select {
			case node := <-m.joinCh:
				nodes = append(nodes, node)
				continue
			default:
			}
			break
		}
	}

	stats := &Stats{Nodes: make([]*NodeStats, len(nodes)), Total: n}
	for k := range nodes {
		name := nodes[k].Name
		if name == "" {
			name = fmt.Sprintf("secondary-%d", k)
		}
		stats.Nodes[k] = &NodeStats{Name: name, Joined: nodes[k].joined}
		if nodes[k].joined {
			stats.Joined++
		}
	}

	q := newWorkQueue(n)
	// Streaming repack (§V): every accumulator is fed to the merge collector
	// the moment it arrives — from the network read loops and the local
	// workers alike — so the merge tree runs concurrently with the
	// blind-rotate/network tail and Finish only has the trace left to do.
	mc, err := p.Boot.NewMergeCollector(n)
	if err != nil {
		return nil, nil, err
	}
	q.rec = rec
	sink := &accSink{mc: mc, q: q}

	rs := &runState{
		ctx:       ctx,
		prep:      prep,
		accs:      make([]*rlwe.Ciphertext, n),
		stats:     stats,
		q:         q,
		sink:      sink,
		rec:       rec,
		opts:      opts,
		m:         m,
		claims:    make([]atomic.Bool, n),
		needDim:   make([]int, n),
		flights:   make(map[int]*flight),
		hedgedIdx: make(map[int]bool),
		ests:      make(map[*NodeStats]*latEstimator),
		keyHigh:   make(map[string]uint32),
	}
	twoN := uint64(2 * p.Boot.Params.N())
	for i, lwe := range prep.LWEs {
		rs.needDim[i] = lweNeedDim(lwe, twoN)
	}
	if opts.HedgeAfter > 0 {
		rs.activeConns = make(map[io.ReadWriter]int)
	}

	if m == nil {
		// Contiguous shards as in the paper's Figure 4: node k is pinned to
		// shard k, the primary's own share goes on the queue. The queue also
		// receives every reassigned index; all workers (secondaries
		// included) drain it once their pinned shard is done, so a fast
		// healthy node picks up a dead node's work.
		parts := len(nodes) + 1
		chunk := (n + parts - 1) / parts
		shard := func(k int) []int {
			lo, hi := k*chunk, (k+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				return nil
			}
			idxs := make([]int, hi-lo)
			for i := range idxs {
				idxs[i] = lo + i
			}
			return idxs
		}
		q.push(shard(len(nodes)))
		return p.runBootstrap(rs, nodes, shard, mc)
	}

	// Elastic: no pinned shards — the whole index space goes on the queue
	// in tile-sized tasks, so a node that joins mid-run always finds work
	// left to steal.
	tile := p.Boot.TileSize()
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		task := make([]int, hi-lo)
		for i := range task {
			task[i] = lo + i
		}
		q.push(task)
	}
	return p.runBootstrap(rs, nodes, func(int) []int { return nil }, mc)
}

// runBootstrap runs the fan-out phase over the initial nodes (plus any
// membership joiners), waits for completion, and finishes the repack.
func (p *Primary) runBootstrap(rs *runState, nodes []*Node, shard func(int) []int, mc *core.MergeCollector) (*rlwe.Ciphertext, *Stats, error) {
	ctx, q, rec, stats, opts := rs.ctx, rs.q, rs.rec, rs.stats, rs.opts

	// Propagate cancellation into the queue.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				q.abort()
			case <-stop:
			}
		}()
	}
	// Hedge monitor and loser cancellation (only when hedging is on: in a
	// hedge-free run no connection can be mid-stream once the queue drains,
	// so there is nothing to cancel).
	if opts.HedgeAfter > 0 {
		go rs.hedgeMonitor(stop)
		go func() {
			select {
			case <-q.doneCh:
				rs.mu.Lock()
				conns := make([]io.ReadWriter, 0, len(rs.activeConns))
				for c := range rs.activeConns {
					conns = append(conns, c)
				}
				rs.mu.Unlock()
				for _, c := range conns {
					closeConn(c)
				}
			case <-stop:
			}
		}()
	}

	// The whole fan-out — network dispatch, remote rotations, local fallback
	// compute, and the streamed portion of the merge tree — is the pipeline's
	// BlindRotate phase; per-node and per-worker activity lands on shard
	// lanes inside it (nodes on lanes 0..len(nodes)-1, local workers after).
	brTok := rec.Begin(obs.StageBlindRotate, obs.LanePipeline)
	var wg sync.WaitGroup
	for k := range nodes {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			p.runNode(ctx, nodes[k], stats.Nodes[k], k, shard(k), rs)
		}(k)
	}

	lw := opts.LocalWorkers
	if lw <= 0 {
		lw = p.Boot.Cfg.Workers
	}
	if lw < 1 {
		lw = 1
	}
	localErrs := make([]error, lw)
	for w := 0; w < lw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localErrs[w] = p.runLocal(len(nodes)+w, rs)
		}(w)
	}

	// Membership joiners: consumed for as long as the run has work left.
	var joinWG sync.WaitGroup
	if rs.m != nil {
		joinWG.Add(1)
		go func() {
			defer joinWG.Done()
			lane := len(nodes) + lw
			for {
				select {
				case node := <-rs.m.joinCh:
					ns := &NodeStats{Name: node.Name, Joined: true}
					rs.mu.Lock()
					stats.Nodes = append(stats.Nodes, ns)
					stats.Joined++
					rs.mu.Unlock()
					joinWG.Add(1)
					go func(node *Node, ns *NodeStats, lane int) {
						defer joinWG.Done()
						p.runNode(ctx, node, ns, lane, nil, rs)
					}(node, ns, lane)
					lane++
				case <-q.doneCh:
					return
				case <-stop:
					return
				}
			}
		}()
	}

	wg.Wait()
	joinWG.Wait()
	// Discard hedged duplicates still queued (their indices all completed
	// elsewhere), balancing the queue-depth gauge.
	q.drain()
	rec.End(obs.StageBlindRotate, obs.LanePipeline, brTok)

	prep, accs, sink, n := rs.prep, rs.accs, rs.sink, rs.stats.Total
	if missing := prep.Missing(accs); len(missing) != 0 {
		errs := []error{fmt.Errorf("cluster: bootstrap incomplete: %d of %d rotations missing", len(missing), n)}
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
		}
		errs = append(errs, localErrs...)
		if serr := sink.takeErr(); serr != nil {
			errs = append(errs, serr)
		}
		if nerr := stats.NodeErrors(); nerr != nil {
			errs = append(errs, nerr)
		}
		return nil, stats, errors.Join(errs...)
	}
	if serr := sink.takeErr(); serr != nil {
		return nil, stats, serr
	}
	// The streamed merge tree ran inside the BlindRotate phase; what is left
	// of Repack here is only the final bookkeeping read.
	rpTok := rec.Begin(obs.StageRepack, obs.LanePipeline)
	merged, err := mc.Merged()
	rec.End(obs.StageRepack, obs.LanePipeline, rpTok)
	if err != nil {
		return nil, stats, err
	}
	out, err := p.finishMerged(prep, merged)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// hedgeMonitor watches in-flight indices and speculatively requeues any
// that age past max(HedgeAfter, HedgeMultiplier × the owning node's p99
// per-index latency). Each index is hedged at most once per run; the claim
// table arbitrates the race.
func (rs *runState) hedgeMonitor(stop <-chan struct{}) {
	tick := rs.opts.HedgeAfter / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-rs.q.doneCh:
			return
		case <-stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var hedged []int
		rs.mu.Lock()
		for idx, fl := range rs.flights {
			if rs.hedgedIdx[idx] || rs.claimed(idx) {
				continue
			}
			thr := rs.opts.HedgeAfter
			if est := rs.ests[fl.ns]; est != nil {
				if byP99 := time.Duration(rs.opts.HedgeMultiplier) * est.p99(); byP99 > thr {
					thr = byP99
				}
			}
			if now.Sub(fl.start) > thr {
				rs.hedgedIdx[idx] = true
				hedged = append(hedged, idx)
			}
		}
		rs.stats.Hedged += len(hedged)
		rs.mu.Unlock()
		if len(hedged) > 0 {
			rs.rec.Add(obs.CounterHedges, uint64(len(hedged)))
			rs.q.push(hedged)
		}
	}
}

// accSink feeds arriving accumulators into the merge collector from the
// goroutine that received them. A merge failure (or panic) is latched and
// aborts the work queue: the bootstrap cannot complete without its tree.
type accSink struct {
	mc  *core.MergeCollector
	q   *workQueue
	mu  sync.Mutex
	err error
}

// deliver hands accumulator idx to the collector, performing whatever merges
// it completes right here in the delivering goroutine.
func (s *accSink) deliver(idx int, acc *rlwe.Ciphertext) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cluster: merge of accumulator %d: %v", idx, r)
			}
		}()
		return s.mc.Add(idx, acc)
	}()
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		s.q.abort()
	}
}

func (s *accSink) takeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dispatch sentinels: conditions runNode handles as drains rather than
// failures.
var (
	errNodeLeft     = errors.New("cluster: node requested leave")
	errBatchRefused = errors.New("cluster: node refused batch (not key-warm enough)")
)

// runNode feeds one secondary until the queue drains or the node
// permanently fails, reassigning whatever it could not finish. For cold
// membership joiners it first streams the blind-rotate key (resumable,
// interleaving prefix-bounded work between chunks); on idle connections it
// exchanges health probes, draining the node after K consecutive misses.
func (p *Primary) runNode(ctx context.Context, node *Node, ns *NodeStats, lane int, initial []int, rs *runState) {
	q, opts := rs.q, rs.opts
	conn := node.Conn
	handshaken := node.joined // join handshake already covered params
	rng := &splitmix{s: opts.JitterSeed ^ hashName(ns.Name)}
	var batch uint32
	attempts := 0
	probeMisses := 0
	resend := false

	giveUp := func(task []int, err error) {
		pending := rs.pendingOf(task)
		rs.mu.Lock()
		ns.Failed = true
		ns.Err = fmt.Errorf("cluster: shard %q: %w", ns.Name, err)
		rs.stats.Reassigned += len(pending)
		rs.mu.Unlock()
		rs.down(ns.Name, MemberDead)
		if conn != nil {
			closeConn(conn)
		}
		q.push(pending)
	}
	leave := func(task []int) {
		pending := rs.pendingOf(task)
		rs.mu.Lock()
		ns.Left = true
		rs.stats.Reassigned += len(pending)
		rs.mu.Unlock()
		rs.down(ns.Name, MemberLeft)
		if conn != nil {
			closeConn(conn)
		}
		q.push(pending)
	}

	// pop draws the next task; with probing enabled it wakes up on idle
	// ticks to exchange a health probe first.
	pop := func() []int {
		if opts.ProbeInterval <= 0 || conn == nil {
			return q.pop()
		}
		for {
			task, done := q.popTimeout(opts.ProbeInterval)
			if done || task != nil {
				return task
			}
			err := p.probeNode(conn, rng, opts)
			switch {
			case err == nil:
				probeMisses = 0
				rs.rec.Add(obs.CounterProbes, 1)
			case errors.Is(err, errNodeLeft):
				leave(nil)
				return nil
			default:
				probeMisses++
				rs.rec.Add(obs.CounterProbeMisses, 1)
				if probeMisses >= opts.ProbeMisses {
					giveUp(nil, fmt.Errorf("missed %d health probes: %w", probeMisses, err))
					return nil
				}
			}
		}
	}

	// Cold joiners: stream the key before (and interleaved with) work.
	if node.needsKey && conn != nil {
		if err := p.uploadKey(node, ns, lane, conn, rs, &batch); err != nil {
			if errors.Is(err, errNodeLeft) {
				leave(nil)
			} else {
				giveUp(nil, fmt.Errorf("key upload: %w", err))
			}
			return
		}
		node.needsKey = false
	}

	task := initial
	if len(task) == 0 {
		task = pop()
	}
	for task != nil {
		// Ensure a live, handshaken connection, dialing if needed.
		if conn == nil {
			if node.Dial == nil {
				giveUp(task, errors.New("no connection and no dial function"))
				return
			}
			c, err := node.Dial()
			if err != nil {
				attempts++
				rs.mu.Lock()
				ns.Retries++
				rs.mu.Unlock()
				if attempts > opts.MaxRetries {
					giveUp(task, fmt.Errorf("dial failed after %d attempts: %w", attempts, err))
					return
				}
				if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
					giveUp(task, ctx.Err())
					return
				}
				continue
			}
			conn = c
			handshaken = false
		}
		if !handshaken {
			if err := p.handshake(conn, opts); err != nil {
				// Could be a flaky link (retryable via redial) or a genuine
				// version/params mismatch (the redial will fail identically
				// and exhaust the retry budget).
				closeConn(conn)
				conn = nil
				attempts++
				if node.Dial == nil || attempts > opts.MaxRetries {
					giveUp(task, err)
					return
				}
				rs.mu.Lock()
				ns.Retries++
				rs.mu.Unlock()
				if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
					giveUp(task, ctx.Err())
					return
				}
				continue
			}
			handshaken = true
		}

		err := p.dispatchBatch(conn, batch, lane, resend, task, ns, rs)
		batch++
		if err == nil {
			attempts = 0
			resend = false
			task = pop()
			continue
		}
		if errors.Is(err, errNodeLeft) {
			leave(task)
			return
		}
		if errors.Is(err, errBatchRefused) {
			// The node is not key-warm enough for this task. Requeue it for
			// someone else and back off briefly — the connection is fine.
			q.push(rs.pendingOf(task))
			if !sleepBackoff(ctx, q, backoff(opts, 1, rng)) {
				return
			}
			resend = false
			task = pop()
			continue
		}

		// The stream is unrecoverable mid-batch: drop the conn, keep the
		// indices that did complete, and retry or reassign the rest.
		closeConn(conn)
		conn = nil
		handshaken = false
		task = rs.pendingOf(task)
		if len(task) == 0 {
			// Every accumulator arrived before the stream broke (e.g. a
			// corrupted batch-end frame) — nothing to retry.
			resend = false
			task = pop()
			continue
		}
		resend = true
		attempts++
		if node.Dial == nil || attempts > opts.MaxRetries {
			giveUp(task, err)
			return
		}
		rs.mu.Lock()
		ns.Retries++
		rs.mu.Unlock()
		if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
			giveUp(task, ctx.Err())
			return
		}
	}
}

// probeNode sends one health probe and waits for its ack (skipping stale
// acks from previous rounds).
func (p *Primary) probeNode(conn io.ReadWriter, rng *splitmix, opts Options) error {
	rec := p.Boot.Recorder()
	disarm := armTimeout(conn, opts.ProbeTimeout)
	defer disarm()
	nonce := rng.next()
	payload := encodeProbe(nonce)
	if err := writeFrame(conn, &frame{Kind: frameProbe, Payload: payload}); err != nil {
		return fmt.Errorf("cluster: probe send: %w", err)
	}
	rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
	for {
		f, err := readFrame(conn, maxErrorPayload)
		if err != nil {
			return fmt.Errorf("cluster: probe reply: %w", err)
		}
		rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
		switch f.Kind {
		case frameProbeAck:
			got, err := decodeProbe(f.Payload)
			if err != nil {
				return err
			}
			if got == nonce {
				return nil
			}
			// Stale ack from a timed-out round; keep waiting for ours.
		case frameLeave:
			return errNodeLeft
		case frameError:
			return fmt.Errorf("cluster: probe refused: %s", f.Payload)
		default:
			return fmt.Errorf("cluster: unexpected frame kind %#x in probe exchange", f.Kind)
		}
	}
}

// uploadKey streams the blind-rotate key to a cold joiner, resuming from
// the receiver's last acked chunk, and dispatches prefix-bounded tasks
// between chunks so the joiner serves shards for the keys it already holds
// while the rest of the key is in flight.
func (p *Primary) uploadKey(node *Node, ns *NodeStats, lane int, conn io.ReadWriter, rs *runState, batch *uint32) error {
	blob, crc, err := rs.keyBlobBytes(p)
	if err != nil {
		return err
	}
	params := p.Boot.Params.Parameters
	recSize := tfhe.BRKRecordBytes(params)
	hdrSize := tfhe.BRKBlobBytes(params, 0)
	dim := lweDim(p.Boot)

	rs.mu.Lock()
	high := rs.keyHigh[ns.Name]
	rs.mu.Unlock()
	defer func() {
		rs.mu.Lock()
		rs.keyHigh[ns.Name] = high
		rs.mu.Unlock()
	}()

	onAck := func(ackedChunks int) error {
		ackedBytes := ackedChunks * rs.opts.KeyChunkBytes
		if ackedBytes > len(blob) {
			ackedBytes = len(blob)
		}
		warm := (ackedBytes - hdrSize) / recSize
		if warm < 0 {
			warm = 0
		}
		if warm > dim {
			warm = dim
		}
		for {
			task := rs.q.popBounded(rs.needDim, warm)
			if task == nil {
				return nil
			}
			err := p.dispatchBatch(conn, *batch, lane, false, task, ns, rs)
			*batch++
			if err != nil {
				rs.q.push(rs.pendingOf(task))
				if errors.Is(err, errBatchRefused) {
					return nil // keep uploading; the bound was optimistic
				}
				return err
			}
		}
	}
	return sendKey(conn, blob, crc, rs.opts, p.Boot.Recorder(), &high, onAck)
}

// runLocal is the primary's own compute: it drains queue tasks through the
// key-major tile engine — both its initial shard and anything reassigned
// after a secondary failure. Each task is cut into Tile-sized tiles so the
// BRK streams through cache once per tile, not once per index; finished
// accumulators reach the streaming merge sink tile by tile, preserving the
// repack overlap. A panic here is recovered, surfaced, and aborts the
// bootstrap (the primary cannot fall back to anyone else).
func (p *Primary) runLocal(lane int, rs *runState) error {
	prep, q, sink := rs.prep, rs.q, rs.sink
	rec := p.Boot.Recorder()
	bsc := p.Boot.NewBatchScratch()
	tile := p.Boot.TileSize()
	accTile := make([]*rlwe.Ciphertext, tile)
	lweTile := make([]*rlwe.LWECiphertext, tile)
	idxTile := make([]int, tile)
	for {
		task := q.pop()
		if task == nil {
			return nil
		}
		for lo := 0; lo < len(task); lo += tile {
			if q.isAborted() {
				return nil
			}
			hi := lo + tile
			if hi > len(task) {
				hi = len(task)
			}
			// Skip indices a hedge race already resolved.
			cnt := 0
			for _, idx := range task[lo:hi] {
				if rs.claimed(idx) {
					continue
				}
				idxTile[cnt] = idx
				accTile[cnt] = p.Boot.NewAccumulator()
				lweTile[cnt] = prep.LWEs[idx]
				cnt++
			}
			if cnt == 0 {
				continue
			}
			idxs := idxTile[:cnt]
			tok := rec.Begin(obs.StageBlindRotate, lane)
			err := safeRotateTile(p.Boot, accTile[:cnt], lweTile[:cnt], bsc)
			rec.End(obs.StageBlindRotate, lane, tok)
			if err != nil {
				q.abort()
				return fmt.Errorf("cluster: local blind rotation of indices %v: %w", idxs, err)
			}
			won := 0
			for k, idx := range idxs {
				if rs.complete(idx, accTile[k]) {
					won++
					sink.deliver(idx, accTile[k])
				}
			}
			rs.mu.Lock()
			rs.stats.Local += won
			rs.mu.Unlock()
		}
	}
}

// handshake performs the hello exchange on a fresh connection.
func (p *Primary) handshake(conn io.ReadWriter, opts Options) error {
	disarm := armTimeout(conn, opts.BatchTimeout)
	defer disarm()
	local := helloFor(p.Boot)
	if err := writeFrame(conn, &frame{Kind: frameHello, Payload: local.encode()}); err != nil {
		return fmt.Errorf("cluster: hello send: %w", err)
	}
	f, err := readFrame(conn, maxInt(helloPayloadSize, maxErrorPayload))
	if err != nil {
		return fmt.Errorf("cluster: hello receive: %w", err)
	}
	switch f.Kind {
	case frameHello:
	case frameError:
		return fmt.Errorf("cluster: peer rejected handshake: %s", f.Payload)
	default:
		return fmt.Errorf("cluster: expected hello reply, got frame kind %#x", f.Kind)
	}
	peer, err := decodeHello(f.Payload)
	if err != nil {
		return err
	}
	return local.check(peer)
}

// dispatchBatch sends one LWE batch and collects the accumulator stream,
// marking every index complete as its accumulator arrives, so that a
// failure mid-stream loses only the not-yet-received indices. The batch
// frame carries the primary's deadline budget (BatchTimeout and any context
// deadline, whichever is tighter) so the secondary can abandon work it
// cannot finish in time.
func (p *Primary) dispatchBatch(conn io.ReadWriter, shard uint32, lane int, resend bool, idxs []int, ns *NodeStats, rs *runState) error {
	prep, sink, opts := rs.prep, rs.sink, rs.opts
	rec := p.Boot.Recorder()
	est := rs.estFor(ns)
	disarm := armTimeout(conn, opts.BatchTimeout)
	defer disarm()
	// disarm is idempotent, so the error paths can consult it directly; the
	// old code set a flag from the deferred call, which runs only after the
	// return value is already built, so the timeout annotation was dead code.
	wrap := func(err error) error {
		if disarm() {
			return fmt.Errorf("cluster: batch %d timed out after %v: %w", shard, opts.BatchTimeout, err)
		}
		return err
	}

	// Deadline budget threaded to the secondary via the batch frame's seq
	// field (milliseconds; 0 = unbounded).
	budget := opts.BatchTimeout
	if dl, ok := rs.ctx.Deadline(); ok {
		if rem := time.Until(dl); budget <= 0 || rem < budget {
			budget = rem
		}
	}
	var budgetMs uint32
	if budget > 0 {
		if ms := budget / time.Millisecond; ms > 0 {
			budgetMs = uint32(ms)
		} else {
			budgetMs = 1
		}
	}

	sendTok := rec.Begin(obs.StageNetSend, lane)
	payload, err := encodeBatch(idxs, prep.LWEs)
	if err != nil {
		rec.End(obs.StageNetSend, lane, sendTok)
		return err
	}
	werr := writeFrame(conn, &frame{Kind: frameBatch, Shard: shard, Seq: budgetMs, Payload: payload})
	rec.End(obs.StageNetSend, lane, sendTok)
	rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
	if resend {
		rec.Add(obs.CounterBytesRetried, wireSize(len(payload)))
	}
	if werr != nil {
		return wrap(fmt.Errorf("cluster: batch send: %w", werr))
	}
	start := time.Now()
	rs.mu.Lock()
	ns.Dispatched += len(idxs)
	for _, idx := range idxs {
		rs.flights[idx] = &flight{ns: ns, conn: conn, start: start}
	}
	if rs.activeConns != nil {
		rs.activeConns[conn]++
	}
	rs.mu.Unlock()
	defer func() {
		rs.mu.Lock()
		for _, idx := range idxs {
			if fl := rs.flights[idx]; fl != nil && fl.ns == ns {
				delete(rs.flights, idx)
			}
		}
		if rs.activeConns != nil {
			if rs.activeConns[conn] <= 1 {
				delete(rs.activeConns, conn)
			} else {
				rs.activeConns[conn]--
			}
		}
		rs.mu.Unlock()
	}()

	params := p.Boot.Params.Parameters
	maxPayload := maxInt(accPayloadBound(params), maxErrorPayload)
	want := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		want[idx] = true
	}
	rec.Gauge(obs.GaugeInFlightShards, int64(len(want)))
	// Whatever is still outstanding when the stream ends — cleanly or not —
	// leaves flight here.
	defer func() { rec.Gauge(obs.GaugeInFlightShards, -int64(len(want))) }()
	recvTok := rec.Begin(obs.StageNetRecv, lane)
	defer func() { rec.End(obs.StageNetRecv, lane, recvTok) }()
	for seq := 0; ; {
		f, err := readFrame(conn, maxPayload)
		if err != nil {
			return wrap(err)
		}
		rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
		if f.Kind == frameProbeAck {
			// Stale ack from a probe round that timed out; harmless.
			continue
		}
		if f.Kind == frameLeave {
			return errNodeLeft
		}
		if f.Shard != shard {
			return fmt.Errorf("cluster: frame for shard %d while awaiting shard %d", f.Shard, shard)
		}
		switch f.Kind {
		case frameError:
			return fmt.Errorf("cluster: remote failure: %s", f.Payload)
		case frameBatchRefused:
			if seq != 0 {
				return fmt.Errorf("cluster: batch refused after %d accumulators", seq)
			}
			return errBatchRefused
		case frameAcc:
			if int(f.Seq) != seq {
				return fmt.Errorf("cluster: partial accumulator stream: seq %d, want %d", f.Seq, seq)
			}
			seq++
			if len(want) == 0 {
				return errors.New("cluster: accumulator after batch complete")
			}
			idx, acc, err := decodeAcc(f.Payload, params, len(prep.LWEs))
			if err != nil {
				return err
			}
			if !want[idx] {
				return fmt.Errorf("cluster: accumulator for unrequested index %d", idx)
			}
			delete(want, idx)
			rec.Gauge(obs.GaugeInFlightShards, -1)
			est.add(time.Since(start))
			rs.mu.Lock()
			if fl := rs.flights[idx]; fl != nil && fl.ns == ns {
				delete(rs.flights, idx)
			}
			rs.mu.Unlock()
			if rs.complete(idx, acc) {
				rs.mu.Lock()
				ns.Completed++
				rs.mu.Unlock()
				sink.deliver(idx, acc)
			}
		case frameBatchEnd:
			if int(f.Seq) != seq {
				return fmt.Errorf("cluster: partial accumulator stream: end at seq %d, want %d", f.Seq, seq)
			}
			if len(f.Payload) != 4 || int(u32(f.Payload)) != len(idxs) {
				return fmt.Errorf("cluster: batch-end count mismatch")
			}
			if len(want) != 0 {
				return fmt.Errorf("cluster: batch ended with %d accumulators missing", len(want))
			}
			return nil
		default:
			return fmt.Errorf("cluster: unexpected frame kind %#x in accumulator stream", f.Kind)
		}
	}
}

// prepare wraps core.Prepare, converting its input-validation panics into
// errors.
func (p *Primary) prepare(ct *rlwe.Ciphertext) (prep *core.PreparedBootstrap, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: prepare: %v", r)
		}
	}()
	return p.Boot.Prepare(ct), nil
}

// finishMerged wraps core.FinishMerged the same way.
func (p *Primary) finishMerged(prep *core.PreparedBootstrap, merged *rlwe.Ciphertext) (out *rlwe.Ciphertext, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: finish: %v", r)
		}
	}()
	return p.Boot.FinishMerged(prep, merged)
}

// safeRotateTile runs BlindRotateTile with panic recovery, so one malformed
// LWE ciphertext cannot take down a node. The caller owns the accumulators
// and the arena; on error the accumulators' contents are unspecified.
func safeRotateTile(bt *core.Bootstrapper, accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, bsc *tfhe.BatchScratch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	bt.BlindRotateTile(accs, lwes, bsc)
	return nil
}

// sleepBackoff waits d, returning false if the context aborts first.
func sleepBackoff(ctx context.Context, q *workQueue, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return !q.isAborted()
	case <-ctx.Done():
		return false
	}
}

// Shutdown tells a secondary to stop serving.
func Shutdown(conn io.Writer) error {
	return writeFrame(conn, &frame{Kind: frameShutdown})
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
