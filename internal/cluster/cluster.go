// Package cluster realizes the paper's §V multi-node system (Figure 4) with
// real byte streams: a primary node runs steps 1–2 of Algorithm 2, fans the
// independent LWE ciphertexts out to secondary nodes over duplex
// connections (the software analog of the 100G CMAC links — net.Pipe in
// tests, net.Conn for actual TCP deployments), the secondaries blind-rotate
// and stream their accumulator ciphertexts back as soon as each completes,
// and the primary repacks and finishes the bootstrap.
//
// Key material is generated offline on every node from the shared seed,
// matching the paper's "brk public keys can be computed offline and must be
// generated in advance" — no secret ever crosses a connection.
package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"heap/internal/core"
	"heap/internal/rlwe"
)

// message kinds on the wire.
const (
	msgBatch    = uint32(0xB007_0001) // primary → secondary: LWE batch
	msgAccs     = uint32(0xB007_0002) // secondary → primary: accumulators
	msgShutdown = uint32(0xB007_00FF)
)

// Secondary serves blind-rotation work over a connection. It owns a full
// bootstrapper (keys generated offline from the shared seed) but only ever
// executes BlindRotateOne.
type Secondary struct {
	Boot *core.Bootstrapper
}

// Serve processes batches until shutdown or connection close. Every
// accumulator is streamed back immediately after its rotation completes,
// mirroring the paper's "a secondary FPGA starts sending the resultant
// ciphertext ... as soon as the BlindRotate operation is completed".
func (s *Secondary) Serve(conn io.ReadWriter) error {
	for {
		var kind uint32
		if err := binary.Read(conn, binary.LittleEndian, &kind); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch kind {
		case msgShutdown:
			return nil
		case msgBatch:
			var count uint32
			if err := binary.Read(conn, binary.LittleEndian, &count); err != nil {
				return err
			}
			lwes := make([]*rlwe.LWECiphertext, count)
			for i := range lwes {
				lwe, err := rlwe.ReadLWECiphertext(conn)
				if err != nil {
					return err
				}
				lwes[i] = lwe
			}
			if err := binary.Write(conn, binary.LittleEndian, msgAccs); err != nil {
				return err
			}
			for _, lwe := range lwes {
				acc := s.Boot.BlindRotateOne(lwe)
				if _, err := acc.WriteTo(conn); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("cluster: unknown message kind %#x", kind)
		}
	}
}

// Primary drives a distributed bootstrap over a set of connections to
// secondaries. With zero connections it degrades to local execution.
type Primary struct {
	Boot *core.Bootstrapper
}

// Bootstrap distributes the blind rotations round-robin across the
// secondaries (plus the primary itself working its own share locally) and
// finishes the repacking.
func (p *Primary) Bootstrap(ct *rlwe.Ciphertext, conns []io.ReadWriter) (*rlwe.Ciphertext, error) {
	prep := p.Boot.Prepare(ct)
	n := len(prep.LWEs)
	nodes := len(conns) + 1 // secondaries + the primary's own compute
	accs := make([]*rlwe.Ciphertext, n)

	// Contiguous shards: node k gets indices [k·chunk, (k+1)·chunk).
	chunk := (n + nodes - 1) / nodes
	var wg sync.WaitGroup
	errs := make([]error, nodes)

	for k := 0; k < len(conns); k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			errs[k] = p.dispatch(conns[k], prep.LWEs[lo:hi], accs[lo:hi])
		}(k, lo, hi)
	}
	// The primary's own share is the last shard.
	lo := len(conns) * chunk
	if lo < n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < n; i++ {
				accs[i] = p.Boot.BlindRotateOne(prep.LWEs[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p.Boot.Finish(prep, accs), nil
}

// dispatch sends one LWE batch and collects the accumulators.
func (p *Primary) dispatch(conn io.ReadWriter, lwes []*rlwe.LWECiphertext, out []*rlwe.Ciphertext) error {
	if err := binary.Write(conn, binary.LittleEndian, msgBatch); err != nil {
		return err
	}
	if err := binary.Write(conn, binary.LittleEndian, uint32(len(lwes))); err != nil {
		return err
	}
	for _, lwe := range lwes {
		if _, err := lwe.WriteTo(conn); err != nil {
			return err
		}
	}
	var kind uint32
	if err := binary.Read(conn, binary.LittleEndian, &kind); err != nil {
		return err
	}
	if kind != msgAccs {
		return fmt.Errorf("cluster: expected accumulator stream, got %#x", kind)
	}
	for i := range out {
		acc, err := rlwe.ReadCiphertext(conn, p.Boot.Params.Parameters)
		if err != nil {
			return err
		}
		out[i] = acc
	}
	return nil
}

// Shutdown tells a secondary to stop serving.
func Shutdown(conn io.Writer) error {
	return binary.Write(conn, binary.LittleEndian, msgShutdown)
}
