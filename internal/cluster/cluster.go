// Package cluster realizes the paper's §V multi-node system (Figure 4) with
// real byte streams: a primary node runs steps 1–2 of Algorithm 2, fans the
// independent LWE ciphertexts out to secondary nodes over duplex
// connections (the software analog of the 100G CMAC links — net.Pipe in
// tests, net.Conn for actual TCP deployments), the secondaries blind-rotate
// and stream their accumulator ciphertexts back as soon as each completes,
// and the primary repacks and finishes the bootstrap.
//
// The layer is fault-tolerant: because the n extracted LWE ciphertexts are
// mutually independent (the property §V exploits for parallelism), a lost
// node costs only its unfinished shard. The wire protocol is framed and
// CRC32-checksummed with a version/params handshake (frame.go), batches
// carry per-shard sequence numbers so partial accumulator streams are
// detected, failed or wedged secondaries are retried with exponential
// backoff and their pending LWE indices reassigned to healthy nodes or the
// primary's own BlindRotateOne (scheduler.go), and the whole failure matrix
// is exercised deterministically by the FaultConn chaos wrapper (chaos.go).
// A bootstrap therefore always completes — bit-identical to local execution
// — as long as the primary itself survives, degrading gracefully to pure
// local compute with zero live peers.
//
// Key material is generated offline on every node from the shared seed,
// matching the paper's "brk public keys can be computed offline and must be
// generated in advance" — no secret ever crosses a connection.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// Secondary serves blind-rotation work over a connection. It owns a full
// bootstrapper (keys generated offline from the shared seed) but only ever
// executes BlindRotateOne.
type Secondary struct {
	Boot *core.Bootstrapper
}

// Serve processes batches until shutdown or connection close. The first
// frame must be the hello handshake (version + parameter digest); batch
// counts, LWE indices, dimensions, and moduli are all validated against the
// secondary's own parameters before any allocation, so a lying primary can
// neither crash the node nor make it allocate unboundedly. Every
// accumulator is streamed back immediately after its rotation completes —
// with its LWE index and a per-shard sequence number — mirroring the
// paper's "a secondary FPGA starts sending the resultant ciphertext ... as
// soon as the BlindRotate operation is completed".
func (s *Secondary) Serve(conn io.ReadWriter) error {
	p := s.Boot.Params.Parameters
	rec := s.Boot.Recorder()
	local := helloFor(s.Boot)
	maxBatch := p.N()
	dim := lweDim(s.Boot)
	maxPayload := maxInt(helloPayloadSize, batchPayloadBound(maxBatch, dim))

	fail := func(err error) error {
		// Best-effort structured error so the primary fails fast instead of
		// waiting out its deadline; the connection is dead either way.
		msg := err.Error()
		if len(msg) > maxErrorPayload {
			msg = msg[:maxErrorPayload]
		}
		_ = writeFrame(conn, &frame{Kind: frameError, Payload: []byte(msg)})
		return err
	}

	// Handshake: hello in, hello out. A bare shutdown of a never-used
	// connection is also accepted.
	f, err := readFrame(conn, maxPayload)
	if err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	switch f.Kind {
	case frameShutdown:
		return nil
	case frameHello:
		peer, err := decodeHello(f.Payload)
		if err != nil {
			return fail(err)
		}
		if err := local.check(peer); err != nil {
			return fail(err)
		}
		if err := writeFrame(conn, &frame{Kind: frameHello, Payload: local.encode()}); err != nil {
			return err
		}
	default:
		return fail(fmt.Errorf("cluster: expected hello, got frame kind %#x", f.Kind))
	}

	// Recycled accumulators, reused across batches for the connection's
	// life: tiles in flight hold at most workers×tile accumulators live, and
	// each is returned to the free list as soon as it is framed, so a large
	// batch never materializes all of its accumulators at once.
	var (
		accMu   sync.Mutex
		freeAcc []*rlwe.Ciphertext
	)
	getAcc := func() *rlwe.Ciphertext {
		accMu.Lock()
		if n := len(freeAcc); n > 0 {
			a := freeAcc[n-1]
			freeAcc = freeAcc[:n-1]
			accMu.Unlock()
			return a
		}
		accMu.Unlock()
		return s.Boot.NewAccumulator()
	}
	putAcc := func(a *rlwe.Ciphertext) {
		accMu.Lock()
		freeAcc = append(freeAcc, a)
		accMu.Unlock()
	}
	for {
		f, err := readFrame(conn, maxPayload)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch f.Kind {
		case frameShutdown:
			return nil
		case frameBatch:
			if f.Seq != 0 {
				return fail(fmt.Errorf("cluster: batch frame with seq %d", f.Seq))
			}
			idxs, lwes, err := decodeBatch(f.Payload, maxBatch, dim, uint64(2*p.N()))
			if err != nil {
				return fail(err)
			}
			// The whole dispatch batch runs through the key-major engine as
			// one batch (§V: one shared key, many shards), so the BRK streams
			// once per tile instead of once per LWE. Each finished tile is
			// framed and sent the moment it completes — the "send as soon as
			// BlindRotate completes" overlap — with sequence numbers stamped
			// in completion order (the primary resolves accumulators by
			// index, not order). One BlindRotate span covers the batch
			// (lane 0); the engine's per-tile spans land on lanes ≥ 1, so
			// traces stay bounded at large shard counts.
			accs := make([]*rlwe.Ciphertext, len(lwes))
			var (
				sendMu  sync.Mutex
				seq     uint32
				sendErr error
			)
			tok := rec.Begin(obs.StageBlindRotate, 0)
			err = s.Boot.BlindRotateBatch(accs, lwes, tfhe.BatchOptions{
				Workers:  s.Boot.Cfg.Workers,
				BaseLane: 1,
				NewAcc:   getAcc,
				OnTile: func(lo, hi int) error {
					sendMu.Lock()
					defer sendMu.Unlock()
					if sendErr != nil {
						return sendErr
					}
					for j := lo; j < hi; j++ {
						payload, err := encodeAcc(idxs[j], accs[j])
						if err == nil {
							err = writeFrame(conn, &frame{Kind: frameAcc, Shard: f.Shard, Seq: seq, Payload: payload})
						}
						if err != nil {
							sendErr = err
							return err
						}
						seq++
						rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
						putAcc(accs[j])
						accs[j] = nil
					}
					return nil
				},
			})
			rec.End(obs.StageBlindRotate, 0, tok)
			if err != nil {
				if sendErr != nil {
					return sendErr // the link itself is dead; no error frame can reach the primary
				}
				return fail(fmt.Errorf("cluster: batch %d: %w", f.Shard, err))
			}
			endPayload := make([]byte, 4)
			putU32(endPayload, uint32(len(lwes)))
			if err := writeFrame(conn, &frame{Kind: frameBatchEnd, Shard: f.Shard, Seq: uint32(len(lwes)), Payload: endPayload}); err != nil {
				return err
			}
			rec.Add(obs.CounterBytesFramed, wireSize(len(endPayload)))
		default:
			return fail(fmt.Errorf("cluster: unknown message kind %#x", f.Kind))
		}
	}
}

// Primary drives a distributed bootstrap over a set of connections to
// secondaries. With zero connections (or zero healthy ones) it degrades to
// local execution.
type Primary struct {
	Boot *core.Bootstrapper
}

// Bootstrap distributes the blind rotations across the secondaries (plus
// the primary itself working its own share locally) and finishes the
// repacking. It is the strict entry point kept for single-shot callers: the
// bootstrap itself is fault-tolerant, but if any node failed along the way
// the (still correct) result is accompanied by a joined error naming each
// failed shard. Use BootstrapCluster for graceful-degradation semantics
// with per-shard stats.
func (p *Primary) Bootstrap(ct *rlwe.Ciphertext, conns []io.ReadWriter) (*rlwe.Ciphertext, error) {
	nodes := make([]*Node, len(conns))
	for i, c := range conns {
		nodes[i] = &Node{Conn: c, Name: fmt.Sprintf("secondary-%d", i)}
	}
	// Seed-compatible semantics: no per-batch deadline (a wedged peer blocks,
	// as it always did here). Callers who want timeouts use BootstrapCluster.
	opts := DefaultOptions()
	opts.BatchTimeout = 0
	out, stats, err := p.BootstrapCluster(context.Background(), ct, nodes, opts)
	if err != nil {
		return nil, err
	}
	if nerr := stats.NodeErrors(); nerr != nil {
		return out, nerr
	}
	return out, nil
}

// BootstrapCluster is the fault-tolerant distributed bootstrap. The LWE
// indices start as contiguous shards, one per node plus one for the
// primary; any shard a secondary cannot finish — connection error, frame
// corruption, timeout, death mid-stream — is retried (with exponential
// backoff and reconnect when the node has a Dial function) and then
// reassigned to the remaining healthy nodes or the primary's local
// BlindRotateOne. The returned Stats say where every rotation actually ran.
// The error is non-nil only when the bootstrap itself could not complete
// (context cancelled, local compute panicked, bad input); per-node failures
// are reported via Stats.NodeErrors.
func (p *Primary) BootstrapCluster(ctx context.Context, ct *rlwe.Ciphertext, nodes []*Node, opts Options) (*rlwe.Ciphertext, *Stats, error) {
	opts = opts.withDefaults()
	prep, err := p.prepare(ct)
	if err != nil {
		return nil, nil, err
	}
	n := len(prep.LWEs)
	accs := make([]*rlwe.Ciphertext, n)
	stats := &Stats{Nodes: make([]NodeStats, len(nodes)), Total: n}
	for k := range nodes {
		stats.Nodes[k].Name = nodes[k].Name
		if stats.Nodes[k].Name == "" {
			stats.Nodes[k].Name = fmt.Sprintf("secondary-%d", k)
		}
	}

	// Contiguous shards as in the paper's Figure 4: node k is pinned to
	// shard k, the primary's own share goes on the queue. The queue also
	// receives every reassigned index; all workers (secondaries included)
	// drain it once their pinned shard is done, so a fast healthy node
	// picks up a dead node's work.
	q := newWorkQueue(n)
	// Streaming repack (§V): every accumulator is fed to the merge collector
	// the moment it arrives — from the network read loops and the local
	// workers alike — so the merge tree runs concurrently with the
	// blind-rotate/network tail and Finish only has the trace left to do.
	mc, err := p.Boot.NewMergeCollector(n)
	if err != nil {
		return nil, nil, err
	}
	rec := p.Boot.Recorder()
	q.rec = rec
	sink := &accSink{mc: mc, q: q}
	parts := len(nodes) + 1
	chunk := (n + parts - 1) / parts
	shard := func(k int) []int {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return nil
		}
		idxs := make([]int, hi-lo)
		for i := range idxs {
			idxs[i] = lo + i
		}
		return idxs
	}
	q.push(shard(len(nodes)))

	// Propagate cancellation into the queue.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				q.abort()
			case <-stop:
			}
		}()
	}

	// The whole fan-out — network dispatch, remote rotations, local fallback
	// compute, and the streamed portion of the merge tree — is the pipeline's
	// BlindRotate phase; per-node and per-worker activity lands on shard
	// lanes inside it (nodes on lanes 0..len(nodes)-1, local workers after).
	brTok := rec.Begin(obs.StageBlindRotate, obs.LanePipeline)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards stats
	for k := range nodes {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			p.runNode(ctx, nodes[k], &stats.Nodes[k], k, shard(k), prep, accs, q, sink, stats, &mu, opts)
		}(k)
	}

	lw := opts.LocalWorkers
	if lw <= 0 {
		lw = p.Boot.Cfg.Workers
	}
	if lw < 1 {
		lw = 1
	}
	localErrs := make([]error, lw)
	for w := 0; w < lw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localErrs[w] = p.runLocal(len(nodes)+w, prep, accs, q, sink, stats, &mu)
		}(w)
	}
	wg.Wait()
	rec.End(obs.StageBlindRotate, obs.LanePipeline, brTok)

	if missing := prep.Missing(accs); len(missing) != 0 {
		errs := []error{fmt.Errorf("cluster: bootstrap incomplete: %d of %d rotations missing", len(missing), n)}
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
		}
		errs = append(errs, localErrs...)
		if serr := sink.takeErr(); serr != nil {
			errs = append(errs, serr)
		}
		if nerr := stats.NodeErrors(); nerr != nil {
			errs = append(errs, nerr)
		}
		return nil, stats, errors.Join(errs...)
	}
	if serr := sink.takeErr(); serr != nil {
		return nil, stats, serr
	}
	// The streamed merge tree ran inside the BlindRotate phase; what is left
	// of Repack here is only the final bookkeeping read.
	rpTok := rec.Begin(obs.StageRepack, obs.LanePipeline)
	merged, err := mc.Merged()
	rec.End(obs.StageRepack, obs.LanePipeline, rpTok)
	if err != nil {
		return nil, stats, err
	}
	out, err := p.finishMerged(prep, merged)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// accSink feeds arriving accumulators into the merge collector from the
// goroutine that received them. A merge failure (or panic) is latched and
// aborts the work queue: the bootstrap cannot complete without its tree.
type accSink struct {
	mc  *core.MergeCollector
	q   *workQueue
	mu  sync.Mutex
	err error
}

// deliver hands accumulator idx to the collector, performing whatever merges
// it completes right here in the delivering goroutine.
func (s *accSink) deliver(idx int, acc *rlwe.Ciphertext) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cluster: merge of accumulator %d: %v", idx, r)
			}
		}()
		return s.mc.Add(idx, acc)
	}()
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		s.q.abort()
	}
}

func (s *accSink) takeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// runNode feeds one secondary until the queue drains or the node
// permanently fails, reassigning whatever it could not finish.
func (p *Primary) runNode(ctx context.Context, node *Node, ns *NodeStats, lane int, initial []int, prep *core.PreparedBootstrap,
	accs []*rlwe.Ciphertext, q *workQueue, sink *accSink, stats *Stats, mu *sync.Mutex, opts Options) {

	conn := node.Conn
	handshaken := false
	rng := &splitmix{s: opts.JitterSeed ^ hashName(ns.Name)}
	var batch uint32
	attempts := 0
	resend := false

	giveUp := func(task []int, err error) {
		pending := pendingOf(task, accs)
		mu.Lock()
		ns.Failed = true
		ns.Err = fmt.Errorf("cluster: shard %q: %w", ns.Name, err)
		stats.Reassigned += len(pending)
		mu.Unlock()
		if conn != nil {
			closeConn(conn)
		}
		q.push(pending)
	}

	task := initial
	if len(task) == 0 {
		task = q.pop()
	}
	for task != nil {
		// Ensure a live, handshaken connection, dialing if needed.
		if conn == nil {
			if node.Dial == nil {
				giveUp(task, errors.New("no connection and no dial function"))
				return
			}
			c, err := node.Dial()
			if err != nil {
				attempts++
				mu.Lock()
				ns.Retries++
				mu.Unlock()
				if attempts > opts.MaxRetries {
					giveUp(task, fmt.Errorf("dial failed after %d attempts: %w", attempts, err))
					return
				}
				if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
					giveUp(task, ctx.Err())
					return
				}
				continue
			}
			conn = c
			handshaken = false
		}
		if !handshaken {
			if err := p.handshake(conn, opts); err != nil {
				// Could be a flaky link (retryable via redial) or a genuine
				// version/params mismatch (the redial will fail identically
				// and exhaust the retry budget).
				closeConn(conn)
				conn = nil
				attempts++
				if node.Dial == nil || attempts > opts.MaxRetries {
					giveUp(task, err)
					return
				}
				mu.Lock()
				ns.Retries++
				mu.Unlock()
				if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
					giveUp(task, ctx.Err())
					return
				}
				continue
			}
			handshaken = true
		}

		err := p.dispatchBatch(conn, batch, lane, resend, task, prep, accs, q, sink, ns, mu, opts)
		batch++
		if err == nil {
			attempts = 0
			resend = false
			task = q.pop()
			continue
		}

		// The stream is unrecoverable mid-batch: drop the conn, keep the
		// indices that did complete, and retry or reassign the rest.
		closeConn(conn)
		conn = nil
		handshaken = false
		task = pendingOf(task, accs)
		if len(task) == 0 {
			// Every accumulator arrived before the stream broke (e.g. a
			// corrupted batch-end frame) — nothing to retry.
			resend = false
			task = q.pop()
			continue
		}
		resend = true
		attempts++
		if node.Dial == nil || attempts > opts.MaxRetries {
			giveUp(task, err)
			return
		}
		mu.Lock()
		ns.Retries++
		mu.Unlock()
		if !sleepBackoff(ctx, q, backoff(opts, attempts, rng)) {
			giveUp(task, ctx.Err())
			return
		}
	}
}

// runLocal is the primary's own compute: it drains queue tasks through the
// key-major tile engine — both its initial shard and anything reassigned
// after a secondary failure. Each task is cut into Tile-sized tiles so the
// BRK streams through cache once per tile, not once per index; finished
// accumulators reach the streaming merge sink tile by tile, preserving the
// repack overlap. A panic here is recovered, surfaced, and aborts the
// bootstrap (the primary cannot fall back to anyone else).
func (p *Primary) runLocal(lane int, prep *core.PreparedBootstrap, accs []*rlwe.Ciphertext,
	q *workQueue, sink *accSink, stats *Stats, mu *sync.Mutex) error {

	// The retained accumulators must be fresh per index, but the tile
	// buffers and the kernel scratch are this worker's alone and live for
	// the whole drain.
	rec := p.Boot.Recorder()
	bsc := p.Boot.NewBatchScratch()
	tile := p.Boot.TileSize()
	accTile := make([]*rlwe.Ciphertext, tile)
	lweTile := make([]*rlwe.LWECiphertext, tile)
	for {
		task := q.pop()
		if task == nil {
			return nil
		}
		for lo := 0; lo < len(task); lo += tile {
			if q.isAborted() {
				return nil
			}
			hi := lo + tile
			if hi > len(task) {
				hi = len(task)
			}
			idxs := task[lo:hi]
			for k, idx := range idxs {
				accTile[k] = p.Boot.NewAccumulator()
				lweTile[k] = prep.LWEs[idx]
			}
			tok := rec.Begin(obs.StageBlindRotate, lane)
			err := safeRotateTile(p.Boot, accTile[:len(idxs)], lweTile[:len(idxs)], bsc)
			rec.End(obs.StageBlindRotate, lane, tok)
			if err != nil {
				q.abort()
				return fmt.Errorf("cluster: local blind rotation of indices %v: %w", idxs, err)
			}
			for k, idx := range idxs {
				accs[idx] = accTile[k]
			}
			q.done(len(idxs))
			mu.Lock()
			stats.Local += len(idxs)
			mu.Unlock()
			for k, idx := range idxs {
				sink.deliver(idx, accTile[k])
			}
		}
	}
}

// handshake performs the hello exchange on a fresh connection.
func (p *Primary) handshake(conn io.ReadWriter, opts Options) error {
	disarm := armTimeout(conn, opts.BatchTimeout)
	defer disarm()
	local := helloFor(p.Boot)
	if err := writeFrame(conn, &frame{Kind: frameHello, Payload: local.encode()}); err != nil {
		return fmt.Errorf("cluster: hello send: %w", err)
	}
	f, err := readFrame(conn, maxInt(helloPayloadSize, maxErrorPayload))
	if err != nil {
		return fmt.Errorf("cluster: hello receive: %w", err)
	}
	switch f.Kind {
	case frameHello:
	case frameError:
		return fmt.Errorf("cluster: peer rejected handshake: %s", f.Payload)
	default:
		return fmt.Errorf("cluster: expected hello reply, got frame kind %#x", f.Kind)
	}
	peer, err := decodeHello(f.Payload)
	if err != nil {
		return err
	}
	return local.check(peer)
}

// dispatchBatch sends one LWE batch and collects the accumulator stream,
// marking every index complete as its accumulator arrives, so that a
// failure mid-stream loses only the not-yet-received indices.
func (p *Primary) dispatchBatch(conn io.ReadWriter, shard uint32, lane int, resend bool, idxs []int, prep *core.PreparedBootstrap,
	accs []*rlwe.Ciphertext, q *workQueue, sink *accSink, ns *NodeStats, mu *sync.Mutex, opts Options) error {

	rec := p.Boot.Recorder()
	disarm := armTimeout(conn, opts.BatchTimeout)
	timedOut := false
	defer func() {
		if disarm() {
			timedOut = true
		}
	}()
	wrap := func(err error) error {
		if timedOut {
			return fmt.Errorf("cluster: batch %d timed out after %v: %w", shard, opts.BatchTimeout, err)
		}
		return err
	}

	sendTok := rec.Begin(obs.StageNetSend, lane)
	payload, err := encodeBatch(idxs, prep.LWEs)
	if err != nil {
		rec.End(obs.StageNetSend, lane, sendTok)
		return err
	}
	werr := writeFrame(conn, &frame{Kind: frameBatch, Shard: shard, Seq: 0, Payload: payload})
	rec.End(obs.StageNetSend, lane, sendTok)
	rec.Add(obs.CounterBytesFramed, wireSize(len(payload)))
	if resend {
		rec.Add(obs.CounterBytesRetried, wireSize(len(payload)))
	}
	if werr != nil {
		return wrap(fmt.Errorf("cluster: batch send: %w", werr))
	}
	mu.Lock()
	ns.Dispatched += len(idxs)
	mu.Unlock()

	params := p.Boot.Params.Parameters
	maxPayload := maxInt(accPayloadBound(params), maxErrorPayload)
	want := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		want[idx] = true
	}
	rec.Gauge(obs.GaugeInFlightShards, int64(len(want)))
	// Whatever is still outstanding when the stream ends — cleanly or not —
	// leaves flight here.
	defer func() { rec.Gauge(obs.GaugeInFlightShards, -int64(len(want))) }()
	recvTok := rec.Begin(obs.StageNetRecv, lane)
	defer func() { rec.End(obs.StageNetRecv, lane, recvTok) }()
	for seq := 0; ; seq++ {
		f, err := readFrame(conn, maxPayload)
		if err != nil {
			return wrap(err)
		}
		rec.Add(obs.CounterBytesFramed, wireSize(len(f.Payload)))
		if f.Shard != shard {
			return fmt.Errorf("cluster: frame for shard %d while awaiting shard %d", f.Shard, shard)
		}
		switch f.Kind {
		case frameError:
			return fmt.Errorf("cluster: remote failure: %s", f.Payload)
		case frameAcc:
			if int(f.Seq) != seq {
				return fmt.Errorf("cluster: partial accumulator stream: seq %d, want %d", f.Seq, seq)
			}
			if len(want) == 0 {
				return errors.New("cluster: accumulator after batch complete")
			}
			idx, acc, err := decodeAcc(f.Payload, params, len(prep.LWEs))
			if err != nil {
				return err
			}
			if !want[idx] {
				return fmt.Errorf("cluster: accumulator for unrequested index %d", idx)
			}
			delete(want, idx)
			rec.Gauge(obs.GaugeInFlightShards, -1)
			accs[idx] = acc
			q.done(1)
			mu.Lock()
			ns.Completed++
			mu.Unlock()
			sink.deliver(idx, acc)
		case frameBatchEnd:
			if int(f.Seq) != seq {
				return fmt.Errorf("cluster: partial accumulator stream: end at seq %d, want %d", f.Seq, seq)
			}
			if len(f.Payload) != 4 || int(u32(f.Payload)) != len(idxs) {
				return fmt.Errorf("cluster: batch-end count mismatch")
			}
			if len(want) != 0 {
				return fmt.Errorf("cluster: batch ended with %d accumulators missing", len(want))
			}
			return nil
		default:
			return fmt.Errorf("cluster: unexpected frame kind %#x in accumulator stream", f.Kind)
		}
	}
}

// prepare wraps core.Prepare, converting its input-validation panics into
// errors.
func (p *Primary) prepare(ct *rlwe.Ciphertext) (prep *core.PreparedBootstrap, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: prepare: %v", r)
		}
	}()
	return p.Boot.Prepare(ct), nil
}

// finishMerged wraps core.FinishMerged the same way.
func (p *Primary) finishMerged(prep *core.PreparedBootstrap, merged *rlwe.Ciphertext) (out *rlwe.Ciphertext, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: finish: %v", r)
		}
	}()
	return p.Boot.FinishMerged(prep, merged)
}

// safeRotateTile runs BlindRotateTile with panic recovery, so one malformed
// LWE ciphertext cannot take down a node. The caller owns the accumulators
// and the arena; on error the accumulators' contents are unspecified.
func safeRotateTile(bt *core.Bootstrapper, accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, bsc *tfhe.BatchScratch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	bt.BlindRotateTile(accs, lwes, bsc)
	return nil
}

// pendingOf returns the indices of task whose accumulators are still
// missing (only this node worked these indices, so the read is race-free).
func pendingOf(task []int, accs []*rlwe.Ciphertext) []int {
	pending := make([]int, 0, len(task))
	for _, idx := range task {
		if accs[idx] == nil {
			pending = append(pending, idx)
		}
	}
	return pending
}

// sleepBackoff waits d, returning false if the context aborts first.
func sleepBackoff(ctx context.Context, q *workQueue, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return !q.isAborted()
	case <-ctx.Done():
		return false
	}
}

// Shutdown tells a secondary to stop serving.
func Shutdown(conn io.Writer) error {
	return writeFrame(conn, &frame{Kind: frameShutdown})
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
