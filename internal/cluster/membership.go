package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"heap/internal/obs"
)

// Elastic membership (§V, ROADMAP items 3 and 5): the secondary set is no
// longer fixed at startup. Nodes join through a listener by completing the
// params-digest handshake (frameJoin/frameJoinAck), a running elastic
// bootstrap picks them up mid-run and they start draining the shared work
// queue, and nodes that leave gracefully (frameLeave) or miss K health
// probes are drained with their pending LWE indices reassigned through the
// existing retry machinery.

// MemberState is a node's lifecycle state in the membership registry.
type MemberState int

const (
	// MemberActive nodes receive work.
	MemberActive MemberState = iota
	// MemberLeft nodes drained gracefully; the name may rejoin.
	MemberLeft
	// MemberDead nodes failed (probe misses, exhausted retries); the name
	// may rejoin — which is how a node killed mid-key-upload resumes.
	MemberDead
)

func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberLeft:
		return "left"
	case MemberDead:
		return "dead"
	}
	return "unknown"
}

// Membership is the registry an elastic bootstrap reads each dispatch
// round. Joins arrive through AcceptJoins (or a direct Join call); the
// scheduler consumes them from joinCh and spawns a node worker per joiner.
// A name whose previous instance failed or left may rejoin — the rejoining
// connection inherits nothing from the old one except whatever key-stash
// its Secondary process kept, which is exactly what makes a kill-mid-upload
// resume work.
type Membership struct {
	mu     sync.Mutex
	rec    obs.Recorder
	state  map[string]MemberState
	joinCh chan *Node
}

// NewMembership returns an empty registry.
func NewMembership() *Membership {
	return &Membership{
		rec:    obs.Nop{},
		state:  make(map[string]MemberState),
		joinCh: make(chan *Node, 64),
	}
}

// SetRecorder installs the recorder for the cluster-members gauge.
func (m *Membership) SetRecorder(r obs.Recorder) {
	m.mu.Lock()
	m.rec = obs.OrNop(r)
	m.mu.Unlock()
}

// recorder snapshots the current recorder under the registry lock.
func (m *Membership) recorder() obs.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec
}

// Join registers a node as active and queues it for the running (or next)
// elastic bootstrap. A name that is currently active is rejected; a name
// whose previous instance left or died rejoins.
func (m *Membership) Join(node *Node) error {
	if node.Name == "" {
		return errors.New("cluster: joining node needs a name")
	}
	m.mu.Lock()
	if st, ok := m.state[node.Name]; ok && st == MemberActive {
		m.mu.Unlock()
		return fmt.Errorf("cluster: node %q is already an active member", node.Name)
	}
	m.state[node.Name] = MemberActive
	m.mu.Unlock()
	select {
	case m.joinCh <- node:
	default:
		m.mu.Lock()
		m.state[node.Name] = MemberDead
		m.mu.Unlock()
		return fmt.Errorf("cluster: join backlog full, node %q rejected", node.Name)
	}
	m.recorder().Gauge(obs.GaugeClusterMembers, 1)
	return nil
}

// markDown transitions an active member to Left or Dead.
func (m *Membership) markDown(name string, st MemberState) {
	if name == "" {
		return
	}
	m.mu.Lock()
	cur, ok := m.state[name]
	m.state[name] = st
	rec := m.rec
	m.mu.Unlock()
	if ok && cur == MemberActive {
		rec.Gauge(obs.GaugeClusterMembers, -1)
	}
}

// State reports a member's lifecycle state.
func (m *Membership) State(name string) (MemberState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[name]
	return st, ok
}

// ActiveCount returns the number of active members.
func (m *Membership) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.state {
		if st == MemberActive {
			n++
		}
	}
	return n
}

// Listener accepts join connections. net.Listener satisfies it through
// ListenerFrom; PipeListener provides the in-memory form tests and the
// churn demo use.
type Listener interface {
	Accept() (io.ReadWriter, error)
}

// PipeListener is an in-memory listener: every Dial produces a net.Pipe
// whose far end comes out of Accept.
type PipeListener struct {
	ch     chan io.ReadWriter
	closed chan struct{}
	once   sync.Once
}

// NewPipeListener returns an open in-memory listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan io.ReadWriter), closed: make(chan struct{})}
}

// Dial connects a new pipe through the listener, returning the client end.
func (l *PipeListener) Dial() (io.ReadWriter, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, errors.New("cluster: listener closed")
	}
}

// Accept returns the server end of the next dialed pipe.
func (l *PipeListener) Accept() (io.ReadWriter, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, errors.New("cluster: listener closed")
	}
}

// Close unblocks Accept and fails future Dials.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// AcceptJoins runs the join side of the membership: it accepts connections
// from l, performs the join handshake (params digest included, so an alien
// parameter set is refused at the door exactly like a v2 hello mismatch),
// and registers each joiner with m. It returns when the listener closes.
// Run it in its own goroutine alongside BootstrapElastic.
func (p *Primary) AcceptJoins(m *Membership, l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return nil
		}
		go func(conn io.ReadWriter) {
			if err := p.acceptJoin(m, conn); err != nil {
				closeConn(conn)
			}
		}(conn)
	}
}

// acceptJoin validates one join handshake and registers the node.
func (p *Primary) acceptJoin(m *Membership, conn io.ReadWriter) error {
	local := helloFor(p.Boot)
	refuse := func(err error) error {
		msg := err.Error()
		if len(msg) > maxErrorPayload {
			msg = msg[:maxErrorPayload]
		}
		_ = writeFrame(conn, &frame{Kind: frameError, Payload: []byte(msg)})
		return err
	}
	f, err := readFrame(conn, joinPayloadBound)
	if err != nil {
		return err
	}
	if f.Kind != frameJoin {
		return refuse(fmt.Errorf("cluster: expected join, got frame kind %#x", f.Kind))
	}
	peer, name, err := decodeJoin(f.Payload)
	if err != nil {
		return refuse(err)
	}
	if err := local.check(peer); err != nil {
		return refuse(err)
	}
	node := &Node{Conn: conn, Name: name, joined: true, needsKey: peer.Flags&helloFlagKeyWarm == 0}
	if err := m.Join(node); err != nil {
		return refuse(err)
	}
	if err := writeFrame(conn, &frame{Kind: frameJoinAck, Payload: local.encode()}); err != nil {
		m.markDown(name, MemberDead)
		return err
	}
	return nil
}

// Join performs the secondary side of the join handshake on conn: it sends
// the node's hello (with its key-warm flag) plus its name and waits for the
// primary's acknowledgement.
func (s *Secondary) Join(conn io.ReadWriter, name string) error {
	local := s.localHello()
	if err := writeFrame(conn, &frame{Kind: frameJoin, Payload: encodeJoin(local, name)}); err != nil {
		return fmt.Errorf("cluster: join send: %w", err)
	}
	f, err := readFrame(conn, maxInt(helloPayloadSize, maxErrorPayload))
	if err != nil {
		return fmt.Errorf("cluster: join reply: %w", err)
	}
	switch f.Kind {
	case frameJoinAck:
	case frameError:
		return fmt.Errorf("cluster: join rejected: %s", f.Payload)
	default:
		return fmt.Errorf("cluster: expected join ack, got frame kind %#x", f.Kind)
	}
	peer, err := decodeHello(f.Payload)
	if err != nil {
		return err
	}
	return local.check(peer)
}

// JoinAndServe joins the cluster through conn and then serves blind-rotation
// work on it — the whole life of an elastic secondary. A cold node receives
// its blind-rotate key over the same connection (chunked and resumable)
// before, and interleaved with, batch work.
func (s *Secondary) JoinAndServe(conn io.ReadWriter, name string) error {
	if err := s.Join(conn, name); err != nil {
		return err
	}
	return s.serveLoop(conn)
}
