package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"heap/internal/obs"
)

// Node describes one secondary the primary can dispatch to.
type Node struct {
	// Conn is the current connection (nil to dial lazily).
	Conn io.ReadWriter
	// Dial, when non-nil, reconnects after a transient failure; without it
	// the first connection error permanently fails the node and its
	// unfinished work is reassigned.
	Dial func() (io.ReadWriter, error)
	// Name labels the node in stats and errors.
	Name string
}

// Options tunes the fault-tolerant dispatch.
type Options struct {
	// BatchTimeout bounds one batch round-trip (handshake, send, receive
	// all accumulators). It is enforced via SetDeadline when the conn
	// supports it, else via a watchdog that closes the conn. 0 disables.
	BatchTimeout time.Duration
	// MaxRetries is how many reconnect attempts a node with a Dial
	// function gets before its work is reassigned.
	MaxRetries int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// reconnect attempts; the actual sleep is jittered in [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed makes the backoff jitter deterministic for tests.
	JitterSeed uint64
	// LocalWorkers is the number of primary-side goroutines that drain the
	// queue alongside the secondaries (fallback compute). 0 selects the
	// bootstrapper's Cfg.Workers.
	LocalWorkers int
}

// DefaultOptions returns production-leaning defaults.
func DefaultOptions() Options {
	return Options{
		BatchTimeout: 30 * time.Second,
		MaxRetries:   2,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   250 * time.Millisecond,
		JitterSeed:   0xC1A05,
		LocalWorkers: 0,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BackoffBase <= 0 {
		o.BackoffBase = d.BackoffBase
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = o.BackoffBase
	}
	return o
}

// NodeStats records one node's share of a bootstrap.
type NodeStats struct {
	Name       string
	Dispatched int   // LWE indices sent to the node
	Completed  int   // accumulators received back
	Retries    int   // reconnect attempts
	Failed     bool  // node permanently failed during this bootstrap
	Err        error // the failure, wrapped with the node name
}

// Stats aggregates one distributed bootstrap: where every blind rotation
// ran and how much work moved because of failures.
type Stats struct {
	Nodes      []NodeStats
	Local      int // indices blind-rotated on the primary
	Reassigned int // indices requeued after a failure or timeout
	Total      int // total LWE indices
}

// NodeErrors joins the per-node failures (nil when every node stayed
// healthy), naming each failed shard owner.
func (s *Stats) NodeErrors() error {
	var errs []error
	for i := range s.Nodes {
		if s.Nodes[i].Err != nil {
			errs = append(errs, s.Nodes[i].Err)
		}
	}
	return errors.Join(errs...)
}

// String renders a per-shard summary table.
func (s *Stats) String() string {
	out := fmt.Sprintf("bootstrap: %d rotations, %d local, %d reassigned\n", s.Total, s.Local, s.Reassigned)
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		state := "ok"
		if ns.Failed {
			state = "failed"
		}
		out += fmt.Sprintf("  %-14s sent=%-5d done=%-5d retries=%-2d %s\n",
			ns.Name, ns.Dispatched, ns.Completed, ns.Retries, state)
	}
	return out
}

// workQueue hands out index batches to node and local workers. remaining
// counts indices not yet completed (they may be queued or in flight);
// pop blocks until a task is available, everything is complete, or the
// bootstrap aborts.
type workQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tasks     [][]int
	remaining int
	aborted   bool
	rec       obs.Recorder // queue-depth gauge; set before workers start
}

func newWorkQueue(total int) *workQueue {
	q := &workQueue{remaining: total, rec: obs.Nop{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a (possibly reassigned) task.
func (q *workQueue) push(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	q.mu.Lock()
	q.tasks = append(q.tasks, idxs)
	q.mu.Unlock()
	q.rec.Gauge(obs.GaugeQueueDepth, int64(len(idxs)))
	q.cond.Broadcast()
}

// pop returns the next task, or nil once all work is complete or aborted.
func (q *workQueue) pop() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted || q.remaining == 0 {
			return nil
		}
		if len(q.tasks) > 0 {
			t := q.tasks[0]
			q.tasks = q.tasks[1:]
			q.rec.Gauge(obs.GaugeQueueDepth, -int64(len(t)))
			return t
		}
		q.cond.Wait()
	}
}

// done marks k indices complete.
func (q *workQueue) done(k int) {
	q.mu.Lock()
	q.remaining -= k
	fin := q.remaining <= 0
	q.mu.Unlock()
	if fin {
		q.cond.Broadcast()
	}
}

// abort wakes every waiter and stops new work from being handed out.
func (q *workQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *workQueue) isAborted() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aborted
}

// splitmix is the deterministic jitter PRNG.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// backoff returns the jittered exponential delay for the given attempt
// (1-based): base·2^(attempt−1) capped at max, jittered into [d/2, d].
func backoff(o Options, attempt int, rng *splitmix) time.Duration {
	d := o.BackoffBase
	for i := 1; i < attempt && d < o.BackoffMax; i++ {
		d *= 2
	}
	if d > o.BackoffMax {
		d = o.BackoffMax
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rng.next()%uint64(half))
	}
	return d
}

// armTimeout bounds one batch round-trip. It prefers SetDeadline (net.Conn,
// net.Pipe, FaultConn); for plain ReadWriters that can at least be closed it
// falls back to a watchdog that closes the conn when the timer fires. The
// returned disarm func reports whether the watchdog fired.
func armTimeout(conn io.ReadWriter, d time.Duration) (disarm func() bool) {
	if d <= 0 {
		return func() bool { return false }
	}
	if dl, ok := conn.(interface{ SetDeadline(time.Time) error }); ok {
		_ = dl.SetDeadline(time.Now().Add(d))
		return func() bool {
			_ = dl.SetDeadline(time.Time{})
			return false
		}
	}
	c, ok := conn.(io.Closer)
	if !ok {
		return func() bool { return false }
	}
	fired := make(chan struct{})
	t := time.AfterFunc(d, func() {
		close(fired)
		_ = c.Close()
	})
	return func() bool {
		if !t.Stop() {
			select {
			case <-fired:
				return true
			default:
			}
		}
		return false
	}
}

// closeConn closes conn when possible (abandoning a broken or timed-out
// stream, and unblocking a peer wedged on it).
func closeConn(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close()
	}
}
