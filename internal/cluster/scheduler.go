package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heap/internal/obs"
)

// Node describes one secondary the primary can dispatch to.
type Node struct {
	// Conn is the current connection (nil to dial lazily).
	Conn io.ReadWriter
	// Dial, when non-nil, reconnects after a transient failure; without it
	// the first connection error permanently fails the node and its
	// unfinished work is reassigned.
	Dial func() (io.ReadWriter, error)
	// Name labels the node in stats and errors; for membership joiners it is
	// the registry identity a killed node rejoins under.
	Name string

	// joined marks a node that arrived through the elastic membership: its
	// connection already completed the join handshake, so the hello exchange
	// is skipped.
	joined bool
	// needsKey marks a joiner that announced itself key-cold; the scheduler
	// streams the blind-rotate key (chunked, resumable) before handing it
	// unrestricted work.
	needsKey bool
}

// Options tunes the fault-tolerant dispatch.
type Options struct {
	// BatchTimeout bounds one batch round-trip (handshake, send, receive
	// all accumulators). It is enforced via SetDeadline when the conn
	// supports it, else via a watchdog that closes the conn. 0 disables.
	BatchTimeout time.Duration
	// MaxRetries is how many reconnect attempts a node with a Dial
	// function gets before its work is reassigned.
	MaxRetries int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// reconnect attempts; the actual sleep is jittered in [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed makes the backoff jitter deterministic for tests.
	JitterSeed uint64
	// LocalWorkers is the number of primary-side goroutines that drain the
	// queue alongside the secondaries (fallback compute). 0 selects the
	// bootstrapper's Cfg.Workers.
	LocalWorkers int
	// ProbeInterval is how long a node connection may sit idle (no batch to
	// dispatch) before the primary sends a health probe on it. 0 disables
	// probing.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip; 0 selects ProbeInterval.
	ProbeTimeout time.Duration
	// ProbeMisses is K: a node that misses this many consecutive probes is
	// drained and its pending work reassigned. 0 selects 3.
	ProbeMisses int
	// HedgeAfter enables hedged dispatch: an in-flight LWE index older than
	// max(HedgeAfter, HedgeMultiplier × node p99 latency) is speculatively
	// re-queued for another worker, and the first bit-exact result wins
	// (dedup by an atomic per-index claim). 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeMultiplier scales the observed per-node p99 per-index latency
	// into the hedge threshold. 0 selects 4.
	HedgeMultiplier int
	// KeyChunkBytes is the chunk size of the resumable blind-rotate key
	// upload to cold joiners. 0 selects 256 KiB.
	KeyChunkBytes int
}

// DefaultOptions returns production-leaning defaults.
func DefaultOptions() Options {
	return Options{
		BatchTimeout:    30 * time.Second,
		MaxRetries:      2,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      250 * time.Millisecond,
		JitterSeed:      0xC1A05,
		LocalWorkers:    0,
		ProbeInterval:   0,
		ProbeMisses:     3,
		HedgeAfter:      0,
		HedgeMultiplier: 4,
		KeyChunkBytes:   256 << 10,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BackoffBase <= 0 {
		o.BackoffBase = d.BackoffBase
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = o.BackoffBase
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.ProbeMisses <= 0 {
		o.ProbeMisses = d.ProbeMisses
	}
	if o.HedgeMultiplier <= 0 {
		o.HedgeMultiplier = d.HedgeMultiplier
	}
	if o.KeyChunkBytes <= 0 {
		o.KeyChunkBytes = d.KeyChunkBytes
	}
	return o
}

// NodeStats records one node's share of a bootstrap.
type NodeStats struct {
	Name       string
	Dispatched int   // LWE indices sent to the node
	Completed  int   // accumulators received back (claim winners)
	Retries    int   // reconnect attempts
	Failed     bool  // node permanently failed during this bootstrap
	Left       bool  // node left gracefully (drained, not failed)
	Joined     bool  // node joined mid-run through the membership
	Err        error // the failure, wrapped with the node name
}

// Stats aggregates one distributed bootstrap: where every blind rotation
// ran and how much work moved because of failures. Nodes holds pointers so
// that entries appended for mid-run joiners never invalidate the NodeStats
// a running worker already updates.
type Stats struct {
	Nodes       []*NodeStats
	Local       int // indices blind-rotated on the primary
	Reassigned  int // indices requeued after a failure or timeout
	Hedged      int // indices speculatively re-dispatched past the p99 threshold
	HedgeWasted int // accumulators that lost the hedge race
	Joined      int // nodes that joined mid-run
	Total       int // total LWE indices
}

// NodeErrors joins the per-node failures (nil when every node stayed
// healthy), naming each failed shard owner.
func (s *Stats) NodeErrors() error {
	var errs []error
	for _, ns := range s.Nodes {
		if ns.Err != nil {
			errs = append(errs, ns.Err)
		}
	}
	return errors.Join(errs...)
}

// String renders a per-shard summary table.
func (s *Stats) String() string {
	out := fmt.Sprintf("bootstrap: %d rotations, %d local, %d reassigned", s.Total, s.Local, s.Reassigned)
	if s.Hedged > 0 || s.HedgeWasted > 0 {
		out += fmt.Sprintf(", %d hedged (%d wasted)", s.Hedged, s.HedgeWasted)
	}
	if s.Joined > 0 {
		out += fmt.Sprintf(", %d joined", s.Joined)
	}
	out += "\n"
	for _, ns := range s.Nodes {
		state := "ok"
		switch {
		case ns.Failed:
			state = "failed"
		case ns.Left:
			state = "left"
		}
		if ns.Joined {
			state += " (joined)"
		}
		out += fmt.Sprintf("  %-14s sent=%-5d done=%-5d retries=%-2d %s\n",
			ns.Name, ns.Dispatched, ns.Completed, ns.Retries, state)
	}
	return out
}

// workQueue hands out index batches to node and local workers. remaining
// counts indices not yet completed (they may be queued or in flight);
// pop blocks until a task is available, everything is complete, or the
// bootstrap aborts.
type workQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tasks     [][]int
	remaining int
	aborted   bool
	finished  bool          // doneCh closed (remaining hit 0 or abort)
	doneCh    chan struct{} // closed when no work remains or the run aborts
	rec       obs.Recorder  // queue-depth gauge; set before workers start
}

func newWorkQueue(total int) *workQueue {
	q := &workQueue{remaining: total, rec: obs.Nop{}, doneCh: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a (possibly reassigned) task.
func (q *workQueue) push(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	q.mu.Lock()
	q.tasks = append(q.tasks, idxs)
	q.mu.Unlock()
	q.rec.Gauge(obs.GaugeQueueDepth, int64(len(idxs)))
	q.cond.Broadcast()
}

// pop returns the next task, or nil once all work is complete or aborted.
func (q *workQueue) pop() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted || q.remaining == 0 {
			return nil
		}
		if len(q.tasks) > 0 {
			t := q.tasks[0]
			q.tasks = q.tasks[1:]
			q.rec.Gauge(obs.GaugeQueueDepth, -int64(len(t)))
			return t
		}
		q.cond.Wait()
	}
}

// popTimeout is pop with an idle bound: it returns (task, false) when work
// arrives, (nil, true) once everything is complete or aborted, and
// (nil, false) when d elapses first — the idle tick a node worker uses to
// exchange health probes on an otherwise-quiet connection.
func (q *workQueue) popTimeout(d time.Duration) ([]int, bool) {
	deadline := time.Now().Add(d)
	wake := time.AfterFunc(d, func() { q.cond.Broadcast() })
	defer wake.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted || q.remaining == 0 {
			return nil, true
		}
		if len(q.tasks) > 0 {
			t := q.tasks[0]
			q.tasks = q.tasks[1:]
			q.rec.Gauge(obs.GaugeQueueDepth, -int64(len(t)))
			return t, false
		}
		if !time.Now().Before(deadline) {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popBounded non-blockingly pops the first queued task whose every index
// needs at most maxDim key records — the prefix-dispatch draw a partially
// key-warm joiner can serve mid-upload. Returns nil when no such task is
// queued (or the run is complete/aborted).
func (q *workQueue) popBounded(needDim []int, maxDim int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.aborted || q.remaining == 0 {
		return nil
	}
	for ti, t := range q.tasks {
		ok := true
		for _, idx := range t {
			if needDim[idx] > maxDim {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		q.tasks = append(q.tasks[:ti], q.tasks[ti+1:]...)
		q.rec.Gauge(obs.GaugeQueueDepth, -int64(len(t)))
		return t
	}
	return nil
}

// done marks k indices complete.
func (q *workQueue) done(k int) {
	q.mu.Lock()
	q.remaining -= k
	fin := q.remaining <= 0 && !q.finished
	if fin {
		q.finished = true
	}
	q.mu.Unlock()
	if fin {
		close(q.doneCh)
		q.cond.Broadcast()
	}
}

// abort wakes every waiter and stops new work from being handed out.
func (q *workQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	fin := !q.finished
	if fin {
		q.finished = true
	}
	q.mu.Unlock()
	if fin {
		close(q.doneCh)
	}
	q.cond.Broadcast()
}

func (q *workQueue) isAborted() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aborted
}

// drain discards any tasks still queued after completion (hedged duplicates
// whose every index was already claimed elsewhere), balancing the
// queue-depth gauge.
func (q *workQueue) drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, t := range q.tasks {
		q.rec.Gauge(obs.GaugeQueueDepth, -int64(len(t)))
	}
	q.tasks = nil
}

// splitmix is the deterministic jitter PRNG.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// backoff returns the jittered exponential delay for the given attempt
// (1-based): base·2^(attempt−1) capped at max, jittered into [d/2, d].
func backoff(o Options, attempt int, rng *splitmix) time.Duration {
	d := o.BackoffBase
	for i := 1; i < attempt && d < o.BackoffMax; i++ {
		d *= 2
	}
	if d > o.BackoffMax {
		d = o.BackoffMax
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rng.next()%uint64(half))
	}
	return d
}

// armTimeout bounds one batch round-trip. It prefers SetDeadline (net.Conn,
// net.Pipe, FaultConn); for plain ReadWriters that can at least be closed it
// falls back to a watchdog that closes the conn when the timer fires. The
// returned disarm func is idempotent (safe to call from a defer and again
// from an error-wrapping path) and reports whether the watchdog closed the
// conn. Once any disarm call has returned false, the watchdog is guaranteed
// never to close the conn afterwards: disarm publishes its intent before
// stopping the timer and, when the timer already expired, waits for the
// callback to finish so no Close can land after the caller has moved on to
// reuse the conn.
func armTimeout(conn io.ReadWriter, d time.Duration) (disarm func() bool) {
	if d <= 0 {
		return func() bool { return false }
	}
	if dl, ok := conn.(interface{ SetDeadline(time.Time) error }); ok {
		_ = dl.SetDeadline(time.Now().Add(d))
		var once sync.Once
		return func() bool {
			once.Do(func() { _ = dl.SetDeadline(time.Time{}) })
			return false
		}
	}
	c, ok := conn.(io.Closer)
	if !ok {
		return func() bool { return false }
	}
	var (
		disarmed = make(chan struct{}) // closed by the first disarm call
		finished = make(chan struct{}) // closed when the watchdog callback returns
		closed   atomic.Bool           // did the watchdog actually Close the conn?
		fired    atomic.Bool           // memoized disarm result
		once     sync.Once
	)
	t := time.AfterFunc(d, func() {
		defer close(finished)
		select {
		case <-disarmed:
			// The round-trip completed first; the conn is live again and
			// must not be closed out from under its next user.
			return
		default:
		}
		closed.Store(true)
		_ = c.Close()
	})
	return func() bool {
		once.Do(func() {
			stopped := t.Stop()
			close(disarmed)
			if !stopped {
				// The timer expired before Stop: the callback is running or
				// queued. Wait it out so the caller observes the final state
				// and no late Close races with conn reuse.
				<-finished
				fired.Store(closed.Load())
			}
		})
		return fired.Load()
	}
}

// closeConn closes conn when possible (abandoning a broken or timed-out
// stream, and unblocking a peer wedged on it).
func closeConn(conn io.ReadWriter) {
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close()
	}
}

// latEstimator tracks one node's per-index completion latencies (dispatch
// write to accumulator arrival) in a bounded ring and derives the p99
// estimate the hedge monitor compares in-flight ages against.
type latEstimator struct {
	mu      sync.Mutex
	samples [256]time.Duration
	n       int // valid samples (≤ len(samples))
	next    int // ring write cursor
}

func (e *latEstimator) add(d time.Duration) {
	e.mu.Lock()
	e.samples[e.next] = d
	e.next = (e.next + 1) % len(e.samples)
	if e.n < len(e.samples) {
		e.n++
	}
	e.mu.Unlock()
}

// p99 returns the 99th-percentile latency, or 0 with fewer than 8 samples
// (not enough signal to hedge on).
func (e *latEstimator) p99() time.Duration {
	e.mu.Lock()
	n := e.n
	buf := make([]time.Duration, n)
	copy(buf, e.samples[:n])
	e.mu.Unlock()
	if n < 8 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	// Nearest-rank percentile: the ceil(0.99·n)-th smallest sample,
	// zero-indexed. The additive term rounds the rank up; plain (n*99)/100
	// overshoots by one whenever 99·n is a multiple of 100 (n=100 → index
	// 99, one past the nearest-rank 98).
	return buf[(n*99+99)/100-1]
}
