package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"heap/internal/core"
	"heap/internal/rlwe"
)

// Wire protocol v2 — the hardened replacement for the seed's bare
// binary.Write streams. Every message is a self-delimiting frame:
//
//	magic(4) kind(4) shard(4) seq(4) payloadLen(4) payload(len) crc32(4)
//
// all little-endian, with the IEEE CRC32 computed over header+payload so a
// single flipped bit anywhere in the frame is detected before any of the
// payload is interpreted. The shard field names the batch the frame belongs
// to and seq numbers the frames within that batch's response stream, so a
// partial accumulator stream (a secondary dying mid-batch, the paper's lost
// CMAC link) is detectable by the primary: it knows exactly which LWE
// indices completed and which must be reassigned.
//
// A connection starts with a hello exchange (version + parameter digest +
// LWE dimension + batch bound); everything after a digest mismatch would be
// garbage, so mismatches fail the connection at setup instead of corrupting
// a bootstrap midway.
const (
	frameMagic = uint32(0x4846_524D) // "HFRM"

	// ProtocolVersion is the cluster wire-protocol version exchanged in the
	// hello handshake. Version 2 is the framed, checksummed protocol; the
	// seed's unframed protocol is retroactively version 1 and is rejected.
	ProtocolVersion = uint32(2)

	frameHeaderSize  = 20
	frameTrailerSize = 4

	// maxErrorPayload bounds remote error strings.
	maxErrorPayload = 1 << 10
)

// wireSize is the on-the-wire byte count of a frame with the given payload
// length — header, payload, and CRC trailer. The observability byte counters
// use it so that framing overhead is accounted exactly.
func wireSize(payloadLen int) uint64 {
	return uint64(frameHeaderSize + payloadLen + frameTrailerSize)
}

// Frame kinds.
const (
	frameHello    = uint32(0x4845_4C4F) // "HELO"
	frameBatch    = uint32(0xB007_0001) // primary → secondary: LWE batch
	frameAcc      = uint32(0xB007_0002) // secondary → primary: one accumulator
	frameBatchEnd = uint32(0xB007_0003) // secondary → primary: batch complete
	frameError    = uint32(0xB007_000E) // secondary → primary: structured failure
	frameShutdown = uint32(0xB007_00FF)
)

// frame is one protocol message.
type frame struct {
	Kind    uint32
	Shard   uint32 // batch identifier
	Seq     uint32 // position within the batch's response stream
	Payload []byte
}

// writeFrame serializes f as a single Write so frames are never interleaved
// on a shared writer.
func writeFrame(w io.Writer, f *frame) error {
	buf := make([]byte, frameHeaderSize+len(f.Payload)+frameTrailerSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], frameMagic)
	le.PutUint32(buf[4:], f.Kind)
	le.PutUint32(buf[8:], f.Shard)
	le.PutUint32(buf[12:], f.Seq)
	le.PutUint32(buf[16:], uint32(len(f.Payload)))
	copy(buf[frameHeaderSize:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:frameHeaderSize+len(f.Payload)])
	le.PutUint32(buf[frameHeaderSize+len(f.Payload):], crc)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame. The payload length is checked
// against maxPayload before any allocation, so a lying peer can never force
// an unbounded make. io.EOF is returned verbatim only for a clean close at
// a frame boundary; every other failure is wrapped.
func readFrame(r io.Reader, maxPayload int) (*frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("cluster: short frame header: %w", err)
	}
	le := binary.LittleEndian
	if m := le.Uint32(hdr[0:]); m != frameMagic {
		return nil, fmt.Errorf("cluster: bad frame magic %#x", m)
	}
	plen := int(le.Uint32(hdr[16:]))
	if plen > maxPayload {
		return nil, fmt.Errorf("cluster: frame payload %d exceeds bound %d", plen, maxPayload)
	}
	body := make([]byte, plen+frameTrailerSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("cluster: short frame body: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:plen])
	if got := le.Uint32(body[plen:]); got != crc {
		return nil, fmt.Errorf("cluster: frame checksum mismatch (got %#x want %#x)", got, crc)
	}
	return &frame{
		Kind:    le.Uint32(hdr[4:]),
		Shard:   le.Uint32(hdr[8:]),
		Seq:     le.Uint32(hdr[12:]),
		Payload: body[:plen:plen],
	}, nil
}

// hello is the connection-setup handshake: both ends must agree on the
// protocol version and on the parameter set (the digest covers every Q and
// P limb), the LWE dimension the batches will carry, and the batch bound.
type hello struct {
	Version  uint32
	LogN     uint32
	MaxLevel uint32
	LWEDim   uint32
	MaxBatch uint32
	Digest   uint32
}

const helloPayloadSize = 24

func helloFor(bt *core.Bootstrapper) hello {
	p := bt.Params.Parameters
	return hello{
		Version:  ProtocolVersion,
		LogN:     uint32(p.LogN),
		MaxLevel: uint32(p.MaxLevel()),
		LWEDim:   uint32(lweDim(bt)),
		MaxBatch: uint32(p.N()),
		Digest:   paramsDigest(p),
	}
}

// lweDim is the dimension of the LWE ciphertexts Prepare emits: N in exact
// mode (NT = 0), n_t after the dimension-reducing key switch otherwise.
func lweDim(bt *core.Bootstrapper) int {
	if bt.Cfg.NT == 0 {
		return bt.Params.N()
	}
	return bt.Cfg.NT
}

// paramsDigest fingerprints the modulus chains so two nodes built from
// different parameter sets refuse each other at handshake instead of
// exchanging undecryptable ciphertexts.
func paramsDigest(p *rlwe.Parameters) uint32 {
	h := crc32.NewIEEE()
	var b [8]byte
	for _, q := range p.Q {
		binary.LittleEndian.PutUint64(b[:], q)
		h.Write(b[:])
	}
	for _, q := range p.P {
		binary.LittleEndian.PutUint64(b[:], q)
		h.Write(b[:])
	}
	return h.Sum32()
}

func (h hello) encode() []byte {
	buf := make([]byte, helloPayloadSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], h.Version)
	le.PutUint32(buf[4:], h.LogN)
	le.PutUint32(buf[8:], h.MaxLevel)
	le.PutUint32(buf[12:], h.LWEDim)
	le.PutUint32(buf[16:], h.MaxBatch)
	le.PutUint32(buf[20:], h.Digest)
	return buf
}

func decodeHello(payload []byte) (hello, error) {
	if len(payload) != helloPayloadSize {
		return hello{}, fmt.Errorf("cluster: hello payload is %d bytes, want %d", len(payload), helloPayloadSize)
	}
	le := binary.LittleEndian
	return hello{
		Version:  le.Uint32(payload[0:]),
		LogN:     le.Uint32(payload[4:]),
		MaxLevel: le.Uint32(payload[8:]),
		LWEDim:   le.Uint32(payload[12:]),
		MaxBatch: le.Uint32(payload[16:]),
		Digest:   le.Uint32(payload[20:]),
	}, nil
}

// check verifies a peer hello against the local one.
func (h hello) check(peer hello) error {
	if peer.Version != h.Version {
		return fmt.Errorf("cluster: protocol version mismatch: local v%d, peer v%d", h.Version, peer.Version)
	}
	if peer != h {
		return fmt.Errorf("cluster: parameter mismatch: local %+v, peer %+v", h, peer)
	}
	return nil
}

// encodeBatch serializes count followed by (index, LWE ciphertext) pairs.
func encodeBatch(idxs []int, lwes []*rlwe.LWECiphertext) ([]byte, error) {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(idxs)))
	buf.Write(u32[:])
	for _, idx := range idxs {
		binary.LittleEndian.PutUint32(u32[:], uint32(idx))
		buf.Write(u32[:])
		if _, err := lwes[idx].WriteTo(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeBatch parses and fully validates a batch payload: the count is
// bounded by maxBatch (n ≤ ring degree) before anything is allocated, every
// index is bounded, and every LWE ciphertext must have exactly the
// handshaken dimension and modulus with in-range components.
func decodeBatch(payload []byte, maxBatch, dim int, q uint64) (idxs []int, lwes []*rlwe.LWECiphertext, err error) {
	r := bytes.NewReader(payload)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, nil, fmt.Errorf("cluster: batch header: %w", err)
	}
	if count == 0 || int(count) > maxBatch {
		return nil, nil, fmt.Errorf("cluster: batch count %d outside (0, %d]", count, maxBatch)
	}
	idxs = make([]int, count)
	lwes = make([]*rlwe.LWECiphertext, count)
	for i := range lwes {
		var idx uint32
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, nil, fmt.Errorf("cluster: batch index %d: %w", i, err)
		}
		if int(idx) >= maxBatch {
			return nil, nil, fmt.Errorf("cluster: LWE index %d exceeds bound %d", idx, maxBatch)
		}
		lwe, err := rlwe.ReadLWECiphertext(r)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: batch ciphertext %d: %w", i, err)
		}
		if err := lwe.Validate(dim, q); err != nil {
			return nil, nil, fmt.Errorf("cluster: batch ciphertext %d: %w", i, err)
		}
		idxs[i] = int(idx)
		lwes[i] = lwe
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("cluster: %d trailing bytes after batch", r.Len())
	}
	return idxs, lwes, nil
}

// encodeAcc serializes (index, accumulator ciphertext).
func encodeAcc(idx int, acc *rlwe.Ciphertext) ([]byte, error) {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(idx))
	buf.Write(u32[:])
	if _, err := acc.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAcc parses an accumulator payload, rejecting wrong levels, trailing
// bytes, and out-of-range residues (via ReadCiphertext).
func decodeAcc(payload []byte, p *rlwe.Parameters, maxIndex int) (int, *rlwe.Ciphertext, error) {
	r := bytes.NewReader(payload)
	var idx uint32
	if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
		return 0, nil, fmt.Errorf("cluster: accumulator index: %w", err)
	}
	if int(idx) >= maxIndex {
		return 0, nil, fmt.Errorf("cluster: accumulator index %d exceeds bound %d", idx, maxIndex)
	}
	acc, err := rlwe.ReadCiphertext(r, p)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: accumulator ciphertext: %w", err)
	}
	if acc.Level() != p.MaxLevel() {
		return 0, nil, fmt.Errorf("cluster: accumulator at level %d, want %d", acc.Level(), p.MaxLevel())
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("cluster: %d trailing bytes after accumulator", r.Len())
	}
	return int(idx), acc, nil
}

// batchPayloadBound is the largest batch payload a secondary accepts.
func batchPayloadBound(maxBatch, dim int) int {
	return 4 + maxBatch*(4+rlwe.LWEWireSize(dim))
}

// accPayloadBound is the largest accumulator payload a primary accepts.
func accPayloadBound(p *rlwe.Parameters) int {
	return 4 + rlwe.CiphertextWireSize(p, p.MaxLevel())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
