package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"heap/internal/core"
	"heap/internal/rlwe"
)

// Wire protocol v2 — the hardened replacement for the seed's bare
// binary.Write streams. Every message is a self-delimiting frame:
//
//	magic(4) kind(4) shard(4) seq(4) payloadLen(4) payload(len) crc32(4)
//
// all little-endian, with the IEEE CRC32 computed over header+payload so a
// single flipped bit anywhere in the frame is detected before any of the
// payload is interpreted. The shard field names the batch the frame belongs
// to and seq numbers the frames within that batch's response stream, so a
// partial accumulator stream (a secondary dying mid-batch, the paper's lost
// CMAC link) is detectable by the primary: it knows exactly which LWE
// indices completed and which must be reassigned.
//
// A connection starts with a hello exchange (version + parameter digest +
// LWE dimension + batch bound); everything after a digest mismatch would be
// garbage, so mismatches fail the connection at setup instead of corrupting
// a bootstrap midway.
const (
	frameMagic = uint32(0x4846_524D) // "HFRM"

	// ProtocolVersion is the cluster wire-protocol version exchanged in the
	// hello handshake. Version 2 is the framed, checksummed protocol; the
	// seed's unframed protocol is retroactively version 1 and is rejected.
	// Version 3 adds elastic membership (join/leave/health-probe frames),
	// per-batch deadline budgets (carried in the batch frame's seq field,
	// which v2 required to be zero), a key-warm hello flag, and the chunked
	// resumable blind-rotate key streaming channel.
	ProtocolVersion = uint32(3)

	frameHeaderSize  = 20
	frameTrailerSize = 4

	// maxErrorPayload bounds remote error strings.
	maxErrorPayload = 1 << 10
)

// wireSize is the on-the-wire byte count of a frame with the given payload
// length — header, payload, and CRC trailer. The observability byte counters
// use it so that framing overhead is accounted exactly.
func wireSize(payloadLen int) uint64 {
	return uint64(frameHeaderSize + payloadLen + frameTrailerSize)
}

// Frame kinds.
const (
	frameHello    = uint32(0x4845_4C4F) // "HELO"
	frameBatch    = uint32(0xB007_0001) // primary → secondary: LWE batch (seq = deadline budget, ms)
	frameAcc      = uint32(0xB007_0002) // secondary → primary: one accumulator
	frameBatchEnd = uint32(0xB007_0003) // secondary → primary: batch complete
	frameError    = uint32(0xB007_000E) // secondary → primary: structured failure
	frameShutdown = uint32(0xB007_00FF)

	// Elastic membership (v3).
	frameProbe        = uint32(0xB007_0010) // either way: liveness probe (8-byte nonce)
	frameProbeAck     = uint32(0xB007_0011) // echo of a probe's nonce
	frameJoin         = uint32(0xB007_0012) // secondary → primary: hello + node name
	frameJoinAck      = uint32(0xB007_0013) // primary → secondary: hello reply, join accepted
	frameLeave        = uint32(0xB007_0014) // secondary → primary: graceful leave (reason string)
	frameBatchRefused = uint32(0xB007_0015) // secondary → primary: not key-warm enough (warm count)

	// Chunked resumable key streaming (v3).
	frameKeyOffer  = uint32(0xB007_0020) // primary → secondary: blob size/chunking/CRC
	frameKeyResume = uint32(0xB007_0021) // secondary → primary: contiguous chunks already held
	frameKeyChunk  = uint32(0xB007_0022) // primary → secondary: one chunk (seq = chunk index)
	frameKeyAck    = uint32(0xB007_0023) // secondary → primary: contiguous chunks now held
	frameKeyDone   = uint32(0xB007_0024) // primary → secondary: upload complete (blob CRC)
)

// frame is one protocol message.
type frame struct {
	Kind    uint32
	Shard   uint32 // batch identifier
	Seq     uint32 // position within the batch's response stream
	Payload []byte
}

// writeFrame serializes f as a single Write so frames are never interleaved
// on a shared writer.
func writeFrame(w io.Writer, f *frame) error {
	buf := make([]byte, frameHeaderSize+len(f.Payload)+frameTrailerSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], frameMagic)
	le.PutUint32(buf[4:], f.Kind)
	le.PutUint32(buf[8:], f.Shard)
	le.PutUint32(buf[12:], f.Seq)
	le.PutUint32(buf[16:], uint32(len(f.Payload)))
	copy(buf[frameHeaderSize:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:frameHeaderSize+len(f.Payload)])
	le.PutUint32(buf[frameHeaderSize+len(f.Payload):], crc)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame. The payload length is checked
// against maxPayload before any allocation, so a lying peer can never force
// an unbounded make. io.EOF is returned verbatim only for a clean close at
// a frame boundary; every other failure is wrapped.
func readFrame(r io.Reader, maxPayload int) (*frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("cluster: short frame header: %w", err)
	}
	le := binary.LittleEndian
	if m := le.Uint32(hdr[0:]); m != frameMagic {
		return nil, fmt.Errorf("cluster: bad frame magic %#x", m)
	}
	plen := int(le.Uint32(hdr[16:]))
	if plen > maxPayload {
		return nil, fmt.Errorf("cluster: frame payload %d exceeds bound %d", plen, maxPayload)
	}
	body := make([]byte, plen+frameTrailerSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("cluster: short frame body: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:plen])
	if got := le.Uint32(body[plen:]); got != crc {
		return nil, fmt.Errorf("cluster: frame checksum mismatch (got %#x want %#x)", got, crc)
	}
	return &frame{
		Kind:    le.Uint32(hdr[4:]),
		Shard:   le.Uint32(hdr[8:]),
		Seq:     le.Uint32(hdr[12:]),
		Payload: body[:plen:plen],
	}, nil
}

// hello is the connection-setup handshake: both ends must agree on the
// protocol version and on the parameter set (the digest covers every Q and
// P limb), the LWE dimension the batches will carry, and the batch bound.
// Flags carries per-node status (key-warm) and is deliberately excluded
// from the compatibility check: a cold node and a warm node are protocol-
// compatible, they just differ in what work they can accept.
type hello struct {
	Version  uint32
	LogN     uint32
	MaxLevel uint32
	LWEDim   uint32
	MaxBatch uint32
	Digest   uint32
	Flags    uint32
}

// helloFlagKeyWarm marks a node that holds its full blind-rotate key.
const helloFlagKeyWarm = uint32(1)

const helloPayloadSize = 28

func helloFor(bt *core.Bootstrapper) hello {
	p := bt.Params.Parameters
	h := hello{
		Version:  ProtocolVersion,
		LogN:     uint32(p.LogN),
		MaxLevel: uint32(p.MaxLevel()),
		LWEDim:   uint32(lweDim(bt)),
		MaxBatch: uint32(p.N()),
		Digest:   paramsDigest(p),
	}
	if bt.HasBlindRotateKey() {
		h.Flags |= helloFlagKeyWarm
	}
	return h
}

// lweDim is the dimension of the LWE ciphertexts Prepare emits: N in exact
// mode (NT = 0), n_t after the dimension-reducing key switch otherwise.
func lweDim(bt *core.Bootstrapper) int {
	if bt.Cfg.NT == 0 {
		return bt.Params.N()
	}
	return bt.Cfg.NT
}

// paramsDigest fingerprints the modulus chains so two nodes built from
// different parameter sets refuse each other at handshake instead of
// exchanging undecryptable ciphertexts.
func paramsDigest(p *rlwe.Parameters) uint32 {
	h := crc32.NewIEEE()
	var b [8]byte
	for _, q := range p.Q {
		binary.LittleEndian.PutUint64(b[:], q)
		h.Write(b[:])
	}
	for _, q := range p.P {
		binary.LittleEndian.PutUint64(b[:], q)
		h.Write(b[:])
	}
	return h.Sum32()
}

func (h hello) encode() []byte {
	buf := make([]byte, helloPayloadSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], h.Version)
	le.PutUint32(buf[4:], h.LogN)
	le.PutUint32(buf[8:], h.MaxLevel)
	le.PutUint32(buf[12:], h.LWEDim)
	le.PutUint32(buf[16:], h.MaxBatch)
	le.PutUint32(buf[20:], h.Digest)
	le.PutUint32(buf[24:], h.Flags)
	return buf
}

func decodeHello(payload []byte) (hello, error) {
	if len(payload) != helloPayloadSize {
		return hello{}, fmt.Errorf("cluster: hello payload is %d bytes, want %d", len(payload), helloPayloadSize)
	}
	le := binary.LittleEndian
	return hello{
		Version:  le.Uint32(payload[0:]),
		LogN:     le.Uint32(payload[4:]),
		MaxLevel: le.Uint32(payload[8:]),
		LWEDim:   le.Uint32(payload[12:]),
		MaxBatch: le.Uint32(payload[16:]),
		Digest:   le.Uint32(payload[20:]),
		Flags:    le.Uint32(payload[24:]),
	}, nil
}

// check verifies a peer hello against the local one. Flags are status, not
// compatibility, and are not compared.
func (h hello) check(peer hello) error {
	if peer.Version != h.Version {
		return fmt.Errorf("cluster: protocol version mismatch: local v%d, peer v%d", h.Version, peer.Version)
	}
	if peer.LogN != h.LogN || peer.MaxLevel != h.MaxLevel || peer.LWEDim != h.LWEDim ||
		peer.MaxBatch != h.MaxBatch || peer.Digest != h.Digest {
		return fmt.Errorf("cluster: parameter mismatch: local %+v, peer %+v", h, peer)
	}
	return nil
}

// encodeBatch serializes count followed by (index, LWE ciphertext) pairs.
func encodeBatch(idxs []int, lwes []*rlwe.LWECiphertext) ([]byte, error) {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(idxs)))
	buf.Write(u32[:])
	for _, idx := range idxs {
		binary.LittleEndian.PutUint32(u32[:], uint32(idx))
		buf.Write(u32[:])
		if _, err := lwes[idx].WriteTo(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeBatch parses and fully validates a batch payload: the count is
// bounded by maxBatch (n ≤ ring degree) before anything is allocated, every
// index is bounded, and every LWE ciphertext must have exactly the
// handshaken dimension and modulus with in-range components.
func decodeBatch(payload []byte, maxBatch, dim int, q uint64) (idxs []int, lwes []*rlwe.LWECiphertext, err error) {
	r := bytes.NewReader(payload)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, nil, fmt.Errorf("cluster: batch header: %w", err)
	}
	if count == 0 || int(count) > maxBatch {
		return nil, nil, fmt.Errorf("cluster: batch count %d outside (0, %d]", count, maxBatch)
	}
	idxs = make([]int, count)
	lwes = make([]*rlwe.LWECiphertext, count)
	for i := range lwes {
		var idx uint32
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, nil, fmt.Errorf("cluster: batch index %d: %w", i, err)
		}
		if int(idx) >= maxBatch {
			return nil, nil, fmt.Errorf("cluster: LWE index %d exceeds bound %d", idx, maxBatch)
		}
		lwe, err := rlwe.ReadLWECiphertext(r)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: batch ciphertext %d: %w", i, err)
		}
		if err := lwe.Validate(dim, q); err != nil {
			return nil, nil, fmt.Errorf("cluster: batch ciphertext %d: %w", i, err)
		}
		idxs[i] = int(idx)
		lwes[i] = lwe
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("cluster: %d trailing bytes after batch", r.Len())
	}
	return idxs, lwes, nil
}

// encodeAcc serializes (index, accumulator ciphertext).
func encodeAcc(idx int, acc *rlwe.Ciphertext) ([]byte, error) {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(idx))
	buf.Write(u32[:])
	if _, err := acc.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAcc parses an accumulator payload, rejecting wrong levels, trailing
// bytes, and out-of-range residues (via ReadCiphertext).
func decodeAcc(payload []byte, p *rlwe.Parameters, maxIndex int) (int, *rlwe.Ciphertext, error) {
	r := bytes.NewReader(payload)
	var idx uint32
	if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
		return 0, nil, fmt.Errorf("cluster: accumulator index: %w", err)
	}
	if int(idx) >= maxIndex {
		return 0, nil, fmt.Errorf("cluster: accumulator index %d exceeds bound %d", idx, maxIndex)
	}
	acc, err := rlwe.ReadCiphertext(r, p)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: accumulator ciphertext: %w", err)
	}
	if acc.Level() != p.MaxLevel() {
		return 0, nil, fmt.Errorf("cluster: accumulator at level %d, want %d", acc.Level(), p.MaxLevel())
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("cluster: %d trailing bytes after accumulator", r.Len())
	}
	return int(idx), acc, nil
}

// batchPayloadBound is the largest batch payload a secondary accepts.
func batchPayloadBound(maxBatch, dim int) int {
	return 4 + maxBatch*(4+rlwe.LWEWireSize(dim))
}

// accPayloadBound is the largest accumulator payload a primary accepts.
func accPayloadBound(p *rlwe.Parameters) int {
	return 4 + rlwe.CiphertextWireSize(p, p.MaxLevel())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- elastic membership payloads (v3) ---

// probePayloadSize is the fixed probe/probe-ack payload: an 8-byte nonce
// the ack must echo, so a stale ack from a previous probe round is never
// mistaken for a live answer.
const probePayloadSize = 8

func encodeProbe(nonce uint64) []byte {
	buf := make([]byte, probePayloadSize)
	binary.LittleEndian.PutUint64(buf, nonce)
	return buf
}

// decodeProbe validates a probe or probe-ack payload and returns its nonce.
func decodeProbe(payload []byte) (uint64, error) {
	if len(payload) != probePayloadSize {
		return 0, fmt.Errorf("cluster: probe payload is %d bytes, want %d", len(payload), probePayloadSize)
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// maxNodeName bounds the node name a join frame may carry.
const maxNodeName = 256

// joinPayloadBound is the largest join payload: hello + length-prefixed name.
const joinPayloadBound = helloPayloadSize + 4 + maxNodeName

// encodeJoin serializes a join request: the joiner's hello followed by its
// length-prefixed name (the identity key of the membership registry, which
// is how a node killed mid-key-upload resumes as itself after rejoining).
func encodeJoin(h hello, name string) []byte {
	if len(name) > maxNodeName {
		name = name[:maxNodeName]
	}
	buf := make([]byte, helloPayloadSize+4+len(name))
	copy(buf, h.encode())
	binary.LittleEndian.PutUint32(buf[helloPayloadSize:], uint32(len(name)))
	copy(buf[helloPayloadSize+4:], name)
	return buf
}

// decodeJoin parses and bounds a join payload before anything is allocated
// from attacker-controlled lengths.
func decodeJoin(payload []byte) (hello, string, error) {
	if len(payload) < helloPayloadSize+4 {
		return hello{}, "", fmt.Errorf("cluster: join payload is %d bytes, want at least %d", len(payload), helloPayloadSize+4)
	}
	h, err := decodeHello(payload[:helloPayloadSize])
	if err != nil {
		return hello{}, "", err
	}
	nameLen := int(binary.LittleEndian.Uint32(payload[helloPayloadSize:]))
	if nameLen > maxNodeName {
		return hello{}, "", fmt.Errorf("cluster: join name length %d exceeds bound %d", nameLen, maxNodeName)
	}
	if len(payload) != helloPayloadSize+4+nameLen {
		return hello{}, "", fmt.Errorf("cluster: join payload %d bytes, want %d", len(payload), helloPayloadSize+4+nameLen)
	}
	return h, string(payload[helloPayloadSize+4:]), nil
}

// encodeLeave serializes a graceful-leave reason (bounded like error frames).
func encodeLeave(reason string) []byte {
	if len(reason) > maxErrorPayload {
		reason = reason[:maxErrorPayload]
	}
	buf := make([]byte, 4+len(reason))
	binary.LittleEndian.PutUint32(buf, uint32(len(reason)))
	copy(buf[4:], reason)
	return buf
}

// decodeLeave parses a bounded leave payload.
func decodeLeave(payload []byte) (string, error) {
	if len(payload) < 4 {
		return "", fmt.Errorf("cluster: leave payload is %d bytes, want at least 4", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n > maxErrorPayload {
		return "", fmt.Errorf("cluster: leave reason length %d exceeds bound %d", n, maxErrorPayload)
	}
	if len(payload) != 4+n {
		return "", fmt.Errorf("cluster: leave payload %d bytes, want %d", len(payload), 4+n)
	}
	return string(payload[4:]), nil
}

// --- chunked resumable key streaming payloads (v3) ---

// keyOffer describes a blind-rotate key blob the sender is about to stream:
// total serialized size, the fixed chunk size (the last chunk may be short),
// the chunk count, and the CRC32 of the whole blob. A receiver holding a
// partial stash from a previous connection answers with the number of
// contiguous chunks it already has — the resume point.
type keyOffer struct {
	TotalSize  uint64
	ChunkSize  uint32
	ChunkCount uint32
	BlobCRC    uint32
}

const keyOfferPayloadSize = 20

// maxKeyChunkPayload bounds a single key chunk (and therefore the one
// allocation a key-chunk frame can force).
const maxKeyChunkPayload = 4 << 20

func (o keyOffer) encode() []byte {
	buf := make([]byte, keyOfferPayloadSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], o.TotalSize)
	le.PutUint32(buf[8:], o.ChunkSize)
	le.PutUint32(buf[12:], o.ChunkCount)
	le.PutUint32(buf[16:], o.BlobCRC)
	return buf
}

// decodeKeyOffer parses and cross-validates an offer: the chunk geometry
// must exactly tile the total size, and both are bounded before the
// receiver sizes anything from them.
func decodeKeyOffer(payload []byte) (keyOffer, error) {
	if len(payload) != keyOfferPayloadSize {
		return keyOffer{}, fmt.Errorf("cluster: key offer payload is %d bytes, want %d", len(payload), keyOfferPayloadSize)
	}
	le := binary.LittleEndian
	o := keyOffer{
		TotalSize:  le.Uint64(payload[0:]),
		ChunkSize:  le.Uint32(payload[8:]),
		ChunkCount: le.Uint32(payload[12:]),
		BlobCRC:    le.Uint32(payload[16:]),
	}
	if o.TotalSize == 0 || o.TotalSize > 1<<40 {
		return keyOffer{}, fmt.Errorf("cluster: key offer size %d out of range", o.TotalSize)
	}
	if o.ChunkSize == 0 || o.ChunkSize > maxKeyChunkPayload {
		return keyOffer{}, fmt.Errorf("cluster: key chunk size %d outside (0, %d]", o.ChunkSize, maxKeyChunkPayload)
	}
	want := (o.TotalSize + uint64(o.ChunkSize) - 1) / uint64(o.ChunkSize)
	if uint64(o.ChunkCount) != want {
		return keyOffer{}, fmt.Errorf("cluster: key offer chunk count %d, want %d for %d bytes in %d-byte chunks",
			o.ChunkCount, want, o.TotalSize, o.ChunkSize)
	}
	return o, nil
}

// encodeKeyResume serializes the receiver's resume point: the number of
// contiguous chunks it already holds and the blob CRC it holds them for.
func encodeKeyResume(have uint32, blobCRC uint32) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], have)
	binary.LittleEndian.PutUint32(buf[4:], blobCRC)
	return buf
}

// decodeKeyResume parses a resume/ack payload.
func decodeKeyResume(payload []byte) (have uint32, blobCRC uint32, err error) {
	if len(payload) != 8 {
		return 0, 0, fmt.Errorf("cluster: key resume payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[0:]), binary.LittleEndian.Uint32(payload[4:]), nil
}
