package cluster

import (
	"encoding/binary"
	"io"
	"runtime"
	"testing"

	"heap/internal/obs"
)

// Fuzz targets for the v3 membership/health/key-streaming payload decoders,
// mirroring FuzzReadFrame/FuzzDecodeBatch: arbitrary bytes must never panic
// a decoder, every accepted value must satisfy the decoder's documented
// bounds, and accepted values must round-trip through their encoder.

func FuzzDecodeJoin(f *testing.F) {
	h := hello{Version: ProtocolVersion, LogN: 6, MaxLevel: 3, LWEDim: 64, MaxBatch: 64, Digest: 0xDEAD, Flags: helloFlagKeyWarm}
	f.Add(encodeJoin(h, "node-a"))
	f.Add(encodeJoin(h, ""))
	// A lying length prefix: nameLen = 2^32−1 with no name bytes behind it.
	lie := encodeJoin(h, "x")
	binary.LittleEndian.PutUint32(lie[helloPayloadSize:], 0xFFFF_FFFF)
	f.Add(lie)
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, name, err := decodeJoin(data)
		if err != nil {
			return
		}
		if len(name) > maxNodeName {
			t.Fatalf("accepted join name of %d bytes, bound is %d", len(name), maxNodeName)
		}
		re, name2, err := decodeJoin(encodeJoin(got, name))
		if err != nil || re != got || name2 != name {
			t.Fatalf("join round trip unstable: %v %+v/%q vs %+v/%q", err, re, name2, got, name)
		}
	})
}

func FuzzDecodeLeave(f *testing.F) {
	f.Add(encodeLeave("leave requested"))
	f.Add(encodeLeave(""))
	lie := make([]byte, 4)
	binary.LittleEndian.PutUint32(lie, 0xFFFF_FFFF)
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		reason, err := decodeLeave(data)
		if err != nil {
			return
		}
		if len(reason) > maxErrorPayload {
			t.Fatalf("accepted leave reason of %d bytes, bound is %d", len(reason), maxErrorPayload)
		}
		if re, err := decodeLeave(encodeLeave(reason)); err != nil || re != reason {
			t.Fatalf("leave round trip unstable: %v %q vs %q", err, re, reason)
		}
	})
}

func FuzzDecodeProbe(f *testing.F) {
	f.Add(encodeProbe(0))
	f.Add(encodeProbe(0xDEADBEEF_00C0FFEE))
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		nonce, err := decodeProbe(data)
		if err != nil {
			return
		}
		if re, err := decodeProbe(encodeProbe(nonce)); err != nil || re != nonce {
			t.Fatalf("probe round trip unstable: %v %d vs %d", err, re, nonce)
		}
	})
}

func FuzzDecodeKeyOffer(f *testing.F) {
	f.Add(keyOffer{TotalSize: 1 << 20, ChunkSize: 64 << 10, ChunkCount: 16, BlobCRC: 0xABCD}.encode())
	f.Add(keyOffer{TotalSize: 1, ChunkSize: 1, ChunkCount: 1}.encode())
	// Geometry lies: count does not tile the total.
	bad := keyOffer{TotalSize: 1 << 20, ChunkSize: 64 << 10, ChunkCount: 3}.encode()
	f.Add(bad)
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := decodeKeyOffer(data)
		if err != nil {
			return
		}
		if o.TotalSize == 0 || o.TotalSize > 1<<40 || o.ChunkSize == 0 || o.ChunkSize > maxKeyChunkPayload {
			t.Fatalf("accepted out-of-bounds offer %+v", o)
		}
		want := (o.TotalSize + uint64(o.ChunkSize) - 1) / uint64(o.ChunkSize)
		if uint64(o.ChunkCount) != want {
			t.Fatalf("accepted non-tiling offer %+v (want %d chunks)", o, want)
		}
		if re, err := decodeKeyOffer(o.encode()); err != nil || re != o {
			t.Fatalf("offer round trip unstable: %v %+v vs %+v", err, re, o)
		}
	})
}

func FuzzDecodeKeyResume(f *testing.F) {
	f.Add(encodeKeyResume(0, 0))
	f.Add(encodeKeyResume(41, 0xDEADBEEF))
	f.Add([]byte{9})

	f.Fuzz(func(t *testing.T, data []byte) {
		have, crc, err := decodeKeyResume(data)
		if err != nil {
			return
		}
		h2, c2, err := decodeKeyResume(encodeKeyResume(have, crc))
		if err != nil || h2 != have || c2 != crc {
			t.Fatalf("resume round trip unstable: %v %d/%#x vs %d/%#x", err, h2, c2, have, crc)
		}
	})
}

// discardRW is a connection stub for handler paths that must fail before
// ever writing (or allocating from) anything.
type discardRW struct{}

func (discardRW) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardRW) Write(p []byte) (int, error) { return len(p), nil }

// TestDecodersBoundAllocationOnLies feeds each new decoder a payload whose
// embedded length fields claim enormous sizes and measures actual heap
// allocation: a malformed input must cost error-formatting bytes, never a
// buffer sized from attacker-controlled fields. The key-offer case goes one
// layer deeper: even a well-formed offer claiming a 1 GiB key must be
// rejected by the receiving Secondary (which sizes buffers from its own
// parameters) before any stash allocation.
func TestDecodersBoundAllocationOnLies(t *testing.T) {
	fixture(t)
	h := hello{Version: ProtocolVersion, LogN: 6}
	joinLie := encodeJoin(h, "x")
	binary.LittleEndian.PutUint32(joinLie[helloPayloadSize:], 0xFFFF_FFF0)
	joinLie = joinLie[:helloPayloadSize+4]
	leaveLie := make([]byte, 4)
	binary.LittleEndian.PutUint32(leaveLie, 0xFFFF_FFF0)
	giant := keyOffer{TotalSize: 1 << 30, ChunkSize: 1 << 20, ChunkCount: 1 << 10, BlobCRC: 1}
	sec := &Secondary{Boot: fx.bt}

	cases := []struct {
		name string
		run  func() error
	}{
		{"join", func() error { _, _, err := decodeJoin(joinLie); return err }},
		{"leave", func() error { _, err := decodeLeave(leaveLie); return err }},
		{"offer-geometry", func() error {
			bad := giant
			bad.ChunkCount--
			_, err := decodeKeyOffer(bad.encode())
			return err
		}},
		{"offer-oversized-for-params", func() error {
			return sec.handleKeyOffer(discardRW{}, &frame{Kind: frameKeyOffer, Payload: giant.encode()}, obs.Nop{})
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Fatalf("%s: lying payload accepted", tc.name)
		}
		const rounds = 64
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < rounds; i++ {
			_ = tc.run()
		}
		runtime.ReadMemStats(&m1)
		if per := (m1.TotalAlloc - m0.TotalAlloc) / rounds; per > 4096 {
			t.Errorf("%s: %d bytes allocated per malformed decode — size fields must not drive allocation", tc.name, per)
		}
	}
}

// TestJoinLeaveProbeRoundTrip pins the happy-path codecs (the fuzzers only
// check stability of whatever the fuzzer happens to accept).
func TestJoinLeaveProbeRoundTrip(t *testing.T) {
	h := hello{Version: ProtocolVersion, LogN: 13, MaxLevel: 7, LWEDim: 500, MaxBatch: 8192, Digest: 0xABCD1234, Flags: helloFlagKeyWarm}
	got, name, err := decodeJoin(encodeJoin(h, "fpga-07"))
	if err != nil || got != h || name != "fpga-07" {
		t.Fatalf("join: %v %+v %q", err, got, name)
	}
	if reason, err := decodeLeave(encodeLeave("draining")); err != nil || reason != "draining" {
		t.Fatalf("leave: %v %q", err, reason)
	}
	if nonce, err := decodeProbe(encodeProbe(42)); err != nil || nonce != 42 {
		t.Fatalf("probe: %v %d", err, nonce)
	}
	o := keyOffer{TotalSize: 2_629_656, ChunkSize: 64 << 10, ChunkCount: 41, BlobCRC: 7}
	if re, err := decodeKeyOffer(o.encode()); err != nil || re != o {
		t.Fatalf("offer: %v %+v", err, re)
	}
	// A warm and a cold hello differ only in flags and must stay compatible.
	cold := h
	cold.Flags = 0
	if err := h.check(cold); err != nil {
		t.Fatalf("key-warm flag must not break the params handshake: %v", err)
	}
}
