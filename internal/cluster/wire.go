package cluster

import (
	"io"
	"net"
	"time"

	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/rlwe"
)

// This file is the exported bridge over the v3 wire protocol for the serving
// layer (internal/serve). The protocol itself — frame layout, payload
// codecs, bounds — lives unexported in frame.go/keystream.go and is shared
// byte-for-byte by the cluster scheduler and the bootstrap service; the
// aliases and wrappers here expose exactly the surface a protocol peer
// outside this package needs, so there is one frame format and one set of
// hardened decoders in the tree.

// Frame is one protocol message (alias of the internal frame type).
type Frame = frame

// Hello is the connection-setup handshake payload.
type Hello = hello

// KeyOffer describes a blind-rotate key blob about to be streamed.
type KeyOffer = keyOffer

// Exported frame kinds.
const (
	FrameHello     = frameHello
	FrameBatch     = frameBatch
	FrameAcc       = frameAcc
	FrameBatchEnd  = frameBatchEnd
	FrameError     = frameError
	FrameShutdown  = frameShutdown
	FrameProbe     = frameProbe
	FrameProbeAck  = frameProbeAck
	FrameJoin      = frameJoin
	FrameJoinAck   = frameJoinAck
	FrameLeave     = frameLeave
	FrameKeyOffer  = frameKeyOffer
	FrameKeyResume = frameKeyResume
	FrameKeyChunk  = frameKeyChunk
	FrameKeyAck    = frameKeyAck
	FrameKeyDone   = frameKeyDone

	// FrameRejected is a non-fatal, per-job admission rejection
	// (server → client): the connection stays usable, Shard echoes the
	// rejected job id, and the payload is a bounded reason string
	// (EncodeReason/DecodeReason). Introduced by the serving layer; the
	// cluster scheduler never emits it.
	FrameRejected = uint32(0xB007_0030)
)

// Exported payload bounds.
const (
	HelloPayloadSize   = helloPayloadSize
	JoinPayloadBound   = joinPayloadBound
	MaxErrorPayload    = maxErrorPayload
	MaxKeyChunkPayload = maxKeyChunkPayload
	KeyOfferSize       = keyOfferPayloadSize
)

// WriteFrame serializes f as a single Write (frames from concurrent writers
// sharing a mutex are never interleaved).
func WriteFrame(w io.Writer, f *Frame) error { return writeFrame(w, f) }

// ReadFrame reads and validates one frame, bounding the payload allocation.
func ReadFrame(r io.Reader, maxPayload int) (*Frame, error) { return readFrame(r, maxPayload) }

// WireSize is the on-the-wire byte count of a frame with the given payload
// length.
func WireSize(payloadLen int) uint64 { return wireSize(payloadLen) }

// HelloFor builds the handshake payload describing bt's parameter set.
func HelloFor(bt *core.Bootstrapper) Hello { return helloFor(bt) }

// LWEDim is the dimension of the LWE ciphertexts bt's Prepare emits.
func LWEDim(bt *core.Bootstrapper) int { return lweDim(bt) }

// EncodeHello serializes a hello payload.
func EncodeHello(h Hello) []byte { return h.encode() }

// DecodeHello parses a hello payload.
func DecodeHello(payload []byte) (Hello, error) { return decodeHello(payload) }

// CheckHello verifies a peer hello against the local one (flags are status,
// not compatibility, and are not compared).
func CheckHello(local, peer Hello) error { return local.check(peer) }

// EncodeJoin serializes a join request: hello + length-prefixed peer name.
func EncodeJoin(h Hello, name string) []byte { return encodeJoin(h, name) }

// DecodeJoin parses and bounds a join payload.
func DecodeJoin(payload []byte) (Hello, string, error) { return decodeJoin(payload) }

// EncodeBatch serializes count followed by (index, LWE ciphertext) pairs.
func EncodeBatch(idxs []int, lwes []*rlwe.LWECiphertext) ([]byte, error) {
	return encodeBatch(idxs, lwes)
}

// DecodeBatch parses and fully validates a batch payload.
func DecodeBatch(payload []byte, maxBatch, dim int, q uint64) ([]int, []*rlwe.LWECiphertext, error) {
	return decodeBatch(payload, maxBatch, dim, q)
}

// EncodeAcc serializes (index, accumulator ciphertext).
func EncodeAcc(idx int, acc *rlwe.Ciphertext) ([]byte, error) { return encodeAcc(idx, acc) }

// DecodeAcc parses an accumulator payload.
func DecodeAcc(payload []byte, p *rlwe.Parameters, maxIndex int) (int, *rlwe.Ciphertext, error) {
	return decodeAcc(payload, p, maxIndex)
}

// BatchPayloadBound is the largest batch payload a server accepts.
func BatchPayloadBound(maxBatch, dim int) int { return batchPayloadBound(maxBatch, dim) }

// AccPayloadBound is the largest accumulator payload a client accepts.
func AccPayloadBound(p *rlwe.Parameters) int { return accPayloadBound(p) }

// EncodeReason serializes a bounded reason string (leave frames, rejection
// frames).
func EncodeReason(reason string) []byte { return encodeLeave(reason) }

// DecodeReason parses a bounded reason payload.
func DecodeReason(payload []byte) (string, error) { return decodeLeave(payload) }

// EncodeKeyOffer serializes a key-stream offer.
func EncodeKeyOffer(o KeyOffer) []byte { return o.encode() }

// DecodeKeyOffer parses and cross-validates a key-stream offer.
func DecodeKeyOffer(payload []byte) (KeyOffer, error) { return decodeKeyOffer(payload) }

// EncodeKeyResume serializes a resume/ack payload (contiguous chunks held +
// blob CRC).
func EncodeKeyResume(have, blobCRC uint32) []byte { return encodeKeyResume(have, blobCRC) }

// DecodeKeyResume parses a resume/ack payload.
func DecodeKeyResume(payload []byte) (have, blobCRC uint32, err error) {
	return decodeKeyResume(payload)
}

// StreamKey pushes a serialized blind-rotate key blob over conn with the
// chunked stop-and-wait protocol from keystream.go (offer → resume → chunks
// with per-chunk acks → done), resuming from whatever the receiver already
// holds. chunkBytes ≤ 0 takes the scheduler default; timeout ≤ 0 disables
// the per-round-trip watchdog. This is
// the client-side path a tenant uses to install its key in a serving
// registry; it is byte-identical to the primary→secondary warm-up stream.
func StreamKey(conn io.ReadWriter, blob []byte, blobCRC uint32, chunkBytes int, timeout time.Duration, rec obs.Recorder) error {
	opts := DefaultOptions()
	if chunkBytes > 0 {
		opts.KeyChunkBytes = chunkBytes
	}
	opts.BatchTimeout = timeout
	var high uint32
	return sendKey(conn, blob, blobCRC, opts.withDefaults(), obs.OrNop(rec), &high, nil)
}

// ListenerFrom adapts a net.Listener to the cluster Listener interface, the
// accept surface AcceptJoins and the serving layer consume (PipeListener is
// the in-process equivalent).
func ListenerFrom(l net.Listener) Listener { return netListener{l} }

type netListener struct{ l net.Listener }

func (n netListener) Accept() (io.ReadWriter, error) { return n.l.Accept() }
