package core

import (
	"testing"

	"heap/internal/ckks"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// Committed precision bounds for the end-to-end bootstrap regression. The
// whole pipeline is deterministic — seeded key generation, seeded encryption
// noise, integer kernels — so the decoded slot error is a reproducible
// number; the bounds carry ~5× headroom over the measured values and exist
// to catch precision regressions (a broken rescale, a lost limb, a bad
// lookup table), not to re-derive the noise analysis (DESIGN.md does that).
const (
	// maxSlotErrExact bounds the exact-mode (NT=0) bootstrap at N=64:
	// measured ≈6e-6 of blind-rotate/packing noise only.
	maxSlotErrExact = 2e-4
	// maxSlotErrKS bounds the n_t-mode bootstrap of the core test fixture
	// (N=256, n_t=24): dominated by the key-switch rounding error, measured
	// ≈0.30 against an analytic bound of 0.46.
	maxSlotErrKS = 0.40
)

// TestBootstrapPrecisionRegression bootstraps a freshly exhausted ciphertext
// at small parameters, decrypts, and asserts the max slot error stays below
// the committed bounds — the precision contract of Algorithm 2 end to end.
func TestBootstrapPrecisionRegression(t *testing.T) {
	t.Run("exact", func(t *testing.T) {
		logN := 6
		q := ring.GenerateNTTPrimes(30, logN, 3)
		p := ring.GenerateNTTPrimesUp(31, logN, 2)
		params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
		kg := rlwe.NewKeyGenerator(params.Parameters, 70)
		sk := kg.GenSecretKey(rlwe.SecretTernary)
		cl := ckks.NewClient(params, sk, 71)
		cfg := DefaultConfig()
		cfg.NT = 0
		cfg.Workers = 2
		bt, err := NewBootstrapper(params, kg, sk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v := testVector(params.Slots)
		out := bt.Bootstrap(cl.EncryptAtLevel(v, 1))
		if out.Level() != bt.AppMaxLevel() {
			t.Fatalf("output level %d, want %d", out.Level(), bt.AppMaxLevel())
		}
		e := worstErr(cl.Decrypt(out), v)
		t.Logf("exact-mode max slot error: %g (committed bound %g)", e, maxSlotErrExact)
		if e > maxSlotErrExact {
			t.Errorf("max slot error %g exceeds the committed bound %g", e, maxSlotErrExact)
		}
	})
	t.Run("keyswitched", func(t *testing.T) {
		params, cl, _, bt := testSetup(t, 4)
		v := testVector(params.Slots)
		out := bt.Bootstrap(cl.EncryptAtLevel(v, 1))
		e := worstErr(cl.Decrypt(out), v)
		t.Logf("n_t-mode max slot error: %g (committed bound %g)", e, maxSlotErrKS)
		if e > maxSlotErrKS {
			t.Errorf("max slot error %g exceeds the committed bound %g", e, maxSlotErrKS)
		}
	})
}
