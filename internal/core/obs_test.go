package core

import (
	"bytes"
	"testing"
	"time"

	"heap/internal/obs"
)

// TestBootstrapTraceAccounting locks the observability contract of a local
// bootstrap: the five pipeline-lane phases tile the end-to-end wall time
// (their sum must agree within 5%), the emitted Chrome trace parses and
// carries the same accounting, and the kernel counters report exactly the
// work Algorithm 2 prescribes for the chosen n_br.
func TestBootstrapTraceAccounting(t *testing.T) {
	params, cl, _, bt := testSetup(t, 4)
	const count = 64
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)

	met := obs.NewMetrics()
	tracer := obs.NewTracer()
	bt.SetRecorder(obs.Combine(met, tracer))
	start := time.Now()
	out := bt.BootstrapSparse(ct, count)
	wallMs := float64(time.Since(start).Microseconds()) / 1e3
	bt.SetRecorder(nil)
	if out == nil {
		t.Fatal("bootstrap returned nil")
	}

	pipeMs := met.PipelineTotalMs()
	if diff := pipeMs - wallMs; diff < -0.05*wallMs || diff > 0.05*wallMs {
		t.Errorf("pipeline phases sum to %.3f ms, measured wall %.3f ms (>5%% apart)", pipeMs, wallMs)
	}

	snap := met.Snapshot()
	for _, stage := range []string{"ModSwitch", "Extract", "BlindRotate", "Repack", "Finish"} {
		st, ok := snap.Pipeline[stage]
		if !ok || st.Count != 1 {
			t.Errorf("pipeline stage %s: want exactly one span, got %+v", stage, st)
		}
	}
	// Shard-lane BlindRotate spans are per key-major tile, not per rotation
	// (the engine streams the BRK once per tile); the exact rotation count
	// lives in the blind_rotates counter.
	tiles := uint64((count + bt.TileSize() - 1) / bt.TileSize())
	if sh := snap.Shards["BlindRotate"]; uint64(sh.Count) != tiles {
		t.Errorf("shard-lane blind-rotate tile spans: got %d, want %d", sh.Count, tiles)
	}

	if got := met.Counter(obs.CounterBlindRotate); got != count {
		t.Errorf("blind_rotates = %d, want %d", got, count)
	}
	if got := met.Counter(obs.CounterBlindRotateTile); got != tiles {
		t.Errorf("blind_rotate_tiles = %d, want %d", got, tiles)
	}
	if met.Counter(obs.CounterBRKBytesStreamed) == 0 {
		t.Error("brk_bytes_streamed counter did not move")
	}
	if got := met.Counter(obs.CounterMerge); got != count-1 {
		t.Errorf("merges = %d, want %d (one per merge-tree node)", got, count-1)
	}
	// Ternary-key blind rotation: two CMux external products per nonzero
	// mask element — data-dependent, but never zero for a real ciphertext.
	if met.Counter(obs.CounterExternalProduct) == 0 || met.Counter(obs.CounterNTT) == 0 {
		t.Error("external-product / NTT counters did not move")
	}
	for g := obs.Gauge(0); int(g) < obs.NumGauges; g++ {
		if v := met.GaugeValue(g); v != 0 {
			t.Errorf("gauge %s = %d after completion, want 0", g, v)
		}
	}

	var buf bytes.Buffer
	if _, err := tracer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if diff := tr.PipelineTotalMs() - wallMs; diff < -0.05*wallMs || diff > 0.05*wallMs {
		t.Errorf("trace pipeline spans sum to %.3f ms, measured wall %.3f ms (>5%% apart)",
			tr.PipelineTotalMs(), wallMs)
	}
	var pipeSpans, shardSpans int
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Phase == "X" && ev.Cat == "pipeline":
			pipeSpans++
			if ev.Tid != 0 {
				t.Errorf("pipeline span %q on tid %d, want 0", ev.Name, ev.Tid)
			}
		case ev.Phase == "X" && ev.Cat == "shard":
			shardSpans++
			if ev.Tid < 1 {
				t.Errorf("shard span %q on tid %d, want >= 1", ev.Name, ev.Tid)
			}
		}
	}
	if pipeSpans != 5 {
		t.Errorf("trace has %d pipeline spans, want 5", pipeSpans)
	}
	if uint64(shardSpans) != tiles {
		t.Errorf("trace has %d shard spans, want %d (one per key-major tile)", shardSpans, tiles)
	}
}

// TestRecorderDefaultsToNop locks that an uninstrumented bootstrapper carries
// the Nop recorder (never nil) and that SetRecorder(nil) restores it.
func TestRecorderDefaultsToNop(t *testing.T) {
	_, _, _, bt := testSetup(t, 1)
	if _, ok := bt.Recorder().(obs.Nop); !ok {
		t.Fatalf("fresh bootstrapper recorder is %T, want obs.Nop", bt.Recorder())
	}
	bt.SetRecorder(obs.NewMetrics())
	if _, ok := bt.Recorder().(*obs.Metrics); !ok {
		t.Fatalf("recorder after SetRecorder is %T, want *obs.Metrics", bt.Recorder())
	}
	bt.SetRecorder(nil)
	if _, ok := bt.Recorder().(obs.Nop); !ok {
		t.Fatalf("recorder after SetRecorder(nil) is %T, want obs.Nop", bt.Recorder())
	}
}
