package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"heap/internal/rlwe"
)

// TestStreamingCollectorMatchesFinish is the streaming bit-exactness lock:
// accumulators delivered to a MergeCollector in a random order from several
// concurrent goroutines — the cluster arrival pattern — must finish to the
// exact ciphertext the batch Finish path produces. Run under -race this also
// exercises the collector's locking.
func TestStreamingCollectorMatchesFinish(t *testing.T) {
	params, cl, _, bt := testSetup(t, 4)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	count := 16
	prep := bt.PrepareSparse(ct, count)
	accs := make([]*rlwe.Ciphertext, count)
	bt.CompleteMissing(prep, accs)
	clone := func() []*rlwe.Ciphertext {
		out := make([]*rlwe.Ciphertext, count)
		for i, acc := range accs {
			out[i] = acc.CopyNew()
		}
		return out
	}

	ref, err := bt.Finish(prep, clone())
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 3; trial++ {
		mc, err := bt.NewMergeCollector(count)
		if err != nil {
			t.Fatal(err)
		}
		streamed := clone()
		order := rand.New(rand.NewSource(int64(trial))).Perm(count)
		idxCh := make(chan int, count)
		for _, i := range order {
			idxCh <- i
		}
		close(idxCh)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					if err := mc.Add(i, streamed[i]); err != nil {
						t.Error(err)
					}
				}
			}()
		}
		wg.Wait()
		merged, err := mc.Merged()
		if err != nil {
			t.Fatal(err)
		}
		out, err := bt.FinishMerged(prep, merged)
		if err != nil {
			t.Fatal(err)
		}
		if !params.QBasis.Equal(ref.C0, out.C0) || !params.QBasis.Equal(ref.C1, out.C1) {
			t.Fatalf("trial %d: streaming finish differs from batch finish", trial)
		}
	}
}

// TestMergeCollectorErrors covers the collector's failure surface: bad
// counts, out-of-range and duplicate deliveries, nil accumulators, and
// premature Merged calls all report errors instead of corrupting the tree.
func TestMergeCollectorErrors(t *testing.T) {
	_, _, _, bt := testSetup(t, 1)

	if _, err := bt.NewMergeCollector(3); err == nil {
		t.Error("expected error for non-power-of-two count")
	}
	if _, err := bt.NewMergeCollector(0); err == nil {
		t.Error("expected error for zero count")
	}

	mc, err := bt.NewMergeCollector(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Add(2, bt.NewAccumulator()); err == nil {
		t.Error("expected error for out-of-range index")
	}
	if err := mc.Add(0, nil); err == nil {
		t.Error("expected error for nil accumulator")
	}
	if err := mc.Add(0, bt.NewAccumulator()); err != nil {
		t.Fatal(err)
	}
	if err := mc.Add(0, bt.NewAccumulator()); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("expected duplicate-delivery error, got %v", err)
	}
	if _, err := mc.Merged(); err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("expected incomplete-merge error, got %v", err)
	}
	if err := mc.Add(1, bt.NewAccumulator()); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Merged(); err != nil {
		t.Fatal(err)
	}
}

// TestFinishValidatesInputs: the error-returning Finish must reject
// mismatched accumulator slices instead of panicking mid-bootstrap.
func TestFinishValidatesInputs(t *testing.T) {
	params, cl, _, bt := testSetup(t, 2)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	prep := bt.PrepareSparse(ct, 8)
	accs := make([]*rlwe.Ciphertext, 4) // wrong length
	if _, err := bt.Finish(prep, accs); err == nil {
		t.Error("expected error for accumulator count mismatch")
	}
	if _, err := bt.Finish(prep, make([]*rlwe.Ciphertext, 8)); err == nil {
		t.Error("expected error for nil accumulators")
	}
}
