package core

import "fmt"

// KeyMaterialReport reproduces the §III-C key-size and key-traffic
// accounting: the scheme-switching bootstrap needs n_t blind-rotate keys of
// (h+1)·d × (h+1) degree-(N−1) polynomials each, read once per batched
// bootstrap thanks to the §IV-E scheduling; the conventional CKKS bootstrap
// streams one ~126 MB hybrid key-switching key per KeySwitch operation.
type KeyMaterialReport struct {
	// HEAP side (paper parameters: N=2^13, 7 limbs, d=2, h=1, n_t=500).
	BRKKeyBytes   int64 // one blind-rotate key
	BRKTotalBytes int64 // n_t keys — also the traffic, each key is read once
	// Conventional side (N=2^16, 24 limbs).
	ConvKeyBytes    int64 // one evaluation key
	ConvKeyCount    int   // distinct keys (24 rotation + 1 relinearization)
	ConvKeyReads    int   // total key-streaming operations per bootstrap
	ConvTotalBytes  int64 // footprint
	ConvTrafficByte int64 // traffic = reads × key size
}

// KeyTrafficRatio is the paper's headline "18× less key data" figure.
func (r KeyMaterialReport) KeyTrafficRatio() float64 {
	return float64(r.ConvTrafficByte) / float64(r.BRKTotalBytes)
}

// PaperKeyMaterialReport evaluates the formulas at the paper's parameters.
func PaperKeyMaterialReport() KeyMaterialReport {
	const (
		n     = 1 << 13
		limbs = 7 // six 36-bit limbs + the auxiliary prime p
		d     = 2 // gadget decomposition number
		h     = 1 // GLWE mask
		nt    = 500
		word  = 8 // bytes per stored coefficient
	)
	var r KeyMaterialReport
	// One GGSW key: (h+1)·d × (h+1) polynomials of N coefficients, each
	// with `limbs` residues.
	polys := (h + 1) * d * (h + 1)
	r.BRKKeyBytes = int64(polys * n * limbs * word)
	r.BRKTotalBytes = int64(nt) * r.BRKKeyBytes

	// Conventional bootstrapping at N=2^16 with 24 limbs: a hybrid
	// key-switching key is 2·dnum polynomials over Q·P; the paper reports
	// ~126 MB per key and 25 keys (24 rotations + 1 relinearization).
	const (
		nBig     = 1 << 16
		limbsB   = 24
		specials = 6
		dnumB    = 4
	)
	r.ConvKeyBytes = int64(2 * dnumB * nBig * (limbsB + specials) * word)
	r.ConvKeyCount = 25
	r.ConvTotalBytes = int64(r.ConvKeyCount) * r.ConvKeyBytes
	// The optimized bootstrap [1] performs ~256 key-switch operations
	// (BSGS rotations of CoeffToSlot/SlotToCoeff plus EvalMod
	// relinearizations), each streaming its key from main memory.
	r.ConvKeyReads = 256
	r.ConvTrafficByte = int64(r.ConvKeyReads) * r.ConvKeyBytes
	return r
}

// MeasuredBRKBytes returns the in-memory blind-rotate key size of this
// bootstrapper instance (functional parameters, for cross-checking the
// formula against the implementation).
func (bt *Bootstrapper) MeasuredBRKBytes() int64 {
	return int64(bt.brk.SizeBytes())
}

// String renders the report like the §III-C discussion.
func (r KeyMaterialReport) String() string {
	gb := func(b int64) float64 { return float64(b) / (1 << 30) }
	mb := func(b int64) float64 { return float64(b) / (1 << 20) }
	return fmt.Sprintf(
		"HEAP brk: %.2f MB/key × 500 = %.2f GB (read once)\n"+
			"Conventional: %.1f MB/key × %d keys = %.2f GB footprint, %d reads → %.1f GB traffic\n"+
			"key-traffic ratio: %.1f×",
		mb(r.BRKKeyBytes), gb(r.BRKTotalBytes),
		mb(r.ConvKeyBytes), r.ConvKeyCount, gb(r.ConvTotalBytes),
		r.ConvKeyReads, gb(r.ConvTrafficByte), r.KeyTrafficRatio())
}
