package core

import (
	"testing"

	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

func assertAccEqual(t *testing.T, idx int, got, want *rlwe.Ciphertext) {
	t.Helper()
	for i := range want.C0.Limbs {
		for j := range want.C0.Limbs[i] {
			if got.C0.Limbs[i][j] != want.C0.Limbs[i][j] || got.C1.Limbs[i][j] != want.C1.Limbs[i][j] {
				t.Fatalf("accumulator %d differs at limb %d coeff %d", idx, i, j)
			}
		}
	}
}

// TestBlindRotateBatchWithKeyMatchesLocal locks the multi-tenant serving
// contract at the core layer: a ColdStart bootstrapper built from nothing
// but the public parameter set computes, under a transplanted tenant
// blind-rotate key, accumulators bit-identical to the tenant rotating
// locally. The lookup table depends only on the parameters and a blind
// rotation is deterministic in (lwe, lut, brk), so the server never needs
// the tenant's secrets.
func TestBlindRotateBatchWithKeyMatchesLocal(t *testing.T) {
	params, cl, _, tenant := testSetup(t, 1)

	v := testVector(params.Slots)
	prep := tenant.PrepareSparse(cl.EncryptAtLevel(v, 1), 8)

	// The tenant's local reference rotations, via both single-shot APIs.
	want := make([]*rlwe.Ciphertext, len(prep.LWEs))
	sc := tenant.NewRotateScratch()
	for i, lwe := range prep.LWEs {
		if i%2 == 0 {
			want[i] = tenant.BlindRotateOne(lwe)
		} else {
			want[i] = tenant.NewAccumulator()
			tenant.BlindRotateOneInto(want[i], lwe, sc)
		}
	}

	// A key-cold server sharing only the public parameter set.
	kg := rlwe.NewKeyGenerator(params.Parameters, 90)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cfg := DefaultConfig()
	cfg.NT = tenant.Cfg.NT
	cfg.Workers = 1
	cfg.Tile = 4
	cfg.ColdStart = true
	srv, err := NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.HasBlindRotateKey() {
		t.Fatal("ColdStart server must boot key-cold")
	}
	if srv.TileSize() != 4 {
		t.Fatalf("TileSize = %d, want the configured 4", srv.TileSize())
	}

	brk := tenant.BlindRotateKey()
	if err := srv.BlindRotateBatchWithKey(nil, nil, nil, tfhe.BatchOptions{}); err == nil {
		t.Fatal("nil key must be rejected")
	}
	if err := srv.BlindRotateBatchWithKey(nil, nil, &tfhe.BlindRotateKey{}, tfhe.BatchOptions{}); err == nil {
		t.Fatal("empty key must be rejected")
	}

	accs := make([]*rlwe.Ciphertext, len(prep.LWEs))
	if err := srv.BlindRotateBatchWithKey(accs, prep.LWEs, brk, tfhe.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range accs {
		assertAccEqual(t, i, accs[i], want[i])
	}

	// The tile building block against the same reference.
	tile := make([]*rlwe.Ciphertext, 2)
	for i := range tile {
		tile[i] = tenant.NewAccumulator()
	}
	tenant.BlindRotateTile(tile, prep.LWEs[:2], tenant.NewBatchScratch())
	for i := range tile {
		assertAccEqual(t, i, tile[i], want[i])
	}

	// Installing the tenant key warms the server for the installed-key APIs.
	if err := srv.SetBlindRotateKey(nil); err == nil {
		t.Fatal("nil key must be rejected by SetBlindRotateKey")
	}
	if err := srv.SetBlindRotateKey(brk); err != nil {
		t.Fatal(err)
	}
	if !srv.HasBlindRotateKey() {
		t.Fatal("server should hold a key after SetBlindRotateKey")
	}
	if got, wantB := srv.MeasuredBRKBytes(), tenant.MeasuredBRKBytes(); got != wantB {
		t.Fatalf("MeasuredBRKBytes = %d after transplant, tenant holds %d", got, wantB)
	}
	assertAccEqual(t, 0, srv.BlindRotateOne(prep.LWEs[0]), want[0])
}

// TestPrepareCoversFullRing pins the dense Prepare wrapper: one LWE per
// coefficient, each carrying the n_t-mode key-switched dimension.
func TestPrepareCoversFullRing(t *testing.T) {
	params, cl, _, bt := testSetup(t, 1)
	prep := bt.Prepare(cl.EncryptAtLevel(testVector(params.Slots), 1))
	if len(prep.LWEs) != params.N() {
		t.Fatalf("Prepare extracted %d LWEs, want N = %d", len(prep.LWEs), params.N())
	}
	if dim := len(prep.LWEs[0].A); dim != bt.Cfg.NT {
		t.Fatalf("prepared LWE dimension %d, want n_t = %d", dim, bt.Cfg.NT)
	}
}
