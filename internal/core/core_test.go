package core

import (
	"math/cmplx"
	"sync"
	"testing"

	"heap/internal/ckks"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// testSetup builds a small scheme-switching context: N=2^8, three 30-bit
// limbs (q0, one application limb, the auxiliary p), Δ=2^28.
func testSetup(t *testing.T, workers int) (*ckks.Parameters, *ckks.Client, *ckks.Evaluator, *Bootstrapper) {
	t.Helper()
	logN := 8
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))

	kg := rlwe.NewKeyGenerator(params.Parameters, 50)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 51)

	cfg := DefaultConfig()
	cfg.NT = 24
	cfg.Workers = workers
	bt, err := NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, nil, false)
	ev := ckks.NewEvaluator(params, keys, nil)
	return params, cl, ev, bt
}

func testVector(n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(0.6*float64(i%9)/9-0.3, 0.5*float64(i%11)/11-0.25)
	}
	return v
}

func worstErr(got, want []complex128) float64 {
	w := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > w {
			w = e
		}
	}
	return w
}

func TestSchemeSwitchBootstrap(t *testing.T) {
	params, cl, _, bt := testSetup(t, 4)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1) // exhausted ciphertext
	out := bt.Bootstrap(ct)

	if out.Level() != bt.AppMaxLevel() {
		t.Fatalf("bootstrap output level %d want %d", out.Level(), bt.AppMaxLevel())
	}
	got := cl.Decrypt(out)
	err := worstErr(got, v)
	bound := bt.ExpectedSlotErrorBound()
	t.Logf("scheme-switching bootstrap max error: %g (analytic bound %g)", err, bound)
	if err > bound {
		t.Errorf("bootstrap error %g exceeds the analytic bound %g", err, bound)
	}
}

// TestSchemeSwitchBootstrapExact runs the NT=0 configuration: no
// dimension-reducing key switch, so the wrap-around values are recovered
// exactly and the only residual error is blind-rotate/packing noise.
func TestSchemeSwitchBootstrapExact(t *testing.T) {
	if testing.Short() {
		t.Skip("exact mode blind-rotates over all N secret coefficients")
	}
	logN := 7
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 50)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 51)

	cfg := DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 2
	bt, err := NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	out := bt.Bootstrap(ct)
	got := cl.Decrypt(out)
	e := worstErr(got, v)
	t.Logf("exact-mode bootstrap max error: %g", e)
	if e > 1e-2 {
		t.Errorf("exact-mode bootstrap error %g exceeds tolerance", e)
	}
}

func TestBootstrapThenMultiply(t *testing.T) {
	params, cl, ev, bt := testSetup(t, 4)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	out := bt.Bootstrap(ct)

	// The refreshed ciphertext must support a real multiplication: the
	// whole point of regaining levels.
	sq := ev.MulRelinRescale(out, out)
	got := cl.Decrypt(sq)
	want := make([]complex128, params.Slots)
	for i := range want {
		want[i] = v[i] * v[i]
	}
	// Squaring roughly doubles the relative bootstrap error.
	if err, bound := worstErr(got, want), 2.5*bt.ExpectedSlotErrorBound(); err > bound {
		t.Errorf("post-bootstrap square error %g exceeds %g", err, bound)
	}
}

// TestRepeatedBootstrapCycle runs two full compute→exhaust→bootstrap cycles
// in exact mode (NT=0): at the miniature test parameters the n_t-mode
// rounding error is too large relative to a post-multiplication scale, a
// regime the analytic bound predicts (see DESIGN.md); the paper-scale
// parameter set has 2N·Δ/q0 = 2^13 of head-room instead of 2^7.
func TestRepeatedBootstrapCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	logN := 7
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 50)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 51)
	cfg := DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 2
	bt, err := NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, nil, false)
	ev := ckks.NewEvaluator(params, keys, nil)

	v := make([]complex128, params.Slots)
	for i := range v {
		v[i] = complex(0.5, 0)
	}
	ct := cl.EncryptAtLevel(v, bt.AppMaxLevel())
	want := complex(0.5, 0)
	for cycle := 0; cycle < 2; cycle++ {
		for ct.Level() > 1 {
			ct = ev.MulRelinRescale(ct, ct)
			want *= want
		}
		ct = bt.Bootstrap(ct)
	}
	got := cl.Decrypt(ct)
	for i := range got {
		if e := cmplx.Abs(got[i] - want); e > 1e-2 {
			t.Fatalf("slot %d after two cycles: %v want %v", i, got[i], want)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	params, cl, _, bt1 := testSetup(t, 1)
	_, _, _, bt4 := testSetup(t, 4)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	out1 := bt1.Bootstrap(ct.CopyNew())
	out4 := bt4.Bootstrap(ct.CopyNew())
	// Same keys (same seeds) and a deterministic pipeline: worker count
	// must not change the result at all.
	for i := range out1.C0.Limbs {
		for j := range out1.C0.Limbs[i] {
			if out1.C0.Limbs[i][j] != out4.C0.Limbs[i][j] || out1.C1.Limbs[i][j] != out4.C1.Limbs[i][j] {
				t.Fatalf("worker count changed the ciphertext at limb %d coeff %d", i, j)
			}
		}
	}
}

func TestModSwitchExactIdentity(t *testing.T) {
	params, _, _, bt := testSetup(t, 1)
	q0 := params.Q[0]
	n := params.N()
	twoN := uint64(2 * n)
	c0 := make([]uint64, n)
	c1 := make([]uint64, n)
	s := ring.NewSampler(60)
	for i := range c0 {
		c0[i] = s.UniformMod(q0)
		c1[i] = s.UniformMod(q0)
	}
	ms := bt.modSwitchExact(c0, c1)
	for i := range c0 {
		// 2N·x = q0·alpha + r exactly, alpha within [0,2N), r centered.
		y := int64(twoN * c0[i])
		if ms.rC0[i] <= -int64(q0)/2-1 || ms.rC0[i] > int64(q0)/2 {
			t.Fatalf("r not centered: %d", ms.rC0[i])
		}
		// Recover alpha before the mod-2N reduction.
		alpha := (y - ms.rC0[i]) / int64(q0)
		if uint64(alpha)%twoN != ms.alphaC0[i] {
			t.Fatalf("coeff %d: identity broken", i)
		}
		_ = c1
	}
}

func TestKeyMaterialReport(t *testing.T) {
	r := PaperKeyMaterialReport()
	// Paper: ~3.52 MB per brk key, ~1.76 GB total, ~18× traffic reduction.
	if mb := float64(r.BRKKeyBytes) / (1 << 20); mb < 3.3 || mb > 3.8 {
		t.Errorf("brk key size %.2f MB, paper says ~3.52 MB", mb)
	}
	if gb := float64(r.BRKTotalBytes) / (1 << 30); gb < 1.6 || gb > 1.9 {
		t.Errorf("brk total %.2f GB, paper says ~1.76 GB", gb)
	}
	if mb := float64(r.ConvKeyBytes) / (1 << 20); mb < 110 || mb > 140 {
		t.Errorf("conventional key %.1f MB, paper says ~126 MB", mb)
	}
	if ratio := r.KeyTrafficRatio(); ratio < 15 || ratio > 21 {
		t.Errorf("key traffic ratio %.1f×, paper says ~18×", ratio)
	}
	if r.String() == "" {
		t.Error("empty report")
	}
}

func TestConfigValidation(t *testing.T) {
	logN := 6
	q := ring.GenerateNTTPrimes(30, logN, 2)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 61)
	sk := kg.GenSecretKey(rlwe.SecretTernary)

	bad := DefaultConfig()
	bad.NT = params.N() // too large: breaks the wrap-around bound
	if _, err := NewBootstrapper(params, kg, sk, bad); err == nil {
		t.Error("expected error for NT ≥ N/2")
	}
	bad = DefaultConfig()
	bad.Workers = 0
	if _, err := NewBootstrapper(params, kg, sk, bad); err == nil {
		t.Error("expected error for zero workers")
	}
}

// TestModSwitchOverflowRejected: modSwitchExact computes 2N·(x mod q0)
// through int64 and silently corrupts every coefficient when 2N·q0 ≥ 2^63.
// Such parameter sets must be rejected at construction, not at bootstrap.
func TestModSwitchOverflowRejected(t *testing.T) {
	logN := 8 // 2N = 2^9, so any q0 ≥ 2^54 overflows 2N·q0 past 2^63
	q := ring.GenerateNTTPrimes(56, logN, 2)
	p := ring.GenerateNTTPrimesUp(57, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<40), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, 62)
	sk := kg.GenSecretKey(rlwe.SecretTernary)

	cfg := DefaultConfig()
	cfg.NT = 24
	if _, err := NewBootstrapper(params, kg, sk, cfg); err == nil {
		t.Fatal("expected error for 2N·q0 ≥ 2^63, got nil")
	}
}

// TestCompleteMissingConcurrentSharedKeySwitcher runs the blind-rotation
// fan-out with Workers > 1 against one shared KeySwitcher — end to end
// through Finish — twice concurrently. Under -race this exercises the
// per-worker scratch arenas and the permCache lock; the results must also
// stay deterministic and identical across the concurrent runs.
func TestCompleteMissingConcurrentSharedKeySwitcher(t *testing.T) {
	params, cl, _, bt := testSetup(t, 8)
	v := testVector(params.Slots)
	ct := cl.EncryptAtLevel(v, 1)
	prep := bt.PrepareSparse(ct, 16)

	outs := make([]*rlwe.Ciphertext, 2)
	var wg sync.WaitGroup
	for k := range outs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			accs := make([]*rlwe.Ciphertext, len(prep.LWEs))
			bt.CompleteMissing(prep, accs)
			out, err := bt.Finish(prep, accs)
			if err != nil {
				t.Error(err)
				return
			}
			outs[k] = out
		}(k)
	}
	wg.Wait()

	for i := range outs[0].C0.Limbs {
		for j := range outs[0].C0.Limbs[i] {
			if outs[0].C0.Limbs[i][j] != outs[1].C0.Limbs[i][j] ||
				outs[0].C1.Limbs[i][j] != outs[1].C1.Limbs[i][j] {
				t.Fatalf("concurrent bootstraps diverged at limb %d coeff %d", i, j)
			}
		}
	}
}

// TestSparseBootstrap exercises the §V n_br knob: a sparsely packed
// ciphertext (slots = N/8) bootstraps with only 2·slots blind rotations,
// and the repacking trace cleans the junk the modulus raise leaves at
// non-subring coefficients.
func TestSparseBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	logN := 8
	slots := 1 << (logN - 3) // sparse: N/8 slots
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), slots)
	kg := rlwe.NewKeyGenerator(params.Parameters, 50)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 51)
	cfg := DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 2
	bt, err := NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := testVector(slots)
	ct := cl.EncryptAtLevel(v, 1)
	out := bt.BootstrapSparse(ct, 2*slots)
	got := cl.Decrypt(out)
	e := worstErr(got, v)
	t.Logf("sparse (n_br=%d of N=%d) bootstrap max error: %g", 2*slots, params.N(), e)
	if e > 1e-2 {
		t.Errorf("sparse bootstrap error %g exceeds tolerance", e)
	}
}
