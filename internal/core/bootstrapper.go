// Package core implements HEAP's primary contribution: CKKS bootstrapping by
// scheme switching (Algorithm 2 of the paper). A level-exhausted CKKS
// ciphertext is floor-divided to the TFHE modulus 2N, its coefficients are
// Extracted into independent LWE ciphertexts, every LWE ciphertext is
// BlindRotated in parallel (no data dependencies — the property the
// multi-FPGA system of §V exploits), the rotated accumulators are repacked
// into one RLWE ciphertext by the primary node, and the wrap-around multiple
// k·q is removed by a single addition instead of a polynomial approximation
// of modular reduction.
package core

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"heap/internal/ckks"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// Config tunes the scheme-switching bootstrapper.
type Config struct {
	// NT is the LWE dimension n_t after key switching (paper: 500, §III-C).
	// It bounds the blind-rotation iteration count and, together with the
	// binary LWE secret, keeps the wrap-around value within the negacyclic
	// lookup table's valid range. NT = 0 selects the exact mode: the
	// dimension-reducing key switch is skipped and the blind rotation runs
	// over all N coefficients of the ternary RLWE secret — slower, but the
	// wrap-around values are recovered without any rounding error.
	NT int
	// LWELogBase is the digit size of the LWE key switch.
	LWELogBase int
	// ScaleUpBits lifts the mod-2N LWE ciphertexts to modulus 2N·2^t before
	// the dimension-reducing key switch, so the switch noise vanishes when
	// rounding back down.
	ScaleUpBits uint
	// Workers is the number of parallel compute nodes the BlindRotate fan-out
	// uses (the software analog of the paper's eight FPGAs).
	Workers int
	// Tile is the key-major batch tile: the number of accumulators that
	// advance together through one pass over the blind-rotate key, so each
	// RGSW key pair is pulled through cache once per tile instead of once
	// per ciphertext — the software analog of the paper's URAM-resident key
	// slabs (§V). 0 selects the tfhe default.
	Tile int
	// Seed drives deterministic key generation.
	Seed uint64
	// ColdStart skips blind-rotate key generation: the node starts key-cold
	// and receives its brk over the cluster's chunked key-streaming channel
	// (SetBlindRotateKey). Everything else — secret keys, key-switching and
	// packing keys, parameter digest — is generated as usual, so a cold node
	// handshakes identically to a warm one.
	ColdStart bool
}

// DefaultConfig mirrors the paper's parameter choices.
func DefaultConfig() Config {
	return Config{NT: 500, LWELogBase: 7, ScaleUpBits: 20, Workers: 8, Tile: tfhe.DefaultTile, Seed: 0xb007}
}

// Bootstrapper holds the key material and evaluators for scheme-switching
// bootstrapping. The last limb of the parameter set's modulus chain is
// reserved as the auxiliary prime p of Algorithm 2: applications run on
// levels 1…L−1 and the bootstrap returns a ciphertext at level L−1.
type Bootstrapper struct {
	Params *ckks.Parameters
	Cfg    Config

	lweSK    *rlwe.LWESecretKey
	brk      *tfhe.BlindRotateKey
	lweKSK   *rlwe.LWEKeySwitchKey
	packKeys *rlwe.PackingKeys
	tfheEv   *tfhe.Evaluator
	lut      *tfhe.LookupTable
	ks       *rlwe.KeySwitcher
	repacker *rlwe.Repacker

	pAux     uint64   // the reserved auxiliary prime (last limb)
	pScalar  int64    // round(p / 2N)
	invNModQ []uint64 // N^{-1} mod each limb, for the sparse ct′ pre-scale

	// rec receives pipeline-stage spans and kernel counters; always non-nil
	// (Nop by default, so the uninstrumented path stays allocation-free).
	rec obs.Recorder
}

// SetRecorder installs the observability recorder for this bootstrapper and
// the shared key switcher beneath it (kernel counters: NTTs, external
// products, key switches, merges). Pass nil to disable. Not safe to call
// concurrently with a running bootstrap.
func (bt *Bootstrapper) SetRecorder(r obs.Recorder) {
	bt.rec = obs.OrNop(r)
	bt.ks.SetRecorder(bt.rec)
}

// Recorder returns the installed recorder (Nop when none was set).
func (bt *Bootstrapper) Recorder() obs.Recorder { return bt.rec }

// AppMaxLevel is the highest level application ciphertexts may use: the top
// limb is the bootstrap's auxiliary prime.
func (bt *Bootstrapper) AppMaxLevel() int { return bt.Params.MaxLevel() - 1 }

// NewBootstrapper generates all bootstrapping key material under sk:
// the blind-rotate keys brk (n_t RGSW pairs), the N→n_t LWE key-switching
// key, and the log N packing automorphism keys.
func NewBootstrapper(params *ckks.Parameters, kg *rlwe.KeyGenerator, sk *rlwe.SecretKey, cfg Config) (*Bootstrapper, error) {
	if params.MaxLevel() < 2 {
		return nil, fmt.Errorf("core: need at least two limbs (one application limb plus the auxiliary prime)")
	}
	if cfg.NT < 0 || cfg.Workers < 1 || cfg.Tile < 0 {
		return nil, fmt.Errorf("core: invalid config %+v", cfg)
	}
	n := params.N()
	twoN := uint64(2 * n)
	if cfg.NT >= n/2 {
		return nil, fmt.Errorf("core: n_t=%d must stay well below N/2 to bound the wrap-around value", cfg.NT)
	}
	// modSwitchExact computes 2N·(x mod q0) and recenters it through int64:
	// 2N·q0 must stay below 2^63 or the floor division silently corrupts
	// every extracted coefficient. Reject such parameter sets up front.
	if params.Q[0] > math.MaxInt64/twoN {
		return nil, fmt.Errorf("core: 2N·q0 = %d·%d overflows int64; pick a smaller q0 or ring degree",
			twoN, params.Q[0])
	}

	bt := &Bootstrapper{Params: params, Cfg: cfg, rec: obs.Nop{}}
	bt.ks = rlwe.NewKeySwitcher(params.Parameters)
	bt.tfheEv = tfhe.NewEvaluator(params.Parameters, bt.ks)

	if cfg.NT == 0 {
		// Exact mode: blind-rotate directly under the RLWE secret.
		bt.lweSK = &rlwe.LWESecretKey{Signed: sk.Signed}
		if !cfg.ColdStart {
			bt.brk = tfhe.GenBlindRotateKey(kg, bt.lweSK, sk)
		}
	} else {
		sampler := ring.NewSampler(cfg.Seed)
		bt.lweSK = kg.GenLWESecretKey(cfg.NT, rlwe.SecretBinary)
		if !cfg.ColdStart {
			bt.brk = tfhe.GenBlindRotateKey(kg, bt.lweSK, sk)
		}
		kskMod := twoN << cfg.ScaleUpBits
		bt.lweKSK = rlwe.GenLWEKeySwitchKey(sk.Signed, bt.lweSK.Signed, kskMod, cfg.LWELogBase, sampler, params.Sigma)
	}
	bt.packKeys = kg.GenPackingKeys(sk)
	bt.repacker = rlwe.NewRepacker(bt.ks, bt.packKeys, cfg.Workers)

	// Lookup table: g(u) = q0 · u · N^{-1} mod Q (the N^{-1} pre-cancels the
	// factor-N scaling of PackRLWEs), valid for |u| < N/2.
	level := params.MaxLevel()
	bigQ := params.QBasis.AtLevel(level).Modulus()
	invN := new(big.Int).ModInverse(big.NewInt(int64(n)), bigQ)
	if invN == nil {
		return nil, fmt.Errorf("core: N not invertible modulo Q")
	}
	q0 := new(big.Int).SetUint64(params.Q[0])
	coef := new(big.Int).Mul(q0, invN)
	coef.Mod(coef, bigQ)
	bt.lut = tfhe.NewLUTFromBig(params.Parameters, level, func(u int) *big.Int {
		return new(big.Int).Mul(coef, big.NewInt(int64(u)))
	})

	bt.invNModQ = make([]uint64, level)
	for i := 0; i < level; i++ {
		m := params.QBasis.Rings[i].Mod
		bt.invNModQ[i] = m.InvMod(uint64(n) % m.Q)
	}

	bt.pAux = params.Q[level-1]
	bt.pScalar = int64((bt.pAux + twoN/2) / twoN) // round(p / 2N)
	return bt, nil
}

// msResult is the exact floor-division of Algorithm 2 steps 1–2:
// 2N·x = q0·alpha + r with r centered, applied componentwise.
type msResult struct {
	alphaC0, alphaC1 []uint64 // ct_ms components, mod 2N
	rC0, rC1         []int64  // ct' components, centered in (−q0/2, q0/2]
}

func (bt *Bootstrapper) modSwitchExact(c0, c1 []uint64) msResult {
	n := bt.Params.N()
	twoN := uint64(2 * n)
	q0 := bt.Params.Q[0]
	out := msResult{
		alphaC0: make([]uint64, n), alphaC1: make([]uint64, n),
		rC0: make([]int64, n), rC1: make([]int64, n),
	}
	split := func(x uint64) (alpha uint64, r int64) {
		y := twoN * (x % q0) // ≤ 2N·q0 < 2^63, validated by NewBootstrapper
		alpha = (y + q0/2) / q0
		r = int64(y) - int64(alpha*q0)
		return alpha % twoN, r
	}
	for j := 0; j < n; j++ {
		out.alphaC0[j], out.rC0[j] = split(c0[j])
		out.alphaC1[j], out.rC1[j] = split(c1[j])
	}
	return out
}

// PreparedBootstrap is the primary node's state between Algorithm 2's steps
// 1–2 and the distributed BlindRotate fan-out: the extracted, key-switched,
// mod-switched LWE ciphertexts ready for distribution, plus the centered
// ct' components needed for the final addition.
type PreparedBootstrap struct {
	LWEs     []*rlwe.LWECiphertext
	rC0, rC1 []int64
	Scale    float64
	// Count is the number of extracted coefficients (the paper's n_br):
	// N for a fully packed ciphertext, 2·slots for sparse packings whose
	// message lives in the X^{N/(2·slots)} subring.
	Count int
}

// Prepare executes steps 1–2 of Algorithm 2 plus Extract / LWE-KeySwitch /
// ModulusSwitch per coefficient, producing the independent LWE ciphertexts
// the primary node distributes (Figure 4).
func (bt *Bootstrapper) Prepare(ct *rlwe.Ciphertext) *PreparedBootstrap {
	return bt.PrepareSparse(ct, bt.Params.N())
}

// PrepareSparse is Prepare restricted to `count` coefficients (the paper's
// n_br parameter, §V): for a sparsely packed ciphertext the message
// polynomial lives in the X^{N/count} subring, so only the count stride
// coefficients need blind rotations — the junk the modulus raise leaves at
// the other positions is annihilated by the repacking trace in Finish.
func (bt *Bootstrapper) PrepareSparse(ct *rlwe.Ciphertext, count int) *PreparedBootstrap {
	p := bt.Params
	n := p.N()
	if count < 1 || count > n || count&(count-1) != 0 {
		panic("core: n_br must be a power of two in [1, N]")
	}
	if ct.Level() != 1 {
		panic("core: scheme-switching bootstrap input must be at level 1")
	}
	tok := bt.rec.Begin(obs.StageModSwitch, obs.LanePipeline)
	b1 := p.QBasis.AtLevel(1)
	c0 := ct.C0.Limbs[0].Copy()
	c1 := ct.C1.Limbs[0].Copy()
	if ct.IsNTT {
		b1.Rings[0].INTT(c0)
		b1.Rings[0].INTT(c1)
		bt.rec.Add(obs.CounterNTT, 2)
	}
	ms := bt.modSwitchExact(c0, c1)
	bt.rec.End(obs.StageModSwitch, obs.LanePipeline, tok)
	twoN := uint64(2 * n)
	prep := &PreparedBootstrap{rC0: ms.rC0, rC1: ms.rC1, Scale: ct.Scale, Count: count}
	gap := n / count
	prep.LWEs = make([]*rlwe.LWECiphertext, count)
	tok = bt.rec.Begin(obs.StageExtract, obs.LanePipeline)
	for i := 0; i < count; i++ {
		lwe := rlwe.ExtractLWEFromPolys(ms.alphaC0, ms.alphaC1, twoN, i*gap)
		if bt.Cfg.NT != 0 {
			up := rlwe.ScaleUpLWE(lwe, bt.Cfg.ScaleUpBits)
			lwe = rlwe.ModSwitchLWE(bt.lweKSK.Apply(up), twoN)
		}
		prep.LWEs[i] = lwe
	}
	bt.rec.End(obs.StageExtract, obs.LanePipeline, tok)
	return prep
}

// BlindRotateOne rotates one prepared LWE ciphertext into its accumulator
// RLWE ciphertext (coefficient representation, full level) — the unit of
// work a secondary node performs.
func (bt *Bootstrapper) BlindRotateOne(lwe *rlwe.LWECiphertext) *rlwe.Ciphertext {
	return bt.tfheEv.BlindRotate(lwe, bt.lut, bt.brk)
}

// NewRotateScratch allocates a per-worker blind-rotation scratch arena.
// A worker loop that holds one and calls BlindRotateOneInto runs the whole
// rotate→decompose→NTT→MAC kernel without allocating.
func (bt *Bootstrapper) NewRotateScratch() *tfhe.Scratch {
	return bt.tfheEv.NewScratch()
}

// NewAccumulator allocates an RLWE ciphertext at the accumulator level, for
// use as the out parameter of BlindRotateOneInto.
func (bt *Bootstrapper) NewAccumulator() *rlwe.Ciphertext {
	return rlwe.NewCiphertext(bt.Params.Parameters, bt.lut.Level)
}

// BlindRotateOneInto is BlindRotateOne writing into a caller-owned
// accumulator with a per-worker scratch arena; allocation-free in steady
// state.
func (bt *Bootstrapper) BlindRotateOneInto(out *rlwe.Ciphertext, lwe *rlwe.LWECiphertext, sc *tfhe.Scratch) {
	bt.tfheEv.BlindRotateInto(out, lwe, bt.lut, bt.brk, sc)
}

// HasBlindRotateKey reports whether the bootstrapper holds a blind-rotate
// key (generated locally or installed via SetBlindRotateKey). A ColdStart
// node serves no rotations until one is installed.
func (bt *Bootstrapper) HasBlindRotateKey() bool { return bt.brk != nil }

// BlindRotateKey returns the node's blind-rotate key (nil on a cold node).
// The cluster's key-streaming sender serializes it for distribution; the key
// is public material ("brk public keys can be computed offline", §II-B), so
// exposing it leaks no secret.
func (bt *Bootstrapper) BlindRotateKey() *tfhe.BlindRotateKey { return bt.brk }

// SetBlindRotateKey installs a received blind-rotate key. The key's
// dimension must match the LWE dimension the bootstrapper extracts to (N in
// exact mode, n_t otherwise). A partially warm key — full-length slices
// with nil entries past the warm prefix — is accepted; callers gate
// rotations on the indices they actually hold.
func (bt *Bootstrapper) SetBlindRotateKey(k *tfhe.BlindRotateKey) error {
	dim := bt.Cfg.NT
	if dim == 0 {
		dim = bt.Params.N()
	}
	if k == nil || k.NumKeys() != dim {
		got := 0
		if k != nil {
			got = k.NumKeys()
		}
		return fmt.Errorf("core: blind-rotate key covers %d indices, want %d", got, dim)
	}
	bt.brk = k
	return nil
}

// TileSize returns the key-major tile size of the batched blind-rotate
// engine (Cfg.Tile, or the tfhe default when unset).
func (bt *Bootstrapper) TileSize() int {
	if bt.Cfg.Tile > 0 {
		return bt.Cfg.Tile
	}
	return tfhe.DefaultTile
}

// NewBatchScratch allocates a per-worker arena for BlindRotateTile.
func (bt *Bootstrapper) NewBatchScratch() *tfhe.BatchScratch {
	return bt.tfheEv.NewBatchScratch()
}

// BlindRotateTile rotates one key-major tile of prepared LWE ciphertexts
// into caller-owned accumulators (tfhe.BlindRotateTileInto): the blind-rotate
// key is pulled through cache once for the whole tile. It is the building
// block cluster workers drain the shared queue with.
func (bt *Bootstrapper) BlindRotateTile(accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, bsc *tfhe.BatchScratch) {
	bt.tfheEv.BlindRotateTileInto(accs, lwes, bt.lut, bt.brk, bsc)
}

// BlindRotateBatch runs the key-major batched engine over prepared LWE
// ciphertexts, filling nil entries of accs. Zero-value options inherit the
// bootstrapper's tile size and accumulator allocator; see tfhe.BatchOptions
// for the worker fan-out and the streaming per-tile hook.
func (bt *Bootstrapper) BlindRotateBatch(accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, opts tfhe.BatchOptions) error {
	if opts.Tile <= 0 {
		opts.Tile = bt.TileSize()
	}
	if opts.NewAcc == nil {
		opts.NewAcc = bt.NewAccumulator
	}
	return bt.tfheEv.BlindRotateBatchInto(accs, lwes, bt.lut, bt.brk, opts)
}

// BlindRotateBatchWithKey is BlindRotateBatch under an explicit blind-rotate
// key instead of the installed one — the multi-tenant serving entry point:
// the bootstrapper contributes the parameter set, the params-only lookup
// table, and the scratch pools, while each request carries its tenant's key
// resolved from a registry. The LUT depends only on the public parameters
// (coef = q0·N⁻¹ mod Q) and a blind rotation is deterministic in
// (lwe, lut, brk), so a ColdStart server computes accumulators bit-identical
// to the tenant running the same rotation locally.
func (bt *Bootstrapper) BlindRotateBatchWithKey(accs []*rlwe.Ciphertext, lwes []*rlwe.LWECiphertext, brk *tfhe.BlindRotateKey, opts tfhe.BatchOptions) error {
	dim := bt.Cfg.NT
	if dim == 0 {
		dim = bt.Params.N()
	}
	if brk == nil || brk.NumKeys() != dim {
		got := 0
		if brk != nil {
			got = brk.NumKeys()
		}
		return fmt.Errorf("core: blind-rotate key covers %d indices, want %d", got, dim)
	}
	if opts.Tile <= 0 {
		opts.Tile = bt.TileSize()
	}
	if opts.NewAcc == nil {
		opts.NewAcc = bt.NewAccumulator
	}
	return bt.tfheEv.BlindRotateBatchInto(accs, lwes, bt.lut, brk, opts)
}

// Missing returns the LWE indices whose accumulators have not been computed
// yet (nil entries of accs). A prepared bootstrap is resumable: the blind
// rotations are mutually independent, so after a partial distributed run —
// some shards lost to node failures — only the returned indices still need
// work before Finish can run.
func (prep *PreparedBootstrap) Missing(accs []*rlwe.Ciphertext) []int {
	if len(accs) != len(prep.LWEs) {
		panic("core: accumulator slice does not match the prepared bootstrap")
	}
	var missing []int
	for i, acc := range accs {
		if acc == nil {
			missing = append(missing, i)
		}
	}
	return missing
}

// CompleteMissing blind-rotates every missing accumulator locally through
// the key-major batched engine: the missing indices are tiled so each RGSW
// key is streamed once per tile, and tiles are fanned out over Cfg.Workers
// goroutines, each owning its scratch arena. It is the fall-back compute of
// a degraded cluster (all peers dead → the primary completes the shards
// itself) and the local half of BootstrapSparse. Shard-lane BlindRotate
// spans are recorded per tile.
func (bt *Bootstrapper) CompleteMissing(prep *PreparedBootstrap, accs []*rlwe.Ciphertext) {
	missing := prep.Missing(accs)
	if len(missing) == 0 {
		return
	}
	tok := bt.rec.Begin(obs.StageBlindRotate, obs.LanePipeline)
	lwes := make([]*rlwe.LWECiphertext, len(missing))
	for k, idx := range missing {
		lwes[k] = prep.LWEs[idx]
	}
	out := make([]*rlwe.Ciphertext, len(missing))
	err := bt.BlindRotateBatch(out, lwes, tfhe.BatchOptions{Workers: bt.Cfg.Workers})
	bt.rec.End(obs.StageBlindRotate, obs.LanePipeline, tok)
	if err != nil {
		// The prepared LWEs and the key material are the bootstrapper's own;
		// a failure here means corrupted keys, not a recoverable input error.
		panic(err)
	}
	for k, idx := range missing {
		accs[idx] = out[k]
	}
}

// Finish executes steps 4–5 of Algorithm 2 on the collected accumulators:
// repack, add ct', multiply by round(p/2N) and rescale by p. Accumulators
// may be in coefficient or NTT representation; they are consumed as scratch.
// The per-accumulator NTTs and the merge tree are fanned out over
// Cfg.Workers goroutines through a MergeCollector, so the repack scales with
// cores; the output is bit-identical for every worker count.
func (bt *Bootstrapper) Finish(prep *PreparedBootstrap, accs []*rlwe.Ciphertext) (*rlwe.Ciphertext, error) {
	count := prep.Count
	if count == 0 {
		count = len(accs)
	}
	if len(accs) != count {
		return nil, fmt.Errorf("core: %d accumulators for a bootstrap of count %d", len(accs), count)
	}
	mc, err := bt.NewMergeCollector(count)
	if err != nil {
		return nil, err
	}
	tok := bt.rec.Begin(obs.StageRepack, obs.LanePipeline)
	workers := bt.Cfg.Workers
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i, acc := range accs {
			if err := mc.Add(i, acc); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < count; i += workers {
					if err := mc.Add(i, accs[i]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	merged, err := mc.Merged()
	bt.rec.End(obs.StageRepack, obs.LanePipeline, tok)
	if err != nil {
		return nil, err
	}
	return bt.finishMerged(prep, merged, count)
}

// FinishMerged executes the tail of Finish on an already-merged ciphertext —
// the output of a MergeCollector whose Add calls ran concurrently with the
// blind-rotate/network fan-out (the streaming path of cluster bootstraps).
func (bt *Bootstrapper) FinishMerged(prep *PreparedBootstrap, merged *rlwe.Ciphertext) (*rlwe.Ciphertext, error) {
	count := prep.Count
	if count == 0 {
		return nil, fmt.Errorf("core: prepared bootstrap has no count")
	}
	return bt.finishMerged(prep, merged, count)
}

// finishMerged adds ct′, runs the shared trace, and rescales by the
// auxiliary prime. ctKq is consumed.
func (bt *Bootstrapper) finishMerged(prep *PreparedBootstrap, ctKq *rlwe.Ciphertext, count int) (*rlwe.Ciphertext, error) {
	tok := bt.rec.Begin(obs.StageFinish, obs.LanePipeline)
	defer bt.rec.End(obs.StageFinish, obs.LanePipeline, tok)
	p := bt.Params
	n := p.N()
	level := p.MaxLevel()
	bL := p.QBasis.AtLevel(level)

	// ct′, pre-scaled by count·N^{-1} so that after the shared trace
	// (factor N/count on subring coefficients) both parts carry factor 1.
	ctPrime := rlwe.NewCiphertext(p.Parameters, level)
	bL.SetSigned(prep.rC0, ctPrime.C0)
	bL.SetSigned(prep.rC1, ctPrime.C1)
	bL.NTT(ctPrime.C0)
	bL.NTT(ctPrime.C1)
	for i := 0; i < level; i++ {
		r := bL.Rings[i]
		c := r.Mod.MulMod(uint64(count)%r.Mod.Q, bt.invNModQ[i])
		r.MulScalar(ctPrime.C0.Limbs[i], c, ctPrime.C0.Limbs[i])
		r.MulScalar(ctPrime.C1.Limbs[i], c, ctPrime.C1.Limbs[i])
	}
	bL.Add(ctKq.C0, ctPrime.C0, ctKq.C0)
	bL.Add(ctKq.C1, ctPrime.C1, ctKq.C1)

	// Shared trace: completes the packing of ct_kq and annihilates the
	// non-subring junk of ct′ in one pass.
	ctKq, err := bt.repacker.Trace(ctKq, count)
	if err != nil {
		return nil, err
	}

	for i := 0; i < level; i++ {
		r := bL.Rings[i]
		c := uint64(bt.pScalar) % r.Mod.Q
		r.MulScalar(ctKq.C0.Limbs[i], c, ctKq.C0.Limbs[i])
		r.MulScalar(ctKq.C1.Limbs[i], c, ctKq.C1.Limbs[i])
	}
	out := &rlwe.Ciphertext{
		C0:    bL.DivRoundByLastModulus(ctKq.C0, true),
		C1:    bL.DivRoundByLastModulus(ctKq.C1, true),
		IsNTT: true,
	}
	// phase_out = m̃ · (2N·round(p/2N)/p); fold the residual factor into the
	// tracked scale so decoding stays exact.
	out.Scale = prep.Scale * float64(2*n) * float64(bt.pScalar) / float64(bt.pAux)
	return out, nil
}

// Bootstrap refreshes a level-1 ciphertext to level AppMaxLevel following
// Algorithm 2, fanning the blind rotations out over Cfg.Workers local
// goroutines. The message magnitude must satisfy |m| ≲ q0/4 so the
// wrap-around value stays inside the lookup table's range (DESIGN.md).
func (bt *Bootstrapper) Bootstrap(ct *rlwe.Ciphertext) *rlwe.Ciphertext {
	return bt.BootstrapSparse(ct, bt.Params.N())
}

// BootstrapSparse bootstraps with the paper's n_br knob: only `count`
// blind rotations for a ciphertext whose message lives in the
// X^{N/count} subring (count = 2·slots for a sparse packing). The
// per-bootstrap work scales linearly with count (§VI-F.1: "sparser packing
// means less LWE ciphertexts and BlindRotate operations").
func (bt *Bootstrapper) BootstrapSparse(ct *rlwe.Ciphertext, count int) *rlwe.Ciphertext {
	prep := bt.PrepareSparse(ct, count)
	accs := make([]*rlwe.Ciphertext, len(prep.LWEs))
	bt.CompleteMissing(prep, accs)
	out, err := bt.Finish(prep, accs)
	if err != nil {
		// PrepareSparse validated count and level and CompleteMissing filled
		// every accumulator; a failure here means corrupted key material, not
		// a recoverable input error.
		panic(err)
	}
	return out
}

// ExpectedSlotErrorBound returns the analytic bound on the decoded slot
// error of one bootstrap (DESIGN.md): each coefficient's wrap-around value
// carries an integer rounding error ε from the dimension-reducing key
// switch (variance ≈ (1 + n_t/2)/12), each such error contributes q0·ε to
// the phase, and the decoding DFT accumulates √(N/2) of them per slot.
// In exact mode (NT = 0) ε = 0 and only the blind-rotate/packing noise
// remains.
func (bt *Bootstrapper) ExpectedSlotErrorBound() float64 {
	if bt.Cfg.NT == 0 {
		return 1e-2
	}
	n := float64(bt.Params.N())
	q0 := float64(bt.Params.Q[0])
	epsVar := (1 + float64(bt.Cfg.NT)/2) / 12
	rms := math.Sqrt(n/2*epsVar) * q0 / (2 * n * bt.Params.DefaultScale)
	return 5 * rms // ~5σ head-room on the max over N/2 slots
}
