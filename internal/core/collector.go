package core

import (
	"fmt"
	"sync"

	"heap/internal/obs"
	"heap/internal/rlwe"
)

// MergeCollector is the streaming half of the paper's §V primary node: the
// blind-rotated accumulators stream back from the secondaries in arbitrary
// order, and sibling nodes of the repacking merge tree are merged the moment
// both are available — so by the time the last accumulator lands, almost the
// entire count−1-node tree is already done and repacking overlaps the
// blind-rotate/network tail instead of running after it.
//
// Concurrency model: Add performs the accumulator's NTT and then climbs the
// tree, executing every merge for which it delivered the second sibling.
// Merges on disjoint subtrees therefore run concurrently in whichever
// goroutines delivered their accumulators; the collector spawns no
// goroutines and never blocks on missing siblings, only on the short
// bookkeeping mutex. The tree shape is fixed by the count alone, so the
// merged result is bit-identical to the serial reference regardless of
// arrival order or caller concurrency.
type MergeCollector struct {
	bt    *Bootstrapper
	count int

	mu sync.Mutex
	// nodes[l][i] holds a completed but not-yet-merged node i of tree level
	// l (level 0 = leaves); it is cleared when claimed by its sibling.
	nodes     [][]*rlwe.Ciphertext
	added     []bool
	delivered int
	root      *rlwe.Ciphertext
	err       error
}

// NewMergeCollector prepares a collector for a bootstrap of `count`
// accumulators (the prepared bootstrap's Count).
func (bt *Bootstrapper) NewMergeCollector(count int) (*MergeCollector, error) {
	if count < 1 || count > bt.Params.N() || count&(count-1) != 0 {
		return nil, fmt.Errorf("core: merge collector needs a power-of-two count in [1, %d], got %d",
			bt.Params.N(), count)
	}
	mc := &MergeCollector{bt: bt, count: count, added: make([]bool, count)}
	levels := 0
	for c := count; c > 1; c >>= 1 {
		levels++
	}
	mc.nodes = make([][]*rlwe.Ciphertext, levels)
	for l := range mc.nodes {
		mc.nodes[l] = make([]*rlwe.Ciphertext, count>>l)
	}
	return mc, nil
}

// Add delivers accumulator idx (coefficient or NTT representation; consumed
// as scratch) and performs every merge it completes. Safe for concurrent use
// from any number of goroutines; each index must be delivered exactly once.
func (mc *MergeCollector) Add(idx int, acc *rlwe.Ciphertext) error {
	if idx < 0 || idx >= mc.count {
		return fmt.Errorf("core: accumulator index %d out of range [0, %d)", idx, mc.count)
	}
	if acc == nil {
		return fmt.Errorf("core: nil accumulator %d", idx)
	}
	mc.mu.Lock()
	if mc.added[idx] {
		mc.mu.Unlock()
		return fmt.Errorf("core: accumulator %d delivered twice", idx)
	}
	mc.added[idx] = true
	mc.delivered++
	mc.mu.Unlock()

	if !acc.IsNTT {
		bL := mc.bt.Params.QBasis.AtLevel(acc.Level())
		bL.NTT(acc.C0)
		bL.NTT(acc.C1)
		acc.IsNTT = true
		mc.bt.rec.Add(obs.CounterNTT, uint64(2*acc.Level()))
	}

	node, l, i := acc, 0, idx
	for {
		m := mc.count >> l // nodes at this tree level
		if m == 1 {
			mc.mu.Lock()
			mc.root = node
			mc.mu.Unlock()
			return nil
		}
		half := m / 2
		parent := i
		partner := i + half
		if i >= half {
			parent = i - half
			partner = i - half
		}
		mc.mu.Lock()
		sib := mc.nodes[l][partner]
		if sib == nil {
			// Sibling not here yet: park this node; whoever delivers the
			// sibling performs the merge.
			mc.nodes[l][i] = node
			mc.mu.Unlock()
			return nil
		}
		mc.nodes[l][partner] = nil
		mc.mu.Unlock()
		e, o := node, sib
		if i >= half {
			e, o = sib, node
		}
		merged, err := mc.bt.repacker.MergePair(e, o, 2<<l)
		if err != nil {
			mc.mu.Lock()
			if mc.err == nil {
				mc.err = err
			}
			mc.mu.Unlock()
			return err
		}
		node, l, i = merged, l+1, parent
	}
}

// Merged returns the fully merged ciphertext (the MergeRLWEs result). It
// does not block: the caller must have completed — and synchronized with —
// all count Add calls first.
func (mc *MergeCollector) Merged() (*rlwe.Ciphertext, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err != nil {
		return nil, mc.err
	}
	if mc.root == nil {
		return nil, fmt.Errorf("core: merge incomplete: %d of %d accumulators delivered", mc.delivered, mc.count)
	}
	return mc.root, nil
}
