// Command benchdiff compares one metric between two BENCH_*.json records
// written by heapbench -benchjson and fails when it regresses past a
// threshold:
//
//	benchdiff old.json new.json
//	benchdiff -metric finish_parallel_ms -max-regress 5 old.json new.json
//
// The metric is lower-is-better (all the heapbench timings are). The default
// metric is the blind-rotate mode's per-rotation figure, which is independent
// of the batch size, so a quick -brcount run can be gated against a committed
// full-size baseline. Context fields that change what the metric means
// (ring, limbs, tile, n_t by default; override with -context) must match
// between the two records; a mismatch is an error, not a regression.
// Everything here is stdlib-only so the gate runs anywhere the toolchain
// does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// defaultContextKeys are the comparability keys every heapbench record
// shares: the arithmetic shape of the measured workload.
const defaultContextKeys = "logN,q_limbs,tile,n_t"

func main() {
	metric := flag.String("metric", "batch_us_per_rot", "numeric JSON field to compare (lower is better)")
	maxRegress := flag.Float64("max-regress", 10, "fail when the metric is worse by more than this percentage")
	contextSpec := flag.String("context", defaultContextKeys, "comma-separated context keys that must match between the records")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-metric name] [-max-regress pct] [-context keys] old.json new.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *metric, *maxRegress, contextKeys(*contextSpec)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// contextKeys splits a -context spec, dropping empty fields so "" disables
// the comparability check entirely (a deliberate, visible choice on the
// command line, not a silent skip).
func contextKeys(spec string) []string {
	var keys []string
	for _, field := range strings.Split(spec, ",") {
		if k := strings.TrimSpace(field); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

func run(oldPath, newPath, metric string, maxRegress float64, ctxKeys []string) error {
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	// A per-rotation or per-run time only compares across runs of the same
	// parameter point; batch size (n_br) and host parallelism may differ
	// because the gated metrics are per-unit and the schedules are
	// bit-identical, but the arithmetic shape must not.
	for _, key := range ctxKeys {
		ov, oOK := number(oldRec, key)
		nv, nOK := number(newRec, key)
		switch {
		case oOK && nOK && ov != nv:
			return fmt.Errorf("benchdiff: %s differs (%v vs %v); the records are not comparable", key, ov, nv)
		case oOK && !nOK:
			// One-sided context is as incomparable as mismatched context: a
			// record that dropped (or never had) the key was produced by a
			// different benchmark shape, and silently skipping the check here
			// let e.g. a repack record gate a blind-rotate baseline.
			return fmt.Errorf("benchdiff: %s has context key %q (%v) but %s lacks it; the records are not comparable", oldPath, key, ov, newPath)
		case nOK && !oOK:
			return fmt.Errorf("benchdiff: %s has context key %q (%v) but %s lacks it; the records are not comparable", newPath, key, nv, oldPath)
		}
	}
	nv, ok := number(newRec, metric)
	if !ok {
		return fmt.Errorf("benchdiff: %s has no numeric field %q", newPath, metric)
	}
	ov, ok := number(oldRec, metric)
	if !ok {
		// A metric the candidate has but the baseline predates is not a
		// regression — it is a freshly instrumented figure with nothing to
		// gate against yet. Pass with a note so adding counters never forces
		// regenerating every committed baseline; the gate arms itself the
		// first time a baseline containing the metric is committed. A metric
		// missing from the *candidate* stays an error (above): that is
		// instrumentation lost, not gained.
		fmt.Printf("benchdiff %s: new %.3f, no baseline value in %s\n", metric, nv, oldPath)
		fmt.Println("benchdiff: OK (new metric, nothing to compare against yet)")
		return nil
	}
	if ov <= 0 {
		return fmt.Errorf("benchdiff: baseline %s = %v is not a positive number", metric, ov)
	}
	delta := (nv - ov) / ov * 100
	fmt.Printf("benchdiff %s: old %.3f, new %.3f, delta %+.1f%% (threshold +%.0f%%)\n",
		metric, ov, nv, delta, maxRegress)
	if delta > maxRegress {
		return fmt.Errorf("benchdiff: FAIL: %s regressed %.1f%% (> %.0f%%)", metric, delta, maxRegress)
	}
	fmt.Println("benchdiff: OK")
	return nil
}

func load(path string) (map[string]any, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec map[string]any
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func number(rec map[string]any, key string) (float64, bool) {
	v, ok := rec[key].(float64) // encoding/json decodes every JSON number as float64
	return v, ok
}
