package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRec(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComparesAndGates(t *testing.T) {
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	okP := writeRec(t, "ok.json", `{"logN": 13, "batch_us_per_rot": 104}`)
	badP := writeRec(t, "bad.json", `{"logN": 13, "batch_us_per_rot": 140}`)

	if err := run(oldP, okP, "batch_us_per_rot", 10); err != nil {
		t.Fatalf("4%% drift within a 10%% threshold must pass: %v", err)
	}
	if err := run(oldP, badP, "batch_us_per_rot", 10); err == nil {
		t.Fatal("40% regression past a 10% threshold must fail")
	}
}

func TestRunNewMetricPassesWithNote(t *testing.T) {
	// The baseline predates the metric: pass (there is nothing to gate
	// against), so instrumenting a new figure never forces regenerating every
	// committed baseline.
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	newP := writeRec(t, "new.json", `{"logN": 13, "batch_us_per_rot": 100, "churn_resume_ms": 12}`)
	if err := run(oldP, newP, "churn_resume_ms", 10); err != nil {
		t.Fatalf("metric absent from baseline must pass with a note: %v", err)
	}
	// The reverse — the candidate lost a metric the baseline has — stays an
	// error: that is instrumentation lost, not gained.
	if err := run(newP, oldP, "churn_resume_ms", 10); err == nil ||
		!strings.Contains(err.Error(), "no numeric field") {
		t.Fatalf("metric missing from candidate must error, got %v", err)
	}
}

func TestRunContextMismatch(t *testing.T) {
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	newP := writeRec(t, "new.json", `{"logN": 14, "batch_us_per_rot": 100}`)
	if err := run(oldP, newP, "batch_us_per_rot", 10); err == nil ||
		!strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("context mismatch must error, got %v", err)
	}
}
