package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRec(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComparesAndGates(t *testing.T) {
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	okP := writeRec(t, "ok.json", `{"logN": 13, "batch_us_per_rot": 104}`)
	badP := writeRec(t, "bad.json", `{"logN": 13, "batch_us_per_rot": 140}`)

	if err := run(oldP, okP, "batch_us_per_rot", 10, contextKeys(defaultContextKeys)); err != nil {
		t.Fatalf("4%% drift within a 10%% threshold must pass: %v", err)
	}
	if err := run(oldP, badP, "batch_us_per_rot", 10, contextKeys(defaultContextKeys)); err == nil {
		t.Fatal("40% regression past a 10% threshold must fail")
	}
}

func TestRunNewMetricPassesWithNote(t *testing.T) {
	// The baseline predates the metric: pass (there is nothing to gate
	// against), so instrumenting a new figure never forces regenerating every
	// committed baseline.
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	newP := writeRec(t, "new.json", `{"logN": 13, "batch_us_per_rot": 100, "churn_resume_ms": 12}`)
	if err := run(oldP, newP, "churn_resume_ms", 10, contextKeys(defaultContextKeys)); err != nil {
		t.Fatalf("metric absent from baseline must pass with a note: %v", err)
	}
	// The reverse — the candidate lost a metric the baseline has — stays an
	// error: that is instrumentation lost, not gained.
	if err := run(newP, oldP, "churn_resume_ms", 10, contextKeys(defaultContextKeys)); err == nil ||
		!strings.Contains(err.Error(), "no numeric field") {
		t.Fatalf("metric missing from candidate must error, got %v", err)
	}
}

func TestRunContextMismatch(t *testing.T) {
	oldP := writeRec(t, "old.json", `{"logN": 13, "batch_us_per_rot": 100}`)
	newP := writeRec(t, "new.json", `{"logN": 14, "batch_us_per_rot": 100}`)
	if err := run(oldP, newP, "batch_us_per_rot", 10, contextKeys(defaultContextKeys)); err == nil ||
		!strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("context mismatch must error, got %v", err)
	}
}

// TestRunContextKeyOneSided locks the fix for the silent skip: the old check
// was `oOK && nOK && ov != nv`, so a context key carried by exactly one
// record — say a repack record gating a blind-rotate baseline — was never
// compared and the diff proceeded as if the records were comparable. Every
// context key is exercised missing from each side.
func TestRunContextKeyOneSided(t *testing.T) {
	full := `{"logN": 13, "q_limbs": 7, "tile": 32, "n_t": 500, "batch_us_per_rot": 100}`
	without := map[string]string{
		"logN":    `{"q_limbs": 7, "tile": 32, "n_t": 500, "batch_us_per_rot": 100}`,
		"q_limbs": `{"logN": 13, "tile": 32, "n_t": 500, "batch_us_per_rot": 100}`,
		"tile":    `{"logN": 13, "q_limbs": 7, "n_t": 500, "batch_us_per_rot": 100}`,
		"n_t":     `{"logN": 13, "q_limbs": 7, "tile": 32, "batch_us_per_rot": 100}`,
	}
	for key, partial := range without {
		for _, missing := range []string{"old", "new"} {
			t.Run(key+"_missing_in_"+missing, func(t *testing.T) {
				oldBody, newBody := full, partial
				if missing == "old" {
					oldBody, newBody = partial, full
				}
				oldP := writeRec(t, "old.json", oldBody)
				newP := writeRec(t, "new.json", newBody)
				err := run(oldP, newP, "batch_us_per_rot", 10, contextKeys(defaultContextKeys))
				if err == nil {
					t.Fatalf("context key %q present on one side only must error", key)
				}
				if !strings.Contains(err.Error(), `"`+key+`"`) {
					t.Fatalf("error must name the key %q: %v", key, err)
				}
				lackingPath := newP
				if missing == "old" {
					lackingPath = oldP
				}
				if !strings.Contains(err.Error(), lackingPath+" lacks it") {
					t.Fatalf("error must name the side lacking the key (%s): %v", lackingPath, err)
				}
			})
		}
	}
}

// TestRunContextKeyAbsentBothSides keeps the repack records working: neither
// BENCH_repack baseline carries tile/n_t, and both-missing stays comparable.
func TestRunContextKeyAbsentBothSides(t *testing.T) {
	rec := `{"logN": 13, "q_limbs": 7, "finish_parallel_ms": 50}`
	oldP := writeRec(t, "old.json", rec)
	newP := writeRec(t, "new.json", rec)
	if err := run(oldP, newP, "finish_parallel_ms", 10, contextKeys(defaultContextKeys)); err != nil {
		t.Fatalf("context keys absent from both records must stay comparable: %v", err)
	}
}

// TestContextKeysFlag locks the -context override: a custom key list is the
// comparability contract, so records that mismatch on a custom key must
// error, records that only mismatch on a key outside the list must pass, and
// an empty spec disables the check entirely.
func TestContextKeysFlag(t *testing.T) {
	oldP := writeRec(t, "old.json", `{"logN": 13, "gomaxprocs": 1, "closed_us_per_job": 100}`)
	newP := writeRec(t, "new.json", `{"logN": 14, "gomaxprocs": 2, "closed_us_per_job": 100}`)

	if err := run(oldP, newP, "closed_us_per_job", 10, contextKeys("gomaxprocs")); err == nil ||
		!strings.Contains(err.Error(), "gomaxprocs") {
		t.Fatalf("custom context key mismatch must error naming the key, got %v", err)
	}
	// logN differs but is outside the custom list: comparable.
	if err := run(oldP, newP, "closed_us_per_job", 10, contextKeys("tile")); err != nil {
		t.Fatalf("keys outside the custom list must not gate: %v", err)
	}
	if err := run(oldP, newP, "closed_us_per_job", 10, contextKeys("")); err != nil {
		t.Fatalf("empty -context disables the check: %v", err)
	}
	if got := contextKeys(defaultContextKeys); len(got) != 4 || got[0] != "logN" || got[3] != "n_t" {
		t.Fatalf("default context keys parsed as %v", got)
	}
}
