package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"heap"
	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/serve"
)

// buildTenant constructs a tenant-side engine at the same public parameter
// set as the daemon's test scale, with its own secret/evaluation keys.
func buildTenant(t *testing.T, seed uint64) *core.Bootstrapper {
	t.Helper()
	cfg := heap.TestContextConfig()
	q := ring.GenerateNTTPrimes(cfg.LimbBits, cfg.LogN, cfg.Limbs)
	p := ring.GenerateNTTPrimesUp(cfg.LimbBits+1, cfg.LogN, cfg.PLimbs)
	params, err := ckks.NewParameters(cfg.LogN, q, p, ring.DefaultSigma, cfg.Dnum,
		float64(uint64(1)<<cfg.LogScale), cfg.Slots)
	if err != nil {
		t.Fatal(err)
	}
	kg := rlwe.NewKeyGenerator(params.Parameters, seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	bt, err := core.NewBootstrapper(params, kg, sk, cfg.Bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func syntheticLWE(dim int, twoN uint64, seed uint64) *rlwe.LWECiphertext {
	s := ring.NewSampler(seed)
	lwe := &rlwe.LWECiphertext{A: make([]uint64, dim), Q: twoN}
	for i := range lwe.A {
		lwe.A[i] = 1 + s.UniformMod(twoN-1)
	}
	lwe.B = s.UniformMod(twoN)
	return lwe
}

// TestDaemonServeShutdownNoLeak boots a real daemon on ephemeral TCP ports,
// drives it as a tenant (key upload + rotations, verified bit-exact),
// checks the /metrics ledger is consistent at quiesce (admitted = served +
// expired + failed, queue empty), shuts down, and requires the goroutine
// count to return to the pre-daemon baseline — listener loop, executors,
// coalescer, per-connection handlers, and the metrics HTTP server all exit.
func TestDaemonServeShutdownNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trips are slow")
	}
	before := runtime.NumGoroutine()
	d, err := startDaemon(daemonConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		scale:       "test",
		window:      3 * time.Millisecond,
		executors:   2,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := d.Shutdown
	defer func() {
		if shutdown != nil {
			shutdown()
		}
	}()

	tenant := buildTenant(t, 777)
	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := serve.NewClient(conn, tenant, "leaky", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.UploadKey(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	dim := cluster.LWEDim(tenant)
	twoN := uint64(2 * tenant.Params.N())
	for j := 0; j < 3; j++ {
		lwes := []*rlwe.LWECiphertext{
			syntheticLWE(dim, twoN, uint64(100+j)),
			syntheticLWE(dim, twoN, uint64(200+j)),
		}
		accs, err := cl.Rotate(lwes, 0)
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
		for k := range accs {
			ref := tenant.BlindRotateOne(lwes[k])
			same := true
			for i := range ref.C0.Limbs {
				for x := range ref.C0.Limbs[i] {
					if accs[k].C0.Limbs[i][x] != ref.C0.Limbs[i][x] || accs[k].C1.Limbs[i][x] != ref.C1.Limbs[i][x] {
						same = false
					}
				}
			}
			if !same {
				t.Fatalf("job %d acc %d differs from local rotation", j, k)
			}
		}
	}

	// Ledger consistency over the real /metrics endpoint at quiesce:
	// admitted = served + expired + failed and nothing left in the queue.
	snap, err := fetchLedger(d.MetricsAddr())
	if err != nil {
		t.Fatal(err)
	}
	adm := snap.Server.Counters["jobs_admitted"]
	done := snap.Server.Counters["jobs_served"] + snap.Server.Counters["jobs_expired"] + snap.Server.Counters["jobs_failed"]
	if adm != 3 || done != 3 {
		t.Fatalf("metrics ledger inconsistent at quiesce: admitted %d, terminal %d (%v)", adm, done, snap.Server.Counters)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d at quiesce", snap.QueueDepth)
	}
	if ts, ok := snap.Tenants["leaky"]; !ok || ts.Admitted != ts.Jobs+ts.Expired+ts.Failed {
		t.Fatalf("tenant ledger inconsistent: %+v", snap.Tenants)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	shutdown()
	shutdown = nil
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchLedger polls /metrics until the job ledger settles (the server
// credits a served job just after the client's BatchEnd), then returns the
// decoded snapshot.
func fetchLedger(addr string) (serve.ServiceSnapshot, error) {
	var snap serve.ServiceSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return snap, err
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return snap, err
		}
		adm := snap.Server.Counters["jobs_admitted"]
		done := snap.Server.Counters["jobs_served"] + snap.Server.Counters["jobs_expired"] + snap.Server.Counters["jobs_failed"]
		if (adm == done && snap.QueueDepth == 0) || time.Now().After(deadline) {
			return snap, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonRejectsUnknownScale: configuration errors surface before any
// listener binds.
func TestDaemonRejectsUnknownScale(t *testing.T) {
	if _, err := startDaemon(daemonConfig{addr: "127.0.0.1:0", scale: "nope"}, io.Discard); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// TestDaemonAdmissionFlagsReachServer: a daemon with a 1-job/s, burst-1
// token bucket rate-limits a burst of back-to-back jobs non-fatally over
// real TCP — the flag plumbing reaches admission, and the connection
// survives to serve again.
func TestDaemonAdmissionFlagsReachServer(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trips are slow")
	}
	d, err := startDaemon(daemonConfig{
		addr:      "127.0.0.1:0",
		scale:     "test",
		window:    time.Millisecond,
		executors: 1,
		rate:      1,
		burst:     1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	tenant := buildTenant(t, 888)
	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := serve.NewClient(conn, tenant, "limited", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.UploadKey(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	dim := cluster.LWEDim(tenant)
	twoN := uint64(2 * tenant.Params.N())
	job := []*rlwe.LWECiphertext{syntheticLWE(dim, twoN, 42)}

	if _, err := cl.Rotate(job, 0); err != nil {
		t.Fatalf("first job (burst token): %v", err)
	}
	var limited bool
	for i := 0; i < 3; i++ {
		_, err := cl.Rotate(job, 0)
		if rej, ok := err.(*serve.RejectedError); ok && rej.IsRateLimited() {
			limited = true
			break
		}
		if err != nil {
			t.Fatalf("burst job %d: unexpected error %v", i, err)
		}
	}
	if !limited {
		t.Fatal("4 back-to-back jobs at rate 1/s burst 1 never rate-limited")
	}
	// The bucket refills on wall time; the same connection must serve again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Rotate(job, 0); err == nil {
			return
		} else if rej, ok := err.(*serve.RejectedError); !ok || !rej.IsRateLimited() {
			t.Fatalf("retry after rate limit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(200 * time.Millisecond)
	}
}
