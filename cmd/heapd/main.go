// Command heapd is the bootstrap-as-a-service daemon: it listens for tenant
// connections speaking the cluster's v3 frame protocol, resolves each
// tenant's blind-rotate key from a concurrent-safe LRU registry (keys arrive
// over the resumable chunked key-stream upload), and coalesces concurrent
// same-tenant jobs into key-major batches so one BRK pass through cache
// serves all of them.
//
//	heapd -addr 127.0.0.1:7901 -metrics 127.0.0.1:7902
//
// The daemon is key-cold by construction: it holds the public parameter set
// and the params-only lookup table, never any tenant secret. Tenants run
// Prepare/Finish locally and ship only the blind rotations (see
// internal/serve and DESIGN.md "Serving layer").
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heap"
	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7901", "frame-protocol listen address")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for the /metrics JSON snapshot (empty = disabled)")
	scale := flag.String("scale", "test", "parameter scale: test (N=128, seconds) or paper (N=2^13, CPU heavy)")
	window := flag.Duration("window", 10*time.Millisecond, "coalescing window: how long a tenant's first job waits for same-key company")
	executors := flag.Int("executors", 1, "concurrent batch executors")
	tile := flag.Int("tile", 0, "key-major tile size (0 = engine default)")
	workers := flag.Int("workers", 0, "batch workers per executor (0 = bootstrapper default)")
	rate := flag.Float64("rate", 0, "per-tenant admission rate in jobs/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-tenant admission burst (0 = max(1, rate))")
	queue := flag.Int("queue", 0, "server-wide queued-job cap, reject-on-full (0 = unbounded)")
	maxKeyMB := flag.Int64("maxkeymb", 0, "registry key budget in MiB, LRU-evicted (0 = unbounded)")
	flag.Parse()

	boot, err := buildBootstrapper(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := serve.NewServer(boot, serve.Config{
		MaxKeyBytes: *maxKeyMB << 20,
		Admission:   serve.AdmissionConfig{QueueLimit: *queue, RatePerSec: *rate, Burst: *burst},
		Window:      *window,
		Executors:   *executors,
		Tile:        *tile,
		Workers:     *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "heapd: metrics listener:", err)
			}
		}()
		fmt.Printf("heapd: metrics on http://%s/metrics\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("heapd: draining")
		_ = ln.Close()
	}()

	fmt.Printf("heapd: serving %s-scale bootstraps on %s (window %v, executors %d)\n",
		*scale, *addr, *window, *executors)
	_ = srv.Serve(cluster.ListenerFrom(ln))
	srv.Close()
	fmt.Println("heapd: stopped")
}

// buildBootstrapper constructs the server-side engine: full parameter set,
// params-only LUT and scratch pools, no blind-rotate key (ColdStart — tenant
// keys live in the registry).
func buildBootstrapper(scale string) (*core.Bootstrapper, error) {
	var cfg heap.ContextConfig
	switch scale {
	case "test":
		cfg = heap.TestContextConfig()
	case "paper":
		cfg = heap.PaperContextConfig()
	default:
		return nil, fmt.Errorf("heapd: unknown -scale %q (test|paper)", scale)
	}
	cfg.Bootstrap.ColdStart = true
	q := ring.GenerateNTTPrimes(cfg.LimbBits, cfg.LogN, cfg.Limbs)
	p := ring.GenerateNTTPrimesUp(cfg.LimbBits+1, cfg.LogN, cfg.PLimbs)
	params, err := ckks.NewParameters(cfg.LogN, q, p, ring.DefaultSigma, cfg.Dnum,
		float64(uint64(1)<<cfg.LogScale), cfg.Slots)
	if err != nil {
		return nil, err
	}
	kg := rlwe.NewKeyGenerator(params.Parameters, cfg.Seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	return core.NewBootstrapper(params, kg, sk, cfg.Bootstrap)
}
