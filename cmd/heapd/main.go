// Command heapd is the bootstrap-as-a-service daemon: it listens for tenant
// connections speaking the cluster's v3 frame protocol, resolves each
// tenant's blind-rotate key from a concurrent-safe LRU registry (keys arrive
// over the resumable chunked key-stream upload), and coalesces concurrent
// same-tenant jobs into key-major batches so one BRK pass through cache
// serves all of them.
//
//	heapd -addr 127.0.0.1:7901 -metrics 127.0.0.1:7902
//
// The daemon is key-cold by construction: it holds the public parameter set
// and the params-only lookup table, never any tenant secret. Tenants run
// Prepare/Finish locally and ship only the blind rotations (see
// internal/serve and DESIGN.md "Serving layer").
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heap"
	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/serve"
)

// daemonConfig is the parsed flag set — main fills it from the command
// line, tests fill it directly.
type daemonConfig struct {
	addr        string
	metricsAddr string // empty = metrics endpoint disabled
	scale       string
	window      time.Duration
	executors   int
	tile        int
	workers     int
	rate        float64
	burst       float64
	queue       int
	maxKeyBytes int64
}

// daemon is a running heapd: listeners bound, serve loop live. Tests start
// one on ephemeral ports, drive it over real TCP, and Shutdown it; main
// starts one on the flag addresses and blocks in Wait.
type daemon struct {
	srv       *serve.Server
	ln        net.Listener
	metricsLn net.Listener
	httpSrv   *http.Server
	served    chan struct{}
}

// startDaemon builds the engine, binds both listeners, and launches the
// serve loops. On success the daemon is accepting connections; progress
// lines go to out.
func startDaemon(cfg daemonConfig, out io.Writer) (*daemon, error) {
	boot, err := buildBootstrapper(cfg.scale)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(boot, serve.Config{
		MaxKeyBytes: cfg.maxKeyBytes,
		Admission:   serve.AdmissionConfig{QueueLimit: cfg.queue, RatePerSec: cfg.rate, Burst: cfg.burst},
		Window:      cfg.window,
		Executors:   cfg.executors,
		Tile:        cfg.tile,
		Workers:     cfg.workers,
	})
	d := &daemon{srv: srv, served: make(chan struct{})}

	d.ln, err = net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	if cfg.metricsAddr != "" {
		d.metricsLn, err = net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			_ = d.ln.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		d.httpSrv = &http.Server{Handler: mux}
		go func() { _ = d.httpSrv.Serve(d.metricsLn) }()
		fmt.Fprintf(out, "heapd: metrics on http://%s/metrics\n", d.metricsLn.Addr())
	}

	fmt.Fprintf(out, "heapd: serving %s-scale bootstraps on %s (window %v, executors %d)\n",
		cfg.scale, d.ln.Addr(), cfg.window, cfg.executors)
	go func() {
		defer close(d.served)
		_ = d.srv.Serve(cluster.ListenerFrom(d.ln))
	}()
	return d, nil
}

// Addr returns the bound frame-protocol address (useful with ":0").
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// MetricsAddr returns the bound metrics address ("" when disabled).
func (d *daemon) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// Wait blocks until the serve loop exits (listener closed).
func (d *daemon) Wait() { <-d.served }

// Shutdown drains the daemon: stop accepting, wait for in-flight
// connections, release the executors, and stop the metrics endpoint.
// Idempotent enough for main's signal path and a test's defer to share.
func (d *daemon) Shutdown() {
	_ = d.ln.Close()
	<-d.served
	d.srv.Close()
	if d.httpSrv != nil {
		_ = d.httpSrv.Close()
	}
}

func main() {
	var cfg daemonConfig
	var maxKeyMB int64
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7901", "frame-protocol listen address")
	flag.StringVar(&cfg.metricsAddr, "metrics", "", "HTTP listen address for the /metrics JSON snapshot (empty = disabled)")
	flag.StringVar(&cfg.scale, "scale", "test", "parameter scale: test (N=128, seconds) or paper (N=2^13, CPU heavy)")
	flag.DurationVar(&cfg.window, "window", 10*time.Millisecond, "coalescing window: how long a tenant's first job waits for same-key company")
	flag.IntVar(&cfg.executors, "executors", 1, "concurrent batch executors")
	flag.IntVar(&cfg.tile, "tile", 0, "key-major tile size (0 = engine default)")
	flag.IntVar(&cfg.workers, "workers", 0, "batch workers per executor (0 = bootstrapper default)")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-tenant admission rate in jobs/sec (0 = unlimited)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-tenant admission burst (0 = max(1, rate))")
	flag.IntVar(&cfg.queue, "queue", 0, "server-wide queued-job cap, reject-on-full (0 = unbounded)")
	flag.Int64Var(&maxKeyMB, "maxkeymb", 0, "registry key budget in MiB, LRU-evicted (0 = unbounded)")
	nosimd := flag.Bool("nosimd", false, "disable the vectorized modular kernels and run the pure scalar paths (also: HEAP_NOSIMD=1)")
	flag.Parse()
	cfg.maxKeyBytes = maxKeyMB << 20
	if *nosimd {
		ring.SetSIMD(false)
	}
	obs.SetISA(ring.SIMDLevel())

	d, err := startDaemon(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("heapd: draining")
		_ = d.ln.Close()
	}()
	d.Wait()
	d.Shutdown()
	fmt.Println("heapd: stopped")
}

// buildBootstrapper constructs the server-side engine: full parameter set,
// params-only LUT and scratch pools, no blind-rotate key (ColdStart — tenant
// keys live in the registry).
func buildBootstrapper(scale string) (*core.Bootstrapper, error) {
	var cfg heap.ContextConfig
	switch scale {
	case "test":
		cfg = heap.TestContextConfig()
	case "paper":
		cfg = heap.PaperContextConfig()
	default:
		return nil, fmt.Errorf("heapd: unknown -scale %q (test|paper)", scale)
	}
	cfg.Bootstrap.ColdStart = true
	q := ring.GenerateNTTPrimes(cfg.LimbBits, cfg.LogN, cfg.Limbs)
	p := ring.GenerateNTTPrimesUp(cfg.LimbBits+1, cfg.LogN, cfg.PLimbs)
	params, err := ckks.NewParameters(cfg.LogN, q, p, ring.DefaultSigma, cfg.Dnum,
		float64(uint64(1)<<cfg.LogScale), cfg.Slots)
	if err != nil {
		return nil, err
	}
	kg := rlwe.NewKeyGenerator(params.Parameters, cfg.Seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	return core.NewBootstrapper(params, kg, sk, cfg.Bootstrap)
}
