// Command heapbench regenerates the paper's evaluation tables (II–VIII)
// from the calibrated hardware model, the workload schedules, and the
// published baseline numbers:
//
//	heapbench            # print every table
//	heapbench -table 5   # print one table
//	heapbench -keys      # §III-C key-traffic accounting
//	heapbench -sweep     # FPGA-count scaling sweep for the bootstrap
//	heapbench -cluster   # fault-tolerant distributed bootstrap demo
//
// The -cpuprofile and -memprofile flags write pprof profiles of whichever
// mode runs — the intended use is profiling the blind-rotation hot path via
// -cluster (e.g. heapbench -cluster -cpuprofile cpu.out -memprofile mem.out).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"heap"
	"heap/internal/cluster"
	"heap/internal/experiments"
	"heap/internal/hwsim"
)

func main() {
	table := flag.Int("table", 0, "print a single table (2-8)")
	keys := flag.Bool("keys", false, "print the §III-C key-material report")
	area := flag.Bool("area", false, "print the §VI-B area/power comparison")
	sweep := flag.Bool("sweep", false, "sweep bootstrap latency over FPGA counts")
	chaos := flag.Bool("cluster", false, "run an in-process distributed bootstrap with fault injection")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the selected mode to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	switch {
	case *chaos:
		if err := runCluster(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *keys:
		fmt.Print(experiments.KeyReport())
	case *area:
		fmt.Print(experiments.AreaReport())
	case *sweep:
		fmt.Println("Scheme-switching bootstrap latency vs number of FPGAs (fully packed, n=4096)")
		fmt.Printf("%6s %12s %12s %12s\n", "FPGAs", "step3 (ms)", "comm (ms)", "total (ms)")
		for _, n := range []int{1, 2, 4, 8, 16} {
			s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), n)
			b := s.Bootstrap(1 << 12)
			fmt.Printf("%6d %12.4f %12.4f %12.4f\n", n, b.Step3Ms, b.CommMs, b.TotalMs)
		}
	case *table != 0:
		var out string
		switch *table {
		case 2:
			out = experiments.Table2()
		case 3:
			out = experiments.Table3()
		case 4:
			out = experiments.Table4()
		case 5:
			out = experiments.Table5()
		case 6:
			out = experiments.Table6()
		case 7:
			out = experiments.Table7()
		case 8:
			out = experiments.Table8()
		default:
			fmt.Fprintln(os.Stderr, "tables 2-8 are available")
			os.Exit(2)
		}
		fmt.Print(out)
	default:
		fmt.Print(experiments.All())
	}
}

// runCluster runs the parallelized bootstrap (§V) across three in-process
// nodes connected by byte pipes, with one link deliberately cut mid-stream
// to exercise the retry/reassignment path, and checks the result against a
// purely local bootstrap of the same ciphertext (they must be bit-identical,
// since blind rotations are deterministic and node-placement-independent).
func runCluster() error {
	mk := func() (*heap.Context, error) { return heap.NewContext(heap.TestContextConfig()) }
	primary, err := mk()
	if err != nil {
		return err
	}
	v := make([]complex128, primary.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	// Bootstrap is deterministic in the input ciphertext, so the same ct
	// bootstrapped locally and across the cluster must agree bit for bit.
	ct := primary.Client.EncryptAtLevel(v, 1)
	reference := primary.Boot.Bootstrap(ct)

	nodes := make([]*cluster.Node, 2)
	for i := range nodes {
		sec, err := mk()
		if err != nil {
			return err
		}
		local, remote := net.Pipe()
		go func() { _ = (&cluster.Secondary{Boot: sec.Boot}).Serve(remote) }()
		nodes[i] = &cluster.Node{Conn: local, Name: fmt.Sprintf("fpga-%d", i)}
	}
	// Cut node 0's link after 8 KiB of accumulator traffic: its remaining
	// LWE indices are reassigned to node 1 and the primary's local workers.
	nodes[0].Conn = cluster.NewFaultConn(nodes[0].Conn, cluster.FaultPlan{Seed: 42, CutReadAfter: 8 << 10})

	start := time.Now()
	out, stats, err := (&cluster.Primary{Boot: primary.Boot}).BootstrapCluster(
		context.Background(), ct, nodes, cluster.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("distributed bootstrap with one link cut mid-stream: %v\n%s",
		time.Since(start).Round(time.Millisecond), stats)

	for i := 0; i < out.Level(); i++ {
		for j, c := range out.C0.Limbs[i] {
			if c != reference.C0.Limbs[i][j] || out.C1.Limbs[i][j] != reference.C1.Limbs[i][j] {
				return fmt.Errorf("limb %d coeff %d differs from local bootstrap", i, j)
			}
		}
	}
	fmt.Printf("result bit-identical to local bootstrap; slot0 = %.3f (want 0.400)\n",
		real(primary.Decrypt(out)[0]))
	return nil
}
