// Command heapbench regenerates the paper's evaluation tables (II–VIII)
// from the calibrated hardware model, the workload schedules, and the
// published baseline numbers:
//
//	heapbench            # print every table
//	heapbench -table 5   # print one table
//	heapbench -keys      # §III-C key-traffic accounting
//	heapbench -sweep     # FPGA-count scaling sweep for the bootstrap
//	heapbench -cluster   # fault-tolerant distributed bootstrap demo
//	heapbench -benchjson BENCH_repack.json
//	                     # time the repack/Finish tail serial vs parallel
//	                     # at the paper ring and write the numbers as JSON
//	heapbench -trace out.json
//	                     # run a local bootstrap with the observability layer
//	                     # on and write a Chrome trace_event timeline (open in
//	                     # chrome://tracing or Perfetto); also prints the
//	                     # expvar-style metrics snapshot
//	heapbench -cluster -trace out.json
//	                     # same, for the distributed fault-injection demo:
//	                     # one timeline lane per node/worker, Fig. 4 style
//
// The -cpuprofile and -memprofile flags write pprof profiles of whichever
// mode runs — the intended use is profiling the blind-rotation hot path via
// -cluster (e.g. heapbench -cluster -cpuprofile cpu.out -memprofile mem.out).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"heap"
	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/experiments"
	"heap/internal/hwsim"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

func main() {
	table := flag.Int("table", 0, "print a single table (2-8)")
	keys := flag.Bool("keys", false, "print the §III-C key-material report")
	area := flag.Bool("area", false, "print the §VI-B area/power comparison")
	sweep := flag.Bool("sweep", false, "sweep bootstrap latency over FPGA counts")
	chaos := flag.Bool("cluster", false, "run an in-process distributed bootstrap with fault injection")
	benchJSON := flag.String("benchjson", "", "benchmark the repack/Finish tail at the paper ring and write JSON to this file")
	trace := flag.String("trace", "", "write a Chrome trace_event timeline of the bootstrap to this file (combine with -cluster for the distributed demo)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the selected mode to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	switch {
	case *benchJSON != "":
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaos:
		if err := runCluster(*trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *trace != "":
		if err := runTraceLocal(*trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *keys:
		fmt.Print(experiments.KeyReport())
	case *area:
		fmt.Print(experiments.AreaReport())
	case *sweep:
		fmt.Println("Scheme-switching bootstrap latency vs number of FPGAs (fully packed, n=4096)")
		fmt.Printf("%6s %12s %12s %12s\n", "FPGAs", "step3 (ms)", "comm (ms)", "total (ms)")
		for _, n := range []int{1, 2, 4, 8, 16} {
			s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), n)
			b := s.Bootstrap(1 << 12)
			fmt.Printf("%6d %12.4f %12.4f %12.4f\n", n, b.Step3Ms, b.CommMs, b.TotalMs)
		}
	case *table != 0:
		var out string
		switch *table {
		case 2:
			out = experiments.Table2()
		case 3:
			out = experiments.Table3()
		case 4:
			out = experiments.Table4()
		case 5:
			out = experiments.Table5()
		case 6:
			out = experiments.Table6()
		case 7:
			out = experiments.Table7()
		case 8:
			out = experiments.Table8()
		default:
			fmt.Fprintln(os.Stderr, "tables 2-8 are available")
			os.Exit(2)
		}
		fmt.Print(out)
	default:
		fmt.Print(experiments.All())
	}
}

// benchResult is the JSON record runBenchJSON writes: the parameter set,
// the measured serial and parallel wall times of the Finish tail (steps 4–5
// of Algorithm 2: accumulator NTTs, merge tree, shared trace, rescale), and
// the resulting speedup. Cores is recorded because the speedup is only
// meaningful when the host actually has parallel hardware.
type benchResult struct {
	LogN       int     `json:"logN"`
	Limbs      int     `json:"q_limbs"`
	Count      int     `json:"n_br"`
	Cores      int     `json:"cores"`
	Workers    int     `json:"parallel_workers"`
	Runs       int     `json:"runs_per_point"`
	SerialMs   float64 `json:"finish_serial_ms"`
	ParallelMs float64 `json:"finish_parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// runBenchJSON times the repacking tail of the bootstrap at the paper's ring
// (N=2^13, seven 36-bit limbs, n_br=256) with one worker and with one worker
// per core (minimum four, the ISSUE's target), and writes the best-of-N
// timings as JSON. The two configurations compute bit-identical outputs —
// locked by the repack equivalence tests — so this is a pure scheduling
// comparison.
func runBenchJSON(path string) error {
	q := ring.GenerateNTTPrimes(36, 13, 7)
	p := ring.GenerateNTTPrimesUp(37, 13, 4)
	params := ckks.MustParameters(13, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<35), 1<<12)
	kg := rlwe.NewKeyGenerator(params.Parameters, 41)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 42)
	cfg := core.DefaultConfig()
	cfg.NT = 8 // the Finish tail never touches n_t; small n_t keeps keygen quick
	cfg.Workers = 1
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		return err
	}
	const count = 256
	const runs = 3
	v := make([]complex128, params.Slots)
	prep := bt.PrepareSparse(cl.EncryptAtLevel(v, 1), count)
	s := ring.NewSampler(43)
	accs := make([]*rlwe.Ciphertext, count)
	for i := range accs {
		acc := bt.NewAccumulator()
		for l := 0; l < acc.Level(); l++ {
			s.UniformPoly(params.QBasis.Rings[l], acc.C0.Limbs[l])
			s.UniformPoly(params.QBasis.Rings[l], acc.C1.Limbs[l])
		}
		accs[i] = acc
	}
	timeFinish := func(workers int) (float64, error) {
		bt.Cfg.Workers = workers
		best := math.MaxFloat64
		for r := 0; r < runs; r++ {
			// Finish consumes the accumulators but preserves their level;
			// resetting IsNTT restores the real workload each run.
			for _, acc := range accs {
				acc.IsNTT = false
			}
			t0 := time.Now()
			if _, err := bt.Finish(prep, accs); err != nil {
				return 0, err
			}
			if d := float64(time.Since(t0).Microseconds()) / 1e3; d < best {
				best = d
			}
		}
		return best, nil
	}
	res := benchResult{LogN: 13, Limbs: 7, Count: count, Cores: runtime.NumCPU(), Runs: runs}
	res.Workers = res.Cores
	if res.Workers < 4 {
		res.Workers = 4
	}
	fmt.Printf("timing Finish (N=2^13, 7 limbs, n_br=%d) serial vs %d workers on %d core(s)...\n",
		count, res.Workers, res.Cores)
	if res.SerialMs, err = timeFinish(1); err != nil {
		return err
	}
	if res.ParallelMs, err = timeFinish(res.Workers); err != nil {
		return err
	}
	res.Speedup = res.SerialMs / res.ParallelMs
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serial %.1f ms, parallel %.1f ms, speedup %.2fx -> %s\n",
		res.SerialMs, res.ParallelMs, res.Speedup, path)
	return nil
}

// writeTraceAndSnapshot flushes a tracer timeline to tracePath and prints the
// metrics snapshot plus the instrumented-vs-measured accounting: the sum of
// the pipeline-lane phase durations must agree with the end-to-end wall time
// (they tile it; the conformance tests hold the gap under 5%).
func writeTraceAndSnapshot(tracePath string, tracer *obs.Tracer, met *obs.Metrics, wall time.Duration) error {
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if _, err := tracer.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot:\n%s", met.JSON())
	fmt.Printf("pipeline phases sum to %.1f ms of %.1f ms measured; timeline -> %s\n",
		met.PipelineTotalMs(), float64(wall.Microseconds())/1e3, tracePath)
	return nil
}

// runTraceLocal runs one fully local bootstrap with the observability layer
// installed (Metrics aggregate + Chrome trace timeline) and writes both out.
func runTraceLocal(tracePath string) error {
	ctx, err := heap.NewContext(heap.TestContextConfig())
	if err != nil {
		return err
	}
	v := make([]complex128, ctx.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	ct := ctx.Client.EncryptAtLevel(v, 1)

	met := obs.NewMetrics()
	tracer := obs.NewTracer()
	ctx.Boot.SetRecorder(obs.Combine(met, tracer))
	start := time.Now()
	out := ctx.Boot.Bootstrap(ct)
	wall := time.Since(start)
	ctx.Boot.SetRecorder(nil)

	fmt.Printf("local bootstrap: %v; slot0 = %.3f (want 0.400)\n",
		wall.Round(time.Millisecond), real(ctx.Decrypt(out)[0]))
	return writeTraceAndSnapshot(tracePath, tracer, met, wall)
}

// runCluster runs the parallelized bootstrap (§V) across three in-process
// nodes connected by byte pipes, with one link deliberately cut mid-stream
// to exercise the retry/reassignment path, and checks the result against a
// purely local bootstrap of the same ciphertext (they must be bit-identical,
// since blind rotations are deterministic and node-placement-independent).
// With a non-empty tracePath the distributed run is recorded by the
// observability layer: one timeline lane per node and local worker.
func runCluster(tracePath string) error {
	mk := func() (*heap.Context, error) { return heap.NewContext(heap.TestContextConfig()) }
	primary, err := mk()
	if err != nil {
		return err
	}
	v := make([]complex128, primary.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	// Bootstrap is deterministic in the input ciphertext, so the same ct
	// bootstrapped locally and across the cluster must agree bit for bit.
	ct := primary.Client.EncryptAtLevel(v, 1)
	reference := primary.Boot.Bootstrap(ct)

	nodes := make([]*cluster.Node, 2)
	for i := range nodes {
		sec, err := mk()
		if err != nil {
			return err
		}
		local, remote := net.Pipe()
		go func() { _ = (&cluster.Secondary{Boot: sec.Boot}).Serve(remote) }()
		nodes[i] = &cluster.Node{Conn: local, Name: fmt.Sprintf("fpga-%d", i)}
	}
	// Cut node 0's link after 8 KiB of accumulator traffic: its remaining
	// LWE indices are reassigned to node 1 and the primary's local workers.
	nodes[0].Conn = cluster.NewFaultConn(nodes[0].Conn, cluster.FaultPlan{Seed: 42, CutReadAfter: 8 << 10})

	var (
		met    *obs.Metrics
		tracer *obs.Tracer
	)
	if tracePath != "" {
		met, tracer = obs.NewMetrics(), obs.NewTracer()
		primary.Boot.SetRecorder(obs.Combine(met, tracer))
	}
	start := time.Now()
	out, stats, err := (&cluster.Primary{Boot: primary.Boot}).BootstrapCluster(
		context.Background(), ct, nodes, cluster.DefaultOptions())
	wall := time.Since(start)
	if tracePath != "" {
		primary.Boot.SetRecorder(nil)
	}
	if err != nil {
		return err
	}
	fmt.Printf("distributed bootstrap with one link cut mid-stream: %v\n%s",
		wall.Round(time.Millisecond), stats)
	if tracePath != "" {
		if err := writeTraceAndSnapshot(tracePath, tracer, met, wall); err != nil {
			return err
		}
	}

	for i := 0; i < out.Level(); i++ {
		for j, c := range out.C0.Limbs[i] {
			if c != reference.C0.Limbs[i][j] || out.C1.Limbs[i][j] != reference.C1.Limbs[i][j] {
				return fmt.Errorf("limb %d coeff %d differs from local bootstrap", i, j)
			}
		}
	}
	fmt.Printf("result bit-identical to local bootstrap; slot0 = %.3f (want 0.400)\n",
		real(primary.Decrypt(out)[0]))
	return nil
}
