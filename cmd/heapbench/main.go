// Command heapbench regenerates the paper's evaluation tables (II–VIII)
// from the calibrated hardware model, the workload schedules, and the
// published baseline numbers:
//
//	heapbench            # print every table
//	heapbench -table 5   # print one table
//	heapbench -keys      # §III-C key-traffic accounting
//	heapbench -sweep     # FPGA-count scaling sweep for the bootstrap
//	heapbench -cluster   # fault-tolerant distributed bootstrap demo
//	heapbench -cluster -churn
//	                     # self-healing elastic cluster demo: hedged dispatch
//	                     # around a stalled node, a cold node joining mid-run,
//	                     # a kill mid-key-upload with a chunk-exact resume
//	                     # after rejoin, and a graceful drain — each run
//	                     # checked bit-exact against a local bootstrap
//	heapbench -benchjson BENCH_repack.json
//	                     # time the repack/Finish tail serial vs parallel
//	                     # at the paper ring and write the numbers as JSON
//	heapbench -benchjson BENCH_blindrotate.json
//	                     # time ciphertext-major vs key-major batched blind
//	                     # rotation at the paper ring and write the numbers
//	                     # (plus the counter-verified BRK traffic) as JSON;
//	                     # the mode is picked by the output basename, and
//	                     # -brcount/-brtile/-brworkers/-brnt/-brruns shrink
//	                     # or reshape the run for quick regression checks
//	heapbench -benchjson BENCH_kernels.json
//	                     # per-prime modular-kernel ablation over the committed
//	                     # basis (generic Barrett vs fixed-shift Barrett vs
//	                     # Montgomery vs Shoup scalar chains, plus the Shoup- vs
//	                     # Montgomery-twiddle NTT and the generic vs fixed-shift
//	                     # vector MAC at the paper ring); -kruns sets the timed
//	                     # runs per point
//	heapbench -benchjson BENCH_load.json
//	                     # closed-/open-loop scaling matrix through the full
//	                     # serving stack (internal/load): a worker/executor
//	                     # sweep plus an offered-load sweep per arrival
//	                     # pattern, each point with latency percentiles,
//	                     # rejection rate, and coalescing counters;
//	                     # -ldjobs/-ldworkers/-ldrates/-ldpatterns reshape it
//	heapbench -trace out.json
//	                     # run a local bootstrap with the observability layer
//	                     # on and write a Chrome trace_event timeline (open in
//	                     # chrome://tracing or Perfetto); also prints the
//	                     # expvar-style metrics snapshot
//	heapbench -cluster -trace out.json
//	                     # same, for the distributed fault-injection demo:
//	                     # one timeline lane per node/worker, Fig. 4 style
//
// The -cpuprofile and -memprofile flags write pprof profiles of whichever
// mode runs — the intended use is profiling the blind-rotation hot path via
// -cluster (e.g. heapbench -cluster -cpuprofile cpu.out -memprofile mem.out).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/big"
	"math/bits"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"heap"
	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/experiments"
	"heap/internal/hwsim"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

func main() {
	table := flag.Int("table", 0, "print a single table (2-8)")
	keys := flag.Bool("keys", false, "print the §III-C key-material report")
	area := flag.Bool("area", false, "print the §VI-B area/power comparison")
	sweep := flag.Bool("sweep", false, "sweep bootstrap latency over FPGA counts")
	chaos := flag.Bool("cluster", false, "run an in-process distributed bootstrap with fault injection")
	churn := flag.Bool("churn", false, "with -cluster: elastic membership churn demo (join/leave/kill mid-key-upload/hedge)")
	benchJSON := flag.String("benchjson", "", "benchmark and write JSON to this file (mode from -benchmode, falling back to the output basename)")
	benchMode := flag.String("benchmode", "", "benchjson mode: repack | blindrotate | kernels | serve | load (empty = infer from the output basename: BENCH_blindrotate* → blindrotate, BENCH_kernels* → kernels, BENCH_service* → serve, BENCH_load* → load, else repack)")
	serveFlag := flag.Bool("serve", false, "with -benchjson: shorthand for -benchmode serve (service-level load driver)")
	svcTenants := flag.Int("svctenants", 2, "serve mode: tenants (distinct keys)")
	svcConns := flag.Int("svcconns", 2, "serve mode: concurrent connections per tenant")
	svcJobs := flag.Int("svcjobs", 8, "serve mode: jobs per connection")
	svcBatch := flag.Int("svcbatch", 16, "serve mode: rotations per job")
	svcWindow := flag.Duration("svcwindow", 20*time.Millisecond, "serve mode: coalescing window")
	ldJobs := flag.Int("ldjobs", 48, "load mode: jobs per matrix point")
	ldWorkers := flag.String("ldworkers", "1,2", "load mode: comma-separated parallelism sweep for the closed-loop points (each entry runs as N executors and, when >1, as N batch workers; clamped to GOMAXPROCS)")
	ldRates := flag.String("ldrates", "100,200,400", "load mode: comma-separated offered-load sweep in jobs/s for the open-loop points")
	ldPatterns := flag.String("ldpatterns", "uniform,hotkey,bursty", "load mode: comma-separated arrival patterns for the open-loop sweep")
	brCount := flag.Int("brcount", 256, "blind-rotate mode: batch size n_br")
	brTile := flag.Int("brtile", tfhe.DefaultTile, "blind-rotate mode: key-major tile size")
	brWorkers := flag.Int("brworkers", 1, "blind-rotate mode: batch workers (1 isolates the cache effect; >1 adds core scaling)")
	brNT := flag.Int("brnt", 8, "blind-rotate mode: LWE dimension n_t (per-rotation cost scales linearly; the paper's 500 takes minutes per rotation on a CPU)")
	brRuns := flag.Int("brruns", 2, "blind-rotate mode: timed runs per schedule (best is kept)")
	kRuns := flag.Int("kruns", 3, "kernels mode: timed runs per kernel point (best is kept)")
	rpWorkers := flag.String("rpworkers", "", "repack mode: comma-separated worker counts to sweep (e.g. 1,2,4,8); the sweep is appended to the JSON as worker_sweep alongside the gated serial/parallel pair")
	trace := flag.String("trace", "", "write a Chrome trace_event timeline of the bootstrap to this file (combine with -cluster for the distributed demo)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the selected mode to this file")
	nosimd := flag.Bool("nosimd", false, "disable the vectorized modular kernels and run the pure scalar paths (also: HEAP_NOSIMD=1)")
	flag.Parse()

	if *nosimd {
		ring.SetSIMD(false)
	}
	obs.SetISA(ring.SIMDLevel())

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	switch {
	case *benchJSON != "":
		// Mode selection: explicit flag wins; otherwise fall back to the
		// output basename. The old basename-only dispatch silently ran the
		// repack benchmark for any path not spelled BENCH_blindrotate*, so
		// the selected mode (and what selected it) is now printed up front.
		mode := *benchMode
		if *serveFlag && mode == "" {
			mode = "serve"
		}
		selectedBy := "-benchmode"
		if mode == "" {
			selectedBy = "output basename"
			base := filepath.Base(*benchJSON)
			switch {
			case strings.HasPrefix(base, "BENCH_blindrotate"):
				mode = "blindrotate"
			case strings.HasPrefix(base, "BENCH_kernels"):
				mode = "kernels"
			case strings.HasPrefix(base, "BENCH_service"):
				mode = "serve"
			case strings.HasPrefix(base, "BENCH_load"):
				mode = "load"
			default:
				mode = "repack"
			}
		}
		fmt.Printf("benchjson mode: %s (selected by %s)\n", mode, selectedBy)
		var err error
		switch mode {
		case "blindrotate":
			err = runBenchBlindRotate(*benchJSON, *brCount, *brTile, *brWorkers, *brNT, *brRuns)
		case "kernels":
			err = runBenchKernels(*benchJSON, *kRuns)
		case "serve":
			err = runBenchServe(*benchJSON, *svcTenants, *svcConns, *svcJobs, *svcBatch, *svcWindow)
		case "load":
			err = runBenchLoad(*benchJSON, *ldJobs, *ldWorkers, *ldRates, *ldPatterns)
		case "repack":
			err = runBenchJSON(*benchJSON, *rpWorkers)
		default:
			err = fmt.Errorf("unknown -benchmode %q (repack|blindrotate|kernels|serve|load)", mode)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaos && *churn:
		if err := runChurn(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaos:
		if err := runCluster(*trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *trace != "":
		if err := runTraceLocal(*trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *keys:
		fmt.Print(experiments.KeyReport())
	case *area:
		fmt.Print(experiments.AreaReport())
	case *sweep:
		fmt.Println("Scheme-switching bootstrap latency vs number of FPGAs (fully packed, n=4096)")
		fmt.Printf("%6s %12s %12s %12s\n", "FPGAs", "step3 (ms)", "comm (ms)", "total (ms)")
		for _, n := range []int{1, 2, 4, 8, 16} {
			s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), n)
			b := s.Bootstrap(1 << 12)
			fmt.Printf("%6d %12.4f %12.4f %12.4f\n", n, b.Step3Ms, b.CommMs, b.TotalMs)
		}
	case *table != 0:
		var out string
		switch *table {
		case 2:
			out = experiments.Table2()
		case 3:
			out = experiments.Table3()
		case 4:
			out = experiments.Table4()
		case 5:
			out = experiments.Table5()
		case 6:
			out = experiments.Table6()
		case 7:
			out = experiments.Table7()
		case 8:
			out = experiments.Table8()
		default:
			fmt.Fprintln(os.Stderr, "tables 2-8 are available")
			os.Exit(2)
		}
		fmt.Print(out)
	default:
		fmt.Print(experiments.All())
	}
}

// benchResult is the JSON record runBenchJSON writes: the parameter set,
// the measured serial and parallel wall times of the Finish tail (steps 4–5
// of Algorithm 2: accumulator NTTs, merge tree, shared trace, rescale), and
// the resulting speedup. Cores is recorded because the speedup is only
// meaningful when the host actually has parallel hardware.
type benchResult struct {
	LogN        int          `json:"logN"`
	Limbs       int          `json:"q_limbs"`
	Count       int          `json:"n_br"`
	Cores       int          `json:"cores"`
	Workers     int          `json:"parallel_workers"`
	Runs        int          `json:"runs_per_point"`
	SerialMs    float64      `json:"finish_serial_ms"`
	ParallelMs  float64      `json:"finish_parallel_ms"`
	Speedup     float64      `json:"speedup"`
	WorkerSweep []sweepPoint `json:"worker_sweep,omitempty"`
}

// sweepPoint is one entry of the optional -rpworkers sweep: the Finish wall
// time at an explicit worker count. The sweep rides alongside the gated
// serial/parallel pair (a new JSON field is a benchdiff pass-with-note, so
// sweeping never invalidates a committed baseline).
type sweepPoint struct {
	Workers  int     `json:"workers"`
	FinishMs float64 `json:"finish_ms"`
}

// runBenchJSON times the repacking tail of the bootstrap at the paper's ring
// (N=2^13, seven 36-bit limbs, n_br=256) with one worker and with one worker
// per core (minimum four, the ISSUE's target), and writes the best-of-N
// timings as JSON. The two configurations compute bit-identical outputs —
// locked by the repack equivalence tests — so this is a pure scheduling
// comparison. A non-empty sweepSpec ("1,2,4") additionally times Finish at
// each listed worker count.
func runBenchJSON(path, sweepSpec string) error {
	q := ring.GenerateNTTPrimes(36, 13, 7)
	p := ring.GenerateNTTPrimesUp(37, 13, 4)
	params := ckks.MustParameters(13, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<35), 1<<12)
	kg := rlwe.NewKeyGenerator(params.Parameters, 41)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 42)
	cfg := core.DefaultConfig()
	cfg.NT = 8 // the Finish tail never touches n_t; small n_t keeps keygen quick
	cfg.Workers = 1
	bt, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		return err
	}
	const count = 256
	const runs = 3
	v := make([]complex128, params.Slots)
	prep := bt.PrepareSparse(cl.EncryptAtLevel(v, 1), count)
	s := ring.NewSampler(43)
	accs := make([]*rlwe.Ciphertext, count)
	for i := range accs {
		acc := bt.NewAccumulator()
		for l := 0; l < acc.Level(); l++ {
			s.UniformPoly(params.QBasis.Rings[l], acc.C0.Limbs[l])
			s.UniformPoly(params.QBasis.Rings[l], acc.C1.Limbs[l])
		}
		accs[i] = acc
	}
	timeFinish := func(workers int) (float64, error) {
		bt.Cfg.Workers = workers
		best := math.MaxFloat64
		for r := 0; r < runs; r++ {
			// Finish consumes the accumulators but preserves their level;
			// resetting IsNTT restores the real workload each run.
			for _, acc := range accs {
				acc.IsNTT = false
			}
			t0 := time.Now()
			if _, err := bt.Finish(prep, accs); err != nil {
				return 0, err
			}
			if d := float64(time.Since(t0).Microseconds()) / 1e3; d < best {
				best = d
			}
		}
		return best, nil
	}
	res := benchResult{LogN: 13, Limbs: 7, Count: count, Cores: runtime.NumCPU(), Runs: runs}
	res.Workers = res.Cores
	if res.Workers < 4 {
		res.Workers = 4
	}
	fmt.Printf("timing Finish (N=2^13, 7 limbs, n_br=%d) serial vs %d workers on %d core(s)...\n",
		count, res.Workers, res.Cores)
	if res.SerialMs, err = timeFinish(1); err != nil {
		return err
	}
	if res.ParallelMs, err = timeFinish(res.Workers); err != nil {
		return err
	}
	res.Speedup = res.SerialMs / res.ParallelMs
	if sweepSpec != "" {
		for _, field := range strings.Split(sweepSpec, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || w <= 0 {
				return fmt.Errorf("heapbench: -rpworkers %q: each entry must be a positive integer", sweepSpec)
			}
			ms, err := timeFinish(w)
			if err != nil {
				return err
			}
			fmt.Printf("  sweep w%d: %.1f ms\n", w, ms)
			res.WorkerSweep = append(res.WorkerSweep, sweepPoint{Workers: w, FinishMs: ms})
		}
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serial %.1f ms, parallel %.1f ms, speedup %.2fx -> %s\n",
		res.SerialMs, res.ParallelMs, res.Speedup, path)
	return nil
}

// kernelPrimeResult is one row of the per-prime kernel ablation: the
// best-of-N latency of each scalar reduction kernel on a serially dependent
// chain at that modulus (the software analog of the paper's §IV-A
// DSP-multiplier comparison, measured per modulus because the fixed-shift
// Barrett window and the Montgomery constants are per-prime).
type kernelPrimeResult struct {
	Q              uint64  `json:"q"`
	Bits           int     `json:"bits"`
	BarrettNs      float64 `json:"barrett_ns"`
	BarrettFixedNs float64 `json:"barrett_fixed_ns"`
	MontgomeryNs   float64 `json:"montgomery_ns"`
	ShoupNs        float64 `json:"shoup_ns"`
}

// kernelsBenchResult is the JSON record runBenchKernels writes: the
// per-prime scalar-chain table over the committed basis, basis-wide
// averages, and the two vector-level figures the Makefile gate compares —
// the Shoup-twiddle NTT (the default transform) and the fixed-shift Barrett
// MAC (the basis-conversion/external-product inner loop), both at the paper
// ring. The Montgomery-twiddle NTT and the generic-Barrett MAC ride along
// as the ablation counterfactuals.
type kernelsBenchResult struct {
	LogN              int                 `json:"logN"`
	Limbs             int                 `json:"q_limbs"`
	Cores             int                 `json:"cores"`
	Runs              int                 `json:"runs_per_point"`
	PerPrime          []kernelPrimeResult `json:"per_prime"`
	BarrettNsAvg      float64             `json:"barrett_ns_avg"`
	BarrettFixedNsAvg float64             `json:"barrett_fixed_ns_avg"`
	MontgomeryNsAvg   float64             `json:"montgomery_ns_avg"`
	ShoupNsAvg        float64             `json:"shoup_ns_avg"`
	NTTShoupUs        float64             `json:"ntt_shoup_us"`
	NTTMontgomeryUs   float64             `json:"ntt_montgomery_us"`
	INTTUs            float64             `json:"intt_us"`
	MacGenericUs      float64             `json:"mac_generic_us"`
	MacFixedUs        float64             `json:"mac_fixed_us"`
	// Vector-dispatch tier: the same NTT and fixed-shift MAC with the AVX2
	// kernels enabled. The scalar columns above are always measured with the
	// vector path forced off, so they stay comparable across PRs and hosts;
	// the speedups are scalar/vector on this run. Omitted (with ISA "none")
	// when the host or build has no vector path.
	ISA             string  `json:"isa"`
	NTTAvx2Us       float64 `json:"ntt_avx2_us,omitempty"`
	INTTAvx2Us      float64 `json:"intt_avx2_us,omitempty"`
	MacAvx2Us       float64 `json:"mac_avx2_us,omitempty"`
	NTTSIMDSpeedup  float64 `json:"ntt_simd_speedup,omitempty"`
	INTTSIMDSpeedup float64 `json:"intt_simd_speedup,omitempty"`
	MacSIMDSpeedup  float64 `json:"mac_simd_speedup,omitempty"`
}

// kernelSink defeats dead-code elimination of the scalar chains.
var kernelSink uint64

// chainNs times a serially dependent scalar chain: f must consume its
// running value each iteration so the measured latency is the kernel's
// dependent latency, not its pipelined throughput. Best of runs, ns/op.
func chainNs(runs, iters int, f func(iters int) uint64) float64 {
	best := math.MaxFloat64
	for r := 0; r < runs; r++ {
		t0 := time.Now()
		kernelSink ^= f(iters)
		if d := float64(time.Since(t0).Nanoseconds()) / float64(iters); d < best {
			best = d
		}
	}
	return best
}

// runBenchKernels measures the per-prime modular-kernel ablation over the
// committed paper basis and writes it as JSON. Three tiers: (1) scalar
// dependent-latency chains of the four reduction kernels at every modulus,
// (2) the full logN=13 NTT under Shoup vs Montgomery twiddles (bit-identical
// transforms — the delta is pure kernel choice), (3) the vector MAC
// (MulCoeffsAndAdd's fixed-shift loop vs a generic two-word Barrett scalar
// reference). The committed BENCH_kernels.json gates tiers 2 and 3 via
// `make bench-kernels`; tier 1 is the explanatory table DESIGN.md cites.
func runBenchKernels(path string, runs int) error {
	if runs <= 0 {
		return fmt.Errorf("heapbench: -kruns must be positive")
	}
	primes := ring.GenerateNTTPrimes(36, 13, 7)
	primes = append(primes, ring.GenerateNTTPrimesUp(37, 13, 4)...)
	res := kernelsBenchResult{LogN: 13, Limbs: 7, Cores: runtime.NumCPU(), Runs: runs}
	fmt.Printf("timing reduction kernels over %d primes (best of %d runs)...\n", len(primes), runs)

	const chainIters = 1 << 21
	for _, q := range primes {
		m := ring.NewModulus(q)
		row := kernelPrimeResult{Q: q, Bits: bits.Len64(q)}
		row.BarrettNs = chainNs(runs, chainIters, func(n int) uint64 {
			r := uint64(987654321)
			for i := 0; i < n; i++ {
				r = m.MulModBarrett(r^uint64(i), 123456789)
			}
			return r
		})
		row.BarrettFixedNs = chainNs(runs, chainIters, func(n int) uint64 {
			// r^i stays far below q²/b, so the x < q² precondition holds.
			r := uint64(987654321)
			for i := 0; i < n; i++ {
				r = m.MulModBarrettFixed(r^uint64(i), 123456789)
			}
			return r
		})
		row.MontgomeryNs = chainNs(runs, chainIters, func(n int) uint64 {
			xm := m.MForm(123456789)
			r := uint64(987654321)
			for i := 0; i < n; i++ {
				r = m.MRed(r^uint64(i), xm)
			}
			return r
		})
		row.ShoupNs = chainNs(runs, chainIters, func(n int) uint64 {
			w := uint64(123456789)
			wS := m.ShoupPrecomp(w)
			r := uint64(987654321)
			for i := 0; i < n; i++ {
				r = m.MulModShoup(r^uint64(i), w, wS)
			}
			return r
		})
		res.PerPrime = append(res.PerPrime, row)
		res.BarrettNsAvg += row.BarrettNs
		res.BarrettFixedNsAvg += row.BarrettFixedNs
		res.MontgomeryNsAvg += row.MontgomeryNs
		res.ShoupNsAvg += row.ShoupNs
	}
	np := float64(len(primes))
	res.BarrettNsAvg /= np
	res.BarrettFixedNsAvg /= np
	res.MontgomeryNsAvg /= np
	res.ShoupNsAvg /= np

	// Tier 2: the real transform at the paper ring, both twiddle modes.
	// The scalar columns are measured with the vector dispatch forced off so
	// they track the scalar kernels across PRs regardless of host ISA; the
	// AVX2 tier below re-enables it for the vector columns.
	r := ring.NewRing(13, primes[0])
	poly := r.NewPoly()
	ring.NewSampler(71).UniformPoly(r, poly)
	const nttReps = 64
	timeNTT := func(f func(ring.Poly)) float64 {
		best := math.MaxFloat64
		for run := 0; run < runs; run++ {
			t0 := time.Now()
			for i := 0; i < nttReps; i++ {
				f(poly)
			}
			if d := float64(time.Since(t0).Microseconds()) / nttReps; d < best {
				best = d
			}
		}
		return best
	}
	hadSIMD := ring.SIMDLevel() == "avx2"
	ring.SetSIMD(false)
	res.NTTShoupUs = timeNTT(r.NTT)
	res.NTTMontgomeryUs = timeNTT(r.NTTMontgomery)
	res.INTTUs = timeNTT(r.INTT)

	// Tier 3: the vector MAC — the open-coded fixed-shift loop inside
	// MulCoeffsAndAdd against a generic two-word Barrett scalar reference.
	a, bb, acc := r.NewPoly(), r.NewPoly(), r.NewPoly()
	s := ring.NewSampler(72)
	s.UniformPoly(r, a)
	s.UniformPoly(r, bb)
	const macReps = 64
	timeMAC := func() float64 {
		best := math.MaxFloat64
		for run := 0; run < runs; run++ {
			t0 := time.Now()
			for i := 0; i < macReps; i++ {
				r.MulCoeffsAndAdd(a, bb, acc)
			}
			if d := float64(time.Since(t0).Microseconds()) / macReps; d < best {
				best = d
			}
		}
		return best
	}
	res.MacFixedUs = timeMAC()
	m := r.Mod
	res.MacGenericUs = math.MaxFloat64
	for run := 0; run < runs; run++ {
		t0 := time.Now()
		for i := 0; i < macReps; i++ {
			for j := range acc {
				acc[j] = m.AddMod(acc[j], m.MulModBarrett(a[j], bb[j]))
			}
		}
		if d := float64(time.Since(t0).Microseconds()) / macReps; d < res.MacGenericUs {
			res.MacGenericUs = d
		}
	}

	// Tier 4: the vector-dispatch columns, same workloads with AVX2 back on.
	if hadSIMD {
		ring.SetSIMD(true)
		res.NTTAvx2Us = timeNTT(r.NTT)
		res.INTTAvx2Us = timeNTT(r.INTT)
		res.MacAvx2Us = timeMAC()
		res.NTTSIMDSpeedup = res.NTTShoupUs / res.NTTAvx2Us
		res.INTTSIMDSpeedup = res.INTTUs / res.INTTAvx2Us
		res.MacSIMDSpeedup = res.MacFixedUs / res.MacAvx2Us
	}
	res.ISA = ring.SIMDLevel()

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("scalar avg over basis: Barrett %.1f ns, fixed Barrett %.1f ns, Montgomery %.1f ns, Shoup %.1f ns\n",
		res.BarrettNsAvg, res.BarrettFixedNsAvg, res.MontgomeryNsAvg, res.ShoupNsAvg)
	fmt.Printf("NTT (logN=13): Shoup %.1f us, Montgomery %.1f us, INTT %.1f us; MAC: fixed %.1f us, generic %.1f us\n",
		res.NTTShoupUs, res.NTTMontgomeryUs, res.INTTUs, res.MacFixedUs, res.MacGenericUs)
	if res.ISA != "none" {
		fmt.Printf("%s: NTT %.1f us (%.2fx), INTT %.1f us (%.2fx), MAC %.1f us (%.2fx) -> %s\n",
			res.ISA, res.NTTAvx2Us, res.NTTSIMDSpeedup, res.INTTAvx2Us, res.INTTSIMDSpeedup, res.MacAvx2Us, res.MacSIMDSpeedup, path)
	} else {
		fmt.Printf("vector path unavailable (isa=none) -> %s\n", path)
	}
	return nil
}

// brBenchResult is the JSON record runBenchBlindRotate writes: the parameter
// point, the wall time of the whole batch under each schedule, the derived
// per-rotation figures (the count-independent numbers `make benchdiff`
// gates on), and the BRK traffic taken from the brk_bytes_streamed counters —
// the same accounting TestKeyReuseMatchesSoftwareCounters locks against the
// hardware model's KeyTraffic.
type brBenchResult struct {
	LogN          int     `json:"logN"`
	Limbs         int     `json:"q_limbs"`
	NT            int     `json:"n_t"`
	Count         int     `json:"n_br"`
	Tile          int     `json:"tile"`
	Workers       int     `json:"workers"`
	Cores         int     `json:"cores"`
	Runs          int     `json:"runs_per_point"`
	PerCtMs       float64 `json:"per_ct_ms"`
	BatchMs       float64 `json:"batch_ms"`
	PerCtUsPerRot float64 `json:"per_ct_us_per_rot"`
	BatchUsPerRot float64 `json:"batch_us_per_rot"`
	Speedup       float64 `json:"speedup"`
	PerCtKeyBytes int64   `json:"per_ct_brk_bytes"`
	BatchKeyBytes int64   `json:"batch_brk_bytes"`
	KeyReuse      float64 `json:"key_reuse"`
	ModelKeyReuse float64 `json:"model_key_reuse"`
}

// runBenchBlindRotate times a batch of blind rotations at the paper's ring
// (N=2^13, seven 36-bit limbs) under the ciphertext-major and key-major
// schedules and writes the best-of-N timings plus the counter-verified BRK
// traffic as JSON. The two schedules compute bit-identical accumulators
// (locked by the batch equivalence test), so the timing delta is pure memory
// scheduling. Masks are dense (no zero elements) so the measured key-reuse
// factor is exactly the model's batch/⌈batch/tile⌉ ratio; n_t is reduced from
// the paper's 500 because per-rotation CPU cost scales linearly in it.
func runBenchBlindRotate(path string, count, tile, workers, nt, runs int) error {
	if count <= 0 || tile <= 0 || workers <= 0 || nt <= 0 || runs <= 0 {
		return fmt.Errorf("heapbench: -brcount/-brtile/-brworkers/-brnt/-brruns must be positive")
	}
	q := ring.GenerateNTTPrimes(36, 13, 7)
	p := ring.GenerateNTTPrimesUp(37, 13, 4)
	params := ckks.MustParameters(13, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<35), 1<<12)
	kg := rlwe.NewKeyGenerator(params.Parameters, 61)
	rsk := kg.GenSecretKey(rlwe.SecretTernary)
	lweSK := kg.GenLWESecretKey(nt, rlwe.SecretBinary)
	brk := tfhe.GenBlindRotateKey(kg, lweSK, rsk)
	ev := tfhe.NewEvaluator(params.Parameters, nil)
	lut := tfhe.NewLUTFromBig(params.Parameters, params.MaxLevel(), func(u int) *big.Int {
		return big.NewInt(int64(u))
	})

	twoN := uint64(2 * params.N())
	s := ring.NewSampler(62)
	lwes := make([]*rlwe.LWECiphertext, count)
	for j := range lwes {
		lwe := &rlwe.LWECiphertext{A: make([]uint64, nt), Q: twoN}
		for i := range lwe.A {
			lwe.A[i] = 1 + s.UniformMod(twoN-1)
		}
		lwe.B = s.UniformMod(twoN)
		lwes[j] = lwe
	}
	accs := make([]*rlwe.Ciphertext, count)
	for i := range accs {
		accs[i] = rlwe.NewCiphertext(params.Parameters, lut.Level)
	}

	res := brBenchResult{
		LogN: 13, Limbs: 7, NT: nt, Count: count, Tile: tile,
		Workers: workers, Cores: runtime.NumCPU(), Runs: runs,
	}
	fmt.Printf("timing %d blind rotations (N=2^13, 7 limbs, n_t=%d) ciphertext-major vs key-major tile %d (%d worker(s)) on %d core(s)...\n",
		count, nt, tile, workers, res.Cores)

	perCtMet := obs.NewMetrics()
	ev.KS.SetRecorder(perCtMet)
	sc := ev.NewScratch()
	res.PerCtMs = math.MaxFloat64
	for r := 0; r < runs; r++ {
		t0 := time.Now()
		for j := range lwes {
			ev.BlindRotateInto(accs[j], lwes[j], lut, brk, sc)
		}
		if d := float64(time.Since(t0).Microseconds()) / 1e3; d < res.PerCtMs {
			res.PerCtMs = d
		}
	}
	batchMet := obs.NewMetrics()
	ev.KS.SetRecorder(batchMet)
	res.BatchMs = math.MaxFloat64
	for r := 0; r < runs; r++ {
		t0 := time.Now()
		if err := ev.BlindRotateBatchInto(accs, lwes, lut, brk, tfhe.BatchOptions{Tile: tile, Workers: workers}); err != nil {
			return err
		}
		if d := float64(time.Since(t0).Microseconds()) / 1e3; d < res.BatchMs {
			res.BatchMs = d
		}
	}
	ev.KS.SetRecorder(nil)

	res.PerCtUsPerRot = res.PerCtMs * 1e3 / float64(count)
	res.BatchUsPerRot = res.BatchMs * 1e3 / float64(count)
	res.Speedup = res.PerCtMs / res.BatchMs
	// Counters accumulate across the timed runs; per-run traffic is the total
	// divided by the run count (every run streams identical bytes).
	res.PerCtKeyBytes = int64(perCtMet.Counter(obs.CounterBRKBytesStreamed)) / int64(runs)
	res.BatchKeyBytes = int64(batchMet.Counter(obs.CounterBRKBytesStreamed)) / int64(runs)
	if res.BatchKeyBytes > 0 {
		res.KeyReuse = float64(res.PerCtKeyBytes) / float64(res.BatchKeyBytes)
	}
	res.ModelKeyReuse = hwsim.PaperParams().KeyReuse(count, tile)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("per-ct %.1f ms (%.0f us/rot), batch %.1f ms (%.0f us/rot), speedup %.2fx, key-reuse %.2fx (model %.2fx) -> %s\n",
		res.PerCtMs, res.PerCtUsPerRot, res.BatchMs, res.BatchUsPerRot, res.Speedup, res.KeyReuse, res.ModelKeyReuse, path)
	return nil
}

// writeTraceAndSnapshot flushes a tracer timeline to tracePath and prints the
// metrics snapshot plus the instrumented-vs-measured accounting: the sum of
// the pipeline-lane phase durations must agree with the end-to-end wall time
// (they tile it; the conformance tests hold the gap under 5%).
func writeTraceAndSnapshot(tracePath string, tracer *obs.Tracer, met *obs.Metrics, wall time.Duration) error {
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if _, err := tracer.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot:\n%s", met.JSON())
	fmt.Printf("pipeline phases sum to %.1f ms of %.1f ms measured; timeline -> %s\n",
		met.PipelineTotalMs(), float64(wall.Microseconds())/1e3, tracePath)
	return nil
}

// runTraceLocal runs one fully local bootstrap with the observability layer
// installed (Metrics aggregate + Chrome trace timeline) and writes both out.
func runTraceLocal(tracePath string) error {
	ctx, err := heap.NewContext(heap.TestContextConfig())
	if err != nil {
		return err
	}
	v := make([]complex128, ctx.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	ct := ctx.Client.EncryptAtLevel(v, 1)

	met := obs.NewMetrics()
	tracer := obs.NewTracer()
	ctx.Boot.SetRecorder(obs.Combine(met, tracer))
	start := time.Now()
	out := ctx.Boot.Bootstrap(ct)
	wall := time.Since(start)
	ctx.Boot.SetRecorder(nil)

	fmt.Printf("local bootstrap: %v; slot0 = %.3f (want 0.400)\n",
		wall.Round(time.Millisecond), real(ctx.Decrypt(out)[0]))
	return writeTraceAndSnapshot(tracePath, tracer, met, wall)
}

// runChurn demonstrates the self-healing elastic cluster in three acts, each
// checked bit-exact against a purely local bootstrap of the same ciphertext:
//
//  1. Hedged dispatch: a node wedges right after its handshake, its shard
//     ages past HedgeAfter, and the hedge monitor speculatively re-dispatches
//     the indices (the local workers win every claim).
//  2. Kill mid-key-upload: a key-cold node joins through the membership
//     listener, the chunked BRK upload starts, and its link is cut a few
//     chunks in. The primary's health machinery marks the member dead and
//     the run completes without it.
//  3. Resume + graceful drain: the dead node rejoins under the same name —
//     its key stash survived the connection, so the upload resumes from the
//     last acked chunk instead of restarting — while another node joins with
//     a pending leave request and is drained. The receiver-side unique-chunk
//     counters prove no byte of the key was re-received.
func runChurn() error {
	mk := func(coldStart bool) (*heap.Context, error) {
		cfg := heap.TestContextConfig()
		cfg.Bootstrap.ColdStart = coldStart
		return heap.NewContext(cfg)
	}
	primary, err := mk(false)
	if err != nil {
		return err
	}
	v := make([]complex128, primary.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	ct := primary.Client.EncryptAtLevel(v, 1)
	reference := primary.Boot.Bootstrap(ct.CopyNew())
	check := func(tag string, out *rlwe.Ciphertext) error {
		for i := 0; i < out.Level(); i++ {
			for j, c := range out.C0.Limbs[i] {
				if c != reference.C0.Limbs[i][j] || out.C1.Limbs[i][j] != reference.C1.Limbs[i][j] {
					return fmt.Errorf("%s: limb %d coeff %d differs from local bootstrap", tag, i, j)
				}
			}
		}
		fmt.Printf("%s: bit-identical to the local bootstrap\n", tag)
		return nil
	}
	met := obs.NewMetrics()
	primary.Boot.SetRecorder(met)
	defer primary.Boot.SetRecorder(nil)
	pri := &cluster.Primary{Boot: primary.Boot}

	// Act 1: a wedged node and hedged dispatch.
	fmt.Println("--- act 1: hedged dispatch around a stalled node ---")
	wedged, err := mk(false)
	if err != nil {
		return err
	}
	cp, cs := net.Pipe()
	stall := cluster.NewFaultConn(cs, cluster.FaultPlan{Seed: 3, StallWriteAfter: 48})
	servWedged := make(chan error, 1)
	go func() { servWedged <- (&cluster.Secondary{Boot: wedged.Boot}).Serve(stall) }()
	hopts := cluster.DefaultOptions()
	hopts.HedgeAfter = 150 * time.Millisecond
	out, stats, err := pri.BootstrapCluster(context.Background(), ct.CopyNew(),
		[]*cluster.Node{{Conn: cp, Name: "fpga-wedged"}}, hopts)
	if err != nil {
		return err
	}
	fmt.Printf("%d of %d indices hedged away from the stalled node (%d hedge-race losers)\n%s",
		stats.Hedged, stats.Total, stats.HedgeWasted, stats)
	if err := check("hedged run", out); err != nil {
		return err
	}
	_ = stall.Close()
	_ = cp.Close()
	_ = cs.Close()
	<-servWedged

	// Act 2: elastic membership — a warm node and a cold node join, the cold
	// node's link is cut mid-key-upload.
	fmt.Println("--- act 2: cold join, link cut mid-key-upload ---")
	m := cluster.NewMembership()
	l := cluster.NewPipeListener()
	acceptDone := make(chan struct{})
	go func() { _ = pri.AcceptJoins(m, l); close(acceptDone) }()
	waitState := func(name string, want cluster.MemberState) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if st, ok := m.State(name); ok && st == want {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %q never became %v", name, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	closeRW := func(conn io.ReadWriter) {
		if c, ok := conn.(io.Closer); ok {
			_ = c.Close()
		}
	}

	warm, err := mk(false)
	if err != nil {
		return err
	}
	warmConn, err := l.Dial()
	if err != nil {
		return err
	}
	servWarm := make(chan error, 1)
	go func() { servWarm <- (&cluster.Secondary{Boot: warm.Boot}).JoinAndServe(warmConn, "fpga-warm") }()

	cold, err := mk(true)
	if err != nil {
		return err
	}
	coldMet := obs.NewMetrics()
	cold.Boot.SetRecorder(coldMet)
	coldSec := &cluster.Secondary{Boot: cold.Boot}
	const chunkBytes = 64 << 10
	blobSize := tfhe.BRKBlobBytes(primary.Params.Parameters, primary.Params.N())
	conn1, err := l.Dial()
	if err != nil {
		return err
	}
	cut := cluster.NewFaultConn(conn1, cluster.FaultPlan{Seed: 13, CutReadAfter: 3*chunkBytes + 4096})
	servCold1 := make(chan error, 1)
	go func() { servCold1 <- coldSec.JoinAndServe(cut, "fpga-cold") }()
	if err := waitState("fpga-warm", cluster.MemberActive); err != nil {
		return err
	}
	if err := waitState("fpga-cold", cluster.MemberActive); err != nil {
		return err
	}

	eopts := cluster.DefaultOptions()
	eopts.LocalWorkers = 1
	eopts.ProbeInterval = 25 * time.Millisecond
	eopts.ProbeTimeout = time.Second
	eopts.KeyChunkBytes = chunkBytes
	out, stats, err = pri.BootstrapElastic(context.Background(), ct.CopyNew(), m, eopts)
	if err != nil {
		return err
	}
	if err := <-servCold1; err == nil {
		return fmt.Errorf("the injected link cut never fired")
	}
	_ = cut.Close()
	if err := waitState("fpga-cold", cluster.MemberDead); err != nil {
		return err
	}
	fmt.Printf("link cut after %d unique chunks (%d of %d key bytes received); member marked dead\n%s",
		coldMet.Counter(obs.CounterKeyChunks), coldMet.Counter(obs.CounterKeyChunkBytes), blobSize, stats)
	if err := check("churn run", out); err != nil {
		return err
	}

	// Act 3: the dead node rejoins under the same name and the upload resumes
	// from the last acked chunk; a third node joins mid-run with a pending
	// leave request and is drained without completing work.
	fmt.Println("--- act 3: rejoin + resumed upload, graceful drain ---")
	conn2, err := l.Dial()
	if err != nil {
		return err
	}
	servCold2 := make(chan error, 1)
	go func() { servCold2 <- coldSec.JoinAndServe(conn2, "fpga-cold") }()
	leaverCtx, err := mk(false)
	if err != nil {
		return err
	}
	leaver := &cluster.Secondary{Boot: leaverCtx.Boot}
	leaver.RequestLeave()
	lconn, err := l.Dial()
	if err != nil {
		return err
	}
	servLeaver := make(chan error, 1)
	go func() { servLeaver <- leaver.JoinAndServe(lconn, "fpga-leaver") }()
	if err := waitState("fpga-cold", cluster.MemberActive); err != nil {
		return err
	}
	if err := waitState("fpga-leaver", cluster.MemberActive); err != nil {
		return err
	}
	out, stats, err = pri.BootstrapElastic(context.Background(), ct.CopyNew(), m, eopts)
	if err != nil {
		return err
	}
	fmt.Print(stats)
	if err := check("resume run", out); err != nil {
		return err
	}

	// The resume accounting: across both connections every unique chunk was
	// received exactly once; stop-and-wait leaves at most one chunk of
	// sender-side overlap.
	uniq := coldMet.Counter(obs.CounterKeyChunks)
	uniqBytes := coldMet.Counter(obs.CounterKeyChunkBytes)
	resent := met.Counter(obs.CounterKeyChunkResent)
	fmt.Printf("key streaming: %d unique chunks, %d of %d bytes (%.0f%% warm), %d bytes re-sent across the kill\n",
		uniq, uniqBytes, blobSize, 100*float64(uniqBytes)/float64(blobSize), resent)
	if uniqBytes == uint64(blobSize) && resent <= chunkBytes {
		fmt.Println("resume OK: the kill cost at most one in-flight chunk, no full re-send")
	}
	for _, name := range []string{"fpga-warm", "fpga-cold", "fpga-leaver"} {
		st, _ := m.State(name)
		fmt.Printf("  member %-12s %v\n", name, st)
	}

	closeRW(lconn)
	closeRW(conn2)
	closeRW(warmConn)
	<-servCold2
	<-servLeaver
	<-servWarm
	_ = l.Close()
	<-acceptDone
	return nil
}

// runCluster runs the parallelized bootstrap (§V) across three in-process
// nodes connected by byte pipes, with one link deliberately cut mid-stream
// to exercise the retry/reassignment path, and checks the result against a
// purely local bootstrap of the same ciphertext (they must be bit-identical,
// since blind rotations are deterministic and node-placement-independent).
// With a non-empty tracePath the distributed run is recorded by the
// observability layer: one timeline lane per node and local worker.
func runCluster(tracePath string) error {
	mk := func() (*heap.Context, error) { return heap.NewContext(heap.TestContextConfig()) }
	primary, err := mk()
	if err != nil {
		return err
	}
	v := make([]complex128, primary.Params.Slots)
	for i := range v {
		v[i] = complex(0.4, 0)
	}
	// Bootstrap is deterministic in the input ciphertext, so the same ct
	// bootstrapped locally and across the cluster must agree bit for bit.
	ct := primary.Client.EncryptAtLevel(v, 1)
	reference := primary.Boot.Bootstrap(ct)

	nodes := make([]*cluster.Node, 2)
	for i := range nodes {
		sec, err := mk()
		if err != nil {
			return err
		}
		local, remote := net.Pipe()
		go func() { _ = (&cluster.Secondary{Boot: sec.Boot}).Serve(remote) }()
		nodes[i] = &cluster.Node{Conn: local, Name: fmt.Sprintf("fpga-%d", i)}
	}
	// Cut node 0's link after 8 KiB of accumulator traffic: its remaining
	// LWE indices are reassigned to node 1 and the primary's local workers.
	nodes[0].Conn = cluster.NewFaultConn(nodes[0].Conn, cluster.FaultPlan{Seed: 42, CutReadAfter: 8 << 10})

	var (
		met    *obs.Metrics
		tracer *obs.Tracer
	)
	if tracePath != "" {
		met, tracer = obs.NewMetrics(), obs.NewTracer()
		primary.Boot.SetRecorder(obs.Combine(met, tracer))
	}
	start := time.Now()
	out, stats, err := (&cluster.Primary{Boot: primary.Boot}).BootstrapCluster(
		context.Background(), ct, nodes, cluster.DefaultOptions())
	wall := time.Since(start)
	if tracePath != "" {
		primary.Boot.SetRecorder(nil)
	}
	if err != nil {
		return err
	}
	fmt.Printf("distributed bootstrap with one link cut mid-stream: %v\n%s",
		wall.Round(time.Millisecond), stats)
	if tracePath != "" {
		if err := writeTraceAndSnapshot(tracePath, tracer, met, wall); err != nil {
			return err
		}
	}

	for i := 0; i < out.Level(); i++ {
		for j, c := range out.C0.Limbs[i] {
			if c != reference.C0.Limbs[i][j] || out.C1.Limbs[i][j] != reference.C1.Limbs[i][j] {
				return fmt.Errorf("limb %d coeff %d differs from local bootstrap", i, j)
			}
		}
	}
	fmt.Printf("result bit-identical to local bootstrap; slot0 = %.3f (want 0.400)\n",
		real(primary.Decrypt(out)[0]))
	return nil
}
