// Command heapbench regenerates the paper's evaluation tables (II–VIII)
// from the calibrated hardware model, the workload schedules, and the
// published baseline numbers:
//
//	heapbench            # print every table
//	heapbench -table 5   # print one table
//	heapbench -keys      # §III-C key-traffic accounting
//	heapbench -sweep     # FPGA-count scaling sweep for the bootstrap
package main

import (
	"flag"
	"fmt"
	"os"

	"heap/internal/experiments"
	"heap/internal/hwsim"
)

func main() {
	table := flag.Int("table", 0, "print a single table (2-8)")
	keys := flag.Bool("keys", false, "print the §III-C key-material report")
	area := flag.Bool("area", false, "print the §VI-B area/power comparison")
	sweep := flag.Bool("sweep", false, "sweep bootstrap latency over FPGA counts")
	flag.Parse()

	switch {
	case *keys:
		fmt.Print(experiments.KeyReport())
	case *area:
		fmt.Print(experiments.AreaReport())
	case *sweep:
		fmt.Println("Scheme-switching bootstrap latency vs number of FPGAs (fully packed, n=4096)")
		fmt.Printf("%6s %12s %12s %12s\n", "FPGAs", "step3 (ms)", "comm (ms)", "total (ms)")
		for _, n := range []int{1, 2, 4, 8, 16} {
			s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), n)
			b := s.Bootstrap(1 << 12)
			fmt.Printf("%6d %12.4f %12.4f %12.4f\n", n, b.Step3Ms, b.CommMs, b.TotalMs)
		}
	case *table != 0:
		var out string
		switch *table {
		case 2:
			out = experiments.Table2()
		case 3:
			out = experiments.Table3()
		case 4:
			out = experiments.Table4()
		case 5:
			out = experiments.Table5()
		case 6:
			out = experiments.Table6()
		case 7:
			out = experiments.Table7()
		case 8:
			out = experiments.Table8()
		default:
			fmt.Fprintln(os.Stderr, "tables 2-8 are available")
			os.Exit(2)
		}
		fmt.Print(out)
	default:
		fmt.Print(experiments.All())
	}
}
