package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"heap/internal/load"
	"heap/internal/serve"
)

// loadBenchResult is the JSON record runBenchLoad writes: the scaling matrix
// from the closed-/open-loop harness (internal/load) over worker/executor
// counts, offered-load points, and arrival patterns, plus one gated scalar —
// the closed-loop per-job service time at the 1-executor/1-worker baseline,
// which is schedule-deterministic (no arrival randomness in closed loop) and
// so the least noisy figure in the matrix. The context keys (logN, q_limbs,
// n_t, tile) pin the ring the harness runs at; every point in `matrix` is a
// full load.Result with its own ledger and coalescing accounting.
type loadBenchResult struct {
	LogN  int `json:"logN"`
	Limbs int `json:"q_limbs"`
	NT    int `json:"n_t"`
	Tile  int `json:"tile"`

	Cores        int     `json:"cores"`
	MaxProcs     int     `json:"gomaxprocs"`
	Tenants      int     `json:"tenants"`
	Conns        int     `json:"conns_per_tenant"`
	RotsPerJob   int     `json:"rot_per_job"`
	JobsPerPoint int     `json:"jobs_per_point"`
	WindowMs     float64 `json:"window_ms"`
	BudgetMs     float64 `json:"budget_ms"`
	QueueLimit   int     `json:"queue_limit"`

	// Gated figures, from the closed-loop uniform baseline point
	// (executors=1, workers=1).
	ClosedUsPerJob float64 `json:"closed_us_per_job"`
	ClosedP99Ms    float64 `json:"closed_p99_ms"`

	Matrix []load.Result `json:"matrix"`
}

// loadBenchTile is the key-major tile every harness point runs at; 8 matches
// the serve bench so the two records describe the same executor shape.
const loadBenchTile = 8

// parseIntList parses a comma-separated list of positive integers ("1,2,4").
func parseIntList(flagName, spec string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("heapbench: %s %q: each entry must be a positive integer", flagName, spec)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePatterns validates a comma-separated arrival-pattern list against the
// harness's registry.
func parsePatterns(spec string) ([]load.Pattern, error) {
	known := make(map[load.Pattern]bool)
	for _, p := range load.Patterns() {
		known[p] = true
	}
	var out []load.Pattern
	for _, field := range strings.Split(spec, ",") {
		p := load.Pattern(strings.TrimSpace(field))
		if !known[p] {
			return nil, fmt.Errorf("heapbench: -ldpatterns %q: unknown pattern %q (have %v)", spec, p, load.Patterns())
		}
		out = append(out, p)
	}
	return out, nil
}

// runBenchLoad drives the serving layer through internal/load and writes the
// scaling matrix as JSON:
//
//   - a closed-loop worker/executor sweep (uniform arrivals): for each entry
//     n of workersSpec, one point with n executors and, for n > 1, one point
//     with n batch workers inside a single executor — the two axes the
//     paper's parallel claims live on. Entries are clamped to
//     max(2, GOMAXPROCS): above GOMAXPROCS they could only measure scheduler
//     churn, but a 2-way point always runs so the matrix keeps its sweep
//     shape even on a 1-core host (where, as EXPERIMENTS.md notes, the >1
//     points measure interleaving overhead, not parallel speedup).
//   - an open-loop offered-load sweep: every pattern of patternsSpec at every
//     rate of ratesSpec (jobs/s across the system), against a bounded queue
//     and a per-job deadline budget, so the points past saturation show
//     rejection rate and bounded p99 rather than unbounded queueing.
//
// Each point is an independent harness (fresh server + tenant fleet) so the
// registry, admission buckets, and EWMA start identically; determinism
// within a point comes from the harness's seeded schedule.
func runBenchLoad(path string, jobs int, workersSpec, ratesSpec, patternsSpec string) error {
	if jobs <= 0 {
		return fmt.Errorf("heapbench: -ldjobs must be positive")
	}
	levels, err := parseIntList("-ldworkers", workersSpec)
	if err != nil {
		return err
	}
	rates, err := parseIntList("-ldrates", ratesSpec)
	if err != nil {
		return err
	}
	patterns, err := parsePatterns(patternsSpec)
	if err != nil {
		return err
	}

	maxProcs := runtime.GOMAXPROCS(0)
	base := load.Config{
		Tenants:        2,
		ConnsPerTenant: 2,
		Window:         5 * time.Millisecond,
		Tile:           loadBenchTile,
		Jobs:           jobs,
		RotsPerJob:     4,
		Seed:           7,
		Warmup:         true,
	}
	openBudget := 2 * time.Second
	const queueLimit = 16

	res := loadBenchResult{
		// The harness ring (load.benchBoot): logN=6, three 30-bit limbs, and
		// NT=0 which makes the LWE dimension the ring degree N=64.
		LogN: 6, Limbs: 3, NT: 64, Tile: loadBenchTile,
		Cores: runtime.NumCPU(), MaxProcs: maxProcs,
		Tenants: base.Tenants, Conns: base.ConnsPerTenant,
		RotsPerJob: base.RotsPerJob, JobsPerPoint: jobs,
		WindowMs:   float64(base.Window.Microseconds()) / 1e3,
		BudgetMs:   float64(openBudget.Microseconds()) / 1e3,
		QueueLimit: queueLimit,
	}
	fmt.Printf("load matrix: %d jobs/point, workers %v, rates %v jobs/s, patterns %v (GOMAXPROCS %d)\n",
		jobs, levels, rates, patterns, maxProcs)

	runPoint := func(tag string, cfg load.Config) (load.Result, error) {
		pt, err := load.Run(cfg)
		if err != nil {
			return pt, fmt.Errorf("heapbench: load point %s: %w", tag, err)
		}
		if gap := pt.LedgerGap(); gap != 0 {
			return pt, fmt.Errorf("heapbench: load point %s: ledger gap %d at quiesce", tag, gap)
		}
		fmt.Printf("  %-28s %6.1f jobs/s  p50 %6.2f ms  p99 %6.2f ms  rej %4.0f%%  coalesced %3.0f%%\n",
			tag, pt.AchievedPerSec, pt.Latency.P50Ms, pt.Latency.P99Ms,
			100*pt.RejectionRate, 100*pt.CoalescedFrac)
		res.Matrix = append(res.Matrix, pt)
		return pt, nil
	}

	// Closed-loop worker/executor sweep: saturation capacity vs parallelism.
	sweepCap := maxProcs
	if sweepCap < 2 {
		sweepCap = 2
	}
	seen := make(map[int]bool)
	for _, n := range levels {
		if n > sweepCap {
			fmt.Printf("  (clamping sweep entry %d to %d: GOMAXPROCS is %d)\n", n, sweepCap, maxProcs)
			n = sweepCap
		}
		if n > maxProcs {
			fmt.Printf("  (sweep entry %d exceeds GOMAXPROCS=%d: the point measures interleaving, not parallel speedup)\n", n, maxProcs)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		cfg := base
		cfg.Pattern = load.Uniform
		cfg.Executors = n
		cfg.Workers = 1
		pt, err := runPoint(fmt.Sprintf("closed e%d/w1", n), cfg)
		if err != nil {
			return err
		}
		if n == 1 {
			res.ClosedUsPerJob = pt.WallMs * 1e3 / float64(pt.Served)
			res.ClosedP99Ms = pt.Latency.P99Ms
		}
		if n > 1 {
			cfg.Executors = 1
			cfg.Workers = n
			if _, err := runPoint(fmt.Sprintf("closed e1/w%d", n), cfg); err != nil {
				return err
			}
		}
	}
	if res.ClosedUsPerJob == 0 {
		// The sweep skipped n=1; gate against the smallest level instead of
		// silently writing a zero the benchdiff baseline check would reject.
		return fmt.Errorf("heapbench: -ldworkers %q must include 1 (the gated baseline point)", workersSpec)
	}

	// Open-loop offered-load sweep: pattern × rate against the bounded queue.
	maxLevel := 1
	for _, n := range levels {
		if n > maxLevel && n <= sweepCap {
			maxLevel = n
		}
	}
	for _, pat := range patterns {
		for _, rate := range rates {
			cfg := base
			cfg.Pattern = pat
			cfg.Executors = maxLevel
			cfg.Workers = 1
			cfg.OfferedRate = float64(rate)
			cfg.Budget = openBudget
			cfg.Admission = serve.AdmissionConfig{QueueLimit: queueLimit}
			if _, err := runPoint(fmt.Sprintf("open %s @%d/s e%d", pat, rate, maxLevel), cfg); err != nil {
				return err
			}
		}
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d matrix points, closed-loop baseline %.0f us/job (p99 %.2f ms) -> %s\n",
		len(res.Matrix), res.ClosedUsPerJob, res.ClosedP99Ms, path)
	return nil
}
